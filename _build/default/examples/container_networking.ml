(* Container networking (paper Sec 3.4, Fig 5): compare path A — packets
   climb to OVS userspace through an AF_XDP socket and come back down to
   the container's veth — against path C — an XDP program redirects them
   between the NIC and the veth entirely inside the driver layer.

     dune exec examples/container_networking.exe
*)

module Scenario = Ovs_trafficgen.Scenario
module Dpif = Ovs_datapath.Dpif

let () =
  Fmt.pr "== container networking: OVS userspace round trip vs XDP redirect ==@.@.";
  Fmt.pr "physical-container-physical loopback, 64B UDP at 25 GbE (Fig 9c):@.@.";
  let run name topology kind =
    let r =
      Scenario.run { Scenario.default_config with kind; topology; gbps = 25. }
    in
    Fmt.pr "  %-34s %a@." name Scenario.pp_result r;
    r
  in
  let xdp =
    run "AF_XDP, XDP redirect (path C)" (Scenario.PCP Scenario.Ct_xdp)
      (Dpif.Afxdp Dpif.afxdp_default)
  in
  let kernel = run "kernel datapath + veth" (Scenario.PCP Scenario.Ct_veth) Dpif.Kernel in
  let dpdk = run "DPDK + af_packet" (Scenario.PCP Scenario.Ct_afpacket) Dpif.Dpdk in
  Fmt.pr "@.XDP redirect vs kernel: %.1fx; vs DPDK: %.1fx (Outcome 2: AF_XDP@."
    (xdp.Scenario.rate_mpps /. kernel.Scenario.rate_mpps)
    (xdp.Scenario.rate_mpps /. dpdk.Scenario.rate_mpps);
  Fmt.pr "outperforms the other solutions when the endpoints are containers)@.";

  (* the TCP side of the story (Fig 8c): for bulk TCP the kernel's TSO
     still wins until AF_XDP grows TSO support (Outcome 1) *)
  Fmt.pr "@.container-to-container bulk TCP within one host (Fig 8c):@.@.";
  let c = Ovs_sim.Costs.default in
  List.iter
    (fun (name, cfg, paper) ->
      if String.length name > 2 && name.[0] = 'c' then begin
        let r = Ovs_trafficgen.Tcp_model.run c cfg in
        Fmt.pr "  %-36s paper %5.1f  model %a@." name paper
          Ovs_trafficgen.Tcp_model.pp_result r
      end)
    Ovs_trafficgen.Tcp_model.figure8_bars;

  (* latency between two containers (Fig 11) *)
  Fmt.pr "@.netperf TCP_RR latency between containers (Fig 11):@.@.";
  List.iter
    (fun cfg ->
      let r =
        Ovs_trafficgen.Rr_model.(run (intrahost_container_path c cfg))
      in
      Fmt.pr "  %-8s %a@."
        (Ovs_trafficgen.Rr_model.config_name cfg)
        Ovs_trafficgen.Rr_model.pp_result r)
    [ Ovs_trafficgen.Rr_model.Rr_kernel; Ovs_trafficgen.Rr_model.Rr_afxdp;
      Ovs_trafficgen.Rr_model.Rr_dpdk ];
  Fmt.pr "@.done.@."
