examples/openflow_wire.ml: Bytes Fmt Int List Ovs_core Ovs_netdev Ovs_ofproto Ovs_ovsdb Ovs_packet Ovs_sim Ovs_tools Printf String
