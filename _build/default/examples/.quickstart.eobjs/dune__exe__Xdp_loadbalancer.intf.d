examples/xdp_loadbalancer.mli:
