examples/upgrade_scenario.ml: Fmt List Ovs_core Ovs_datapath Ovs_netdev Ovs_packet Ovs_sim Printf
