examples/upgrade_scenario.mli:
