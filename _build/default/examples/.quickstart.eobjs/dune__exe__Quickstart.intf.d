examples/quickstart.mli:
