examples/xdp_loadbalancer.ml: Array Field Fmt Int64 Ovs_datapath Ovs_ebpf Ovs_netdev Ovs_ofproto Ovs_packet Ovs_sim Printf
