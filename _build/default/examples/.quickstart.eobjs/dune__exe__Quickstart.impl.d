examples/quickstart.ml: Fmt Ovs_core Ovs_datapath Ovs_netdev Ovs_packet Ovs_sim Ovs_tools Printf
