examples/openflow_wire.mli:
