examples/nsx_deployment.ml: Fmt List Ovs_conntrack Ovs_datapath Ovs_netdev Ovs_nsx Ovs_ofproto Ovs_packet Ovs_sim Printf
