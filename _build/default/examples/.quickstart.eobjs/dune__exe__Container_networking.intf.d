examples/container_networking.mli:
