examples/nsx_deployment.mli:
