examples/container_networking.ml: Fmt List Ovs_datapath Ovs_sim Ovs_trafficgen String
