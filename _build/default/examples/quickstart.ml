(* Quickstart: create a switch on the AF_XDP datapath, add two ports,
   install a flow, push packets through, and read the statistics.

     dune exec examples/quickstart.exe
*)

module V = Ovs_core.Vswitch
module Netdev = Ovs_netdev.Netdev

let () =
  Fmt.pr "== quickstart: OVS with the AF_XDP datapath ==@.@.";

  (* 1. create the switch; the default configuration picks AF_XDP with
     every Sec 3.2 optimization enabled, on a kernel-5.3-class host *)
  let sw = V.create () in

  (* 2. two physical ports; adding them loads the XDP redirect program
     and binds one AF_XDP socket per queue *)
  let eth0 = Netdev.create ~name:"eth0" ~gbps:25. () in
  let eth1 = Netdev.create ~name:"eth1" ~gbps:25. () in
  let p0 = V.add_port sw eth0 in
  let p1 = V.add_port sw eth1 in
  Fmt.pr "ports: eth0=%d eth1=%d@." p0 p1;

  (* 3. an OpenFlow rule in ovs-ofctl syntax *)
  V.add_flow sw (Printf.sprintf "priority=10,in_port=%d actions=output:%d" p0 p1);
  V.add_flow sw (Printf.sprintf "priority=10,in_port=%d actions=output:%d" p1 p0);

  (* 4. drive some traffic: a virtual execution context stands in for the
     PMD thread; every cost it accrues is virtual time *)
  let machine = Ovs_sim.Cpu.create () in
  let pmd = Ovs_sim.Cpu.ctx machine "pmd0" in
  for i = 1 to 1000 do
    let pkt = Ovs_packet.Build.udp ~frame_len:64 ~src_port:(1000 + (i mod 16)) () in
    V.inject sw ~machine_ctx:pmd pkt ~port_no:p0
  done;

  (* 5. statistics: datapath counters and virtual CPU time *)
  let c = V.counters sw in
  Fmt.pr "@.datapath: %d packets, %d upcalls (first packet of each flow), %d EMC hits@."
    c.Ovs_datapath.Dp_core.packets c.Ovs_datapath.Dp_core.upcalls
    c.Ovs_datapath.Dp_core.emc_hits;
  Fmt.pr "eth1 transmitted %d packets@." eth1.Netdev.stats.Netdev.tx_packets;
  let busy = Ovs_sim.Cpu.busy pmd in
  Fmt.pr "virtual CPU time: %a total, %a per packet (~%a)@."
    Ovs_sim.Time.pp_ns busy Ovs_sim.Time.pp_ns (busy /. 1000.)
    Ovs_sim.Time.pp_rate (Ovs_sim.Time.rate_pps ~per_packet:(busy /. 1000.));

  (* 6. the kernel tools still work on an AF_XDP port (Table 1) *)
  (match Ovs_tools.Tools.ip_link eth0 with
  | Ovs_tools.Tools.Ok_output s -> Fmt.pr "@.$ ip link show eth0@.%s@." s
  | Ovs_tools.Tools.Not_supported m -> Fmt.pr "ip link failed: %s@." m);
  Fmt.pr "@.done.@."
