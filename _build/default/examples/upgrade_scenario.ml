(* The operability story (paper Secs 2, 6): what a dataplane bug fix costs
   under each architecture, and what happens when a datapath bug fires in
   production (the Geneve-parser null-dereference case).

     dune exec examples/upgrade_scenario.exe
*)

module V = Ovs_core.Vswitch
module U = Ovs_core.Upgrade
module Dpif = Ovs_datapath.Dpif
module Netdev = Ovs_netdev.Netdev

let () =
  Fmt.pr "== upgrading and surviving bugs: kernel module vs eBPF vs userspace ==@.@.";

  Fmt.pr "-- cost of shipping one dataplane fix to one host --@.";
  List.iter
    (fun arch ->
      Fmt.pr "  %-24s %a@." (U.arch_name arch) U.pp_cost (U.upgrade arch))
    [ U.Arch_kernel_module; U.Arch_ebpf; U.Arch_userspace ];

  Fmt.pr "@.-- a year of patching a 1,000-host fleet (6 dataplane fixes) --@.";
  List.iter
    (fun arch ->
      Fmt.pr "  %-24s %10.1f host-hours of disruption@." (U.arch_name arch)
        (U.annual_fleet_disruption_hours arch ~hosts:1000 ~fixes_per_year:6))
    [ U.Arch_kernel_module; U.Arch_ebpf; U.Arch_userspace ];

  Fmt.pr "@.-- the Geneve parser bug fires in production --@.";
  let crash kind label =
    let sw = V.create ~config:{ V.default_config with V.datapath = kind } () in
    (* a live switch with traffic state *)
    let machine = Ovs_sim.Cpu.create () in
    let ctx = Ovs_sim.Cpu.ctx machine "main" in
    let a = Netdev.create ~name:"p0" () and b = Netdev.create ~name:"p1" () in
    let pa = V.add_port sw a and pb = V.add_port sw b in
    V.add_flow sw (Printf.sprintf "in_port=%d actions=output:%d" pa pb);
    V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
    (match V.inject_datapath_bug sw with
    | V.Host_panic ->
        Fmt.pr "  %-10s HOST PANIC: every VM and container on the hypervisor dies@." label
    | V.Process_restart { core_dump } ->
        Fmt.pr "  %-10s process restarted%s; workloads keep running@." label
          (if core_dump then " with a core dump for root-cause analysis" else " (sandbox absorbed the fault)"));
    sw
  in
  ignore (crash Dpif.Kernel "kernel:");
  ignore (crash Dpif.Kernel_ebpf "eBPF:");
  let sw = crash (Dpif.Afxdp Dpif.afxdp_default) "AF_XDP:" in

  Fmt.pr "@.-- in-place OVS restart (the AF_XDP upgrade path) --@.";
  let machine = Ovs_sim.Cpu.create () in
  let ctx = Ovs_sim.Cpu.ctx machine "main" in
  let a = Netdev.create ~name:"q0" () and b = Netdev.create ~name:"q1" () in
  let pa = V.add_port sw a in
  let pb = V.add_port sw b in
  V.add_flow sw (Printf.sprintf "in_port=%d actions=output:%d" pa pb);
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  Fmt.pr "  before restart: %d packets forwarded@." b.Netdev.stats.Netdev.tx_packets;
  V.restart sw;
  ignore (Dpif.add_port sw.V.dp a);
  ignore (Dpif.add_port sw.V.dp b);
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  Fmt.pr "  after restart:  %d packets forwarded (OpenFlow rules survived,@."
    b.Netdev.stats.Netdev.tx_packets;
  Fmt.pr "                  caches rebuilt on the first packet; no reboot)@.";
  Fmt.pr "@.event log:@.";
  List.iter (fun l -> Fmt.pr "  %s@." l) (List.rev !(sw.V.log));
  Fmt.pr "@.done.@."
