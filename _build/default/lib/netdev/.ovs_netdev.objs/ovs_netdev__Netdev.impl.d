lib/netdev/netdev.ml: Array Fmt List Ovs_ebpf Ovs_packet Ovs_xsk Queue
