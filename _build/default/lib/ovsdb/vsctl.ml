(** The ovs-vsctl convenience layer: the commands operators (and the NSX
    agent's scripts) use, each expanded into one atomic OVSDB transaction
    against the Open_vSwitch schema — add-br, add-port, set-interface-type
    and friends. *)

exception Error of string

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

let root_uuid db =
  match Db.find_rows db ~table:"Open_vSwitch" ~where:[ Db.True ] with
  | [ (u, _) ] -> u
  | [] ->
      (* first use initializes the root row, as ovsdb-server does *)
      (match
         Db.transact db
           [ Db.Insert { op_table = "Open_vSwitch";
                         values = [ ("ovs_version", Value.string "2.14.0-repro") ];
                         uuid_name = None } ]
       with
      | [ Db.Inserted u ] -> u
      | _ -> err "failed to initialize the root row")
  | _ -> err "multiple Open_vSwitch root rows"

let bridge_uuid db name =
  match Db.find_rows db ~table:"Bridge" ~where:[ Db.Eq ("name", Value.string name) ] with
  | [ (u, _) ] -> Some u
  | [] -> None
  | _ -> err "duplicate bridge %s" name

let port_uuid db name =
  match Db.find_rows db ~table:"Port" ~where:[ Db.Eq ("name", Value.string name) ] with
  | [ (u, _) ] -> Some u
  | [] -> None
  | _ -> err "duplicate port %s" name

(** ovs-vsctl add-br BRIDGE [-- set bridge datapath_type=...] *)
let add_br db ?(datapath_type = "netdev") name =
  if bridge_uuid db name <> None then err "bridge %s already exists" name;
  let root = root_uuid db in
  match
    Db.transact db
      [
        Db.Insert
          {
            op_table = "Bridge";
            values =
              [ ("name", Value.string name);
                ("datapath_type", Value.string datapath_type) ];
            uuid_name = Some "br";
          };
        Db.Mutate
          {
            op_table = "Open_vSwitch";
            where = [ Db.True ];
            col = "bridges";
            mutator = `Insert (Value.Uuid "@br");
          };
      ]
  with
  | [ Db.Inserted u; _ ] ->
      ignore root;
      u
  | _ -> err "add-br transaction failed"

(** ovs-vsctl add-port BRIDGE PORT [-- set interface PORT type=TYPE]. *)
let add_port db ~bridge ?(iface_type = "afxdp") name =
  let br =
    match bridge_uuid db bridge with
    | Some u -> u
    | None -> err "no bridge %s" bridge
  in
  if port_uuid db name <> None then err "port %s already exists" name;
  match
    Db.transact db
      [
        Db.Insert
          {
            op_table = "Interface";
            values = [ ("name", Value.string name); ("type", Value.string iface_type) ];
            uuid_name = Some "if";
          };
        Db.Insert
          {
            op_table = "Port";
            values =
              [ ("name", Value.string name);
                ("interfaces", Value.Set [ Value.Uuid "@if" ]) ];
            uuid_name = Some "port";
          };
        Db.Mutate
          {
            op_table = "Bridge";
            where = [ Db.Eq ("name", Value.string bridge) ];
            col = "ports";
            mutator = `Insert (Value.Uuid "@port");
          };
      ]
  with
  | [ Db.Inserted iface; Db.Inserted port; _ ] ->
      ignore br;
      (port, iface)
  | _ -> err "add-port transaction failed"

(** ovs-vsctl del-port BRIDGE PORT. *)
let del_port db ~bridge name =
  match port_uuid db name with
  | None -> err "no port %s" name
  | Some pu ->
      ignore
        (Db.transact db
           [
             Db.Mutate
               {
                 op_table = "Bridge";
                 where = [ Db.Eq ("name", Value.string bridge) ];
                 col = "ports";
                 mutator = `Delete (Value.Uuid pu);
               };
             Db.Delete { op_table = "Port"; where = [ Db.Eq ("name", Value.string name) ] };
             Db.Delete
               { op_table = "Interface"; where = [ Db.Eq ("name", Value.string name) ] };
           ])

(** ovs-vsctl set interface NAME ofport_request / record datapath port. *)
let set_interface_ofport db name ofport =
  ignore
    (Db.transact db
       [
         Db.Update
           {
             op_table = "Interface";
             where = [ Db.Eq ("name", Value.string name) ];
             values = [ ("ofport", Value.int ofport) ];
           };
       ])

(** ovs-vsctl list-br / list-ports. *)
let list_br db =
  Db.find_rows db ~table:"Bridge" ~where:[ Db.True ]
  |> List.filter_map (fun (_, cols) ->
         match List.assoc_opt "name" cols with
         | Some (Value.Atom (Value.String s)) -> Some s
         | _ -> None)
  |> List.sort compare

let list_ports db ~bridge =
  match bridge_uuid db bridge with
  | None -> err "no bridge %s" bridge
  | Some bu -> begin
      match Db.get_column db ~table:"Bridge" ~uuid:bu ~column:"ports" with
      | Some ports ->
          Value.set_members ports
          |> List.filter_map (function
               | Value.Uuid pu -> begin
                   match Db.get_column db ~table:"Port" ~uuid:pu ~column:"name" with
                   | Some (Value.Atom (Value.String s)) -> Some s
                   | _ -> None
                 end
               | _ -> None)
          |> List.sort compare
      | None -> []
    end

let interface_type db name =
  match
    Db.find_rows db ~table:"Interface" ~where:[ Db.Eq ("name", Value.string name) ]
  with
  | [ (_, cols) ] -> begin
      match List.assoc_opt "type" cols with
      | Some (Value.Atom (Value.String s)) -> Some s
      | _ -> None
    end
  | _ -> None
