(** OVSDB values, after RFC 7047: atoms, sets and maps. The NSX agent
    configures bridges, ports and interfaces through these (Fig 7's OVSDB
    channel). *)

type uuid = string

(* deterministic uuid generation: OVSDB semantics need uniqueness, not
   unpredictability *)
let uuid_counter = ref 0

let fresh_uuid () =
  incr uuid_counter;
  Printf.sprintf "%08x-0000-4000-8000-%012x" !uuid_counter (!uuid_counter * 2654435761)

type atom =
  | String of string
  | Int of int
  | Real of float
  | Bool of bool
  | Uuid of uuid

type t =
  | Atom of atom
  | Set of atom list  (** unordered, duplicate-free *)
  | Map of (atom * atom) list

let string s = Atom (String s)
let int i = Atom (Int i)
let bool b = Atom (Bool b)
let uuid u = Atom (Uuid u)
let empty_set = Set []

let atom_equal a b =
  match (a, b) with
  | String x, String y -> String.equal x y
  | Int x, Int y -> x = y
  | Real x, Real y -> x = y
  | Bool x, Bool y -> x = y
  | Uuid x, Uuid y -> String.equal x y
  | _ -> false

let equal v w =
  match (v, w) with
  | Atom a, Atom b -> atom_equal a b
  | Set a, Set b ->
      List.length a = List.length b
      && List.for_all (fun x -> List.exists (atom_equal x) b) a
  | Map a, Map b ->
      List.length a = List.length b
      && List.for_all
           (fun (k, v) -> List.exists (fun (k', v') -> atom_equal k k' && atom_equal v v') b)
           a
  | _ -> false

(** Set insertion/removal (the [mutate] operation's building blocks). *)
let set_add v a =
  match v with
  | Set s -> if List.exists (atom_equal a) s then Set s else Set (a :: s)
  | Atom _ | Map _ -> invalid_arg "Value.set_add: not a set"

let set_remove v a =
  match v with
  | Set s -> Set (List.filter (fun x -> not (atom_equal x a)) s)
  | Atom _ | Map _ -> invalid_arg "Value.set_remove: not a set"

let set_members = function
  | Set s -> s
  | Atom a -> [ a ]  (* RFC 7047: a single atom is a one-element set *)
  | Map _ -> invalid_arg "Value.set_members: map"

let map_get v k =
  match v with
  | Map m -> List.find_map (fun (k', x) -> if atom_equal k k' then Some x else None) m
  | Atom _ | Set _ -> None

let map_put v k x =
  match v with
  | Map m -> Map ((k, x) :: List.filter (fun (k', _) -> not (atom_equal k k')) m)
  | Atom _ | Set _ -> invalid_arg "Value.map_put: not a map"

let pp_atom ppf = function
  | String s -> Fmt.pf ppf "%S" s
  | Int i -> Fmt.int ppf i
  | Real r -> Fmt.float ppf r
  | Bool b -> Fmt.bool ppf b
  | Uuid u -> Fmt.pf ppf "<%s>" u

let pp ppf = function
  | Atom a -> pp_atom ppf a
  | Set s -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_atom) s
  | Map m ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") pp_atom pp_atom))
        m

(** Reset uuid generation (test isolation). *)
let reset_uuids () = uuid_counter := 0
