(** The OVSDB database engine: schema, rows, atomic transactions, and
    monitors — the management channel of Fig 7 (the NSX agent "uses OVSDB,
    a protocol for managing OpenFlow switches, to create two bridges").

    Transactions are lists of operations executed atomically: any failed
    operation rolls the whole transaction back, exactly like the wire
    protocol's semantics. Monitors receive row-level change notifications
    after a successful commit, which is how ovs-vswitchd reconfigures
    itself when the agent writes. *)

type column = { col_name : string; default : Value.t }

type table_schema = { tbl_name : string; columns : column list }

type schema = { db_name : string; tables : table_schema list }

(** The subset of the Open_vSwitch schema the system needs. *)
let open_vswitch_schema =
  let col ?(default = Value.empty_set) col_name = { col_name; default } in
  {
    db_name = "Open_vSwitch";
    tables =
      [
        {
          tbl_name = "Open_vSwitch";
          columns =
            [ col "bridges"; col ~default:(Value.string "") "ovs_version";
              col ~default:(Value.Map []) "external_ids" ];
        };
        {
          tbl_name = "Bridge";
          columns =
            [ col ~default:(Value.string "") "name"; col "ports";
              col ~default:(Value.string "") "datapath_type";
              col ~default:(Value.Map []) "external_ids";
              col ~default:(Value.Map []) "other_config" ];
        };
        {
          tbl_name = "Port";
          columns = [ col ~default:(Value.string "") "name"; col "interfaces" ];
        };
        {
          tbl_name = "Interface";
          columns =
            [ col ~default:(Value.string "") "name";
              col ~default:(Value.string "system") "type";
              col ~default:(Value.Map []) "options";
              col ~default:(Value.int (-1)) "ofport";
              col ~default:(Value.Map []) "status" ];
        };
        {
          tbl_name = "Controller";
          columns = [ col ~default:(Value.string "") "target" ];
        };
      ];
  }

type row = (string, Value.t) Hashtbl.t

type table = { schema : table_schema; rows : (Value.uuid, row) Hashtbl.t }

type change = Row_insert of Value.uuid | Row_update of Value.uuid | Row_delete of Value.uuid

type monitor = { mon_table : string; callback : change -> unit }

type t = {
  tables_by_name : (string, table) Hashtbl.t;
  mutable monitors : monitor list;
  mutable next_txn : int;
}

let create ?(schema = open_vswitch_schema) () =
  let tables_by_name = Hashtbl.create 8 in
  List.iter
    (fun ts -> Hashtbl.replace tables_by_name ts.tbl_name { schema = ts; rows = Hashtbl.create 16 })
    schema.tables;
  { tables_by_name; monitors = []; next_txn = 0 }

exception Txn_error of string

let table t name =
  match Hashtbl.find_opt t.tables_by_name name with
  | Some tbl -> tbl
  | None -> raise (Txn_error (Printf.sprintf "no table %S" name))

(* -- conditions (the [where] clauses) -- *)

type condition =
  | Eq of string * Value.t
  | Includes of string * Value.atom  (** set membership *)
  | True

let row_matches (r : row) = function
  | True -> true
  | Eq (col, v) -> (
      match Hashtbl.find_opt r col with Some x -> Value.equal x v | None -> false)
  | Includes (col, a) -> (
      match Hashtbl.find_opt r col with
      | Some (Value.Set s) -> List.exists (Value.atom_equal a) s
      | Some (Value.Atom x) -> Value.atom_equal x a
      | _ -> false)

(* -- operations -- *)

type operation =
  | Insert of { op_table : string; values : (string * Value.t) list; uuid_name : string option }
  | Update of { op_table : string; where : condition list; values : (string * Value.t) list }
  | Mutate of {
      op_table : string;
      where : condition list;
      col : string;
      mutator : [ `Insert of Value.atom | `Delete of Value.atom ];
    }
  | Delete of { op_table : string; where : condition list }
  | Select of { op_table : string; where : condition list }

type op_result =
  | Inserted of Value.uuid
  | Count of int
  | Rows of (Value.uuid * (string * Value.t) list) list

(* deep-copy a table's rows for rollback *)
let snapshot t =
  Hashtbl.fold
    (fun name tbl acc -> (name, Hashtbl.copy tbl.rows, Hashtbl.fold
        (fun u r acc -> (u, Hashtbl.copy r) :: acc) tbl.rows []) :: acc)
    t.tables_by_name []

let restore t snap =
  List.iter
    (fun (name, _, rows) ->
      let tbl = table t name in
      Hashtbl.reset tbl.rows;
      List.iter (fun (u, r) -> Hashtbl.replace tbl.rows u r) rows)
    snap

let notify t tbl_name change =
  List.iter
    (fun m -> if m.mon_table = tbl_name then m.callback change)
    t.monitors

(** Execute one transaction atomically. Returns per-operation results, or
    raises {!Txn_error} after rolling every effect back. The [uuid_name]
    mechanism lets later operations in the same transaction reference rows
    inserted by earlier ones, as the wire protocol's named-uuids do. *)
let transact t (ops : operation list) : op_result list =
  let snap = snapshot t in
  let named : (string, Value.uuid) Hashtbl.t = Hashtbl.create 4 in
  (* replace named-uuid placeholders "@name" with the real uuid, anywhere
     a uuid can appear: bare atoms, set members, map keys and values *)
  let resolve_atom = function
    | Value.Uuid u when String.length u > 0 && u.[0] = '@' -> begin
        match Hashtbl.find_opt named (String.sub u 1 (String.length u - 1)) with
        | Some real -> Value.Uuid real
        | None -> raise (Txn_error ("unknown named uuid " ^ u))
      end
    | other -> other
  in
  let resolve = function
    | Value.Atom a -> Value.Atom (resolve_atom a)
    | Value.Set s -> Value.Set (List.map resolve_atom s)
    | Value.Map m -> Value.Map (List.map (fun (k, v) -> (resolve_atom k, resolve_atom v)) m)
  in
  let changes = ref [] in
  let run op =
    match op with
    | Insert { op_table; values; uuid_name } ->
        let tbl = table t op_table in
        let row : row = Hashtbl.create 8 in
        List.iter
          (fun c -> Hashtbl.replace row c.col_name c.default)
          tbl.schema.columns;
        List.iter
          (fun (col, v) ->
            if not (List.exists (fun c -> c.col_name = col) tbl.schema.columns) then
              raise (Txn_error (Printf.sprintf "no column %S in %S" col op_table));
            Hashtbl.replace row col (resolve v))
          values;
        let u = Value.fresh_uuid () in
        Hashtbl.replace tbl.rows u row;
        (match uuid_name with Some n -> Hashtbl.replace named n u | None -> ());
        changes := (op_table, Row_insert u) :: !changes;
        Inserted u
    | Update { op_table; where; values } ->
        let tbl = table t op_table in
        let n = ref 0 in
        Hashtbl.iter
          (fun u row ->
            if List.for_all (row_matches row) where then begin
              incr n;
              List.iter (fun (col, v) -> Hashtbl.replace row col (resolve v)) values;
              changes := (op_table, Row_update u) :: !changes
            end)
          tbl.rows;
        Count !n
    | Mutate { op_table; where; col; mutator } ->
        let tbl = table t op_table in
        let n = ref 0 in
        Hashtbl.iter
          (fun u row ->
            if List.for_all (row_matches row) where then begin
              incr n;
              let current =
                match Hashtbl.find_opt row col with
                | Some v -> v
                | None -> raise (Txn_error ("no column " ^ col))
              in
              let updated =
                match mutator with
                | `Insert a -> Value.set_add current (resolve_atom a)
                | `Delete a -> Value.set_remove current (resolve_atom a)
              in
              Hashtbl.replace row col updated;
              changes := (op_table, Row_update u) :: !changes
            end)
          tbl.rows;
        if !n = 0 then raise (Txn_error "mutate matched no rows");
        Count !n
    | Delete { op_table; where } ->
        let tbl = table t op_table in
        let victims =
          Hashtbl.fold
            (fun u row acc -> if List.for_all (row_matches row) where then u :: acc else acc)
            tbl.rows []
        in
        List.iter
          (fun u ->
            Hashtbl.remove tbl.rows u;
            changes := (op_table, Row_delete u) :: !changes)
          victims;
        Count (List.length victims)
    | Select { op_table; where } ->
        let tbl = table t op_table in
        Rows
          (Hashtbl.fold
             (fun u row acc ->
               if List.for_all (row_matches row) where then
                 (u, Hashtbl.fold (fun k v acc -> (k, v) :: acc) row []) :: acc
               else acc)
             tbl.rows [])
  in
  match List.map run ops with
  | results ->
      t.next_txn <- t.next_txn + 1;
      List.iter (fun (tbl, ch) -> notify t tbl ch) (List.rev !changes);
      results
  | exception e ->
      restore t snap;
      raise e

(** Register a monitor on a table; returns an unregister function. *)
let monitor t ~table:mon_table ~callback =
  let m = { mon_table; callback } in
  t.monitors <- m :: t.monitors;
  fun () -> t.monitors <- List.filter (fun m' -> m' != m) t.monitors

(* -- convenience reads -- *)

let get_column t ~table:name ~uuid ~column =
  let tbl = table t name in
  match Hashtbl.find_opt tbl.rows uuid with
  | Some row -> Hashtbl.find_opt row column
  | None -> None

let find_rows t ~table:name ~where =
  match transact t [ Select { op_table = name; where } ] with
  | [ Rows rows ] -> rows
  | _ -> []

let row_count t ~table:name = Hashtbl.length (table t name).rows
