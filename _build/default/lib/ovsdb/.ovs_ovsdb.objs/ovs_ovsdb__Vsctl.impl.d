lib/ovsdb/vsctl.ml: Db Fmt List Value
