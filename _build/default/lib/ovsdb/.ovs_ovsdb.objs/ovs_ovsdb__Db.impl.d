lib/ovsdb/db.ml: Hashtbl List Printf String Value
