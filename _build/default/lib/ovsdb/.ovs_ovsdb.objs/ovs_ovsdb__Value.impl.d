lib/ovsdb/value.ml: Fmt List Printf String
