(** PMD receive-queue assignment (pmd-rxq-assign): distributing NIC
    receive queues over the dedicated poll-mode threads of O1, either
    round-robin or by measured load (OVS's cycles-based placement:
    longest-processing-time greedy). *)

type assignment = { queue_to_pmd : int array; n_pmds : int }

val round_robin : n_queues:int -> n_pmds:int -> assignment

val cycles_based : loads:float array -> n_pmds:int -> assignment
(** Queues sorted by descending measured load, each placed on the
    currently least-loaded PMD. Only load ratios matter. *)

val pmd_loads : assignment -> loads:float array -> float array
(** Aggregate load per PMD under an assignment. *)

val imbalance : assignment -> loads:float array -> float
(** Bottleneck PMD's load over the mean; 1.0 is a perfect split. *)

val effective_scaling : assignment -> loads:float array -> float
(** Ideal scaling ([n_pmds]) divided by the imbalance — the pipeline's
    actual throughput multiplier. *)
