(** PMD receive-queue assignment (pmd-rxq-assign): distributing NIC
    receive queues over the dedicated poll-mode threads of O1.

    OVS supports a naive round-robin placement and the cycles-based
    placement (sort queues by measured processing cycles, then greedily
    give each to the least-loaded PMD — longest-processing-time
    scheduling). With skewed queue loads the difference decides whether
    one PMD saturates while others idle, which is why Fig 12's scaling
    depends on where the rxqs land. *)

type assignment = { queue_to_pmd : int array; n_pmds : int }

let round_robin ~n_queues ~n_pmds =
  if n_pmds <= 0 then invalid_arg "Rxq_sched.round_robin";
  { queue_to_pmd = Array.init n_queues (fun q -> q mod n_pmds); n_pmds }

(** Cycles-based placement: queues sorted by descending load, each placed
    on the currently least-loaded PMD. [loads.(q)] is queue [q]'s measured
    cost (cycles or packets — only ratios matter). *)
let cycles_based ~(loads : float array) ~n_pmds =
  if n_pmds <= 0 then invalid_arg "Rxq_sched.cycles_based";
  let n_queues = Array.length loads in
  let order = Array.init n_queues (fun i -> i) in
  Array.sort (fun a b -> compare loads.(b) loads.(a)) order;
  let pmd_load = Array.make n_pmds 0. in
  let queue_to_pmd = Array.make n_queues 0 in
  Array.iter
    (fun q ->
      let best = ref 0 in
      for p = 1 to n_pmds - 1 do
        if pmd_load.(p) < pmd_load.(!best) then best := p
      done;
      queue_to_pmd.(q) <- !best;
      pmd_load.(!best) <- pmd_load.(!best) +. loads.(q))
    order;
  { queue_to_pmd; n_pmds }

(** Per-PMD aggregate load under an assignment. *)
let pmd_loads t ~(loads : float array) =
  let acc = Array.make t.n_pmds 0. in
  Array.iteri (fun q p -> acc.(p) <- acc.(p) +. loads.(q)) t.queue_to_pmd;
  acc

(** Imbalance factor: the bottleneck PMD's load over the mean (1.0 is a
    perfect split; the pipeline's throughput scales with its inverse). *)
let imbalance t ~loads =
  let per_pmd = pmd_loads t ~loads in
  let total = Array.fold_left ( +. ) 0. per_pmd in
  if total <= 0. then 1.
  else begin
    let max_load = Array.fold_left Float.max 0. per_pmd in
    max_load /. (total /. float_of_int t.n_pmds)
  end

(** Effective throughput scale of [n_pmds] under this assignment: ideal
    scaling divided by the imbalance. *)
let effective_scaling t ~loads = float_of_int t.n_pmds /. imbalance t ~loads
