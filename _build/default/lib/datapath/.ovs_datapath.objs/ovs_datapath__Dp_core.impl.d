lib/datapath/dp_core.ml: Array Float Fmt Hashtbl Int List Ovs_conntrack Ovs_flow Ovs_ofproto Ovs_packet Ovs_sim Printf Set_field String
