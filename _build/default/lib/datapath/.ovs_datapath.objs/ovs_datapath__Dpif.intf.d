lib/datapath/dpif.mli: Dp_core Ovs_conntrack Ovs_ebpf Ovs_netdev Ovs_ofproto Ovs_sim Ovs_xsk
