lib/datapath/dpif.ml: Array Dp_core Int Int64 List Ovs_ebpf Ovs_netdev Ovs_packet Ovs_sim Ovs_xsk
