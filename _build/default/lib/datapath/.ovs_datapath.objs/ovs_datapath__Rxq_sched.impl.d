lib/datapath/rxq_sched.ml: Array Float
