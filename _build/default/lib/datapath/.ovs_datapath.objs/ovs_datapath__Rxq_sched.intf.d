lib/datapath/rxq_sched.mli:
