lib/datapath/set_field.ml: Buffer Ethernet Ipv4 Ovs_packet Tcp Udp
