(** The datapath interface: one engine, four flavors.

    [Kernel] is the traditional openvswitch.ko module; [Kernel_ebpf] the
    paper's Sec 2.2.2 eBPF prototype; [Dpdk] the all-userspace OVS-DPDK;
    [Afxdp] the paper's contribution, with every Sec 3.2 optimization as a
    switch. The engine moves real packets through real caches and rings,
    charging calibrated virtual time to the supplied execution contexts;
    experiments read throughput as packets over the bottleneck context's
    busy time and CPU usage from the context breakdown. *)

type afxdp_opts = {
  pmd_threads : bool;  (** O1: dedicated poll-mode threads *)
  lock : Ovs_xsk.Umempool.lock_strategy;  (** O2/O3 *)
  metadata : Ovs_xsk.Dp_packet_pool.mode;  (** O4 *)
  csum_offload : bool;  (** O5: emulated checksum offload *)
  copy_mode : bool;  (** XDP_SKB universal fallback (extra copy) *)
  batch_size : int;
}

val afxdp_default : afxdp_opts
(** The fully optimized configuration (the merged upstream default). *)

val afxdp_ladder : (string * afxdp_opts) list
(** Table 2's cumulative optimization levels, "none" through O1..O5. *)

type kind = Kernel | Kernel_ebpf | Dpdk | Afxdp of afxdp_opts

val kind_name : kind -> string

(** How a port is attached to this datapath. *)
type attach =
  | At_phy_kernel  (** kernel driver rx/tx in softirq *)
  | At_phy_dpdk  (** userspace PMD driver *)
  | At_phy_xsk of {
      xsks : Ovs_xsk.Xsk.t array;  (** one per queue *)
      pool : Ovs_xsk.Umempool.t;
      mutable prog : Ovs_ebpf.Xdp.t;  (** replaceable without restarting *)
    }
  | At_tap
  | At_vhost
  | At_veth

type port = { dev : Ovs_netdev.Netdev.t; attach : attach; port_no : int }

type t = {
  kind : kind;
  costs : Ovs_sim.Costs.t;
  core : Dp_core.t;
  mutable ports : port list;
  mutable next_port : int;
  mutable serialized_tx : Ovs_sim.Time.ns;
      (** kernel tx-queue critical-section accumulation: a rate floor the
          harness applies to the wall time in multiqueue runs *)
  mutable active_queues : int;
  metadata_pool : Ovs_xsk.Dp_packet_pool.t;
  vm : Ovs_ebpf.Vm.t;
}

val create :
  ?costs:Ovs_sim.Costs.t -> kind:kind -> pipeline:Ovs_ofproto.Pipeline.t -> unit -> t

val add_port : ?queues_override:int option -> t -> Ovs_netdev.Netdev.t -> int
(** Attach a device (attachment inferred from its kind and the datapath
    flavor; AF_XDP physical ports get a umem, per-queue XSKs and the
    default redirect program). Returns the port number. *)

val port : t -> int -> port option
val conntrack : t -> Ovs_conntrack.Conntrack.t
val counters : t -> Dp_core.counters

val poll :
  t ->
  softirq:Ovs_sim.Cpu.ctx ->
  pmd:Ovs_sim.Cpu.ctx ->
  ?max:int ->
  port_no:int ->
  queue:int ->
  unit ->
  int
(** Poll one port's queue and run every dequeued packet through the
    datapath: kernel-side work (driver, XDP, XSK delivery) charges
    [softirq]; userspace work charges [pmd]. Returns packets seen. *)

val set_active_queues : t -> int -> unit
(** How many receive queues carry traffic (drives the kernel's multiqueue
    contention model). *)

val set_xdp_program : t -> port_no:int -> Ovs_ebpf.Xdp.t -> unit
(** Swap the XDP program on an AF_XDP physical port without restarting
    OVS (Secs 3.4/3.5). *)

val reset_measurement : t -> unit
(** Zero the counters and serialized-time accumulators between a warmup
    and a measurement phase (caches stay warm). *)
