(** ARP over Ethernet/IPv4 (request, reply), for the tools model (arping,
    the kernel neighbour table replica) and pipeline matching. *)

let payload_len = 28

module Op = struct
  let request = 1
  let reply = 2
end

type t = {
  op : int;
  sha : Mac.t;  (** sender hardware address *)
  spa : int;  (** sender protocol (IPv4) address *)
  tha : Mac.t;
  tpa : int;
}

let parse (buf : Buffer.t) : t option =
  let ofs = buf.Buffer.l3_ofs in
  if ofs < 0 || Buffer.length buf < ofs + payload_len then None
  else if
    Buffer.get_u16 buf ofs <> 1 (* htype ethernet *)
    || Buffer.get_u16 buf (ofs + 2) <> Ethernet.Ethertype.ipv4
  then None
  else
    Some
      {
        op = Buffer.get_u16 buf (ofs + 6);
        sha = Mac.of_bytes buf.Buffer.data ~off:(Buffer.abs buf (ofs + 8));
        spa = Buffer.get_u32 buf (ofs + 14);
        tha = Mac.of_bytes buf.Buffer.data ~off:(Buffer.abs buf (ofs + 18));
        tpa = Buffer.get_u32 buf (ofs + 24);
      }

let write (buf : Buffer.t) ~op ~sha ~spa ~tha ~tpa =
  let ofs = buf.Buffer.l3_ofs in
  Buffer.set_u16 buf ofs 1;
  Buffer.set_u16 buf (ofs + 2) Ethernet.Ethertype.ipv4;
  Buffer.set_u8 buf (ofs + 4) 6;
  Buffer.set_u8 buf (ofs + 5) 4;
  Buffer.set_u16 buf (ofs + 6) op;
  Mac.to_bytes sha buf.Buffer.data ~off:(Buffer.abs buf (ofs + 8));
  Buffer.set_u32 buf (ofs + 14) spa;
  Mac.to_bytes tha buf.Buffer.data ~off:(Buffer.abs buf (ofs + 18));
  Buffer.set_u32 buf (ofs + 24) tpa
