(** UDP header. *)

let header_len = 8

type t = { src_port : int; dst_port : int; len : int; csum : int }

let parse (buf : Buffer.t) : t option =
  let ofs = buf.Buffer.l4_ofs in
  if ofs < 0 || Buffer.length buf < ofs + header_len then None
  else
    Some
      {
        src_port = Buffer.get_u16 buf ofs;
        dst_port = Buffer.get_u16 buf (ofs + 2);
        len = Buffer.get_u16 buf (ofs + 4);
        csum = Buffer.get_u16 buf (ofs + 6);
      }

(** Write the header at [buf.l4_ofs]. [len] covers header plus payload.
    When [fill_csum] (default true) the UDP checksum is computed in software
    over the pseudo-header; pass [false] to model checksum offload (field
    left zero, which IPv4 UDP permits). *)
let write (buf : Buffer.t) ?(fill_csum = true) ~src_port ~dst_port ~len ~ip_src
    ~ip_dst () =
  let ofs = buf.Buffer.l4_ofs in
  Buffer.set_u16 buf ofs src_port;
  Buffer.set_u16 buf (ofs + 2) dst_port;
  Buffer.set_u16 buf (ofs + 4) len;
  Buffer.set_u16 buf (ofs + 6) 0;
  if fill_csum then begin
    let c =
      Checksum.compute_pseudo buf.Buffer.data ~off:(Buffer.abs buf ofs) ~len
        ~src:ip_src ~dst:ip_dst ~proto:Ipv4.Proto.udp
    in
    (* an all-zero result is transmitted as 0xFFFF, per RFC 768 *)
    Buffer.set_u16 buf (ofs + 6) (if c = 0 then 0xFFFF else c)
  end

let set_src_port (buf : Buffer.t) p = Buffer.set_u16 buf buf.Buffer.l4_ofs p
let set_dst_port (buf : Buffer.t) p = Buffer.set_u16 buf (buf.Buffer.l4_ofs + 2) p
