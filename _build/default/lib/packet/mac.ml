(** Ethernet MAC addresses, stored as a 48-bit value in a native [int]. *)

type t = int

let broadcast : t = 0xFFFF_FFFF_FFFF

let of_bytes (b : Bytes.t) ~(off : int) : t =
  let hi = Bytes.get_uint16_be b off in
  let mid = Bytes.get_uint16_be b (off + 2) in
  let lo = Bytes.get_uint16_be b (off + 4) in
  (hi lsl 32) lor (mid lsl 16) lor lo

let to_bytes (m : t) (b : Bytes.t) ~(off : int) =
  Bytes.set_uint16_be b off ((m lsr 32) land 0xFFFF);
  Bytes.set_uint16_be b (off + 2) ((m lsr 16) land 0xFFFF);
  Bytes.set_uint16_be b (off + 4) (m land 0xFFFF)

(** Parse "aa:bb:cc:dd:ee:ff". Raises [Invalid_argument] on bad syntax. *)
let of_string s : t =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      List.fold_left
        (fun acc part -> (acc lsl 8) lor int_of_string ("0x" ^ part))
        0 [ a; b; c; d; e; f ]
  | _ -> invalid_arg ("Mac.of_string: " ^ s)

let to_string (m : t) =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((m lsr 40) land 0xFF)
    ((m lsr 32) land 0xFF) ((m lsr 24) land 0xFF) ((m lsr 16) land 0xFF)
    ((m lsr 8) land 0xFF) (m land 0xFF)

let pp ppf m = Fmt.string ppf (to_string m)

let is_multicast (m : t) = (m lsr 40) land 0x01 = 1

(** A locally-administered unicast MAC derived from a small integer, handy
    for generating distinct endpoint addresses in workloads. *)
let of_index i : t = 0x0200_0000_0000 lor (i land 0xFFFF_FFFF)
