(** RFC 1071 Internet checksum, as used by IPv4, UDP, TCP and ICMP. *)

(** One's-complement sum of 16-bit big-endian words over [len] bytes starting
    at [off]; a trailing odd byte is padded with zero as the low octet's
    partner, per the RFC. *)
let sum (b : Bytes.t) ~off ~len =
  let acc = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Bytes.get_uint8 b !i lsl 8);
  !acc

let fold (acc : int) =
  let acc = (acc land 0xFFFF) + (acc lsr 16) in
  (acc land 0xFFFF) + (acc lsr 16)

(** Finished checksum over one region. *)
let compute (b : Bytes.t) ~off ~len = lnot (fold (sum b ~off ~len)) land 0xFFFF

(** Checksum over a region plus an IPv4 pseudo-header (for UDP/TCP). *)
let compute_pseudo (b : Bytes.t) ~off ~len ~src ~dst ~proto =
  let pseudo =
    ((src lsr 16) land 0xFFFF)
    + (src land 0xFFFF)
    + ((dst lsr 16) land 0xFFFF)
    + (dst land 0xFFFF)
    + proto + len
  in
  lnot (fold (sum b ~off ~len + pseudo)) land 0xFFFF

(** A computed checksum re-verified over the same data (with the checksum
    field included) must fold to 0. *)
let verify (b : Bytes.t) ~off ~len = fold (sum b ~off ~len) = 0xFFFF

let verify_pseudo (b : Bytes.t) ~off ~len ~src ~dst ~proto =
  let pseudo =
    ((src lsr 16) land 0xFFFF)
    + (src land 0xFFFF)
    + ((dst lsr 16) land 0xFFFF)
    + (dst land 0xFFFF)
    + proto + len
  in
  fold (sum b ~off ~len + pseudo) = 0xFFFF
