(** IPv6 header. Addresses are pairs of 64-bit halves carried in [Int64]. *)

let header_len = 40

type addr = { hi : int64; lo : int64 }

let addr_zero = { hi = 0L; lo = 0L }

(** Parse a full (uncompressed-or-[::]-style) address is out of scope for the
    dataplane; tests build addresses from integers instead. *)
let addr_of_int i = { hi = 0x20010DB800000000L; lo = Int64.of_int i }

let addr_to_string a = Printf.sprintf "%Lx:%Lx" a.hi a.lo

type t = {
  tclass : int;
  flow_label : int;
  payload_len : int;
  next_header : int;
  hop_limit : int;
  src : addr;
  dst : addr;
}

let parse (buf : Buffer.t) : t option =
  let ofs = buf.Buffer.l3_ofs in
  if ofs < 0 || Buffer.length buf < ofs + header_len then None
  else begin
    let w0 = Buffer.get_u32 buf ofs in
    if w0 lsr 28 <> 6 then None
    else begin
      let get64 o =
        Int64.logor
          (Int64.shift_left (Int64.of_int (Buffer.get_u32 buf o)) 32)
          (Int64.of_int (Buffer.get_u32 buf (o + 4)))
      in
      buf.Buffer.l4_ofs <- ofs + header_len;
      Some
        {
          tclass = (w0 lsr 20) land 0xFF;
          flow_label = w0 land 0xFFFFF;
          payload_len = Buffer.get_u16 buf (ofs + 4);
          next_header = Buffer.get_u8 buf (ofs + 6);
          hop_limit = Buffer.get_u8 buf (ofs + 7);
          src = { hi = get64 (ofs + 8); lo = get64 (ofs + 16) };
          dst = { hi = get64 (ofs + 24); lo = get64 (ofs + 32) };
        }
    end
  end

let write (buf : Buffer.t) ?(tclass = 0) ?(flow_label = 0) ?(hop_limit = 64)
    ~next_header ~src ~dst ~payload_len () =
  let ofs = buf.Buffer.l3_ofs in
  Buffer.set_u32 buf ofs ((6 lsl 28) lor (tclass lsl 20) lor flow_label);
  Buffer.set_u16 buf (ofs + 4) payload_len;
  Buffer.set_u8 buf (ofs + 6) next_header;
  Buffer.set_u8 buf (ofs + 7) hop_limit;
  let put64 o (v : int64) =
    Buffer.set_u32 buf o (Int64.to_int (Int64.shift_right_logical v 32));
    Buffer.set_u32 buf (o + 4) (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  in
  put64 (ofs + 8) src.hi;
  put64 (ofs + 16) src.lo;
  put64 (ofs + 24) dst.hi;
  put64 (ofs + 32) dst.lo;
  buf.Buffer.l4_ofs <- ofs + header_len
