(** ICMPv4, enough for ping (echo request/reply) and conntrack. *)

let header_len = 8

module Kind = struct
  let echo_reply = 0
  let dest_unreachable = 3
  let echo_request = 8
  let time_exceeded = 11
end

type t = { icmp_type : int; code : int; csum : int; ident : int; seq : int }

let parse (buf : Buffer.t) : t option =
  let ofs = buf.Buffer.l4_ofs in
  if ofs < 0 || Buffer.length buf < ofs + header_len then None
  else
    Some
      {
        icmp_type = Buffer.get_u8 buf ofs;
        code = Buffer.get_u8 buf (ofs + 1);
        csum = Buffer.get_u16 buf (ofs + 2);
        ident = Buffer.get_u16 buf (ofs + 4);
        seq = Buffer.get_u16 buf (ofs + 6);
      }

let write (buf : Buffer.t) ~icmp_type ~code ~ident ~seq ~payload_len =
  let ofs = buf.Buffer.l4_ofs in
  Buffer.set_u8 buf ofs icmp_type;
  Buffer.set_u8 buf (ofs + 1) code;
  Buffer.set_u16 buf (ofs + 2) 0;
  Buffer.set_u16 buf (ofs + 4) ident;
  Buffer.set_u16 buf (ofs + 6) seq;
  let c =
    Checksum.compute buf.Buffer.data ~off:(Buffer.abs buf ofs)
      ~len:(header_len + payload_len)
  in
  Buffer.set_u16 buf (ofs + 2) c
