(** Software TCP segmentation (GSO): split an oversized TCP segment into
    MTU-sized packets with correct IP lengths and identifiers, TCP
    sequence numbers, per-segment flags and recomputed checksums.

    This is what a datapath must do when the egress device cannot take a
    64 kB TSO frame — the mechanism behind Fig 8's offload ladders, and
    one of the kernel services userspace OVS had to reimplement (Sec 6). *)

(** [segment buf ~mtu] splits a TCP/IPv4 packet whose IP datagram exceeds
    [mtu] into conforming packets. Non-TCP packets and packets already
    within the MTU are returned unchanged (singleton list). PSH/FIN are
    carried only by the last segment, as hardware TSO does. *)
let segment (buf : Buffer.t) ~mtu : Buffer.t list =
  match Ethernet.parse buf with
  | Some eth
    when eth.Ethernet.eth_type = Ethernet.Ethertype.ipv4
         && Buffer.length buf - eth.Ethernet.payload_ofs > mtu -> begin
      match Ipv4.parse buf with
      | Some ip when ip.Ipv4.proto = Ipv4.Proto.tcp -> begin
          match Tcp.parse buf with
          | None -> [ buf ]
          | Some tcp ->
              let l3 = buf.Buffer.l3_ofs and l4 = buf.Buffer.l4_ofs in
              let headers_len = l4 + tcp.Tcp.data_ofs in
              let payload_len = Buffer.length buf - headers_len in
              let mss = mtu - (l4 - l3) - tcp.Tcp.data_ofs in
              if mss <= 0 || payload_len <= mss then [ buf ]
              else begin
                let n_segments = (payload_len + mss - 1) / mss in
                List.init n_segments (fun i ->
                    let off = i * mss in
                    let chunk = Int.min mss (payload_len - off) in
                    let last = i = n_segments - 1 in
                    let seg = Buffer.create ~size:(headers_len + chunk) () in
                    Buffer.put seg (headers_len + chunk);
                    (* ethernet header verbatim *)
                    Bytes.blit buf.Buffer.data (Buffer.abs buf 0) seg.Buffer.data
                      (Buffer.abs seg 0) l3;
                    seg.Buffer.l3_ofs <- l3;
                    Ipv4.write seg ~tos:ip.Ipv4.tos
                      ~ident:((ip.Ipv4.ident + i) land 0xFFFF)
                      ~ttl:ip.Ipv4.ttl ~proto:Ipv4.Proto.tcp ~src:ip.Ipv4.src
                      ~dst:ip.Ipv4.dst
                      ~total_len:(l4 - l3 + tcp.Tcp.data_ofs + chunk)
                      ();
                    (* payload slice *)
                    Bytes.blit buf.Buffer.data
                      (Buffer.abs buf (headers_len + off))
                      seg.Buffer.data
                      (Buffer.abs seg (l4 + Tcp.header_len))
                      chunk;
                    let flags =
                      if last then tcp.Tcp.flags
                      else tcp.Tcp.flags land lnot (Tcp.Flags.fin lor Tcp.Flags.psh)
                    in
                    Tcp.write seg ~seq:((tcp.Tcp.seq + off) land 0xFFFFFFFF)
                      ~ack:tcp.Tcp.ack ~window:tcp.Tcp.window
                      ~src_port:tcp.Tcp.src_port ~dst_port:tcp.Tcp.dst_port
                      ~flags ~ip_src:ip.Ipv4.src ~ip_dst:ip.Ipv4.dst
                      ~payload_len:chunk ();
                    seg.Buffer.in_port <- buf.Buffer.in_port;
                    seg)
              end
        end
      | Some _ | None -> [ buf ]
    end
  | Some _ | None -> [ buf ]
