lib/packet/tunnel.ml: Buffer Ethernet Ipv4 Udp
