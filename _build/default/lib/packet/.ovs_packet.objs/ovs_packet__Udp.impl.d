lib/packet/udp.ml: Buffer Checksum Ipv4
