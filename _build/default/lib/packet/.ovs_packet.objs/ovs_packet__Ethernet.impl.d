lib/packet/ethernet.ml: Buffer Bytes Mac Printf
