lib/packet/ipv4.ml: Buffer Checksum Fmt Printf String
