lib/packet/buffer.ml: Bytes Fmt Int Int32
