lib/packet/gso.ml: Buffer Bytes Ethernet Int Ipv4 List Tcp
