lib/packet/arp.ml: Buffer Ethernet Mac
