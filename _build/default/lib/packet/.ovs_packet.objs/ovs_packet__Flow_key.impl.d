lib/packet/flow_key.ml: Arp Array Buffer Ethernet Fmt Icmp Int64 Ipv4 Ipv6 Mac Tcp Udp
