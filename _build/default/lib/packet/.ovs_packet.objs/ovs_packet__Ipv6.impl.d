lib/packet/ipv6.ml: Buffer Int64 Printf
