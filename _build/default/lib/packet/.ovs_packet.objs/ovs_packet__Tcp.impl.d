lib/packet/tcp.ml: Buffer Checksum Ipv4 List String
