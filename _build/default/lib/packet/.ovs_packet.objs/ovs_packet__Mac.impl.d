lib/packet/mac.ml: Bytes Fmt List Printf String
