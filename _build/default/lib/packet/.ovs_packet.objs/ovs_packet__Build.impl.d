lib/packet/build.ml: Arp Buffer Bytes Ethernet Icmp Int Ipv4 Mac Tcp Udp
