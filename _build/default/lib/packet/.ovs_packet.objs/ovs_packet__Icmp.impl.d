lib/packet/icmp.ml: Buffer Checksum
