(** Convenience constructors for well-formed packets, used by the traffic
    generators, tests and examples. *)

(** A UDP-in-IPv4-in-Ethernet packet of exactly [frame_len] bytes on the
    wire (64 for the paper's minimum-size experiments, 1518 for the MTU
    experiments). The payload is zero-filled. *)
let udp ?(frame_len = 64) ?(src_mac = Mac.of_index 1) ?(dst_mac = Mac.of_index 2)
    ?(src_ip = Ipv4.addr_of_string "10.0.0.1")
    ?(dst_ip = Ipv4.addr_of_string "10.0.0.2") ?(src_port = 1234)
    ?(dst_port = 5678) ?(fill_csum = true) ?(ttl = 64) () =
  let hdrs = Ethernet.header_len + Ipv4.header_len + Udp.header_len in
  if frame_len < hdrs then invalid_arg "Build.udp: frame too short";
  let payload = frame_len - hdrs in
  let buf = Buffer.create ~size:frame_len () in
  Buffer.put buf frame_len;
  Ethernet.write buf ~dst:dst_mac ~src:src_mac ~eth_type:Ethernet.Ethertype.ipv4;
  Ipv4.write buf ~ttl ~proto:Ipv4.Proto.udp ~src:src_ip ~dst:dst_ip
    ~total_len:(Ipv4.header_len + Udp.header_len + payload) ();
  Udp.write buf ~fill_csum ~src_port ~dst_port ~len:(Udp.header_len + payload)
    ~ip_src:src_ip ~ip_dst:dst_ip ();
  buf

(** A TCP segment with the given flags and payload length. *)
let tcp ?(payload_len = 0) ?(src_mac = Mac.of_index 1)
    ?(dst_mac = Mac.of_index 2) ?(src_ip = Ipv4.addr_of_string "10.0.0.1")
    ?(dst_ip = Ipv4.addr_of_string "10.0.0.2") ?(src_port = 40000)
    ?(dst_port = 80) ?(flags = Tcp.Flags.ack) ?(seq = 0) ?(ack = 0)
    ?(fill_csum = true) () =
  let frame_len =
    Ethernet.header_len + Ipv4.header_len + Tcp.header_len + payload_len
  in
  let buf = Buffer.create ~size:frame_len () in
  Buffer.put buf frame_len;
  Ethernet.write buf ~dst:dst_mac ~src:src_mac ~eth_type:Ethernet.Ethertype.ipv4;
  Ipv4.write buf ~proto:Ipv4.Proto.tcp ~src:src_ip ~dst:dst_ip
    ~total_len:(Ipv4.header_len + Tcp.header_len + payload_len) ();
  Tcp.write buf ~fill_csum ~seq ~ack ~src_port ~dst_port ~flags ~ip_src:src_ip
    ~ip_dst:dst_ip ~payload_len ();
  buf

(** An ICMP echo request/reply. *)
let icmp ?(src_mac = Mac.of_index 1) ?(dst_mac = Mac.of_index 2)
    ?(src_ip = Ipv4.addr_of_string "10.0.0.1")
    ?(dst_ip = Ipv4.addr_of_string "10.0.0.2")
    ?(icmp_type = Icmp.Kind.echo_request) ?(ident = 1) ?(seq = 1)
    ?(payload_len = 32) () =
  let frame_len =
    Ethernet.header_len + Ipv4.header_len + Icmp.header_len + payload_len
  in
  let buf = Buffer.create ~size:frame_len () in
  Buffer.put buf frame_len;
  Ethernet.write buf ~dst:dst_mac ~src:src_mac ~eth_type:Ethernet.Ethertype.ipv4;
  Ipv4.write buf ~proto:Ipv4.Proto.icmp ~src:src_ip ~dst:dst_ip
    ~total_len:(Ipv4.header_len + Icmp.header_len + payload_len) ();
  Icmp.write buf ~icmp_type ~code:0 ~ident ~seq ~payload_len;
  buf

(** An ICMP error (destination unreachable / time exceeded) quoting the
    IP header and first 8 L4 bytes of [offending], per RFC 792 — what a
    router sends back, and what conntrack must mark [+rel]. *)
let icmp_error ?(icmp_type = Icmp.Kind.dest_unreachable) ?(code = 3)
    ?(src_mac = Mac.of_index 9) ?(dst_mac = Mac.of_index 1) ~src_ip
    ~(offending : Buffer.t) () =
  (match Ethernet.parse offending with Some _ -> () | None -> invalid_arg "icmp_error");
  let inner_ip_ofs = offending.Buffer.l3_ofs in
  let quote_len =
    Int.min (Buffer.length offending - inner_ip_ofs) (Ipv4.header_len + 8)
  in
  let frame_len =
    Ethernet.header_len + Ipv4.header_len + Icmp.header_len + quote_len
  in
  let buf = Buffer.create ~size:frame_len () in
  Buffer.put buf frame_len;
  (* the error goes back to the offending packet's source *)
  let dst_ip =
    match Ipv4.parse offending with
    | Some ip -> ip.Ipv4.src
    | None -> invalid_arg "icmp_error: inner not IPv4"
  in
  Ethernet.write buf ~dst:dst_mac ~src:src_mac ~eth_type:Ethernet.Ethertype.ipv4;
  Ipv4.write buf ~proto:Ipv4.Proto.icmp ~src:src_ip ~dst:dst_ip
    ~total_len:(Ipv4.header_len + Icmp.header_len + quote_len) ();
  (* copy the quoted bytes in before checksumming *)
  Bytes.blit offending.Buffer.data
    (Buffer.abs offending inner_ip_ofs)
    buf.Buffer.data
    (Buffer.abs buf (buf.Buffer.l4_ofs + Icmp.header_len))
    quote_len;
  Icmp.write buf ~icmp_type ~code ~ident:0 ~seq:0 ~payload_len:quote_len;
  buf

(** An ARP request or reply frame (padded to the Ethernet minimum). *)
let arp ?(src_mac = Mac.of_index 1) ?(dst_mac = Mac.broadcast)
    ?(op = Arp.Op.request) ~spa ~tpa () =
  let frame_len = Ethernet.min_frame in
  let buf = Buffer.create ~size:frame_len () in
  Buffer.put buf frame_len;
  Ethernet.write buf ~dst:dst_mac ~src:src_mac ~eth_type:Ethernet.Ethertype.arp;
  Arp.write buf ~op ~sha:src_mac ~spa
    ~tha:(if op = Arp.Op.request then 0 else dst_mac)
    ~tpa;
  buf
