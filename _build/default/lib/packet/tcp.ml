(** TCP header. The simulation carries real TCP headers so conntrack's state
    machine and the classifier's tcp_flags matching run over real bits. *)

let header_len = 20  (** without options *)

module Flags = struct
  let fin = 0x01
  let syn = 0x02
  let rst = 0x04
  let psh = 0x08
  let ack = 0x10
  let urg = 0x20

  let to_string f =
    let parts =
      List.filter_map
        (fun (bit, s) -> if f land bit <> 0 then Some s else None)
        [ (syn, "S"); (fin, "F"); (rst, "R"); (psh, "P"); (ack, "."); (urg, "U") ]
    in
    String.concat "" parts
end

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  data_ofs : int;  (** header length in bytes *)
  flags : int;
  window : int;
  csum : int;
}

let parse (buf : Buffer.t) : t option =
  let ofs = buf.Buffer.l4_ofs in
  if ofs < 0 || Buffer.length buf < ofs + header_len then None
  else begin
    let off_flags = Buffer.get_u16 buf (ofs + 12) in
    Some
      {
        src_port = Buffer.get_u16 buf ofs;
        dst_port = Buffer.get_u16 buf (ofs + 2);
        seq = Buffer.get_u32 buf (ofs + 4);
        ack = Buffer.get_u32 buf (ofs + 8);
        data_ofs = ((off_flags lsr 12) land 0xF) * 4;
        flags = off_flags land 0x3F;
        window = Buffer.get_u16 buf (ofs + 14);
        csum = Buffer.get_u16 buf (ofs + 16);
      }
  end

(** Write a 20-byte header at [buf.l4_ofs]. [payload_len] is the data after
    the header (used for the pseudo-header checksum). *)
let write (buf : Buffer.t) ?(fill_csum = true) ?(seq = 0) ?(ack = 0)
    ?(window = 0xFFFF) ~src_port ~dst_port ~flags ~ip_src ~ip_dst ~payload_len
    () =
  let ofs = buf.Buffer.l4_ofs in
  Buffer.set_u16 buf ofs src_port;
  Buffer.set_u16 buf (ofs + 2) dst_port;
  Buffer.set_u32 buf (ofs + 4) seq;
  Buffer.set_u32 buf (ofs + 8) ack;
  Buffer.set_u16 buf (ofs + 12) ((5 lsl 12) lor (flags land 0x3F));
  Buffer.set_u16 buf (ofs + 14) window;
  Buffer.set_u16 buf (ofs + 16) 0;
  Buffer.set_u16 buf (ofs + 18) 0;
  if fill_csum then begin
    let len = header_len + payload_len in
    let c =
      Checksum.compute_pseudo buf.Buffer.data ~off:(Buffer.abs buf ofs) ~len
        ~src:ip_src ~dst:ip_dst ~proto:Ipv4.Proto.tcp
    in
    Buffer.set_u16 buf (ofs + 16) c
  end

let set_src_port (buf : Buffer.t) p = Buffer.set_u16 buf buf.Buffer.l4_ofs p
let set_dst_port (buf : Buffer.t) p = Buffer.set_u16 buf (buf.Buffer.l4_ofs + 2) p
