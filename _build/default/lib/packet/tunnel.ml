(** L3 tunnel encapsulations: Geneve, VXLAN, GRE and ERSPAN.

    These are the encapsulations the userspace datapath had to reimplement
    when it left the kernel (Sec 4, "Some features must be reimplemented"),
    and ERSPAN/GRE are the features whose out-of-tree backports the paper
    quantifies (Sec 2.1.1). Encap prepends real outer headers into the
    packet's headroom; decap strips them and records tunnel metadata. *)

type kind = Geneve | Vxlan | Gre | Erspan

let geneve_udp_port = 6081
let vxlan_udp_port = 4789
let erspan_gre_proto = 0x88BE

let geneve_header_len = 8
let vxlan_header_len = 8
let gre_header_len = 8 (* we always emit the key field *)
let erspan_header_len = 8

(** Bytes of outer headers added by each encapsulation (Ethernet + IPv4 +
    (UDP) + tunnel header). *)
let overhead = function
  | Geneve -> Ethernet.header_len + Ipv4.header_len + Udp.header_len + geneve_header_len
  | Vxlan -> Ethernet.header_len + Ipv4.header_len + Udp.header_len + vxlan_header_len
  | Gre -> Ethernet.header_len + Ipv4.header_len + gre_header_len
  | Erspan ->
      Ethernet.header_len + Ipv4.header_len + gre_header_len + erspan_header_len

let kind_to_string = function
  | Geneve -> "geneve"
  | Vxlan -> "vxlan"
  | Gre -> "gre"
  | Erspan -> "erspan"

(** Encapsulate the whole current packet as the payload of a new outer
    frame. [fill_csum=false] models outer-UDP checksum offload. *)
let encap (buf : Buffer.t) kind ?(fill_csum = true) ~vni ~src_mac ~dst_mac
    ~src_ip ~dst_ip () =
  let inner_len = Buffer.length buf in
  let oh = overhead kind in
  Buffer.push buf oh;
  Ethernet.write buf ~dst:dst_mac ~src:src_mac ~eth_type:Ethernet.Ethertype.ipv4;
  let l3 = Ethernet.header_len in
  buf.Buffer.l3_ofs <- l3;
  begin
    match kind with
    | Geneve | Vxlan ->
        let uh = Udp.header_len in
        let th = if kind = Geneve then geneve_header_len else vxlan_header_len in
        let udp_len = uh + th + inner_len in
        Ipv4.write buf ~proto:Ipv4.Proto.udp ~src:src_ip ~dst:dst_ip
          ~total_len:(Ipv4.header_len + udp_len) ();
        let l4 = l3 + Ipv4.header_len in
        buf.Buffer.l4_ofs <- l4;
        let dport = if kind = Geneve then geneve_udp_port else vxlan_udp_port in
        (* source port carries the inner flow entropy, as real encaps do *)
        let sport = 0xC000 lor (buf.Buffer.rss_hash land 0x3FFF) in
        let tofs = l4 + uh in
        if kind = Geneve then begin
          (* ver(2)=0 optlen(6)=0 | flags | protocol=0x6558 (Trans. Ether) *)
          Buffer.set_u8 buf tofs 0;
          Buffer.set_u8 buf (tofs + 1) 0;
          Buffer.set_u16 buf (tofs + 2) 0x6558;
          Buffer.set_u32 buf (tofs + 4) (vni lsl 8)
        end
        else begin
          Buffer.set_u32 buf tofs 0x0800_0000;  (* flags: VNI present *)
          Buffer.set_u32 buf (tofs + 4) (vni lsl 8)
        end;
        Udp.write buf ~fill_csum ~src_port:sport ~dst_port:dport ~len:udp_len
          ~ip_src:src_ip ~ip_dst:dst_ip ()
    | Gre | Erspan ->
        let th =
          if kind = Gre then gre_header_len else gre_header_len + erspan_header_len
        in
        Ipv4.write buf ~proto:Ipv4.Proto.gre ~src:src_ip ~dst:dst_ip
          ~total_len:(Ipv4.header_len + th + inner_len) ();
        let g = l3 + Ipv4.header_len in
        buf.Buffer.l4_ofs <- g;
        let proto = if kind = Gre then 0x6558 else erspan_gre_proto in
        Buffer.set_u16 buf g 0x2000;  (* key present *)
        Buffer.set_u16 buf (g + 2) proto;
        Buffer.set_u32 buf (g + 4) vni;
        if kind = Erspan then begin
          let e = g + gre_header_len in
          (* ERSPAN type II: ver=1, vlan=0, session id = vni low 10 bits *)
          Buffer.set_u32 buf e ((1 lsl 28) lor (vni land 0x3FF));
          Buffer.set_u32 buf (e + 4) 0
        end
  end

type decap_result = { kind : kind; md : Buffer.tunnel_md }

(** Recognize and strip an outer encapsulation. Returns [None] if the packet
    is not a recognized tunnel frame. On success the packet is reduced to
    the inner frame and [buf.tunnel] carries the tunnel metadata. *)
let decap (buf : Buffer.t) : decap_result option =
  match Ethernet.parse buf with
  | None -> None
  | Some eth when eth.Ethernet.eth_type = Ethernet.Ethertype.ipv4 -> begin
      match Ipv4.parse buf with
      | None -> None
      | Some ip when ip.Ipv4.proto = Ipv4.Proto.udp -> begin
          match Udp.parse buf with
          | None -> None
          | Some u
            when u.Udp.dst_port = geneve_udp_port
                 || u.Udp.dst_port = vxlan_udp_port ->
              let kind = if u.Udp.dst_port = geneve_udp_port then Geneve else Vxlan in
              let tofs = buf.Buffer.l4_ofs + Udp.header_len in
              if Buffer.length buf < tofs + 8 then None
              else begin
                let vni = Buffer.get_u32 buf (tofs + 4) lsr 8 in
                let opt_len =
                  if kind = Geneve then (Buffer.get_u8 buf tofs land 0x3F) * 4 else 0
                in
                let strip = tofs + 8 + opt_len in
                let md =
                  {
                    Buffer.tun_id = vni;
                    tun_src = ip.Ipv4.src;
                    tun_dst = ip.Ipv4.dst;
                  }
                in
                Buffer.pull buf strip;
                buf.Buffer.tunnel <- Some md;
                buf.Buffer.l3_ofs <- -1;
                buf.Buffer.l4_ofs <- -1;
                Some { kind; md }
              end
          | Some _ -> None
        end
      | Some ip when ip.Ipv4.proto = Ipv4.Proto.gre ->
          let g = buf.Buffer.l4_ofs in
          if Buffer.length buf < g + gre_header_len then None
          else begin
            let flags = Buffer.get_u16 buf g in
            let proto = Buffer.get_u16 buf (g + 2) in
            if flags land 0x2000 = 0 then None
            else begin
              let key = Buffer.get_u32 buf (g + 4) in
              let kind, extra =
                if proto = erspan_gre_proto then (Erspan, erspan_header_len)
                else (Gre, 0)
              in
              let strip = g + gre_header_len + extra in
              if Buffer.length buf < strip then None
              else begin
                let md =
                  {
                    Buffer.tun_id = key;
                    tun_src = ip.Ipv4.src;
                    tun_dst = ip.Ipv4.dst;
                  }
                in
                Buffer.pull buf strip;
                buf.Buffer.tunnel <- Some md;
                buf.Buffer.l3_ofs <- -1;
                buf.Buffer.l4_ofs <- -1;
                Some { kind; md }
              end
            end
          end
      | Some _ -> None
    end
  | Some _ -> None
