(** Ethernet II framing, with optional single 802.1Q VLAN tag. *)

let header_len = 14
let vlan_header_len = 4
let min_frame = 60  (** minimum payload-padded frame, excluding FCS *)

(** EtherTypes used by the pipeline. *)
module Ethertype = struct
  let ipv4 = 0x0800
  let arp = 0x0806
  let vlan = 0x8100
  let ipv6 = 0x86DD

  let to_string = function
    | 0x0800 -> "ipv4"
    | 0x0806 -> "arp"
    | 0x8100 -> "vlan"
    | 0x86DD -> "ipv6"
    | x -> Printf.sprintf "0x%04x" x
end

type t = {
  dst : Mac.t;
  src : Mac.t;
  eth_type : int;  (** ethertype after any VLAN tag *)
  vlan_tci : int;  (** 0 if untagged, else TCI with CFI bit forced for presence *)
  payload_ofs : int;  (** offset of the payload within the packet *)
}

let vlan_vid tci = tci land 0xFFF
let vlan_pcp tci = (tci lsr 13) land 0x7

(** Parse the Ethernet header at the start of [buf]. Returns [None] if the
    frame is too short. Sets [buf.l3_ofs]. *)
let parse (buf : Buffer.t) : t option =
  if Buffer.length buf < header_len then None
  else begin
    let dst = Mac.of_bytes buf.Buffer.data ~off:(Buffer.abs buf 0) in
    let src = Mac.of_bytes buf.Buffer.data ~off:(Buffer.abs buf 6) in
    let ty = Buffer.get_u16 buf 12 in
    if ty = Ethertype.vlan then
      if Buffer.length buf < header_len + vlan_header_len then None
      else begin
        let tci = Buffer.get_u16 buf 14 lor 0x1000 in
        let inner_ty = Buffer.get_u16 buf 16 in
        buf.Buffer.l3_ofs <- header_len + vlan_header_len;
        Some
          {
            dst;
            src;
            eth_type = inner_ty;
            vlan_tci = tci;
            payload_ofs = header_len + vlan_header_len;
          }
      end
    else begin
      buf.Buffer.l3_ofs <- header_len;
      Some { dst; src; eth_type = ty; vlan_tci = 0; payload_ofs = header_len }
    end
  end

(** Write an (untagged) Ethernet header at offset 0 of [buf], which must
    already have [header_len] bytes of space there. *)
let write (buf : Buffer.t) ~dst ~src ~eth_type =
  Mac.to_bytes dst buf.Buffer.data ~off:(Buffer.abs buf 0);
  Mac.to_bytes src buf.Buffer.data ~off:(Buffer.abs buf 6);
  Buffer.set_u16 buf 12 eth_type;
  buf.Buffer.l3_ofs <- header_len

let set_dst (buf : Buffer.t) (m : Mac.t) =
  Mac.to_bytes m buf.Buffer.data ~off:(Buffer.abs buf 0)

let set_src (buf : Buffer.t) (m : Mac.t) =
  Mac.to_bytes m buf.Buffer.data ~off:(Buffer.abs buf 6)

let get_dst (buf : Buffer.t) = Mac.of_bytes buf.Buffer.data ~off:(Buffer.abs buf 0)
let get_src (buf : Buffer.t) = Mac.of_bytes buf.Buffer.data ~off:(Buffer.abs buf 6)

(** Insert an 802.1Q tag with the given TCI just after the MAC addresses. *)
let push_vlan (buf : Buffer.t) ~tci =
  Buffer.push buf vlan_header_len;
  (* move the MAC addresses back to the new front *)
  Bytes.blit buf.Buffer.data
    (Buffer.abs buf vlan_header_len)
    buf.Buffer.data (Buffer.abs buf 0) 12;
  let inner_ty = Buffer.get_u16 buf (12 + vlan_header_len) in
  Buffer.set_u16 buf 12 Ethertype.vlan;
  Buffer.set_u16 buf 14 (tci land 0xFFFF land lnot 0x1000);
  Buffer.set_u16 buf 16 inner_ty

(** Remove an 802.1Q tag; no-op if the frame is untagged. *)
let pop_vlan (buf : Buffer.t) =
  if Buffer.length buf >= header_len + vlan_header_len
     && Buffer.get_u16 buf 12 = Ethertype.vlan
  then begin
    let inner_ty = Buffer.get_u16 buf 16 in
    Bytes.blit buf.Buffer.data (Buffer.abs buf 0) buf.Buffer.data
      (Buffer.abs buf vlan_header_len) 12;
    Buffer.pull buf vlan_header_len;
    Buffer.set_u16 buf 12 inner_ty
  end
