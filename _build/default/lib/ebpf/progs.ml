(** The XDP program library: every eBPF program the paper's system loads.

    [xsk_default] is the "tiny eBPF helper program" of Sec 2.2.3 that sends
    every packet to OVS userspace. [task_a]..[task_d] are Table 5's
    complexity ladder. [l4_load_balancer], [veth_redirect] and
    [steer_control] are the Sec 3.5 extensions (and path C of Figure 5).

    All programs pass {!Verifier.verify}; the test suite enforces this. *)

open Insn

(* Common prologue: r6 = data, r7 = data_end, with [bytes] proven readable;
   jumps to [out] when the packet is shorter. *)
let bounds_check b ~bytes ~out =
  Asm.ld b W R6 R1 0;
  Asm.ld b W R7 R1 4;
  Asm.mov_reg b R8 R6;
  Asm.add b R8 bytes;
  Asm.jcond b Jgt R8 (Reg R7) out

(** Send every packet up the AF_XDP socket for its receive queue; packets
    arriving on a queue with no bound socket fall through to the kernel
    stack (XDP_PASS), so management traffic keeps working. *)
let xsk_default ~(xskmap : Maps.t) : Insn.t array =
  let b = Asm.builder () in
  Asm.ld b W R2 R1 12;  (* rx_queue_index *)
  Asm.ld_map_fd b R1 xskmap;
  Asm.mov b R3 Asm.xdp_pass;
  Asm.call b Redirect_map;
  Asm.exit_ b;
  Asm.finish b

(** Pass everything to the network stack (the no-op hook). *)
let pass_all : Insn.t array =
  let b = Asm.builder () in
  Asm.ret b Asm.xdp_pass;
  Asm.finish b

(** Table 5, task A: drop every packet without reading it. *)
let task_a : Insn.t array =
  let b = Asm.builder () in
  Asm.ret b Asm.xdp_drop;
  Asm.finish b

(* Parse Ethernet + IPv4 into r0-scratch registers; non-IPv4 and short
   packets jump to [bad]. After this: r6=data, 38 bytes proven, r5=proto. *)
let parse_eth_ipv4 b ~bad =
  bounds_check b ~bytes:38 ~out:bad;
  Asm.ld b H R2 R6 12;  (* ethertype *)
  Asm.jcond b Jne R2 (Imm 0x0800) bad;
  Asm.ld b B R2 R6 14;  (* version/ihl *)
  Asm.and_ b R2 0xF0;
  Asm.jcond b Jne R2 (Imm 0x40) bad;
  Asm.ld b B R5 R6 23 (* protocol *)

(** Table 5, task B: parse Ethernet and IPv4 headers, then drop. *)
let task_b : Insn.t array =
  let b = Asm.builder () in
  parse_eth_ipv4 b ~bad:"drop";
  Asm.label b "drop";
  Asm.ret b Asm.xdp_drop;
  Asm.finish b

(** Table 5, task C: parse, look the destination MAC up in an L2 table,
    then drop. *)
let task_c ~(l2_table : Maps.t) : Insn.t array =
  let b = Asm.builder () in
  parse_eth_ipv4 b ~bad:"drop";
  (* compose the 48-bit destination MAC into r2 *)
  Asm.ld b W R2 R6 0;
  Asm.emit b (Alu64 (Lsh, R2, Imm 16));
  Asm.ld b H R3 R6 4;
  Asm.emit b (Alu64 (Or, R2, Reg R3));
  Asm.st b DW R10 (-8) (Reg R2);
  Asm.ld_map_fd b R1 l2_table;
  Asm.mov_reg b R2 R10;
  Asm.add b R2 (-8);
  Asm.call b Map_lookup;
  Asm.label b "drop";
  Asm.ret b Asm.xdp_drop;
  Asm.finish b

(** Table 5, task D: parse, swap source and destination MACs, and transmit
    back out the same port. *)
let task_d : Insn.t array =
  let b = Asm.builder () in
  parse_eth_ipv4 b ~bad:"drop";
  (* load both MACs (as 4+2 bytes), store them swapped *)
  Asm.ld b W R2 R6 0;
  Asm.ld b H R3 R6 4;
  Asm.ld b W R4 R6 6;
  Asm.ld b H R5 R6 10;
  Asm.st b W R6 0 (Reg R4);
  Asm.st b H R6 4 (Reg R5);
  Asm.st b W R6 6 (Reg R2);
  Asm.st b H R6 10 (Reg R3);
  Asm.ret b Asm.xdp_tx;
  Asm.label b "drop";
  Asm.ret b Asm.xdp_drop;
  Asm.finish b

(** Sec 3.5: an L4 load balancer in XDP. Packets whose 5-tuple hash hits
    [sessions] are rewritten to the chosen backend's MAC and transmitted
    directly; everything else goes to OVS userspace via [xskmap]. *)
let l4_load_balancer ~(sessions : Maps.t) ~(xskmap : Maps.t) : Insn.t array =
  let b = Asm.builder () in
  (* ctx must survive the map_lookup call (r1-r5 are caller-saved) *)
  Asm.mov_reg b R9 R1;
  bounds_check b ~bytes:42 ~out:"upcall";
  Asm.ld b H R2 R6 12;
  Asm.jcond b Jne R2 (Imm 0x0800) "upcall";
  (* 5-tuple key: src ip ^ (dst ip << 17) ^ (ports << 31) ^ proto *)
  Asm.ld b W R2 R6 26;
  Asm.ld b W R3 R6 30;
  Asm.emit b (Alu64 (Lsh, R3, Imm 17));
  Asm.emit b (Alu64 (Xor, R2, Reg R3));
  Asm.ld b W R3 R6 34;  (* both L4 ports *)
  Asm.emit b (Alu64 (Lsh, R3, Imm 31));
  Asm.emit b (Alu64 (Xor, R2, Reg R3));
  Asm.ld b B R3 R6 23;
  Asm.emit b (Alu64 (Xor, R2, Reg R3));
  Asm.st b DW R10 (-8) (Reg R2);
  Asm.ld_map_fd b R1 sessions;
  Asm.mov_reg b R2 R10;
  Asm.add b R2 (-8);
  Asm.call b Map_lookup;
  Asm.jcond b Jeq R0 (Imm 0) "upcall";
  (* rewrite the destination MAC to the backend stored in the session *)
  Asm.ld b DW R2 R0 0;
  Asm.mov_reg b R3 R2;
  Asm.emit b (Alu64 (Rsh, R3, Imm 16));
  Asm.st b W R6 0 (Reg R3);
  Asm.st b H R6 4 (Reg R2);
  Asm.ret b Asm.xdp_tx;
  Asm.label b "upcall";
  (* miss: hand the packet to OVS userspace through the XSK *)
  Asm.ld b W R2 R9 12;
  Asm.ld_map_fd b R1 xskmap;
  Asm.mov b R3 Asm.xdp_pass;
  Asm.call b Redirect_map;
  Asm.exit_ b;
  Asm.finish b

(** Sec 3.4 / Fig 5 path C: redirect container-bound packets straight to
    the destination veth at the driver level, bypassing OVS userspace.
    [mac_to_dev] maps destination MACs to devmap slots; misses go to
    userspace via XDP_PASS handling in the caller (we return PASS). *)
let veth_redirect ~(mac_to_dev : Maps.t) : Insn.t array =
  let b = Asm.builder () in
  bounds_check b ~bytes:14 ~out:"pass";
  Asm.ld b W R2 R6 0;
  Asm.emit b (Alu64 (Lsh, R2, Imm 16));
  Asm.ld b H R3 R6 4;
  Asm.emit b (Alu64 (Or, R2, Reg R3));
  Asm.ld_map_fd b R1 mac_to_dev;
  Asm.mov b R3 Asm.xdp_pass;
  Asm.call b Redirect_map;
  Asm.exit_ b;
  Asm.label b "pass";
  Asm.ret b Asm.xdp_pass;
  Asm.finish b

(** Sec 4: steer control-plane traffic (OpenFlow/OVSDB over TCP 6653/6640,
    and all ARP) into the kernel network stack, and everything else to OVS
    userspace — the refinement the paper proposes if the tap-based control
    path proves too slow. *)
let steer_control ~(xskmap : Maps.t) : Insn.t array =
  let b = Asm.builder () in
  bounds_check b ~bytes:14 ~out:"pass";
  Asm.ld b H R2 R6 12;
  Asm.jcond b Jeq R2 (Imm 0x0806) "pass";  (* ARP to the stack *)
  Asm.jcond b Jne R2 (Imm 0x0800) "to_ovs";
  Asm.mov_reg b R8 R6;
  Asm.add b R8 38;
  Asm.jcond b Jgt R8 (Reg R7) "to_ovs";
  Asm.ld b B R2 R6 23;
  Asm.jcond b Jne R2 (Imm 6) "to_ovs";  (* only TCP is control traffic *)
  Asm.ld b H R2 R6 36;  (* TCP destination port *)
  Asm.jcond b Jeq R2 (Imm 6653) "pass";
  Asm.jcond b Jeq R2 (Imm 6640) "pass";
  Asm.label b "to_ovs";
  Asm.ld b W R2 R1 12;
  Asm.ld_map_fd b R1 xskmap;
  Asm.mov b R3 Asm.xdp_pass;
  Asm.call b Redirect_map;
  Asm.exit_ b;
  Asm.label b "pass";
  Asm.ret b Asm.xdp_pass;
  Asm.finish b

(** All named programs, for the tests that verify the whole library. *)
let all ~l2_table ~sessions ~xskmap ~mac_to_dev =
  [
    ("xsk_default", xsk_default ~xskmap);
    ("pass_all", pass_all);
    ("task_a", task_a);
    ("task_b", task_b);
    ("task_c", task_c ~l2_table);
    ("task_d", task_d);
    ("l4_load_balancer", l4_load_balancer ~sessions ~xskmap);
    ("veth_redirect", veth_redirect ~mac_to_dev);
    ("steer_control", steer_control ~xskmap);
  ]
