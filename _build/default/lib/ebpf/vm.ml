(** The eBPF interpreter.

    Executes verified programs over a packet. Pointers are tagged [int64]
    values (tag in the top byte selects the region: stack, packet, ctx, map
    value, map handle); loads and stores translate through the tag. Packet
    loads are network byte order — this VM is "big-endian hardware", which
    lets programs skip the byte swapping a little-endian kernel needs,
    without changing instruction counts materially.

    Execution statistics (instructions retired, helper calls, map lookups)
    feed the cost model: XDP processing time is charged per instruction and
    per helper, which is what makes Table 5's complexity ladder emerge. *)

type action =
  | Aborted
  | Drop
  | Pass
  | Tx
  | Redirect of Maps.kind * int
      (** target slot value plus the kind of map it came from: an [Xskmap]
          redirect lands in an AF_XDP socket, a [Devmap] redirect goes
          straight to another device (Fig 5 path C) *)

let action_code = function
  | Aborted -> 0L
  | Drop -> 1L
  | Pass -> 2L
  | Tx -> 3L
  | Redirect _ -> 4L

let action_name = function
  | Aborted -> "XDP_ABORTED"
  | Drop -> "XDP_DROP"
  | Pass -> "XDP_PASS"
  | Tx -> "XDP_TX"
  | Redirect (_, i) -> Printf.sprintf "XDP_REDIRECT(%d)" i

type stats = {
  mutable insns : int;
  mutable helper_calls : int;
  mutable map_lookups : int;
  mutable pkt_loads : int;  (** loads from packet memory (cache-miss cost) *)
}

type outcome = { action : action; stats : stats; trace : int64 list }

exception Fault of string

(* pointer tags *)
let tag_stack = 0x10L
let tag_packet = 0x20L
let tag_ctx = 0x30L
let tag_map_value = 0x40L
let tag_map_handle = 0x50L

let make_ptr tag payload = Int64.logor (Int64.shift_left tag 48) payload
let ptr_tag v = Int64.shift_right_logical v 48
let ptr_payload v = Int64.logand v 0xFFFF_FFFF_FFFFL

let fuel_limit = 1_000_000
let max_tail_calls = 32

(* programs must be registered to be tail-callable (prog_array slots hold
   registration ids, as the kernel's prog fds do) *)
let program_registry : (int, Insn.t array) Hashtbl.t = Hashtbl.create 16
let next_prog_id = ref 0

let register_program (prog : Insn.t array) : int =
  incr next_prog_id;
  Hashtbl.replace program_registry !next_prog_id prog;
  !next_prog_id

let reset_programs () =
  Hashtbl.reset program_registry;
  next_prog_id := 0

type t = {
  stack : Bytes.t;
  mutable redirect_target : int;
  mutable redirect_kind : Maps.kind;
  mutable map_value_refs : (int * int64) array;  (** slot -> (map id, key) *)
  mutable n_refs : int;
}

let create () =
  {
    stack = Bytes.make 512 '\000';
    redirect_target = -1;
    redirect_kind = Maps.Xskmap;
    map_value_refs = Array.make 16 (0, 0L);
    n_refs = 0;
  }

let alloc_ref t map_id key =
  if t.n_refs = Array.length t.map_value_refs then begin
    let bigger = Array.make (2 * t.n_refs) (0, 0L) in
    Array.blit t.map_value_refs 0 bigger 0 t.n_refs;
    t.map_value_refs <- bigger
  end;
  t.map_value_refs.(t.n_refs) <- (map_id, key);
  t.n_refs <- t.n_refs + 1;
  t.n_refs - 1

(** Run [prog] over [pkt] in XDP context. The program must have passed
    {!Verifier.verify}; runtime faults on unverified programs raise
    [Fault]. *)
let run t (prog : Insn.t array) (pkt : Ovs_packet.Buffer.t) : outcome =
  let open Insn in
  let regs = Array.make 11 0L in
  let stats = { insns = 0; helper_calls = 0; map_lookups = 0; pkt_loads = 0 } in
  let trace = ref [] in
  t.redirect_target <- -1;
  t.n_refs <- 0;
  Bytes.fill t.stack 0 512 '\000';
  let tail_depth = ref 0 in
  let module Local = struct
    exception Tail_jump of Insn.t array
  end in
  regs.(reg_index R1) <- make_ptr tag_ctx 0L;
  regs.(reg_index R10) <- make_ptr tag_stack 512L;
  let pkt_len = Ovs_packet.Buffer.length pkt in
  let get r = regs.(reg_index r) in
  let set r v = regs.(reg_index r) <- v in
  let src_val = function Reg r -> get r | Imm i -> Int64.of_int i in
  let load sz addr =
    let tag = ptr_tag addr and off = Int64.to_int (ptr_payload addr) in
    let nbytes = size_bytes sz in
    if tag = ptr_tag (make_ptr tag_packet 0L) then begin
      if off + nbytes > pkt_len then raise (Fault "packet load out of bounds");
      stats.pkt_loads <- stats.pkt_loads + 1;
      match sz with
      | B -> Int64.of_int (Ovs_packet.Buffer.get_u8 pkt off)
      | H -> Int64.of_int (Ovs_packet.Buffer.get_u16 pkt off)
      | W -> Int64.of_int (Ovs_packet.Buffer.get_u32 pkt off)
      | DW ->
          Int64.logor
            (Int64.shift_left (Int64.of_int (Ovs_packet.Buffer.get_u32 pkt off)) 32)
            (Int64.of_int (Ovs_packet.Buffer.get_u32 pkt (off + 4)))
    end
    else if tag = ptr_tag (make_ptr tag_stack 0L) then begin
      (* the pointer's payload is a byte offset into the 512B frame; r10
         carries 512 (the frame top), so [r10-8] addresses bytes 504..512 *)
      if off < 0 || off + nbytes > 512 then raise (Fault "stack load out of bounds");
      let rec rd i acc =
        if i >= nbytes then acc
        else rd (i + 1) (Int64.logor (Int64.shift_left acc 8)
                           (Int64.of_int (Bytes.get_uint8 t.stack (off + i))))
      in
      rd 0 0L
    end
    else if tag = ptr_tag (make_ptr tag_ctx 0L) then begin
      (* xdp_md { data; data_end; ifindex; rx_queue_index } *)
      if off = 0 then make_ptr tag_packet 0L
      else if off = 4 then make_ptr tag_packet (Int64.of_int pkt_len)
      else if off = 8 then Int64.of_int pkt.Ovs_packet.Buffer.in_port
      else if off = 12 then 0L
      else raise (Fault "ctx load out of bounds")
    end
    else if tag = ptr_tag (make_ptr tag_map_value 0L) then begin
      let slot = off in
      if slot >= t.n_refs then raise (Fault "dangling map value pointer");
      let map_id, key = t.map_value_refs.(slot) in
      match Maps.lookup (Maps.find_exn map_id) key with
      | Some v -> v
      | None -> 0L
    end
    else raise (Fault "load through non-pointer")
  in
  let store sz addr v =
    let tag = ptr_tag addr and off = Int64.to_int (ptr_payload addr) in
    let nbytes = size_bytes sz in
    if tag = ptr_tag (make_ptr tag_packet 0L) then begin
      if off + nbytes > pkt_len then raise (Fault "packet store out of bounds");
      match sz with
      | B -> Ovs_packet.Buffer.set_u8 pkt off (Int64.to_int v land 0xFF)
      | H -> Ovs_packet.Buffer.set_u16 pkt off (Int64.to_int v land 0xFFFF)
      | W -> Ovs_packet.Buffer.set_u32 pkt off (Int64.to_int v land 0xFFFFFFFF)
      | DW ->
          Ovs_packet.Buffer.set_u32 pkt off
            (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF);
          Ovs_packet.Buffer.set_u32 pkt (off + 4)
            (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
    end
    else if tag = ptr_tag (make_ptr tag_stack 0L) then begin
      if off < 0 || off + nbytes > 512 then
        raise (Fault "stack store out of bounds");
      for i = 0 to nbytes - 1 do
        let shift = 8 * (nbytes - 1 - i) in
        Bytes.set_uint8 t.stack (off + i)
          (Int64.to_int (Int64.shift_right_logical v shift) land 0xFF)
      done
    end
    else if tag = ptr_tag (make_ptr tag_map_value 0L) then begin
      let slot = off in
      if slot >= t.n_refs then raise (Fault "dangling map value pointer");
      let map_id, key = t.map_value_refs.(slot) in
      ignore (Maps.update (Maps.find_exn map_id) key v)
    end
    else raise (Fault "store through non-pointer")
  in
  let alu64 op a b =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div -> if b = 0L then 0L (* BPF semantics: division by zero yields 0 *)
             else Int64.unsigned_div a b
    | Or -> Int64.logor a b
    | And -> Int64.logand a b
    | Lsh -> Int64.shift_left a (Int64.to_int b land 63)
    | Rsh -> Int64.shift_right_logical a (Int64.to_int b land 63)
    | Mod -> if b = 0L then a (* BPF semantics: dst mod 0 leaves dst *)
             else Int64.unsigned_rem a b
    | Xor -> Int64.logxor a b
    | Mov -> b
    | Arsh -> Int64.shift_right a (Int64.to_int b land 63)
  in
  let cond_holds c a b =
    let ucmp = Int64.unsigned_compare a b and scmp = Int64.compare a b in
    match c with
    | Jeq -> a = b
    | Jne -> a <> b
    | Jgt -> ucmp > 0
    | Jge -> ucmp >= 0
    | Jlt -> ucmp < 0
    | Jle -> ucmp <= 0
    | Jsgt -> scmp > 0
    | Jsge -> scmp >= 0
    | Jslt -> scmp < 0
    | Jsle -> scmp <= 0
    | Jset -> Int64.logand a b <> 0L
  in
  let call helper =
    stats.helper_calls <- stats.helper_calls + 1;
    match helper with
    | Map_lookup ->
        stats.map_lookups <- stats.map_lookups + 1;
        let m = Maps.find_exn (Int64.to_int (ptr_payload (get R1))) in
        let key = load DW (get R2) in
        (match Maps.lookup m key with
        | Some _ ->
            let slot = alloc_ref t m.Maps.id key in
            set R0 (make_ptr tag_map_value (Int64.of_int slot))
        | None -> set R0 0L)
    | Map_update ->
        let m = Maps.find_exn (Int64.to_int (ptr_payload (get R1))) in
        let key = load DW (get R2) in
        let v =
          if ptr_tag (get R3) = ptr_tag (make_ptr tag_stack 0L) then
            load DW (get R3)
          else get R3
        in
        set R0 (if Maps.update m key v then 0L else -1L)
    | Map_delete ->
        let m = Maps.find_exn (Int64.to_int (ptr_payload (get R1))) in
        let key = load DW (get R2) in
        Maps.delete m key;
        set R0 0L
    | Redirect_map ->
        let m = Maps.find_exn (Int64.to_int (ptr_payload (get R1))) in
        stats.map_lookups <- stats.map_lookups + 1;
        (match Maps.lookup m (get R2) with
        | Some target ->
            t.redirect_target <- Int64.to_int target;
            t.redirect_kind <- m.Maps.kind;
            set R0 4L (* XDP_REDIRECT *)
        | None -> set R0 (get R3))
    | Tail_call -> begin
        let m = Maps.find_exn (Int64.to_int (ptr_payload (get R2))) in
        stats.map_lookups <- stats.map_lookups + 1;
        match Maps.lookup m (get R3) with
        | Some pid when pid >= 0L && !tail_depth < max_tail_calls -> begin
            match Hashtbl.find_opt program_registry (Int64.to_int pid) with
            | Some target ->
                incr tail_depth;
                raise (Local.Tail_jump target)
            | None -> set R0 (-1L)
          end
        | Some _ | None -> set R0 (-1L)
      end
    | Ktime_get_ns -> set R0 0L
    | Get_hash -> set R0 (Int64.of_int pkt.Ovs_packet.Buffer.rss_hash)
    | Trace ->
        trace := get R1 :: !trace;
        set R0 0L
  in
  let rec step prog pc =
    let step = step prog in
    if stats.insns >= fuel_limit then raise (Fault "fuel exhausted");
    stats.insns <- stats.insns + 1;
    if pc >= Array.length prog then raise (Fault "pc out of bounds");
    match prog.(pc) with
    | Exit -> get R0
    | Alu64 (op, dst, src) ->
        set dst (alu64 op (get dst) (src_val src));
        step (pc + 1)
    | Alu32 (op, dst, src) ->
        let mask v = Int64.logand v 0xFFFF_FFFFL in
        set dst (mask (alu64 op (mask (get dst)) (mask (src_val src))));
        step (pc + 1)
    | Neg dst ->
        set dst (Int64.neg (get dst));
        step (pc + 1)
    | Ld (sz, dst, srcr, off) ->
        set dst (load sz (Int64.add (get srcr) (Int64.of_int off)));
        step (pc + 1)
    | St (sz, dstr, off, src) ->
        store sz (Int64.add (get dstr) (Int64.of_int off)) (src_val src);
        step (pc + 1)
    | Ja off -> step (pc + 1 + off)
    | Jcond (c, r, src, off) ->
        if cond_holds c (get r) (src_val src) then step (pc + 1 + off)
        else step (pc + 1)
    | Call h ->
        call h;
        step (pc + 1)
    | Ld_map_fd (dst, map_id) ->
        set dst (make_ptr tag_map_handle (Int64.of_int map_id));
        step (pc + 1)
  in
  (* tail calls unwind to here and restart in the target program with a
     fresh invocation state (the stack frame is reused, as in the kernel) *)
  let rec exec prog =
    try step prog 0
    with Local.Tail_jump target ->
      Array.fill regs 0 11 0L;
      regs.(reg_index R1) <- make_ptr tag_ctx 0L;
      regs.(reg_index R10) <- make_ptr tag_stack 512L;
      exec target
  in
  let r0 = exec prog in
  let action =
    match Int64.to_int r0 with
    | 0 -> Aborted
    | 1 -> Drop
    | 2 -> Pass
    | 3 -> Tx
    | 4 ->
        if t.redirect_target >= 0 then Redirect (t.redirect_kind, t.redirect_target)
        else Aborted
    | _ -> Aborted
  in
  { action; stats; trace = List.rev !trace }
