lib/ebpf/progs.ml: Asm Insn Maps
