lib/ebpf/xdp.mli: Insn Maps Ovs_packet Ovs_sim Verifier Vm
