lib/ebpf/xdp.ml: Array Fmt Insn Int64 Maps Ovs_packet Ovs_sim Verifier Vm
