lib/ebpf/vm.ml: Array Bytes Hashtbl Insn Int64 List Maps Ovs_packet Printf
