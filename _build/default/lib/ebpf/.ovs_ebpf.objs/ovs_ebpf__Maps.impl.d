lib/ebpf/maps.ml: Array Hashtbl Int Int64 Printf
