lib/ebpf/verifier.ml: Array Fmt Insn Int List Maps Printf
