lib/ebpf/insn.ml: Array Fmt
