lib/ebpf/asm.ml: Array Hashtbl Insn List Maps
