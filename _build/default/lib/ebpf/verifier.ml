(** Static verifier for eBPF programs.

    Models the kernel verifier's contract that makes distributions willing
    to run third-party bytecode (Sec 2.2.2): programs are bounded (no back
    edges, bounded size), memory-safe (packet access only after an explicit
    bounds check against [data_end]; stack access within the 512-byte frame
    and only after initialization), and type-safe (map values must be
    null-checked before dereference, helpers get the argument types they
    expect, pointers don't leak through arbitrary arithmetic).

    Verification explores every branch path (programs are DAGs since back
    edges are rejected), with a state-count ceiling standing in for the
    kernel's complexity limit — the same ceiling that makes a full OVS
    datapath impractical to express in eBPF. *)

type rtype =
  | Uninit
  | Scalar
  | Ptr_ctx
  | Ptr_stack of int  (** offset relative to the frame top (r10); <= 0 *)
  | Ptr_packet of int  (** fixed offset from packet start *)
  | Ptr_packet_end
  | Ptr_map_value of int  (** map id, non-null *)
  | Null_or_map_value of int  (** result of map_lookup before the null check *)
  | Map_handle of int

let rtype_name = function
  | Uninit -> "uninit"
  | Scalar -> "scalar"
  | Ptr_ctx -> "ctx"
  | Ptr_stack o -> Printf.sprintf "stack%+d" o
  | Ptr_packet o -> Printf.sprintf "pkt%+d" o
  | Ptr_packet_end -> "pkt_end"
  | Ptr_map_value m -> Printf.sprintf "map_value#%d" m
  | Null_or_map_value m -> Printf.sprintf "map_value_or_null#%d" m
  | Map_handle m -> Printf.sprintf "map#%d" m

type state = {
  regs : rtype array;
  mutable pkt_checked : int;  (** packet bytes proven in-bounds on this path *)
  stack_init : bool array;  (** per-byte initialization of the 512B frame *)
}

type error = { pc : int; msg : string }

let max_insns = 4096
let max_states = 200_000
let stack_size = 512

exception Reject of error

let reject pc fmt = Fmt.kstr (fun msg -> raise (Reject { pc; msg })) fmt

let clone_state s =
  {
    regs = Array.copy s.regs;
    pkt_checked = s.pkt_checked;
    stack_init = Array.copy s.stack_init;
  }

let initial_state () =
  let regs = Array.make 11 Uninit in
  regs.(Insn.reg_index Insn.R1) <- Ptr_ctx;
  regs.(Insn.reg_index Insn.R10) <- Ptr_stack 0;
  { regs; pkt_checked = 0; stack_init = Array.make stack_size false }

let get s r = s.regs.(Insn.reg_index r)
let set s r t = s.regs.(Insn.reg_index r) <- t

let check_readable pc s r =
  match get s r with
  | Uninit -> reject pc "read of uninitialized register %s" (Insn.reg_name r)
  | _ -> ()

let src_type pc s = function
  | Insn.Imm _ -> Scalar
  | Insn.Reg r ->
      check_readable pc s r;
      get s r

(** Validate an [Exit]-reachable, loop-free program against the machine's
    safety contract. Returns [Ok ()] or the first violation found. *)
let verify (prog : Insn.t array) : (unit, error) result =
  let n = Array.length prog in
  let states_visited = ref 0 in
  try
    if n = 0 then reject 0 "empty program";
    if n > max_insns then reject 0 "program too large (%d > %d insns)" n max_insns;
    (* structural pass: jump targets and loop freedom *)
    Array.iteri
      (fun pc insn ->
        let check_target off =
          let target = pc + 1 + off in
          if off < 0 then reject pc "back-edge (loop) detected";
          if target < 0 || target >= n then reject pc "jump out of bounds"
        in
        match insn with
        | Insn.Ja off -> check_target off
        | Insn.Jcond (_, _, _, off) -> check_target off
        | Insn.Alu64 ((Insn.Div | Insn.Mod), _, Insn.Imm 0)
        | Insn.Alu32 ((Insn.Div | Insn.Mod), _, Insn.Imm 0) ->
            reject pc "division by zero"
        | _ -> ())
      prog;
    (* abstract interpretation over every path *)
    let rec walk pc s =
      incr states_visited;
      if !states_visited > max_states then
        reject pc "program too complex (state limit exceeded)";
      if pc >= n then reject pc "fell off the end of the program";
      let insn = prog.(pc) in
      let continue s = walk (pc + 1) s in
      match insn with
      | Insn.Exit -> begin
          match get s Insn.R0 with
          | Uninit -> reject pc "r0 not initialized at exit"
          | _ -> ()
        end
      | Insn.Ja off -> walk (pc + 1 + off) s
      | Insn.Ld_map_fd (dst, map_id) ->
          if dst = Insn.R10 then reject pc "r10 is read-only";
          set s dst (Map_handle map_id);
          continue s
      | Insn.Alu64 (op, dst, src) | Insn.Alu32 (op, dst, src) -> begin
          if dst = Insn.R10 then reject pc "r10 is read-only";
          let sty = src_type pc s src in
          (match op with Insn.Mov -> () | _ -> check_readable pc s dst);
          (match op with
          | Insn.Mov -> set s dst sty
          | Insn.Add | Insn.Sub -> begin
              match (get s dst, sty, src) with
              | Scalar, Scalar, _ -> ()
              | Ptr_packet o, Scalar, Insn.Imm i ->
                  set s dst (Ptr_packet (o + if op = Insn.Add then i else -i))
              | Ptr_stack o, Scalar, Insn.Imm i ->
                  let o' = o + if op = Insn.Add then i else -i in
                  if o' < -stack_size || o' > 0 then
                    reject pc "stack pointer out of frame (%+d)" o';
                  set s dst (Ptr_stack o')
              | Ptr_packet _, Scalar, Insn.Reg _ ->
                  (* variable-offset packet pointer: the real verifier tracks
                     ranges; we conservatively invalidate the bounds proof *)
                  set s dst (Ptr_packet max_int)
              | (Ptr_map_value _ as t), Scalar, Insn.Imm _ -> set s dst t
              | Scalar, _, _ -> reject pc "scalar %s pointer" (Insn.alu_op_name op)
              | t, _, _ ->
                  reject pc "bad pointer arithmetic on %s" (rtype_name t)
            end
          | _ -> begin
              match (get s dst, sty) with
              | Scalar, Scalar -> ()
              | t, _ when t <> Scalar ->
                  reject pc "ALU op %s on pointer %s" (Insn.alu_op_name op)
                    (rtype_name t)
              | _, t -> reject pc "ALU op with pointer source %s" (rtype_name t)
            end);
          continue s
        end
      | Insn.Neg dst ->
          if dst = Insn.R10 then reject pc "r10 is read-only";
          check_readable pc s dst;
          if get s dst <> Scalar then reject pc "neg on pointer";
          continue s
      | Insn.Ld (sz, dst, srcr, off) -> begin
          if dst = Insn.R10 then reject pc "r10 is read-only";
          check_readable pc s srcr;
          let nbytes = Insn.size_bytes sz in
          (match get s srcr with
          | Ptr_ctx ->
              if off < 0 || off + nbytes > 16 then
                reject pc "ctx access out of bounds (off %d)" off;
              (* xdp_md: data / data_end / ifindex / rx_queue_index *)
              if off = 0 then set s dst (Ptr_packet 0)
              else if off = 4 then set s dst Ptr_packet_end
              else set s dst Scalar
          | Ptr_packet o ->
              if o = max_int then
                reject pc "packet pointer with unknown offset dereferenced";
              let last = o + off + nbytes in
              if o + off < 0 then reject pc "negative packet offset";
              if last > s.pkt_checked then
                reject pc
                  "packet access [%d, %d) beyond verified bounds (%d checked)"
                  (o + off) last s.pkt_checked;
              set s dst Scalar
          | Ptr_stack o ->
              let a = o + off in
              if a < -stack_size || a + nbytes > 0 then
                reject pc "stack read out of frame";
              for i = a + stack_size to a + stack_size + nbytes - 1 do
                if not s.stack_init.(i) then
                  reject pc "read of uninitialized stack at %+d" a
              done;
              set s dst Scalar
          | Ptr_map_value _ ->
              if off < 0 || off + nbytes > 8 then
                reject pc "map value access out of bounds";
              set s dst Scalar
          | Null_or_map_value _ ->
              reject pc "map value dereferenced without null check"
          | t -> reject pc "load through non-pointer %s" (rtype_name t));
          continue s
        end
      | Insn.St (sz, dstr, off, src) -> begin
          check_readable pc s dstr;
          let sty = src_type pc s src in
          let nbytes = Insn.size_bytes sz in
          (match get s dstr with
          | Ptr_ctx -> reject pc "store to read-only ctx"
          | Ptr_packet o ->
              if o = max_int then
                reject pc "packet pointer with unknown offset dereferenced";
              let last = o + off + nbytes in
              if o + off < 0 then reject pc "negative packet offset";
              if last > s.pkt_checked then
                reject pc "packet store beyond verified bounds";
              if sty <> Scalar then reject pc "storing pointer into packet"
          | Ptr_stack o ->
              let a = o + off in
              if a < -stack_size || a + nbytes > 0 then
                reject pc "stack store out of frame";
              for i = a + stack_size to a + stack_size + nbytes - 1 do
                s.stack_init.(i) <- true
              done
          | Ptr_map_value _ ->
              if off < 0 || off + nbytes > 8 then
                reject pc "map value store out of bounds";
              if sty <> Scalar then reject pc "storing pointer into map value"
          | Null_or_map_value _ ->
              reject pc "map value dereferenced without null check"
          | t -> reject pc "store through non-pointer %s" (rtype_name t));
          continue s
        end
      | Insn.Jcond (cond, r, src, off) -> begin
          check_readable pc s r;
          let sty = src_type pc s src in
          let taken = clone_state s and fallthrough = clone_state s in
          (* packet bounds refinement: `if (pkt + K > data_end) goto slow`
             proves K bytes readable on the fall-through path *)
          (match (cond, get s r, sty) with
          | Insn.Jgt, Ptr_packet o, Ptr_packet_end when o <> max_int ->
              fallthrough.pkt_checked <- Int.max fallthrough.pkt_checked o
          | Insn.Jge, Ptr_packet o, Ptr_packet_end when o <> max_int ->
              (* >= proves only o-1, but compilers emit >, keep exact *)
              fallthrough.pkt_checked <- Int.max fallthrough.pkt_checked (o - 1)
          | Insn.Jle, Ptr_packet o, Ptr_packet_end when o <> max_int ->
              taken.pkt_checked <- Int.max taken.pkt_checked o
          | _ -> ());
          (* null-check refinement on map values *)
          (match (cond, get s r, src) with
          | Insn.Jeq, Null_or_map_value m, Insn.Imm 0 ->
              set fallthrough r (Ptr_map_value m);
              set taken r Scalar
          | Insn.Jne, Null_or_map_value m, Insn.Imm 0 ->
              set taken r (Ptr_map_value m);
              set fallthrough r Scalar
          | _ -> ());
          (* comparing two pointers of different provenance is rejected,
             except packet-vs-packet_end which is the bounds check *)
          (match (get s r, sty) with
          | Ptr_packet _, Ptr_packet_end
          | Ptr_packet_end, Ptr_packet _
          | Scalar, Scalar
          | Null_or_map_value _, Scalar
          | Scalar, Null_or_map_value _ -> ()
          | Ptr_packet _, Ptr_packet _ | Ptr_stack _, Ptr_stack _ -> ()
          | a, b when a = b -> ()
          | a, b ->
              reject pc "comparison between %s and %s" (rtype_name a)
                (rtype_name b));
          walk (pc + 1 + off) taken;
          walk (pc + 1) fallthrough
        end
      | Insn.Call helper -> begin
          let arg r = get s r in
          (match helper with
          | Insn.Map_lookup -> begin
              match (arg Insn.R1, arg Insn.R2) with
              | Map_handle m, Ptr_stack _ -> set s Insn.R0 (Null_or_map_value m)
              | Map_handle _, t ->
                  reject pc "map_lookup key must be a stack pointer, got %s"
                    (rtype_name t)
              | t, _ -> reject pc "map_lookup arg1 must be a map, got %s"
                    (rtype_name t)
            end
          | Insn.Map_update -> begin
              match (arg Insn.R1, arg Insn.R2, arg Insn.R3) with
              | Map_handle _, Ptr_stack _, (Ptr_stack _ | Scalar) ->
                  set s Insn.R0 Scalar
              | _ -> reject pc "map_update argument types"
            end
          | Insn.Map_delete -> begin
              match (arg Insn.R1, arg Insn.R2) with
              | Map_handle _, Ptr_stack _ -> set s Insn.R0 Scalar
              | _ -> reject pc "map_delete argument types"
            end
          | Insn.Tail_call -> begin
              match (arg Insn.R1, arg Insn.R2, arg Insn.R3) with
              | Ptr_ctx, Map_handle m, Scalar ->
                  (* the map must really be a program array, as the kernel
                     checks map types at verification time *)
                  (match Maps.find_exn m with
                  | { Maps.kind = Maps.Prog_array; _ } -> set s Insn.R0 Scalar
                  | _ -> reject pc "tail_call needs a prog_array map"
                  | exception _ -> reject pc "tail_call on unknown map")
              | _ -> reject pc "tail_call argument types"
            end
          | Insn.Redirect_map -> begin
              match (arg Insn.R1, arg Insn.R2) with
              | Map_handle _, Scalar -> set s Insn.R0 Scalar
              | _ -> reject pc "redirect_map argument types"
            end
          | Insn.Ktime_get_ns | Insn.Get_hash -> set s Insn.R0 Scalar
          | Insn.Trace ->
              check_readable pc s Insn.R1;
              set s Insn.R0 Scalar);
          (* caller-saved registers are clobbered by the call *)
          List.iter
            (fun r -> if r <> Insn.R0 then set s r Uninit)
            [ Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5 ];
          continue s
        end
    in
    walk 0 (initial_state ());
    Ok ()
  with Reject e -> Error e

let pp_error ppf e = Fmt.pf ppf "at insn %d: %s" e.pc e.msg
