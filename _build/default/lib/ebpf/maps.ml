(** eBPF maps: the kernel-resident state shared between eBPF programs and
    userspace. Keys and values are [int64] (the OVS XDP programs only need
    scalar keys/values: MAC → port, 5-tuple hash → backend, queue → socket).

    The paper's footnote 1 records that the kernel maintainers rejected a
    "megaflow map" type, which is why the eBPF datapath cannot implement the
    megaflow cache; the map kinds here are the upstream ones. *)

type kind =
  | Array  (** fixed-size array indexed by key *)
  | Hash  (** hash table *)
  | Devmap  (** port index → net device, for XDP_REDIRECT *)
  | Xskmap  (** queue index → AF_XDP socket, for XDP_REDIRECT *)
  | Prog_array  (** slot → program id, for bpf_tail_call chaining *)

type t = {
  id : int;
  name : string;
  kind : kind;
  max_entries : int;
  tbl : (int64, int64) Hashtbl.t;
  arr : int64 array;  (** backing store for [Array] kind *)
  mutable lookups : int;  (** statistics for the cost model and tests *)
  mutable updates : int;
}

let registry : (int, t) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

(** Create and register a map, returning its handle ("fd"). *)
let create ~name ~kind ~max_entries =
  incr next_id;
  let m =
    {
      id = !next_id;
      name;
      kind;
      max_entries;
      tbl = Hashtbl.create (Int.min max_entries 1024);
      arr =
        (match kind with
        | Array -> Array.make max_entries 0L  (* kernel arrays zero-fill *)
        | Prog_array -> Array.make max_entries (-1L)  (* empty slots *)
        | Hash | Devmap | Xskmap -> [||]);
      lookups = 0;
      updates = 0;
    }
  in
  Hashtbl.replace registry m.id m;
  m

let find_exn id =
  match Hashtbl.find_opt registry id with
  | Some m -> m
  | None -> failwith (Printf.sprintf "ebpf: unknown map id %d" id)

let lookup m (key : int64) : int64 option =
  m.lookups <- m.lookups + 1;
  match m.kind with
  | Array | Prog_array ->
      let i = Int64.to_int key in
      if i >= 0 && i < m.max_entries then Some m.arr.(i) else None
  | Hash | Devmap | Xskmap -> Hashtbl.find_opt m.tbl key

(** Returns [false] when a hash map is full (kernel E2BIG behaviour). *)
let update m (key : int64) (value : int64) : bool =
  m.updates <- m.updates + 1;
  match m.kind with
  | Array | Prog_array ->
      let i = Int64.to_int key in
      if i >= 0 && i < m.max_entries then begin
        m.arr.(i) <- value;
        true
      end
      else false
  | Hash | Devmap | Xskmap ->
      if Hashtbl.mem m.tbl key then begin
        Hashtbl.replace m.tbl key value;
        true
      end
      else if Hashtbl.length m.tbl >= m.max_entries then false
      else begin
        Hashtbl.replace m.tbl key value;
        true
      end

let delete m (key : int64) =
  match m.kind with
  | Array | Prog_array -> ()
  | Hash | Devmap | Xskmap -> Hashtbl.remove m.tbl key

let entries m =
  match m.kind with
  | Array | Prog_array -> m.max_entries
  | Hash | Devmap | Xskmap -> Hashtbl.length m.tbl

(** Forget all registered maps (test isolation). *)
let reset_registry () =
  Hashtbl.reset registry;
  next_id := 0
