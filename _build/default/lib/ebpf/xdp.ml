(** The XDP hook: program attachment and costed execution.

    A hook owns a verified program plus a reusable VM, and reports the
    virtual-time cost of each run from the VM's execution statistics — the
    sandbox interpretation overhead that makes Table 5's ladder and the
    eBPF datapath's 10-20% penalty (Fig 2). *)

type t = {
  name : string;
  prog : Insn.t array;
  prog_id : int;  (** registration id, installable into a prog_array *)
  vm : Vm.t;
  mutable runs : int;
  mutable total_insns : int;
}

(** Verify and attach a program. Returns [Error] with the verifier's
    diagnosis when the program is rejected, exactly like the kernel would
    at load time (Fig 4's workflow). *)
let load ~name prog : (t, Verifier.error) result =
  match Verifier.verify prog with
  | Error e -> Error e
  | Ok () ->
      Ok
        { name; prog; prog_id = Vm.register_program prog; vm = Vm.create ();
          runs = 0; total_insns = 0 }

let load_exn ~name prog =
  match load ~name prog with
  | Ok t -> t
  | Error e -> Fmt.failwith "XDP load of %s rejected: %a" name Verifier.pp_error e

(** Run the program on a packet. Returns the XDP action and the virtual
    time the execution cost under [costs]. *)
let run t (costs : Ovs_sim.Costs.t) (pkt : Ovs_packet.Buffer.t) :
    Vm.action * Ovs_sim.Time.ns =
  let outcome = Vm.run t.vm t.prog pkt in
  t.runs <- t.runs + 1;
  t.total_insns <- t.total_insns + outcome.Vm.stats.Vm.insns;
  let s = outcome.Vm.stats in
  let cost =
    costs.Ovs_sim.Costs.xdp_prog_overhead
    +. (float_of_int s.Vm.insns *. costs.Ovs_sim.Costs.ebpf_insn)
    +. (float_of_int s.Vm.helper_calls *. costs.Ovs_sim.Costs.ebpf_helper)
    +. (float_of_int s.Vm.map_lookups *. costs.Ovs_sim.Costs.ebpf_map_lookup)
    (* touching freshly DMA'd packet bytes costs one cache miss *)
    +. (if s.Vm.pkt_loads > 0 then costs.Ovs_sim.Costs.cache_miss else 0.)
  in
  (outcome.Vm.action, cost)

(** Install this program into a [Prog_array] slot so other programs can
    tail-call it. *)
let install_in_prog_array t (arr : Maps.t) ~slot =
  ignore (Maps.update arr (Int64.of_int slot) (Int64.of_int t.prog_id))

let instruction_count t = Array.length t.prog

let mean_insns_per_run t =
  if t.runs = 0 then 0. else float_of_int t.total_insns /. float_of_int t.runs
