(** The XDP hook: verified program attachment and costed execution.

    Loading verifies the program exactly as the kernel would at attach
    time (the Fig 4 workflow); running it reports the virtual-time cost
    derived from the instructions, helpers and map lookups actually
    executed — the sandbox overhead behind Table 5 and Fig 2's eBPF bar. *)

type t = {
  name : string;
  prog : Insn.t array;
  prog_id : int;  (** registration id, installable into a prog_array *)
  vm : Vm.t;
  mutable runs : int;
  mutable total_insns : int;
}

val load : name:string -> Insn.t array -> (t, Verifier.error) result
(** Verify and attach; [Error] carries the verifier's diagnosis. *)

val load_exn : name:string -> Insn.t array -> t
(** @raise Failure when the verifier rejects the program. *)

val run : t -> Ovs_sim.Costs.t -> Ovs_packet.Buffer.t -> Vm.action * Ovs_sim.Time.ns
(** Execute over a packet; returns the XDP verdict and the charged cost. *)

val install_in_prog_array : t -> Maps.t -> slot:int -> unit
(** Make this program tail-callable from others through a [Prog_array]. *)

val instruction_count : t -> int

val mean_insns_per_run : t -> float
