(** Static verifier for eBPF programs — the model of the kernel verifier
    whose contract (bounded, memory-safe, type-safe bytecode) is what lets
    distributions support third-party programs (paper Sec 2.2.2), and
    whose restrictions (no loops, bounded complexity) are why a full OVS
    datapath cannot live in eBPF.

    Checks enforced:
    - structure: non-empty, size-capped, in-bounds jumps, no back edges
      (loop freedom), no falling off the end, a path-count ceiling;
    - registers: no reads of uninitialized registers, r10 read-only, r0
      initialized at exit, caller-saved registers clobbered by calls;
    - memory: packet loads/stores only below the offset proven by an
      explicit bounds check against [data_end]; stack access within the
      512-byte frame and only of initialized bytes; ctx read-only;
    - types: map values null-checked before dereference, helper argument
      types (including that [tail_call] gets a program array), no pointer
      arithmetic beyond constant offsets, no pointer/scalar comparisons. *)

type error = { pc : int; msg : string }

val max_insns : int
val max_states : int
val stack_size : int

val verify : Insn.t array -> (unit, error) result
(** Explore every execution path of the program and return the first
    violation found, if any. Programs accepted here never raise
    {!Vm.Fault} at runtime (enforced by a fuzzing property test). *)

val pp_error : Format.formatter -> error -> unit
