(** A small assembler eDSL for writing eBPF programs in OCaml, standing in
    for the Clang/LLVM toolchain in the paper's Figure 4 workflow. Programs
    are built imperatively; named labels are resolved to relative jump
    offsets by {!finish}. *)

open Insn

type builder = {
  mutable rev_items : (Insn.t option * string option * string option) list;
      (** (instruction, jump-target label, label-defined-here), reversed *)
}

let builder () = { rev_items = [] }

let emit b insn = b.rev_items <- (Some insn, None, None) :: b.rev_items

let emit_jmp b insn label =
  b.rev_items <- (Some insn, Some label, None) :: b.rev_items

let label b name = b.rev_items <- (None, None, Some name) :: b.rev_items

(** Finish the program: resolve all label jumps to relative offsets.
    Raises [Invalid_argument] on unknown labels. *)
let finish b : Insn.t array =
  let items = List.rev b.rev_items in
  let pcs = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun (insn, _, lbl) ->
      (match lbl with
      | Some name -> Hashtbl.replace pcs name !pc
      | None -> ());
      match insn with Some _ -> incr pc | None -> ())
    items;
  let out = ref [] in
  let at = ref 0 in
  List.iter
    (fun (insn, jump, _) ->
      match insn with
      | None -> ()
      | Some i ->
          let resolved =
            match jump with
            | None -> i
            | Some name -> begin
                let target =
                  match Hashtbl.find_opt pcs name with
                  | Some t -> t
                  | None -> invalid_arg ("Asm: unknown label " ^ name)
                in
                let off = target - (!at + 1) in
                match i with
                | Ja _ -> Ja off
                | Jcond (c, r, s, _) -> Jcond (c, r, s, off)
                | other -> other
              end
          in
          out := resolved :: !out;
          incr at)
    items;
  Array.of_list (List.rev !out)

(* -- convenience emitters -- *)

let mov b dst v = emit b (Alu64 (Mov, dst, Imm v))
let mov_reg b dst src = emit b (Alu64 (Mov, dst, Reg src))
let add b dst v = emit b (Alu64 (Add, dst, Imm v))
let and_ b dst v = emit b (Alu64 (And, dst, Imm v))
let ld b sz dst src off = emit b (Ld (sz, dst, src, off))
let st b sz dst off src = emit b (St (sz, dst, off, src))
let jmp b lbl = emit_jmp b (Ja 0) lbl
let jcond b c r s lbl = emit_jmp b (Jcond (c, r, s, 0)) lbl
let call b h = emit b (Call h)
let ld_map_fd b dst map = emit b (Ld_map_fd (dst, map.Maps.id))
let exit_ b = emit b Exit

(** [ret b code] sets r0 and exits. *)
let ret b code =
  mov b R0 code;
  exit_ b

let xdp_aborted = 0
let xdp_drop = 1
let xdp_pass = 2
let xdp_tx = 3
let xdp_redirect = 4
