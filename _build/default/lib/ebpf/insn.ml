(** The eBPF instruction set, as a typed representation.

    This mirrors the kernel's ISA closely enough that programs written
    against it have the same shape, instruction counts, and verification
    obligations as their C/LLVM-compiled counterparts: 11 registers, 64-bit
    and 32-bit ALU ops, sized loads/stores, conditional jumps, helper calls,
    and the pseudo-instruction that loads a map file descriptor. *)

type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

let reg_index = function
  | R0 -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10

let reg_name r = "r" ^ string_of_int (reg_index r)

type src = Reg of reg | Imm of int

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Or
  | And
  | Lsh
  | Rsh
  | Mod
  | Xor
  | Mov
  | Arsh

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Or -> "or"
  | And -> "and"
  | Lsh -> "lsh"
  | Rsh -> "rsh"
  | Mod -> "mod"
  | Xor -> "xor"
  | Mov -> "mov"
  | Arsh -> "arsh"

type size = B | H | W | DW

let size_bytes = function B -> 1 | H -> 2 | W -> 4 | DW -> 8
let size_name = function B -> "b" | H -> "h" | W -> "w" | DW -> "dw"

type cond = Jeq | Jne | Jgt | Jge | Jlt | Jle | Jsgt | Jsge | Jslt | Jsle | Jset

let cond_name = function
  | Jeq -> "jeq"
  | Jne -> "jne"
  | Jgt -> "jgt"
  | Jge -> "jge"
  | Jlt -> "jlt"
  | Jle -> "jle"
  | Jsgt -> "jsgt"
  | Jsge -> "jsge"
  | Jslt -> "jslt"
  | Jsle -> "jsle"
  | Jset -> "jset"

(** Helper functions callable from eBPF, the subset the OVS XDP programs
    need. Numbers are not the kernel's; dispatch is by constructor. *)
type helper =
  | Map_lookup  (** r1=map, r2=ptr to key; r0=value ptr or NULL *)
  | Map_update  (** r1=map, r2=key ptr, r3=value ptr, r4=flags *)
  | Map_delete  (** r1=map, r2=key ptr *)
  | Redirect_map  (** r1=devmap/xskmap, r2=index, r3=flags; r0=action *)
  | Tail_call
      (** r1=ctx, r2=prog_array map, r3=index; on success jumps into the
          target program and never returns (max depth 32); on a missing
          slot execution falls through — the chaining mechanism the eBPF
          datapath built its pipeline stages on (Sec 2.2.2) *)
  | Ktime_get_ns  (** r0=virtual time *)
  | Get_hash  (** r0=the packet's RSS hash, a stand-in for xdp hints *)
  | Trace  (** debugging aid: records r1 *)

let helper_name = function
  | Map_lookup -> "map_lookup_elem"
  | Map_update -> "map_update_elem"
  | Map_delete -> "map_delete_elem"
  | Tail_call -> "tail_call"
  | Redirect_map -> "redirect_map"
  | Ktime_get_ns -> "ktime_get_ns"
  | Get_hash -> "get_hash"
  | Trace -> "trace"

type t =
  | Alu64 of alu_op * reg * src
  | Alu32 of alu_op * reg * src
  | Neg of reg
  | Ld of size * reg * reg * int  (** dst = mem[src + off], sized *)
  | St of size * reg * int * src  (** mem[dst + off] = src, sized *)
  | Ja of int  (** unconditional jump, relative to next insn *)
  | Jcond of cond * reg * src * int  (** conditional jump *)
  | Call of helper
  | Exit
  | Ld_map_fd of reg * int  (** pseudo-insn: load map handle [id] into dst *)

let pp_src ppf = function
  | Reg r -> Fmt.string ppf (reg_name r)
  | Imm i -> Fmt.pf ppf "#%d" i

let pp ppf = function
  | Alu64 (op, d, s) -> Fmt.pf ppf "%s %s, %a" (alu_op_name op) (reg_name d) pp_src s
  | Alu32 (op, d, s) ->
      Fmt.pf ppf "%s32 %s, %a" (alu_op_name op) (reg_name d) pp_src s
  | Neg d -> Fmt.pf ppf "neg %s" (reg_name d)
  | Ld (sz, d, s, off) ->
      Fmt.pf ppf "ld%s %s, [%s%+d]" (size_name sz) (reg_name d) (reg_name s) off
  | St (sz, d, off, s) ->
      Fmt.pf ppf "st%s [%s%+d], %a" (size_name sz) (reg_name d) off pp_src s
  | Ja off -> Fmt.pf ppf "ja %+d" off
  | Jcond (c, r, s, off) ->
      Fmt.pf ppf "%s %s, %a, %+d" (cond_name c) (reg_name r) pp_src s off
  | Call h -> Fmt.pf ppf "call %s" (helper_name h)
  | Exit -> Fmt.string ppf "exit"
  | Ld_map_fd (d, id) -> Fmt.pf ppf "ld_map_fd %s, map#%d" (reg_name d) id

let pp_program ppf (prog : t array) =
  Array.iteri (fun i insn -> Fmt.pf ppf "%4d: %a@." i pp insn) prog
