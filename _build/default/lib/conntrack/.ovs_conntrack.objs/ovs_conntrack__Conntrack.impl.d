lib/conntrack/conntrack.ml: Buffer Hashtbl Icmp Ipv4 List Ovs_packet Ovs_sim
