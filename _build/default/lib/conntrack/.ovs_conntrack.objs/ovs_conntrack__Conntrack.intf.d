lib/conntrack/conntrack.mli: Ovs_packet Ovs_sim
