lib/tools/pcap.ml: Bytes Int32 List Ovs_packet Ovs_sim Stdlib
