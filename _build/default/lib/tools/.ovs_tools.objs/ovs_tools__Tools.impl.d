lib/tools/tools.ml: Array Bytes Fmt Hashtbl List Ovs_netdev Ovs_packet Ovs_sim Pcap Printf Queue String
