(** Classic pcap (libpcap 2.4) file format writer, so the tcpdump model
    can produce captures other tools can open — the workflow Table 1 is
    about keeping alive. *)

let magic = 0xA1B2C3D4
let version_major = 2
let version_minor = 4
let linktype_ethernet = 1

let global_header () =
  let b = Bytes.create 24 in
  Bytes.set_int32_be b 0 (Int32.of_int magic);
  Bytes.set_uint16_be b 4 version_major;
  Bytes.set_uint16_be b 6 version_minor;
  Bytes.set_int32_be b 8 0l;  (* thiszone *)
  Bytes.set_int32_be b 12 0l;  (* sigfigs *)
  Bytes.set_int32_be b 16 65535l;  (* snaplen *)
  Bytes.set_int32_be b 20 (Int32.of_int linktype_ethernet);
  b

let record ~(ts : Ovs_sim.Time.ns) (pkt : Ovs_packet.Buffer.t) =
  let data = Ovs_packet.Buffer.contents pkt in
  let n = Bytes.length data in
  let b = Bytes.create (16 + n) in
  let secs = int_of_float (ts /. 1e9) in
  let usecs = int_of_float ((ts -. (float_of_int secs *. 1e9)) /. 1e3) in
  Bytes.set_int32_be b 0 (Int32.of_int secs);
  Bytes.set_int32_be b 4 (Int32.of_int usecs);
  Bytes.set_int32_be b 8 (Int32.of_int n);  (* caplen *)
  Bytes.set_int32_be b 12 (Int32.of_int n);  (* wire len *)
  Bytes.blit data 0 b 16 n;
  b

(** Serialize a capture: global header plus one record per packet. *)
let write (packets : (Ovs_sim.Time.ns * Ovs_packet.Buffer.t) list) : Bytes.t =
  let out = Stdlib.Buffer.create 1024 in
  Stdlib.Buffer.add_bytes out (global_header ());
  List.iter
    (fun (ts, pkt) -> Stdlib.Buffer.add_bytes out (record ~ts pkt))
    packets;
  Stdlib.Buffer.to_bytes out

(** Parse a capture produced by {!write} back into (timestamp-in-ns,
    frame-bytes) pairs — used by tests and by the tcpdump replay path. *)
let read (b : Bytes.t) : (Ovs_sim.Time.ns * Bytes.t) list =
  if Bytes.length b < 24 then invalid_arg "Pcap.read: short file";
  if Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF <> magic then
    invalid_arg "Pcap.read: bad magic";
  let rec records pos acc =
    if pos + 16 > Bytes.length b then List.rev acc
    else begin
      let secs = Int32.to_int (Bytes.get_int32_be b pos) in
      let usecs = Int32.to_int (Bytes.get_int32_be b (pos + 4)) in
      let caplen = Int32.to_int (Bytes.get_int32_be b (pos + 8)) in
      if pos + 16 + caplen > Bytes.length b then invalid_arg "Pcap.read: truncated record";
      let data = Bytes.sub b (pos + 16) caplen in
      let ts = (float_of_int secs *. 1e9) +. (float_of_int usecs *. 1e3) in
      records (pos + 16 + caplen) ((ts, data) :: acc)
    end
  in
  records 24 []
