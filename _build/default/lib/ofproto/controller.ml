(** A small reactive OpenFlow controller — the remote end of the Fig 7
    channel, speaking the same wire bytes the switch does.

    [Learning_l2] implements the classic reactive L2 learning switch:
    every PACKET_IN teaches it where the source MAC lives; known
    destinations get a proactive FLOW_MOD (so later packets stay on the
    fast path) plus a PACKET_OUT for the packet in hand; unknown
    destinations are flooded. It exists both as a realistic controller
    workload and to exercise PACKET_IN/PACKET_OUT/FLOW_MOD end to end. *)

module FK = Ovs_packet.Flow_key

type t = {
  mutable mac_to_port : (int * int) list;  (** (mac, port) *)
  ports : int list;  (** floodable ports *)
  mutable packet_ins : int;
  mutable flow_mods_sent : int;
  mutable xid : int;
}

let create ~ports = { mac_to_port = []; ports; packet_ins = 0; flow_mods_sent = 0; xid = 100 }

let fresh_xid t =
  t.xid <- t.xid + 1;
  t.xid

(** React to one PACKET_IN; returns the wire-encodable replies. *)
let handle_packet_in t ~in_port ~(data : Bytes.t) : Ofp_codec.msg list =
  t.packet_ins <- t.packet_ins + 1;
  let pkt = Ovs_packet.Buffer.of_bytes data in
  match Ovs_packet.Ethernet.parse pkt with
  | None -> []
  | Some eth ->
      let src = eth.Ovs_packet.Ethernet.src and dst = eth.Ovs_packet.Ethernet.dst in
      (* learn the source *)
      if not (List.mem_assoc src t.mac_to_port) then
        t.mac_to_port <- (src, in_port) :: t.mac_to_port;
      let out_actions =
        match List.assoc_opt dst t.mac_to_port with
        | Some port -> [ Action.Output port ]
        | None ->
            List.filter_map
              (fun p -> if p <> in_port then Some (Action.Output p) else None)
              t.ports
      in
      let flow_mods =
        match List.assoc_opt dst t.mac_to_port with
        | Some port ->
            (* proactively pin the path so the datapath caches it *)
            t.flow_mods_sent <- t.flow_mods_sent + 1;
            let m =
              Match_.with_field
                (Match_.with_field (Match_.catchall ()) FK.Field.In_port in_port)
                FK.Field.Dl_dst dst
            in
            [ Ofp_codec.Flow_mod
                { command = `Add; table_id = 0; priority = 10; cookie = 0;
                  match_ = m; actions = [ Action.Output port ] } ]
        | None -> []
      in
      flow_mods
      @ [ Ofp_codec.Packet_out { in_port; actions = out_actions; data } ]

(** Process raw PACKET_IN bytes; returns reply bytes ready to feed back to
    the switch connection. *)
let feed t (input : Bytes.t) : Bytes.t =
  let out = Stdlib.Buffer.create 64 in
  let pos = ref 0 in
  (try
     while Bytes.length input - !pos >= 8 do
       let chunk = Bytes.sub input !pos (Bytes.length input - !pos) in
       let m, _, consumed = Ofp_codec.decode chunk in
       pos := !pos + consumed;
       match m with
       | Ofp_codec.Packet_in { in_port; data; _ } ->
           List.iter
             (fun reply ->
               Stdlib.Buffer.add_bytes out (Ofp_codec.encode ~xid:(fresh_xid t) reply))
             (handle_packet_in t ~in_port ~data)
       | _ -> ()
     done
   with Ofp_codec.Decode_error _ -> ());
  Stdlib.Buffer.to_bytes out
