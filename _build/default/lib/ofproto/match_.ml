(** An OpenFlow match: a flow key with a per-field bitmask and a priority.
    Built incrementally; compiled against {!Ovs_packet.Flow_key}. *)

module FK = Ovs_packet.Flow_key

type t = { key : FK.t; mask : FK.t }

let catchall () = { key = FK.create (); mask = FK.create () }

(** Match [field] exactly against [value]. *)
let with_field m field value =
  FK.set m.key field value;
  FK.set m.mask field (FK.Field.full_mask field);
  m

(** Match [field] under an explicit bitmask (CIDR prefixes, ct_state with
    +bit/-bit semantics, tcp_flags). *)
let with_masked m field value mask =
  FK.set m.key field (value land mask);
  FK.set m.mask field mask;
  m

(** CIDR convenience for the IPv4 address fields. *)
let with_prefix m field addr prefix_len =
  if prefix_len < 0 || prefix_len > 32 then invalid_arg "Match.with_prefix";
  let mask = if prefix_len = 0 then 0 else 0xFFFFFFFF lsl (32 - prefix_len) land 0xFFFFFFFF in
  with_masked m field addr mask

let matches m (key : FK.t) = FK.equal_masked m.key key m.mask

(** Number of fields constrained (Table 3 reports the count of distinct
    matching fields across a rule set). *)
let fields_used m =
  let n = ref 0 in
  Array.iter (fun f -> if FK.get m.mask f <> 0 then incr n) FK.Field.all;
  !n

let used_fields m =
  Array.to_list FK.Field.all
  |> List.filter (fun f -> FK.get m.mask f <> 0)

let pp ppf m =
  let parts =
    used_fields m
    |> List.map (fun f ->
           Printf.sprintf "%s=0x%x/0x%x" (FK.Field.name f) (FK.get m.key f)
             (FK.get m.mask f))
  in
  Fmt.pf ppf "%s" (if parts = [] then "any" else String.concat "," parts)
