lib/ofproto/pipeline.ml: Action Array Fmt Hashtbl List Match_ Ovs_packet Table
