lib/ofproto/controller.ml: Action Bytes List Match_ Ofp_codec Ovs_packet Stdlib
