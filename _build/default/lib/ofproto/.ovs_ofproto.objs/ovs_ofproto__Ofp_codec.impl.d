lib/ofproto/ofp_codec.ml: Action Array Bytes Fmt Int Int32 Int64 List Match_ Option Ovs_packet Printf
