lib/ofproto/parser.ml: Action Fmt List Match_ Ovs_packet Pipeline Stdlib String
