lib/ofproto/match_.ml: Array Fmt List Ovs_packet Printf String
