lib/ofproto/table.ml: Hashtbl Int List Match_ Ovs_packet
