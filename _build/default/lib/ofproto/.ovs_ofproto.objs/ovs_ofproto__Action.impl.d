lib/ofproto/action.ml: Fmt Ovs_packet Printf
