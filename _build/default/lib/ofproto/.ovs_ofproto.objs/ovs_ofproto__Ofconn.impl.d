lib/ofproto/ofconn.ml: Array Bytes List Ofp_codec Pipeline Stdlib Table
