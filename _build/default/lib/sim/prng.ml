(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulation draws from an explicit [Prng.t]
    so that experiments are reproducible run-to-run; no global [Random]
    state is used anywhere in the repository. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }

let of_int seed = { state = Int64.of_int seed }

(* splitmix64 step: well distributed, passes BigCrush, and trivially
   seedable, which is all we need for workload generation. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the result fits OCaml's boxed-free int range *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform float in [0, 1). *)
let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 /. 9007199254740992.0

(** Uniform 32-bit value as an [int] (0 .. 2^32-1). *)
let bits32 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 32)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Exponentially distributed sample with the given mean (for inter-arrival
    jitter in latency experiments). *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

(** Sample from a normal distribution via Box-Muller (used for service-time
    jitter around the calibrated mean costs). *)
let gaussian t ~mu ~sigma =
  let u1 = max epsilon_float (float t) in
  let u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

(** Pick an element of a non-empty array uniformly. *)
let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
