(** Virtual time for the dataplane simulation.

    All substrate costs are expressed in nanoseconds of virtual time. Using a
    plain [float] keeps arithmetic simple; experiments run for milliseconds to
    seconds of virtual time, far below the precision limits of doubles. *)

type ns = float
(** A duration or instant, in nanoseconds. *)

let ns_per_us = 1_000.
let ns_per_ms = 1_000_000.
let ns_per_s = 1_000_000_000.

let us (x : float) : ns = x *. ns_per_us
let ms (x : float) : ns = x *. ns_per_ms
let s (x : float) : ns = x *. ns_per_s

let to_us (t : ns) = t /. ns_per_us
let to_ms (t : ns) = t /. ns_per_ms
let to_s (t : ns) = t /. ns_per_s

(** Clock frequency of the modelled Xeon E5 2620 v3 / E5 2440 v2 (both
    2.4 GHz in the paper's testbeds). *)
let cpu_ghz = 2.4

(** Convert a cost in CPU cycles to nanoseconds at the modelled frequency. *)
let cycles (c : float) : ns = c /. cpu_ghz

(** Packets per second given a per-packet cost; [0.] cost is infinite rate. *)
let rate_pps ~(per_packet : ns) : float =
  if per_packet <= 0. then infinity else ns_per_s /. per_packet

(** Per-packet cost in ns for a given rate in packets per second. *)
let per_packet_of_pps (pps : float) : ns =
  if pps <= 0. then infinity else ns_per_s /. pps

let mpps (pps : float) = pps /. 1e6

let pp_rate ppf pps =
  if pps >= 1e6 then Fmt.pf ppf "%.2f Mpps" (pps /. 1e6)
  else if pps >= 1e3 then Fmt.pf ppf "%.2f Kpps" (pps /. 1e3)
  else Fmt.pf ppf "%.0f pps" pps

let pp_ns ppf (t : ns) =
  if t >= ns_per_ms then Fmt.pf ppf "%.2f ms" (to_ms t)
  else if t >= ns_per_us then Fmt.pf ppf "%.2f us" (to_us t)
  else Fmt.pf ppf "%.1f ns" t
