lib/sim/time.ml: Fmt
