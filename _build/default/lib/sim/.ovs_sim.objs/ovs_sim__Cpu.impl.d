lib/sim/cpu.ml: Float Fmt List Time
