lib/sim/histogram.ml: Array Float Fmt Int
