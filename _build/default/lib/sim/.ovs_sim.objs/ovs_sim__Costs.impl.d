lib/sim/costs.ml:
