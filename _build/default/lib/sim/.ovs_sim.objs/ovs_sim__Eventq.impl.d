lib/sim/eventq.ml: Array Obj Time
