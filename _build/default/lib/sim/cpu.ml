(** CPU execution contexts and time accounting.

    Every logical thread of execution in the model — a PMD thread, a kernel
    softirq context bound to a receive queue, a guest vCPU, the iperf/netperf
    application thread — is a [ctx]. Work performed on the fast path charges
    virtual nanoseconds to its context under one of the four categories that
    the paper's Table 4 reports (system / softirq / guest / user).

    A pipelined run's wall-clock time is the busy time of its bottleneck
    context; aggregate CPU consumption in "units of a hyperthread" is each
    context's busy time divided by that wall time. *)

type category = User | System | Softirq | Guest

let category_to_string = function
  | User -> "user"
  | System -> "system"
  | Softirq -> "softirq"
  | Guest -> "guest"

type ctx = {
  name : string;
  mutable user : Time.ns;
  mutable system : Time.ns;
  mutable softirq : Time.ns;
  mutable guest : Time.ns;
}

type t = { mutable ctxs : ctx list }
(** A machine: the collection of execution contexts created for a run. *)

let create () = { ctxs = [] }

let ctx t name =
  let c = { name; user = 0.; system = 0.; softirq = 0.; guest = 0. } in
  t.ctxs <- c :: t.ctxs;
  c

let charge c cat (ns : Time.ns) =
  match cat with
  | User -> c.user <- c.user +. ns
  | System -> c.system <- c.system +. ns
  | Softirq -> c.softirq <- c.softirq +. ns
  | Guest -> c.guest <- c.guest +. ns

let busy c = c.user +. c.system +. c.softirq +. c.guest

let reset c =
  c.user <- 0.;
  c.system <- 0.;
  c.softirq <- 0.;
  c.guest <- 0.

(** Busy time of the bottleneck context: the virtual wall time of a fully
    pipelined run in which every context processes the same packet stream. *)
let wall t = List.fold_left (fun acc c -> Float.max acc (busy c)) 0. t.ctxs

type breakdown = {
  bd_system : float;
  bd_softirq : float;
  bd_guest : float;
  bd_user : float;
  bd_total : float;
}
(** CPU consumption in units of a hyperthread, as in the paper's Table 4. *)

(** Aggregate consumption over a run of duration [wall]. A context that was
    busy for the whole wall time contributes 1.0 hyperthread. [poll_floor]
    lists contexts that busy-poll (PMD threads, DPDK cores): they burn their
    CPU even when idle, so they are rounded up to a full hyperthread. *)
let breakdown ?(poll_floor = []) t ~wall =
  if wall <= 0. then
    { bd_system = 0.; bd_softirq = 0.; bd_guest = 0.; bd_user = 0.; bd_total = 0. }
  else begin
    let sys = ref 0. and sirq = ref 0. and gst = ref 0. and usr = ref 0. in
    List.iter
      (fun c ->
        let polls = List.memq c poll_floor in
        let scale x = x /. wall in
        let u = scale c.user and s = scale c.system in
        let si = scale c.softirq and g = scale c.guest in
        (* A polling thread spends its idle cycles spinning in the same
           category as its useful work; attribute the round-up to its
           dominant category. *)
        let u, s, si, g =
          if not polls then (u, s, si, g)
          else begin
            let tot = u +. s +. si +. g in
            let slack = Float.max 0. (1. -. tot) in
            let m = Float.max (Float.max u s) (Float.max si g) in
            if m = u then (u +. slack, s, si, g)
            else if m = si then (u, s, si +. slack, g)
            else if m = g then (u, s, si, g +. slack)
            else (u, s +. slack, si, g)
          end
        in
        usr := !usr +. u;
        sys := !sys +. s;
        sirq := !sirq +. si;
        gst := !gst +. g)
      t.ctxs;
    {
      bd_system = !sys;
      bd_softirq = !sirq;
      bd_guest = !gst;
      bd_user = !usr;
      bd_total = !sys +. !sirq +. !gst +. !usr;
    }
  end

let pp_breakdown ppf b =
  Fmt.pf ppf "system=%.1f softirq=%.1f guest=%.1f user=%.1f total=%.1f"
    b.bd_system b.bd_softirq b.bd_guest b.bd_user b.bd_total
