(** netperf TCP_RR latency model for Figs 10 and 11.

    A transaction's round-trip time is the sum of its path's hops. Each
    hop has a fixed cost plus, for interrupt/scheduler hops, an
    exponential jitter term — wakeup latency is the dominant and most
    variable component, which is why the interrupt-driven kernel path has
    both the highest P50 and the fattest tail, while polling (DPDK,
    AF_XDP PMDs) tightens both (Sec 5.3). A rare scheduler preemption
    spike gives every path a far tail.

    The model samples many transactions with the deterministic PRNG and
    reports the P50/P90/P99 latencies and transactions/second. *)

module Costs = Ovs_sim.Costs

type hop = {
  hop_name : string;
  fixed : float;  (** ns *)
  jitter : float;  (** mean of the exponential jitter term; 0 = none *)
}

let hop ?(jitter = 0.) hop_name fixed = { hop_name; fixed; jitter }

type config = Rr_kernel | Rr_afxdp | Rr_dpdk

let config_name = function
  | Rr_kernel -> "kernel"
  | Rr_afxdp -> "AF_XDP"
  | Rr_dpdk -> "DPDK"

type result = {
  p50_us : float;
  p90_us : float;
  p99_us : float;
  transactions_per_s : float;
}

(* building blocks *)
let wakeup (c : Costs.t) name = hop name c.Costs.irq_wakeup_latency ~jitter:1200.
let local_wakeup name = hop name 2200. ~jitter:900.
let poll (c : Costs.t) name = hop name c.Costs.poll_pickup_latency ~jitter:40.

(** Fig 10: client netperf in a VM on host A, server on bare-metal host B,
    10 GbE between them. *)
let interhost_path (c : Costs.t) config : hop list =
  let wire = hop "wire" c.Costs.wire_latency in
  let guest_stack = hop "guest-stack" 2500. ~jitter:150. in
  let server_stack = hop "server-stack" 2000. ~jitter:150. in
  let app = hop "netperf" c.Costs.app_rr_process ~jitter:300. in
  let guest_notify = hop "guest-notify" c.Costs.vm_exit_entry ~jitter:400. in
  let host_dp, vm_cross_out, vm_cross_in, nic_rx =
    match config with
    | Rr_kernel ->
        ( hop "kernel-dp" 1000. ~jitter:100.,
          wakeup c "vhost-wakeup",
          wakeup c "vhost-wakeup",
          wakeup c "nic-irq" )
    | Rr_afxdp ->
        (* PMDs poll the XSK and the vhost ring; software checksum and the
           XDP program add a little fixed cost *)
        ( hop "pmd-dp" 1400. ~jitter:120.,
          poll c "vhost-poll",
          poll c "vhost-poll",
          poll c "xsk-poll" )
    | Rr_dpdk ->
        ( hop "pmd-dp" 900. ~jitter:100.,
          poll c "vhost-poll",
          poll c "vhost-poll",
          poll c "nic-poll" )
  in
  (* request: guest -> host A -> wire -> server; response mirrored. The
     kernel path takes one extra wakeup on tx (tap qdisc -> vhost). *)
  (match config with Rr_kernel -> [ wakeup c "tap-qdisc" ] | _ -> [])
  @ [
      guest_stack; vm_cross_out; host_dp; wire;
      wakeup c "server-nic-irq"; server_stack; wakeup c "server-app-sched"; app;
      server_stack; wire; nic_rx; host_dp; vm_cross_in; guest_notify;
      guest_stack; wakeup c "client-app-sched";
    ]

(** Fig 11: client and server netperf in two containers on one host. *)
let intrahost_container_path (c : Costs.t) config : hop list =
  let stack = hop "container-stack" 1500. ~jitter:120. in
  let veth = hop "veth" c.Costs.veth_cross in
  let app = hop "netperf" c.Costs.app_rr_process ~jitter:300. in
  ignore c;
  match config with
  | Rr_kernel ->
      [
        stack; veth; hop "kernel-dp" 500. ~jitter:60.; veth;
        local_wakeup "server-app-sched"; app; stack;
        veth; hop "kernel-dp" 500. ~jitter:60.; veth;
        local_wakeup "client-app-sched"; stack;
      ]
  | Rr_afxdp ->
      (* the XDP program bounces packets between the veths in the driver;
         the stacks and app wakeups are unchanged *)
      [
        stack; veth; hop "xdp" 700. ~jitter:60.; veth;
        local_wakeup "server-app-sched"; app; stack;
        veth; hop "xdp" 700. ~jitter:60.; veth;
        local_wakeup "client-app-sched"; stack;
      ]
  | Rr_dpdk ->
      (* containers reach DPDK through AF_PACKET: each direction takes
         extra user/kernel transitions, copies, and a long, highly
         variable scheduling delay while the busy PMD and the sleeping
         netperf share the machine *)
      let af_packet name = hop name 13_000. ~jitter:28_000. in
      [
        stack; veth; af_packet "af_packet-out"; hop "pmd-dp" 900. ~jitter:100.; veth;
        local_wakeup "server-app-sched"; app; stack;
        veth; af_packet "af_packet-back"; hop "pmd-dp" 900. ~jitter:100.; veth;
        local_wakeup "client-app-sched"; stack;
      ]

let preemption_spike_mean = 24_000.

(* interrupt-heavy paths are also the ones preemption hits: each big
   wakeup hop is a chance for the scheduler to run something else *)
let spike_prob path =
  let wakeups =
    List.length (List.filter (fun h -> h.jitter >= 1000.) path)
  in
  0.002 +. (0.004 *. float_of_int wakeups)

(** Sample [n] transactions over a hop path. *)
let run ?(n = 30_000) ?(seed = 7) (path : hop list) : result =
  let prng = Ovs_sim.Prng.of_int seed in
  let hist = Ovs_sim.Histogram.create ~lo:1000. ~hi:1e7 () in
  let total = ref 0. in
  let p_spike = spike_prob path in
  for _ = 1 to n do
    let rtt =
      List.fold_left
        (fun acc h ->
          acc +. h.fixed
          +. if h.jitter > 0. then Ovs_sim.Prng.exponential prng ~mean:h.jitter else 0.)
        0. path
    in
    let rtt =
      if Ovs_sim.Prng.float prng < p_spike then
        rtt +. Ovs_sim.Prng.exponential prng ~mean:preemption_spike_mean
      else rtt
    in
    total := !total +. rtt;
    Ovs_sim.Histogram.add hist rtt
  done;
  let mean = !total /. float_of_int n in
  {
    p50_us = Ovs_sim.Histogram.p50 hist /. 1000.;
    p90_us = Ovs_sim.Histogram.p90 hist /. 1000.;
    p99_us = Ovs_sim.Histogram.p99 hist /. 1000.;
    transactions_per_s = 1e9 /. mean;
  }

let pp_result ppf r =
  Fmt.pf ppf "P50/P90/P99 = %.0f/%.0f/%.0f us, %.1fk transactions/s" r.p50_us
    r.p90_us r.p99_us
    (r.transactions_per_s /. 1000.)
