(** Bulk-TCP throughput model for the Fig 8 scenarios (iperf through the
    NSX pipeline, three datapath passes per packet).

    The model decomposes each configuration into processing stages. A
    stage's cost is [per_segment + bytes * per_byte] where the segment is
    the unit the path carries: 64 kB when TSO lets one large segment
    travel end-to-end, one MTU payload otherwise. Poll-mode stages run on
    their own cores and pipeline, so throughput is set by the *bottleneck*
    stage; interrupt-driven stages ping-pong with the TCP self-clock and
    *serialize*, so their costs add. This split is what makes AF_XDP with
    polling beat the interrupt-driven kernel path on the same tap device
    (Fig 8a bars 1-3), and TSO amortization is what makes offloads worth
    3-8x (Figs 8b/8c).

    Per-byte and per-packet constants below are calibrated jointly against
    all fourteen bars; each is shared across scenarios (no per-bar fits). *)

module Costs = Ovs_sim.Costs

type virt = Tap | Vhost | Veth | Xdp_redirect

type datapath = Dp_kernel | Dp_afxdp_interrupt | Dp_afxdp_poll

type offloads = { csum : bool; tso : bool }

type config = {
  datapath : datapath;
  virt : virt;
  offloads : offloads;
  cross_host : bool;  (** Geneve encapsulation over a 10 GbE link *)
  link_gbps : float;
}

type result = {
  gbps : float;
  segment_bytes : int;
  bottleneck : string;  (** name of the limiting stage *)
  stages : (string * float) list;  (** stage name, ns per segment *)
}

let mtu_payload = 1448
let tso_segment = 65536

(* stack-processing constants (ns and ns/byte), shared across scenarios *)
let guest_tx_pp = 470.
let guest_tx_pb = 0.16
let guest_rx_pp = 520.
let guest_rx_pb = 0.24
let container_tx_pp = 300.
let container_tx_pb = 0.07
let container_rx_pp = 330.
let container_rx_pb = 0.085
let vm_exit_notify = 2600.  (* virtio notification + VM exit round trip *)
let vhost_kthread_pp = 1252.  (* tap/vhost-net kernel thread per packet *)
let xsk_veth_wakeup = 900.  (* need_wakeup syscalls on an XSK bound to veth *)
let xdp_generic_penalty = 500.  (* veth runs XDP in generic (skb) mode *)

let segment_bytes cfg = if cfg.offloads.tso then tso_segment else mtu_payload

let run (c : Costs.t) (cfg : config) : result =
  let seg = segment_bytes cfg in
  let segf = float_of_int seg in
  let wire_packets = float_of_int ((seg + mtu_payload - 1) / mtu_payload) in
  (* tap VMs ride vhost-net, whose virtio always negotiates guest-side
     checksum offload; vhostuser negotiates with OVS, so the experiment's
     offload switch governs the guest there *)
  let virtio_csum =
    match cfg.virt with Tap -> true | Vhost -> cfg.offloads.csum | _ -> false
  in
  let guest_sw_csum = if virtio_csum then 0. else Costs.csum c ~bytes:seg in
  let exits =
    if cfg.offloads.tso then vm_exit_notify  (* one notification per 64kB *)
    else if virtio_csum then vm_exit_notify /. 4.  (* ring batching w/ GRO *)
    else vm_exit_notify
  in
  let guest_tx () = guest_tx_pp +. (guest_tx_pb *. segf) +. guest_sw_csum +. exits in
  let guest_rx () = guest_rx_pp +. (guest_rx_pb *. segf) +. guest_sw_csum +. exits in
  let container_sw_csum = if cfg.offloads.csum then 0. else Costs.csum c ~bytes:seg in
  let container_tx () = container_tx_pp +. (container_tx_pb *. segf) +. container_sw_csum in
  let container_rx () = container_rx_pp +. (container_rx_pb *. segf) +. container_sw_csum in
  (* AF_XDP validates/generates checksums in software until drivers grow
     the hint support (Sec 3.2 O5) *)
  let afxdp_sw_csum = if cfg.offloads.csum then 0. else Costs.csum c ~bytes:seg in
  (* one datapath traversal: three pipeline passes (Sec 5.1) plus encap *)
  let dp_pass ~kernel =
    let per_pass =
      if kernel then
        c.Costs.kmod_flow_extract +. c.Costs.kmod_flow_lookup +. c.Costs.kmod_action
        +. c.Costs.skb_alloc
      else
        c.Costs.miniflow_extract +. c.Costs.emc_hit +. c.Costs.action_exec
        +. c.Costs.prealloc_init
    in
    (3. *. per_pass) +. if cfg.cross_host then 60. +. afxdp_sw_csum else 0.
  in
  let vhost_copies = 2. *. Costs.copy c ~bytes:seg in
  let stages, serialized =
    match (cfg.datapath, cfg.virt) with
    | Dp_kernel, (Tap | Vhost) ->
        (* one interrupt-driven softirq chain: guest, vhost-net, datapath *)
        ( [
            ("guest-tx", guest_tx ());
            ("vhost-net", vhost_kthread_pp +. vhost_copies);
            ("kernel-datapath",
             dp_pass ~kernel:true +. c.Costs.tap_rx_kernel +. c.Costs.interrupt);
            ("guest-rx", guest_rx ());
          ],
          true )
    | Dp_afxdp_interrupt, (Tap | Vhost) ->
        (* without PMD threads every hop wakes the next: tap write, OVS
           wakeup, interrupt — all on the packet's critical path *)
        ( [
            ("guest-tx", guest_tx ());
            ("tap+ovs-wakeups",
             vhost_kthread_pp +. c.Costs.sendto_tap +. c.Costs.tap_rx_kernel
             +. vhost_copies +. dp_pass ~kernel:false +. afxdp_sw_csum
             +. c.Costs.interrupt +. c.Costs.context_switch);
            ("guest-rx", guest_rx ());
          ],
          false )
    | Dp_afxdp_poll, Tap ->
        ( [
            ("guest-tx", guest_tx ());
            ("tap+vhost",
             vhost_kthread_pp +. c.Costs.sendto_tap +. c.Costs.tap_rx_kernel
             +. 300. +. vhost_copies);
            ("pmd", dp_pass ~kernel:false +. afxdp_sw_csum);
            ("guest-rx", guest_rx ());
          ],
          false )
    | Dp_afxdp_poll, Vhost ->
        ( [
            ("guest-tx", guest_tx ());
            ("pmd",
             dp_pass ~kernel:false +. afxdp_sw_csum
             +. (2. *. (c.Costs.virtio_ring_op +. c.Costs.vhost_copy_fixed))
             +. vhost_copies);
            ("guest-rx", guest_rx ());
          ],
          false )
    | Dp_kernel, Veth ->
        ( [
            ("container-tx", container_tx ());
            ("kernel-datapath", dp_pass ~kernel:true +. (2. *. c.Costs.veth_cross));
            ("container-rx", container_rx ());
          ],
          true )
    | _, Xdp_redirect ->
        (* Fig 5 path C: no userspace hop. XDP on a veth runs in generic
           (skb) mode and cannot use TSO or checksum offload (Sec 3.4). *)
        let per_packet_csum = Costs.csum c ~bytes:(Int.min seg mtu_payload) in
        ( [
            ("container-tx", container_tx_pp +. (container_tx_pb *. segf)
                             +. per_packet_csum);
            ("xdp",
             wire_packets
             *. (c.Costs.xdp_prog_overhead +. (30. *. c.Costs.ebpf_insn)
                +. c.Costs.xdp_redirect +. c.Costs.veth_cross
                +. xdp_generic_penalty +. c.Costs.driver_tx));
            ("container-rx", container_rx_pp +. (container_rx_pb *. segf)
                             +. per_packet_csum);
          ],
          true )
    | (Dp_afxdp_poll | Dp_afxdp_interrupt), Veth ->
        (* path A: veth -> XSK -> OVS userspace -> veth. The XSK on a veth
           is interrupt-driven per wire packet even when the container
           stacks aggregate with TSO/GRO, so the whole chain serializes. *)
        ( [
            ("container-tx", container_tx ());
            ("xsk-wakeups",
             wire_packets
             *. (xsk_veth_wakeup +. (2. *. c.Costs.xsk_ring_op)
                +. c.Costs.driver_rx_dma)
             +. (2. *. c.Costs.veth_cross));
            ("pmd", dp_pass ~kernel:false +. afxdp_sw_csum +. vhost_copies);
            ("container-rx", container_rx ());
          ],
          true )
  in
  let bottleneck_ns, bottleneck =
    if serialized then
      (List.fold_left (fun acc (_, ns) -> acc +. ns) 0. stages, "serial-chain")
    else
      List.fold_left
        (fun (best, name) (n, ns) -> if ns > best then (ns, n) else (best, name))
        (0., "?") stages
  in
  let raw_gbps = segf *. 8. /. bottleneck_ns in
  (* wire efficiency: Ethernet + IP + TCP (+ Geneve outer) overheads *)
  let overhead = 78 + if cfg.cross_host then 50 + 8 + 20 + 14 else 0 in
  let line =
    cfg.link_gbps *. float_of_int mtu_payload
    /. float_of_int (mtu_payload + overhead)
  in
  let gbps = if cfg.cross_host then Float.min raw_gbps line else raw_gbps in
  { gbps; segment_bytes = seg; bottleneck; stages }

let pp_result ppf r =
  Fmt.pf ppf "%5.1f Gbps (seg=%dB, bound by %s)" r.gbps r.segment_bytes
    r.bottleneck

(** The fourteen bars of Fig 8, in paper order, with the values the paper
    reports for comparison in the harness. *)
let figure8_bars =
  let mk d v ~csum ~tso ~cross = { datapath = d; virt = v; offloads = { csum; tso };
                                   cross_host = cross; link_gbps = 10. } in
  [
    (* (a) VM-to-VM cross-host over Geneve *)
    ("a: kernel + tap", mk Dp_kernel Tap ~csum:true ~tso:false ~cross:true, 2.2);
    ("a: AF_XDP + tap (interrupt)", mk Dp_afxdp_interrupt Tap ~csum:false ~tso:false ~cross:true, 1.9);
    ("a: AF_XDP + tap (polling)", mk Dp_afxdp_poll Tap ~csum:false ~tso:false ~cross:true, 3.0);
    ("a: AF_XDP + vhostuser", mk Dp_afxdp_poll Vhost ~csum:false ~tso:false ~cross:true, 4.4);
    ("a: AF_XDP + vhostuser csum", mk Dp_afxdp_poll Vhost ~csum:true ~tso:false ~cross:true, 6.5);
    (* (b) VM-to-VM within one host *)
    ("b: kernel + tap (csum+TSO)", mk Dp_kernel Tap ~csum:true ~tso:true ~cross:false, 12.);
    ("b: AF_XDP + tap", mk Dp_afxdp_poll Tap ~csum:false ~tso:false ~cross:false, 2.9);
    ("b: AF_XDP + vhostuser", mk Dp_afxdp_poll Vhost ~csum:false ~tso:false ~cross:false, 3.8);
    ("b: AF_XDP + vhostuser csum", mk Dp_afxdp_poll Vhost ~csum:true ~tso:false ~cross:false, 8.4);
    ("b: AF_XDP + vhostuser csum+TSO", mk Dp_afxdp_poll Vhost ~csum:true ~tso:true ~cross:false, 29.);
    (* (c) container-to-container within one host *)
    ("c: kernel + veth", mk Dp_kernel Veth ~csum:false ~tso:false ~cross:false, 5.9);
    ("c: kernel + veth csum+TSO", mk Dp_kernel Veth ~csum:true ~tso:true ~cross:false, 49.);
    ("c: AF_XDP XDP redirect", mk Dp_afxdp_poll Xdp_redirect ~csum:false ~tso:false ~cross:false, 5.7);
    ("c: AF_XDP + veth", mk Dp_afxdp_poll Veth ~csum:false ~tso:false ~cross:false, 4.1);
    ("c: AF_XDP + veth csum", mk Dp_afxdp_poll Veth ~csum:true ~tso:false ~cross:false, 5.0);
    ("c: AF_XDP + veth csum+TSO", mk Dp_afxdp_poll Veth ~csum:true ~tso:true ~cross:false, 8.0);
  ]
