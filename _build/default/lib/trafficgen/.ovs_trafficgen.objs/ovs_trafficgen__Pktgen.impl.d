lib/trafficgen/pktgen.ml: Array Buffer Build Flow_key Hashtbl Ipv4 Mac Ovs_packet Ovs_sim
