lib/trafficgen/scenario.ml: Array Float Fmt Int Int64 List Ovs_datapath Ovs_ebpf Ovs_netdev Ovs_ofproto Ovs_packet Ovs_sim Pktgen Printf
