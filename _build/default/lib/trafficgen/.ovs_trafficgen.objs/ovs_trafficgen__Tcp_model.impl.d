lib/trafficgen/tcp_model.ml: Float Fmt Int List Ovs_sim
