lib/trafficgen/rr_model.ml: Fmt List Ovs_sim
