lib/flow/dpcls.mli: Ovs_packet
