lib/flow/emc.mli: Ovs_packet
