lib/flow/dpcls.ml: Hashtbl List Ovs_packet
