lib/flow/emc.ml: Array Ovs_packet
