lib/flow/smc.mli: Ovs_packet
