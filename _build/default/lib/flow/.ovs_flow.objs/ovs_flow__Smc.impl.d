lib/flow/smc.ml: Array Ovs_packet
