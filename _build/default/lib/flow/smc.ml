(** The signature-match cache (SMC): the optional middle layer of the OVS
    userspace lookup hierarchy (off by default upstream; an ablation knob
    here). Where the EMC stores the full flow key per entry, the SMC is a
    direct-mapped cache from the key's hash ("signature") to a megaflow:
    sixteen times denser, at the cost of one masked comparison per hit —
    useful when the flow count overwhelms the EMC. *)

module FK = Ovs_packet.Flow_key

type 'a entry = {
  signature : int;
  mask : FK.t;
  masked_key : FK.t;
  value : 'a;
}

type 'a t = {
  slots : 'a entry option array;
  mask_bits : int;
  mutable lookups : int;
  mutable hits : int;
}

let default_entries = 32768

let create ?(entries = default_entries) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Smc.create: entries must be a power of two";
  { slots = Array.make entries None; mask_bits = entries - 1; lookups = 0; hits = 0 }

let lookup t (key : FK.t) : 'a option =
  t.lookups <- t.lookups + 1;
  let signature = FK.hash key in
  match t.slots.(signature land t.mask_bits) with
  | Some e
    when e.signature = signature
         && FK.equal (FK.apply_mask key e.mask) e.masked_key ->
      t.hits <- t.hits + 1;
      Some e.value
  | _ -> None

(** Install the megaflow a dpcls lookup just returned. *)
let insert t (key : FK.t) ~(mask : FK.t) (value : 'a) =
  let signature = FK.hash key in
  t.slots.(signature land t.mask_bits) <-
    Some { signature; mask = FK.copy mask; masked_key = FK.apply_mask key mask; value }

let flush t = Array.fill t.slots 0 (Array.length t.slots) None

let hit_rate t =
  if t.lookups = 0 then 0. else float_of_int t.hits /. float_of_int t.lookups
