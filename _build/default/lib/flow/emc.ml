(** The exact-match cache (EMC): first level of the userspace datapath's
    lookup hierarchy. Maps a packet's full flow key to its megaflow with a
    2-way set-associative probe, exactly the structure whose in-kernel
    counterpart the Linux maintainers rejected (Sec 2.1, [61]) — which is
    why only the userspace datapaths get to have one. *)

type 'a entry = { key : Ovs_packet.Flow_key.t; mutable value : 'a; mutable hits : int }

type 'a t = {
  slots : 'a entry option array;
  mask : int;
  mutable insertions : int;
  mutable lookups : int;
  mutable hit_count : int;
  mutable occupied : int;  (** live entries, maintained incrementally *)
}

let default_entries = 8192

let create ?(entries = default_entries) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Emc.create: entries must be a power of two";
  {
    slots = Array.make entries None;
    mask = entries - 1;
    insertions = 0;
    lookups = 0;
    hit_count = 0;
    occupied = 0;
  }

let slot2 t h = (h lsr 13) land t.mask

let lookup t (key : Ovs_packet.Flow_key.t) : 'a option =
  t.lookups <- t.lookups + 1;
  let h = Ovs_packet.Flow_key.hash key in
  let probe i =
    match t.slots.(i) with
    | Some e when Ovs_packet.Flow_key.equal e.key key ->
        e.hits <- e.hits + 1;
        Some e.value
    | _ -> None
  in
  let r =
    match probe (h land t.mask) with
    | Some _ as hit -> hit
    | None -> probe (slot2 t h)
  in
  (match r with Some _ -> t.hit_count <- t.hit_count + 1 | None -> ());
  r

(** Insert, evicting the colder of the two candidate slots when both are
    occupied (OVS evicts probabilistically; coldest-of-two keeps the test
    behaviour deterministic). *)
let insert t (key : Ovs_packet.Flow_key.t) (value : 'a) =
  t.insertions <- t.insertions + 1;
  let h = Ovs_packet.Flow_key.hash key in
  let i1 = h land t.mask and i2 = slot2 t h in
  let fresh = Some { key = Ovs_packet.Flow_key.copy key; value; hits = 0 } in
  match (t.slots.(i1), t.slots.(i2)) with
  | Some e, _ when Ovs_packet.Flow_key.equal e.key key -> e.value <- value
  | _, Some e when Ovs_packet.Flow_key.equal e.key key -> e.value <- value
  | None, _ ->
      t.slots.(i1) <- fresh;
      t.occupied <- t.occupied + 1
  | _, None ->
      t.slots.(i2) <- fresh;
      t.occupied <- t.occupied + 1
  | Some a, Some b ->
      if a.hits <= b.hits then t.slots.(i1) <- fresh else t.slots.(i2) <- fresh

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.occupied <- 0

let occupancy t = t.occupied

let hit_rate t =
  if t.lookups = 0 then 0. else float_of_int t.hit_count /. float_of_int t.lookups
