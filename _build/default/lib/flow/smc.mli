(** The signature-match cache (SMC): the optional middle layer of the
    lookup hierarchy (off by default upstream). A direct-mapped cache from
    the key's hash to a megaflow — sixteen times denser than the EMC, at
    the price of one masked comparison per hit. *)

type 'a t

val default_entries : int
(** 32768 slots. *)

val create : ?entries:int -> unit -> 'a t
(** [entries] must be a power of two.
    @raise Invalid_argument otherwise. *)

val lookup : 'a t -> Ovs_packet.Flow_key.t -> 'a option
(** Probe the slot selected by the key's signature; a hit requires both
    the signature and the masked key to match. *)

val insert : 'a t -> Ovs_packet.Flow_key.t -> mask:Ovs_packet.Flow_key.t -> 'a -> unit
(** Install the megaflow (identified by its wildcard [mask]) that a dpcls
    lookup for this key just returned. *)

val flush : 'a t -> unit

val hit_rate : 'a t -> float
