(** The exact-match cache (EMC): first level of the userspace datapath's
    lookup hierarchy, mapping a packet's full flow key to its megaflow with
    a 2-way set-associative probe. Its in-kernel counterpart was rejected
    upstream (paper Sec 2.1), which is why only the userspace datapaths
    have one. *)

type 'a t

val default_entries : int
(** 8192, as in OVS. *)

val create : ?entries:int -> unit -> 'a t
(** [create ()] makes an empty cache. [entries] must be a power of two.
    @raise Invalid_argument otherwise. *)

val lookup : 'a t -> Ovs_packet.Flow_key.t -> 'a option
(** Probe both candidate slots for an exact key match. Updates hit
    statistics. *)

val insert : 'a t -> Ovs_packet.Flow_key.t -> 'a -> unit
(** Insert or update, evicting the colder of the two candidate slots when
    both are occupied. *)

val flush : 'a t -> unit
(** Drop every entry (rule changes invalidate cached actions). *)

val occupancy : 'a t -> int
(** Live entries — the cache's working-set size, which drives the
    cold-cache penalty in the cost model. O(1). *)

val hit_rate : 'a t -> float
(** Hits over lookups since creation (or the last flush did not reset
    statistics; this is a lifetime ratio). *)
