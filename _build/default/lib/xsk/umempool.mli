(** The umempool: OVS's userspace allocator for umem frames (paper
    Sec 3.2). Every operation synchronizes because any PMD thread may
    return a frame to any pool; the lock strategy is exactly what
    optimizations O2 (mutex to spinlock) and O3 (per-frame to per-batch)
    change. Statistics feed the cost model. *)

type lock_strategy =
  | Mutex  (** pthread_mutex per operation (pre-O2) *)
  | Spinlock  (** spinlock per operation (O2) *)
  | Spinlock_batched  (** one acquisition per batch (O3) *)

type stats = {
  mutable lock_acquisitions : int;
  mutable frame_ops : int;
  mutable batch_ops : int;
  mutable exhausted : int;  (** allocation failures *)
}

type t = {
  free : int array;
  mutable top : int;
  strategy : lock_strategy;
  stats : stats;
}

val create : n_frames:int -> strategy:lock_strategy -> t

val available : t -> int

val get : t -> int option
(** One frame, one lock acquisition; [None] when exhausted. *)

val put : t -> int -> unit

val get_batch : t -> int -> int list
(** Up to [n] frames; one lock acquisition under [Spinlock_batched], one
    per frame otherwise. *)

val put_batch : t -> int list -> unit

val lock_cost : t -> Ovs_sim.Costs.t -> float
(** Virtual-time cost of one acquisition under this pool's strategy. *)

val total_cost : t -> Ovs_sim.Costs.t -> float
(** Accumulated synchronization + allocator cost. *)

val reset_stats : t -> unit
