(** Packet-metadata allocation, the subject of optimization O4.

    Without O4, every received packet allocates a fresh dp_packet metadata
    structure (an mmap-backed allocation in the paper's profile). With O4,
    metadata lives in a preallocated contiguous array whose
    packet-independent fields are initialized once; per-packet work is a
    cheap reset. The datapath charges [Costs.page_alloc] or
    [Costs.prealloc_init] per packet accordingly. *)

type mode = Per_packet_alloc | Preallocated

type t = {
  mode : mode;
  slots : Ovs_packet.Buffer.t array;  (** used in [Preallocated] mode *)
  mutable next : int;
  mutable allocations : int;
}

let create ~mode ~size =
  {
    mode;
    slots =
      (match mode with
      | Preallocated ->
          Array.init size (fun _ -> Ovs_packet.Buffer.create ~size:2048 ())
      | Per_packet_alloc -> [||]);
    next = 0;
    allocations = 0;
  }

(** Per-packet metadata cost under this mode. *)
let metadata_cost t (costs : Ovs_sim.Costs.t) =
  match t.mode with
  | Per_packet_alloc -> costs.Ovs_sim.Costs.page_alloc
  | Preallocated -> costs.Ovs_sim.Costs.prealloc_init

(** Account one metadata acquisition (the buffer itself comes from the
    umem in the AF_XDP path; this models only the metadata structure). *)
let acquire t =
  t.allocations <- t.allocations + 1;
  match t.mode with
  | Per_packet_alloc -> ()
  | Preallocated -> t.next <- (t.next + 1) mod Array.length t.slots
