lib/xsk/umem.ml: Buffer Bytes Ovs_packet Ring
