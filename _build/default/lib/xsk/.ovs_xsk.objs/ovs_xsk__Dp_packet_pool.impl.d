lib/xsk/dp_packet_pool.ml: Array Ovs_packet Ovs_sim
