lib/xsk/xsk.ml: Bytes List Ovs_packet Ring Umem Umempool
