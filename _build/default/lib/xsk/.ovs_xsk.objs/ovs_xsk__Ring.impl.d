lib/xsk/ring.ml: Array Int List
