lib/xsk/umempool.mli: Ovs_sim
