lib/xsk/umempool.ml: Array Int List Ovs_sim
