lib/xsk/ring.mli:
