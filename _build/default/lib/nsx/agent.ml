(** The NSX agent model (Sec 4, Fig 7): connects to the local OVS over
    OVSDB and OpenFlow, creates the integration and underlay bridges,
    transforms the network policy into flow rules, and installs them.

    The OVSDB side is a real transactional database ({!Ovs_ovsdb.Db})
    speaking the Open_vSwitch schema: bridge and port creation are atomic
    transactions, and ovs-vswitchd's reconfiguration is modelled by a
    monitor on the Bridge and Interface tables. The OpenFlow side installs
    textual rules into the bridge pipelines. *)

type bridge = {
  name : string;
  pipeline : Ovs_ofproto.Pipeline.t;
  mutable ports : (string * int) list;
}

type t = {
  db : Ovs_ovsdb.Db.t;
  integration : bridge;  (** br-int: VIF-to-VIF policy *)
  underlay : bridge;  (** br-underlay: tunnel endpoint / uplink *)
  spec : Ruleset.spec;
  mutable installed : int;
  mutable reconfigurations : int;
      (** times the (modelled) vswitchd reacted to an OVSDB change *)
}

let create ?(spec = Ruleset.table3_spec) () =
  let db = Ovs_ovsdb.Db.create () in
  let t =
    {
      db;
      integration =
        { name = "br-int"; pipeline = Ovs_ofproto.Pipeline.create ~n_tables:40 (); ports = [] };
      underlay =
        { name = "br-underlay"; pipeline = Ovs_ofproto.Pipeline.create ~n_tables:8 (); ports = [] };
      spec;
      installed = 0;
      reconfigurations = 0;
    }
  in
  (* ovs-vswitchd watches the database and reconfigures on every change *)
  let (_ : unit -> unit) =
    Ovs_ovsdb.Db.monitor db ~table:"Bridge" ~callback:(fun _ ->
        t.reconfigurations <- t.reconfigurations + 1)
  in
  let (_ : unit -> unit) =
    Ovs_ovsdb.Db.monitor db ~table:"Interface" ~callback:(fun _ ->
        t.reconfigurations <- t.reconfigurations + 1)
  in
  (* the two bridges of Fig 7, created through OVSDB transactions *)
  ignore (Ovs_ovsdb.Vsctl.add_br db ~datapath_type:"netdev" "br-int");
  ignore (Ovs_ovsdb.Vsctl.add_br db ~datapath_type:"netdev" "br-underlay");
  t

(** Install the full NSX policy on the integration bridge (the OpenFlow
    side of Fig 7). Returns the Table 3 statistics of what was installed. *)
let install_policy t : Ruleset.stats =
  let lines = Ruleset.generate t.spec in
  let n = Ovs_ofproto.Parser.install_flows t.integration.pipeline lines in
  t.installed <- t.installed + n;
  (* the underlay bridge just forwards between the VTEP IP and the fabric *)
  let m = Ovs_ofproto.Match_.catchall () in
  Ovs_ofproto.Pipeline.add_flow t.underlay.pipeline ~priority:1 m
    [ Ovs_ofproto.Action.Normal ];
  t.installed <- t.installed + 1;
  Ruleset.stats_of_pipeline t.spec t.integration.pipeline

(** Install the policy over the actual OpenFlow wire protocol: every rule
    is encoded as a FLOW_MOD, shipped as bytes through a switch-side
    connection, decoded there, and installed — the full Fig 7 channel.
    Returns (rules installed, wire bytes shipped). *)
let install_policy_via_wire t : int * int =
  let conn = Ovs_ofproto.Ofconn.create ~pipeline:t.integration.pipeline () in
  ignore (Ovs_ofproto.Ofconn.feed conn (Ovs_ofproto.Ofp_codec.encode Ovs_ofproto.Ofp_codec.Hello));
  let bytes = ref 0 in
  let xid = ref 1 in
  List.iter
    (fun line ->
      let f = Ovs_ofproto.Parser.parse_flow line in
      let wire =
        Ovs_ofproto.Ofp_codec.encode ~xid:!xid
          (Ovs_ofproto.Ofp_codec.Flow_mod
             {
               command = `Add;
               table_id = f.Ovs_ofproto.Parser.table;
               priority = f.Ovs_ofproto.Parser.priority;
               cookie = f.Ovs_ofproto.Parser.cookie;
               match_ = f.Ovs_ofproto.Parser.match_;
               actions = f.Ovs_ofproto.Parser.actions;
             })
      in
      incr xid;
      bytes := !bytes + Bytes.length wire;
      ignore (Ovs_ofproto.Ofconn.feed conn wire))
    (Ruleset.generate t.spec);
  t.installed <- t.installed + conn.Ovs_ofproto.Ofconn.flow_mods;
  (conn.Ovs_ofproto.Ofconn.flow_mods, !bytes)

(** Register a port on the integration bridge: an OVSDB transaction that
    creates the Port and Interface rows, plus the ofport assignment the
    switch reports back. *)
let add_port t ?(iface_type = "afxdp") ~name ~port_no () =
  ignore (Ovs_ovsdb.Vsctl.add_port t.db ~bridge:"br-int" ~iface_type name);
  Ovs_ovsdb.Vsctl.set_interface_ofport t.db name port_no;
  t.integration.ports <- (name, port_no) :: t.integration.ports

let del_port t ~name =
  Ovs_ovsdb.Vsctl.del_port t.db ~bridge:"br-int" name;
  t.integration.ports <- List.remove_assoc name t.integration.ports

(** Monitoring: what the agent polls over OVSDB/OpenFlow. *)
type status = { bridges : int; ports : int; rules : int; reconfigurations : int }

let status t =
  {
    bridges = Ovs_ovsdb.Db.row_count t.db ~table:"Bridge";
    ports = Ovs_ovsdb.Db.row_count t.db ~table:"Port";
    rules =
      Ovs_ofproto.Pipeline.flow_count t.integration.pipeline
      + Ovs_ofproto.Pipeline.flow_count t.underlay.pipeline;
    reconfigurations = t.reconfigurations;
  }
