lib/nsx/ruleset.ml: Array Fmt Hashtbl List Ovs_ofproto Ovs_packet Ovs_sim Printf
