lib/nsx/maintenance.ml: Array Int List
