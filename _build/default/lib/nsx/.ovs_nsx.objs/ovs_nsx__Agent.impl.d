lib/nsx/agent.ml: Bytes List Ovs_ofproto Ovs_ovsdb Ruleset
