(** ovs-vswitchd: the top-level switch a user configures.

    Owns the OpenFlow pipeline and the datapath, manages ports (loading
    XDP programs and binding XSKs for AF_XDP physical ports), accepts
    textual flow rules, enforces meters, and models the operational story
    of paper Sec 6: restart-in-place upgrades, and datapath bugs that are
    a host panic under the kernel module but a mere process restart in
    userspace. *)

module Dpif = Ovs_datapath.Dpif

type config = {
  datapath : Dpif.kind;
  kernel : Kernel_compat.version;
  n_tables : int;
}

val default_config : config
(** AF_XDP with every Sec 3.2 optimization, on a kernel-5.3-class host. *)

type meter = { rate_pps : float; mutable hits : int; mutable drops : int }

type crash_outcome = Host_panic | Process_restart of { core_dump : bool }

type t = {
  config : config;
  pipeline : Ovs_ofproto.Pipeline.t;
  mutable dp : Dpif.t;
  mutable port_names : (string * int) list;
  meters : (int, meter) Hashtbl.t;
  mutable restarts : int;
  mutable crashes : int;
  log : string list ref;
}

val create : ?config:config -> unit -> t
(** @raise Invalid_argument when AF_XDP is requested on a pre-4.18 kernel. *)

val add_port : t -> Ovs_netdev.Netdev.t -> int
(** Attach a device; returns its OpenFlow port number. *)

val port_number : t -> string -> int option

val add_flows : t -> string list -> int
(** Install rules in ovs-ofctl syntax; flushes the stale megaflows. *)

val add_flow : t -> string -> unit

val del_flows : t -> string -> int
(** [del_flows t "in_port=1,tcp"]: non-strict del-flows; stale megaflows
    are evicted by revalidation. Returns rules removed. *)

val dump_flows : ?table:int -> t -> string list
(** ovs-ofctl dump-flows, with hit counters. *)

val dump_megaflows : t -> string list
(** ovs-appctl dpctl/dump-flows: the installed fast-path megaflows. *)

val connect_controller : t -> Ovs_ofproto.Controller.t -> unit
(** Wire a reactive controller to the [controller] action: punted packets
    become PACKET_INs; the controller's FLOW_MODs and PACKET_OUTs are
    applied, with revalidation evicting stale megaflows. *)

val set_meter : t -> ?burst:float -> id:int -> rate_pps:float -> unit -> unit
(** Configure a token-bucket meter for the [meter:N] action (the Sec 6
    QoS stand-in). *)

val meter_stats : t -> id:int -> (int * int) option
(** (passed, dropped) for a configured meter. *)

val set_time : t -> Ovs_sim.Time.ns -> unit
(** Advance the virtual clock (meters refill, conntrack ages). *)

val poll :
  t ->
  softirq:Ovs_sim.Cpu.ctx ->
  pmd:Ovs_sim.Cpu.ctx ->
  port_no:int ->
  queue:int ->
  unit ->
  int
(** One poll iteration over a port's queue (see {!Dpif.poll}). *)

val inject : t -> machine_ctx:Ovs_sim.Cpu.ctx -> Ovs_packet.Buffer.t -> port_no:int -> unit
(** Convenience single-threaded processing: enqueue one packet and poll
    it through the datapath. *)

val restart : t -> unit
(** In-place process restart: configuration survives, caches and
    conntrack state are rebuilt; the caller re-adds its ports. *)

val inject_datapath_bug : t -> crash_outcome
(** What a datapath bug does under this architecture (Sec 6's Geneve
    parser case): kernel → host panic; eBPF → absorbed by the sandbox;
    userspace → restart with a core dump. *)

val counters : t -> Ovs_datapath.Dp_core.counters
val conntrack : t -> Ovs_conntrack.Conntrack.t
val log : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
