lib/core/upgrade.mli: Format
