lib/core/vswitch.ml: Bytes Fmt Hashtbl Kernel_compat List Ovs_datapath Ovs_netdev Ovs_ofproto Ovs_packet
