lib/core/vswitch.mli: Format Hashtbl Kernel_compat Ovs_conntrack Ovs_datapath Ovs_netdev Ovs_ofproto Ovs_packet Ovs_sim
