lib/core/kernel_compat.ml: Ovs_datapath String
