lib/core/upgrade.ml: Fmt
