(** Kernel capability detection (Sec 4: "OVS manages the XDP program: it
    uses the kernel version to determine the available XDP features...").

    Given a kernel version, decide whether AF_XDP exists at all, whether
    zero-copy driver mode is available, and whether need_wakeup can cut
    the busy-poll syscalls — the decisions the real netdev-afxdp.c makes
    at port-configuration time. *)

type version = { major : int; minor : int }

let v major minor = { major; minor }

let compare_version a b =
  match compare a.major b.major with 0 -> compare a.minor b.minor | c -> c

let at_least k m = compare_version k m >= 0

let parse s =
  match String.split_on_char '.' s with
  | major :: minor :: _ -> v (int_of_string major) (int_of_string minor)
  | _ -> invalid_arg ("Kernel_compat.parse: " ^ s)

type xdp_mode =
  | Xdp_unavailable  (** pre-4.18: no AF_XDP socket family *)
  | Xdp_skb  (** generic mode: works on any driver, one extra copy *)
  | Xdp_drv_copy  (** driver mode without zero-copy *)
  | Xdp_drv_zerocopy  (** driver mode with zero-copy umem *)

let mode_name = function
  | Xdp_unavailable -> "unavailable"
  | Xdp_skb -> "best-effort (XDP_SKB)"
  | Xdp_drv_copy -> "native (XDP_DRV, copy)"
  | Xdp_drv_zerocopy -> "native (XDP_DRV, zero-copy)"

(** Select the best AF_XDP mode for a kernel and driver combination
    ([driver_native] / [driver_zerocopy] say what the NIC driver
    implements — the Fig 6 vendor differences). *)
let select_mode ~kernel ~driver_native ~driver_zerocopy =
  if not (at_least kernel (v 4 18)) then Xdp_unavailable
  else if driver_zerocopy && at_least kernel (v 5 0) then Xdp_drv_zerocopy
  else if driver_native then Xdp_drv_copy
  else Xdp_skb

(** need_wakeup (kernel 5.4) removes most tx kick syscalls. *)
let has_need_wakeup kernel = at_least kernel (v 5 4)

(** Whether the per-queue (Mellanox-style) XDP attachment is usable, vs
    whole-device (Intel-style) only — Fig 6. *)
type attach_model = Whole_device | Per_queue

let attach_model ~vendor =
  match vendor with
  | `Mellanox -> Per_queue
  | `Intel | `Other -> Whole_device

(** The AF_XDP options implied by a mode (copy mode costs an extra copy
    per packet; Sec 3.5 "Limitations"). *)
let afxdp_opts_of_mode mode =
  match mode with
  | Xdp_unavailable -> None
  | Xdp_skb | Xdp_drv_copy ->
      Some { Ovs_datapath.Dpif.afxdp_default with copy_mode = true }
  | Xdp_drv_zerocopy -> Some Ovs_datapath.Dpif.afxdp_default
