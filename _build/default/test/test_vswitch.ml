(* Tests for the vswitchd layer: kernel compatibility detection, switch
   configuration, restart/upgrade/crash models (Sec 6). *)

module V = Ovs_core.Vswitch
module K = Ovs_core.Kernel_compat
module U = Ovs_core.Upgrade
module Dpif = Ovs_datapath.Dpif
module Netdev = Ovs_netdev.Netdev

let check = Alcotest.check

(* -- kernel_compat -- *)

let test_version_parse_compare () =
  let v53 = K.parse "5.3.0-42-generic" in
  check Alcotest.int "major" 5 v53.K.major;
  check Alcotest.int "minor" 3 v53.K.minor;
  Alcotest.(check bool) "5.3 >= 4.18" true (K.at_least v53 (K.v 4 18));
  Alcotest.(check bool) "4.14 < 4.18" false (K.at_least (K.v 4 14) (K.v 4 18))

let test_mode_selection () =
  let mode k native zc = K.select_mode ~kernel:k ~driver_native:native ~driver_zerocopy:zc in
  Alcotest.(check bool) "pre-4.18 unavailable" true
    (mode (K.v 4 14) true true = K.Xdp_unavailable);
  Alcotest.(check bool) "4.18 basic driver: skb mode" true
    (mode (K.v 4 18) false false = K.Xdp_skb);
  Alcotest.(check bool) "native without zc" true
    (mode (K.v 5 3) true false = K.Xdp_drv_copy);
  Alcotest.(check bool) "full zero-copy" true
    (mode (K.v 5 3) true true = K.Xdp_drv_zerocopy);
  Alcotest.(check bool) "zc driver but old kernel falls back" true
    (mode (K.v 4 19) true true = K.Xdp_drv_copy)

let test_mode_implies_opts () =
  (match K.afxdp_opts_of_mode K.Xdp_unavailable with
  | None -> ()
  | Some _ -> Alcotest.fail "unavailable must not configure");
  (match K.afxdp_opts_of_mode K.Xdp_skb with
  | Some o -> Alcotest.(check bool) "skb mode copies" true o.Dpif.copy_mode
  | None -> Alcotest.fail "skb mode configures");
  match K.afxdp_opts_of_mode K.Xdp_drv_zerocopy with
  | Some o -> Alcotest.(check bool) "zerocopy avoids the copy" false o.Dpif.copy_mode
  | None -> Alcotest.fail "zc mode configures"

let test_need_wakeup_version () =
  Alcotest.(check bool) "5.4 has need_wakeup" true (K.has_need_wakeup (K.v 5 4));
  Alcotest.(check bool) "5.3 lacks it" false (K.has_need_wakeup (K.v 5 3))

let test_attach_models () =
  Alcotest.(check bool) "mellanox per-queue" true
    (K.attach_model ~vendor:`Mellanox = K.Per_queue);
  Alcotest.(check bool) "intel whole-device" true
    (K.attach_model ~vendor:`Intel = K.Whole_device)

(* -- vswitch -- *)

let test_vswitch_rejects_old_kernel_afxdp () =
  Alcotest.check_raises "AF_XDP needs 4.18"
    (Invalid_argument "Vswitch.create: AF_XDP requires kernel >= 4.18")
    (fun () ->
      ignore (V.create ~config:{ V.default_config with V.kernel = K.v 4 14 } ()))

let test_vswitch_forwards () =
  let sw = V.create () in
  let machine = Ovs_sim.Cpu.create () in
  let ctx = Ovs_sim.Cpu.ctx machine "main" in
  let a = Netdev.create ~name:"p0" () and b = Netdev.create ~name:"p1" () in
  let pa = V.add_port sw a and pb = V.add_port sw b in
  V.add_flow sw (Printf.sprintf "in_port=%d actions=output:%d" pa pb);
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  check Alcotest.int "forwarded" 1 b.Netdev.stats.Netdev.tx_packets;
  Alcotest.(check bool) "port lookup by name" true (V.port_number sw "p0" = Some pa)

let test_vswitch_restart_preserves_rules () =
  let sw = V.create () in
  let machine = Ovs_sim.Cpu.create () in
  let ctx = Ovs_sim.Cpu.ctx machine "main" in
  let a = Netdev.create ~name:"p0" () and b = Netdev.create ~name:"p1" () in
  let pa = V.add_port sw a in
  let pb = V.add_port sw b in
  V.add_flow sw (Printf.sprintf "in_port=%d actions=output:%d" pa pb);
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  V.restart sw;
  (* ports must be re-attached after restart (the devices survive) *)
  let pa' = Ovs_datapath.Dpif.add_port sw.V.dp a in
  let pb' = Ovs_datapath.Dpif.add_port sw.V.dp b in
  check Alcotest.int "port numbering stable" pa pa';
  check Alcotest.int "port numbering stable 2" pb pb';
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  check Alcotest.int "rules survive restart" 2 b.Netdev.stats.Netdev.tx_packets;
  check Alcotest.int "restart counted" 1 sw.V.restarts

let test_crash_outcomes_by_architecture () =
  let crash kind =
    let sw = V.create ~config:{ V.default_config with V.datapath = kind } () in
    V.inject_datapath_bug sw
  in
  (match crash Dpif.Kernel with
  | V.Host_panic -> ()
  | V.Process_restart _ -> Alcotest.fail "kernel bug must panic the host");
  (match crash (Dpif.Afxdp Dpif.afxdp_default) with
  | V.Process_restart { core_dump = true } -> ()
  | _ -> Alcotest.fail "userspace bug restarts with a core dump");
  match crash Dpif.Kernel_ebpf with
  | V.Process_restart { core_dump = false } -> ()
  | _ -> Alcotest.fail "verified eBPF cannot crash anything"

let test_meters_configuration () =
  let sw = V.create () in
  V.set_meter sw ~id:1 ~rate_pps:1000. ();
  Alcotest.(check bool) "meter stored" true (Hashtbl.mem sw.V.meters 1);
  Alcotest.(check bool) "datapath bucket configured" true
    (V.meter_stats sw ~id:1 = Some (0, 0))

let test_meter_enforces_rate () =
  let sw = V.create () in
  let machine = Ovs_sim.Cpu.create () in
  let ctx = Ovs_sim.Cpu.ctx machine "main" in
  let a = Netdev.create ~name:"m0" () and b = Netdev.create ~name:"m1" () in
  let pa = V.add_port sw a and pb = V.add_port sw b in
  (* 1000 pps with a 10-packet burst *)
  V.set_meter sw ~id:1 ~rate_pps:1000. ~burst:10. ();
  V.add_flow sw (Printf.sprintf "in_port=%d actions=meter:1,output:%d" pa pb);
  (* 100 packets arriving in the same instant: only the burst passes *)
  for _ = 1 to 100 do
    V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa
  done;
  check Alcotest.int "burst passed" 10 b.Netdev.stats.Netdev.tx_packets;
  (match V.meter_stats sw ~id:1 with
  | Some (passed, dropped) ->
      check Alcotest.int "meter passed" 10 passed;
      check Alcotest.int "meter dropped" 90 dropped
  | None -> Alcotest.fail "meter stats");
  (* one virtual second later the bucket has refilled *)
  V.set_time sw (Ovs_sim.Time.s 1.);
  for _ = 1 to 5 do
    V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa
  done;
  check Alcotest.int "refilled tokens admit more" 15 b.Netdev.stats.Netdev.tx_packets

let test_del_flows_and_revalidation () =
  let sw = V.create () in
  let machine = Ovs_sim.Cpu.create () in
  let ctx = Ovs_sim.Cpu.ctx machine "main" in
  let a = Netdev.create ~name:"d0" () and b = Netdev.create ~name:"d1" () in
  let pa = V.add_port sw a and pb = V.add_port sw b in
  V.add_flow sw (Printf.sprintf "priority=10,in_port=%d,udp actions=output:%d" pa pb);
  V.add_flow sw (Printf.sprintf "priority=10,in_port=%d,tcp actions=output:%d" pa pb);
  (* warm the megaflows *)
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.tcp ()) ~port_no:pa;
  check Alcotest.int "both flows forwarded" 2 b.Netdev.stats.Netdev.tx_packets;
  check Alcotest.int "two megaflows installed" 2 (List.length (V.dump_megaflows sw));
  (* delete only the UDP rule; the revalidator must evict its megaflow *)
  check Alcotest.int "one rule deleted" 1 (V.del_flows sw "udp");
  check Alcotest.int "one rule left" 1
    (List.length (V.dump_flows sw));
  (* UDP now drops (table miss), TCP keeps flowing *)
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.udp ()) ~port_no:pa;
  check Alcotest.int "udp no longer forwarded" 2 b.Netdev.stats.Netdev.tx_packets;
  V.inject sw ~machine_ctx:ctx (Ovs_packet.Build.tcp ()) ~port_no:pa;
  check Alcotest.int "tcp unaffected" 3 b.Netdev.stats.Netdev.tx_packets

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_dump_flows_readable () =
  let sw = V.create () in
  let a = Netdev.create ~name:"e0" () in
  let pa = V.add_port sw a in
  V.add_flow sw (Printf.sprintf "table=3,priority=7,in_port=%d actions=drop" pa);
  match V.dump_flows sw ~table:3 with
  | [ line ] ->
      Alcotest.(check bool) "table shown" true
        (String.length line > 8 && String.sub line 0 8 = "table=3,");
      Alcotest.(check bool) "priority shown" true (contains line "priority=7")
  | l -> Alcotest.failf "expected one line, got %d" (List.length l)

let test_reactive_controller_loop () =
  (* three hosts on a switch whose only policy is "punt to controller";
     the reactive L2 controller floods unknowns, learns sources, and pins
     known paths with FLOW_MODs so the datapath takes over *)
  let sw = V.create () in
  let machine = Ovs_sim.Cpu.create () in
  let ctx = Ovs_sim.Cpu.ctx machine "main" in
  let devs = List.init 3 (fun i -> Netdev.create ~name:(Printf.sprintf "h%d" i) ()) in
  let ports = List.map (V.add_port sw) devs in
  let ctrl = Ovs_ofproto.Controller.create ~ports in
  V.connect_controller sw ctrl;
  V.add_flow sw "priority=1 actions=controller";
  let dev i = List.nth devs i and port i = List.nth ports i in
  let tx i = (dev i).Netdev.stats.Netdev.tx_packets in
  let mac i = Ovs_packet.Mac.of_index (50 + i) in
  let pkt ~from ~to_ = Ovs_packet.Build.udp ~src_mac:(mac from) ~dst_mac:(mac to_) () in
  (* host0 -> host1: both unknown, so the controller floods to 1 and 2 *)
  V.inject sw ~machine_ctx:ctx (pkt ~from:0 ~to_:1) ~port_no:(port 0);
  check Alcotest.int "flooded to h1" 1 (tx 1);
  check Alcotest.int "flooded to h2" 1 (tx 2);
  check Alcotest.int "one packet_in" 1 ctrl.Ovs_ofproto.Controller.packet_ins;
  (* host1 -> host0: the controller knows host0 now, unicasts and installs
     a flow *)
  V.inject sw ~machine_ctx:ctx (pkt ~from:1 ~to_:0) ~port_no:(port 1);
  check Alcotest.int "unicast to h0" 1 (tx 0);
  check Alcotest.int "h2 not flooded again" 1 (tx 2);
  check Alcotest.int "flow pinned" 1 ctrl.Ovs_ofproto.Controller.flow_mods_sent;
  (* the pinned flow now serves the fast path: no more packet_ins *)
  V.inject sw ~machine_ctx:ctx (pkt ~from:1 ~to_:0) ~port_no:(port 1);
  check Alcotest.int "fast path, no controller" 2 ctrl.Ovs_ofproto.Controller.packet_ins;
  check Alcotest.int "still delivered" 2 (tx 0)

(* -- upgrade model -- *)

let test_upgrade_costs_ordering () =
  let km = U.upgrade U.Arch_kernel_module in
  let us = U.upgrade U.Arch_userspace in
  let eb = U.upgrade U.Arch_ebpf in
  Alcotest.(check bool) "kernel module needs reboot" true km.U.needs_reboot;
  Alcotest.(check bool) "userspace does not" false us.U.needs_reboot;
  Alcotest.(check bool) "kernel disrupts workloads" true km.U.workloads_disrupted;
  Alcotest.(check bool) "downtime ordering" true
    (eb.U.dataplane_downtime_s < us.U.dataplane_downtime_s
    && us.U.dataplane_downtime_s < km.U.dataplane_downtime_s);
  Alcotest.(check bool) "vendor revalidation only for modules" true
    (km.U.needs_vendor_revalidation && not us.U.needs_vendor_revalidation)

let test_fleet_disruption_scale () =
  let hours arch = U.annual_fleet_disruption_hours arch ~hosts:1000 ~fixes_per_year:6 in
  Alcotest.(check bool) "userspace orders of magnitude cheaper" true
    (hours U.Arch_kernel_module > 100. *. hours U.Arch_userspace)

let () =
  Alcotest.run "ovs_core"
    [
      ( "kernel_compat",
        [
          Alcotest.test_case "parse/compare" `Quick test_version_parse_compare;
          Alcotest.test_case "mode selection" `Quick test_mode_selection;
          Alcotest.test_case "mode implies opts" `Quick test_mode_implies_opts;
          Alcotest.test_case "need_wakeup" `Quick test_need_wakeup_version;
          Alcotest.test_case "attach models (Fig 6)" `Quick test_attach_models;
        ] );
      ( "vswitch",
        [
          Alcotest.test_case "rejects old kernel" `Quick
            test_vswitch_rejects_old_kernel_afxdp;
          Alcotest.test_case "forwards" `Quick test_vswitch_forwards;
          Alcotest.test_case "restart preserves rules" `Quick
            test_vswitch_restart_preserves_rules;
          Alcotest.test_case "crash outcomes (Sec 6)" `Quick
            test_crash_outcomes_by_architecture;
          Alcotest.test_case "meters" `Quick test_meters_configuration;
          Alcotest.test_case "meter enforces rate" `Quick test_meter_enforces_rate;
          Alcotest.test_case "del-flows + revalidation" `Quick
            test_del_flows_and_revalidation;
          Alcotest.test_case "dump-flows readable" `Quick test_dump_flows_readable;
          Alcotest.test_case "reactive controller loop" `Quick
            test_reactive_controller_loop;
        ] );
      ( "upgrade",
        [
          Alcotest.test_case "cost ordering" `Quick test_upgrade_costs_ordering;
          Alcotest.test_case "fleet disruption" `Quick test_fleet_disruption_scale;
        ] );
    ]
