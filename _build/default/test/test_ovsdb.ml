(* Tests for the OVSDB model: values, transactions, rollback, monitors,
   and the ovs-vsctl layer. *)

open Ovs_ovsdb

let check = Alcotest.check

let fresh () =
  Value.reset_uuids ();
  Db.create ()

(* -- values -- *)

let test_value_set_ops () =
  let s = Value.empty_set in
  let s = Value.set_add s (Value.Int 1) in
  let s = Value.set_add s (Value.Int 2) in
  let s = Value.set_add s (Value.Int 1) in
  check Alcotest.int "no duplicates" 2 (List.length (Value.set_members s));
  let s = Value.set_remove s (Value.Int 1) in
  check Alcotest.int "removed" 1 (List.length (Value.set_members s))

let test_value_map_ops () =
  let m = Value.Map [] in
  let m = Value.map_put m (Value.String "k") (Value.Int 1) in
  let m = Value.map_put m (Value.String "k") (Value.Int 2) in
  Alcotest.(check bool) "updated in place" true
    (Value.map_get m (Value.String "k") = Some (Value.Int 2))

let test_value_equality_set_order_insensitive () =
  Alcotest.(check bool) "sets compare unordered" true
    (Value.equal (Value.Set [ Value.Int 1; Value.Int 2 ])
       (Value.Set [ Value.Int 2; Value.Int 1 ]))

(* -- transactions -- *)

let test_insert_defaults_and_select () =
  let db = fresh () in
  (match
     Db.transact db
       [ Db.Insert { op_table = "Bridge"; values = [ ("name", Value.string "br0") ];
                     uuid_name = None } ]
   with
  | [ Db.Inserted _ ] -> ()
  | _ -> Alcotest.fail "insert");
  match Db.find_rows db ~table:"Bridge" ~where:[ Db.Eq ("name", Value.string "br0") ] with
  | [ (_, cols) ] ->
      (* unset columns get their schema defaults *)
      Alcotest.(check bool) "ports defaults to empty set" true
        (List.assoc_opt "ports" cols = Some Value.empty_set)
  | _ -> Alcotest.fail "select"

let test_insert_unknown_column_rejected () =
  let db = fresh () in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Db.transact db
            [ Db.Insert { op_table = "Bridge"; values = [ ("frobnicate", Value.int 1) ];
                          uuid_name = None } ]);
       false
     with Db.Txn_error _ -> true)

let test_update_and_mutate () =
  let db = fresh () in
  ignore
    (Db.transact db
       [ Db.Insert { op_table = "Interface"; values = [ ("name", Value.string "eth0") ];
                     uuid_name = None } ]);
  (match
     Db.transact db
       [ Db.Update { op_table = "Interface";
                     where = [ Db.Eq ("name", Value.string "eth0") ];
                     values = [ ("ofport", Value.int 7) ] } ]
   with
  | [ Db.Count 1 ] -> ()
  | _ -> Alcotest.fail "update count");
  match Db.find_rows db ~table:"Interface" ~where:[ Db.Eq ("ofport", Value.int 7) ] with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "updated row findable"

let test_atomic_rollback () =
  let db = fresh () in
  (* second op fails (mutate matches nothing): the insert must roll back *)
  (try
     ignore
       (Db.transact db
          [
            Db.Insert { op_table = "Bridge"; values = [ ("name", Value.string "br0") ];
                        uuid_name = None };
            Db.Mutate { op_table = "Port";
                        where = [ Db.Eq ("name", Value.string "nope") ];
                        col = "interfaces"; mutator = `Insert (Value.Int 1) };
          ])
   with Db.Txn_error _ -> ());
  check Alcotest.int "insert rolled back" 0 (Db.row_count db ~table:"Bridge")

let test_named_uuid_linking () =
  let db = fresh () in
  ignore
    (Db.transact db
       [
         Db.Insert { op_table = "Interface"; values = [ ("name", Value.string "e0") ];
                     uuid_name = Some "if0" };
         Db.Insert { op_table = "Port";
                     values = [ ("name", Value.string "e0");
                                ("interfaces", Value.Set [ Value.Uuid "@if0" ]) ];
                     uuid_name = None };
       ]);
  match Db.find_rows db ~table:"Port" ~where:[ Db.True ] with
  | [ (_, cols) ] -> begin
      match List.assoc_opt "interfaces" cols with
      | Some (Value.Set [ Value.Uuid u ]) ->
          Alcotest.(check bool) "resolved to a real uuid" false (u.[0] = '@')
      | _ -> Alcotest.fail "interfaces column"
    end
  | _ -> Alcotest.fail "port row"

let test_delete_where () =
  let db = fresh () in
  ignore
    (Db.transact db
       [ Db.Insert { op_table = "Port"; values = [ ("name", Value.string "a") ]; uuid_name = None };
         Db.Insert { op_table = "Port"; values = [ ("name", Value.string "b") ]; uuid_name = None } ]);
  (match
     Db.transact db
       [ Db.Delete { op_table = "Port"; where = [ Db.Eq ("name", Value.string "a") ] } ]
   with
  | [ Db.Count 1 ] -> ()
  | _ -> Alcotest.fail "delete count");
  check Alcotest.int "one left" 1 (Db.row_count db ~table:"Port")

let test_monitor_notifications () =
  let db = fresh () in
  let events = ref [] in
  let unreg = Db.monitor db ~table:"Bridge" ~callback:(fun c -> events := c :: !events) in
  ignore
    (Db.transact db
       [ Db.Insert { op_table = "Bridge"; values = [ ("name", Value.string "br0") ];
                     uuid_name = None } ]);
  check Alcotest.int "insert notified" 1 (List.length !events);
  (* failed transactions notify nothing *)
  (try
     ignore
       (Db.transact db
          [ Db.Insert { op_table = "Bridge"; values = [ ("name", Value.string "br1") ];
                        uuid_name = None };
            Db.Insert { op_table = "Bridge"; values = [ ("bogus", Value.int 0) ];
                        uuid_name = None } ])
   with Db.Txn_error _ -> ());
  check Alcotest.int "rollback suppressed notification" 1 (List.length !events);
  unreg ();
  ignore
    (Db.transact db
       [ Db.Insert { op_table = "Bridge"; values = [ ("name", Value.string "br2") ];
                     uuid_name = None } ]);
  check Alcotest.int "unregistered" 1 (List.length !events)

(* -- vsctl -- *)

let test_vsctl_bridge_and_ports () =
  let db = fresh () in
  ignore (Vsctl.add_br db "br-int");
  ignore (Vsctl.add_port db ~bridge:"br-int" ~iface_type:"afxdp" "eth0");
  ignore (Vsctl.add_port db ~bridge:"br-int" ~iface_type:"vhostuser" "vm1");
  check (Alcotest.list Alcotest.string) "list-br" [ "br-int" ] (Vsctl.list_br db);
  check (Alcotest.list Alcotest.string) "list-ports" [ "eth0"; "vm1" ]
    (Vsctl.list_ports db ~bridge:"br-int");
  Alcotest.(check bool) "interface type stored" true
    (Vsctl.interface_type db "vm1" = Some "vhostuser");
  Vsctl.del_port db ~bridge:"br-int" "eth0";
  check (Alcotest.list Alcotest.string) "after del-port" [ "vm1" ]
    (Vsctl.list_ports db ~bridge:"br-int")

let test_vsctl_duplicate_rejected () =
  let db = fresh () in
  ignore (Vsctl.add_br db "br0");
  Alcotest.(check bool) "duplicate bridge" true
    (try ignore (Vsctl.add_br db "br0"); false with Vsctl.Error _ -> true);
  ignore (Vsctl.add_port db ~bridge:"br0" "p0");
  Alcotest.(check bool) "duplicate port" true
    (try ignore (Vsctl.add_port db ~bridge:"br0" "p0"); false with Vsctl.Error _ -> true);
  Alcotest.(check bool) "unknown bridge" true
    (try ignore (Vsctl.add_port db ~bridge:"nope" "p1"); false with Vsctl.Error _ -> true)

let test_vsctl_ofport_roundtrip () =
  let db = fresh () in
  ignore (Vsctl.add_br db "br0");
  ignore (Vsctl.add_port db ~bridge:"br0" "p0");
  Vsctl.set_interface_ofport db "p0" 12;
  match Db.find_rows db ~table:"Interface" ~where:[ Db.Eq ("ofport", Value.int 12) ] with
  | [ (_, cols) ] ->
      Alcotest.(check bool) "right interface" true
        (List.assoc_opt "name" cols = Some (Value.string "p0"))
  | _ -> Alcotest.fail "ofport update"

let () =
  Alcotest.run "ovs_ovsdb"
    [
      ( "values",
        [
          Alcotest.test_case "set ops" `Quick test_value_set_ops;
          Alcotest.test_case "map ops" `Quick test_value_map_ops;
          Alcotest.test_case "set equality unordered" `Quick
            test_value_equality_set_order_insensitive;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "insert defaults + select" `Quick test_insert_defaults_and_select;
          Alcotest.test_case "unknown column rejected" `Quick
            test_insert_unknown_column_rejected;
          Alcotest.test_case "update and mutate" `Quick test_update_and_mutate;
          Alcotest.test_case "atomic rollback" `Quick test_atomic_rollback;
          Alcotest.test_case "named uuids" `Quick test_named_uuid_linking;
          Alcotest.test_case "delete where" `Quick test_delete_where;
          Alcotest.test_case "monitors" `Quick test_monitor_notifications;
        ] );
      ( "vsctl",
        [
          Alcotest.test_case "bridges and ports" `Quick test_vsctl_bridge_and_ports;
          Alcotest.test_case "duplicates rejected" `Quick test_vsctl_duplicate_rejected;
          Alcotest.test_case "ofport roundtrip" `Quick test_vsctl_ofport_roundtrip;
        ] );
    ]
