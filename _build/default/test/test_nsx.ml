(* Tests for the NSX model: rule-set generation (Table 3), the agent
   workflow, and the maintenance-burden model (Fig 1). *)

module Ruleset = Ovs_nsx.Ruleset
module Agent = Ovs_nsx.Agent
module Maintenance = Ovs_nsx.Maintenance

let check = Alcotest.check

(* a smaller spec keeps the unit tests fast; the exact Table 3 numbers are
   asserted once against the real spec below *)
let small_spec =
  {
    Ruleset.table3_spec with
    Ruleset.n_vms = 4;
    n_tunnels = 16;
    target_rules = 2_000;
  }

let install spec =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:40 () in
  let lines = Ruleset.generate spec in
  let n = Ovs_ofproto.Parser.install_flows pipeline lines in
  (pipeline, lines, n)

let test_generator_hits_target_count () =
  let _, lines, n = install small_spec in
  check Alcotest.int "every generated line parses" (List.length lines) n;
  check Alcotest.int "exact rule budget" small_spec.Ruleset.target_rules n

let test_generator_deterministic () =
  let _, a, _ = install small_spec in
  let _, b, _ = install small_spec in
  Alcotest.(check bool) "same spec, same rules" true (a = b)

let test_table3_exact_shape () =
  let agent = Agent.create () in
  let stats = Agent.install_policy agent in
  check Alcotest.int "tunnels" 291 stats.Ruleset.tunnels;
  check Alcotest.int "VMs" 15 stats.Ruleset.vms;
  check Alcotest.int "rules" 103_302 stats.Ruleset.rules;
  check Alcotest.int "tables" 40 stats.Ruleset.tables_used;
  check Alcotest.int "fields" 31 stats.Ruleset.fields_used

let test_agent_status () =
  let agent = Agent.create ~spec:small_spec () in
  ignore (Agent.install_policy agent);
  Agent.add_port agent ~name:"vif1" ~port_no:1 ();
  let st = Agent.status agent in
  check Alcotest.int "bridges" 2 st.Agent.bridges;
  check Alcotest.int "ports" 1 st.Agent.ports;
  Alcotest.(check bool) "vswitchd reconfigured on OVSDB changes" true
    (st.Agent.reconfigurations > 0);
  Alcotest.(check bool) "rules installed" true (st.Agent.rules > small_spec.Ruleset.target_rules)

let test_pipeline_classifies_tunnel_traffic () =
  let pipeline, _, _ = install small_spec in
  (* a Geneve frame on the uplink must hit the tnl_pop rule *)
  let inner = Ovs_packet.Build.udp () in
  Ovs_packet.Tunnel.encap inner Ovs_packet.Tunnel.Geneve ~vni:3
    ~src_mac:(Ovs_packet.Mac.of_index 91) ~dst_mac:(Ovs_packet.Mac.of_index 92)
    ~src_ip:(Ovs_packet.Ipv4.addr_of_string "192.168.0.2")
    ~dst_ip:(Ovs_packet.Ipv4.addr_of_string "192.168.0.1") ();
  inner.Ovs_packet.Buffer.in_port <- small_spec.Ruleset.uplink_port;
  let key = Ovs_packet.Flow_key.extract inner in
  let r = Ovs_ofproto.Pipeline.translate pipeline key in
  match r.Ovs_ofproto.Pipeline.odp_actions with
  | [ Ovs_ofproto.Action.Odp_tnl_pop 4 ] -> ()
  | acts -> Alcotest.failf "expected tnl_pop, got %d actions" (List.length acts)

let test_pipeline_spoofguard () =
  let pipeline, _, _ = install small_spec in
  (* traffic from a VIF with the wrong source MAC must drop in table 2 *)
  let pkt =
    Ovs_packet.Build.udp ~src_mac:(Ovs_packet.Mac.of_index 999)
      ~src_ip:(Ovs_packet.Ipv4.addr_of_string "1.2.3.4") ()
  in
  pkt.Ovs_packet.Buffer.in_port <- small_spec.Ruleset.first_vif_port;
  let r = Ovs_ofproto.Pipeline.translate pipeline (Ovs_packet.Flow_key.extract pkt) in
  let has_output =
    List.exists
      (function Ovs_ofproto.Action.Odp_output _ -> true | _ -> false)
      r.Ovs_ofproto.Pipeline.odp_actions
  in
  Alcotest.(check bool) "spoofed source cannot leave" false has_output

let test_pipeline_legit_vif_reaches_ct () =
  let pipeline, _, _ = install small_spec in
  let i = 0 in
  let pkt =
    Ovs_packet.Build.udp
      ~src_mac:(Ovs_packet.Mac.of_index 100)
      ~src_ip:(Ovs_packet.Ipv4.addr_of_string (Ruleset.vif_ip i))
      ()
  in
  pkt.Ovs_packet.Buffer.in_port <- Ruleset.vif_port small_spec i;
  let r = Ovs_ofproto.Pipeline.translate pipeline (Ovs_packet.Flow_key.extract pkt) in
  let has_ct =
    List.exists
      (function Ovs_ofproto.Action.Odp_ct _ -> true | _ -> false)
      r.Ovs_ofproto.Pipeline.odp_actions
  in
  Alcotest.(check bool) "legit traffic reaches conntrack" true has_ct

let test_wire_install_equals_direct () =
  (* the same policy installed through FLOW_MOD bytes must behave exactly
     like the directly-installed one *)
  let direct = Agent.create ~spec:small_spec () in
  ignore (Agent.install_policy direct);
  let wired = Agent.create ~spec:small_spec () in
  let n, bytes = Agent.install_policy_via_wire wired in
  check Alcotest.int "every rule crossed the wire" small_spec.Ruleset.target_rules n;
  Alcotest.(check bool) "real bytes moved" true (bytes > 50 * n);
  check Alcotest.int "same rule count"
    (Ovs_ofproto.Pipeline.flow_count direct.Agent.integration.Agent.pipeline)
    (Ovs_ofproto.Pipeline.flow_count wired.Agent.integration.Agent.pipeline);
  (* same packet, same translation through both pipelines *)
  let pkt =
    Ovs_packet.Build.tcp
      ~src_mac:(Ruleset.vif_mac 0)
      ~src_ip:(Ovs_packet.Ipv4.addr_of_string (Ruleset.vif_ip 0))
      ~dst_port:443 ()
  in
  pkt.Ovs_packet.Buffer.in_port <- Ruleset.vif_port small_spec 0;
  let k = Ovs_packet.Flow_key.extract pkt in
  let a = Ovs_ofproto.Pipeline.translate direct.Agent.integration.Agent.pipeline k in
  let b = Ovs_ofproto.Pipeline.translate wired.Agent.integration.Agent.pipeline k in
  Alcotest.(check bool) "identical datapath actions" true
    (a.Ovs_ofproto.Pipeline.odp_actions = b.Ovs_ofproto.Pipeline.odp_actions)

let test_maintenance_backports_grow () =
  let years = Maintenance.figure1 in
  let backports = List.map (fun e -> e.Maintenance.backports_loc) years in
  let rec increasing = function
    | a :: b :: rest -> a < b && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "backports grow every year" true (increasing backports);
  (* by the end, backports dwarf new features *)
  let last = List.nth years (List.length years - 1) in
  Alcotest.(check bool) "backports dominate" true
    (last.Maintenance.backports_loc > 3 * last.Maintenance.new_features_loc)

let test_maintenance_model_tracks_growth () =
  let predicted = Maintenance.predicted () in
  List.iter2
    (fun e (_, _, model) ->
      let actual = float_of_int e.Maintenance.backports_loc in
      let m = float_of_int model in
      if m < actual /. 2.5 || m > actual *. 2.5 then
        Alcotest.failf "model %d far from %d in %d" model e.Maintenance.backports_loc
          e.Maintenance.year)
    Maintenance.figure1 predicted

let test_case_studies_amplification () =
  Alcotest.(check bool) "ERSPAN: 50 lines became 5000" true
    (Maintenance.erspan.Maintenance.backport_loc
     >= 50 * Maintenance.erspan.Maintenance.upstream_loc);
  Alcotest.(check bool) "conncount needed more commits than upstream work" true
    (Maintenance.conncount.Maintenance.followup_commits > 0)

let () =
  Alcotest.run "ovs_nsx"
    [
      ( "ruleset",
        [
          Alcotest.test_case "target count and parse" `Quick test_generator_hits_target_count;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "table 3 exact shape" `Slow test_table3_exact_shape;
        ] );
      ( "agent",
        [
          Alcotest.test_case "status" `Quick test_agent_status;
          Alcotest.test_case "classifies tunnel traffic" `Quick
            test_pipeline_classifies_tunnel_traffic;
          Alcotest.test_case "spoof guard drops" `Quick test_pipeline_spoofguard;
          Alcotest.test_case "legit VIF reaches conntrack" `Quick
            test_pipeline_legit_vif_reaches_ct;
          Alcotest.test_case "wire install equals direct" `Quick
            test_wire_install_equals_direct;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "backports grow" `Quick test_maintenance_backports_grow;
          Alcotest.test_case "burden model tracks data" `Quick
            test_maintenance_model_tracks_growth;
          Alcotest.test_case "case studies" `Quick test_case_studies_amplification;
        ] );
    ]
