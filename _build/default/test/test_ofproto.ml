(* Tests for the OpenFlow layer: matches, priority classifier, textual
   parser, multi-table translation with megaflow mask accumulation. *)

open Ovs_ofproto
module FK = Ovs_packet.Flow_key
module B = Ovs_packet.Build

let check = Alcotest.check

let key ?(src_port = 1234) ?(dst_port = 80) ?(in_port = 1) () =
  let pkt =
    B.tcp ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.1.2.3")
      ~dst_ip:(Ovs_packet.Ipv4.addr_of_string "10.9.8.7") ~src_port ~dst_port ()
  in
  pkt.Ovs_packet.Buffer.in_port <- in_port;
  FK.extract pkt

(* -- Match -- *)

let test_match_exact_field () =
  let m = Match_.with_field (Match_.catchall ()) FK.Field.Tp_dst 80 in
  Alcotest.(check bool) "hits" true (Match_.matches m (key ~dst_port:80 ()));
  Alcotest.(check bool) "misses" false (Match_.matches m (key ~dst_port:81 ()))

let test_match_catchall () =
  Alcotest.(check bool) "catchall matches anything" true
    (Match_.matches (Match_.catchall ()) (key ()))

let test_match_cidr_prefix () =
  let m =
    Match_.with_prefix (Match_.catchall ()) FK.Field.Nw_src
      (Ovs_packet.Ipv4.addr_of_string "10.1.0.0") 16
  in
  Alcotest.(check bool) "inside /16" true (Match_.matches m (key ()));
  let other = key () in
  FK.set other FK.Field.Nw_src (Ovs_packet.Ipv4.addr_of_string "10.2.0.1");
  Alcotest.(check bool) "outside /16" false (Match_.matches m other)

let test_match_fields_used () =
  let m =
    Match_.with_field
      (Match_.with_field (Match_.catchall ()) FK.Field.In_port 1)
      FK.Field.Tp_dst 80
  in
  check Alcotest.int "two fields" 2 (Match_.fields_used m)

(* -- Table: priority resolution -- *)

let test_table_priority_wins () =
  let tbl = Table.create () in
  Table.add tbl ~priority:10 (Match_.catchall ()) "low";
  Table.add tbl ~priority:100
    (Match_.with_field (Match_.catchall ()) FK.Field.Tp_dst 80)
    "high";
  (match Table.lookup tbl (key ~dst_port:80 ()) with
  | Some r, _ -> check Alcotest.string "high wins" "high" r.Table.value
  | None, _ -> Alcotest.fail "no match");
  match Table.lookup tbl (key ~dst_port:22 ()) with
  | Some r, _ -> check Alcotest.string "fallback" "low" r.Table.value
  | None, _ -> Alcotest.fail "no fallback"

let test_table_priority_across_subtables () =
  let tbl = Table.create () in
  (* same priority semantics even when rules live in different subtables *)
  Table.add tbl ~priority:50
    (Match_.with_field (Match_.catchall ()) FK.Field.In_port 1)
    "by-port";
  Table.add tbl ~priority:60
    (Match_.with_field (Match_.catchall ()) FK.Field.Tp_dst 80)
    "by-dport";
  match Table.lookup tbl (key ~in_port:1 ~dst_port:80 ()) with
  | Some r, masks ->
      check Alcotest.string "higher priority subtable" "by-dport" r.Table.value;
      Alcotest.(check bool) "at least one mask probed" true (List.length masks >= 1)
  | None, _ -> Alcotest.fail "no match"

let test_table_remove_where () =
  let tbl = Table.create () in
  Table.add tbl ~cookie:7 ~priority:1 (Match_.catchall ()) "a";
  Table.add tbl ~cookie:8 ~priority:2 (Match_.catchall ()) "b";
  let removed = Table.remove_where tbl (fun r -> r.Table.cookie = 7) in
  check Alcotest.int "one removed" 1 removed;
  check Alcotest.int "one left" 1 (Table.rule_count tbl)

let test_table_miss () =
  let tbl = Table.create () in
  Table.add tbl ~priority:5
    (Match_.with_field (Match_.catchall ()) FK.Field.In_port 99)
    "x";
  match Table.lookup tbl (key ~in_port:1 ()) with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "unexpected match"

(* Property: the tuple-space table agrees with a brute-force linear scan
   on which priority wins (ties may resolve to either rule, as in OVS
   where equal-priority overlaps are unspecified). *)
let prop_table_vs_linear_oracle =
  QCheck.Test.make ~count:80 ~name:"table lookup matches linear oracle"
    QCheck.small_int
    (fun seed ->
      let prng = Ovs_sim.Prng.of_int (seed + 17) in
      let tbl = Table.create () in
      let fields =
        [| FK.Field.In_port; FK.Field.Tp_dst; FK.Field.Nw_proto; FK.Field.Nw_src |]
      in
      let rules = ref [] in
      for i = 0 to 19 do
        let m = Match_.catchall () in
        Array.iter
          (fun f ->
            if Ovs_sim.Prng.int prng 2 = 0 then
              ignore (Match_.with_field m f (Ovs_sim.Prng.int prng 4)))
          fields;
        let priority = 1 + Ovs_sim.Prng.int prng 50 in
        Table.add tbl ~priority m i;
        rules := (priority, m, i) :: !rules
      done;
      let ok = ref true in
      for _ = 1 to 60 do
        let k = FK.create () in
        Array.iter (fun f -> FK.set k f (Ovs_sim.Prng.int prng 4)) fields;
        let best_priority =
          List.fold_left
            (fun best (p, m, _) -> if Match_.matches m k then Int.max best p else best)
            min_int !rules
        in
        match Table.lookup tbl k with
        | Some r, _ -> if r.Table.priority <> best_priority then ok := false
        | None, _ -> if best_priority <> min_int then ok := false
      done;
      !ok)

(* -- Parser -- *)

let test_parser_basic_flow () =
  let f =
    Parser.parse_flow
      "table=2, priority=100, in_port=3, tcp, nw_src=10.0.0.0/8, tp_dst=443, \
       actions=output:7"
  in
  check Alcotest.int "table" 2 f.Parser.table;
  check Alcotest.int "priority" 100 f.Parser.priority;
  Alcotest.(check bool) "match works" true
    (let k = key ~in_port:3 ~dst_port:443 () in
     Match_.matches f.Parser.match_ k);
  match f.Parser.actions with
  | [ Action.Output 7 ] -> ()
  | _ -> Alcotest.fail "actions"

let test_parser_protocol_shorthands () =
  let f = Parser.parse_flow "udp actions=drop" in
  check Alcotest.int "dl_type set" Ovs_packet.Ethernet.Ethertype.ipv4
    (FK.get f.Parser.match_.Match_.key FK.Field.Dl_type);
  check Alcotest.int "proto udp" Ovs_packet.Ipv4.Proto.udp
    (FK.get f.Parser.match_.Match_.key FK.Field.Nw_proto)

let test_parser_ct_state () =
  let f = Parser.parse_flow "ct_state=+trk+est-new actions=drop" in
  let v = FK.get f.Parser.match_.Match_.key FK.Field.Ct_state in
  let m = FK.get f.Parser.match_.Match_.mask FK.Field.Ct_state in
  Alcotest.(check bool) "trk in value" true (v land FK.Ct_state_bits.trk <> 0);
  Alcotest.(check bool) "est in value" true (v land FK.Ct_state_bits.est <> 0);
  Alcotest.(check bool) "new not in value" true (v land FK.Ct_state_bits.new_ = 0);
  Alcotest.(check bool) "new in mask" true (m land FK.Ct_state_bits.new_ <> 0)

let test_parser_ct_action () =
  let f = Parser.parse_flow "tcp actions=ct(commit,zone=5,table=3),output:1" in
  match f.Parser.actions with
  | [ Action.Ct { zone = 5; commit = true; table = Some 3; nat = None }; Action.Output 1 ] -> ()
  | _ -> Alcotest.fail "ct action parse"

let test_parser_ct_nat () =
  let f = Parser.parse_flow "tcp actions=ct(commit,zone=2,nat(src=1.2.3.4:99))" in
  match f.Parser.actions with
  | [ Action.Ct { nat = Some { Action.snat = Some (ip, 99); dnat = None }; _ } ] ->
      check Alcotest.int "nat ip" (Ovs_packet.Ipv4.addr_of_string "1.2.3.4") ip
  | _ -> Alcotest.fail "nat parse"

let test_parser_set_field () =
  let f = Parser.parse_flow "ip actions=set_field:aa:bb:cc:dd:ee:ff->dl_dst,normal" in
  match f.Parser.actions with
  | [ Action.Set_field (FK.Field.Dl_dst, v); Action.Normal ] ->
      check Alcotest.string "mac value" "aa:bb:cc:dd:ee:ff" (Ovs_packet.Mac.to_string v)
  | _ -> Alcotest.fail "set_field parse"

let test_parser_tunnel_push () =
  let f =
    Parser.parse_flow
      "ip actions=geneve_push(vni=77,remote=9.9.9.9,local=8.8.8.8,remote_mac=02:00:00:00:00:01,local_mac=02:00:00:00:00:02,out=4)"
  in
  match f.Parser.actions with
  | [ Action.Tunnel_push ts ] ->
      check Alcotest.int "vni" 77 ts.Action.vni;
      check Alcotest.int "remote" (Ovs_packet.Ipv4.addr_of_string "9.9.9.9") ts.Action.remote_ip;
      check Alcotest.int "out port" 4 ts.Action.out_port;
      Alcotest.(check bool) "geneve" true (ts.Action.tnl_kind = Ovs_packet.Tunnel.Geneve)
  | _ -> Alcotest.fail "tunnel_push parse"

let test_parser_misc_actions () =
  let f =
    Parser.parse_flow
      "ip actions=push_vlan:7,pop_vlan,goto_table:9,meter:2,controller,flood,tnl_pop:5"
  in
  match f.Parser.actions with
  | [ Action.Push_vlan 7; Action.Pop_vlan; Action.Goto_table 9; Action.Meter 2;
      Action.Controller; Action.Flood; Action.Tunnel_pop 5 ] -> ()
  | _ -> Alcotest.fail "misc actions"

let test_parser_reg_fields () =
  let f = Parser.parse_flow "reg3=9 actions=set_field:4->reg5,drop" in
  check Alcotest.int "reg3 match" 9 (FK.get f.Parser.match_.Match_.key FK.Field.Reg3);
  match f.Parser.actions with
  | [ Action.Set_field (FK.Field.Reg5, 4); Action.Drop ] -> ()
  | _ -> Alcotest.fail "reg set_field"

let test_parser_rejects_garbage () =
  Alcotest.(check bool) "bad field" true
    (try ignore (Parser.parse_flow "frobnicate=3 actions=drop"); false
     with Parser.Parse_error _ -> true);
  Alcotest.(check bool) "bad action" true
    (try ignore (Parser.parse_flow "ip actions=explode"); false
     with Parser.Parse_error _ -> true);
  Alcotest.(check bool) "missing actions" true
    (try ignore (Parser.parse_flow "ip,tp_dst=80"); false
     with Parser.Parse_error _ -> true)

(* -- Pipeline translation -- *)

let test_pipeline_goto_chain () =
  let p = Pipeline.create ~n_tables:4 () in
  ignore
    (Parser.install_flows p
       [
         "table=0,priority=10,in_port=1 actions=goto_table:1";
         "table=1,priority=10,tcp actions=output:5";
       ]);
  let r = Pipeline.translate p (key ~in_port:1 ()) in
  (match r.Pipeline.odp_actions with
  | [ Action.Odp_output 5 ] -> ()
  | _ -> Alcotest.fail "goto chain");
  check Alcotest.int "two tables visited" 2 r.Pipeline.tables_visited

let test_pipeline_miss_drops () =
  let p = Pipeline.create ~n_tables:2 () in
  let r = Pipeline.translate p (key ()) in
  check Alcotest.int "no actions on miss" 0 (List.length r.Pipeline.odp_actions)

let test_pipeline_megaflow_mask_accumulates () =
  let p = Pipeline.create ~n_tables:4 () in
  ignore
    (Parser.install_flows p
       [
         "table=0,priority=10,in_port=1 actions=goto_table:1";
         "table=1,priority=10,tp_dst=80 actions=output:2";
       ]);
  let r = Pipeline.translate p (key ~in_port:1 ~dst_port:80 ()) in
  let m = r.Pipeline.megaflow_mask in
  Alcotest.(check bool) "in_port unwildcarded" true (FK.get m FK.Field.In_port <> 0);
  Alcotest.(check bool) "tp_dst unwildcarded" true (FK.get m FK.Field.Tp_dst <> 0);
  (* a field no table looked at stays wildcarded: megaflows stay wide *)
  Alcotest.(check bool) "tp_src wildcarded" true (FK.get m FK.Field.Tp_src = 0)

let test_pipeline_set_field_affects_later_match () =
  let p = Pipeline.create ~n_tables:4 () in
  ignore
    (Parser.install_flows p
       [
         "table=0,priority=10 actions=set_field:7->reg0,goto_table:1";
         "table=1,priority=10,reg0=7 actions=output:3";
         "table=1,priority=5 actions=drop";
       ]);
  let r = Pipeline.translate p (key ()) in
  match List.rev r.Pipeline.odp_actions with
  | Action.Odp_output 3 :: _ -> ()
  | _ -> Alcotest.fail "register set before later table match"

let test_pipeline_ct_is_terminal_with_recirc () =
  let p = Pipeline.create ~n_tables:6 () in
  ignore
    (Parser.install_flows p
       [
         "table=0,priority=10,ip actions=ct(zone=4,table=2),output:9";
         "table=2,priority=10 actions=output:1";
       ]);
  let r = Pipeline.translate p (key ()) in
  (* translation stops at ct-with-table; output:9 is unreachable until the
     packet recirculates *)
  match r.Pipeline.odp_actions with
  | [ Action.Odp_ct { zone = 4; resume_table = 2; _ } ] -> ()
  | acts ->
      Alcotest.failf "expected lone ct, got %d actions" (List.length acts)

let test_pipeline_ct_without_table_continues () =
  let p = Pipeline.create ~n_tables:2 () in
  ignore
    (Parser.install_flows p [ "table=0,priority=10,ip actions=ct(commit,zone=4),output:9" ]);
  let r = Pipeline.translate p (key ()) in
  match r.Pipeline.odp_actions with
  | [ Action.Odp_ct { resume_table = -1; _ }; Action.Odp_output 9 ] -> ()
  | _ -> Alcotest.fail "ct-without-table should continue"

let test_pipeline_normal_learning () =
  let p = Pipeline.create ~n_tables:1 () in
  Pipeline.set_ports p [ 1; 2; 3 ];
  ignore (Parser.install_flows p [ "table=0,priority=1 actions=normal" ]);
  (* first packet from A on port 1: unknown dst, floods to 2 and 3 *)
  let ka = key ~in_port:1 () in
  let r1 = Pipeline.translate p ka in
  check Alcotest.int "flooded" 2 (List.length r1.Pipeline.odp_actions);
  (* a packet from B on port 2 towards A: A's MAC was learned on port 1 *)
  let kb = FK.create () in
  FK.set kb FK.Field.In_port 2;
  FK.set kb FK.Field.Dl_src (FK.get ka FK.Field.Dl_dst);
  FK.set kb FK.Field.Dl_dst (FK.get ka FK.Field.Dl_src);
  FK.set kb FK.Field.Dl_type Ovs_packet.Ethernet.Ethertype.ipv4;
  let r2 = Pipeline.translate p kb in
  (match r2.Pipeline.odp_actions with
  | [ Action.Odp_output 1 ] -> ()
  | _ -> Alcotest.fail "should be unicast to the learned port");
  (* NORMAL unwildcards the MACs in the megaflow *)
  Alcotest.(check bool) "dl_dst unwildcarded" true
    (FK.get r2.Pipeline.megaflow_mask FK.Field.Dl_dst <> 0)

let test_pipeline_no_backward_goto () =
  let p = Pipeline.create ~n_tables:4 () in
  ignore
    (Parser.install_flows p
       [ "table=2,priority=1 actions=goto_table:1"; "table=1,priority=1 actions=output:1" ]);
  let k = key () in
  FK.set k FK.Field.Recirc_id 2;  (* start at table 2 *)
  let r = Pipeline.translate p k in
  (* backward goto must drop, not loop *)
  match r.Pipeline.odp_actions with
  | [ Action.Odp_drop ] -> ()
  | _ -> Alcotest.fail "backward goto should drop"

let test_pipeline_tunnel_pop_terminal () =
  let p = Pipeline.create ~n_tables:4 () in
  ignore (Parser.install_flows p [ "table=0,priority=1,udp,tp_dst=6081 actions=tnl_pop:2" ]);
  let pkt = B.udp ~dst_port:6081 () in
  pkt.Ovs_packet.Buffer.in_port <- 0;
  let r = Pipeline.translate p (FK.extract pkt) in
  match r.Pipeline.odp_actions with
  | [ Action.Odp_tnl_pop 2 ] -> ()
  | _ -> Alcotest.fail "tnl_pop emission"

let test_pipeline_flow_count_and_tables () =
  let p = Pipeline.create ~n_tables:8 () in
  ignore
    (Parser.install_flows p
       [
         "table=0,priority=1 actions=drop"; "table=3,priority=1 actions=drop";
         "# a comment"; "";
       ]);
  check Alcotest.int "flows" 2 (Pipeline.flow_count p);
  check Alcotest.int "tables used" 2 (Pipeline.tables_used p)

(* -- OpenFlow wire codec -- *)

let roundtrip ?(xid = 42) m =
  let b = Ofp_codec.encode ~xid m in
  let m', xid', consumed = Ofp_codec.decode b in
  check Alcotest.int "whole message consumed" (Bytes.length b) consumed;
  check Alcotest.int "xid preserved" xid xid';
  m'

let test_ofp_hello_echo () =
  (match roundtrip Ofp_codec.Hello with
  | Ofp_codec.Hello -> ()
  | _ -> Alcotest.fail "hello");
  match roundtrip (Ofp_codec.Echo_request (Bytes.of_string "ping")) with
  | Ofp_codec.Echo_request p -> check Alcotest.bytes "payload" (Bytes.of_string "ping") p
  | _ -> Alcotest.fail "echo"

let test_ofp_features () =
  match roundtrip (Ofp_codec.Features_reply { datapath_id = 0xABCDL; n_tables = 40 }) with
  | Ofp_codec.Features_reply { datapath_id = 0xABCDL; n_tables = 40 } -> ()
  | _ -> Alcotest.fail "features roundtrip"

let sample_match () =
  Match_.catchall ()
  |> (fun m -> Match_.with_field m FK.Field.In_port 3)
  |> (fun m -> Match_.with_field m FK.Field.Dl_type 0x0800)
  |> (fun m -> Match_.with_field m FK.Field.Nw_proto 6)
  |> (fun m -> Match_.with_prefix m FK.Field.Nw_src (Ovs_packet.Ipv4.addr_of_string "10.0.0.0") 8)
  |> (fun m -> Match_.with_field m FK.Field.Tp_dst 443)
  |> (fun m -> Match_.with_field m FK.Field.Ct_zone 7)
  |> fun m -> Match_.with_field m FK.Field.Reg3 99

let match_equal a b =
  FK.equal a.Match_.key b.Match_.key && FK.equal a.Match_.mask b.Match_.mask

let test_ofp_flow_mod_roundtrip () =
  let actions =
    [ Action.Set_field (FK.Field.Reg0, 5); Action.Output 9; Action.Meter 2;
      Action.Goto_table 7 ]
  in
  let fm =
    Ofp_codec.Flow_mod
      { command = `Add; table_id = 4; priority = 1234; cookie = 77;
        match_ = sample_match (); actions }
  in
  match roundtrip fm with
  | Ofp_codec.Flow_mod { command = `Add; table_id = 4; priority = 1234; cookie = 77;
                         match_; actions = actions' } ->
      Alcotest.(check bool) "match" true (match_equal (sample_match ()) match_);
      (* meter and goto are reconstructed around the apply-actions *)
      Alcotest.(check bool) "actions equivalent" true
        (List.sort compare actions = List.sort compare actions')
  | _ -> Alcotest.fail "flow_mod roundtrip"

let test_ofp_ct_and_tunnel_actions () =
  let ts =
    { Action.tnl_kind = Ovs_packet.Tunnel.Geneve; vni = 71; remote_ip = 99;
      local_ip = 98; remote_mac = Ovs_packet.Mac.of_index 1;
      local_mac = Ovs_packet.Mac.of_index 2; out_port = 3 }
  in
  let actions =
    [ Action.Ct { zone = 9; commit = true;
                  nat = Some { Action.snat = Some (0x01020304, 99); dnat = None };
                  table = Some 5 };
      Action.Tunnel_push ts; Action.Tunnel_pop 2; Action.Normal ]
  in
  let fm =
    Ofp_codec.Flow_mod
      { command = `Add; table_id = 0; priority = 1; cookie = 0;
        match_ = Match_.catchall (); actions }
  in
  match roundtrip fm with
  | Ofp_codec.Flow_mod { actions = actions'; _ } ->
      Alcotest.(check bool) "nicira extension actions survive" true (actions = actions')
  | _ -> Alcotest.fail "roundtrip"

let test_ofp_packet_in_out () =
  let data = Ovs_packet.Buffer.contents (B.udp ()) in
  (match
     roundtrip
       (Ofp_codec.Packet_in { total_len = 64; reason = 1; table_id = 3; in_port = 7; data })
   with
  | Ofp_codec.Packet_in { in_port = 7; table_id = 3; data = d; _ } ->
      check Alcotest.bytes "payload" data d
  | _ -> Alcotest.fail "packet_in");
  match
    roundtrip (Ofp_codec.Packet_out { in_port = 2; actions = [ Action.Output 5 ]; data })
  with
  | Ofp_codec.Packet_out { in_port = 2; actions = [ Action.Output 5 ]; data = d } ->
      check Alcotest.bytes "payload" data d
  | _ -> Alcotest.fail "packet_out"

let test_ofp_rejects_garbage () =
  Alcotest.(check bool) "short buffer" true
    (try ignore (Ofp_codec.decode (Bytes.make 4 'x')); false
     with Ofp_codec.Decode_error _ -> true);
  let b = Ofp_codec.encode Ofp_codec.Hello in
  Bytes.set_uint8 b 0 0x01;  (* wrong version *)
  Alcotest.(check bool) "wrong version" true
    (try ignore (Ofp_codec.decode b); false with Ofp_codec.Decode_error _ -> true)

let prop_ofp_match_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random matches survive the wire"
    QCheck.(small_int)
    (fun seed ->
      let prng = Ovs_sim.Prng.of_int (seed + 11) in
      let m = Match_.catchall () in
      Array.iter
        (fun f ->
          if Ovs_sim.Prng.int prng 3 = 0 then
            ignore
              (Match_.with_field m f
                 (Ovs_sim.Prng.int prng (Int.min 65_535 (FK.Field.full_mask f) + 1))))
        FK.Field.all;
      (* tp ports only make sense with a protocol on the wire *)
      let fm =
        Ofp_codec.Flow_mod
          { command = `Add; table_id = 0; priority = 1; cookie = 0; match_ = m;
            actions = [] }
      in
      match Ofp_codec.decode (Ofp_codec.encode fm) with
      | Ofp_codec.Flow_mod { match_ = m'; _ }, _, _ -> match_equal m m'
      | _ -> false)

let test_ofconn_session () =
  let p = Pipeline.create ~n_tables:8 () in
  let conn = Ofconn.create ~pipeline:p () in
  (* hello *)
  let reply = Ofconn.feed conn (Ofp_codec.encode ~xid:1 Ofp_codec.Hello) in
  (match Ofp_codec.decode reply with
  | Ofp_codec.Hello, 1, _ -> ()
  | _ -> Alcotest.fail "hello reply");
  Alcotest.(check bool) "handshaken" true conn.Ofconn.hello_received;
  (* install a rule over the wire, then check the pipeline behaves *)
  let m = Match_.with_field (Match_.catchall ()) FK.Field.In_port 1 in
  let fm =
    Ofp_codec.Flow_mod
      { command = `Add; table_id = 0; priority = 5; cookie = 0; match_ = m;
        actions = [ Action.Output 2 ] }
  in
  ignore (Ofconn.feed conn (Ofp_codec.encode ~xid:2 fm));
  check Alcotest.int "rule installed" 1 (Pipeline.flow_count p);
  let r = Pipeline.translate p (key ~in_port:1 ()) in
  (match r.Pipeline.odp_actions with
  | [ Action.Odp_output 2 ] -> ()
  | _ -> Alcotest.fail "wire-installed rule translates");
  (* flow stats over the wire *)
  let reply =
    Ofconn.feed conn (Ofp_codec.encode ~xid:3 (Ofp_codec.Flow_stats_request { table_id = 0 }))
  in
  (match Ofp_codec.decode reply with
  | Ofp_codec.Flow_stats_reply [ (0, 5, hits) ], 3, _ ->
      check Alcotest.int "one translation counted" 1 hits
  | _ -> Alcotest.fail "flow stats");
  (* delete over the wire *)
  let del =
    Ofp_codec.Flow_mod
      { command = `Delete; table_id = 0; priority = 0; cookie = 0; match_ = m;
        actions = [] }
  in
  ignore (Ofconn.feed conn (Ofp_codec.encode ~xid:4 del));
  check Alcotest.int "rule deleted" 0 (Pipeline.flow_count p);
  (* garbage produces an error message, not a crash *)
  let err = Ofconn.feed conn (Bytes.make 12 '\xFF') in
  match Ofp_codec.decode err with
  | Ofp_codec.Error _, _, _ -> ()
  | _ -> Alcotest.fail "error reply expected"

let () =
  Alcotest.run "ovs_ofproto"
    [
      ( "match",
        [
          Alcotest.test_case "exact field" `Quick test_match_exact_field;
          Alcotest.test_case "catchall" `Quick test_match_catchall;
          Alcotest.test_case "cidr prefix" `Quick test_match_cidr_prefix;
          Alcotest.test_case "fields used" `Quick test_match_fields_used;
        ] );
      ( "table",
        [
          Alcotest.test_case "priority wins" `Quick test_table_priority_wins;
          Alcotest.test_case "priority across subtables" `Quick
            test_table_priority_across_subtables;
          Alcotest.test_case "remove where" `Quick test_table_remove_where;
          Alcotest.test_case "miss" `Quick test_table_miss;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_table_vs_linear_oracle ] );
      ( "parser",
        [
          Alcotest.test_case "basic flow" `Quick test_parser_basic_flow;
          Alcotest.test_case "protocol shorthands" `Quick test_parser_protocol_shorthands;
          Alcotest.test_case "ct_state" `Quick test_parser_ct_state;
          Alcotest.test_case "ct action" `Quick test_parser_ct_action;
          Alcotest.test_case "ct nat" `Quick test_parser_ct_nat;
          Alcotest.test_case "set_field" `Quick test_parser_set_field;
          Alcotest.test_case "tunnel push" `Quick test_parser_tunnel_push;
          Alcotest.test_case "misc actions" `Quick test_parser_misc_actions;
          Alcotest.test_case "register fields" `Quick test_parser_reg_fields;
          Alcotest.test_case "rejects garbage" `Quick test_parser_rejects_garbage;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "goto chain" `Quick test_pipeline_goto_chain;
          Alcotest.test_case "miss drops" `Quick test_pipeline_miss_drops;
          Alcotest.test_case "megaflow mask accumulates" `Quick
            test_pipeline_megaflow_mask_accumulates;
          Alcotest.test_case "set_field affects later match" `Quick
            test_pipeline_set_field_affects_later_match;
          Alcotest.test_case "ct terminal with recirc" `Quick
            test_pipeline_ct_is_terminal_with_recirc;
          Alcotest.test_case "ct without table continues" `Quick
            test_pipeline_ct_without_table_continues;
          Alcotest.test_case "NORMAL learning" `Quick test_pipeline_normal_learning;
          Alcotest.test_case "no backward goto" `Quick test_pipeline_no_backward_goto;
          Alcotest.test_case "tnl_pop terminal" `Quick test_pipeline_tunnel_pop_terminal;
          Alcotest.test_case "flow count and tables" `Quick
            test_pipeline_flow_count_and_tables;
        ] );
      ( "wire",
        [
          Alcotest.test_case "hello/echo" `Quick test_ofp_hello_echo;
          Alcotest.test_case "features" `Quick test_ofp_features;
          Alcotest.test_case "flow_mod roundtrip" `Quick test_ofp_flow_mod_roundtrip;
          Alcotest.test_case "ct/tunnel extension actions" `Quick
            test_ofp_ct_and_tunnel_actions;
          Alcotest.test_case "packet in/out" `Quick test_ofp_packet_in_out;
          Alcotest.test_case "rejects garbage" `Quick test_ofp_rejects_garbage;
          Alcotest.test_case "switch session" `Quick test_ofconn_session;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_ofp_match_roundtrip ] );
    ]
