test/test_integration.ml: Alcotest List Ovs_datapath Ovs_ebpf Ovs_netdev Ovs_nsx Ovs_ofproto Ovs_packet Ovs_sim Ovs_tools Printf
