test/test_conntrack.mli:
