test/test_ebpf.mli:
