test/test_packet.ml: Alcotest Arp Array Buffer Build Bytes Char Checksum Ethernet Flow_key Gen Gso Icmp Ipv4 List Mac Ovs_packet Ovs_sim QCheck QCheck_alcotest Stdlib String Tcp Tunnel Udp
