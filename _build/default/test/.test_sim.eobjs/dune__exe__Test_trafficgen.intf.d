test/test_trafficgen.mli:
