test/test_ovsdb.mli:
