test/test_ofproto.ml: Action Alcotest Array Bytes Int List Match_ Ofconn Ofp_codec Ovs_ofproto Ovs_packet Ovs_sim Parser Pipeline QCheck QCheck_alcotest Table
