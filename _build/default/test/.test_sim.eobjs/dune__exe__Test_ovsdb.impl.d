test/test_ovsdb.ml: Alcotest Db List Ovs_ovsdb String Value Vsctl
