test/test_tools.ml: Alcotest Bytes Int32 List Ovs_netdev Ovs_packet Ovs_tools String
