test/test_sim.ml: Alcotest List Ovs_sim
