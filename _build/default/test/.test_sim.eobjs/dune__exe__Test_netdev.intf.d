test/test_netdev.mli:
