test/test_flow.ml: Alcotest Array List Ovs_flow Ovs_packet Ovs_sim QCheck QCheck_alcotest
