test/test_datapath.ml: Alcotest Array Int64 List Ovs_conntrack Ovs_datapath Ovs_ebpf Ovs_netdev Ovs_ofproto Ovs_packet Ovs_sim Printf String
