test/test_netdev.ml: Alcotest Array List Ovs_ebpf Ovs_netdev Ovs_packet Queue
