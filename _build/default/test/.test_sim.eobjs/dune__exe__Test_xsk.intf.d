test/test_xsk.mli:
