test/test_xsk.ml: Alcotest Bytes Dp_packet_pool Gen List Ovs_packet Ovs_sim Ovs_xsk QCheck QCheck_alcotest Ring Umem Umempool Xsk
