test/test_trafficgen.ml: Alcotest Hashtbl List Ovs_datapath Ovs_packet Ovs_sim Ovs_trafficgen
