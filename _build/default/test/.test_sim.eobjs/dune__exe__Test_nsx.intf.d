test/test_nsx.mli:
