test/test_vswitch.ml: Alcotest Hashtbl List Ovs_core Ovs_datapath Ovs_netdev Ovs_ofproto Ovs_packet Ovs_sim Printf String
