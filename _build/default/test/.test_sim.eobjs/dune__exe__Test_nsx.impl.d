test/test_nsx.ml: Alcotest List Ovs_nsx Ovs_ofproto Ovs_packet
