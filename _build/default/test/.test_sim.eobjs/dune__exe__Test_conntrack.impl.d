test/test_conntrack.ml: Alcotest Ovs_conntrack Ovs_packet Ovs_sim
