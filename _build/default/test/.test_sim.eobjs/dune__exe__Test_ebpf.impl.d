test/test_ebpf.ml: Alcotest Array Asm Field Gen Insn Int Int64 List Maps Ovs_ebpf Ovs_packet Ovs_sim Printf Progs QCheck QCheck_alcotest Verifier Vm Xdp
