(* Tests for the eBPF substrate: assembler, interpreter, verifier, maps,
   XDP hook, and the program library. *)

open Ovs_ebpf
module Insn = Insn
module B = Ovs_packet.Build

let check = Alcotest.check

let fresh_maps () = Maps.reset_registry ()

(* a minimal packet the parse programs accept *)
let ipv4_packet () = B.udp ~frame_len:64 ()

let run_prog ?(pkt = ipv4_packet ()) prog =
  let vm = Vm.create () in
  Vm.run vm prog pkt

let verify_ok name prog =
  match Verifier.verify prog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s rejected: %a" name Verifier.pp_error e

let verify_rejected name prog =
  match Verifier.verify prog with
  | Ok () -> Alcotest.failf "%s unexpectedly accepted" name
  | Error _ -> ()

(* -- assembler -- *)

let test_asm_label_resolution () =
  let b = Asm.builder () in
  Asm.jcond b Insn.Jeq Insn.R1 (Insn.Imm 0) "skip";
  Asm.mov b Insn.R0 1;
  Asm.exit_ b;
  Asm.label b "skip";
  Asm.mov b Insn.R0 2;
  Asm.exit_ b;
  let prog = Asm.finish b in
  (match prog.(0) with
  | Insn.Jcond (_, _, _, 2) -> ()
  | i -> Alcotest.failf "bad offset: %a" Insn.pp i);
  check Alcotest.int "length" 5 (Array.length prog)

let test_asm_unknown_label () =
  let b = Asm.builder () in
  Asm.jmp b "nowhere";
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Asm: unknown label nowhere") (fun () ->
      ignore (Asm.finish b))

let test_asm_backward_label () =
  let b = Asm.builder () in
  Asm.label b "top";
  Asm.mov b Insn.R0 0;
  Asm.jmp b "top";
  let prog = Asm.finish b in
  match prog.(1) with
  | Insn.Ja off -> check Alcotest.int "negative offset" (-2) off
  | i -> Alcotest.failf "unexpected %a" Insn.pp i

(* -- interpreter -- *)

let test_vm_alu64 () =
  let b = Asm.builder () in
  Asm.mov b Insn.R0 10;
  Asm.emit b (Insn.Alu64 (Insn.Add, Insn.R0, Insn.Imm 5));
  Asm.emit b (Insn.Alu64 (Insn.Mul, Insn.R0, Insn.Imm 3));
  Asm.emit b (Insn.Alu64 (Insn.Sub, Insn.R0, Insn.Imm 44));
  Asm.exit_ b;
  let o = run_prog (Asm.finish b) in
  (* (10+5)*3-44 = 1 = XDP_DROP *)
  Alcotest.(check bool) "alu result" true (o.Vm.action = Vm.Drop)

let test_vm_alu32_truncates () =
  let b = Asm.builder () in
  Asm.mov b Insn.R0 0;
  Asm.emit b (Insn.Alu64 (Insn.Mov, Insn.R2, Insn.Imm max_int));
  Asm.emit b (Insn.Alu32 (Insn.Add, Insn.R2, Insn.Imm 1));
  (* low 32 bits of max_int are 0xFFFFFFFF; +1 truncated to 32 bits = 0 *)
  Asm.jcond b Insn.Jeq Insn.R2 (Insn.Imm 0) "ok";
  Asm.ret b 0;
  Asm.label b "ok";
  Asm.ret b 2;
  let o = run_prog (Asm.finish b) in
  Alcotest.(check bool) "32-bit wrap" true (o.Vm.action = Vm.Pass)

let test_vm_stack_store_load () =
  let b = Asm.builder () in
  Asm.mov b Insn.R2 0xABCD;
  Asm.st b Insn.DW Insn.R10 (-8) (Insn.Reg Insn.R2);
  Asm.ld b Insn.DW Insn.R3 Insn.R10 (-8);
  Asm.jcond b Insn.Jeq Insn.R3 (Insn.Reg Insn.R2) "ok";
  Asm.ret b 0;
  Asm.label b "ok";
  Asm.ret b 2;
  let o = run_prog (Asm.finish b) in
  Alcotest.(check bool) "stack roundtrip" true (o.Vm.action = Vm.Pass)

let test_vm_packet_load () =
  (* read the ethertype (offset 12, 16-bit) and check it's 0x0800 *)
  let b = Asm.builder () in
  Asm.ld b Insn.W Insn.R2 Insn.R1 0;
  Asm.ld b Insn.W Insn.R3 Insn.R1 4;
  Asm.mov_reg b Insn.R4 Insn.R2;
  Asm.add b Insn.R4 14;
  Asm.jcond b Insn.Jgt Insn.R4 (Insn.Reg Insn.R3) "bad";
  Asm.ld b Insn.H Insn.R5 Insn.R2 12;
  Asm.jcond b Insn.Jeq Insn.R5 (Insn.Imm 0x0800) "ok";
  Asm.label b "bad";
  Asm.ret b 0;
  Asm.label b "ok";
  Asm.ret b 2;
  let prog = Asm.finish b in
  verify_ok "packet load" prog;
  let o = run_prog prog in
  Alcotest.(check bool) "read ethertype" true (o.Vm.action = Vm.Pass)

let test_vm_packet_store_mutates () =
  let pkt = ipv4_packet () in
  let b = Asm.builder () in
  Asm.ld b Insn.W Insn.R2 Insn.R1 0;
  Asm.ld b Insn.W Insn.R3 Insn.R1 4;
  Asm.mov_reg b Insn.R4 Insn.R2;
  Asm.add b Insn.R4 14;
  Asm.jcond b Insn.Jgt Insn.R4 (Insn.Reg Insn.R3) "out";
  Asm.st b Insn.B Insn.R2 0 (Insn.Imm 0x5A);
  Asm.label b "out";
  Asm.ret b 2;
  ignore (run_prog ~pkt (Asm.finish b));
  check Alcotest.int "first byte rewritten" 0x5A (Ovs_packet.Buffer.get_u8 pkt 0)

let test_vm_div_by_zero_yields_zero () =
  (* BPF semantics since Linux 4.11: runtime division by zero produces 0
     rather than a fault, so verified programs can never trap on it *)
  let prog =
    [| Insn.Alu64 (Insn.Mov, Insn.R0, Insn.Imm 4);
       Insn.Alu64 (Insn.Mov, Insn.R1, Insn.Imm 0);
       Insn.Alu64 (Insn.Div, Insn.R0, Insn.Reg Insn.R1);
       Insn.Exit |]
  in
  let o = run_prog prog in
  Alcotest.(check bool) "result is 0 (XDP_ABORTED)" true (o.Vm.action = Vm.Aborted)

let test_vm_insn_counting () =
  let b = Asm.builder () in
  Asm.mov b Insn.R0 2;
  Asm.exit_ b;
  let o = run_prog (Asm.finish b) in
  check Alcotest.int "insns" 2 o.Vm.stats.Vm.insns

let test_vm_trace_helper () =
  let b = Asm.builder () in
  Asm.mov b Insn.R1 42;
  Asm.call b Insn.Trace;
  Asm.ret b 2;
  let o = run_prog (Asm.finish b) in
  check (Alcotest.list Alcotest.int64) "trace" [ 42L ] o.Vm.trace

(* -- maps -- *)

let test_maps_hash_ops () =
  fresh_maps ();
  let m = Maps.create ~name:"h" ~kind:Maps.Hash ~max_entries:4 in
  Alcotest.(check bool) "miss" true (Maps.lookup m 1L = None);
  Alcotest.(check bool) "insert" true (Maps.update m 1L 100L);
  Alcotest.(check bool) "hit" true (Maps.lookup m 1L = Some 100L);
  Alcotest.(check bool) "overwrite" true (Maps.update m 1L 200L);
  Alcotest.(check bool) "new value" true (Maps.lookup m 1L = Some 200L);
  Maps.delete m 1L;
  Alcotest.(check bool) "deleted" true (Maps.lookup m 1L = None)

let test_maps_hash_full () =
  fresh_maps ();
  let m = Maps.create ~name:"h" ~kind:Maps.Hash ~max_entries:2 in
  Alcotest.(check bool) "1" true (Maps.update m 1L 1L);
  Alcotest.(check bool) "2" true (Maps.update m 2L 2L);
  Alcotest.(check bool) "full" false (Maps.update m 3L 3L);
  Alcotest.(check bool) "existing key still updatable" true (Maps.update m 1L 9L)

let test_maps_array_bounds () =
  fresh_maps ();
  let m = Maps.create ~name:"a" ~kind:Maps.Array ~max_entries:4 in
  Alcotest.(check bool) "in range" true (Maps.update m 3L 7L);
  Alcotest.(check bool) "read back" true (Maps.lookup m 3L = Some 7L);
  Alcotest.(check bool) "out of range update" false (Maps.update m 4L 7L);
  Alcotest.(check bool) "out of range lookup" true (Maps.lookup m 9L = None)

let test_map_lookup_from_bytecode () =
  fresh_maps ();
  let m = Maps.create ~name:"t" ~kind:Maps.Hash ~max_entries:8 in
  ignore (Maps.update m 5L 77L);
  let b = Asm.builder () in
  Asm.mov b Insn.R2 5;
  Asm.st b Insn.DW Insn.R10 (-8) (Insn.Reg Insn.R2);
  Asm.ld_map_fd b Insn.R1 m;
  Asm.mov_reg b Insn.R2 Insn.R10;
  Asm.add b Insn.R2 (-8);
  Asm.call b Insn.Map_lookup;
  Asm.jcond b Insn.Jeq Insn.R0 (Insn.Imm 0) "miss";
  Asm.ld b Insn.DW Insn.R3 Insn.R0 0;
  Asm.jcond b Insn.Jeq Insn.R3 (Insn.Imm 77) "hit";
  Asm.label b "miss";
  Asm.ret b 0;
  Asm.label b "hit";
  Asm.ret b 2;
  let prog = Asm.finish b in
  verify_ok "map lookup prog" prog;
  let o = run_prog prog in
  Alcotest.(check bool) "value read through pointer" true (o.Vm.action = Vm.Pass);
  check Alcotest.int "map lookups counted" 1 o.Vm.stats.Vm.map_lookups

(* -- verifier -- *)

let test_verifier_rejects_loop () =
  let prog = [| Insn.Ja (-1) |] in
  verify_rejected "backward jump" prog

let test_verifier_rejects_uninit_read () =
  let prog = [| Insn.Alu64 (Insn.Add, Insn.R3, Insn.Imm 1); Insn.Exit |] in
  verify_rejected "uninitialized register" prog

let test_verifier_rejects_missing_r0 () =
  let prog = [| Insn.Exit |] in
  verify_rejected "r0 uninitialized at exit" prog

let test_verifier_rejects_unchecked_packet_access () =
  let b = Asm.builder () in
  Asm.ld b Insn.W Insn.R2 Insn.R1 0;
  (* no bounds check against data_end *)
  Asm.ld b Insn.H Insn.R3 Insn.R2 12;
  Asm.ret b 1;
  verify_rejected "unchecked packet load" (Asm.finish b)

let test_verifier_rejects_check_too_small () =
  let b = Asm.builder () in
  Asm.ld b Insn.W Insn.R2 Insn.R1 0;
  Asm.ld b Insn.W Insn.R3 Insn.R1 4;
  Asm.mov_reg b Insn.R4 Insn.R2;
  Asm.add b Insn.R4 10;
  Asm.jcond b Insn.Jgt Insn.R4 (Insn.Reg Insn.R3) "out";
  (* checked 10 bytes, then read at offset 12: must be rejected *)
  Asm.ld b Insn.H Insn.R5 Insn.R2 12;
  Asm.label b "out";
  Asm.ret b 1;
  verify_rejected "bounds check too small" (Asm.finish b)

let test_verifier_rejects_stack_oob () =
  let b = Asm.builder () in
  Asm.mov b Insn.R2 1;
  Asm.st b Insn.DW Insn.R10 (-520) (Insn.Reg Insn.R2);
  Asm.ret b 1;
  verify_rejected "stack out of frame" (Asm.finish b)

let test_verifier_rejects_uninit_stack_read () =
  let b = Asm.builder () in
  Asm.ld b Insn.DW Insn.R2 Insn.R10 (-16);
  Asm.ret b 1;
  verify_rejected "uninitialized stack read" (Asm.finish b)

let test_verifier_rejects_null_deref () =
  fresh_maps ();
  let m = Maps.create ~name:"m" ~kind:Maps.Hash ~max_entries:4 in
  let b = Asm.builder () in
  Asm.mov b Insn.R2 1;
  Asm.st b Insn.DW Insn.R10 (-8) (Insn.Reg Insn.R2);
  Asm.ld_map_fd b Insn.R1 m;
  Asm.mov_reg b Insn.R2 Insn.R10;
  Asm.add b Insn.R2 (-8);
  Asm.call b Insn.Map_lookup;
  (* dereference without checking for NULL *)
  Asm.ld b Insn.DW Insn.R3 Insn.R0 0;
  Asm.ret b 1;
  verify_rejected "null map value deref" (Asm.finish b)

let test_verifier_rejects_ctx_store () =
  let b = Asm.builder () in
  Asm.st b Insn.W Insn.R1 0 (Insn.Imm 0);
  Asm.ret b 1;
  verify_rejected "ctx is read-only" (Asm.finish b)

let test_verifier_rejects_r10_write () =
  let b = Asm.builder () in
  Asm.mov b Insn.R10 0;
  Asm.ret b 1;
  verify_rejected "r10 read-only" (Asm.finish b)

let test_verifier_rejects_pointer_arith () =
  let b = Asm.builder () in
  Asm.emit b (Insn.Alu64 (Insn.Mul, Insn.R1, Insn.Imm 2));
  Asm.ret b 1;
  verify_rejected "pointer multiplication" (Asm.finish b)

let test_verifier_rejects_pointer_leak_compare () =
  let b = Asm.builder () in
  Asm.mov b Insn.R2 5;
  (* compare ctx pointer with a scalar *)
  Asm.jcond b Insn.Jgt Insn.R1 (Insn.Reg Insn.R2) "x";
  Asm.label b "x";
  Asm.ret b 1;
  verify_rejected "pointer/scalar comparison" (Asm.finish b)

let test_verifier_rejects_div_zero_imm () =
  let prog =
    [| Insn.Alu64 (Insn.Mov, Insn.R0, Insn.Imm 1);
       Insn.Alu64 (Insn.Div, Insn.R0, Insn.Imm 0);
       Insn.Exit |]
  in
  verify_rejected "constant division by zero" prog

let test_verifier_rejects_oob_jump () =
  let prog = [| Insn.Ja 5; Insn.Exit |] in
  verify_rejected "jump out of bounds" prog

let test_verifier_rejects_fallthrough_end () =
  let prog = [| Insn.Alu64 (Insn.Mov, Insn.R0, Insn.Imm 0) |] in
  verify_rejected "falls off the end" prog

let test_verifier_rejects_empty () = verify_rejected "empty" [||]

let test_verifier_accepts_null_checked_deref () =
  fresh_maps ();
  let m = Maps.create ~name:"m" ~kind:Maps.Hash ~max_entries:4 in
  let b = Asm.builder () in
  Asm.mov b Insn.R2 1;
  Asm.st b Insn.DW Insn.R10 (-8) (Insn.Reg Insn.R2);
  Asm.ld_map_fd b Insn.R1 m;
  Asm.mov_reg b Insn.R2 Insn.R10;
  Asm.add b Insn.R2 (-8);
  Asm.call b Insn.Map_lookup;
  Asm.jcond b Insn.Jeq Insn.R0 (Insn.Imm 0) "null";
  Asm.ld b Insn.DW Insn.R3 Insn.R0 0;
  Asm.label b "null";
  Asm.ret b 1;
  verify_ok "null-checked deref" (Asm.finish b)

let test_verifier_whole_program_library () =
  fresh_maps ();
  let l2_table = Maps.create ~name:"l2" ~kind:Maps.Hash ~max_entries:64 in
  let sessions = Maps.create ~name:"lb" ~kind:Maps.Hash ~max_entries:64 in
  let xskmap = Maps.create ~name:"xsk" ~kind:Maps.Xskmap ~max_entries:16 in
  let mac_to_dev = Maps.create ~name:"macs" ~kind:Maps.Devmap ~max_entries:16 in
  List.iter
    (fun (name, prog) -> verify_ok name prog)
    (Progs.all ~l2_table ~sessions ~xskmap ~mac_to_dev)

(* property: straight-line ALU programs over initialized registers always
   verify and never fault *)
let prop_straightline_alu_safe =
  QCheck.Test.make ~count:200 ~name:"straight-line ALU programs are safe"
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 0 7) small_nat))
    (fun ops ->
      let b = Asm.builder () in
      Asm.mov b Insn.R0 1;
      Asm.mov b Insn.R2 7;
      List.iter
        (fun (op, v) ->
          let v = 1 + v in
          let alu =
            match op with
            | 0 -> Insn.Add
            | 1 -> Insn.Sub
            | 2 -> Insn.Mul
            | 3 -> Insn.Or
            | 4 -> Insn.And
            | 5 -> Insn.Xor
            | 6 -> Insn.Div
            | _ -> Insn.Mod
          in
          Asm.emit b (Insn.Alu64 (alu, Insn.R2, Insn.Imm v)))
        ops;
      Asm.exit_ b;
      let prog = Asm.finish b in
      match Verifier.verify prog with
      | Error _ -> false
      | Ok () -> (
          try
            ignore (run_prog prog);
            true
          with Vm.Fault _ -> false))

(* Soundness fuzz: build programs from safe templates, then corrupt one
   instruction at random. Whatever the verifier still accepts must never
   fault at runtime, on packets of any length — the verifier's entire
   contract (Sec 2.2.2's "distributions are willing to support third-party
   eBPF programs because of eBPF's safe, sandboxed implementation"). *)
let prop_verifier_soundness =
  QCheck.Test.make ~count:400 ~name:"verifier acceptance implies no runtime fault"
    QCheck.(pair small_int (int_range 0 120))
    (fun (seed, pkt_len) ->
      fresh_maps ();
      let prng = Ovs_sim.Prng.of_int (seed * 7919) in
      let m = Maps.create ~name:"f" ~kind:Maps.Hash ~max_entries:8 in
      ignore (Maps.update m 1L 5L);
      let b = Asm.builder () in
      let n_blocks = 1 + Ovs_sim.Prng.int prng 5 in
      Asm.mov b Insn.R0 2;
      for blk = 0 to n_blocks - 1 do
        let lbl = Printf.sprintf "b%d" blk in
        match Ovs_sim.Prng.int prng 5 with
        | 0 ->
            (* ALU play on scratch registers *)
            Asm.mov b Insn.R2 (Ovs_sim.Prng.int prng 1000);
            Asm.emit b (Insn.Alu64 (Insn.Mul, Insn.R2, Insn.Imm 3));
            Asm.emit b (Insn.Alu32 (Insn.Add, Insn.R2, Insn.Imm 7))
        | 1 ->
            (* stack roundtrip *)
            Asm.mov b Insn.R3 blk;
            Asm.st b Insn.DW Insn.R10 (-8 - (8 * (blk mod 4))) (Insn.Reg Insn.R3);
            Asm.ld b Insn.DW Insn.R4 Insn.R10 (-8 - (8 * (blk mod 4)))
        | 2 ->
            (* guarded packet read *)
            Asm.ld b Insn.W Insn.R6 Insn.R1 0;
            Asm.ld b Insn.W Insn.R7 Insn.R1 4;
            Asm.mov_reg b Insn.R8 Insn.R6;
            Asm.add b Insn.R8 (14 + Ovs_sim.Prng.int prng 30);
            Asm.jcond b Insn.Jgt Insn.R8 (Insn.Reg Insn.R7) lbl;
            Asm.ld b Insn.H Insn.R5 Insn.R6 (Ovs_sim.Prng.int prng 12);
            Asm.label b lbl
        | 3 ->
            (* map lookup with null check *)
            Asm.mov b Insn.R2 1;
            Asm.st b Insn.DW Insn.R10 (-16) (Insn.Reg Insn.R2);
            Asm.ld_map_fd b Insn.R1 m;
            Asm.mov_reg b Insn.R2 Insn.R10;
            Asm.add b Insn.R2 (-16);
            Asm.call b Insn.Map_lookup;
            Asm.jcond b Insn.Jeq Insn.R0 (Insn.Imm 0) lbl;
            Asm.ld b Insn.DW Insn.R3 Insn.R0 0;
            Asm.label b lbl;
            Asm.mov b Insn.R0 2
        | _ ->
            (* forward branch over a few instructions *)
            Asm.mov b Insn.R5 (Ovs_sim.Prng.int prng 10);
            Asm.jcond b Insn.Jgt Insn.R5 (Insn.Imm 5) lbl;
            Asm.emit b (Insn.Alu64 (Insn.Xor, Insn.R5, Insn.Imm 3));
            Asm.label b lbl
      done;
      Asm.exit_ b;
      let prog = Asm.finish b in
      (* corrupt one instruction *)
      let mutate prog =
        let p = Array.copy prog in
        let i = Ovs_sim.Prng.int prng (Array.length p) in
        let regs = [| Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R5; Insn.R6; Insn.R9; Insn.R10 |] in
        let r () = regs.(Ovs_sim.Prng.int prng (Array.length regs)) in
        (p.(i) <-
          (match Ovs_sim.Prng.int prng 5 with
          | 0 -> Insn.Alu64 (Insn.Mov, r (), Insn.Reg (r ()))
          | 1 -> Insn.Ld (Insn.DW, r (), r (), Ovs_sim.Prng.int prng 64 - 32)
          | 2 -> Insn.Jcond (Insn.Jgt, r (), Insn.Imm (Ovs_sim.Prng.int prng 100),
                             Ovs_sim.Prng.int prng 6)
          | 3 -> Insn.St (Insn.W, r (), Ovs_sim.Prng.int prng 32 - 16, Insn.Imm 7)
          | _ -> Insn.Exit));
        p
      in
      let candidate = if Ovs_sim.Prng.bool prng then mutate prog else prog in
      match Verifier.verify candidate with
      | Error _ -> true  (* rejection is always sound *)
      | Ok () -> (
          let pkt =
            let buf = Ovs_packet.Buffer.create ~size:(Int.max pkt_len 1) () in
            Ovs_packet.Buffer.put buf pkt_len;
            buf
          in
          try
            ignore (run_prog ~pkt candidate);
            true
          with Vm.Fault msg ->
            QCheck.Test.fail_reportf "verified program faulted: %s" msg))

(* -- the XDP program library semantics -- *)

let test_prog_task_d_swaps_macs () =
  let pkt =
    B.udp ~src_mac:(Ovs_packet.Mac.of_index 11) ~dst_mac:(Ovs_packet.Mac.of_index 22) ()
  in
  let o = run_prog ~pkt Progs.task_d in
  Alcotest.(check bool) "tx" true (o.Vm.action = Vm.Tx);
  check Alcotest.int "dst is old src" (Ovs_packet.Mac.of_index 11)
    (Ovs_packet.Ethernet.get_dst pkt);
  check Alcotest.int "src is old dst" (Ovs_packet.Mac.of_index 22)
    (Ovs_packet.Ethernet.get_src pkt)

let test_prog_task_b_drops_non_ip () =
  let pkt = B.arp ~spa:1 ~tpa:2 () in
  let o = run_prog ~pkt Progs.task_b in
  Alcotest.(check bool) "drop" true (o.Vm.action = Vm.Drop)

let test_prog_xsk_default_redirects () =
  fresh_maps ();
  let xskmap = Maps.create ~name:"xsk" ~kind:Maps.Xskmap ~max_entries:4 in
  ignore (Maps.update xskmap 0L 0L);
  let o = run_prog (Progs.xsk_default ~xskmap) in
  (match o.Vm.action with
  | Vm.Redirect (Maps.Xskmap, 0) -> ()
  | a -> Alcotest.failf "expected xsk redirect, got %s" (Vm.action_name a))

let test_prog_xsk_default_passes_unbound_queue () =
  fresh_maps ();
  let xskmap = Maps.create ~name:"xsk" ~kind:Maps.Xskmap ~max_entries:4 in
  (* queue 0 not bound: management traffic falls through to the stack *)
  let o = run_prog (Progs.xsk_default ~xskmap) in
  Alcotest.(check bool) "pass" true (o.Vm.action = Vm.Pass)

let test_prog_veth_redirect_by_mac () =
  fresh_maps ();
  let macs = Maps.create ~name:"macs" ~kind:Maps.Devmap ~max_entries:8 in
  let dst = Ovs_packet.Mac.of_index 2 in
  ignore (Maps.update macs (Int64.of_int dst) 5L);
  let pkt = B.udp ~dst_mac:dst () in
  let o = run_prog ~pkt (Progs.veth_redirect ~mac_to_dev:macs) in
  (match o.Vm.action with
  | Vm.Redirect (Maps.Devmap, 5) -> ()
  | a -> Alcotest.failf "expected devmap redirect, got %s" (Vm.action_name a));
  (* unknown mac passes to the stack/userspace *)
  let pkt2 = B.udp ~dst_mac:(Ovs_packet.Mac.of_index 9) () in
  let o2 = run_prog ~pkt:pkt2 (Progs.veth_redirect ~mac_to_dev:macs) in
  Alcotest.(check bool) "miss passes" true (o2.Vm.action = Vm.Pass)

let test_prog_l4_lb_hit_and_miss () =
  fresh_maps ();
  let sessions = Maps.create ~name:"lb" ~kind:Maps.Hash ~max_entries:64 in
  let xskmap = Maps.create ~name:"xsk" ~kind:Maps.Xskmap ~max_entries:4 in
  ignore (Maps.update xskmap 0L 0L);
  let prog = Progs.l4_load_balancer ~sessions ~xskmap in
  (* a miss goes to userspace through the xskmap *)
  let pkt = ipv4_packet () in
  let o = run_prog ~pkt prog in
  (match o.Vm.action with
  | Vm.Redirect (Maps.Xskmap, _) -> ()
  | a -> Alcotest.failf "miss should upcall, got %s" (Vm.action_name a));
  (* compute the same 5-tuple key the program computes and install it *)
  let key = ref 0L in
  let k = Ovs_packet.Flow_key.extract pkt in
  let open Ovs_packet.Flow_key in
  let src = Int64.of_int (get k Field.Nw_src) in
  let dst = Int64.shift_left (Int64.of_int (get k Field.Nw_dst)) 17 in
  let ports =
    Int64.shift_left
      (Int64.of_int ((get k Field.Tp_src lsl 16) lor get k Field.Tp_dst))
      31
  in
  key := Int64.logxor (Int64.logxor src dst) ports;
  key := Int64.logxor !key (Int64.of_int (get k Field.Nw_proto));
  let backend_mac = Int64.of_int (Ovs_packet.Mac.of_index 33) in
  ignore (Maps.update sessions !key backend_mac);
  let pkt2 = ipv4_packet () in
  let o2 = run_prog ~pkt:pkt2 prog in
  Alcotest.(check bool) "session hit transmits directly" true (o2.Vm.action = Vm.Tx);
  check Alcotest.int "backend mac written" (Ovs_packet.Mac.of_index 33)
    (Ovs_packet.Ethernet.get_dst pkt2)

let test_prog_steer_control () =
  fresh_maps ();
  let xskmap = Maps.create ~name:"xsk" ~kind:Maps.Xskmap ~max_entries:4 in
  ignore (Maps.update xskmap 0L 0L);
  let prog = Progs.steer_control ~xskmap in
  (* OpenFlow (TCP 6653) stays on the kernel path *)
  let of_pkt = B.tcp ~dst_port:6653 () in
  let o = run_prog ~pkt:of_pkt prog in
  Alcotest.(check bool) "openflow passes to stack" true (o.Vm.action = Vm.Pass);
  (* ARP stays on the kernel path *)
  let arp_pkt = B.arp ~spa:1 ~tpa:2 () in
  let o2 = run_prog ~pkt:arp_pkt prog in
  Alcotest.(check bool) "arp passes to stack" true (o2.Vm.action = Vm.Pass);
  (* data plane traffic goes to userspace *)
  let data = ipv4_packet () in
  let o3 = run_prog ~pkt:data prog in
  (match o3.Vm.action with
  | Vm.Redirect (Maps.Xskmap, _) -> ()
  | a -> Alcotest.failf "data should go to OVS, got %s" (Vm.action_name a))

(* -- tail calls (Sec 2.2.2's program chaining) -- *)

let tail_call_prog ~(prog_array : Maps.t) ~slot ~fallthrough =
  let b = Asm.builder () in
  Asm.emit b (Insn.Alu64 (Insn.Mov, Insn.R3, Insn.Imm slot));
  Asm.ld_map_fd b Insn.R2 prog_array;
  (* r1 already holds ctx at program start *)
  Asm.call b Insn.Tail_call;
  Asm.ret b fallthrough;
  Asm.finish b

let test_tail_call_jumps_into_target () =
  fresh_maps ();
  Vm.reset_programs ();
  let pa = Maps.create ~name:"progs" ~kind:Maps.Prog_array ~max_entries:4 in
  let target = Xdp.load_exn ~name:"stage2" Progs.pass_all in
  Xdp.install_in_prog_array target pa ~slot:0;
  let caller = tail_call_prog ~prog_array:pa ~slot:0 ~fallthrough:Asm.xdp_drop in
  verify_ok "tail caller" caller;
  let o = run_prog caller in
  Alcotest.(check bool) "jumped into stage2 (PASS)" true (o.Vm.action = Vm.Pass)

let test_tail_call_empty_slot_falls_through () =
  fresh_maps ();
  Vm.reset_programs ();
  let pa = Maps.create ~name:"progs" ~kind:Maps.Prog_array ~max_entries:4 in
  let caller = tail_call_prog ~prog_array:pa ~slot:2 ~fallthrough:Asm.xdp_drop in
  let o = run_prog caller in
  Alcotest.(check bool) "fell through (DROP)" true (o.Vm.action = Vm.Drop)

let test_tail_call_depth_bounded () =
  fresh_maps ();
  Vm.reset_programs ();
  let pa = Maps.create ~name:"progs" ~kind:Maps.Prog_array ~max_entries:1 in
  (* a program that tail-calls itself: must stop at the depth limit and
     take its own fallthrough, not spin forever *)
  let self = tail_call_prog ~prog_array:pa ~slot:0 ~fallthrough:Asm.xdp_pass in
  let id = Vm.register_program self in
  ignore (Maps.update pa 0L (Int64.of_int id));
  let o = run_prog self in
  Alcotest.(check bool) "terminates via fallthrough" true (o.Vm.action = Vm.Pass);
  Alcotest.(check bool) "bounded work" true (o.Vm.stats.Vm.insns < 200)

let test_tail_call_three_stage_pipeline () =
  (* the eBPF datapath pattern: parse -> lookup -> act as chained stages *)
  fresh_maps ();
  Vm.reset_programs ();
  let pa = Maps.create ~name:"stages" ~kind:Maps.Prog_array ~max_entries:4 in
  let stage3 = Xdp.load_exn ~name:"act" Progs.task_d in
  Xdp.install_in_prog_array stage3 pa ~slot:2;
  let stage2 = Xdp.load_exn ~name:"lookup" (tail_call_prog ~prog_array:pa ~slot:2 ~fallthrough:Asm.xdp_drop) in
  Xdp.install_in_prog_array stage2 pa ~slot:1;
  let stage1 = tail_call_prog ~prog_array:pa ~slot:1 ~fallthrough:Asm.xdp_drop in
  verify_ok "stage1" stage1;
  let pkt = ipv4_packet () in
  let o = run_prog ~pkt stage1 in
  Alcotest.(check bool) "chained to the act stage (TX)" true (o.Vm.action = Vm.Tx)

let test_verifier_tail_call_types () =
  fresh_maps ();
  let h = Maps.create ~name:"h" ~kind:Maps.Hash ~max_entries:4 in
  (* a hash map is not a prog_array *)
  let b = Asm.builder () in
  Asm.emit b (Insn.Alu64 (Insn.Mov, Insn.R3, Insn.Imm 0));
  Asm.ld_map_fd b Insn.R2 h;
  Asm.call b Insn.Tail_call;
  Asm.ret b 2;
  verify_rejected "tail_call on hash map" (Asm.finish b);
  (* r1 must still be the context *)
  let b2 = Asm.builder () in
  let pa = Maps.create ~name:"p" ~kind:Maps.Prog_array ~max_entries:4 in
  Asm.mov b2 Insn.R1 0;
  Asm.emit b2 (Insn.Alu64 (Insn.Mov, Insn.R3, Insn.Imm 0));
  Asm.ld_map_fd b2 Insn.R2 pa;
  Asm.call b2 Insn.Tail_call;
  Asm.ret b2 2;
  verify_rejected "tail_call without ctx" (Asm.finish b2)

let test_xdp_hook_cost_grows_with_complexity () =
  fresh_maps ();
  let c = Ovs_sim.Costs.default in
  let l2 = Maps.create ~name:"l2" ~kind:Maps.Hash ~max_entries:8 in
  let run prog =
    let hook = Xdp.load_exn ~name:"t" prog in
    snd (Xdp.run hook c (ipv4_packet ()))
  in
  let a = run Progs.task_a in
  let bp = run Progs.task_b in
  let cp = run (Progs.task_c ~l2_table:l2) in
  Alcotest.(check bool) "B dearer than A" true (bp > a);
  Alcotest.(check bool) "C dearer than B" true (cp > bp)

let test_xdp_load_rejects_bad_program () =
  match Xdp.load ~name:"bad" [| Insn.Ja (-1) |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loader accepted a looping program"

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_ebpf"
    [
      ( "asm",
        [
          Alcotest.test_case "label resolution" `Quick test_asm_label_resolution;
          Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
          Alcotest.test_case "backward label offsets" `Quick test_asm_backward_label;
        ] );
      ( "vm",
        [
          Alcotest.test_case "alu64" `Quick test_vm_alu64;
          Alcotest.test_case "alu32 truncates" `Quick test_vm_alu32_truncates;
          Alcotest.test_case "stack store/load" `Quick test_vm_stack_store_load;
          Alcotest.test_case "packet load" `Quick test_vm_packet_load;
          Alcotest.test_case "packet store mutates" `Quick test_vm_packet_store_mutates;
          Alcotest.test_case "div by zero yields zero" `Quick test_vm_div_by_zero_yields_zero;
          Alcotest.test_case "instruction counting" `Quick test_vm_insn_counting;
          Alcotest.test_case "trace helper" `Quick test_vm_trace_helper;
        ] );
      ( "maps",
        [
          Alcotest.test_case "hash ops" `Quick test_maps_hash_ops;
          Alcotest.test_case "hash full" `Quick test_maps_hash_full;
          Alcotest.test_case "array bounds" `Quick test_maps_array_bounds;
          Alcotest.test_case "lookup from bytecode" `Quick test_map_lookup_from_bytecode;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "rejects loop" `Quick test_verifier_rejects_loop;
          Alcotest.test_case "rejects uninit read" `Quick test_verifier_rejects_uninit_read;
          Alcotest.test_case "rejects missing r0" `Quick test_verifier_rejects_missing_r0;
          Alcotest.test_case "rejects unchecked pkt access" `Quick
            test_verifier_rejects_unchecked_packet_access;
          Alcotest.test_case "rejects short bounds check" `Quick
            test_verifier_rejects_check_too_small;
          Alcotest.test_case "rejects stack oob" `Quick test_verifier_rejects_stack_oob;
          Alcotest.test_case "rejects uninit stack read" `Quick
            test_verifier_rejects_uninit_stack_read;
          Alcotest.test_case "rejects null deref" `Quick test_verifier_rejects_null_deref;
          Alcotest.test_case "rejects ctx store" `Quick test_verifier_rejects_ctx_store;
          Alcotest.test_case "rejects r10 write" `Quick test_verifier_rejects_r10_write;
          Alcotest.test_case "rejects pointer arith" `Quick
            test_verifier_rejects_pointer_arith;
          Alcotest.test_case "rejects pointer compare" `Quick
            test_verifier_rejects_pointer_leak_compare;
          Alcotest.test_case "rejects div 0 imm" `Quick test_verifier_rejects_div_zero_imm;
          Alcotest.test_case "rejects oob jump" `Quick test_verifier_rejects_oob_jump;
          Alcotest.test_case "rejects fallthrough end" `Quick
            test_verifier_rejects_fallthrough_end;
          Alcotest.test_case "rejects empty" `Quick test_verifier_rejects_empty;
          Alcotest.test_case "accepts null-checked deref" `Quick
            test_verifier_accepts_null_checked_deref;
          Alcotest.test_case "accepts whole program library" `Quick
            test_verifier_whole_program_library;
        ]
        @ qcheck [ prop_straightline_alu_safe; prop_verifier_soundness ] );
      ( "programs",
        [
          Alcotest.test_case "task_d swaps macs" `Quick test_prog_task_d_swaps_macs;
          Alcotest.test_case "task_b drops non-ip" `Quick test_prog_task_b_drops_non_ip;
          Alcotest.test_case "xsk_default redirects" `Quick test_prog_xsk_default_redirects;
          Alcotest.test_case "xsk_default pass on unbound queue" `Quick
            test_prog_xsk_default_passes_unbound_queue;
          Alcotest.test_case "veth_redirect by mac" `Quick test_prog_veth_redirect_by_mac;
          Alcotest.test_case "l4 lb hit and miss" `Quick test_prog_l4_lb_hit_and_miss;
          Alcotest.test_case "steer control traffic" `Quick test_prog_steer_control;
          Alcotest.test_case "cost grows with complexity" `Quick
            test_xdp_hook_cost_grows_with_complexity;
          Alcotest.test_case "loader rejects bad program" `Quick
            test_xdp_load_rejects_bad_program;
        ] );
      ( "tail_calls",
        [
          Alcotest.test_case "jumps into target" `Quick test_tail_call_jumps_into_target;
          Alcotest.test_case "empty slot falls through" `Quick
            test_tail_call_empty_slot_falls_through;
          Alcotest.test_case "depth bounded" `Quick test_tail_call_depth_bounded;
          Alcotest.test_case "three-stage pipeline" `Quick
            test_tail_call_three_stage_pipeline;
          Alcotest.test_case "verifier type checks" `Quick test_verifier_tail_call_types;
        ] );
    ]
