(* Unit and property tests for the simulation substrate. *)

module Prng = Ovs_sim.Prng
module Histogram = Ovs_sim.Histogram
module Eventq = Ovs_sim.Eventq
module Cpu = Ovs_sim.Cpu
module Costs = Ovs_sim.Costs
module Time = Ovs_sim.Time

let check = Alcotest.check

(* -- Time -- *)

let test_time_conversions () =
  check (Alcotest.float 1e-9) "us" 1_000. (Time.us 1.);
  check (Alcotest.float 1e-9) "ms" 1_000_000. (Time.ms 1.);
  check (Alcotest.float 1e-9) "s" 1e9 (Time.s 1.);
  check (Alcotest.float 1e-6) "roundtrip" 2.5 (Time.to_us (Time.us 2.5))

let test_time_rates () =
  (* 100 ns per packet = 10 Mpps *)
  check (Alcotest.float 1.) "rate" 10e6 (Time.rate_pps ~per_packet:100.);
  check (Alcotest.float 1e-9) "inverse" 100. (Time.per_packet_of_pps 10e6);
  check Alcotest.bool "zero cost is infinite rate" true
    (Time.rate_pps ~per_packet:0. = infinity)

let test_time_cycles () =
  (* 2.4 cycles = 1 ns at 2.4 GHz *)
  check (Alcotest.float 1e-9) "cycles" 1. (Time.cycles 2.4)

(* -- Prng -- *)

let test_prng_deterministic () =
  let a = Prng.of_int 99 and b = Prng.of_int 99 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1_000_000) (Prng.int b 1_000_000)
  done

let test_prng_seeds_differ () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int a 1_000_000 = Prng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 8)

let test_prng_bounds () =
  let p = Prng.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_float_range () =
  let p = Prng.of_int 4 in
  for _ = 1 to 10_000 do
    let v = Prng.float p in
    if v < 0. || v >= 1. then Alcotest.failf "float out of range: %f" v
  done

let test_prng_exponential_mean () =
  let p = Prng.of_int 5 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:100.
  done;
  let mean = !sum /. float_of_int n in
  if mean < 95. || mean > 105. then Alcotest.failf "exponential mean %f" mean

let test_prng_gaussian_moments () =
  let p = Prng.of_int 6 in
  let n = 50_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let v = Prng.gaussian p ~mu:10. ~sigma:2. in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  if abs_float (mean -. 10.) > 0.1 then Alcotest.failf "gaussian mean %f" mean;
  if abs_float (var -. 4.) > 0.3 then Alcotest.failf "gaussian var %f" var

(* -- Histogram -- *)

let test_histogram_percentiles () =
  let h = Histogram.create ~lo:1. ~hi:1e6 () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  let p50 = Histogram.p50 h in
  if p50 < 450. || p50 > 550. then Alcotest.failf "p50 %f" p50;
  let p99 = Histogram.p99 h in
  if p99 < 940. || p99 > 1050. then Alcotest.failf "p99 %f" p99

let test_histogram_exact_extremes () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 5.; 10.; 20. ];
  check (Alcotest.float 1e-9) "p0 is min" 5. (Histogram.percentile h 0.);
  check (Alcotest.float 1e-9) "p100 is max" 20. (Histogram.percentile h 100.)

let test_histogram_mean_count () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10.; 20.; 30. ];
  check Alcotest.int "count" 3 (Histogram.count h);
  check (Alcotest.float 1e-9) "mean" 20. (Histogram.mean h)

let test_histogram_empty () =
  let h = Histogram.create () in
  check (Alcotest.float 1e-9) "empty p50" 0. (Histogram.p50 h)

let test_histogram_clamp () =
  let h = Histogram.create ~lo:10. ~hi:100. () in
  Histogram.add h 1.;
  Histogram.add h 1e9;
  check Alcotest.int "clamped values counted" 2 (Histogram.count h)

(* -- Eventq -- *)

let test_eventq_time_order () =
  let q = Eventq.create () in
  Eventq.push q ~at:30. "c";
  Eventq.push q ~at:10. "a";
  Eventq.push q ~at:20. "b";
  let _, a = Eventq.pop q in
  let _, b = Eventq.pop q in
  let _, c = Eventq.pop q in
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ] [ a; b; c ]

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  Eventq.push q ~at:5. 1;
  Eventq.push q ~at:5. 2;
  Eventq.push q ~at:5. 3;
  let order = List.init 3 (fun _ -> snd (Eventq.pop q)) in
  check (Alcotest.list Alcotest.int) "fifo on equal times" [ 1; 2; 3 ] order

let test_eventq_growth () =
  let q = Eventq.create () in
  for i = 999 downto 0 do
    Eventq.push q ~at:(float_of_int i) i
  done;
  check Alcotest.int "length" 1000 (Eventq.length q);
  let prev = ref (-1.) in
  while not (Eventq.is_empty q) do
    let at, _ = Eventq.pop q in
    if at < !prev then Alcotest.fail "heap order violated";
    prev := at
  done

let test_eventq_run_handler () =
  let q = Eventq.create () in
  let fired = ref [] in
  Eventq.push q ~at:1. `A;
  Eventq.push q ~at:2. `B;
  let final =
    Eventq.run q ~handler:(fun ~now ev ->
        fired := (now, ev) :: !fired;
        (* the handler can schedule more events *)
        if ev = `A then Eventq.push q ~at:1.5 `C)
  in
  check Alcotest.int "three events" 3 (List.length !fired);
  check (Alcotest.float 1e-9) "final time" 2. final

let test_eventq_until () =
  let q = Eventq.create () in
  Eventq.push q ~at:1. ();
  Eventq.push q ~at:100. ();
  let count = ref 0 in
  ignore (Eventq.run q ~until:10. ~handler:(fun ~now:_ () -> incr count));
  check Alcotest.int "only early events" 1 !count;
  check Alcotest.int "late event still queued" 1 (Eventq.length q)

(* -- Cpu -- *)

let test_cpu_charge_categories () =
  let m = Cpu.create () in
  let c = Cpu.ctx m "x" in
  Cpu.charge c Cpu.User 10.;
  Cpu.charge c Cpu.System 20.;
  Cpu.charge c Cpu.Softirq 30.;
  Cpu.charge c Cpu.Guest 40.;
  check (Alcotest.float 1e-9) "busy sums categories" 100. (Cpu.busy c)

let test_cpu_wall_is_bottleneck () =
  let m = Cpu.create () in
  let a = Cpu.ctx m "a" and b = Cpu.ctx m "b" in
  Cpu.charge a Cpu.User 100.;
  Cpu.charge b Cpu.Softirq 250.;
  check (Alcotest.float 1e-9) "wall" 250. (Cpu.wall m)

let test_cpu_breakdown () =
  let m = Cpu.create () in
  let a = Cpu.ctx m "a" and b = Cpu.ctx m "b" in
  Cpu.charge a Cpu.User 50.;
  Cpu.charge b Cpu.Softirq 100.;
  let bd = Cpu.breakdown m ~wall:100. in
  check (Alcotest.float 1e-9) "user fraction" 0.5 bd.Cpu.bd_user;
  check (Alcotest.float 1e-9) "softirq fraction" 1.0 bd.Cpu.bd_softirq;
  check (Alcotest.float 1e-9) "total" 1.5 bd.Cpu.bd_total

let test_cpu_poll_floor () =
  let m = Cpu.create () in
  let pmd = Cpu.ctx m "pmd" in
  Cpu.charge pmd Cpu.User 10.;
  let bd = Cpu.breakdown ~poll_floor:[ pmd ] m ~wall:100. in
  (* a polling thread burns the whole core even when 90% idle *)
  check (Alcotest.float 1e-9) "rounded up" 1.0 bd.Cpu.bd_user

let test_cpu_reset () =
  let m = Cpu.create () in
  let c = Cpu.ctx m "c" in
  Cpu.charge c Cpu.User 10.;
  Cpu.reset c;
  check (Alcotest.float 1e-9) "reset" 0. (Cpu.busy c)

(* -- Costs -- *)

let test_costs_csum_linear () =
  let c = Costs.default in
  let small = Costs.csum c ~bytes:64 and big = Costs.csum c ~bytes:1500 in
  Alcotest.(check bool) "checksum grows with size" true (big > small);
  check (Alcotest.float 1e-9) "affine"
    (c.Costs.csum_fixed +. (c.Costs.csum_per_byte *. 64.))
    small

let test_costs_sanity () =
  let c = Costs.default in
  (* ordering relations the calibration depends on *)
  Alcotest.(check bool) "mutex dearer than spinlock" true
    (c.Costs.mutex_lock > c.Costs.spinlock);
  Alcotest.(check bool) "prealloc cheaper than alloc" true
    (c.Costs.prealloc_init < c.Costs.page_alloc);
  Alcotest.(check bool) "tap sendto is ~2us" true
    (c.Costs.sendto_tap >= 1500. && c.Costs.sendto_tap <= 2500.);
  Alcotest.(check bool) "kernel upcall dearer than userspace" true
    (c.Costs.netlink_upcall > c.Costs.upcall)

let () =
  Alcotest.run "ovs_sim"
    [
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "rates" `Quick test_time_rates;
          Alcotest.test_case "cycles" `Quick test_time_cycles;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "exact extremes" `Quick test_histogram_exact_extremes;
          Alcotest.test_case "mean and count" `Quick test_histogram_mean_count;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "clamping" `Quick test_histogram_clamp;
        ] );
      ( "eventq",
        [
          Alcotest.test_case "time order" `Quick test_eventq_time_order;
          Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "growth and heap order" `Quick test_eventq_growth;
          Alcotest.test_case "run with handler" `Quick test_eventq_run_handler;
          Alcotest.test_case "until bound" `Quick test_eventq_until;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "charge categories" `Quick test_cpu_charge_categories;
          Alcotest.test_case "wall is bottleneck" `Quick test_cpu_wall_is_bottleneck;
          Alcotest.test_case "breakdown" `Quick test_cpu_breakdown;
          Alcotest.test_case "poll floor" `Quick test_cpu_poll_floor;
          Alcotest.test_case "reset" `Quick test_cpu_reset;
        ] );
      ( "costs",
        [
          Alcotest.test_case "csum linear" `Quick test_costs_csum_linear;
          Alcotest.test_case "calibration sanity" `Quick test_costs_sanity;
        ] );
    ]
