(* Tests for incremental megaflow revalidation (lib/revalidator): the
   cube-overlap predicate, the work-proportional-to-churn guarantee, and
   the QCheck property that the incremental sweep evicts exactly what the
   flush-all oracle would under random rule churn. *)

module Dpif = Ovs_datapath.Dpif
module Reval = Ovs_revalidator.Revalidator
module Pipeline = Ovs_ofproto.Pipeline
module Match_ = Ovs_ofproto.Match_
module Action = Ovs_ofproto.Action
module Netdev = Ovs_netdev.Netdev
module FK = Ovs_packet.Flow_key
module B = Ovs_packet.Build

let charge _ _ = ()

(* -- cube_overlap -- *)

(* a megaflow cube from a mask and a (pre-masking) key *)
let cube fields key_fields =
  let mask = FK.create () and key = FK.create () in
  List.iter (fun f -> FK.set mask f (FK.Field.full_mask f)) fields;
  List.iter (fun (f, v) -> FK.set key f v) key_fields;
  (mask, FK.apply_mask key mask)

let test_cube_overlap () =
  let m_dst ip = Match_.with_field (Match_.catchall ()) FK.Field.Nw_dst ip in
  (* rule constrains Nw_dst, megaflow doesn't: no commonly-constrained
     bit can differ, so the cubes intersect *)
  let mask, key = cube [ FK.Field.In_port ] [ (FK.Field.In_port, 3) ] in
  Alcotest.(check bool) "disjoint fields overlap" true
    (Reval.cube_overlap (m_dst 0x0A000001) ~mask ~key);
  (* both constrain Nw_dst and agree *)
  let mask, key =
    cube [ FK.Field.Nw_dst ] [ (FK.Field.Nw_dst, 0x0A000001) ]
  in
  Alcotest.(check bool) "same value overlaps" true
    (Reval.cube_overlap (m_dst 0x0A000001) ~mask ~key);
  (* both constrain Nw_dst and differ in a common bit *)
  Alcotest.(check bool) "different value disjoint" false
    (Reval.cube_overlap (m_dst 0x0A000002) ~mask ~key);
  (* a /24 rule against a /32 megaflow inside (and outside) the prefix *)
  let rule24 =
    Match_.with_prefix (Match_.catchall ()) FK.Field.Nw_dst 0x0A000000 24
  in
  Alcotest.(check bool) "inside prefix overlaps" true
    (Reval.cube_overlap rule24 ~mask ~key);
  let mask, key =
    cube [ FK.Field.Nw_dst ] [ (FK.Field.Nw_dst, 0x0A000101) ]
  in
  Alcotest.(check bool) "outside prefix disjoint" false
    (Reval.cube_overlap rule24 ~mask ~key)

(* -- work proportional to churn, not table size -- *)

let test_no_churn_no_work () =
  let pipeline = Pipeline.create ~n_tables:1 () in
  Pipeline.add_flow pipeline ~priority:0 (Match_.catchall ())
    [ Action.Output 1 ];
  let rv : int Reval.t = Reval.create ~pipeline () in
  for i = 0 to 99 do
    let mask = FK.create () and key = FK.create () in
    FK.set mask FK.Field.Nw_src (FK.Field.full_mask FK.Field.Nw_src);
    FK.set key FK.Field.Nw_src (0x0A000000 + i);
    Reval.record rv ~mask ~key ~actions:i
      [ { Reval.dep_table = 0; dep_outcome = Reval.Missed } ]
  done;
  (* no rules changed: the sweep must not re-translate (or even look at)
     any of the 100 tracked megaflows *)
  let s =
    Reval.sweep rv
      ~translate:(fun _ -> Alcotest.fail "translated with zero churn")
      ~evict:(fun ~mask:_ ~key:_ -> Alcotest.fail "evicted with zero churn")
  in
  Alcotest.(check int) "no adds" 0 s.Reval.sw_rules_added;
  Alcotest.(check int) "no dirty" 0 s.Reval.sw_dirty;
  Alcotest.(check int) "tracked intact" 100 (Reval.flows rv)

(* -- incremental == flush-all oracle under random churn -- *)

(* A small universe keeps rule/traffic collisions frequent: 8 source
   addresses on one /24, 4 destination ports, rules that match subsets of
   either, half of them drops. Every round mutates the rule set and then
   proves Dpif.revalidate_check sees zero divergence between the
   incremental sweep and the flush-all re-translation. *)
let prop_incremental_matches_oracle =
  QCheck.Test.make ~count:40 ~name:"incremental sweep == flush-all oracle"
    QCheck.(list_of_size Gen.(int_range 8 24) (int_range 0 9999))
    (fun ops ->
      let pipeline = Pipeline.create ~n_tables:1 () in
      Pipeline.add_flow pipeline ~priority:0 (Match_.catchall ())
        [ Action.Output 1 ];
      let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
      ignore (Dpif.add_port dp (Netdev.create ~name:"ra" ()));
      ignore (Dpif.add_port dp (Netdev.create ~name:"rb" ()));
      Dpif.set_revalidator_enabled dp true;
      let inject r =
        let p =
          B.udp
            ~src_ip:(0x0A000100 + (r mod 8))
            ~dst_ip:0x0A000001 ~src_port:5000
            ~dst_port:(2000 + (r / 8 mod 4))
            ()
        in
        p.Ovs_packet.Buffer.in_port <- 0;
        Dpif.process dp charge p
      in
      (* seed some megaflows before any churn *)
      List.iteri (fun i r -> if i < 6 then inject r) ops;
      let specs = ref [] in
      let ok = ref true in
      List.iter
        (fun r ->
          (match r mod 3 with
          | 0 ->
              (* add a rule on a random slice of the universe *)
              let m =
                if r land 1 = 0 then
                  Match_.with_field (Match_.catchall ()) FK.Field.Nw_src
                    (0x0A000100 + (r / 16 mod 8))
                else
                  Match_.with_field (Match_.catchall ()) FK.Field.Tp_dst
                    (2000 + (r / 16 mod 4))
              in
              let actions = if r land 2 = 0 then [ Action.Output 1 ] else [] in
              Pipeline.add_flow pipeline ~priority:(1 + (r mod 200)) m actions;
              specs := m :: !specs
          | 1 -> (
              (* delete a previously-added rule, if any *)
              match !specs with
              | [] -> ()
              | m :: rest ->
                  specs := rest;
                  ignore (Pipeline.del_flows pipeline m))
          | _ -> inject r);
          let _full, _incr, divergences = Dpif.revalidate_check dp in
          ok := !ok && divergences = 0;
          (* refresh the cache population so later churn has megaflows
             translated under the mutated rule set *)
          inject (r * 7))
        ops;
      !ok)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_revalidator"
    [
      ( "unit",
        [
          Alcotest.test_case "cube_overlap" `Quick test_cube_overlap;
          Alcotest.test_case "zero churn, zero work" `Quick test_no_churn_no_work;
        ] );
      ("oracle", qcheck [ prop_incremental_matches_oracle ]);
    ]
