(* Tests for the datapath engine: forwarding, cache hierarchy, upcalls,
   recirculation, action execution, per-flavor behaviour. *)

module Dpif = Ovs_datapath.Dpif
module Dp_core = Ovs_datapath.Dp_core
module Netdev = Ovs_netdev.Netdev
module Cpu = Ovs_sim.Cpu
module FK = Ovs_packet.Flow_key
module B = Ovs_packet.Build

let check = Alcotest.check

type rig = {
  dp : Dpif.t;
  pipeline : Ovs_ofproto.Pipeline.t;
  phy0 : Netdev.t;
  phy1 : Netdev.t;
  p0 : int;
  p1 : int;
  softirq : Cpu.ctx;
  pmd : Cpu.ctx;
}

let make_rig ?(kind = Dpif.Afxdp Dpif.afxdp_default) ?(queues = 1) () =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:8 () in
  let dp = Dpif.create ~kind ~pipeline () in
  let phy0 = Netdev.create ~name:"eth0" ~queues () in
  let phy1 = Netdev.create ~name:"eth1" ~queues () in
  let p0 = Dpif.add_port dp phy0 in
  let p1 = Dpif.add_port dp phy1 in
  let machine = Cpu.create () in
  {
    dp;
    pipeline;
    phy0;
    phy1;
    p0;
    p1;
    softirq = Cpu.ctx machine "softirq";
    pmd = Cpu.ctx machine "pmd";
  }

let forward_rule r =
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [ Printf.sprintf "table=0,priority=10,in_port=%d actions=output:%d" r.p0 r.p1 ])

let push_and_poll ?(pkt = B.udp ()) r =
  ignore (Netdev.enqueue_on r.phy0 ~queue:0 pkt : bool);
  ignore (Dpif.poll r.dp ~softirq:r.softirq ~pmd:r.pmd ~port_no:r.p0 ~queue:0 ())

let tx_count r = r.phy1.Netdev.stats.Netdev.tx_packets

let all_kinds =
  [
    ("kernel", Dpif.Kernel);
    ("ebpf", Dpif.Kernel_ebpf);
    ("dpdk", Dpif.Dpdk);
    ("afxdp", Dpif.Afxdp Dpif.afxdp_default);
  ]

let test_forwarding_all_kinds () =
  List.iter
    (fun (name, kind) ->
      let r = make_rig ~kind () in
      forward_rule r;
      for _ = 1 to 5 do
        push_and_poll r
      done;
      Alcotest.(check bool) (name ^ " forwards") true (tx_count r = 5))
    all_kinds

let test_upcall_once_then_cached () =
  let r = make_rig () in
  forward_rule r;
  for _ = 1 to 10 do
    push_and_poll r
  done;
  let c = Dpif.counters r.dp in
  check Alcotest.int "one upcall" 1 c.Dp_core.upcalls;
  Alcotest.(check bool) "EMC hits after warmup" true (c.Dp_core.emc_hits >= 8)

let test_kernel_has_no_emc () =
  let r = make_rig ~kind:Dpif.Kernel () in
  forward_rule r;
  for _ = 1 to 5 do
    push_and_poll r
  done;
  let c = Dpif.counters r.dp in
  check Alcotest.int "kernel never hits EMC" 0 c.Dp_core.emc_hits;
  Alcotest.(check bool) "kernel uses megaflow table" true (c.Dp_core.dpcls_hits >= 4)

let test_megaflow_covers_microflows () =
  (* a port-only rule installs a megaflow wide enough for any 5-tuple *)
  let r = make_rig () in
  forward_rule r;
  push_and_poll r ~pkt:(B.udp ~src_port:1 ());
  push_and_poll r ~pkt:(B.udp ~src_port:2 ());
  push_and_poll r ~pkt:(B.udp ~src_port:3 ());
  let c = Dpif.counters r.dp in
  check Alcotest.int "still one upcall" 1 c.Dp_core.upcalls

let test_rule_changes_invalidate_caches () =
  let r = make_rig () in
  forward_rule r;
  push_and_poll r;
  check Alcotest.int "forwarded" 1 (tx_count r);
  (* change policy to drop; caches must be flushed for it to take effect *)
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [ Printf.sprintf "table=0,priority=100,in_port=%d actions=drop" r.p0 ]);
  Dpif.flush_caches r.dp;
  push_and_poll r;
  check Alcotest.int "dropped after flush" 1 (tx_count r)

let test_set_field_rewrites_packet_bytes () =
  let r = make_rig () in
  let new_mac = "02:00:00:00:00:63" in
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [
         Printf.sprintf
           "table=0,priority=10,in_port=%d actions=set_field:%s->dl_dst,output:%d"
           r.p0 new_mac r.p1;
       ]);
  Netdev.set_tx_sink r.phy1 (fun _ pkt ->
      check Alcotest.string "dst mac rewritten" new_mac
        (Ovs_packet.Mac.to_string (Ovs_packet.Ethernet.get_dst pkt)));
  push_and_poll r

let test_vlan_push_on_output () =
  let r = make_rig () in
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [
         Printf.sprintf "table=0,priority=10,in_port=%d actions=push_vlan:100,output:%d"
           r.p0 r.p1;
       ]);
  Netdev.set_tx_sink r.phy1 (fun _ pkt ->
      match Ovs_packet.Ethernet.parse pkt with
      | Some e ->
          check Alcotest.int "vid" 100 (Ovs_packet.Ethernet.vlan_vid e.Ovs_packet.Ethernet.vlan_tci)
      | None -> Alcotest.fail "parse tagged");
  push_and_poll r

let test_ct_recirculation () =
  let r = make_rig () in
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [
         Printf.sprintf "table=0,priority=10,ip,in_port=%d actions=ct(commit,zone=3,table=2)" r.p0;
         Printf.sprintf "table=2,priority=10,ct_state=+trk actions=output:%d" r.p1;
       ]);
  push_and_poll r ~pkt:(B.tcp ~flags:Ovs_packet.Tcp.Flags.syn ());
  check Alcotest.int "forwarded after recirc" 1 (tx_count r);
  let c = Dpif.counters r.dp in
  check Alcotest.int "two datapath passes" 2 c.Dp_core.passes;
  Alcotest.(check bool) "connection committed" true
    (Ovs_conntrack.Conntrack.active_conns (Dpif.conntrack r.dp) = 1)

let test_ct_state_firewall_blocks_unsolicited () =
  let r = make_rig () in
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [
         (* only established or locally-initiated traffic may pass *)
         Printf.sprintf "table=0,priority=10,ip,in_port=%d actions=ct(zone=1,table=2)" r.p0;
         Printf.sprintf "table=2,priority=100,ct_state=+trk+est actions=output:%d" r.p1;
         "table=2,priority=50,ct_state=+trk+new actions=drop";
       ]);
  (* unsolicited SYN: tracked as new -> dropped *)
  push_and_poll r ~pkt:(B.tcp ~flags:Ovs_packet.Tcp.Flags.syn ());
  check Alcotest.int "unsolicited blocked" 0 (tx_count r)

let test_ct_related_icmp_admitted () =
  let r = make_rig ~kind:Dpif.Dpdk () in
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [
         Printf.sprintf "table=0,priority=10,ip,in_port=%d actions=ct(zone=1,table=2)" r.p0;
         Printf.sprintf "table=2,priority=100,ct_state=+trk+rel,ip actions=output:%d" r.p1;
         Printf.sprintf "table=2,priority=90,ct_state=+trk+new,udp actions=ct(commit,zone=1),output:%d" r.p1;
         "table=2,priority=50 actions=drop";
       ]);
  (* the offending flow commits a connection *)
  let offending = B.udp ~src_port:50 ~dst_port:53 () in
  push_and_poll r ~pkt:offending;
  check Alcotest.int "flow admitted" 1 (tx_count r);
  (* an ICMP error quoting it rides the +rel rule *)
  let err =
    B.icmp_error ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.9.9.9")
      ~offending:(B.udp ~src_port:50 ~dst_port:53 ()) ()
  in
  push_and_poll r ~pkt:err;
  check Alcotest.int "related ICMP admitted" 2 (tx_count r);
  (* an ICMP error about an unknown flow is dropped *)
  let stranger =
    B.icmp_error ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.9.9.9")
      ~offending:(B.udp ~src_port:999 ~dst_port:999 ()) ()
  in
  push_and_poll r ~pkt:stranger;
  check Alcotest.int "unrelated ICMP dropped" 2 (tx_count r)

let test_tunnel_push_then_pop_roundtrip () =
  (* host A encapsulates; host B decapsulates and delivers *)
  let a = make_rig () in
  ignore
    (Ovs_ofproto.Parser.install_flows a.pipeline
       [
         Printf.sprintf
           "table=0,priority=10,in_port=%d \
            actions=geneve_push(vni=9,remote=192.168.0.2,local=192.168.0.1,remote_mac=02:00:00:00:00:10,local_mac=02:00:00:00:00:11,out=%d)"
           a.p0 a.p1;
       ]);
  let b = make_rig () in
  ignore
    (Ovs_ofproto.Parser.install_flows b.pipeline
       [
         Printf.sprintf "table=0,priority=10,in_port=%d,udp,tp_dst=6081 actions=tnl_pop:2" b.p0;
         Printf.sprintf "table=2,priority=10,tun_id=9 actions=output:%d" b.p1;
         "table=2,priority=1 actions=drop";
       ]);
  (* wire host A's egress into host B's ingress *)
  Netdev.set_tx_sink a.phy1 (fun _ pkt ->
      ignore (Netdev.enqueue_on b.phy0 ~queue:0 pkt : bool));
  let original = B.udp ~src_port:4242 () in
  let payload = Ovs_packet.Buffer.contents original in
  Netdev.set_tx_sink b.phy1 (fun _ pkt ->
      check Alcotest.bytes "inner packet delivered intact" payload
        (Ovs_packet.Buffer.contents pkt));
  push_and_poll a ~pkt:original;
  ignore (Dpif.poll b.dp ~softirq:b.softirq ~pmd:b.pmd ~port_no:b.p0 ~queue:0 ());
  check Alcotest.int "delivered on host B" 1 (tx_count b)

let test_serialized_tx_accounting () =
  let r = make_rig ~kind:Dpif.Kernel () in
  forward_rule r;
  Dpif.set_active_queues r.dp 1;
  push_and_poll r;
  let single = Dpif.serialized_tx r.dp in
  Alcotest.(check bool) "some serialized time" true (single > 0.);
  Dpif.reset_measurement r.dp;
  Dpif.set_active_queues r.dp 4;
  push_and_poll r;
  Alcotest.(check bool) "contended section is longer" true
    (Dpif.serialized_tx r.dp > single)

let test_xdp_program_swap_devmap_redirect () =
  let r = make_rig () in
  forward_rule r;
  (* veth port to receive driver-level redirects *)
  let veth = Netdev.create ~kind:Netdev.Veth ~name:"veth0" () in
  let vp = Dpif.add_port r.dp veth in
  let mac_to_dev =
    Ovs_ebpf.Maps.create ~name:"m2d" ~kind:Ovs_ebpf.Maps.Devmap ~max_entries:8
  in
  ignore
    (Ovs_ebpf.Maps.update mac_to_dev
       (Int64.of_int (Ovs_packet.Mac.of_index 2))
       (Int64.of_int vp));
  let prog =
    Ovs_ebpf.Xdp.load_exn ~name:"veth_redirect"
      (Ovs_ebpf.Progs.veth_redirect ~mac_to_dev)
  in
  Dpif.set_xdp_program r.dp ~port_no:r.p0 prog;
  let hits = ref 0 in
  Netdev.set_tx_sink veth (fun _ _ -> incr hits);
  (* matching mac goes straight to the veth, bypassing userspace *)
  push_and_poll r ~pkt:(B.udp ~dst_mac:(Ovs_packet.Mac.of_index 2) ());
  check Alcotest.int "redirected at driver level" 1 !hits;
  check Alcotest.int "userspace never saw it" 0 (Dpif.counters r.dp).Dp_core.packets

let test_userspace_cost_charged_to_user () =
  let r = make_rig ~kind:Dpif.Dpdk () in
  forward_rule r;
  push_and_poll r;
  Alcotest.(check bool) "user time" true (r.pmd.Cpu.user > 0.);
  check (Alcotest.float 0.0) "dpdk: no softirq" 0. r.softirq.Cpu.softirq

let test_kernel_cost_charged_to_softirq () =
  let r = make_rig ~kind:Dpif.Kernel () in
  forward_rule r;
  push_and_poll r;
  Alcotest.(check bool) "softirq time" true (r.softirq.Cpu.softirq > 0.);
  check (Alcotest.float 0.0) "kernel: no PMD user time" 0. r.pmd.Cpu.user

let test_afxdp_splits_cost () =
  let r = make_rig () in
  forward_rule r;
  push_and_poll r;
  Alcotest.(check bool) "softirq side (driver+XDP)" true (r.softirq.Cpu.softirq > 0.);
  Alcotest.(check bool) "user side (PMD)" true (r.pmd.Cpu.user > 0.);
  Alcotest.(check bool) "system side (tx kick)" true (r.pmd.Cpu.system > 0.)

let test_afxdp_ladder_monotone_cost () =
  (* each optimization must not make the per-packet cost worse *)
  let costs =
    List.map
      (fun (_, opts) ->
        let r = make_rig ~kind:(Dpif.Afxdp opts) () in
        forward_rule r;
        for _ = 1 to 50 do
          push_and_poll r
        done;
        Cpu.busy r.pmd +. (Cpu.busy r.softirq *. 0.))
      Dpif.afxdp_ladder
  in
  let rec monotone = function
    | a :: b :: rest -> a >= b -. 1e-6 && monotone (b :: rest)
    | _ -> true
  in
  (* skip the no-PMD entry whose cost lands differently *)
  match costs with
  | _ :: optimized -> Alcotest.(check bool) "O1..O5 monotone" true (monotone optimized)
  | [] -> Alcotest.fail "no ladder"

let test_ebpf_slower_than_kernel () =
  let cost kind =
    let r = make_rig ~kind () in
    forward_rule r;
    for _ = 1 to 50 do
      push_and_poll r
    done;
    Cpu.busy r.softirq
  in
  let k = cost Dpif.Kernel and e = cost Dpif.Kernel_ebpf in
  Alcotest.(check bool) "sandbox overhead (Takeaway 4)" true (e > k)

let test_gso_on_non_tso_device () =
  (* oversized frames come from TSO-capable guests; use the DPDK flavor
     whose phy rx has no 2KB umem frame limit *)
  let r = make_rig ~kind:Dpif.Dpdk () in
  forward_rule r;
  (* egress NIC without TSO: a 5000B TCP frame must leave as MTU segments *)
  r.phy1.Netdev.offloads.Netdev.tso <- false;
  let sizes = ref [] in
  Netdev.set_tx_sink r.phy1 (fun _ pkt ->
      sizes := Ovs_packet.Buffer.length pkt :: !sizes);
  push_and_poll r ~pkt:(B.tcp ~payload_len:5000 ());
  check Alcotest.int "four segments" 4 (List.length !sizes);
  List.iter
    (fun s -> Alcotest.(check bool) "within MTU" true (s <= 1514))
    !sizes;
  (* with TSO the big frame passes through whole *)
  let r2 = make_rig ~kind:Dpif.Dpdk () in
  forward_rule r2;
  let sizes2 = ref [] in
  Netdev.set_tx_sink r2.phy1 (fun _ pkt ->
      sizes2 := Ovs_packet.Buffer.length pkt :: !sizes2);
  push_and_poll r2 ~pkt:(B.tcp ~payload_len:5000 ());
  check Alcotest.int "one TSO frame" 1 (List.length !sizes2)

let test_smc_serves_after_emc_disabled () =
  let r = make_rig () in
  forward_rule r;
  Dpif.set_emc_enabled r.dp false;
  Dpif.set_smc_enabled r.dp true;
  for _ = 1 to 10 do
    push_and_poll r
  done;
  let c = Dpif.counters r.dp in
  check Alcotest.int "EMC bypassed" 0 c.Dp_core.emc_hits;
  check Alcotest.int "still one upcall" 1 c.Dp_core.upcalls;
  (* the SMC absorbed the steady state: at most the first couple of
     packets needed the dpcls *)
  Alcotest.(check bool) "dpcls not hit per packet" true (c.Dp_core.dpcls_hits <= 2);
  check Alcotest.int "all forwarded" 10 (tx_count r)

let test_meter_action_executes () =
  let r = make_rig () in
  ignore
    (Ovs_ofproto.Parser.install_flows r.pipeline
       [ Printf.sprintf "table=0,priority=10,in_port=%d actions=meter:1,output:%d" r.p0 r.p1 ]);
  push_and_poll r;
  check Alcotest.int "metered packet still forwarded" 1 (tx_count r)

(* -- rxq scheduling -- *)

module Rxq = Ovs_datapath.Rxq_sched

let test_rxq_round_robin () =
  let a = Rxq.round_robin ~n_queues:6 ~n_pmds:2 in
  check (Alcotest.list Alcotest.int) "alternating" [ 0; 1; 0; 1; 0; 1 ]
    (Array.to_list a.Rxq.queue_to_pmd)

let test_rxq_cycles_beats_round_robin_on_skew () =
  (* one hot queue, five cold ones: round-robin strands the hot queue with
     a cold partner while cycles-based isolates it *)
  let loads = [| 10.; 1.; 1.; 1.; 1.; 1. |] in
  let rr = Rxq.round_robin ~n_queues:6 ~n_pmds:2 in
  let cb = Rxq.cycles_based ~loads ~n_pmds:2 in
  let rr_imb = Rxq.imbalance rr ~loads and cb_imb = Rxq.imbalance cb ~loads in
  Alcotest.(check bool) "cycles-based no worse" true (cb_imb <= rr_imb +. 1e-9);
  Alcotest.(check bool) "cycles-based near optimal" true (cb_imb < 1.45);
  Alcotest.(check bool) "effective scaling ordering" true
    (Rxq.effective_scaling cb ~loads >= Rxq.effective_scaling rr ~loads)

let test_rxq_uniform_loads_balanced () =
  let loads = Array.make 8 1. in
  let cb = Rxq.cycles_based ~loads ~n_pmds:4 in
  check (Alcotest.float 1e-9) "perfect balance" 1.0 (Rxq.imbalance cb ~loads)

(* -- dumps -- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let test_dump_flows_and_megaflows () =
  let r = make_rig () in
  forward_rule r;
  for _ = 1 to 5 do
    push_and_poll r
  done;
  let lines = Ovs_ofproto.Pipeline.dump_flows r.pipeline in
  check Alcotest.int "one rule" 1 (List.length lines);
  Alcotest.(check bool) "hit counter visible" true
    (contains (List.hd lines) "n_packets=1");  (* megaflow absorbed the rest *)
  let mf = Dpif.dump_megaflows r.dp in
  check Alcotest.int "one megaflow" 1 (List.length mf);
  Alcotest.(check bool) "megaflow matches in_port" true
    (contains (List.hd mf) "in_port=");
  Alcotest.(check bool) "megaflow shows fast-path hits" true
    (contains (List.hd mf) "packets:")

let () =
  Alcotest.run "ovs_datapath"
    [
      ( "forwarding",
        [
          Alcotest.test_case "all kinds forward" `Quick test_forwarding_all_kinds;
          Alcotest.test_case "upcall once then cached" `Quick test_upcall_once_then_cached;
          Alcotest.test_case "kernel has no EMC" `Quick test_kernel_has_no_emc;
          Alcotest.test_case "megaflow covers microflows" `Quick
            test_megaflow_covers_microflows;
          Alcotest.test_case "rule changes flush caches" `Quick
            test_rule_changes_invalidate_caches;
        ] );
      ( "actions",
        [
          Alcotest.test_case "set_field rewrites bytes" `Quick
            test_set_field_rewrites_packet_bytes;
          Alcotest.test_case "vlan push" `Quick test_vlan_push_on_output;
          Alcotest.test_case "ct recirculation" `Quick test_ct_recirculation;
          Alcotest.test_case "ct_state firewall" `Quick
            test_ct_state_firewall_blocks_unsolicited;
          Alcotest.test_case "related ICMP admitted" `Quick
            test_ct_related_icmp_admitted;
          Alcotest.test_case "tunnel push/pop across hosts" `Quick
            test_tunnel_push_then_pop_roundtrip;
          Alcotest.test_case "meter action" `Quick test_meter_action_executes;
          Alcotest.test_case "software GSO on egress" `Quick test_gso_on_non_tso_device;
          Alcotest.test_case "SMC layer" `Quick test_smc_serves_after_emc_disabled;
        ] );
      ( "costing",
        [
          Alcotest.test_case "serialized tx accounting" `Quick
            test_serialized_tx_accounting;
          Alcotest.test_case "dpdk charges user" `Quick test_userspace_cost_charged_to_user;
          Alcotest.test_case "kernel charges softirq" `Quick
            test_kernel_cost_charged_to_softirq;
          Alcotest.test_case "afxdp splits cost" `Quick test_afxdp_splits_cost;
          Alcotest.test_case "ladder monotone" `Quick test_afxdp_ladder_monotone_cost;
          Alcotest.test_case "ebpf slower than kernel" `Quick test_ebpf_slower_than_kernel;
        ] );
      ( "xdp",
        [
          Alcotest.test_case "program swap + devmap redirect" `Quick
            test_xdp_program_swap_devmap_redirect;
        ] );
      ( "rxq_sched",
        [
          Alcotest.test_case "round robin" `Quick test_rxq_round_robin;
          Alcotest.test_case "cycles-based on skew" `Quick
            test_rxq_cycles_beats_round_robin_on_skew;
          Alcotest.test_case "uniform balanced" `Quick test_rxq_uniform_loads_balanced;
        ] );
      ( "dumps",
        [ Alcotest.test_case "dump-flows and megaflows" `Quick test_dump_flows_and_megaflows ] );
    ]
