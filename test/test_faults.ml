(* The fault-injection subsystem: deterministic plans on virtual time,
   zero-cost-when-disarmed hooks, umempool partial-failure and
   leak/reclaim semantics, packet conservation under every chaos plan,
   crash/restart megaflow re-sync, and the appctl fault commands.

   The injector is process-global: every test that arms a plan must
   disarm before returning (the [with_plan] wrapper enforces it). *)

module Faults = Ovs_faults.Faults
module Umempool = Ovs_xsk.Umempool
module Netdev = Ovs_netdev.Netdev
module Dpif = Ovs_datapath.Dpif
module Pmd = Ovs_datapath.Pmd
module Health = Ovs_datapath.Health
module Cpu = Ovs_sim.Cpu
module Time = Ovs_sim.Time
module Scenario = Ovs_trafficgen.Scenario
module Chaos = Ovs_trafficgen.Chaos
module Pktgen = Ovs_trafficgen.Pktgen
module Tools = Ovs_tools.Tools

let with_plan plan f =
  Faults.arm plan;
  Fun.protect ~finally:Faults.disarm f

let window ?(name = "w") action ~at ~dur =
  {
    Faults.f_name = name;
    f_action = action;
    f_start = at;
    f_stop = at +. dur;
  }

(* -- umempool: partial batches, drain/refill, no double grant -- *)

let test_partial_batch () =
  let pool = Umempool.create ~n_frames:8 ~strategy:Umempool.Spinlock_batched () in
  let got = Umempool.alloc_batch pool 12 in
  Alcotest.(check int) "partial batch returns every free frame" 8
    (List.length got);
  Alcotest.(check int) "all frames distinct" 8
    (List.length (List.sort_uniq compare got));
  Alcotest.(check int) "shortfall counted as exhaustion" 4
    pool.Umempool.stats.Umempool.exhausted;
  Alcotest.(check (list int)) "empty pool yields the empty batch" []
    (Umempool.alloc_batch pool 3);
  Umempool.put_batch pool got;
  Alcotest.(check int) "refilled" 8 (Umempool.available pool)

let prop_no_double_grant =
  QCheck.Test.make ~count:100 ~name:"drain/refill never double-grants a frame"
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 12))
    (fun requests ->
      let pool = Umempool.create ~n_frames:32 ~strategy:Umempool.Spinlock () in
      let held = Hashtbl.create 64 in
      let ok = ref true in
      List.iteri
        (fun i n ->
          let got = Umempool.alloc_batch pool n in
          List.iter
            (fun f ->
              if Hashtbl.mem held f then ok := false;
              Hashtbl.replace held f ())
            got;
          (* return half of what we hold every other round *)
          if i mod 2 = 1 then begin
            let frames = Hashtbl.fold (fun f () acc -> f :: acc) held [] in
            let back =
              List.filteri (fun j _ -> j mod 2 = 0) (List.sort compare frames)
            in
            List.iter (Hashtbl.remove held) back;
            Umempool.put_batch pool back
          end)
        requests;
      !ok
      && Hashtbl.length held + Umempool.available pool = 32)

let test_leak_and_reclaim () =
  let pool = Umempool.create ~n_frames:64 ~strategy:Umempool.Spinlock () in
  let plan =
    Faults.plan ~name:"leak"
      [ window (Faults.Umem_leak { frames = 16 }) ~at:0. ~dur:(Time.ms 1.) ]
  in
  with_plan plan (fun () ->
      ignore (Faults.tick (Time.us 1.) : Faults.fault list);
      let got = Umempool.alloc_batch pool 4 in
      Alcotest.(check int) "allocation still succeeds" 4 (List.length got);
      Alcotest.(check int) "frames quarantined" 16 (Umempool.leaked_count pool);
      Alcotest.(check int) "pool shrank" (64 - 16 - 4) (Umempool.available pool);
      Umempool.put_batch pool got;
      let reclaimed = Umempool.reclaim_leaked pool in
      Alcotest.(check int) "reclaim returns them all" 16 reclaimed;
      Alcotest.(check int) "pool whole again" 64 (Umempool.available pool);
      Alcotest.(check int) "quarantine empty" 0 (Umempool.leaked_count pool))

let test_exhaustion_window () =
  let pool = Umempool.create ~n_frames:8 ~strategy:Umempool.Spinlock () in
  let plan =
    Faults.plan ~name:"exhaust"
      [ window Faults.Umem_exhaust ~at:0. ~dur:(Time.us 10.) ]
  in
  with_plan plan (fun () ->
      ignore (Faults.tick (Time.us 1.) : Faults.fault list);
      Alcotest.(check (option int)) "denied while open" None (Umempool.get pool);
      ignore (Faults.tick (Time.us 20.) : Faults.fault list);
      Alcotest.(check bool) "grants again after the window" true
        (Umempool.get pool <> None))

(* -- netdev enqueue: counted drops vs uncounted backpressure -- *)

let test_enqueue_semantics () =
  let dev = Netdev.create ~name:"t0" ~queues:1 ~queue_capacity:2 () in
  let pkt () = Ovs_packet.Build.udp ~frame_len:64 () in
  Alcotest.(check bool) "accepts below capacity" true
    (Netdev.enqueue_on dev ~queue:0 (pkt ()));
  ignore (Netdev.enqueue_on dev ~queue:0 (pkt ()) : bool);
  (* full ring, Rx_drop: refused and counted *)
  Alcotest.(check bool) "full ring refuses" false
    (Netdev.enqueue_on dev ~queue:0 (pkt ()));
  Alcotest.(check int) "drop counted" 1 dev.Netdev.stats.Netdev.rx_dropped;
  (* full ring, Rx_backpressure: refused and NOT counted *)
  dev.Netdev.rx_policy <- Netdev.Rx_backpressure;
  Alcotest.(check bool) "backpressure refuses" false
    (Netdev.enqueue_on dev ~queue:0 (pkt ()));
  Alcotest.(check int) "backpressure is uncounted" 1
    dev.Netdev.stats.Netdev.rx_dropped;
  (* carrier-down fault: refused and counted, regardless of policy *)
  let dev2 = Netdev.create ~name:"t1" ~queues:1 () in
  dev2.Netdev.port_no <- 9;
  let plan =
    Faults.plan ~name:"down"
      [ window (Faults.Link_down { port = 9 }) ~at:0. ~dur:(Time.ms 1.) ]
  in
  with_plan plan (fun () ->
      ignore (Faults.tick (Time.us 1.) : Faults.fault list);
      Alcotest.(check bool) "link down refuses" false
        (Netdev.enqueue_on dev2 ~queue:0 (pkt ()));
      Alcotest.(check int) "link-down drop counted" 1
        dev2.Netdev.stats.Netdev.rx_dropped)

(* -- armed-but-quiet hooks charge nothing -- *)

(* The zero-cost invariant, one notch stronger than "disarmed is free":
   even an ARMED plan whose windows lie in the future must leave the
   charged cycle totals byte-identical, because no hook ever charges
   virtual time. *)
let test_armed_quiet_zero_cost () =
  let cfg = Scenario.config ~n_flows:16 ~warmup:500 ~measure:4_000 () in
  let baseline = Scenario.run cfg in
  let far = Time.s 3600. in
  let plan =
    Faults.plan ~name:"future"
      [
        window (Faults.Link_down { port = 0 }) ~at:far ~dur:(Time.ms 1.);
        window Faults.Umem_exhaust ~at:far ~dur:(Time.ms 1.);
        window Faults.Upcall_storm ~at:far ~dur:(Time.ms 1.);
      ]
  in
  let armed = with_plan plan (fun () -> Scenario.run cfg) in
  Alcotest.(check (float 0.)) "identical busy ns" baseline.Scenario.busy_ns
    armed.Scenario.busy_ns;
  Alcotest.(check (float 0.)) "identical rate" baseline.Scenario.rate_mpps
    armed.Scenario.rate_mpps;
  let after = Scenario.run cfg in
  Alcotest.(check (float 0.)) "no residue after disarm"
    baseline.Scenario.busy_ns after.Scenario.busy_ns

(* -- conservation and recovery for chaos plans -- *)

let chaos_spec name =
  List.find (fun s -> s.Chaos.s_name = name) Chaos.catalog

let check_plan name leg () =
  let r = Chaos.run_one (chaos_spec name) leg in
  let c = r.Chaos.row_res in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s: conserved (offered %d = delivered %d + drops %d)"
       name (Chaos.leg_name leg) c.Scenario.c_offered c.Scenario.c_delivered
       c.Scenario.c_drops)
    true c.Scenario.c_conserved;
  Alcotest.(check int) "nothing left in flight" 0 c.Scenario.c_in_flight;
  Alcotest.(check bool) "post-recovery within 1% of baseline" true
    r.Chaos.row_recovered;
  Alcotest.(check bool) "the plan actually fired" true
    (List.exists (fun (_, n) -> n > 0) c.Scenario.c_fired)

(* -- PMD crash + restart re-installs the same megaflow population -- *)

let strip line =
  match Astring.String.cut ~sep:", packets:" line with
  | None -> line
  | Some (head, rest) -> (
      match Astring.String.cut ~sep:", actions:" rest with
      | None -> head
      | Some (_stats, actions) -> head ^ " actions:" ^ actions)

let megaflows dp =
  List.sort compare (List.map strip (Dpif.dump_megaflows dp))

let test_crash_restart_megaflows () =
  let cfg =
    Scenario.config ~n_flows:64 ~n_pmds:2 ~n_rxqs:2 ~queues:2 ~measure:20_000 ()
  in
  let r = Scenario.setup cfg in
  let dp = r.Scenario.r_dp and machine = r.Scenario.r_machine in
  let rt = Option.get r.Scenario.r_rt in
  Scenario.drive r cfg.Scenario.warmup;
  let before = megaflows dp in
  Alcotest.(check bool) "warmup installed megaflows" true (before <> []);
  (* anchor the window at the post-warmup wall time: the injector only
     opens windows the clock actually passes through *)
  let at = Cpu.wall machine in
  let plan =
    Faults.plan ~name:"crash"
      [ window (Faults.Pmd_crash { pmd = 0 }) ~at ~dur:(Time.us 10.) ]
  in
  let health = Health.create ~dp ~rt () in
  with_plan plan (fun () ->
      ignore (Faults.tick (Cpu.wall machine) : Faults.fault list);
      Scenario.poll_sweep r;  (* the poll loop performs the crash *)
      let pmd0 = List.hd (Pmd.pmds rt) in
      Alcotest.(check bool) "pmd0 died" false (Pmd.alive pmd0);
      Alcotest.(check bool) "caches flushed on crash" true (megaflows dp = []);
      (* drive traffic until the monitor restarts it and flows repopulate *)
      let rounds = ref 0 in
      while (not (Pmd.alive pmd0)) && !rounds < 1_000 do
        incr rounds;
        Scenario.drive r 64;
        ignore (Faults.tick (Cpu.wall machine) : Faults.fault list);
        ignore (Health.check health ~now:(Cpu.wall machine) : int)
      done;
      Alcotest.(check bool) "health monitor restarted pmd0" true
        (Pmd.alive pmd0);
      Alcotest.(check int) "exactly one restart" 1 (Pmd.restarts pmd0));
  Scenario.drive r cfg.Scenario.measure;
  Alcotest.(check (list string)) "identical megaflow population" before
    (megaflows dp);
  Alcotest.(check bool) "recovery time recorded" true
    (Health.last_recovery health <> None)

(* -- appctl fault commands and health-show -- *)

let out = function
  | Tools.Ok_output s -> s
  | Tools.Not_supported e -> Alcotest.failf "unexpected Not_supported: %s" e

let contains hay needle = Astring.String.is_infix ~affix:needle hay

let test_appctl_faults () =
  Faults.disarm ();
  let r = out (Tools.appctl "fault/inject link_flap port=3 at=5 for=2") in
  Alcotest.(check bool) "inject names the port" true (contains r "port=3");
  ignore (out (Tools.appctl "fault/inject umem_exhaust at=1 for=1") : string);
  let listing = out (Tools.appctl "fault/list") in
  Alcotest.(check bool) "list shows the link fault" true
    (contains listing "link_flap");
  Alcotest.(check bool) "list shows the umem fault" true
    (contains listing "umem_exhaust");
  (match Tools.appctl "fault/inject frobnicate foo=1" with
  | Tools.Not_supported _ -> ()
  | Tools.Ok_output o -> Alcotest.failf "bad spec accepted: %s" o);
  ignore (out (Tools.appctl "fault/clear") : string);
  Alcotest.(check bool) "clear disarms" true (Faults.armed_plan () = None)

let test_appctl_health_show () =
  let cfg = Scenario.config ~n_flows:8 ~n_pmds:2 ~n_rxqs:2 ~queues:2 () in
  let r = Scenario.setup cfg in
  Scenario.drive r 500;
  let health =
    Health.create ~dp:r.Scenario.r_dp ?rt:r.Scenario.r_rt ()
  in
  (match Tools.appctl "dpif/health-show" with
  | Tools.Not_supported _ -> ()
  | Tools.Ok_output o -> Alcotest.failf "health without monitor: %s" o);
  let rendered = out (Tools.appctl ~health "dpif/health-show") in
  Alcotest.(check bool) "reports OK" true (contains rendered "health: OK");
  Alcotest.(check bool) "lists both pmds" true
    (contains rendered "pmd0" && contains rendered "pmd1")

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_faults"
    [
      ( "umempool",
        [
          Alcotest.test_case "partial batch semantics" `Quick test_partial_batch;
          Alcotest.test_case "leak and reclaim" `Quick test_leak_and_reclaim;
          Alcotest.test_case "exhaustion window" `Quick test_exhaustion_window;
        ]
        @ qcheck [ prop_no_double_grant ] );
      ( "netdev",
        [ Alcotest.test_case "enqueue semantics" `Quick test_enqueue_semantics ]
      );
      ( "zero-cost",
        [
          Alcotest.test_case "armed-but-quiet is byte-identical" `Quick
            test_armed_quiet_zero_cost;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "link_flap kernel" `Slow
            (check_plan "link_flap" Chaos.Kernel_leg);
          Alcotest.test_case "link_flap afxdp" `Slow
            (check_plan "link_flap" Chaos.Afxdp_leg);
          Alcotest.test_case "umem_exhaust afxdp" `Slow
            (check_plan "umem_exhaust" Chaos.Afxdp_leg);
          Alcotest.test_case "upcall_storm pmd" `Slow
            (check_plan "upcall_storm" Chaos.Pmd_leg);
          Alcotest.test_case "ct_pressure afxdp" `Slow
            (check_plan "ct_pressure" Chaos.Afxdp_leg);
          Alcotest.test_case "pmd_crash pmd" `Slow
            (check_plan "pmd_crash" Chaos.Pmd_leg);
        ] );
      ( "resilience",
        [
          Alcotest.test_case "crash/restart re-syncs megaflows" `Slow
            test_crash_restart_megaflows;
        ] );
      ( "appctl",
        [
          Alcotest.test_case "fault/inject, list, clear" `Quick
            test_appctl_faults;
          Alcotest.test_case "dpif/health-show" `Quick test_appctl_health_show;
        ] );
    ]
