(* Reconfiguration battery: the two-phase shadow-table cutover must be
   observationally equivalent to applying the final ruleset directly, the
   OVSDB monitor path must apply exactly what direct wire application
   applies, incremental revalidation must stay 0-divergent from the
   flush-all oracle under random churn, and the Sec 6 downtime comparison
   must work on both its static and dynamic baselines. *)

module Dpif = Ovs_datapath.Dpif
module Pipeline = Ovs_ofproto.Pipeline
module Reconfig = Ovs_ofproto.Reconfig
module Ofconn = Ovs_ofproto.Ofconn
module Netdev = Ovs_netdev.Netdev
module Db = Ovs_ovsdb.Db

(* ------------------------------------------------- random FLOW_MODs *)

(* a small closed vocabulary of valid rule and match texts, so every
   generated op parses and the interesting part is the sequencing *)
let match_pool =
  [| ""; "udp"; "tcp"; "in_port=0"; "udp,in_port=0"; "nw_dst=10.0.0.1";
     "udp,nw_dst=10.0.0.0/24" |]

let flow_text ~table ~priority ~mi ~out =
  let m = match_pool.(mi) in
  Printf.sprintf "table=%d,priority=%d%s,actions=output:%d" table priority
    (if m = "" then "" else "," ^ m)
    out

let gen_flow =
  QCheck.Gen.(
    map
      (fun (table, priority, mi, out) -> flow_text ~table ~priority ~mi ~out)
      (quad (int_range 0 1) (int_range 1 300)
         (int_range 0 (Array.length match_pool - 1))
         (int_range 0 1)))

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun f -> Reconfig.Insert f) gen_flow);
        (2, map (fun f -> Reconfig.Modify f) gen_flow);
        ( 2,
          map
            (fun (table, mi) ->
              Reconfig.Delete
                (if match_pool.(mi) = "" then Printf.sprintf "table=%d" table
                 else Printf.sprintf "table=%d,%s" table match_pool.(mi)))
            (pair (int_range 0 1) (int_range 0 (Array.length match_pool - 1)))
        );
      ])

let gen_ops = QCheck.Gen.(list_size (int_range 0 12) gen_op)

let arb_ops =
  QCheck.make gen_ops
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (fun op ->
             let v, s = match op with
               | Reconfig.Insert s -> ("insert", s)
               | Reconfig.Modify s -> ("modify", s)
               | Reconfig.Delete s -> ("delete", s)
               | Reconfig.Swap _ -> ("swap", "")
             in
             v ^ " " ^ s)
           ops))

(* classifier state modulo hit counters and rule order *)
let normalize pipeline =
  Pipeline.dump_flows pipeline
  |> List.map (fun line ->
         String.split_on_char ',' line
         |> List.map String.trim
         |> List.filter (fun tok ->
                not (String.length tok >= 10 && String.sub tok 0 10 = "n_packets="))
         |> String.concat ",")
  |> List.sort compare

let fresh_dp () =
  let pipeline = Pipeline.create ~n_tables:2 () in
  let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
  ignore (Dpif.add_port dp (Netdev.create ~name:"rc0" ()));
  ignore (Dpif.add_port dp (Netdev.create ~name:"rc1" ()));
  dp

(* two-phase cutover = direct apply: after arbitrary prior churn, a
   shadow built from the final flow list and swapped in leaves the
   classifier in exactly the state direct wire application of that list
   produces on a fresh switch — history cannot leak through the swap *)
let prop_shadow_equiv =
  QCheck.Test.make ~count:150 ~name:"two-phase cutover = direct apply"
    (QCheck.pair arb_ops (QCheck.make QCheck.Gen.(list_size (int_range 1 6) gen_flow)))
    (fun (prefix, final_flows) ->
      let dp = fresh_dp () in
      let conn = Ofconn.create ~pipeline:(Dpif.pipeline dp) () in
      ignore (Reconfig.apply_ops conn prefix);
      let shadow, _mods =
        Reconfig.build_shadow ~like:(Dpif.pipeline dp) final_flows
      in
      ignore (Dpif.swap_pipeline dp shadow);
      let direct = Pipeline.create ~n_tables:2 () in
      Pipeline.set_ports direct [ 0; 1 ];
      let dconn = Ofconn.create ~pipeline:direct () in
      ignore
        (Reconfig.apply_ops dconn
           (List.map (fun f -> Reconfig.Insert f) final_flows));
      normalize (Dpif.pipeline dp) = normalize direct)

(* the OVSDB-driven loop applies exactly what direct application does:
   committing a plan's rows with a monitor attached leaves the
   classifier in the same state as feeding the ops straight down the
   wire, and applies every row exactly once *)
let prop_ovsdb_path =
  QCheck.Test.make ~count:150 ~name:"OVSDB monitor path = direct wire path"
    arb_ops (fun ops ->
      let direct = Pipeline.create ~n_tables:2 () in
      Pipeline.set_ports direct [ 0; 1 ];
      ignore (Reconfig.apply_ops (Ofconn.create ~pipeline:direct ()) ops);
      let via_db = Pipeline.create ~n_tables:2 () in
      Pipeline.set_ports via_db [ 0; 1 ];
      let db = Db.create ~schema:Reconfig.schema () in
      let conn = Ofconn.create ~pipeline:via_db () in
      let unregister, applied = Reconfig.attach db ~conn () in
      let plan =
        { Reconfig.plan_name = "p"; events = [ { Reconfig.at_s = 0.; ops } ] }
      in
      Reconfig.store_plan db plan;
      unregister ();
      !applied = List.length ops && normalize direct = normalize via_db)

(* incremental revalidation stays 0-divergent from the flush-all oracle
   across random churn with live traffic interleaved between ops *)
let prop_churn_divergence_free =
  QCheck.Test.make ~count:60 ~name:"churn revalidation 0-divergent"
    arb_ops (fun ops ->
      let dp = fresh_dp () in
      let conn = Ofconn.create ~pipeline:(Dpif.pipeline dp) () in
      ignore
        (Reconfig.apply_ops conn
           [ Reconfig.Insert "table=0,priority=1,actions=output:1" ]);
      Dpif.set_revalidator_enabled dp true;
      let charge _ _ = () in
      let traffic i =
        for j = 0 to 2 do
          let p =
            Ovs_packet.Build.udp
              ~src_ip:(0x0A000002 + ((i + j) mod 5))
              ~dst_ip:0x0A000001
              ~src_port:(1111 + (i mod 3))
              ~dst_port:2222 ()
          in
          p.Ovs_packet.Buffer.in_port <- 0;
          Dpif.process dp charge p
        done
      in
      traffic 0;
      List.for_all
        (fun op ->
          ignore (Reconfig.apply_ops conn [ op ]);
          let _full, _evicted, divergences = Dpif.revalidate_check dp in
          traffic (Hashtbl.hash op);
          divergences = 0)
        ops)

(* ------------------------------------------------- plan round-trips *)

let plan_text =
  "# a rollout\n\
   @0.001 insert table=0,priority=200,udp,actions=output:1\n\
   @0.002 modify table=0,priority=200,udp,actions=output:0\n\
   @0.002 delete table=0,udp\n\
   @0.003 swap table=0,priority=50,actions=output:1; \
   table=0,priority=10,actions=output:0\n\
   @0.004 swap-naive table=0,priority=50,actions=output:1\n"

let test_plan_parse () =
  let plan = Reconfig.plan_of_string ~name:"roll" plan_text in
  Alcotest.(check int) "events grouped by timestamp" 4
    (List.length plan.Reconfig.events);
  Alcotest.(check int) "five ops total" 5 (Reconfig.op_count plan);
  match plan.Reconfig.events with
  | [ e1; e2; e3; e4 ] ->
      Alcotest.(check (list (float 1e-9))) "timestamps sorted"
        [ 0.001; 0.002; 0.003; 0.004 ]
        (List.map (fun e -> e.Reconfig.at_s) [ e1; e2; e3; e4 ]);
      Alcotest.(check int) "tie folded into one event" 2
        (List.length e2.Reconfig.ops);
      (match e4.Reconfig.ops with
      | [ Reconfig.Swap { swap_style = Reconfig.Naive; swap_flows } ] ->
          Alcotest.(check int) "naive swap flows" 1 (List.length swap_flows)
      | _ -> Alcotest.fail "expected a naive swap at 0.004")
  | _ -> Alcotest.fail "expected 4 events"

let test_plan_db_roundtrip () =
  let plan = Reconfig.plan_of_string ~name:"roll" plan_text in
  let db = Db.create ~schema:Reconfig.schema () in
  Reconfig.store_plan db plan;
  Alcotest.(check int) "one row per op" (Reconfig.op_count plan)
    (Db.row_count db ~table:"Churn_op");
  let back = Reconfig.load_plan db ~name:"roll" in
  Alcotest.(check bool) "load_plan = original plan" true
    (back.Reconfig.events = plan.Reconfig.events)

(* -------------------------- downtime: static and dynamic baselines *)

let test_compare_downtime () =
  (* static: against the modeled 2 s userspace process restart *)
  let s = Ovs_core.Upgrade.compare_downtime ~measured_recovery_ns:1e6 () in
  Alcotest.(check (float 1e-12)) "static measured s" 0.001
    s.Ovs_core.Upgrade.measured_recovery_s;
  Alcotest.(check (float 1e-12)) "static modeled s" 2.0
    s.Ovs_core.Upgrade.modeled_downtime_s;
  Alcotest.(check (float 1e-9)) "static ratio" 5e-4
    s.Ovs_core.Upgrade.downtime_ratio;
  (* dynamic: against a measured naive-swap recovery *)
  let d =
    Ovs_core.Upgrade.compare_downtime ~dynamic_baseline_ns:2e6
      ~measured_recovery_ns:1e6 ()
  in
  Alcotest.(check (float 1e-12)) "dynamic modeled s" 0.002
    d.Ovs_core.Upgrade.modeled_downtime_s;
  Alcotest.(check (float 1e-9)) "dynamic ratio" 0.5
    d.Ovs_core.Upgrade.downtime_ratio

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_reconfig"
    [
      ( "equivalence",
        qcheck [ prop_shadow_equiv; prop_ovsdb_path; prop_churn_divergence_free ]
      );
      ( "plans",
        [
          Alcotest.test_case "plan parse" `Quick test_plan_parse;
          Alcotest.test_case "plan OVSDB round-trip" `Quick
            test_plan_db_roundtrip;
        ] );
      ( "downtime",
        [
          Alcotest.test_case "compare_downtime static+dynamic" `Quick
            test_compare_downtime;
        ] );
    ]
