(* End-to-end integration tests: the full NSX deployment of Sec 5.1 on the
   real engine — two hypervisors, Geneve underlay, distributed firewall
   with conntrack, VM-to-VM traffic; plus the XDP load balancer of Sec 3.5
   wired into the datapath. *)

module Dpif = Ovs_datapath.Dpif
module Dp_core = Ovs_datapath.Dp_core
module Netdev = Ovs_netdev.Netdev
module Cpu = Ovs_sim.Cpu
module FK = Ovs_packet.Flow_key
module B = Ovs_packet.Build
module P = Ovs_packet

let check = Alcotest.check

(* One simulated hypervisor: an uplink, one VIF, and a small NSX-style
   pipeline: classification -> conntrack firewall -> L2/tunnel output. *)
type host = {
  dp : Dpif.t;
  uplink : Netdev.t;
  vif : Netdev.t;
  up_port : int;
  vif_port : int;
  ctx : Cpu.ctx;
}

let vm_a_mac = "02:00:00:00:10:0a"
let vm_b_mac = "02:00:00:00:10:0b"
let vm_a_ip = "172.16.0.10"
let vm_b_ip = "172.16.0.11"

let make_host ~name ~local_vtep ~remote_vtep ~local_vm_mac ~remote_vm_mac =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:8 () in
  let dp = Dpif.create ~kind:(Dpif.Afxdp Dpif.afxdp_default) ~pipeline () in
  let uplink = Netdev.create ~name:(name ^ "-uplink") () in
  let vif = Netdev.create ~kind:Netdev.Vhostuser ~name:(name ^ "-vif") () in
  let up_port = Dpif.add_port dp uplink in
  let vif_port = Dpif.add_port dp vif in
  let machine = Cpu.create () in
  let flows =
    [
      (* t0: classify *)
      Printf.sprintf "table=0,priority=100,in_port=%d,udp,tp_dst=6081 actions=tnl_pop:2"
        up_port;
      Printf.sprintf "table=0,priority=90,in_port=%d,ip actions=ct(zone=5,table=4)"
        vif_port;
      "table=0,priority=0 actions=drop";
      (* t2: tunnel ingress: inner packet, send through the firewall too *)
      "table=2,priority=100,ip actions=ct(zone=5,table=4)";
      "table=2,priority=0 actions=drop";
      (* t4: distributed firewall: only established flows or TCP dst 80 *)
      "table=4,priority=200,ct_state=+trk+est,ip actions=goto_table:6";
      "table=4,priority=150,ct_state=+trk+new,tcp,tp_dst=80 \
       actions=ct(commit,zone=5),goto_table:6";
      "table=4,priority=100,ct_state=+trk+new,ip actions=drop";
      "table=4,priority=0 actions=drop";
      (* t6: L2: local VM or Geneve to the peer *)
      Printf.sprintf "table=6,priority=100,dl_dst=%s actions=output:%d" local_vm_mac
        vif_port;
      Printf.sprintf
        "table=6,priority=90,dl_dst=%s \
         actions=geneve_push(vni=7,remote=%s,local=%s,remote_mac=02:00:00:00:99:02,local_mac=02:00:00:00:99:01,out=%d)"
        remote_vm_mac remote_vtep local_vtep up_port;
      "table=6,priority=0 actions=drop";
    ]
  in
  ignore (Ovs_ofproto.Parser.install_flows pipeline flows);
  { dp; uplink; vif; up_port; vif_port; ctx = Cpu.ctx machine name }

let poll h port =
  ignore (Dpif.poll h.dp ~softirq:h.ctx ~pmd:h.ctx ~port_no:port ~queue:0 ())

(* run until queues drain (tunnel delivery can take extra rounds) *)
let settle hosts =
  for _ = 1 to 8 do
    List.iter
      (fun h ->
        poll h h.up_port;
        poll h h.vif_port)
      hosts
  done

let two_hosts () =
  let a =
    make_host ~name:"hostA" ~local_vtep:"192.168.0.1" ~remote_vtep:"192.168.0.2"
      ~local_vm_mac:vm_a_mac ~remote_vm_mac:vm_b_mac
  in
  let b =
    make_host ~name:"hostB" ~local_vtep:"192.168.0.2" ~remote_vtep:"192.168.0.1"
      ~local_vm_mac:vm_b_mac ~remote_vm_mac:vm_a_mac
  in
  (* the physical wire between the two hypervisors *)
  Netdev.set_tx_sink a.uplink (fun _ pkt ->
      ignore (Netdev.enqueue_on b.uplink ~queue:0 pkt : bool));
  Netdev.set_tx_sink b.uplink (fun _ pkt ->
      ignore (Netdev.enqueue_on a.uplink ~queue:0 pkt : bool));
  (a, b)

let tcp_packet ~from_a ~flags =
  let src_mac, dst_mac, src_ip, dst_ip =
    if from_a then (vm_a_mac, vm_b_mac, vm_a_ip, vm_b_ip)
    else (vm_b_mac, vm_a_mac, vm_b_ip, vm_a_ip)
  in
  B.tcp ~src_mac:(P.Mac.of_string src_mac) ~dst_mac:(P.Mac.of_string dst_mac)
    ~src_ip:(P.Ipv4.addr_of_string src_ip) ~dst_ip:(P.Ipv4.addr_of_string dst_ip)
    ~src_port:49152 ~dst_port:80 ~flags ()

let test_cross_host_vm_to_vm_through_firewall () =
  let a, b = two_hosts () in
  let delivered_b = ref 0 and delivered_a = ref 0 in
  Netdev.set_tx_sink b.vif (fun _ pkt ->
      incr delivered_b;
      (* the inner packet must arrive decapsulated and intact *)
      (match P.Ethernet.parse pkt with
      | Some e ->
          check Alcotest.string "inner dst mac" vm_b_mac
            (P.Mac.to_string e.P.Ethernet.dst)
      | None -> Alcotest.fail "inner parse"));
  Netdev.set_tx_sink a.vif (fun _ _ -> incr delivered_a);
  (* SYN from VM A (allowed: TCP dst 80) *)
  ignore (Netdev.enqueue_on a.vif ~queue:0 (tcp_packet ~from_a:true ~flags:P.Tcp.Flags.syn) : bool);
  settle [ a; b ];
  check Alcotest.int "SYN delivered to VM B across the tunnel" 1 !delivered_b;
  (* SYN+ACK back: on host B this is a reply of an... unseen connection —
     host B committed its own conntrack entry when the SYN passed its
     firewall, so the reply is +est there and at host A *)
  ignore
    (Netdev.enqueue_on b.vif ~queue:0
       (tcp_packet ~from_a:false ~flags:(P.Tcp.Flags.syn lor P.Tcp.Flags.ack))
      : bool);
  settle [ a; b ];
  check Alcotest.int "SYN+ACK delivered back to VM A" 1 !delivered_a;
  (* each host saw multiple datapath passes per packet (Sec 5.1) *)
  let ca = Dpif.counters a.dp and cb = Dpif.counters b.dp in
  Alcotest.(check bool) "recirculation happened on A" true
    (ca.Dp_core.passes > ca.Dp_core.packets);
  Alcotest.(check bool) "recirculation happened on B" true
    (cb.Dp_core.passes > cb.Dp_core.packets)

let test_firewall_blocks_disallowed_port () =
  let a, b = two_hosts () in
  let delivered = ref 0 in
  Netdev.set_tx_sink b.vif (fun _ _ -> incr delivered);
  let pkt =
    B.tcp ~src_mac:(P.Mac.of_string vm_a_mac) ~dst_mac:(P.Mac.of_string vm_b_mac)
      ~src_ip:(P.Ipv4.addr_of_string vm_a_ip) ~dst_ip:(P.Ipv4.addr_of_string vm_b_ip)
      ~src_port:49152 ~dst_port:22 ~flags:P.Tcp.Flags.syn ()
  in
  ignore (Netdev.enqueue_on a.vif ~queue:0 pkt : bool);
  settle [ a; b ];
  check Alcotest.int "SSH blocked by the DFW" 0 !delivered;
  Alcotest.(check bool) "drop recorded" true ((Dpif.counters a.dp).Dp_core.dropped > 0)

let test_established_flow_uses_megaflows () =
  let a, b = two_hosts () in
  Netdev.set_tx_sink b.vif (fun _ _ -> ());
  (* open the connection *)
  ignore (Netdev.enqueue_on a.vif ~queue:0 (tcp_packet ~from_a:true ~flags:P.Tcp.Flags.syn) : bool);
  settle [ a; b ];
  let upcalls_after_syn = (Dpif.counters a.dp).Dp_core.upcalls in
  (* pump established traffic: ack packets hit the +est megaflows *)
  for _ = 1 to 20 do
    ignore (Netdev.enqueue_on a.vif ~queue:0 (tcp_packet ~from_a:true ~flags:P.Tcp.Flags.ack) : bool);
    settle [ a; b ]
  done;
  let upcalls_final = (Dpif.counters a.dp).Dp_core.upcalls in
  Alcotest.(check bool) "bounded slow-path work" true
    (upcalls_final - upcalls_after_syn <= 3);
  Alcotest.(check bool) "cache hits dominate" true
    ((Dpif.counters a.dp).Dp_core.emc_hits > 20)

let test_full_nsx_ruleset_end_to_end () =
  (* the 103k-rule Table 3 pipeline, driven with real packets *)
  let spec =
    { Ovs_nsx.Ruleset.table3_spec with Ovs_nsx.Ruleset.target_rules = 5_000 }
  in
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:40 () in
  ignore (Ovs_ofproto.Parser.install_flows pipeline (Ovs_nsx.Ruleset.generate spec));
  let dp = Dpif.create ~kind:(Dpif.Afxdp Dpif.afxdp_default) ~pipeline () in
  let uplink = Netdev.create ~name:"uplink" () in
  let up_port = Dpif.add_port dp uplink in
  check Alcotest.int "uplink is port 0 as the spec assumes" spec.Ovs_nsx.Ruleset.uplink_port up_port;
  let vifs =
    List.init 4 (fun i ->
        let dev = Netdev.create ~kind:Netdev.Vhostuser ~name:(Printf.sprintf "vif%d" i) () in
        (i, dev, Dpif.add_port dp dev))
  in
  let machine = Cpu.create () in
  let ctx = Cpu.ctx machine "host" in
  let delivered = ref 0 in
  List.iter (fun (_, dev, _) -> Netdev.set_tx_sink dev (fun _ _ -> incr delivered)) vifs;
  Netdev.set_tx_sink uplink (fun _ _ -> ());
  (* TCP SYN from VIF 0 towards VIF 1's IP: must pass spoof-guard, hit the
     firewall sections and either drop or pass — but never crash or loop *)
  let i, dev, port = List.nth vifs 0 in
  let pkt =
    B.tcp
      ~src_mac:(Ovs_nsx.Ruleset.vif_mac i)
      ~dst_mac:(Ovs_nsx.Ruleset.vif_mac 1)
      ~src_ip:(P.Ipv4.addr_of_string (Ovs_nsx.Ruleset.vif_ip i))
      ~dst_ip:(P.Ipv4.addr_of_string (Ovs_nsx.Ruleset.vif_ip 1))
      ~dst_port:443 ~flags:P.Tcp.Flags.syn ()
  in
  ignore (Netdev.enqueue_on dev ~queue:0 pkt : bool);
  for _ = 1 to 4 do
    ignore (Dpif.poll dp ~softirq:ctx ~pmd:ctx ~port_no:port ~queue:0 ())
  done;
  let c = Dpif.counters dp in
  check Alcotest.int "the packet went through" 1 c.Dp_core.packets;
  Alcotest.(check bool) "and recirculated through conntrack" true
    (c.Dp_core.passes >= 2)

let test_xdp_lb_fast_path_with_datapath_fallback () =
  (* Sec 3.5: L4 LB sessions served in XDP; misses go to OVS userspace *)
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:2 () in
  let dp = Dpif.create ~kind:(Dpif.Afxdp Dpif.afxdp_default) ~pipeline () in
  let phy = Netdev.create ~name:"eth0" () in
  let out = Netdev.create ~name:"eth1" () in
  let p0 = Dpif.add_port dp phy in
  let p1 = Dpif.add_port dp out in
  ignore
    (Ovs_ofproto.Parser.install_flows pipeline
       [ Printf.sprintf "table=0,priority=1,in_port=%d actions=output:%d" p0 p1 ]);
  Ovs_ebpf.Maps.reset_registry ();
  let sessions = Ovs_ebpf.Maps.create ~name:"s" ~kind:Ovs_ebpf.Maps.Hash ~max_entries:64 in
  let xskmap = Ovs_ebpf.Maps.create ~name:"x" ~kind:Ovs_ebpf.Maps.Xskmap ~max_entries:4 in
  ignore (Ovs_ebpf.Maps.update xskmap 0L 0L);
  let prog =
    Ovs_ebpf.Xdp.load_exn ~name:"lb" (Ovs_ebpf.Progs.l4_load_balancer ~sessions ~xskmap)
  in
  Dpif.set_xdp_program dp ~port_no:p0 prog;
  let machine = Cpu.create () in
  let sirq = Cpu.ctx machine "sirq" and pmd = Cpu.ctx machine "pmd" in
  (* no session: falls through the xskmap into the userspace datapath *)
  ignore (Netdev.enqueue_on phy ~queue:0 (B.udp ()) : bool);
  ignore (Dpif.poll dp ~softirq:sirq ~pmd ~port_no:p0 ~queue:0 ());
  check Alcotest.int "miss handled by OVS" 1 (Dpif.counters dp).Dp_core.packets;
  check Alcotest.int "forwarded by the OpenFlow rule" 1 out.Netdev.stats.Netdev.tx_packets

let test_tools_work_on_afxdp_managed_uplink () =
  (* Table 1's claim, against a device the AF_XDP datapath actually owns *)
  let a, _ = two_hosts () in
  (match Ovs_tools.Tools.ip_link a.uplink with
  | Ovs_tools.Tools.Ok_output _ -> ()
  | Ovs_tools.Tools.Not_supported m -> Alcotest.failf "ip link failed: %s" m);
  ignore (Netdev.enqueue_on a.uplink ~queue:0 (B.udp ()) : bool);
  match Ovs_tools.Tools.tcpdump a.uplink ~count:1 with
  | Ovs_tools.Tools.Ok_output s -> Alcotest.(check bool) "capture non-empty" true (s <> "")
  | Ovs_tools.Tools.Not_supported m -> Alcotest.failf "tcpdump failed: %s" m

let () =
  Alcotest.run "integration"
    [
      ( "nsx_two_hosts",
        [
          Alcotest.test_case "VM-to-VM through tunnel and firewall" `Quick
            test_cross_host_vm_to_vm_through_firewall;
          Alcotest.test_case "firewall blocks disallowed port" `Quick
            test_firewall_blocks_disallowed_port;
          Alcotest.test_case "established flow cached" `Quick
            test_established_flow_uses_megaflows;
        ] );
      ( "nsx_full_ruleset",
        [
          Alcotest.test_case "5k-rule pipeline end to end" `Slow
            test_full_nsx_ruleset_end_to_end;
        ] );
      ( "xdp_extensions",
        [
          Alcotest.test_case "L4 LB fallback to datapath" `Quick
            test_xdp_lb_fast_path_with_datapath_fallback;
        ] );
      ( "compatibility",
        [
          Alcotest.test_case "tools on AF_XDP uplink" `Quick
            test_tools_work_on_afxdp_managed_uplink;
        ] );
    ]
