(* Tests for the computational cache (lib/nmu): the RQ-RMI learned index,
   the iSet partitioner, the exactness of the assembled tier against the
   dpcls ground truth (the acceptance property: 100k randomized lookups,
   zero disagreements), churn-driven retraining, and the disarmed
   invariant — with the tier disabled, charged virtual time is
   byte-identical to a datapath that never heard of it. *)

module FK = Ovs_packet.Flow_key
module Dpcls = Ovs_flow.Dpcls
module Rqrmi = Ovs_nmu.Rqrmi
module Iset = Ovs_nmu.Iset
module Ccache = Ovs_nmu.Ccache
module Prng = Ovs_sim.Prng
module Dpif = Ovs_datapath.Dpif
module Netdev = Ovs_netdev.Netdev
module Maintenance = Ovs_nsx.Maintenance

let check = Alcotest.check

(* -- RQ-RMI -- *)

(* random sorted pairwise-disjoint ranges *)
let gen_ranges prng n =
  let cur = ref (Prng.int prng 1000) in
  Array.init n (fun _ ->
      let lo = !cur + 1 + Prng.int prng 500 in
      let hi = lo + Prng.int prng 300 in
      cur := hi;
      (lo, hi))

(* ceil(log2 window) + slack, the steps budget of one bounded search *)
let steps_budget max_err =
  let rec bits n = if n <= 1 then 0 else 1 + bits ((n + 1) / 2) in
  bits ((2 * max_err) + 1) + 2

let prop_rqrmi_exact =
  QCheck.Test.make ~count:50 ~name:"rqrmi lookup is exact with bounded search"
    QCheck.(pair small_int (int_range 1 400))
    (fun (seed, n) ->
      let prng = Prng.of_int (seed + 1) in
      let ranges = gen_ranges prng n in
      let t = Rqrmi.train ~ranges () in
      let lo0 = fst ranges.(0) and hi1 = snd ranges.(n - 1) in
      let budget = steps_budget (Rqrmi.max_err t) in
      let ok = ref true in
      for _ = 1 to 400 do
        let x = lo0 - 50 + Prng.int prng (hi1 - lo0 + 100) in
        let oracle = ref None in
        Array.iteri
          (fun i (lo, hi) -> if x >= lo && x <= hi then oracle := Some i)
          ranges;
        let s = Rqrmi.mk_stats () in
        if Rqrmi.lookup t x s <> !oracle then ok := false;
        if s.Rqrmi.steps > budget then ok := false
      done;
      !ok)

let test_rqrmi_rejects_overlap () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Rqrmi.train: ranges overlap or are unsorted") (fun () ->
      ignore (Rqrmi.train ~ranges:[| (0, 10); (5, 20) |] ()))

let test_rqrmi_single_range () =
  let t = Rqrmi.train ~ranges:[| (100, 200) |] () in
  let s = Rqrmi.mk_stats () in
  check Alcotest.int "ranges" 1 (Rqrmi.n_ranges t);
  Alcotest.(check (option int)) "inside" (Some 0) (Rqrmi.lookup t 150 s);
  Alcotest.(check (option int)) "below" None (Rqrmi.lookup t 99 s);
  Alcotest.(check (option int)) "above" None (Rqrmi.lookup t 201 s)

(* -- iSet partitioning -- *)

let mask_of fields =
  let m = FK.create () in
  List.iter (fun (f, v) -> FK.set m f v) fields;
  m

let full f = FK.Field.full_mask f

let test_prefix_range () =
  let mask = mask_of [ (FK.Field.Nw_dst, 0xFFFFFF00) ] in
  let key = FK.create () in
  FK.set key FK.Field.Nw_dst 0x0A010200;
  (match Iset.prefix_range ~mask ~key FK.Field.Nw_dst with
  | Some (lo, hi) ->
      check Alcotest.int "lo" 0x0A010200 lo;
      check Alcotest.int "hi" 0x0A0102FF hi
  | None -> Alcotest.fail "/24 is a prefix");
  (* exact match: a degenerate one-point range *)
  let emask = mask_of [ (FK.Field.Tp_dst, full FK.Field.Tp_dst) ] in
  let ekey = FK.create () in
  FK.set ekey FK.Field.Tp_dst 443;
  (match Iset.prefix_range ~mask:emask ~key:ekey FK.Field.Tp_dst with
  | Some (lo, hi) ->
      check Alcotest.int "point lo" 443 lo;
      check Alcotest.int "point hi" 443 hi
  | None -> Alcotest.fail "exact is a prefix");
  (* a non-contiguous mask is not range-encodable *)
  let bad = mask_of [ (FK.Field.Nw_dst, 0xFFFF00FF) ] in
  Alcotest.(check bool) "holey mask rejected" true
    (Iset.prefix_range ~mask:bad ~key FK.Field.Nw_dst = None);
  Alcotest.(check bool) "zero mask rejected" true
    (Iset.prefix_range ~mask:(FK.create ()) ~key FK.Field.Nw_dst = None)

let test_iset_partition_invariants () =
  (* 20 /24-disjoint megaflows plus 6 that are not range-encodable *)
  let n = 26 in
  let masks =
    Array.init n (fun i ->
        if i < 20 then mask_of [ (FK.Field.Nw_dst, 0xFFFFFF00) ]
        else mask_of [ (FK.Field.Nw_dst, 0xFFFF00FF) ])
  in
  let keys =
    Array.init n (fun i ->
        let k = FK.create () in
        FK.set k FK.Field.Nw_dst
          (if i < 20 then (10 lsl 24) lor (i lsl 8) else (172 lsl 24) lor i);
        k)
  in
  let p = Iset.partition ~masks ~keys () in
  check Alcotest.int "considered" n p.Iset.considered;
  (* every index lands exactly once across iSets + remainder *)
  let seen = Array.make n 0 in
  List.iter
    (fun is ->
      Array.iter (fun i -> seen.(i) <- seen.(i) + 1) is.Iset.is_members;
      (* within an iSet: sorted by lo, pairwise disjoint *)
      let m = Array.length is.Iset.is_lo in
      for j = 0 to m - 1 do
        Alcotest.(check bool) "lo <= hi" true (is.Iset.is_lo.(j) <= is.Iset.is_hi.(j));
        if j > 0 then
          Alcotest.(check bool) "disjoint and sorted" true
            (is.Iset.is_lo.(j) > is.Iset.is_hi.(j - 1))
      done)
    p.Iset.isets;
  List.iter (fun i -> seen.(i) <- seen.(i) + 1) p.Iset.remainder;
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "index %d covered %d times" i c)
    seen;
  (* the holey-mask megaflows cannot be indexed *)
  List.iter
    (fun i ->
      if i < 20 then Alcotest.failf "encodable megaflow %d left to remainder" i)
    (List.filter (fun i -> i >= 20) p.Iset.remainder |> fun r ->
     check Alcotest.int "remainder is the holey group" 6 (List.length r);
     p.Iset.remainder)

(* -- the assembled tier vs dpcls: the 100k-lookup acceptance property -- *)

(* Disjoint megaflow population with three shapes:
   - 60 on {nw_dst/24}, subnets 10.1.c.0
   - 40 on {nw_dst/24, tp_dst}, subnets 10.2.c.0 x ports {80,443}
   - 5 on a non-contiguous nw_dst mask (not range-encodable, values >= 1000) *)
let build_classifier () =
  let cls = Dpcls.create () in
  let m24 = mask_of [ (FK.Field.Nw_dst, 0xFFFFFF00) ] in
  for c = 0 to 59 do
    let k = FK.create () in
    FK.set k FK.Field.Nw_dst ((10 lsl 24) lor (1 lsl 16) lor (c lsl 8));
    Dpcls.insert cls ~mask:m24 ~key:k c
  done;
  let m24p =
    mask_of [ (FK.Field.Nw_dst, 0xFFFFFF00); (FK.Field.Tp_dst, full FK.Field.Tp_dst) ]
  in
  List.iteri
    (fun pi port ->
      for c = 0 to 19 do
        let k = FK.create () in
        FK.set k FK.Field.Nw_dst ((10 lsl 24) lor (2 lsl 16) lor (c lsl 8));
        FK.set k FK.Field.Tp_dst port;
        Dpcls.insert cls ~mask:m24p ~key:k (100 + (pi * 20) + c)
      done)
    [ 80; 443 ];
  let holey = mask_of [ (FK.Field.Nw_dst, 0xFFFF00FF) ] in
  for i = 0 to 4 do
    let k = FK.create () in
    FK.set k FK.Field.Nw_dst ((172 lsl 24) lor (16 lsl 16) lor i);
    Dpcls.insert cls ~mask:holey ~key:k (1000 + i)
  done;
  cls

let random_probe prng =
  let k = FK.create () in
  let second = [| 1; 2; 3 |].(Prng.int prng 3) in
  let dst =
    if Prng.int prng 8 = 0 then
      (* the holey-mask space: 172.16.x.y, y small *)
      (172 lsl 24) lor (16 lsl 16) lor (Prng.int prng 200 lsl 8) lor Prng.int prng 8
    else (10 lsl 24) lor (second lsl 16) lor (Prng.int prng 70 lsl 8) lor Prng.int prng 256
  in
  FK.set k FK.Field.Nw_dst dst;
  FK.set k FK.Field.Nw_src (Prng.int prng 1000);
  FK.set k FK.Field.Tp_dst [| 80; 443; 8080; 22 |].(Prng.int prng 4);
  FK.set k FK.Field.Tp_src (1024 + Prng.int prng 100);
  k

let test_ccache_100k_agreement () =
  let cls = build_classifier () in
  let cc = Ccache.create () in
  let stats = Ccache.train cc cls in
  Alcotest.(check bool) "trained" true (Ccache.trained cc);
  check Alcotest.int "snapshot covers the classifier" (Dpcls.flow_count cls)
    stats.Ccache.ts_megaflows;
  Alcotest.(check bool) "range-encodable megaflows indexed" true
    (stats.Ccache.ts_indexed >= 100);
  check Alcotest.int "indexed + remainder = megaflows" stats.Ccache.ts_megaflows
    (stats.Ccache.ts_indexed + stats.Ccache.ts_remainder);
  let prng = Prng.of_int 0xCCAE in
  let mismatches = ref 0 and ccache_hits = ref 0 and dpcls_hits = ref 0 in
  for _ = 1 to 100_000 do
    let k = random_probe prng in
    let truth = Dpcls.peek cls k in
    (match truth with Some _ -> incr dpcls_hits | None -> ());
    match (Ccache.lookup cc k, truth) with
    | None, None -> ()
    | None, Some (v, _) ->
        (* only a non-indexed (remainder) megaflow may be invisible here *)
        if v < 1000 then incr mismatches
    | Some _, None -> incr mismatches
    | Some (e, cmask), Some (v, dmask) ->
        incr ccache_hits;
        if e.Dpcls.value <> v || not (FK.equal cmask dmask) then incr mismatches
  done;
  check Alcotest.int "zero disagreements over 100k lookups" 0 !mismatches;
  Alcotest.(check bool) "the tier actually answered" true (!ccache_hits > 1000);
  Alcotest.(check bool) "the probes actually hit" true (!dpcls_hits > 10_000);
  check Alcotest.int "tier hit counter" !ccache_hits (Ccache.hits cc)

let test_ccache_reinstall_updates_value () =
  (* a reinstall mutates the dpcls entry in place, so the trained tier
     must observe the new value without retraining *)
  let cls = Dpcls.create () in
  let mask = mask_of [ (FK.Field.Nw_dst, 0xFFFFFF00) ] in
  let k = FK.create () in
  FK.set k FK.Field.Nw_dst 0x0A010100;
  Dpcls.insert cls ~mask ~key:k 1;
  let k2 = FK.create () in
  FK.set k2 FK.Field.Nw_dst 0x0A010200;
  Dpcls.insert cls ~mask ~key:k2 2;
  let cc = Ccache.create () in
  ignore (Ccache.train cc cls);
  Dpcls.insert cls ~mask ~key:k 99;
  match Ccache.peek cc k with
  | Some (e, _) -> check Alcotest.int "sees the reinstalled value" 99 e.Dpcls.value
  | None -> Alcotest.fail "indexed megaflow must be found"

let test_ccache_invalidate_and_retrain () =
  let cls = build_classifier () in
  let cc = Ccache.create () in
  ignore (Ccache.train cc cls);
  check Alcotest.int "generation" 1 (Ccache.generation cc);
  Ccache.invalidate cc;
  Alcotest.(check bool) "untrained after invalidate" false (Ccache.trained cc);
  let prng = Prng.of_int 3 in
  Alcotest.(check bool) "no answers while invalid" true
    (Ccache.peek cc (random_probe prng) = None);
  ignore (Ccache.train cc cls);
  check Alcotest.int "generation bumped" 2 (Ccache.generation cc);
  Alcotest.(check bool) "answers again" true (Ccache.trained cc)

let test_ccache_last_work () =
  let cls = build_classifier () in
  let cc = Ccache.create () in
  ignore (Ccache.train cc cls);
  let k = FK.create () in
  FK.set k FK.Field.Nw_dst ((10 lsl 24) lor (1 lsl 16) lor (7 lsl 8) lor 9);
  (match Ccache.lookup cc k with
  | Some _ -> ()
  | None -> Alcotest.fail "in-subnet key must hit");
  let models, steps, valids = Ccache.last_work cc in
  Alcotest.(check bool) "a hit evaluates models" true (models >= 2);
  Alcotest.(check bool) "a hit searches" true (steps >= 1);
  Alcotest.(check bool) "a hit validates" true (valids >= 1)

(* -- churn-driven retraining (lib/nsx/maintenance.ml) -- *)

let test_churn_retrains () =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:24 () in
  let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
  Dpif.set_ccache_enabled dp true;
  let charge _ _ = () in
  let rounds = 5 and rules_per_round = 20 in
  let st =
    Maintenance.churn ~pipeline ~rounds ~rules_per_round
      ~revalidate:(fun () -> Dpif.revalidate dp)
      ~retrain:(fun () -> ignore (Dpif.ccache_train dp charge : Ccache.train_stats option))
      ()
  in
  check Alcotest.int "rounds" rounds st.Maintenance.ch_rounds;
  check Alcotest.int "added" (rounds * rules_per_round) st.Maintenance.ch_added;
  check Alcotest.int "previous rounds retired" ((rounds - 1) * rules_per_round)
    st.Maintenance.ch_deleted;
  check Alcotest.int "one retrain per round" rounds st.Maintenance.ch_retrains;
  match Dpif.ccache_last_train dp with
  | Some _ -> ()
  | None -> Alcotest.fail "churn must have retrained the tier"

(* -- the disarmed invariant -- *)

(* Replay the same seeded stream through identically-built datapaths and
   sum every charged virtual nanosecond. A datapath with the tier armed
   but untrained, and one where the tier was trained and then disabled,
   must both charge byte-identically to one that never enabled it (the
   same discipline as the fault layer's armed-but-quiet pin). *)
let replay_total ~arm ~train_then_disable () =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:2 () in
  ignore
    (Ovs_ofproto.Parser.install_flows pipeline
       [ "table=0,priority=10,udp actions=output:1" ]);
  let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
  for i = 0 to 1 do
    ignore (Dpif.add_port dp (Netdev.create ~name:(Printf.sprintf "p%d" i) ()))
  done;
  if arm then Dpif.set_ccache_enabled dp true;
  let total = ref 0. in
  let charge _cat ns = total := !total +. ns in
  let base = Ovs_packet.Ipv4.addr_of_string "10.9.0.1" in
  let send i =
    let pkt =
      Ovs_packet.Build.udp
        ~src_ip:(base + (i mod 64))
        ~src_port:(1000 + (i mod 32))
        ()
    in
    pkt.Ovs_packet.Buffer.in_port <- 0;
    Dpif.process dp charge pkt
  in
  for i = 0 to 499 do
    send i
  done;
  if train_then_disable then begin
    (* the training charge goes to a separate meter, as scenarios do *)
    ignore (Dpif.ccache_train dp (fun _ _ -> ()) : Ccache.train_stats option);
    Dpif.set_ccache_enabled dp false
  end;
  for i = 500 to 2999 do
    send i
  done;
  !total

let test_disarmed_byte_identical () =
  let baseline = replay_total ~arm:false ~train_then_disable:false () in
  let armed_untrained = replay_total ~arm:true ~train_then_disable:false () in
  let trained_disabled = replay_total ~arm:true ~train_then_disable:true () in
  Alcotest.(check (float 0.)) "armed-but-untrained charges identically" baseline
    armed_untrained;
  Alcotest.(check (float 0.)) "trained-then-disabled charges identically" baseline
    trained_disabled;
  Alcotest.(check bool) "the replay charged something" true (baseline > 0.)

(* -- scenario integration: the tier under Zipf-skewed load -- *)

let test_scenario_ccache_leg () =
  let cfg =
    Ovs_trafficgen.Scenario.config ~kind:Dpif.Dpdk ~n_flows:128 ~warmup:2_000
      ~measure:8_000 ~ccache:true
      ~mix:(Ovs_trafficgen.Pktgen.Zipf 1.1) ()
  in
  let r = Ovs_trafficgen.Scenario.run cfg in
  Alcotest.(check bool) "forwarding under ccache" true
    (r.Ovs_trafficgen.Scenario.rate_mpps > 0.)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_nmu"
    [
      ( "rqrmi",
        [
          Alcotest.test_case "rejects overlap" `Quick test_rqrmi_rejects_overlap;
          Alcotest.test_case "single range" `Quick test_rqrmi_single_range;
        ]
        @ qcheck [ prop_rqrmi_exact ] );
      ( "iset",
        [
          Alcotest.test_case "prefix ranges" `Quick test_prefix_range;
          Alcotest.test_case "partition invariants" `Quick
            test_iset_partition_invariants;
        ] );
      ( "ccache",
        [
          Alcotest.test_case "100k lookups agree with dpcls" `Quick
            test_ccache_100k_agreement;
          Alcotest.test_case "reinstall updates in place" `Quick
            test_ccache_reinstall_updates_value;
          Alcotest.test_case "invalidate and retrain" `Quick
            test_ccache_invalidate_and_retrain;
          Alcotest.test_case "last-lookup work" `Quick test_ccache_last_work;
        ] );
      ( "integration",
        [
          Alcotest.test_case "churn retrains" `Quick test_churn_retrains;
          Alcotest.test_case "disarmed is byte-identical" `Quick
            test_disarmed_byte_identical;
          Alcotest.test_case "scenario ccache leg" `Slow test_scenario_ccache_leg;
        ] );
    ]
