(* Oracle suite for the streaming quantile sketch behind the latency
   bench: the fixed-log-bucket histogram must stay within its documented
   relative error bound of the exact (sorted, nearest-rank) quantiles,
   merging two sketches must be indistinguishable from ingesting the
   concatenated sample, and everything must be bit-deterministic — the
   sketch sits inside virtual-time scenarios whose whole readout is
   golden-tested byte-for-byte. *)

module Q = Ovs_sim.Quantiles
module Prng = Ovs_sim.Prng

let check = Alcotest.check

(* exact nearest-rank quantile on the raw sample, the oracle the sketch
   is judged against *)
let exact_quantile sorted p =
  let n = Array.length sorted in
  if p <= 0. then sorted.(0)
  else if p >= 100. then sorted.(n - 1)
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(Int.max 0 (rank - 1))

(* log-uniform samples over the sojourn range the bench actually sees
   (ns to tens of ms), so every decade of buckets gets exercised *)
let gen_samples prng n =
  Array.init n (fun _ -> exp (Prng.float prng *. log 1e9))

let percentiles = [ 1.; 10.; 25.; 50.; 75.; 90.; 95.; 99.; 99.9 ]

(* -- unit oracle tests -- *)

let empty_and_extremes () =
  let q = Q.create () in
  check (Alcotest.float 0.) "empty quantile" 0. (Q.quantile q 50.);
  check Alcotest.int "empty count" 0 (Q.count q);
  Q.add q 42.;
  Q.add q 17.;
  Q.add q 9_000.;
  (* min and max are tracked exactly, outside the bucket geometry *)
  check (Alcotest.float 0.) "p0 is the exact min" 17. (Q.quantile q 0.);
  check (Alcotest.float 0.) "p100 is the exact max" 9_000. (Q.quantile q 100.);
  check Alcotest.int "count" 3 (Q.count q);
  check (Alcotest.float 1e-9) "mean is exact" ((42. +. 17. +. 9_000.) /. 3.)
    (Q.mean q)

let single_value () =
  let q = Q.create () in
  Q.add q 1234.;
  List.iter
    (fun p ->
      let v = Q.quantile q p in
      if Float.abs (v -. 1234.) /. 1234. > Q.error_bound q then
        Alcotest.failf "single value: p%.1f = %f, want 1234 +/- %.0f%%" p v
          (100. *. Q.error_bound q))
    percentiles

let merge_geometry_mismatch () =
  let a = Q.create () and b = Q.create ~eps:0.05 () in
  Alcotest.check_raises "mismatched eps rejected"
    (Invalid_argument "Quantiles.merge: mismatched geometry")
    (fun () -> Q.merge ~into:a b)

let reset_clears () =
  let q = Q.create () in
  for i = 1 to 100 do
    Q.add q (float_of_int i)
  done;
  Q.reset q;
  check Alcotest.int "count after reset" 0 (Q.count q);
  check (Alcotest.float 0.) "quantile after reset" 0. (Q.p99 q)

(* -- the documented bound at 100k samples -- *)

let oracle_100k () =
  let prng = Prng.of_int 0x5EED in
  let samples = gen_samples prng 100_000 in
  let q = Q.create () in
  Array.iter (Q.add q) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun p ->
      let est = Q.quantile q p and ex = exact_quantile sorted p in
      let rel = Float.abs (est -. ex) /. ex in
      if rel > Q.error_bound q *. 1.0001 then
        Alcotest.failf "100k oracle: p%.1f est %f vs exact %f (rel %.5f > %.5f)"
          p est ex rel (Q.error_bound q))
    percentiles

(* -- properties -- *)

(* the oracle bound holds for any seed and sample size, not just the
   calibrated 100k run above *)
let prop_oracle =
  QCheck.Test.make ~count:40
    ~name:"sketch quantiles within eps of exact nearest-rank"
    QCheck.(pair small_int (int_range 100 5_000))
    (fun (seed, n) ->
      let prng = Prng.of_int seed in
      let samples = gen_samples prng n in
      let q = Q.create () in
      Array.iter (Q.add q) samples;
      let sorted = Array.copy samples in
      Array.sort compare sorted;
      List.for_all
        (fun p ->
          let est = Q.quantile q p and ex = exact_quantile sorted p in
          Float.abs (est -. ex) /. ex <= Q.error_bound q *. 1.0001)
        percentiles)

(* two float totals accumulated in different orders agree only up to
   rounding; the bucket counts behind the quantiles carry no such caveat *)
let sum_close a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a)

(* merge(a, b) must be indistinguishable from one sketch that ingested
   the concatenation: identical count, extremes and every quantile
   readout, exactly — merge is bucket-wise integer addition. Only the
   running [sum] is float arithmetic, so it matches up to rounding. *)
let prop_merge_is_concat =
  QCheck.Test.make ~count:40
    ~name:"merge a b = ingest (a @ b), readouts exactly equal"
    QCheck.(triple small_int (int_range 0 2_000) (int_range 0 2_000))
    (fun (seed, na, nb) ->
      let prng = Prng.of_int seed in
      let xs = gen_samples prng na and ys = gen_samples prng nb in
      let a = Q.create () and b = Q.create () and whole = Q.create () in
      Array.iter (Q.add a) xs;
      Array.iter (Q.add b) ys;
      Array.iter (Q.add whole) xs;
      Array.iter (Q.add whole) ys;
      Q.merge ~into:a b;
      Q.count a = Q.count whole
      && sum_close (Q.sum a) (Q.sum whole)
      && List.for_all
           (fun p -> Q.quantile a p = Q.quantile whole p)
           ([ 0.; 100. ] @ percentiles))

(* the sketch is a pure fold over the sample multiset: permuting the
   ingest order changes nothing, and re-running it bit-reproduces — the
   property the Engine_vt golden tests lean on *)
let prop_deterministic =
  QCheck.Test.make ~count:40
    ~name:"readout deterministic and ingest-order independent"
    QCheck.(pair small_int (int_range 1 2_000))
    (fun (seed, n) ->
      let prng = Prng.of_int seed in
      let samples = gen_samples prng n in
      let q1 = Q.create () and q2 = Q.create () in
      Array.iter (Q.add q1) samples;
      (* reversed order into the second sketch *)
      for i = n - 1 downto 0 do
        Q.add q2 samples.(i)
      done;
      List.for_all
        (fun p -> Q.quantile q1 p = Q.quantile q2 p)
        ([ 0.; 100. ] @ percentiles)
      && sum_close (Q.sum q1) (Q.sum q2))

let () =
  Alcotest.run "ovs_quantiles"
    [
      ( "oracle",
        [
          Alcotest.test_case "empty sketch and exact extremes" `Quick
            empty_and_extremes;
          Alcotest.test_case "single value within bound" `Quick single_value;
          Alcotest.test_case "merge rejects mismatched geometry" `Quick
            merge_geometry_mismatch;
          Alcotest.test_case "reset clears state" `Quick reset_clears;
          Alcotest.test_case "100k-sample error bound" `Quick oracle_100k;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_oracle; prop_merge_is_concat; prop_deterministic ] );
    ]
