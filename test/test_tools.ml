(* Tests for the Table 1 tooling model. *)

module Tools = Ovs_tools.Tools
module Netdev = Ovs_netdev.Netdev

let check = Alcotest.check

let is_ok = Tools.is_ok

(* substring search helper *)
let str_search hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then raise Not_found
    else if String.sub hay i nl = needle then i
    else go (i + 1)
  in
  go 0

let contains hay needle =
  try ignore (str_search hay needle); true with Not_found -> false

let test_matrix_shape () =
  let m = Tools.compatibility_matrix () in
  check Alcotest.int "eight commands" 8 (List.length m);
  List.iter
    (fun (cmd, kernel, afxdp, dpdk) ->
      Alcotest.(check bool) (cmd ^ " works on kernel driver") true kernel;
      Alcotest.(check bool) (cmd ^ " works with AF_XDP (the paper's point)") true afxdp;
      Alcotest.(check bool) (cmd ^ " fails on DPDK") false dpdk)
    m

let test_ip_link_output () =
  let d = Netdev.create ~name:"eno1" ~mac:(Ovs_packet.Mac.of_string "02:01:02:03:04:05") () in
  match Tools.ip_link d with
  | Tools.Ok_output s -> Alcotest.(check bool) "mentions device" true (contains s "eno1")
  | Tools.Not_supported _ -> Alcotest.fail "should work"

let test_ip_link_set_state () =
  let d = Netdev.create ~name:"eno1" () in
  ignore (Tools.ip_link_set d ~up:false);
  Alcotest.(check bool) "down" false d.Netdev.up;
  ignore (Tools.ip_link_set d ~up:true);
  Alcotest.(check bool) "up" true d.Netdev.up

let test_ip_address_assignment () =
  let d = Netdev.create ~name:"eno1" () in
  let addr = Ovs_packet.Ipv4.addr_of_string "10.1.2.3" in
  ignore (Tools.ip_address_add d ~addr);
  check Alcotest.int "assigned" addr d.Netdev.ip_addr;
  match Tools.ip_address_show d with
  | Tools.Ok_output s -> Alcotest.(check bool) "shows address" true
      (contains s "10.1.2.3")
  | Tools.Not_supported _ -> Alcotest.fail "should work"

let test_dpdk_device_unusable () =
  let d = Netdev.create ~name:"dpdk0" ~driver:Netdev.Dpdk_driver () in
  (match Tools.ip_link d with
  | Tools.Not_supported msg ->
      Alcotest.(check bool) "error mentions userspace driver" true
        (contains msg "userspace")
  | Tools.Ok_output _ -> Alcotest.fail "dpdk device must be invisible");
  match Tools.nstat d with
  | Tools.Not_supported _ -> ()
  | Tools.Ok_output _ -> Alcotest.fail "nstat must fail too"

let test_route_longest_prefix_match () =
  let r = Tools.Route.create () in
  let ip = Ovs_packet.Ipv4.addr_of_string in
  Tools.Route.add r ~prefix:(ip "10.0.0.0") ~prefix_len:8 ~via:(ip "1.1.1.1") ~dev:"a";
  Tools.Route.add r ~prefix:(ip "10.1.0.0") ~prefix_len:16 ~via:(ip "2.2.2.2") ~dev:"b";
  (match Tools.Route.lookup r (ip "10.1.5.5") with
  | Some e -> check Alcotest.string "more specific wins" "b" e.Tools.Route.dev
  | None -> Alcotest.fail "no route");
  (match Tools.Route.lookup r (ip "10.9.9.9") with
  | Some e -> check Alcotest.string "falls to /8" "a" e.Tools.Route.dev
  | None -> Alcotest.fail "no route");
  Alcotest.(check bool) "no match outside" true (Tools.Route.lookup r (ip "11.0.0.1") = None)

let test_neigh_table () =
  let n = Tools.Neigh.create () in
  let ip = Ovs_packet.Ipv4.addr_of_string "10.0.0.9" in
  Tools.Neigh.learn n ~ip ~mac:(Ovs_packet.Mac.of_index 9);
  Alcotest.(check bool) "learned" true
    (Tools.Neigh.lookup n ip = Some (Ovs_packet.Mac.of_index 9))

let echo_responder (req : Ovs_packet.Buffer.t) =
  match Ovs_packet.Ethernet.parse req with
  | Some e when e.Ovs_packet.Ethernet.eth_type = Ovs_packet.Ethernet.Ethertype.arp -> begin
      match Ovs_packet.Arp.parse req with
      | Some a ->
          Some
            (Ovs_packet.Build.arp ~src_mac:(Ovs_packet.Mac.of_index 50)
               ~dst_mac:a.Ovs_packet.Arp.sha ~op:Ovs_packet.Arp.Op.reply
               ~spa:a.Ovs_packet.Arp.tpa ~tpa:a.Ovs_packet.Arp.spa ())
      | None -> None
    end
  | Some _ -> begin
      match Ovs_packet.Ipv4.parse req with
      | Some ip ->
          Some
            (Ovs_packet.Build.icmp ~src_ip:ip.Ovs_packet.Ipv4.dst
               ~dst_ip:ip.Ovs_packet.Ipv4.src
               ~icmp_type:Ovs_packet.Icmp.Kind.echo_reply ())
      | None -> None
    end
  | None -> None

let test_ping_success_and_failure () =
  let d = Netdev.create ~name:"eno1" () in
  let src_ip = Ovs_packet.Ipv4.addr_of_string "10.0.0.1" in
  let dst_ip = Ovs_packet.Ipv4.addr_of_string "10.0.0.2" in
  (match Tools.ping d ~src_ip ~dst_ip ~responder:echo_responder with
  | Tools.Ok_output s ->
      Alcotest.(check bool) "reports reply" true (contains s "64 bytes from")
  | Tools.Not_supported m -> Alcotest.failf "ping failed: %s" m);
  match Tools.ping d ~src_ip ~dst_ip ~responder:(fun _ -> None) with
  | Tools.Not_supported _ -> ()
  | Tools.Ok_output _ -> Alcotest.fail "unreachable host must fail"

let test_arping () =
  let d = Netdev.create ~name:"eno1" () in
  match
    Tools.arping d
      ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.1")
      ~dst_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.2")
      ~responder:echo_responder
  with
  | Tools.Ok_output s ->
      Alcotest.(check bool) "unicast reply" true (contains s "Unicast reply")
  | Tools.Not_supported m -> Alcotest.failf "arping failed: %s" m

let test_tcpdump_renders_queued_packets () =
  let d = Netdev.create ~name:"eno1" () in
  ignore (Netdev.enqueue_on d ~queue:0 (Ovs_packet.Build.udp ~src_port:1234 ()) : bool);
  match Tools.tcpdump d ~count:4 with
  | Tools.Ok_output s ->
      Alcotest.(check bool) "shows flow" true (contains s "udp")
  | Tools.Not_supported m -> Alcotest.failf "tcpdump failed: %s" m

let test_nstat_counts () =
  let d = Netdev.create ~name:"eno1" () in
  ignore (Netdev.enqueue_on d ~queue:0 (Ovs_packet.Build.udp ()) : bool);
  match Tools.nstat d with
  | Tools.Ok_output s ->
      Alcotest.(check bool) "rx counted" true (contains s "rx_packets 1")
  | Tools.Not_supported m -> Alcotest.failf "nstat failed: %s" m

let test_pcap_roundtrip () =
  let p1 = Ovs_packet.Build.udp ~src_port:1 () in
  let p2 = Ovs_packet.Build.tcp ~src_port:2 () in
  let b = Ovs_tools.Pcap.write [ (1_000_000_000., p1); (2_000_000_000., p2) ] in
  (* 24-byte global header, magic first *)
  check Alcotest.int "magic" 0xA1B2C3D4
    (Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF);
  match Ovs_tools.Pcap.read b with
  | [ (t1, d1); (t2, d2) ] ->
      check (Alcotest.float 1e4) "timestamp 1" 1_000_000_000. t1;
      check (Alcotest.float 1e4) "timestamp 2" 2_000_000_000. t2;
      check Alcotest.bytes "frame 1" (Ovs_packet.Buffer.contents p1) d1;
      check Alcotest.bytes "frame 2" (Ovs_packet.Buffer.contents p2) d2
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_tcpdump_pcap_capture () =
  let d = Netdev.create ~name:"cap0" () in
  ignore (Netdev.enqueue_on d ~queue:0 (Ovs_packet.Build.udp ()) : bool);
  ignore (Netdev.enqueue_on d ~queue:0 (Ovs_packet.Build.udp ()) : bool);
  (match Tools.tcpdump_pcap d ~now:0. ~count:8 with
  | Tools.Ok_output s ->
      let records = Ovs_tools.Pcap.read (Bytes.of_string s) in
      check Alcotest.int "both captured" 2 (List.length records);
      (* captured frames parse as real packets *)
      List.iter
        (fun (_, frame) ->
          let pkt = Ovs_packet.Buffer.of_bytes frame in
          Alcotest.(check bool) "valid ethernet" true
            (Ovs_packet.Ethernet.parse pkt <> None))
        records
  | Tools.Not_supported m -> Alcotest.failf "capture failed: %s" m);
  let dpdk = Netdev.create ~name:"dpdk0" ~driver:Netdev.Dpdk_driver () in
  match Tools.tcpdump_pcap dpdk ~now:0. ~count:8 with
  | Tools.Not_supported _ -> ()
  | Tools.Ok_output _ -> Alcotest.fail "dpdk capture must fail"

let () =
  ignore is_ok;
  Alcotest.run "ovs_tools"
    [
      ( "table1",
        [
          Alcotest.test_case "compatibility matrix" `Quick test_matrix_shape;
          Alcotest.test_case "dpdk device unusable" `Quick test_dpdk_device_unusable;
        ] );
      ( "commands",
        [
          Alcotest.test_case "ip link" `Quick test_ip_link_output;
          Alcotest.test_case "ip link set" `Quick test_ip_link_set_state;
          Alcotest.test_case "ip address" `Quick test_ip_address_assignment;
          Alcotest.test_case "ip route LPM" `Quick test_route_longest_prefix_match;
          Alcotest.test_case "ip neigh" `Quick test_neigh_table;
          Alcotest.test_case "ping" `Quick test_ping_success_and_failure;
          Alcotest.test_case "arping" `Quick test_arping;
          Alcotest.test_case "tcpdump" `Quick test_tcpdump_renders_queued_packets;
          Alcotest.test_case "nstat" `Quick test_nstat_counts;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "tcpdump -w" `Quick test_tcpdump_pcap_capture;
        ] );
    ]
