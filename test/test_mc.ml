(* The schedule explorer, tested at the tiny bound: the unmodified model
   survives exhaustive exploration; every seeded mutation is caught with
   a shrunk, replayable schedule; and replaying a violation's artifact
   reproduces the identical violation (same step index, same oracle) —
   the acceptance criteria of the mc subsystem, plus the mutation leg
   that proves the oracles actually bite. *)

module Mc = Ovs_mc.Mc

let test_tiny_exhaustive_clean () =
  let o = Mc.explore Mc.Tiny in
  Alcotest.(check bool) "schedules explored" true (o.Mc.o_explored > 0);
  Alcotest.(check bool) "POR pruned something" true (o.Mc.o_pruned > 0);
  match o.Mc.o_violation with
  | None -> ()
  | Some (v, _) ->
      Alcotest.failf "unmodified model violated: %s" (Fmt.str "%a" Mc.pp_violation v)

(* The reduction must only skip schedules equivalent to explored ones:
   with POR off, the full interleaving count of the tiny scripts
   (7!/(3!·1!·2!·1!) = 420) runs, and the verdict is the same. *)
let test_por_sound_at_tiny () =
  let full = Mc.explore ~por:false Mc.Tiny in
  let reduced = Mc.explore ~por:true Mc.Tiny in
  Alcotest.(check int) "full space size" 420 full.Mc.o_explored;
  Alcotest.(check bool) "reduction explores fewer" true
    (reduced.Mc.o_explored < full.Mc.o_explored);
  Alcotest.(check bool) "both clean" true
    (full.Mc.o_violation = None && reduced.Mc.o_violation = None)

let test_sampling_clean () =
  let o = Mc.sample ~seed:1234 ~n:50 Mc.Large in
  Alcotest.(check int) "50 schedules sampled" 50 o.Mc.o_explored;
  match o.Mc.o_violation with
  | None -> ()
  | Some (v, _) ->
      Alcotest.failf "unmodified model violated under sampling: %s"
        (Fmt.str "%a" Mc.pp_violation v)

let test_deterministic_rerun () =
  (* the same (mode, schedule) must yield the same verdict — the property
     replay artifacts rely on *)
  let sched = [| 0; 2; 2; 0; 1; 0; 3 |] in
  let a = Mc.run_schedule Mc.Tiny sched in
  let b = Mc.run_schedule Mc.Tiny sched in
  Alcotest.(check bool) "identical verdicts" true (a = b)

(* Every mutation is found within the tiny bound, the reported schedule
   is locally minimal, and its artifact replays to the identical
   violation. *)
let test_mutation name mutation () =
  let o = Mc.explore ~mutation Mc.Tiny in
  match o.Mc.o_violation with
  | None -> Alcotest.failf "mutation %s not caught at the tiny bound" name
  | Some (v, sched) ->
      (* shrunk: the violation fires at the schedule's last step *)
      Alcotest.(check int) "violation at last step" (Array.length sched - 1)
        v.Mc.v_step;
      (* locally minimal: no single-step removal keeps the same oracle *)
      let remove arr i =
        Array.append (Array.sub arr 0 i)
          (Array.sub arr (i + 1) (Array.length arr - i - 1))
      in
      for i = 0 to Array.length sched - 1 do
        match Mc.run_schedule ~mutation Mc.Tiny (remove sched i) with
        | Some v' when v'.Mc.v_oracle = v.Mc.v_oracle ->
            Alcotest.failf "not minimal: dropping step %d still violates %s" i
              (Mc.oracle_name v.Mc.v_oracle)
        | _ -> ()
      done;
      (* the replay artifact reproduces the identical violation *)
      let artifact =
        Mc.artifact_string ~mode:o.Mc.o_mode ~seed:o.Mc.o_seed
          ~mutation:o.Mc.o_mutation sched
      in
      (match Mc.parse_artifact artifact with
      | Error e -> Alcotest.failf "artifact does not parse: %s" e
      | Ok (mode, _seed, mut, sched') ->
          Alcotest.(check bool) "artifact round-trips" true
            (mode = o.Mc.o_mode && mut = o.Mc.o_mutation && sched' = sched));
      (match Mc.run_schedule ~mutation Mc.Tiny sched with
      | None -> Alcotest.failf "replay of %s found no violation" artifact
      | Some v' ->
          Alcotest.(check int) "same step index" v.Mc.v_step v'.Mc.v_step;
          Alcotest.(check string) "same oracle" (Mc.oracle_name v.Mc.v_oracle)
            (Mc.oracle_name v'.Mc.v_oracle);
          Alcotest.(check string) "same detail" v.Mc.v_detail v'.Mc.v_detail);
      (* and the appctl surface renders it *)
      match Ovs_tools.Tools.appctl ("mc/replay " ^ artifact) with
      | Ovs_tools.Tools.Ok_output s ->
          Alcotest.(check bool) "appctl replay reports the violation" true
            (Astring.String.is_infix ~affix:"VIOLATION" s)
      | Ovs_tools.Tools.Not_supported e ->
          Alcotest.failf "appctl mc/replay failed: %s" e

let test_artifact_errors () =
  let bad s =
    match Mc.parse_artifact s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "garbage rejected" true (bad "hello world");
  Alcotest.(check bool) "bad mode rejected" true
    (bad "mc1 mode=huge seed=0 mut=none sched=00");
  Alcotest.(check bool) "bad mutation rejected" true
    (bad "mc1 mode=tiny seed=0 mut=nonsense sched=00");
  Alcotest.(check bool) "bad schedule rejected" true
    (bad "mc1 mode=tiny seed=0 mut=none sched=zz");
  match Ovs_tools.Tools.appctl "mc/replay not an artifact" with
  | Ovs_tools.Tools.Not_supported _ -> ()
  | Ovs_tools.Tools.Ok_output s -> Alcotest.failf "accepted garbage: %s" s

(* Exhausted-script thread ids are no-op steps, so hand-edited or padded
   schedules still replay with stable step indices. *)
let test_noop_padding () =
  let base = [| 0; 2; 2; 0 |] in
  let padded = Array.append base [| 9; 9; 2; 2 |] in
  Alcotest.(check bool) "padded schedule still clean" true
    (Mc.run_schedule Mc.Tiny padded = None)

let () =
  Alcotest.run "ovs_mc"
    [
      ( "explorer",
        [
          Alcotest.test_case "tiny exhaustive is clean" `Quick
            test_tiny_exhaustive_clean;
          Alcotest.test_case "POR sound at tiny bound" `Quick
            test_por_sound_at_tiny;
          Alcotest.test_case "large-bound sampling clean" `Quick
            test_sampling_clean;
          Alcotest.test_case "deterministic rerun" `Quick
            test_deterministic_rerun;
          Alcotest.test_case "no-op padding replays" `Quick test_noop_padding;
        ] );
      ( "mutations",
        List.map
          (fun (name, mu) ->
            Alcotest.test_case ("catches " ^ name) `Quick
              (test_mutation name mu))
          Mc.mutations );
      ( "artifacts",
        [ Alcotest.test_case "malformed artifacts rejected" `Quick
            test_artifact_errors ] );
    ]
