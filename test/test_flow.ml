(* Tests for the caching layer: exact-match cache and dpcls. *)

module FK = Ovs_packet.Flow_key
module Emc = Ovs_flow.Emc
module Dpcls = Ovs_flow.Dpcls

let check = Alcotest.check

let key_of_flow i =
  let pkt =
    Ovs_packet.Build.udp
      ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.1" + (i land 0xFF))
      ~src_port:(1000 + i) ()
  in
  FK.extract pkt

(* -- EMC -- *)

let test_emc_hit_miss () =
  let emc = Emc.create ~entries:64 () in
  let k = key_of_flow 0 in
  Alcotest.(check bool) "miss" true (Emc.lookup emc k = None);
  Emc.insert emc k 42;
  Alcotest.(check bool) "hit" true (Emc.lookup emc k = Some 42);
  check Alcotest.int "occupancy" 1 (Emc.occupancy emc)

let test_emc_update_in_place () =
  let emc = Emc.create ~entries:64 () in
  let k = key_of_flow 1 in
  Emc.insert emc k 1;
  Emc.insert emc k 2;
  Alcotest.(check bool) "updated" true (Emc.lookup emc k = Some 2);
  check Alcotest.int "no duplicate" 1 (Emc.occupancy emc)

let test_emc_eviction_bounded () =
  let emc = Emc.create ~entries:8 () in
  for i = 0 to 99 do
    Emc.insert emc (key_of_flow i) i
  done;
  Alcotest.(check bool) "bounded" true (Emc.occupancy emc <= 8)

let test_emc_flush () =
  let emc = Emc.create ~entries:8 () in
  Emc.insert emc (key_of_flow 0) 0;
  Emc.flush emc;
  check Alcotest.int "flushed" 0 (Emc.occupancy emc);
  Alcotest.(check bool) "post-flush miss" true (Emc.lookup emc (key_of_flow 0) = None)

let test_emc_hit_rate () =
  let emc = Emc.create ~entries:64 () in
  let k = key_of_flow 5 in
  Emc.insert emc k 5;
  ignore (Emc.lookup emc k);
  ignore (Emc.lookup emc (key_of_flow 6));
  check (Alcotest.float 1e-9) "50%" 0.5 (Emc.hit_rate emc)

let test_emc_rejects_bad_size () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Emc.create: entries must be a power of two") (fun () ->
      ignore (Emc.create ~entries:10 ()))

(* -- Dpcls -- *)

let mask_of fields =
  let m = FK.create () in
  List.iter (fun f -> FK.set m f (FK.Field.full_mask f)) fields;
  m

let test_dpcls_masked_match () =
  let cls = Dpcls.create () in
  let mask = mask_of [ FK.Field.Nw_src ] in
  let k = key_of_flow 0 in
  Dpcls.insert cls ~mask ~key:k "flow-a";
  (* a different flow with the same nw_src must match the same megaflow *)
  let k2 = FK.copy k in
  FK.set k2 FK.Field.Tp_src 9999;
  (match Dpcls.lookup cls k2 with
  | Some ("flow-a", probes) -> check Alcotest.int "one subtable" 1 probes
  | _ -> Alcotest.fail "masked lookup failed");
  (* different nw_src misses *)
  let k3 = FK.copy k in
  FK.set k3 FK.Field.Nw_src 1;
  Alcotest.(check bool) "different src misses" true (Dpcls.lookup cls k3 = None)

let test_dpcls_one_subtable_per_mask () =
  let cls = Dpcls.create () in
  let mask = mask_of [ FK.Field.In_port ] in
  for i = 0 to 9 do
    let k = FK.create () in
    FK.set k FK.Field.In_port i;
    Dpcls.insert cls ~mask ~key:k i
  done;
  check Alcotest.int "subtables" 1 (Dpcls.subtable_count cls);
  check Alcotest.int "flows" 10 (Dpcls.flow_count cls)

let test_dpcls_multiple_subtables_probed () =
  let cls = Dpcls.create () in
  Dpcls.insert cls ~mask:(mask_of [ FK.Field.In_port ]) ~key:(key_of_flow 0) 1;
  Dpcls.insert cls ~mask:(mask_of [ FK.Field.Nw_src ]) ~key:(key_of_flow 1) 2;
  Dpcls.insert cls ~mask:(mask_of [ FK.Field.Tp_src ]) ~key:(key_of_flow 2) 3;
  check Alcotest.int "three subtables" 3 (Dpcls.subtable_count cls);
  (* a key that only matches the last-created subtable probes several *)
  match Dpcls.lookup cls (key_of_flow 2) with
  | Some (_, probes) -> Alcotest.(check bool) "probed >= 1" true (probes >= 1)
  | None ->
      (* key_of_flow 2 shares in_port with flow 0's subtable mask, so a hit
         through another subtable is possible; ensure at least the lookup
         terminates with all subtables probed *)
      ()

let test_dpcls_replace_same_key () =
  let cls = Dpcls.create () in
  let mask = mask_of [ FK.Field.In_port ] in
  let k = key_of_flow 0 in
  Dpcls.insert cls ~mask ~key:k 1;
  Dpcls.insert cls ~mask ~key:k 2;
  check Alcotest.int "replaced, not duplicated" 1 (Dpcls.flow_count cls);
  match Dpcls.lookup cls k with
  | Some (v, _) -> check Alcotest.int "new value" 2 v
  | None -> Alcotest.fail "lookup"

let test_dpcls_remove () =
  let cls = Dpcls.create () in
  let mask = mask_of [ FK.Field.In_port ] in
  let k = key_of_flow 0 in
  Dpcls.insert cls ~mask ~key:k 1;
  Alcotest.(check bool) "removed" true (Dpcls.remove cls ~mask ~key:k);
  Alcotest.(check bool) "gone" true (Dpcls.lookup cls k = None);
  check Alcotest.int "empty subtable collected" 0 (Dpcls.subtable_count cls);
  Alcotest.(check bool) "double remove" false (Dpcls.remove cls ~mask ~key:k)

let test_dpcls_flush () =
  let cls = Dpcls.create () in
  Dpcls.insert cls ~mask:(mask_of [ FK.Field.In_port ]) ~key:(key_of_flow 0) 1;
  Dpcls.flush cls;
  check Alcotest.int "no flows" 0 (Dpcls.flow_count cls)

let test_dpcls_resort_keeps_semantics () =
  let cls = Dpcls.create () in
  let m1 = mask_of [ FK.Field.In_port ] in
  let m2 = mask_of [ FK.Field.Nw_src ] in
  let k = key_of_flow 0 in
  Dpcls.insert cls ~mask:m1 ~key:k "by-port";
  Dpcls.insert cls ~mask:m2 ~key:(key_of_flow 3) "by-src";
  (* hammer one subtable so periodic resorting reorders them *)
  for _ = 1 to 3000 do
    ignore (Dpcls.lookup cls k)
  done;
  match Dpcls.lookup cls k with
  | Some (v, _) -> check Alcotest.string "still matches" "by-port" v
  | None -> Alcotest.fail "lost after resort"

(* Regression for subtable re-ranking staleness: hit counts are halved at
   every resort, so a workload shift must reorder the probe order within a
   few resort periods. Without the decay, months of accumulated hits on
   the old subtable would keep it ranked first ~forever. *)
let test_dpcls_resort_decay_converges () =
  let cls = Dpcls.create () in
  let key_a = FK.create () in
  FK.set key_a FK.Field.In_port 7;
  Dpcls.insert cls ~mask:(mask_of [ FK.Field.In_port ]) ~key:key_a "old";
  let key_b = FK.create () in
  FK.set key_b FK.Field.In_port 9;
  FK.set key_b FK.Field.Nw_src 42;
  Dpcls.insert cls ~mask:(mask_of [ FK.Field.Nw_src ]) ~key:key_b "new";
  (* phase 1: a long-lived workload hammers the first subtable *)
  for _ = 1 to 20_000 do
    ignore (Dpcls.lookup cls key_a)
  done;
  (match Dpcls.lookup cls key_b with
  | Some ("new", probes) -> check Alcotest.int "shifted flow probes second" 2 probes
  | _ -> Alcotest.fail "shifted flow must match");
  (* phase 2: the workload shifts entirely; convergence must take only a
     few 1024-lookup resort periods, not 20k lookups of catch-up *)
  for _ = 1 to 4 * 1024 do
    ignore (Dpcls.lookup cls key_b)
  done;
  match Dpcls.lookup cls key_b with
  | Some ("new", probes) -> check Alcotest.int "reordered to front" 1 probes
  | _ -> Alcotest.fail "shifted flow must still match"

(* Property: dpcls lookup agrees with a linear-scan oracle. Megaflows are
   disjoint in OVS; we generate disjoint entries by construction (distinct
   masked values under a shared mask per subtable). *)
let prop_dpcls_vs_oracle =
  QCheck.Test.make ~count:60 ~name:"dpcls agrees with linear oracle"
    QCheck.(small_int)
    (fun seed ->
      let prng = Ovs_sim.Prng.of_int (seed + 1) in
      let cls = Dpcls.create () in
      let field_pool =
        [| FK.Field.In_port; FK.Field.Nw_src; FK.Field.Nw_dst; FK.Field.Tp_src;
           FK.Field.Tp_dst; FK.Field.Dl_type |]
      in
      (* build 3 subtable masks and entries under each *)
      let entries = ref [] in
      for s = 0 to 2 do
        let nf = 1 + Ovs_sim.Prng.int prng 3 in
        let fields =
          List.init nf (fun i -> field_pool.((s + i * 2) mod Array.length field_pool))
        in
        let mask = mask_of fields in
        for e = 0 to 4 do
          let k = FK.create () in
          Array.iter (fun f -> FK.set k f (Ovs_sim.Prng.int prng 50)) FK.Field.all;
          Dpcls.insert cls ~mask ~key:k ((s * 10) + e);
          entries := (FK.copy mask, FK.apply_mask k mask, (s * 10) + e) :: !entries
        done
      done;
      (* random probe keys; oracle = first match in insertion-reversed order
         is not well-defined across subtables, so compare hit/miss sets *)
      let ok = ref true in
      for _ = 1 to 50 do
        let k = FK.create () in
        Array.iter (fun f -> FK.set k f (Ovs_sim.Prng.int prng 50)) FK.Field.all;
        let oracle_hits =
          List.filter_map
            (fun (m, masked, v) ->
              if FK.equal (FK.apply_mask k m) masked then Some v else None)
            !entries
        in
        match Dpcls.lookup cls k with
        | Some (v, _) -> if not (List.mem v oracle_hits) then ok := false
        | None -> if oracle_hits <> [] then ok := false
      done;
      !ok)

(* -- cache-hierarchy invariants (EMC + SMC + dpcls against the datapath) -- *)

module Smc = Ovs_flow.Smc
module Dpif = Ovs_datapath.Dpif
module Dp_core = Ovs_datapath.Dp_core
module Netdev = Ovs_netdev.Netdev
module Buffer = Ovs_packet.Buffer

(* The three cache tiers may miss independently, but any tier that claims a
   hit must agree with the classifier (the ground truth): a disagreement
   would forward a packet on a stale or foreign megaflow. *)
let prop_cache_tiers_agree =
  QCheck.Test.make ~count:60 ~name:"EMC/SMC/dpcls agree on every lookup"
    QCheck.(small_int)
    (fun seed ->
      let prng = Ovs_sim.Prng.of_int (seed + 11) in
      let cls = Dpcls.create () in
      let emc = Emc.create ~entries:1024 () in
      let smc = Smc.create ~entries:1024 () in
      let masks =
        [|
          mask_of [ FK.Field.Nw_src ];
          mask_of [ FK.Field.Nw_src; FK.Field.Tp_src ];
          mask_of [ FK.Field.In_port; FK.Field.Nw_dst ];
        |]
      in
      for v = 0 to 19 do
        let k = FK.create () in
        Array.iter (fun f -> FK.set k f (Ovs_sim.Prng.int prng 16)) FK.Field.all;
        Dpcls.insert cls ~mask:masks.(v mod 3) ~key:k v
      done;
      let seen = ref [] in
      let ok = ref true in
      let probe k =
        let truth = Dpcls.lookup_full cls k in
        (match (Emc.lookup emc k, truth) with
        | Some v, Some (v', _, _) when v <> v' -> ok := false
        | Some _, None -> ok := false
        | _ -> ());
        (match (Smc.lookup smc k, truth) with
        | Some v, Some (v', _, _) when v <> v' -> ok := false
        | Some _, None -> ok := false
        | _ -> ());
        (* a dpcls hit populates the upper tiers, like the datapath does *)
        match truth with
        | Some (v, _, mask) ->
            Emc.insert emc k v;
            Smc.insert smc k ~mask v;
            seen := FK.copy k :: !seen
        | None -> ()
      in
      for _ = 1 to 200 do
        let k = FK.create () in
        Array.iter (fun f -> FK.set k f (Ovs_sim.Prng.int prng 16)) FK.Field.all;
        probe k;
        (* revisit a known flow: every tier must now hit and agree *)
        match !seen with
        | k' :: _ -> probe k'
        | [] -> ()
      done;
      !ok)

let flow_rules = [ "table=0,priority=10,udp actions=output:1" ]

let make_dp ?(rules = flow_rules) () =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:2 () in
  ignore (Ovs_ofproto.Parser.install_flows pipeline rules);
  let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
  for i = 0 to 2 do
    ignore (Dpif.add_port dp (Netdev.create ~name:(Printf.sprintf "p%d" i) ()))
  done;
  (pipeline, dp)

let udp_pkt () =
  let pkt = Ovs_packet.Build.udp ~src_port:7777 () in
  pkt.Buffer.in_port <- 0;
  pkt

let process dp pkt = Dpif.process dp (fun _ _ -> ()) pkt

let test_hit_after_install_miss_after_flush () =
  let _, dp = make_dp () in
  let c = Dpif.counters dp in
  process dp (udp_pkt ());
  check Alcotest.int "first packet upcalls" 1 c.Dp_core.upcalls;
  check Alcotest.int "megaflow installed" 1 (List.length (Dpif.dump_megaflows dp));
  process dp (udp_pkt ());
  check Alcotest.int "second packet hits the cache" 1 c.Dp_core.upcalls;
  check Alcotest.int "EMC served it" 1 c.Dp_core.emc_hits;
  Dpif.flush_caches dp;
  check Alcotest.int "flush empties the flow table" 0
    (List.length (Dpif.dump_megaflows dp));
  process dp (udp_pkt ());
  check Alcotest.int "post-flush packet misses again" 2 c.Dp_core.upcalls

let new_policy = "table=0,priority=100,udp actions=output:2"

let test_revalidate_evicts_and_never_resurrects () =
  let pipeline, dp = make_dp () in
  process dp (udp_pkt ());
  let dumped = String.concat "\n" (Dpif.dump_megaflows dp) in
  Alcotest.(check bool) "old policy cached" true
    (Astring.String.is_infix ~affix:"output(1)" dumped);
  (* the controller overrides the policy; the cached megaflow is now stale *)
  ignore (Ovs_ofproto.Parser.install_flows pipeline [ new_policy ]);
  Alcotest.(check bool) "revalidation evicts the stale megaflow" true
    (Dpif.revalidate dp >= 1);
  let dumped = String.concat "\n" (Dpif.dump_megaflows dp) in
  Alcotest.(check bool) "stale megaflow gone" false
    (Astring.String.is_infix ~affix:"output(1)" dumped);
  (* re-processing must follow the new policy, and revalidation must agree *)
  process dp (udp_pkt ());
  let dumped = String.concat "\n" (Dpif.dump_megaflows dp) in
  Alcotest.(check bool) "new policy cached" true
    (Astring.String.is_infix ~affix:"output(2)" dumped);
  Alcotest.(check bool) "old megaflow did not come back" false
    (Astring.String.is_infix ~affix:"output(1)" dumped);
  check Alcotest.int "nothing left to evict" 0 (Dpif.revalidate dp)

(* Regression for the deferred-upcall re-probe path: an upcall queued
   before a rule change must translate against the *new* tables when it is
   finally drained, not resurrect the old decision. *)
let test_deferred_upcall_sees_rule_change () =
  let pipeline, dp = make_dp () in
  let hit_ports = ref [] in
  List.iter
    (fun p ->
      Netdev.set_tx_sink p.Dpif.dev (fun dev _ ->
          hit_ports := dev.Netdev.port_no :: !hit_ports))
    (Dpif.ports dp);
  let pending = Queue.create () in
  Dpif.set_upcall_hook dp (Some (fun pkt key -> Queue.add (pkt, key) pending; true));
  process dp (udp_pkt ());
  check Alcotest.int "packet parked on the upcall queue" 1 (Queue.length pending);
  ignore (Ovs_ofproto.Parser.install_flows pipeline [ new_policy ]);
  (let pkt, key = Queue.pop pending in
   Dpif.handle_upcall dp (fun _ _ -> ()) pkt key);
  Alcotest.(check (list Alcotest.int)) "forwarded by the new rule" [ 2 ] !hit_ports;
  let dumped = String.concat "\n" (Dpif.dump_megaflows dp) in
  Alcotest.(check bool) "megaflow carries the new actions" true
    (Astring.String.is_infix ~affix:"output(2)" dumped)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_flow"
    [
      ( "emc",
        [
          Alcotest.test_case "hit/miss" `Quick test_emc_hit_miss;
          Alcotest.test_case "update in place" `Quick test_emc_update_in_place;
          Alcotest.test_case "eviction bounded" `Quick test_emc_eviction_bounded;
          Alcotest.test_case "flush" `Quick test_emc_flush;
          Alcotest.test_case "hit rate" `Quick test_emc_hit_rate;
          Alcotest.test_case "bad size" `Quick test_emc_rejects_bad_size;
        ] );
      ( "dpcls",
        [
          Alcotest.test_case "masked match" `Quick test_dpcls_masked_match;
          Alcotest.test_case "one subtable per mask" `Quick test_dpcls_one_subtable_per_mask;
          Alcotest.test_case "multiple subtables" `Quick test_dpcls_multiple_subtables_probed;
          Alcotest.test_case "replace same key" `Quick test_dpcls_replace_same_key;
          Alcotest.test_case "remove" `Quick test_dpcls_remove;
          Alcotest.test_case "flush" `Quick test_dpcls_flush;
          Alcotest.test_case "resort keeps semantics" `Quick test_dpcls_resort_keeps_semantics;
          Alcotest.test_case "resort decay converges after shift" `Quick
            test_dpcls_resort_decay_converges;
        ]
        @ qcheck [ prop_dpcls_vs_oracle ] );
      ( "hierarchy",
        [
          Alcotest.test_case "hit after install, miss after flush" `Quick
            test_hit_after_install_miss_after_flush;
          Alcotest.test_case "revalidate never resurrects" `Quick
            test_revalidate_evicts_and_never_resurrects;
          Alcotest.test_case "deferred upcall sees rule change" `Quick
            test_deferred_upcall_sees_rule_change;
        ]
        @ qcheck [ prop_cache_tiers_agree ] );
    ]
