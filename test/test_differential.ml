(* Differential testing: the same seeded randomized traffic pushed through
   the kernel, eBPF, AF_XDP, PMD-style deferred-upcall and
   computational-cache datapaths, built from the same ruleset, must make
   identical per-packet forwarding decisions and end up with identical
   megaflow populations after revalidation. The ccache leg additionally retrains continually
   (autoretrain every 32 installs) and must keep exact per-tier hit
   accounting: every datapath pass lands in exactly one tier counter. *)

module FK = Ovs_packet.Flow_key
module Dpif = Ovs_datapath.Dpif
module Netdev = Ovs_netdev.Netdev
module Buffer = Ovs_packet.Buffer
module Build = Ovs_packet.Build
module Tunnel = Ovs_packet.Tunnel
module Ipv4 = Ovs_packet.Ipv4
module Prng = Ovs_sim.Prng

let n_packets = 10_000

(* -- randomized traffic scripts -- *)

(* A packet spec is generated once per ruleset from a seeded PRNG and then
   materialized independently for every datapath leg, so all legs see
   byte-identical input. *)
type spec = {
  proto : int;  (** 0 udp, 1 tcp, 2 icmp, 3 arp, 4 geneve-encapsulated udp *)
  src_ip : int;
  dst_ip : int;
  sport : int;
  dport : int;
  vni : int;
}

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let gen_spec prng =
  let src_ip =
    (* half inside 10.0.0.0/16, half outside *)
    ip 10 (if Prng.bool prng then 0 else 7) 3 (1 + Prng.int prng 8)
  in
  let dst_ip =
    (* half inside 10.0.1.0/24, half outside *)
    ip 10 0 (if Prng.bool prng then 1 else 9) (1 + Prng.int prng 8)
  in
  {
    proto = Prng.int prng 5;
    src_ip;
    dst_ip;
    sport = 1024 + Prng.int prng 32;
    dport = [| 53; 80; 443; 8080 |].(Prng.int prng 4);
    vni = (if Prng.bool prng then 5 else 9);
  }

let build_packet s =
  let pkt =
    match s.proto with
    | 0 -> Build.udp ~src_ip:s.src_ip ~dst_ip:s.dst_ip ~src_port:s.sport ~dst_port:s.dport ()
    | 1 -> Build.tcp ~src_ip:s.src_ip ~dst_ip:s.dst_ip ~src_port:s.sport ~dst_port:s.dport ()
    | 2 -> Build.icmp ~src_ip:s.src_ip ~dst_ip:s.dst_ip ()
    | 3 -> Build.arp ~spa:s.src_ip ~tpa:s.dst_ip ()
    | _ ->
        let inner =
          Build.udp ~src_ip:s.src_ip ~dst_ip:s.dst_ip ~src_port:s.sport
            ~dst_port:s.dport ()
        in
        Tunnel.encap inner Tunnel.Geneve ~vni:s.vni
          ~src_mac:(Ovs_packet.Mac.of_index 20)
          ~dst_mac:(Ovs_packet.Mac.of_index 21)
          ~src_ip:(ip 192 168 0 1) ~dst_ip:(ip 192 168 0 2) ();
        inner
  in
  pkt.Buffer.in_port <- 0;
  pkt

(* -- rulesets -- *)

let ruleset_plain =
  [
    "table=0,priority=100,udp,nw_dst=10.0.1.0/24 actions=output:1";
    "table=0,priority=90,tcp actions=output:2";
    "table=0,priority=50,nw_src=10.0.0.0/16 actions=output:3";
    "table=0,priority=10 actions=drop";
  ]

let ruleset_conntrack =
  [
    "table=0,priority=100,in_port=0,udp actions=ct(commit,zone=1,table=1)";
    "table=0,priority=90,in_port=0,tcp actions=ct(commit,zone=2,table=1)";
    "table=0,priority=10 actions=output:3";
    "table=1,priority=100,ct_state=+new+trk actions=output:1";
    "table=1,priority=90,ct_state=+est+trk actions=output:2";
    "table=1,priority=10 actions=drop";
  ]

let ruleset_tunnel =
  [
    "table=0,priority=100,udp,tp_dst=6081 actions=tnl_pop:1";
    "table=0,priority=10 actions=output:3";
    "table=1,priority=100,tun_id=5 actions=output:1";
    "table=1,priority=10 actions=output:2";
  ]

(* -- one leg: run the whole script through one datapath flavor -- *)

(* Rule installation is a closure over a fresh pipeline, so legs can be
   built from parsed flow strings or from the policy compiler's
   controller path alike. *)
let install_rules rules pipeline =
  ignore (Ovs_ofproto.Parser.install_flows pipeline rules)

(* Each processed packet yields the list of (output port, frame digest)
   transmissions it caused, in order; a dropped packet yields []. *)
let run_leg ~kind ~deferred_upcalls ?(ccache = false) ?(ccache_serves = true)
    ?(n_tables = 4) install specs =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables () in
  install pipeline;
  let dp = Dpif.create ~kind ~pipeline () in
  if ccache then begin
    Dpif.set_ccache_enabled dp true;
    (* retrain continually as the replay installs megaflows, so the tier
       actually serves lookups mid-script rather than only at the end
       (these rulesets compile to a few dozen megaflows, so keep the
       threshold small enough that training really happens) *)
    Dpif.set_ccache_autoretrain dp (Some 4)
  end;
  let devs = Array.init 4 (fun i -> Netdev.create ~name:(Printf.sprintf "p%d" i) ()) in
  Array.iter (fun d -> ignore (Dpif.add_port dp d)) devs;
  let current = ref [] in
  (* latency leg: every packet is stamped at build time, every
     transmission must find the stamp intact (recirculation, conntrack,
     tunnel decap and the deferred-upcall queue all reuse the buffer) and
     record exactly one sojourn sample — txs = sketch count at the end *)
  let txs = ref 0 in
  Array.iter
    (fun d ->
      Netdev.set_tx_sink d (fun dev pkt ->
          incr txs;
          Dpif.record_latency dp ~now:1e6 pkt;
          current :=
            (dev.Netdev.port_no, Hashtbl.hash (Buffer.contents pkt)) :: !current))
    devs;
  let pending = Queue.create () in
  if deferred_upcalls then
    (* PMD-style slow path: a full fast-path miss parks the packet on a
       bounded queue and a separate drain installs the megaflow *)
    Dpif.set_upcall_hook dp
      (Some (fun pkt key -> Queue.add (pkt, key) pending; true));
  let charge _cat _ns = () in
  let outputs =
    List.map
      (fun s ->
        current := [];
        let pkt = build_packet s in
        pkt.Buffer.birth_ns <- 1.;
        Dpif.process dp charge pkt;
        while not (Queue.is_empty pending) do
          let pkt, key = Queue.pop pending in
          Dpif.handle_upcall dp charge pkt key
        done;
        List.rev !current)
      specs
  in
  (* complete distribution: one sample per transmission, none lost through
     recirculation or the upcall retry path, none invented for drops *)
  Alcotest.(check int) "latency samples = transmitted packets" !txs
    (Ovs_sim.Quantiles.count (Dpif.latency dp));
  (* exact per-tier accounting: on a leg without deferred upcalls, every
     datapath pass ends in exactly one tier counter (or the slow path) *)
  if not deferred_upcalls then begin
    let c = (Dpif.counters dp : Ovs_datapath.Dp_core.counters) in
    let tiers =
      Ovs_datapath.Dp_core.(
        c.emc_hits + c.smc_hits + c.ccache_hits + c.dpcls_hits + c.upcalls)
    in
    Alcotest.(check int)
      "per-tier accounting: passes = emc + smc + ccache + dpcls + upcalls"
      c.Ovs_datapath.Dp_core.passes tiers;
    (* rulesets whose megaflows carry no range-indexable fields (e.g. pure
       ct_state/proto matches) put everything in the remainder, which stays
       in dpcls — zero ccache hits is the correct answer there *)
    if ccache && ccache_serves then
      Alcotest.(check bool)
        "computational cache served lookups" true
        (c.Ovs_datapath.Dp_core.ccache_hits > 0)
  end;
  (* the ccache must agree with dpcls on every key of the script *)
  if ccache then begin
    let keys = List.map (fun s -> FK.extract (build_packet s)) specs in
    Alcotest.(check int) "ccache/dpcls selfcheck disagreements" 0
      (Dpif.ccache_selfcheck dp keys)
  end;
  ignore (Dpif.revalidate dp);
  (* strip the per-megaflow stats before comparing populations: the kernel
     flavor has no EMC, so hit and cycle counters legitimately differ *)
  let strip line =
    match Astring.String.cut ~sep:", packets:" line with
    | None -> line
    | Some (head, rest) -> (
        match Astring.String.cut ~sep:", actions:" rest with
        | None -> head
        | Some (_stats, actions) -> head ^ " actions:" ^ actions)
  in
  let megaflows = List.sort compare (List.map strip (Dpif.dump_megaflows dp)) in
  (outputs, megaflows)

let legs =
  [
    ("kernel", Dpif.Kernel, false, false);
    ("ebpf", Dpif.Kernel_ebpf, false, false);
    ("afxdp", Dpif.Afxdp Dpif.afxdp_default, false, false);
    ("pmd-dpdk", Dpif.Dpdk, true, false);
    ("afxdp-ccache", Dpif.Afxdp Dpif.afxdp_default, false, true);
  ]

let differential ?(ccache_serves = true) ?n_tables ?oracle name install () =
  let prng = Prng.of_int 0xD1FF in
  let specs = List.init n_packets (fun _ -> gen_spec prng) in
  let results =
    List.map (fun (leg, kind, deferred_upcalls, ccache) ->
        ( leg,
          run_leg ~kind ~deferred_upcalls ~ccache ~ccache_serves ?n_tables
            install specs ))
      legs
  in
  (* tie the dataplane to a per-packet semantic oracle when one is given:
     the set of ports each packet leaves on must be exactly what the
     oracle predicts for that packet's flow key *)
  (match (oracle, results) with
  | Some oracle, (ref_leg, (ref_out, _)) :: _ ->
      List.iteri
        (fun i (s, out) ->
          let got = List.sort_uniq compare (List.map fst out) in
          let expected = oracle s in
          if got <> expected then
            Alcotest.failf "%s: packet %d of %s left on ports {%s}, oracle says {%s}"
              name i ref_leg
              (String.concat "," (List.map string_of_int got))
              (String.concat "," (List.map string_of_int expected)))
        (List.combine specs ref_out)
  | _ -> ());
  match results with
  | [] | [ _ ] -> Alcotest.fail "need at least two legs"
  | (ref_leg, (ref_out, ref_flows)) :: rest ->
      List.iter
        (fun (leg, (out, flows)) ->
          List.iteri
            (fun i (a, b) ->
              if a <> b then
                Alcotest.failf "%s: packet %d of %s forwarded differently (%s vs %s)"
                  name i leg
                  (String.concat ";" (List.map (fun (p, _) -> string_of_int p) a))
                  (String.concat ";" (List.map (fun (p, _) -> string_of_int p) b)))
            (List.combine ref_out out);
          Alcotest.(check (list string))
            (Printf.sprintf "%s: megaflows of %s match %s" name leg ref_leg)
            ref_flows flows)
        rest;
      (* sanity: the script must actually forward packets, not drop them all *)
      let forwarded = List.length (List.filter (fun o -> o <> []) ref_out) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: traffic forwarded (%d/%d)" name forwarded n_packets)
        true
        (forwarded > n_packets / 4)

(* -- mid-run reconfiguration leg: same script, but halfway through, the
      whole table set is replaced by a two-phase shadow swap
      ({!Dpif.swap_pipeline}) that reroutes udp traffic. Every leg swaps
      at the same packet index, so per-packet decisions must still agree
      across datapath flavors; the swap itself must be hitless — exact
      transmission conservation, and one latency sample per delivery. -- *)

(* same matches as [ruleset_plain], udp and tcp destinations exchanged *)
let ruleset_rerouted =
  [
    "table=0,priority=100,udp,nw_dst=10.0.1.0/24 actions=output:2";
    "table=0,priority=90,tcp actions=output:1";
    "table=0,priority=50,nw_src=10.0.0.0/16 actions=output:3";
    "table=0,priority=10 actions=drop";
  ]

let swap_at = n_packets / 2

let run_swap_leg ~kind ~deferred_upcalls specs =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:4 () in
  install_rules ruleset_plain pipeline;
  let dp = Dpif.create ~kind ~pipeline () in
  let devs =
    Array.init 4 (fun i -> Netdev.create ~name:(Printf.sprintf "s%d" i) ())
  in
  Array.iter (fun d -> ignore (Dpif.add_port dp d)) devs;
  let current = ref [] and txs = ref 0 in
  Array.iter
    (fun d ->
      Netdev.set_tx_sink d (fun dev pkt ->
          incr txs;
          Dpif.record_latency dp ~now:1e6 pkt;
          current :=
            (dev.Netdev.port_no, Hashtbl.hash (Buffer.contents pkt)) :: !current))
    devs;
  let pending = Queue.create () in
  if deferred_upcalls then
    Dpif.set_upcall_hook dp
      (Some (fun pkt key -> Queue.add (pkt, key) pending; true));
  let charge _cat _ns = () in
  let outputs =
    List.mapi
      (fun i s ->
        if i = swap_at then begin
          (* the two-phase cutover, mid-script: complete shadow, then one
             pointer swap; stale megaflows are revalidated away inside *)
          let shadow, _mods =
            Ovs_ofproto.Reconfig.build_shadow ~like:(Dpif.pipeline dp)
              ruleset_rerouted
          in
          ignore (Dpif.swap_pipeline dp shadow)
        end;
        current := [];
        let pkt = build_packet s in
        pkt.Buffer.birth_ns <- 1.;
        Dpif.process dp charge pkt;
        while not (Queue.is_empty pending) do
          let pkt, key = Queue.pop pending in
          Dpif.handle_upcall dp charge pkt key
        done;
        List.rev !current)
      specs
  in
  Alcotest.(check int) "swap leg: latency samples = transmitted packets" !txs
    (Ovs_sim.Quantiles.count (Dpif.latency dp));
  (* hitless: every packet of the script is either transmitted or an
     explicit counted drop — the swap opens no loss window *)
  let c = (Dpif.counters dp : Ovs_datapath.Dp_core.counters) in
  let forwarded = List.length (List.filter (fun o -> o <> []) outputs) in
  Alcotest.(check int) "swap leg: conservation across the cutover" n_packets
    (forwarded + c.Ovs_datapath.Dp_core.dropped);
  ignore (Dpif.revalidate dp);
  outputs

let reconfig_differential () =
  let prng = Prng.of_int 0xD1FF in
  let specs = List.init n_packets (fun _ -> gen_spec prng) in
  let legs =
    [
      ("kernel", Dpif.Kernel, false);
      ("afxdp", Dpif.Afxdp Dpif.afxdp_default, false);
      ("pmd-dpdk", Dpif.Dpdk, true);
    ]
  in
  let results =
    List.map
      (fun (leg, kind, deferred_upcalls) ->
        (leg, run_swap_leg ~kind ~deferred_upcalls specs))
      legs
  in
  (* the swap's semantics, per packet: udp to 10.0.1.0/24 leaves on port 1
     before the cutover and port 2 after it, on every leg *)
  List.iter
    (fun (leg, out) ->
      List.iteri
        (fun i (s, o) ->
          if s.proto = 0 && s.dst_ip land 0xFFFFFF00 = ip 10 0 1 0 then begin
            let expected = if i < swap_at then 1 else 2 in
            match o with
            | [ (port, _) ] when port = expected -> ()
            | _ ->
                Alcotest.failf
                  "reconfig: packet %d of %s should leave on port %d %s the \
                   swap"
                  i leg expected
                  (if i < swap_at then "before" else "after")
          end)
        (List.combine specs out))
    results;
  match results with
  | (ref_leg, ref_out) :: rest ->
      List.iter
        (fun (leg, out) ->
          List.iteri
            (fun i (a, b) ->
              if a <> b then
                Alcotest.failf
                  "reconfig: packet %d of %s forwarded differently from %s" i
                  leg ref_leg)
            (List.combine ref_out out))
        rest
  | [] -> Alcotest.fail "need legs"

(* -- compiled policies as legs: the policy compiler's controller-path
      output pushed through every datapath flavor, with Policy.eval as
      the per-packet oracle -- *)

module Policy = Ovs_policy.Policy
module Compile = Ovs_policy.Compile

let policy_differential name p =
  let c = Compile.compile p in
  let install pipeline =
    let conn = Ovs_ofproto.Ofconn.create ~pipeline () in
    Compile.install c conn
  in
  let oracle s =
    let key = FK.extract (build_packet s) in
    Policy.eval p key
    |> List.map (fun k -> FK.get k FK.Field.In_port)
    |> List.sort_uniq compare
  in
  (* policy tables carry no range-indexable megaflow fields the ccache
     trains on, so zero ccache hits is the correct answer *)
  differential ~ccache_serves:false ~n_tables:(max 2 c.Compile.n_tables)
    ~oracle name install

let () =
  Alcotest.run "ovs_differential"
    [
      ( "forwarding",
        [
          Alcotest.test_case "plain L3/L4 ruleset" `Quick
            (differential "plain" (install_rules ruleset_plain));
          Alcotest.test_case "conntrack ruleset" `Quick
            (differential ~ccache_serves:false "conntrack"
               (install_rules ruleset_conntrack));
          Alcotest.test_case "tunnel ruleset" `Quick
            (differential "tunnel" (install_rules ruleset_tunnel));
          Alcotest.test_case "mid-run table swap" `Quick reconfig_differential;
          Alcotest.test_case "compiled policy: fat-union4" `Quick
            (policy_differential "policy-fat-union4" Ovs_policy.Catalog.fat_union4);
          Alcotest.test_case "compiled policy: star2" `Quick
            (policy_differential "policy-star2" Ovs_policy.Catalog.star2);
        ] );
    ]
