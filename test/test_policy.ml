(* Tests for lib/policy: the mask-aware predicate algebra (QCheck laws:
   intersect/complement membership, refinement disjointness + cover,
   sample soundness and small-domain completeness), the compiler against
   the denotational semantics on concrete keys, the symbolic equivalence
   checker on the whole catalog ladder, and the mutation-testing leg —
   every seeded compiler bug must be caught with a counterexample packet
   that concretely diverges. *)

module FK = Ovs_packet.Flow_key
module Masked = Ovs_nmu.Iset.Masked
module Policy = Ovs_policy.Policy
module Compile = Ovs_policy.Compile
module Check = Ovs_policy.Check
module Catalog = Ovs_policy.Catalog
module Prng = Ovs_sim.Prng

let check = Alcotest.check

(* -- the Masked algebra -- *)

let full16 = 0xFFFF

let gen_test =
  QCheck.map
    (fun (v, m) -> Masked.make ~value:v ~mask:(m land full16))
    QCheck.(pair (int_bound full16) (int_bound full16))

let prop_inter_membership =
  QCheck.Test.make ~count:500 ~name:"inter = conjunction of memberships"
    QCheck.(triple gen_test gen_test (int_bound full16))
    (fun (a, b, v) ->
      let both = Masked.mem v a && Masked.mem v b in
      match Masked.inter a b with
      | Some i -> Masked.mem v i = both
      | None -> not both)

let prop_complement_membership =
  QCheck.Test.make ~count:500 ~name:"complement region = negated membership"
    QCheck.(pair gen_test (int_bound full16))
    (fun (a, v) ->
      match Masked.complement ~full:full16 a with
      | Some r -> Masked.region_mem v r = not (Masked.mem v a)
      | None -> Masked.is_always a)

let prop_implies =
  QCheck.Test.make ~count:500 ~name:"implies is membership containment"
    QCheck.(triple gen_test gen_test (int_bound full16))
    (fun (a, b, v) ->
      QCheck.assume (Masked.implies a b);
      (not (Masked.mem v a)) || Masked.mem v b)

let prop_refine_partition =
  QCheck.Test.make ~count:200 ~name:"refine is a disjoint cover"
    QCheck.(pair (list_of_size Gen.(int_range 0 5) gen_test) (int_bound full16))
    (fun (atoms, v) ->
      let regions = Masked.refine ~full:full16 atoms in
      (* every value lies in exactly one region, and every atom is
         constant on the region containing it *)
      let homes = List.filter (Masked.region_mem v) regions in
      List.length homes = 1
      &&
      let r = List.hd homes in
      List.for_all
        (fun a -> Masked.mem v a = Masked.mem r.Masked.r_rep a)
        atoms)

let prop_sample_sound_complete =
  (* small domain: brute force decides emptiness exactly *)
  let full8 = 0xFF in
  let gen_test8 =
    QCheck.map
      (fun (v, m) -> Masked.make ~value:v ~mask:(m land full8))
      QCheck.(pair (int_bound full8) (int_bound full8))
  in
  QCheck.Test.make ~count:300 ~name:"sample is sound and complete (8-bit)"
    QCheck.(pair gen_test8 (list_of_size Gen.(int_range 0 4) gen_test8))
    (fun (pos, negs) ->
      let witness = ref None in
      for v = 0 to full8 do
        if !witness = None && Masked.mem v pos
           && List.for_all (fun n -> not (Masked.mem v n)) negs
        then witness := Some v
      done;
      match Masked.sample ~full:full8 pos negs with
      | Some v ->
          Masked.mem v pos && List.for_all (fun n -> not (Masked.mem v n)) negs
      | None -> !witness = None)

(* -- concrete keys from the catalog universe -- *)

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let random_key prng =
  let key = FK.create () in
  let pick l = List.nth l (Prng.int prng (List.length l)) in
  FK.set key FK.Field.In_port (Prng.int prng 4);
  FK.set key FK.Field.Nw_proto (pick [ 1; 6; 17 ]);
  FK.set key FK.Field.Nw_tos (pick [ 0; 7; 46 ]);
  FK.set key FK.Field.Nw_src
    (pick [ ip 10 0 3 1; ip 10 7 3 2; ip 192 168 0 1 ]);
  FK.set key FK.Field.Nw_dst
    (pick [ ip 10 0 1 1; ip 10 0 9 2; ip 8 8 8 8 ]);
  FK.set key FK.Field.Tp_src (pick [ 0; 1; 53; 1024; 1025; 4096 ]);
  FK.set key FK.Field.Tp_dst
    (pick [ 0; 53; 80; 443; 444; 5353; 8080; Prng.int prng 65536 ]);
  key

(* the policy-side oracle in the same normal form as
   Check.concrete_emissions: (port, key with metadata zeroed) *)
let eval_emissions p key =
  Policy.eval p key
  |> List.map (fun k -> (FK.get k FK.Field.In_port, k))
  |> List.sort_uniq compare

let translate_emissions pipeline key =
  Check.concrete_emissions pipeline key |> List.sort_uniq compare

(* -- compiled-vs-eval on concrete keys, whole catalog -- *)

let test_compile_matches_eval () =
  let prng = Prng.of_int 0x90110 in
  List.iter
    (fun (name, _, p) ->
      let _, pipeline = Compile.pipeline_of p in
      for i = 1 to 500 do
        let key = random_key prng in
        let expected = eval_emissions p key in
        let got = translate_emissions pipeline key in
        if expected <> got then
          Alcotest.failf "%s: key %d (%s): eval %d emissions, compiled %d"
            name i (Check.render_key key) (List.length expected)
            (List.length got)
      done)
    Catalog.entries

(* -- the symbolic checker proves the ladder -- *)

let test_ladder_proved () =
  List.iter
    (fun (name, _, p) ->
      let _, pipeline = Compile.pipeline_of p in
      match Check.check ~ports:Catalog.ports p pipeline with
      | Check.Proved cubes ->
          check Alcotest.bool (name ^ ": proved over >0 cubes") true (cubes > 0)
      | Check.Divergent d ->
          Alcotest.failf "%s diverges:\n%s" name (Check.render_divergence d))
    Catalog.entries

(* -- every seeded compiler mutation is caught, and the counterexample
      concretely diverges -- *)

let test_mutations_caught () =
  List.iter
    (fun (mutation, pname) ->
      let mname = Compile.mutation_name mutation in
      let p =
        match Catalog.find pname with
        | Some p -> p
        | None -> Alcotest.failf "unknown catalog policy %s" pname
      in
      let _, pipeline = Compile.pipeline_of ~mutation p in
      match Check.check ~ports:Catalog.ports p pipeline with
      | Check.Proved _ ->
          Alcotest.failf "mutation %s on %s not caught" mname pname
      | Check.Divergent d ->
          (* the counterexample must really diverge: independent concrete
             evaluation of both sides on the returned packet *)
          let expected = eval_emissions p d.Check.d_key in
          let got = translate_emissions pipeline d.Check.d_key in
          if expected = got then
            Alcotest.failf
              "mutation %s on %s: counterexample does not diverge (%s)" mname
              pname
              (Check.render_key d.Check.d_key))
    Catalog.mutation_cases

(* an unmutated compile of every mutation-leg policy still proves, so
   the catches above are the mutation's doing *)
let test_mutation_policies_baseline () =
  List.iter
    (fun (_, pname) ->
      let p = Option.get (Catalog.find pname) in
      let _, pipeline = Compile.pipeline_of p in
      match Check.check ~ports:Catalog.ports p pipeline with
      | Check.Proved _ -> ()
      | Check.Divergent d ->
          Alcotest.failf "baseline %s diverges:\n%s" pname
            (Check.render_divergence d))
    Catalog.mutation_cases

(* -- the controller path really carried the rules -- *)

let test_install_path () =
  let c, pipeline = Compile.pipeline_of Catalog.fat_union4 in
  check Alcotest.int "all rules survived the FLOW_MOD wire round-trip"
    (List.length c.Compile.rules)
    (Ovs_ofproto.Pipeline.flow_count pipeline);
  check Alcotest.bool "multi-table layout" true (c.Compile.n_tables >= 5)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_policy"
    [
      ( "masked-algebra",
        qcheck
          [
            prop_inter_membership;
            prop_complement_membership;
            prop_implies;
            prop_refine_partition;
            prop_sample_sound_complete;
          ] );
      ( "compiler",
        [
          Alcotest.test_case "compiled = eval on concrete keys" `Quick
            test_compile_matches_eval;
          Alcotest.test_case "controller install path" `Quick test_install_path;
        ] );
      ( "checker",
        [
          Alcotest.test_case "ladder proved equivalent" `Quick test_ladder_proved;
          Alcotest.test_case "mutations caught with diverging counterexamples"
            `Quick test_mutations_caught;
          Alcotest.test_case "mutation policies prove unmutated" `Quick
            test_mutation_policies_baseline;
        ] );
    ]
