(* Golden tests for the appctl text surfaces: pmd-stats-show,
   dpif/cache-hierarchy-show, dpif/health-show and fault/list rendered
   from one small deterministic fixture and compared against the exact
   expected text, so formatting drift is caught instead of silently
   shipped. The simulator is deterministic (virtual clock, seeded PRNGs),
   so these strings are stable across runs and machines; if you change a
   renderer on purpose, update the goldens here to match. *)

module Dpif = Ovs_datapath.Dpif
module Pmd = Ovs_datapath.Pmd
module Health = Ovs_datapath.Health
module Faults = Ovs_faults.Faults
module Scenario = Ovs_trafficgen.Scenario
module Pktgen = Ovs_trafficgen.Pktgen
module Netdev = Ovs_netdev.Netdev
module Time = Ovs_sim.Time
module Tools = Ovs_tools.Tools

(* The mc explorer's small model: AF_XDP with a shrunken umem, 2 PMDs x
   2 rxqs, 16 preloaded packets polled and drained once, one fault tick
   inside the umem-leak window, one health sweep. *)
let fixture () =
  let opts = { Dpif.afxdp_default with Dpif.frames_per_queue = 128 } in
  let cfg =
    Scenario.config ~kind:(Dpif.Afxdp opts) ~n_flows:8 ~queues:2 ~n_pmds:2
      ~n_rxqs:2 ~trace:true ()
  in
  let rig = Scenario.setup cfg in
  let rt =
    match rig.Scenario.r_rt with Some rt -> rt | None -> assert false
  in
  let health = Health.create ~dp:rig.Scenario.r_dp ~rt () in
  Faults.arm
    (Faults.plan ~name:"golden" ~seed:7
       [
         {
           Faults.f_name = "leak";
           f_action = Faults.Umem_leak { frames = 32 };
           f_start = Time.us 50.;
           f_stop = Time.us 150.;
         };
         {
           Faults.f_name = "storm";
           f_action = Faults.Upcall_storm;
           f_start = Time.us 150.;
           f_stop = Time.us 1000.;
         };
       ]);
  for _ = 1 to 16 do
    ignore
      (Netdev.rss_enqueue rig.Scenario.r_phy0 (Pktgen.next rig.Scenario.r_gen))
  done;
  ignore (Faults.tick (Time.us 100.));
  List.iter
    (fun pmd ->
      List.iter
        (fun rxq -> ignore (Pmd.step_poll rt pmd rxq))
        (Pmd.rxqs_of pmd);
      Pmd.step_retry rt pmd;
      Pmd.step_drain rt pmd)
    (Pmd.pmds rt);
  ignore (Health.check health ~now:(Time.us 100.));
  (rig, rt, health)

let golden name expected actual =
  Alcotest.(check string) (name ^ " output matches golden") (String.trim expected)
    (String.trim actual)

let with_fixture f () =
  let rig, rt, health = fixture () in
  Fun.protect ~finally:Faults.disarm (fun () -> f rig rt health)

let appctl_ok cmd = function
  | Tools.Ok_output s -> s
  | Tools.Not_supported e -> Alcotest.failf "%s unsupported: %s" cmd e

let test_pmd_stats _rig rt _health =
  golden "dpif-netdev/pmd-stats-show"
    {|pmd thread numa_id 0 core_id 0:
  packets received: 9
  emc hits: 0
  smc hits: 0
  megaflow hits: 8
  miss with success upcall: 1
  miss with failed upcall: 0
  avg cycles per packet: 3126 (28136/9)
  idle cycles: 971864 (97.19%)
  processing cycles: 28136 (2.81%)
pmd thread numa_id 0 core_id 1:
  packets received: 7
  emc hits: 4
  smc hits: 0
  megaflow hits: 3
  miss with success upcall: 0
  miss with failed upcall: 0
  avg cycles per packet: 207 (1449/7)
  idle cycles: 998551 (99.86%)
  processing cycles: 1449 (0.14%)|}
    (Tools.pmd_stats_show (Pmd.reports ~wall:(Time.ms 1.) rt))

let test_cache_hierarchy rig _rt _health =
  golden "dpif/cache-hierarchy-show"
    {|cache hierarchy: 16 packets, 16 datapath passes
  tier             hits     hit%     cycles/hit
  emc                 4    25.0%           27.0
  smc                 0     0.0%            0.0
  ccache              0     0.0%            0.0
  dpcls              11    68.8%           30.0
  upcall              1     6.2%
  dpcls: 1 subtables, 1 megaflows, 0.52 mean probes/lookup
  ccache: absent (never enabled)|}
    (appctl_ok "dpif/cache-hierarchy-show"
       (Tools.appctl ~dp:rig.Scenario.r_dp "dpif/cache-hierarchy-show"))

let test_health_show _rig _rt health =
  golden "dpif/health-show"
    {|health: DEGRADED
  pmd0: alive, 0 restarts, rx 9, lost 0, retried 0
  pmd1: alive, 0 restarts, rx 7, lost 0, retried 0
  port 0 (eth0): carrier up, pending 0, rx_dropped 0, umem 160 free / 32 leaked
  port 1 (eth1): carrier up, pending 0, rx_dropped 0, umem 192 free / 0 leaked
  recoveries: 0 (repairs 0)
  unhealthy for 0.0 ns|}
    (appctl_ok "dpif/health-show" (Tools.appctl ~health "dpif/health-show"))

(* latency-show renders from the datapath's sojourn sketch; the fixture
   never arms latency measurement, so the empty surface is the honest
   first golden, and a handful of hand-fed samples pin the table *)
let test_latency_show_empty rig _rt _health =
  golden "dpif/latency-show (empty)"
    {|per-packet sojourn (ns): 0 samples, +/-1% per quantile
  (empty: run traffic with latency measurement armed)|}
    (appctl_ok "dpif/latency-show"
       (Tools.appctl ~dp:rig.Scenario.r_dp "dpif/latency-show"))

let test_latency_show rig _rt _health =
  let q = Dpif.latency rig.Scenario.r_dp in
  List.iter
    (Ovs_sim.Quantiles.add q)
    [ 800.; 1_000.; 1_000.; 1_200.; 5_000.; 25_000.; 90_000.; 1_000_000. ];
  golden "dpif/latency-show"
    {|per-packet sojourn (ns): 8 samples, +/-1% per quantile
  stat               ns
  mean         140500.0
  min             800.0
  p50            1205.4
  p95         1005514.1
  p99         1005514.1
  p999        1005514.1
  max         1000000.0|}
    (appctl_ok "dpif/latency-show"
       (Tools.appctl ~dp:rig.Scenario.r_dp "dpif/latency-show"))

(* revalidator-show: the fixture never arms the revalidator, so the
   disabled surface is the honest first golden; the populated one drives
   a tiny standalone datapath through one full megaflow lifecycle —
   install, dirty on a rule add, re-translate, evict, re-install *)
let test_revalidator_show_empty rig _rt _health =
  golden "dpif/revalidator-show (disabled)"
    {|revalidator: disabled (arm with set_revalidator_enabled)|}
    (appctl_ok "dpif/revalidator-show"
       (Tools.appctl ~dp:rig.Scenario.r_dp "dpif/revalidator-show"))

let test_revalidator_show () =
  let module Pipeline = Ovs_ofproto.Pipeline in
  let module Match_ = Ovs_ofproto.Match_ in
  let module FK = Ovs_packet.Flow_key in
  let pipeline = Pipeline.create ~n_tables:1 () in
  Pipeline.add_flow pipeline ~table:0 ~priority:0 (Match_.catchall ())
    [ Ovs_ofproto.Action.Output 1 ];
  let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
  ignore (Dpif.add_port dp (Netdev.create ~name:"rv0" ()));
  ignore (Dpif.add_port dp (Netdev.create ~name:"rv1" ()));
  Dpif.set_revalidator_enabled dp true;
  let pkt () =
    let p =
      Ovs_packet.Build.udp ~src_ip:0x0A000002 ~dst_ip:0x0A000001
        ~src_port:1111 ~dst_port:2222 ()
    in
    p.Ovs_packet.Buffer.in_port <- 0;
    p
  in
  let charge _ _ = () in
  Dpif.process dp charge (pkt ());
  (* a higher-priority drop rule steals the megaflow's lookup: the sweep
     must mark it dirty, re-translate, and evict the stale entry *)
  Pipeline.add_flow pipeline ~table:0 ~priority:100
    (Match_.with_field (Match_.catchall ()) FK.Field.Nw_dst 0x0A000001)
    [];
  ignore (Dpif.revalidate_incremental dp);
  Dpif.process dp charge (pkt ());
  golden "dpif/revalidator-show"
    {|revalidator: enabled
  megaflows tracked: 1
  sweeps: 1
  rules added: 1, removed: 0 (diffed against snapshot)
  dirty: 1, re-translated: 1, evicted: 1|}
    (appctl_ok "dpif/revalidator-show"
       (Tools.appctl ~dp "dpif/revalidator-show"))

let test_fault_list _rig _rt _health =
  golden "fault/list"
    {|plan "golden" (seed 7) at 100.00 us:
  leak: umem_leak frames=32 window [50.00 us, 150.00 us]  fired 32
  storm: upcall_storm window [150.00 us, 1.00 ms]  fired 0|}
    (appctl_ok "fault/list" (Tools.appctl "fault/list"))

(* upgrade-show: a process that never cut over renders the honest empty
   surface; a report from a finished swap pins the full rendering *)
let test_upgrade_show_none () =
  golden "dpif/upgrade-show (none)"
    {|upgrade: none performed (run a swap through the reconfig rig first)|}
    (appctl_ok "dpif/upgrade-show" (Tools.appctl "dpif/upgrade-show"))

let test_upgrade_show () =
  let module Reconfig = Ovs_ofproto.Reconfig in
  let report =
    {
      Reconfig.up_style = Reconfig.Two_phase;
      up_leg = "DPDK";
      up_shadow_rules = 3;
      up_flow_mods = 3;
      up_evicted = 1;
      up_upcall_burst = 1;
      up_offered = 18944;
      up_delivered = 18944;
      up_lost = 0;
      up_recovery_ns = 48340.;
    }
  in
  golden "dpif/upgrade-show"
    {|upgrade: two-phase cutover on DPDK
  shadow rules: 3 (3 flow_mods on the wire)
  invalidation storm: 1 megaflows evicted, 1 upcalls
  window: offered 18944 delivered 18944 lost 0
  time to recovery: 48340 ns|}
    (appctl_ok "dpif/upgrade-show"
       (Tools.appctl ~upgrade:report "dpif/upgrade-show"))

(* churn-apply: a one-table standalone datapath, a two-op plan committed
   as OVSDB rows and applied through the monitor; the live surface
   reports exactly what travelled the wire and what the classifier holds *)
let churn_dp () =
  let module Pipeline = Ovs_ofproto.Pipeline in
  let pipeline = Pipeline.create ~n_tables:1 () in
  Pipeline.add_flow pipeline ~table:0 ~priority:0
    (Ovs_ofproto.Match_.catchall ())
    [ Ovs_ofproto.Action.Output 1 ];
  let dp = Dpif.create ~kind:Dpif.Dpdk ~pipeline () in
  ignore (Dpif.add_port dp (Netdev.create ~name:"ca0" ()));
  ignore (Dpif.add_port dp (Netdev.create ~name:"ca1" ()));
  dp

let test_churn_apply () =
  golden "ovsdb/churn-apply"
    {|applied 2 ops from 2 OVSDB rows (2 flow_mods, 0 errors); 1 rules now installed, 0 megaflows revalidated away|}
    (appctl_ok "ovsdb/churn-apply"
       (Tools.appctl ~dp:(churn_dp ())
          "ovsdb/churn-apply @0 insert \
           table=0,priority=10,udp,actions=output:1\n\
           @0.001 delete table=0,udp"))

let test_churn_apply_no_dp () =
  match Tools.appctl "ovsdb/churn-apply @0 insert table=0,actions=output:1" with
  | Tools.Not_supported e ->
      golden "ovsdb/churn-apply (no datapath)"
        {|ovsdb/churn-apply @0 insert table=0,actions=output:1: no datapath supplied|}
        e
  | Tools.Ok_output _ ->
      Alcotest.fail "churn-apply without a datapath should be unsupported"

(* policy/show + policy/check need no datapath fixture: the catalog,
   the compiler and the checker are all deterministic pure code *)
let test_policy_show () =
  golden "policy/show chain3"
    {|policy chain3: 3-step filter chain
  filter nw_dst=10.0.1.0/24; filter tp_dst=53; fwd(1)
compiled: 2 tables, 1 paths, 4 rules|}
    (appctl_ok "policy/show" (Tools.appctl "policy/show chain3"))

let test_policy_check () =
  golden "policy/check chain3"
    {|policy chain3: PROVED translate(compile(p)) = eval(p) over 16 cubes (4 rules)|}
    (appctl_ok "policy/check" (Tools.appctl "policy/check chain3"))

let () =
  Alcotest.run "ovs_golden"
    [
      ( "appctl",
        [
          Alcotest.test_case "pmd-stats-show" `Quick (with_fixture test_pmd_stats);
          Alcotest.test_case "cache-hierarchy-show" `Quick
            (with_fixture test_cache_hierarchy);
          Alcotest.test_case "health-show" `Quick (with_fixture test_health_show);
          Alcotest.test_case "latency-show empty" `Quick
            (with_fixture test_latency_show_empty);
          Alcotest.test_case "latency-show" `Quick
            (with_fixture test_latency_show);
          Alcotest.test_case "revalidator-show disabled" `Quick
            (with_fixture test_revalidator_show_empty);
          Alcotest.test_case "revalidator-show" `Quick test_revalidator_show;
          Alcotest.test_case "fault/list" `Quick (with_fixture test_fault_list);
          Alcotest.test_case "upgrade-show none" `Quick test_upgrade_show_none;
          Alcotest.test_case "upgrade-show" `Quick test_upgrade_show;
          Alcotest.test_case "churn-apply" `Quick test_churn_apply;
          Alcotest.test_case "churn-apply no dp" `Quick test_churn_apply_no_dp;
          Alcotest.test_case "policy/show" `Quick test_policy_show;
          Alcotest.test_case "policy/check" `Quick test_policy_check;
        ] );
    ]
