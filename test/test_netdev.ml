(* Tests for the network-device models. *)

module Netdev = Ovs_netdev.Netdev
module B = Ovs_packet.Build

let check = Alcotest.check

let test_enqueue_dequeue () =
  let d = Netdev.create ~name:"eth0" ~queues:2 () in
  ignore (Netdev.enqueue_on d ~queue:1 (B.udp ()) : bool);
  check Alcotest.int "pending" 1 (Netdev.pending d);
  let got = Netdev.dequeue d ~queue:1 ~max:8 in
  check Alcotest.int "dequeued" 1 (List.length got);
  check Alcotest.int "drained" 0 (Netdev.pending d)

let test_queue_overflow_drops () =
  let d = Netdev.create ~name:"eth0" ~queue_capacity:2 () in
  for _ = 1 to 5 do
    ignore (Netdev.enqueue_on d ~queue:0 (B.udp ()) : bool)
  done;
  check Alcotest.int "capacity respected" 2 (Netdev.pending d);
  check Alcotest.int "drops counted" 3 d.Netdev.stats.Netdev.rx_dropped

let test_rss_spreads_flows () =
  let d = Netdev.create ~name:"eth0" ~queues:8 () in
  for i = 0 to 255 do
    let pkt = B.udp ~src_port:(1000 + i) () in
    ignore (Netdev.rss_enqueue d pkt : bool)
  done;
  let nonempty =
    Array.fold_left
      (fun n q -> if Queue.length q > 0 then n + 1 else n)
      0 d.Netdev.rx_queues
  in
  Alcotest.(check bool) "many queues used" true (nonempty >= 6)

let test_rss_same_flow_same_queue () =
  let d = Netdev.create ~name:"eth0" ~queues:8 () in
  for _ = 1 to 16 do
    ignore (Netdev.rss_enqueue d (B.udp ~src_port:7777 ()) : bool)
  done;
  let nonempty =
    Array.fold_left
      (fun n q -> if Queue.length q > 0 then n + 1 else n)
      0 d.Netdev.rx_queues
  in
  check Alcotest.int "one flow, one queue (no reordering)" 1 nonempty

let test_connect_wires_both_ways () =
  let a = Netdev.create ~name:"a" () and b = Netdev.create ~name:"b" () in
  Netdev.connect a b;
  Netdev.transmit a (B.udp ());
  check Alcotest.int "b received" 1 (Netdev.pending b);
  Netdev.transmit b (B.udp ());
  check Alcotest.int "a received" 1 (Netdev.pending a);
  check Alcotest.int "tx counted" 1 a.Netdev.stats.Netdev.tx_packets

let test_veth_pair () =
  let a, b = Netdev.veth_pair ~name_a:"veth0" ~name_b:"veth1" in
  (* physical equality: the peer field forms a cycle *)
  let is_peer x y = match x.Netdev.peer with Some p -> p == y | None -> false in
  Alcotest.(check bool) "peers" true (is_peer a b && is_peer b a);
  Netdev.transmit a (B.udp ());
  check Alcotest.int "crosses namespaces" 1 (Netdev.pending b)

let test_kernel_visibility () =
  let kernel = Netdev.create ~name:"k" () in
  let dpdk = Netdev.create ~name:"d" ~driver:Netdev.Dpdk_driver () in
  let vhost = Netdev.create ~name:"v" ~kind:Netdev.Vhostuser () in
  Alcotest.(check bool) "kernel-driven visible" true (Netdev.kernel_visible kernel);
  Alcotest.(check bool) "dpdk invisible" false (Netdev.kernel_visible dpdk);
  Alcotest.(check bool) "vhostuser invisible" false (Netdev.kernel_visible vhost)

let test_line_rate () =
  let d = Netdev.create ~name:"eth" ~gbps:10. () in
  let rate = Netdev.line_rate_pps d ~frame_len:64 in
  (* 10G, 64B + 20B overhead = 14.88 Mpps *)
  Alcotest.(check bool) "64B line rate" true (abs_float (rate -. 14.88e6) < 0.05e6);
  let big = Netdev.line_rate_pps d ~frame_len:1518 in
  Alcotest.(check bool) "1518B line rate" true (abs_float (big -. 0.8127e6) < 0.01e6)

let test_xdp_attachment_models () =
  let d = Netdev.create ~name:"eth" ~queues:4 () in
  let prog = Ovs_ebpf.Xdp.load_exn ~name:"pass" Ovs_ebpf.Progs.pass_all in
  (* Mellanox model: one queue only (Fig 6b) *)
  Netdev.attach_xdp d ~queue:2 prog;
  Alcotest.(check bool) "queue 2 attached" true (d.Netdev.xdp_progs.(2) <> None);
  Alcotest.(check bool) "queue 0 untouched" true (d.Netdev.xdp_progs.(0) = None);
  Netdev.detach_xdp d ~queue:2;
  Alcotest.(check bool) "detached" true (d.Netdev.xdp_progs.(2) = None);
  (* Intel model: whole device (Fig 6a) *)
  Netdev.attach_xdp_all d prog;
  Array.iter
    (fun p -> Alcotest.(check bool) "all queues" true (p <> None))
    d.Netdev.xdp_progs

let test_stats_accumulate () =
  let d = Netdev.create ~name:"eth" () in
  ignore (Netdev.enqueue_on d ~queue:0 (B.udp ~frame_len:100 ()) : bool);
  Netdev.transmit d (B.udp ~frame_len:64 ());
  check Alcotest.int "rx bytes" 100 d.Netdev.stats.Netdev.rx_bytes;
  check Alcotest.int "tx bytes" 64 d.Netdev.stats.Netdev.tx_bytes

let () =
  Alcotest.run "ovs_netdev"
    [
      ( "netdev",
        [
          Alcotest.test_case "enqueue/dequeue" `Quick test_enqueue_dequeue;
          Alcotest.test_case "overflow drops" `Quick test_queue_overflow_drops;
          Alcotest.test_case "rss spreads flows" `Quick test_rss_spreads_flows;
          Alcotest.test_case "rss keeps flow order" `Quick test_rss_same_flow_same_queue;
          Alcotest.test_case "connect wiring" `Quick test_connect_wires_both_ways;
          Alcotest.test_case "veth pair" `Quick test_veth_pair;
          Alcotest.test_case "kernel visibility" `Quick test_kernel_visibility;
          Alcotest.test_case "line rate" `Quick test_line_rate;
          Alcotest.test_case "xdp attachment (Fig 6)" `Quick test_xdp_attachment_models;
          Alcotest.test_case "stats" `Quick test_stats_accumulate;
        ] );
    ]
