(* Tests for the latency measurement subsystem: the RFC 2544 NDR binary
   search contract (termination, monotonicity, determinism, cliff
   pinning) on synthetic probes, timestamp conservation under fault
   injection (mangled and crash-killed packets must leak no samples into
   the sketch), and bit-reproducibility of the latency-armed virtual-time
   rig. *)

module Ndr = Ovs_trafficgen.Ndr
module Scenario = Ovs_trafficgen.Scenario
module Chaos = Ovs_trafficgen.Chaos
module Q = Ovs_sim.Quantiles
module Dpif = Ovs_datapath.Dpif

let check = Alcotest.check

(* -- NDR search on synthetic probes -- *)

(* a device with a hard loss cliff: loss-free at or below [cliff] pps,
   losing above it *)
let cliff_probe ?(n = 1_000) cliff calls rate =
  incr calls;
  { Ndr.offered = n; delivered = (if rate <= cliff then n else n - 7) }

let terminates_within_budget () =
  let calls = ref 0 in
  let o =
    Ndr.search ~iters:12 ~lo:1e5 ~hi:1e7
      ~probe:(cliff_probe 3.3e6 calls)
      ()
  in
  check Alcotest.int "probe calls = 2 brackets + 12 halvings" 14 !calls;
  check Alcotest.int "outcome reports every probe" 14 o.Ndr.iterations;
  check Alcotest.int "trail records every probe" 14
    (List.length o.Ndr.probes)

let monotone_vs_losing_probes () =
  let calls = ref 0 in
  let o =
    Ndr.search ~iters:12 ~lo:1e5 ~hi:1e7
      ~probe:(cliff_probe 3.3e6 calls)
      ()
  in
  (* the reported NDR is the highest rate probed loss-free, and sits
     strictly below every rate observed losing *)
  List.iter
    (fun (rate, ok) ->
      if ok && rate > o.Ndr.ndr_pps then
        Alcotest.failf "loss-free probe %.0f above reported NDR %.0f" rate
          o.Ndr.ndr_pps;
      if (not ok) && rate <= o.Ndr.ndr_pps then
        Alcotest.failf "losing probe %.0f at or below reported NDR %.0f" rate
          o.Ndr.ndr_pps)
    o.Ndr.probes

let pins_the_cliff () =
  let cliff = 3.3e6 in
  let lo = 1e5 and hi = 1e7 in
  let calls = ref 0 in
  let o = Ndr.search ~iters:12 ~lo ~hi ~probe:(cliff_probe cliff calls) () in
  (* never above the cliff, and within the bracket's final resolution
     ((hi - lo) / 2^12) below it *)
  if o.Ndr.ndr_pps > cliff then
    Alcotest.failf "NDR %.0f above the cliff %.0f" o.Ndr.ndr_pps cliff;
  let resolution = (hi -. lo) /. 4096. in
  if cliff -. o.Ndr.ndr_pps > resolution then
    Alcotest.failf "NDR %.0f more than %.0f below the cliff %.0f"
      o.Ndr.ndr_pps resolution cliff

let deterministic () =
  let run () =
    let calls = ref 0 in
    Ndr.search ~iters:10 ~lo:2e5 ~hi:8e6 ~probe:(cliff_probe 1.7e6 calls) ()
  in
  let a = run () and b = run () in
  check (Alcotest.float 0.) "same NDR" a.Ndr.ndr_pps b.Ndr.ndr_pps;
  check Alcotest.int "same probe count" a.Ndr.iterations b.Ndr.iterations;
  if a.Ndr.probes <> b.Ndr.probes then
    Alcotest.fail "probe trails differ between identical runs"

let bracket_edges () =
  let calls = ref 0 in
  (* device faster than the whole bracket: one probe, NDR = hi *)
  let o = Ndr.search ~lo:1e5 ~hi:1e6 ~probe:(cliff_probe 1e9 calls) () in
  check Alcotest.int "loss-free hi: one probe" 1 o.Ndr.iterations;
  check (Alcotest.float 0.) "loss-free hi: NDR = hi" 1e6 o.Ndr.ndr_pps;
  (* device slower than the whole bracket: two probes, NDR = 0 *)
  let calls = ref 0 in
  let o = Ndr.search ~lo:1e5 ~hi:1e6 ~probe:(cliff_probe 1. calls) () in
  check Alcotest.int "losing lo: two probes" 2 o.Ndr.iterations;
  check (Alcotest.float 0.) "losing lo: NDR = 0" 0. o.Ndr.ndr_pps;
  Alcotest.check_raises "bad bracket rejected"
    (Invalid_argument "Ndr.search: bad bracket") (fun () ->
      ignore
        (Ndr.search ~lo:1e6 ~hi:1e5
           ~probe:(fun _ -> { Ndr.offered = 1; delivered = 1 })
           ()))

(* -- NDR search on the real rig: a reported rate is re-probeable -- *)

let reprobe_on_rig () =
  let cfg = Scenario.config ~n_flows:1 ~latency:true () in
  let rig = Scenario.setup cfg in
  Scenario.drive rig 4_000;
  let n = 12_000 in
  let o =
    Ndr.search ~iters:6 ~lo:5e5 ~hi:2e7
      ~probe:(fun rate_pps -> Scenario.ndr_probe rig ~rate_pps n)
      ()
  in
  if o.Ndr.ndr_pps <= 0. then Alcotest.fail "rig NDR search found no rate";
  let re = Scenario.ndr_probe rig ~rate_pps:o.Ndr.ndr_pps n in
  check Alcotest.int "re-probe at the reported NDR is loss-free" re.Ndr.offered
    re.Ndr.delivered

(* -- timestamp conservation under fault injection -- *)

(* Mangled (truncated / corrupted) packets that the strict ruleset drops,
   and packets killed by a PMD crash, must record nothing: the sketch
   count equals delivered exactly, phase by phase. These are the two
   plans that destroy packets mid-flight in the nastiest ways. *)
let chaos_spec name =
  match List.find_opt (fun s -> s.Chaos.s_name = name) Chaos.catalog with
  | Some s -> s
  | None -> Alcotest.failf "chaos catalog has no %s plan" name

let stamp_conservation plan leg () =
  let row = Chaos.run_one (chaos_spec plan) leg in
  let c = row.Chaos.row_res in
  check Alcotest.int
    (Printf.sprintf "%s/%s: sojourn samples = delivered packets" plan
       (Chaos.leg_name leg))
    c.Scenario.c_delivered c.Scenario.c_latency_count;
  check Alcotest.bool "row judged conserving" true row.Chaos.row_latency_ok;
  check Alcotest.bool "run passes end to end" true row.Chaos.row_pass

(* -- determinism of the latency-armed virtual-time rig -- *)

let sketch_fingerprint q =
  Printf.sprintf "n=%d sum=%.17g p50=%.17g p99=%.17g max=%.17g" (Q.count q)
    (Q.sum q) (Q.p50 q) (Q.p99 q) (Q.quantile q 100.)

let vt_deterministic () =
  let measure () =
    let cfg = Scenario.config ~n_flows:8 ~latency:true () in
    let rig = Scenario.setup cfg in
    Scenario.drive rig 4_000;
    let delivered, q = Scenario.measure_latency rig ~rate_pps:2e6 10_000 in
    check Alcotest.int "conservation: samples = delivered" delivered
      (Q.count q);
    check Alcotest.int "sub-capacity rate is loss-free" 10_000 delivered;
    sketch_fingerprint q
  in
  check Alcotest.string "two identical armed runs, byte-identical sketches"
    (measure ()) (measure ())

let () =
  Alcotest.run "ovs_latency"
    [
      ( "ndr-search",
        [
          Alcotest.test_case "terminates within the probe budget" `Quick
            terminates_within_budget;
          Alcotest.test_case "monotone against losing probes" `Quick
            monotone_vs_losing_probes;
          Alcotest.test_case "pins a synthetic loss cliff" `Quick
            pins_the_cliff;
          Alcotest.test_case "deterministic probe trail" `Quick deterministic;
          Alcotest.test_case "bracket edge cases" `Quick bracket_edges;
          Alcotest.test_case "rig NDR is re-probeable" `Quick reprobe_on_rig;
        ] );
      ( "fault-conservation",
        [
          Alcotest.test_case "pkt_mangle leaks no stamps (kernel)" `Quick
            (stamp_conservation "pkt_mangle" Chaos.Kernel_leg);
          Alcotest.test_case "pkt_mangle leaks no stamps (afxdp)" `Quick
            (stamp_conservation "pkt_mangle" Chaos.Afxdp_leg);
          Alcotest.test_case "pmd crash/restart leaks no stamps" `Quick
            (stamp_conservation "pmd_crash" Chaos.Pmd_leg);
        ] );
      ( "vt-determinism",
        [
          Alcotest.test_case "latency-armed rig is byte-identical" `Quick
            vt_deterministic;
        ] );
    ]
