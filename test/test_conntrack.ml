(* Tests for the userspace connection tracker: TCP state machine, zones,
   NAT, limits, expiry. *)

module Ct = Ovs_conntrack.Conntrack
module FK = Ovs_packet.Flow_key
module B = Ovs_packet.Build
module Bits = FK.Ct_state_bits

let check = Alcotest.check

let client_ip = Ovs_packet.Ipv4.addr_of_string "10.0.0.1"
let server_ip = Ovs_packet.Ipv4.addr_of_string "10.0.0.2"

let tcp_key ?(src = client_ip) ?(dst = server_ip) ?(sport = 40000) ?(dport = 80)
    ~flags () =
  FK.extract (B.tcp ~src_ip:src ~dst_ip:dst ~src_port:sport ~dst_port:dport ~flags ())

let udp_key ?(src = client_ip) ?(dst = server_ip) ?(sport = 50) ?(dport = 53) () =
  FK.extract (B.udp ~src_ip:src ~dst_ip:dst ~src_port:sport ~dst_port:dport ())

let has v bit = v land bit <> 0

let test_untracked_is_new () =
  let ct = Ct.create () in
  let v = Ct.track ct ~now:0. ~zone:1 (tcp_key ~flags:Ovs_packet.Tcp.Flags.syn ()) in
  Alcotest.(check bool) "+trk" true (has v.Ct.ct_state Bits.trk);
  Alcotest.(check bool) "+new" true (has v.Ct.ct_state Bits.new_);
  Alcotest.(check bool) "no conn yet" true (v.Ct.conn = None)

let test_commit_and_handshake () =
  let ct = Ct.create () in
  let open Ovs_packet.Tcp.Flags in
  let syn = tcp_key ~flags:syn () in
  (match Ct.commit ct ~now:0. ~zone:1 syn with
  | Some conn -> Alcotest.(check bool) "SYN_SENT" true (conn.Ct.state = Ct.Tcp Ct.Syn_sent)
  | None -> Alcotest.fail "commit failed");
  (* server SYN+ACK (reply direction) *)
  let synack =
    tcp_key ~src:server_ip ~dst:client_ip ~sport:80 ~dport:40000
      ~flags:(Ovs_packet.Tcp.Flags.syn lor ack) ()
  in
  let v = Ct.track ct ~now:1000. ~zone:1 synack in
  Alcotest.(check bool) "reply seen" true (has v.Ct.ct_state Bits.rpl);
  (* client ACK completes the handshake *)
  let ackk = tcp_key ~flags:ack () in
  let v2 = Ct.track ct ~now:2000. ~zone:1 ackk in
  Alcotest.(check bool) "+est" true (has v2.Ct.ct_state Bits.est);
  match v2.Ct.conn with
  | Some conn -> Alcotest.(check bool) "ESTABLISHED" true (conn.Ct.state = Ct.Tcp Ct.Established)
  | None -> Alcotest.fail "no connection"

let established ct =
  let open Ovs_packet.Tcp.Flags in
  ignore (Ct.commit ct ~now:0. ~zone:1 (tcp_key ~flags:syn ()));
  ignore
    (Ct.track ct ~now:1.
       ~zone:1
       (tcp_key ~src:server_ip ~dst:client_ip ~sport:80 ~dport:40000
          ~flags:(syn lor ack) ()));
  ignore (Ct.track ct ~now:2. ~zone:1 (tcp_key ~flags:ack ()))

let test_rst_invalidates () =
  let ct = Ct.create () in
  established ct;
  let v = Ct.track ct ~now:3. ~zone:1 (tcp_key ~flags:Ovs_packet.Tcp.Flags.rst ()) in
  (match v.Ct.conn with
  | Some conn -> Alcotest.(check bool) "CLOSED" true (conn.Ct.state = Ct.Tcp Ct.Closed)
  | None -> Alcotest.fail "conn missing");
  (* subsequent packets on a closed connection are invalid *)
  let v2 = Ct.track ct ~now:4. ~zone:1 (tcp_key ~flags:Ovs_packet.Tcp.Flags.ack ()) in
  Alcotest.(check bool) "+inv" true (has v2.Ct.ct_state Bits.inv)

let test_zones_isolate () =
  let ct = Ct.create () in
  established ct;  (* zone 1 *)
  (* same 5-tuple in zone 2 is untracked/new *)
  let v = Ct.track ct ~now:5. ~zone:2 (tcp_key ~flags:Ovs_packet.Tcp.Flags.ack ()) in
  Alcotest.(check bool) "zone 2 sees new" true (has v.Ct.ct_state Bits.new_)

let test_udp_pseudo_state () =
  let ct = Ct.create () in
  ignore (Ct.commit ct ~now:0. ~zone:1 (udp_key ()));
  (* first forward packet: still single-direction, not established *)
  let v = Ct.track ct ~now:1. ~zone:1 (udp_key ()) in
  Alcotest.(check bool) "not yet est" false (has v.Ct.ct_state Bits.est);
  (* a reply upgrades to bidirectional *)
  let reply = udp_key ~src:server_ip ~dst:client_ip ~sport:53 ~dport:50 () in
  ignore (Ct.track ct ~now:2. ~zone:1 reply);
  let v2 = Ct.track ct ~now:3. ~zone:1 (udp_key ()) in
  Alcotest.(check bool) "est after reply" true (has v2.Ct.ct_state Bits.est)

let test_timeout_expiry () =
  let ct = Ct.create () in
  ignore (Ct.commit ct ~now:0. ~zone:1 (udp_key ()));
  (* beyond the 30s single-direction UDP timeout *)
  let late = Ovs_sim.Time.s 31. in
  let v = Ct.track ct ~now:late ~zone:1 (udp_key ()) in
  Alcotest.(check bool) "expired -> new" true (has v.Ct.ct_state Bits.new_)

let test_sweep_reclaims () =
  let ct = Ct.create () in
  ignore (Ct.commit ct ~now:0. ~zone:1 (udp_key ()));
  ignore (Ct.commit ct ~now:0. ~zone:1 (udp_key ~sport:51 ()));
  check Alcotest.int "two conns" 2 (Ct.active_conns ct);
  let reclaimed = Ct.sweep ct ~now:(Ovs_sim.Time.s 60.) in
  check Alcotest.int "swept" 2 reclaimed;
  check Alcotest.int "empty" 0 (Ct.active_conns ct);
  check Alcotest.int "zone count back to zero" 0 (Ct.zone_count ct ~zone:1)

let test_zone_limit () =
  let ct = Ct.create () in
  Ct.set_zone_limit ct ~zone:7 ~limit:2;
  let commit i = Ct.commit ct ~now:0. ~zone:7 (udp_key ~sport:(100 + i) ()) in
  Alcotest.(check bool) "1" true (commit 1 <> None);
  Alcotest.(check bool) "2" true (commit 2 <> None);
  Alcotest.(check bool) "3 rejected (nf_conncount)" true (commit 3 = None);
  (* other zones unaffected *)
  Alcotest.(check bool) "other zone fine" true
    (Ct.commit ct ~now:0. ~zone:8 (udp_key ~sport:200 ()) <> None)

let test_commit_idempotent () =
  let ct = Ct.create () in
  let k = udp_key () in
  let a = Ct.commit ct ~now:0. ~zone:1 k in
  let b = Ct.commit ct ~now:1. ~zone:1 k in
  (match (a, b) with
  | Some x, Some y -> Alcotest.(check bool) "same conn" true (x == y)
  | _ -> Alcotest.fail "commit failed");
  check Alcotest.int "one connection" 1 (Ct.active_conns ct)

let test_nat_rewrites_forward_and_reply () =
  let ct = Ct.create () in
  let nat_ip = Ovs_packet.Ipv4.addr_of_string "203.0.113.5" in
  let pkt = B.udp ~src_ip:client_ip ~dst_ip:server_ip ~src_port:50 ~dst_port:53 () in
  let k = FK.extract pkt in
  let conn =
    match
      Ct.commit ct ~now:0. ~zone:1
        ~nat:{ Ct.nat_src = Some (nat_ip, 1024); nat_dst = None }
        k
    with
    | Some c -> c
    | None -> Alcotest.fail "commit"
  in
  (* forward direction: source rewritten *)
  Alcotest.(check bool) "rewritten" true (Ct.apply_nat conn ~is_reply:false pkt k);
  check Alcotest.int "key src natted" nat_ip (FK.get k FK.Field.Nw_src);
  check Alcotest.int "key sport natted" 1024 (FK.get k FK.Field.Tp_src);
  ignore (Ovs_packet.Ethernet.parse pkt);
  (match Ovs_packet.Ipv4.parse pkt with
  | Some ip ->
      check Alcotest.int "packet src natted" nat_ip ip.Ovs_packet.Ipv4.src;
      Alcotest.(check bool) "ip checksum refreshed" true
        (Ovs_packet.Checksum.verify pkt.Ovs_packet.Buffer.data
           ~off:(Ovs_packet.Buffer.abs pkt pkt.Ovs_packet.Buffer.l3_ofs)
           ~len:Ovs_packet.Ipv4.header_len)
  | None -> Alcotest.fail "reparse");
  (* reply direction: destination un-natted back to the original source *)
  let reply = B.udp ~src_ip:server_ip ~dst_ip:nat_ip ~src_port:53 ~dst_port:1024 () in
  let rk = FK.extract reply in
  Alcotest.(check bool) "reply rewritten" true (Ct.apply_nat conn ~is_reply:true reply rk);
  check Alcotest.int "reply dst restored" client_ip (FK.get rk FK.Field.Nw_dst);
  check Alcotest.int "reply dport restored" 50 (FK.get rk FK.Field.Tp_dst)

let test_related_icmp () =
  let ct = Ct.create () in
  (* a tracked UDP flow client -> server *)
  let offending =
    B.udp ~src_ip:client_ip ~dst_ip:server_ip ~src_port:50 ~dst_port:53 ()
  in
  ignore (Ct.commit ct ~now:0. ~zone:1 (FK.extract offending));
  (* a router reports port-unreachable, quoting the offending packet *)
  let err =
    B.icmp_error ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.254") ~offending ()
  in
  let k = FK.extract err in
  let v = Ct.track ~buf:err ct ~now:1. ~zone:1 k in
  Alcotest.(check bool) "+rel" true (has v.Ct.ct_state Bits.rel);
  Alcotest.(check bool) "+trk" true (has v.Ct.ct_state Bits.trk);
  Alcotest.(check bool) "bound to the connection" true (v.Ct.conn <> None);
  (* the same error in another zone is unrelated *)
  let v2 = Ct.track ~buf:err ct ~now:1. ~zone:2 k in
  Alcotest.(check bool) "zone isolation holds for rel" false
    (has v2.Ct.ct_state Bits.rel);
  (* an error quoting an untracked flow is just new *)
  let stranger = B.udp ~src_ip:server_ip ~dst_ip:client_ip ~src_port:9 ~dst_port:9 () in
  let err2 =
    B.icmp_error ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.254")
      ~offending:stranger ()
  in
  let v3 = Ct.track ~buf:err2 ct ~now:1. ~zone:1 (FK.extract err2) in
  Alcotest.(check bool) "unrelated error is new" true (has v3.Ct.ct_state Bits.new_)

let test_fin_teardown_states () =
  let ct = Ct.create () in
  established ct;
  let open Ovs_packet.Tcp.Flags in
  ignore (Ct.track ct ~now:10. ~zone:1 (tcp_key ~flags:(fin lor ack) ()));
  (match Ct.track ct ~now:11. ~zone:1 (tcp_key ~flags:ack ()) with
  | { Ct.conn = Some c; _ } ->
      Alcotest.(check bool) "left ESTABLISHED" true (c.Ct.state <> Ct.Tcp Ct.Established)
  | { Ct.conn = None; _ } -> Alcotest.fail "conn lost");
  ()

(* -- property tests: evict_to_limit and the ct_pressure fault -- *)

(* Distinct UDP flows (one per source port) committed at strictly
   increasing times, so "oldest" is unambiguous. *)
let commit_flows ct ~zone n =
  List.init n (fun i ->
      let k = udp_key ~sport:(1000 + i) () in
      (match Ct.commit ct ~now:(float_of_int i) ~zone k with
      | Some _ -> ()
      | None -> Alcotest.failf "seed commit %d rejected" i);
      k)

let tracked ct ~zone k =
  (Ct.track ct ~now:100. ~zone k).Ct.conn <> None

let prop_evict_count =
  QCheck.Test.make ~count:100
    ~name:"evict_to_limit: count <= limit, evicted = excess"
    QCheck.(pair (int_range 0 40) (int_range 0 40))
    (fun (n, limit) ->
      let ct = Ct.create () in
      ignore (commit_flows ct ~zone:3 n);
      let evicted = Ct.evict_to_limit ct ~zone:3 ~limit in
      Ct.zone_count ct ~zone:3 <= limit && evicted = Int.max 0 (n - limit))

let prop_evict_oldest_first =
  QCheck.Test.make ~count:100 ~name:"evict_to_limit: oldest evicted first"
    QCheck.(pair (int_range 1 40) (int_range 0 40))
    (fun (n, limit) ->
      let ct = Ct.create () in
      let keys = commit_flows ct ~zone:3 n in
      ignore (Ct.evict_to_limit ct ~zone:3 ~limit);
      (* survivors must be exactly the [limit] newest commits *)
      List.for_all2
        (fun i k -> tracked ct ~zone:3 k = (i >= n - limit))
        (List.init n Fun.id) keys)

let prop_evict_then_readd =
  QCheck.Test.make ~count:100
    ~name:"evict_to_limit: re-add succeeds after eviction"
    QCheck.(int_range 1 32)
    (fun limit ->
      let ct = Ct.create () in
      Ct.set_zone_limit ct ~zone:5 ~limit;
      ignore (commit_flows ct ~zone:5 limit);
      (* zone full: the next commit is rejected by the nf_conncount cap *)
      let extra = udp_key ~sport:5000 () in
      Ct.commit ct ~now:50. ~zone:5 extra = None
      && Ct.evict_to_limit ct ~zone:5 ~limit:(limit - 1) = 1
      && Ct.commit ct ~now:51. ~zone:5 extra <> None
      && Ct.zone_count ct ~zone:5 = limit)

(* -- property tests: sharding and bounded sweeps -- *)

(* The sharded table is an implementation split, never a semantic one:
   any interleaving of commits, tracks (both directions), zone-limited
   commits and full sweeps must produce the same verdicts and the same
   population as the unsharded oracle. *)
let prop_sharded_oracle =
  QCheck.Test.make ~count:60 ~name:"sharded conntrack == unsharded oracle"
    QCheck.(
      pair (int_range 2 16) (list_of_size Gen.(int_range 20 80) (int_range 0 999)))
    (fun (shards, ops) ->
      let a = Ct.create () and b = Ct.create ~shards () in
      Ct.set_zone_limit a ~zone:1 ~limit:4;
      Ct.set_zone_limit b ~zone:1 ~limit:4;
      let now = ref 0. in
      let ok = ref true in
      let agree c = ok := !ok && c in
      List.iter
        (fun r ->
          now := !now +. Ovs_sim.Time.s (float_of_int (r mod 7));
          let sport = 40000 + (r mod 6) and zone = 1 + (r mod 2) in
          let k = udp_key ~sport () in
          let krev =
            udp_key ~src:server_ip ~dst:client_ip ~sport:53 ~dport:sport ()
          in
          match r / 7 mod 4 with
          | 0 ->
              agree
                (Ct.commit a ~now:!now ~zone k <> None
                = (Ct.commit b ~now:!now ~zone k <> None))
          | 1 ->
              agree
                ((Ct.track a ~now:!now ~zone k).Ct.ct_state
                = (Ct.track b ~now:!now ~zone k).Ct.ct_state)
          | 2 ->
              agree
                ((Ct.track a ~now:!now ~zone krev).Ct.ct_state
                = (Ct.track b ~now:!now ~zone krev).Ct.ct_state)
          | _ -> agree (Ct.sweep a ~now:!now = Ct.sweep b ~now:!now))
        ops;
      !ok
      && Ct.active_conns a = Ct.active_conns b
      && Ct.zone_count a ~zone:1 = Ct.zone_count b ~zone:1
      && Ct.zone_count a ~zone:2 = Ct.zone_count b ~zone:2
      && Ct.limit_drops a = Ct.limit_drops b)

(* However small the per-call budget, amortized bounded sweeps reclaim
   exactly what one unbounded sweep would — a full cursor rotation
   visits every bucket — and an empty bucket still consumes budget, so
   the loop provably terminates. *)
let prop_sweep_bounded_total =
  QCheck.Test.make ~count:80
    ~name:"sweep_bounded: amortized calls == one full sweep"
    QCheck.(triple (int_range 1 8) (int_range 0 40) (int_range 1 50))
    (fun (shards, n, budget) ->
      let ct = Ct.create ~shards () in
      ignore (commit_flows ct ~zone:3 n);
      let late = Ovs_sim.Time.s 120. in
      let total = ref 0 and calls = ref 0 in
      while Ct.active_conns ct > 0 && !calls < 100_000 do
        total := !total + Ct.sweep_bounded ct ~now:late ~budget;
        incr calls
      done;
      !total = n && Ct.active_conns ct = 0)

(* Cross-shard eviction: "oldest first" is a global order, not a
   per-shard one. *)
let prop_evict_sharded =
  QCheck.Test.make ~count:100
    ~name:"evict_to_limit: oldest first across shards"
    QCheck.(triple (int_range 2 8) (int_range 1 40) (int_range 0 40))
    (fun (shards, n, limit) ->
      let ct = Ct.create ~shards () in
      let keys = commit_flows ct ~zone:3 n in
      ignore (Ct.evict_to_limit ct ~zone:3 ~limit);
      List.for_all2
        (fun i k -> tracked ct ~zone:3 k = (i >= n - limit))
        (List.init n Fun.id) keys)

module Faults = Ovs_faults.Faults

(* The ct_pressure fault forces an effective zone limit while its window
   is open (Conntrack.commit consults Faults.ct_limit), and the chaos
   runner's window-open side effect evicts down to it — committed count
   never exceeds the forced limit, and the zone recovers after the
   window closes. *)
let prop_ct_pressure_fault =
  QCheck.Test.make ~count:50
    ~name:"ct_pressure fault: forced limit enforced, recovery after close"
    QCheck.(pair (int_range 1 16) (int_range 0 24))
    (fun (limit, preload) ->
      let ct = Ct.create () in
      ignore (commit_flows ct ~zone:9 preload);
      Faults.arm
        (Faults.plan ~name:"ct-prop"
           [
             {
               Faults.f_name = "pressure";
               f_action = Faults.Ct_pressure { zone = 9; limit };
               f_start = Ovs_sim.Time.us 10.;
               f_stop = Ovs_sim.Time.us 20.;
             };
           ]);
      Fun.protect ~finally:Faults.disarm (fun () ->
          (* window opens: apply the runner's side effect, then push one
             more commit against the forced cap *)
          let opened = Faults.tick (Ovs_sim.Time.us 15.) in
          List.iter
            (fun (f : Faults.fault) ->
              match f.Faults.f_action with
              | Faults.Ct_pressure { zone; limit } ->
                  ignore (Ct.evict_to_limit ct ~zone ~limit)
              | _ -> ())
            opened;
          let evicted_down = Ct.zone_count ct ~zone:9 <= limit in
          let had_room = Ct.zone_count ct ~zone:9 < limit in
          let admitted =
            Ct.commit ct ~now:60. ~zone:9 (udp_key ~sport:7000 ()) <> None
          in
          let in_window_ok =
            evicted_down && admitted = had_room
            && Ct.zone_count ct ~zone:9 <= limit
          in
          (* window closes: the cap is gone, commits succeed again *)
          ignore (Faults.tick (Ovs_sim.Time.us 25.));
          let recovered =
            Ct.commit ct ~now:70. ~zone:9 (udp_key ~sport:7001 ()) <> None
          in
          in_window_ok && recovered))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_conntrack"
    [
      ( "tcp",
        [
          Alcotest.test_case "untracked is new" `Quick test_untracked_is_new;
          Alcotest.test_case "commit and handshake" `Quick test_commit_and_handshake;
          Alcotest.test_case "rst invalidates" `Quick test_rst_invalidates;
          Alcotest.test_case "fin teardown" `Quick test_fin_teardown_states;
        ] );
      ( "state",
        [
          Alcotest.test_case "zones isolate" `Quick test_zones_isolate;
          Alcotest.test_case "udp pseudo state" `Quick test_udp_pseudo_state;
          Alcotest.test_case "timeout expiry" `Quick test_timeout_expiry;
          Alcotest.test_case "sweep reclaims" `Quick test_sweep_reclaims;
          Alcotest.test_case "zone limit" `Quick test_zone_limit;
          Alcotest.test_case "commit idempotent" `Quick test_commit_idempotent;
        ] );
      ( "related",
        [ Alcotest.test_case "related icmp errors" `Quick test_related_icmp ] );
      ( "nat",
        [ Alcotest.test_case "snat forward and reply" `Quick test_nat_rewrites_forward_and_reply ] );
      ( "eviction-properties",
        qcheck
          [
            prop_evict_count;
            prop_evict_oldest_first;
            prop_evict_then_readd;
            prop_ct_pressure_fault;
          ] );
      ( "sharding-properties",
        qcheck
          [ prop_sharded_oracle; prop_sweep_bounded_total; prop_evict_sharded ] );
    ]
