(* Tests for workload generation and the three experiment models. These
   assert the *relationships* the paper reports, not absolute numbers. *)

module Scenario = Ovs_trafficgen.Scenario
module Pktgen = Ovs_trafficgen.Pktgen
module Tcp_model = Ovs_trafficgen.Tcp_model
module Rr = Ovs_trafficgen.Rr_model
module Dpif = Ovs_datapath.Dpif

let check = Alcotest.check

(* -- Pktgen -- *)

let test_pktgen_flow_diversity () =
  let g = Pktgen.create ~n_flows:100 ~frame_len:64 () in
  let seen = Hashtbl.create 128 in
  for _ = 1 to 500 do
    let pkt = Pktgen.next g in
    let k = Ovs_packet.Flow_key.extract pkt in
    Hashtbl.replace seen (Ovs_packet.Flow_key.hash k) ()
  done;
  Alcotest.(check bool) "most flows appear" true (Hashtbl.length seen > 60)

let test_pktgen_single_flow () =
  let g = Pktgen.create ~n_flows:1 ~frame_len:64 () in
  let h (p : Ovs_packet.Buffer.t) = p.Ovs_packet.Buffer.rss_hash in
  let first = h (Pktgen.next g) in
  for _ = 1 to 20 do
    check Alcotest.int "same flow" first (h (Pktgen.next g))
  done

let test_pktgen_frame_len () =
  let g = Pktgen.create ~n_flows:4 ~frame_len:1518 () in
  check Alcotest.int "frame length" 1518 (Ovs_packet.Buffer.length (Pktgen.next g))

let test_pktgen_valid_packets () =
  let g = Pktgen.create ~n_flows:10 ~frame_len:64 () in
  for _ = 1 to 20 do
    let pkt = Pktgen.next g in
    (match Ovs_packet.Ethernet.parse pkt with
    | Some _ -> ()
    | None -> Alcotest.fail "bad ethernet");
    match Ovs_packet.Ipv4.parse pkt with
    | Some ip ->
        Alcotest.(check bool) "valid ip csum" true
          (Ovs_packet.Checksum.verify pkt.Ovs_packet.Buffer.data
             ~off:(Ovs_packet.Buffer.abs pkt pkt.Ovs_packet.Buffer.l3_ofs)
             ~len:Ovs_packet.Ipv4.header_len);
        ignore ip
    | None -> Alcotest.fail "bad ip"
  done

let test_pktgen_queues_hit () =
  let one = Pktgen.create ~n_flows:1 ~frame_len:64 () in
  check Alcotest.int "one flow, one queue" 1 (Pktgen.queues_hit one ~n_queues:16);
  let many = Pktgen.create ~n_flows:512 ~frame_len:64 () in
  Alcotest.(check bool) "many flows spread" true (Pktgen.queues_hit many ~n_queues:16 >= 12)

(* -- Zipf-skewed flow mix (seeded, deterministic) -- *)

let hashes g n = List.init n (fun _ -> (Pktgen.next g).Ovs_packet.Buffer.rss_hash)

let test_pktgen_zipf_deterministic () =
  let mk () = Pktgen.create ~seed:11 ~mix:(Pktgen.Zipf 1.2) ~n_flows:256 ~frame_len:64 () in
  Alcotest.(check (list int)) "same seed, same sequence" (hashes (mk ()) 400)
    (hashes (mk ()) 400)

let test_pktgen_zipf_reset_replays () =
  let g = Pktgen.create ~seed:5 ~mix:(Pktgen.Zipf 0.9) ~n_flows:128 ~frame_len:64 () in
  let first = hashes g 300 in
  Pktgen.reset g;
  Alcotest.(check (list int)) "reset replays the choices" first (hashes g 300)

let test_pktgen_zipf_skew () =
  let top_share mix =
    let g = Pktgen.create ~seed:11 ~mix ~n_flows:256 ~frame_len:64 () in
    let counts = Hashtbl.create 256 in
    for _ = 1 to 5_000 do
      let h = (Pktgen.next g).Ovs_packet.Buffer.rss_hash in
      Hashtbl.replace counts h (1 + Option.value ~default:0 (Hashtbl.find_opt counts h))
    done;
    float_of_int (Hashtbl.fold (fun _ c m -> max c m) counts 0) /. 5_000.
  in
  let zipf = top_share (Pktgen.Zipf 1.2) and uniform = top_share Pktgen.Uniform in
  Alcotest.(check bool) "elephant flow dominates" true (zipf > 0.15);
  Alcotest.(check bool) "far above the uniform top flow" true (zipf > 5. *. uniform)

(* Property: under any exponent and seed, the Zipf mix only ever emits the
   template set, and two generators with equal seeds agree packet by
   packet (determinism is what makes cache experiments reproducible). *)
let prop_zipf_deterministic =
  QCheck.Test.make ~count:30 ~name:"zipf mix deterministic for any seed/exponent"
    QCheck.(pair small_int (int_range 1 30))
    (fun (seed, s10) ->
      let mix = Pktgen.Zipf (float_of_int s10 /. 10.) in
      let mk () = Pktgen.create ~seed ~mix ~n_flows:64 ~frame_len:64 () in
      hashes (mk ()) 100 = hashes (mk ()) 100)

(* -- connection churn -- *)

(* Drive a churning generator through a fixed virtual-time schedule and
   record (rebirth events, packet stream): two generators with the same
   seed must agree on both — rebirths are pure in (seed, slot,
   generation), so the whole flow schedule is reproducible. *)
let churn_schedule () =
  let g =
    Pktgen.create ~seed:21 ~mix:(Pktgen.Zipf 0.9)
      ~churn:{ Pktgen.flows_per_s = 1000. } ~n_flows:100 ~frame_len:64 ()
  in
  let events = ref [] and stream = ref [] in
  for tick = 1 to 40 do
    let now = float_of_int tick *. 25e6 (* 25 ms *) in
    let reborn = Pktgen.churn_tick g ~now in
    events := (tick, reborn) :: !events;
    for _ = 1 to 5 do
      stream := (Pktgen.next g).Ovs_packet.Buffer.rss_hash :: !stream
    done
  done;
  (g, List.rev !events, List.rev !stream)

let test_churn_deterministic () =
  let _, ev1, st1 = churn_schedule () in
  let _, ev2, st2 = churn_schedule () in
  Alcotest.(check bool) "same seed, same rebirth schedule" true (ev1 = ev2);
  Alcotest.(check (list int)) "same seed, same packet stream" st1 st2;
  Alcotest.(check bool) "churn actually happened" true
    (List.exists (fun (_, r) -> r <> []) ev1)

let test_churn_rebirth_changes_flow () =
  let g =
    Pktgen.create ~seed:3 ~churn:{ Pktgen.flows_per_s = 100. } ~n_flows:10
      ~frame_len:64 ()
  in
  let before =
    Array.map (fun p -> p.Ovs_packet.Buffer.rss_hash) g.Pktgen.templates
  in
  (* one full slot lifetime: every slot must have been reborn once *)
  ignore (Pktgen.churn_tick g ~now:(Pktgen.slot_lifetime_ns g *. 1.01));
  Array.iteri
    (fun i h ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d reborn" i)
        true
        (g.Pktgen.templates.(i).Ovs_packet.Buffer.rss_hash <> h))
    before

let test_churn_reset_replays () =
  let g, ev1, st1 = churn_schedule () in
  Pktgen.reset g;
  let events = ref [] and stream = ref [] in
  for tick = 1 to 40 do
    let now = float_of_int tick *. 25e6 in
    events := (tick, Pktgen.churn_tick g ~now) :: !events;
    for _ = 1 to 5 do
      stream := (Pktgen.next g).Ovs_packet.Buffer.rss_hash :: !stream
    done
  done;
  Alcotest.(check bool) "reset replays rebirths" true (ev1 = List.rev !events);
  Alcotest.(check (list int)) "reset replays the stream" st1 (List.rev !stream)

(* -- Scenario relationships (the evaluation's qualitative claims) -- *)

let quick cfg = Scenario.run { cfg with Scenario.warmup = 2000; measure = 10_000 }

let p2p kind n_flows =
  quick { Scenario.default_config with kind; n_flows; gbps = 25. }

let test_fig2_ordering () =
  (* DPDK > kernel > eBPF, eBPF within 10-25% of kernel *)
  let k = (p2p Dpif.Kernel 1).Scenario.rate_mpps in
  let d = (p2p Dpif.Dpdk 1).Scenario.rate_mpps in
  let e = (p2p Dpif.Kernel_ebpf 1).Scenario.rate_mpps in
  Alcotest.(check bool) "DPDK fastest" true (d > k);
  Alcotest.(check bool) "eBPF slower than kernel" true (e < k);
  Alcotest.(check bool) "eBPF within 25%" true (e > 0.75 *. k)

let test_table2_ladder_monotone () =
  let rates =
    List.map
      (fun (_, o) -> (p2p (Dpif.Afxdp o) 1).Scenario.rate_mpps)
      Dpif.afxdp_ladder
  in
  let rec increasing = function
    | a :: b :: rest -> a < b && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "each optimization helps" true (increasing rates);
  (match rates with
  | first :: _ ->
      Alcotest.(check bool) "O1 alone is ~6x (0.8 -> 4.8)" true
        (List.nth rates 1 > 5. *. first)
  | [] -> Alcotest.fail "no ladder")

let test_fig9_flows_hurt_userspace_help_kernel () =
  let d1 = (p2p Dpif.Dpdk 1).Scenario.rate_mpps in
  let dk = (p2p Dpif.Dpdk 1000).Scenario.rate_mpps in
  Alcotest.(check bool) "1000 flows slower for DPDK" true (dk < d1);
  let k1 = (p2p Dpif.Kernel 1).Scenario.rate_mpps in
  let kk = (p2p Dpif.Kernel 1000).Scenario.rate_mpps in
  Alcotest.(check bool) "1000 flows faster for kernel (RSS)" true (kk > k1)

let test_fig9_kernel_burns_cores () =
  let r = p2p Dpif.Kernel 1000 in
  Alcotest.(check bool) "fast but not efficient: ~8+ cores" true
    (r.Scenario.cpu.Ovs_sim.Cpu.bd_total > 7.);
  let d = p2p Dpif.Dpdk 1000 in
  Alcotest.(check bool) "DPDK pinned to one core" true
    (abs_float (d.Scenario.cpu.Ovs_sim.Cpu.bd_total -. 1.0) < 0.11)

let test_fig9_pvp_vhost_beats_tap () =
  let run virt =
    quick
      { Scenario.default_config with topology = Scenario.PVP virt; gbps = 25. }
  in
  let tap = run Scenario.Vm_tap and vhost = run Scenario.Vm_vhost in
  Alcotest.(check bool) "vhostuser always better than tap" true
    (vhost.Scenario.rate_mpps > 2. *. tap.Scenario.rate_mpps)

let test_fig9_pcp_xdp_wins () =
  let run kind topology = quick { Scenario.default_config with kind; topology; gbps = 25. } in
  let xdp = run (Dpif.Afxdp Dpif.afxdp_default) (Scenario.PCP Scenario.Ct_xdp) in
  let kernel = run Dpif.Kernel (Scenario.PCP Scenario.Ct_veth) in
  let dpdk = run Dpif.Dpdk (Scenario.PCP Scenario.Ct_afpacket) in
  Alcotest.(check bool) "AF_XDP best for containers (Outcome 2)" true
    (xdp.Scenario.rate_mpps > kernel.Scenario.rate_mpps
    && xdp.Scenario.rate_mpps > dpdk.Scenario.rate_mpps)

let test_fig12_scaling_and_gap () =
  let run kind queues =
    (quick { Scenario.default_config with kind; queues; n_flows = 256; gbps = 25. })
      .Scenario.rate_mpps
  in
  let a1 = run (Dpif.Afxdp Dpif.afxdp_default) 1 in
  let a6 = run (Dpif.Afxdp Dpif.afxdp_default) 6 in
  let d6 = run Dpif.Dpdk 6 in
  Alcotest.(check bool) "queues help AF_XDP" true (a6 > 1.5 *. a1);
  Alcotest.(check bool) "AF_XDP sublinear (tops out ~12M)" true (a6 < 4. *. a1);
  Alcotest.(check bool) "DPDK above AF_XDP at 6 queues" true (d6 > a6)

(* -- TCP model -- *)

let test_fig8_offload_ladders () =
  let c = Ovs_sim.Costs.default in
  let gbps cfg = (Tcp_model.run c cfg).Tcp_model.gbps in
  let vhost csum tso =
    {
      Tcp_model.datapath = Tcp_model.Dp_afxdp_poll;
      virt = Tcp_model.Vhost;
      offloads = { Tcp_model.csum; tso };
      cross_host = false;
      link_gbps = 10.;
    }
  in
  let none = gbps (vhost false false) in
  let csum = gbps (vhost true false) in
  let tso = gbps (vhost true true) in
  Alcotest.(check bool) "csum offload helps" true (csum > none);
  Alcotest.(check bool) "TSO helps a lot (3x+)" true (tso > 3. *. csum)

let test_fig8_polling_beats_interrupt () =
  let c = Ovs_sim.Costs.default in
  let tap dp =
    {
      Tcp_model.datapath = dp;
      virt = Tcp_model.Tap;
      offloads = { Tcp_model.csum = false; tso = false };
      cross_host = true;
      link_gbps = 10.;
    }
  in
  let intr = (Tcp_model.run c (tap Tcp_model.Dp_afxdp_interrupt)).Tcp_model.gbps in
  let poll = (Tcp_model.run c (tap Tcp_model.Dp_afxdp_poll)).Tcp_model.gbps in
  Alcotest.(check bool) "polling beats interrupt (Fig 8a)" true (poll > intr)

let test_fig8_container_kernel_beats_afxdp_tcp () =
  (* Outcome 1: for container TCP, in-kernel still wins *)
  let c = Ovs_sim.Costs.default in
  let veth dp csum tso =
    (Tcp_model.run c
       {
         Tcp_model.datapath = dp;
         virt = Tcp_model.Veth;
         offloads = { Tcp_model.csum; tso };
         cross_host = false;
         link_gbps = 10.;
       })
      .Tcp_model.gbps
  in
  Alcotest.(check bool) "kernel veth TSO beats AF_XDP veth TSO" true
    (veth Tcp_model.Dp_kernel true true > veth Tcp_model.Dp_afxdp_poll true true)

let test_fig8_line_rate_cap () =
  let c = Ovs_sim.Costs.default in
  let r =
    Tcp_model.run c
      {
        Tcp_model.datapath = Tcp_model.Dp_kernel;
        virt = Tcp_model.Veth;
        offloads = { Tcp_model.csum = true; tso = true };
        cross_host = true;
        link_gbps = 10.;
      }
  in
  Alcotest.(check bool) "cross-host capped below 10G" true (r.Tcp_model.gbps < 10.)

let test_fig8_all_bars_positive () =
  let c = Ovs_sim.Costs.default in
  List.iter
    (fun (name, cfg, _) ->
      let r = Tcp_model.run c cfg in
      if r.Tcp_model.gbps <= 0. then Alcotest.failf "%s non-positive" name)
    Tcp_model.figure8_bars

let test_fig8_within_2x_of_paper () =
  let c = Ovs_sim.Costs.default in
  List.iter
    (fun (name, cfg, paper) ->
      let g = (Tcp_model.run c cfg).Tcp_model.gbps in
      if g < paper /. 2. || g > paper *. 2. then
        Alcotest.failf "%s: model %.1f vs paper %.1f beyond 2x" name g paper)
    Tcp_model.figure8_bars

(* -- RR model -- *)

let test_fig10_orderings () =
  let c = Ovs_sim.Costs.default in
  let run cfg = Rr.run (Rr.interhost_path c cfg) in
  let k = run Rr.Rr_kernel and a = run Rr.Rr_afxdp and d = run Rr.Rr_dpdk in
  Alcotest.(check bool) "kernel slowest" true
    (k.Rr.p50_us > a.Rr.p50_us && k.Rr.p50_us > d.Rr.p50_us);
  Alcotest.(check bool) "AF_XDP barely trails DPDK" true
    (a.Rr.p50_us -. d.Rr.p50_us < 6.);
  Alcotest.(check bool) "percentiles ordered" true
    (k.Rr.p50_us <= k.Rr.p90_us && k.Rr.p90_us <= k.Rr.p99_us);
  Alcotest.(check bool) "kernel has the fattest tail" true
    (k.Rr.p99_us -. k.Rr.p50_us > d.Rr.p99_us -. d.Rr.p50_us)

let test_fig11_orderings () =
  let c = Ovs_sim.Costs.default in
  let run cfg = Rr.run (Rr.intrahost_container_path c cfg) in
  let k = run Rr.Rr_kernel and a = run Rr.Rr_afxdp and d = run Rr.Rr_dpdk in
  Alcotest.(check bool) "kernel ~ AF_XDP" true (abs_float (k.Rr.p50_us -. a.Rr.p50_us) < 4.);
  Alcotest.(check bool) "DPDK much slower for containers" true
    (d.Rr.p50_us > 3. *. k.Rr.p50_us);
  Alcotest.(check bool) "DPDK tail beyond 200us" true (d.Rr.p99_us > 200.)

let test_rr_transactions_inverse_of_latency () =
  let c = Ovs_sim.Costs.default in
  let r = Rr.run (Rr.interhost_path c Rr.Rr_dpdk) in
  (* transactions/s ~ 1e6 / mean-latency-in-us; sanity band *)
  Alcotest.(check bool) "transaction rate plausible" true
    (r.Rr.transactions_per_s > 1e6 /. (r.Rr.p99_us *. 1.5)
    && r.Rr.transactions_per_s < 1e6 /. (r.Rr.p50_us /. 1.5))

let test_rr_deterministic () =
  let c = Ovs_sim.Costs.default in
  let a = Rr.run ~seed:3 (Rr.interhost_path c Rr.Rr_kernel) in
  let b = Rr.run ~seed:3 (Rr.interhost_path c Rr.Rr_kernel) in
  check (Alcotest.float 1e-9) "deterministic" a.Rr.p99_us b.Rr.p99_us

let () =
  Alcotest.run "ovs_trafficgen"
    [
      ( "pktgen",
        [
          Alcotest.test_case "flow diversity" `Quick test_pktgen_flow_diversity;
          Alcotest.test_case "single flow" `Quick test_pktgen_single_flow;
          Alcotest.test_case "frame length" `Quick test_pktgen_frame_len;
          Alcotest.test_case "valid packets" `Quick test_pktgen_valid_packets;
          Alcotest.test_case "queues hit" `Quick test_pktgen_queues_hit;
          Alcotest.test_case "zipf deterministic" `Quick test_pktgen_zipf_deterministic;
          Alcotest.test_case "zipf reset replays" `Quick test_pktgen_zipf_reset_replays;
          Alcotest.test_case "zipf skew" `Quick test_pktgen_zipf_skew;
          Alcotest.test_case "churn deterministic" `Quick
            test_churn_deterministic;
          Alcotest.test_case "churn rebirth changes flow" `Quick
            test_churn_rebirth_changes_flow;
          Alcotest.test_case "churn reset replays" `Quick
            test_churn_reset_replays;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_zipf_deterministic ] );
      ( "scenario",
        [
          Alcotest.test_case "fig2 ordering" `Slow test_fig2_ordering;
          Alcotest.test_case "table2 ladder monotone" `Slow test_table2_ladder_monotone;
          Alcotest.test_case "fig9 flow count effects" `Slow
            test_fig9_flows_hurt_userspace_help_kernel;
          Alcotest.test_case "fig9 kernel burns cores" `Slow test_fig9_kernel_burns_cores;
          Alcotest.test_case "fig9 vhost beats tap" `Slow test_fig9_pvp_vhost_beats_tap;
          Alcotest.test_case "fig9 pcp xdp wins" `Slow test_fig9_pcp_xdp_wins;
          Alcotest.test_case "fig12 scaling and gap" `Slow test_fig12_scaling_and_gap;
        ] );
      ( "tcp_model",
        [
          Alcotest.test_case "offload ladders" `Quick test_fig8_offload_ladders;
          Alcotest.test_case "polling beats interrupt" `Quick
            test_fig8_polling_beats_interrupt;
          Alcotest.test_case "container kernel wins TCP" `Quick
            test_fig8_container_kernel_beats_afxdp_tcp;
          Alcotest.test_case "line rate cap" `Quick test_fig8_line_rate_cap;
          Alcotest.test_case "all bars positive" `Quick test_fig8_all_bars_positive;
          Alcotest.test_case "within 2x of paper" `Quick test_fig8_within_2x_of_paper;
        ] );
      ( "rr_model",
        [
          Alcotest.test_case "fig10 orderings" `Quick test_fig10_orderings;
          Alcotest.test_case "fig11 orderings" `Quick test_fig11_orderings;
          Alcotest.test_case "transactions inverse latency" `Quick
            test_rr_transactions_inverse_of_latency;
          Alcotest.test_case "deterministic" `Quick test_rr_deterministic;
        ] );
    ]
