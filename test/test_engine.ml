(* Tests for the execution-engine redesign: Engine_vt byte-determinism
   (golden values captured on the pre-engine scheduler), the generic
   handle dispatch, the cross-domain primitives (atomic SPSC ring, Spscq,
   contended umempool, domain-safe coverage), and the Engine_domains
   parallel rig with its invariant oracles armed. *)

module Scenario = Ovs_trafficgen.Scenario
module Engine = Ovs_datapath.Engine
module Engine_vt = Ovs_datapath.Engine_vt
module Engine_domains = Ovs_datapath.Engine_domains
module Ring = Ovs_xsk.Ring
module Spscq = Ovs_xsk.Spscq
module Umempool = Ovs_xsk.Umempool
module Coverage = Ovs_sim.Coverage

let check = Alcotest.check

(* -- Engine_vt determinism: byte-identical to the pre-engine scheduler --

   The golden values below were captured by running these exact configs
   on the scheduler as it was before the Engine extraction (commit
   a2b9f21), printed with %.17g — every bit of the double. If the engine
   wrapper perturbs charged cycles, poll order, or accounting by any
   amount, these change. *)

let fingerprint (r : Scenario.result) =
  Printf.sprintf "rate=%.17g wall=%.17g busy=%.17g packets=%d"
    r.Scenario.rate_mpps r.Scenario.wall_ns r.Scenario.busy_ns
    r.Scenario.packets

let golden_pmd2 () =
  let r =
    Scenario.run
      (Scenario.config ~n_pmds:2 ~n_rxqs:2 ~queues:2 ~n_flows:8 ~measure:8_000
         ())
  in
  check Alcotest.string "pmd runtime charged cycles byte-identical"
    "rate=10.01975802346978 wall=798422.47500001499 \
     busy=2419150.0000000279 packets=8000"
    (fingerprint r)

let golden_legacy () =
  let r = Scenario.run (Scenario.config ~queues:2 ~n_flows:16 ~measure:8_000 ()) in
  check Alcotest.string "legacy loop charged cycles byte-identical"
    "rate=8.8928405213835227 wall=899600.07500003872 \
     busy=2419150.0000000279 packets=8000"
    (fingerprint r)

let golden_pvp () =
  let r =
    Scenario.run
      (Scenario.config ~topology:(Scenario.PVP Scenario.Vm_vhost) ~n_flows:4
         ~measure:6_000 ())
  in
  check Alcotest.string "PVP charged cycles byte-identical"
    "rate=5.9074945429517944 wall=1018367.4240000208 \
     busy=2980588.8480000403 packets=6016"
    (fingerprint r)

let vt_repeatable () =
  let go () =
    fingerprint
      (Scenario.run (Scenario.config ~n_pmds:2 ~queues:2 ~n_flows:8 ~measure:4_000 ()))
  in
  check Alcotest.string "two runs, same fingerprint" (go ()) (go ())

(* -- the generic handle: dispatch reaches the vt engine -- *)

let handle_dispatch () =
  let rig = Scenario.setup (Scenario.config ~n_pmds:2 ~queues:2 ~n_flows:4 ()) in
  let h = Engine_vt.handle rig.Scenario.r_eng in
  check Alcotest.string "handle name" "vt" (Engine.name h);
  Engine.start h;
  (* no traffic yet: a sweep polls empty queues *)
  check Alcotest.int "empty sweep" 0 (Engine.step h);
  let s = Engine.stats h in
  check Alcotest.string "stats engine" "vt" s.Engine.s_engine;
  check Alcotest.int "units = pmds" 2 s.Engine.s_units;
  check Alcotest.int "unit detail rows" 2 (List.length s.Engine.s_units_detail)

(* -- plain and atomic rings: one API, same behavior --

   The SPSC publication protocol must not change single-threaded
   semantics: any op sequence gives identical results on both flavours. *)

let ring_flavor_equiv =
  let gen = QCheck.(list (pair small_nat bool)) in
  QCheck.Test.make ~name:"plain and atomic rings behave identically" ~count:200
    gen (fun ops ->
      let a = Ring.create ~size:16 () in
      let b = Ring.create ~atomic:true ~size:16 () in
      List.for_all
        (fun (n, push) ->
          if push then
            Ring.produce a { Ring.addr = n; len = n land 0xff }
            = Ring.produce b { Ring.addr = n; len = n land 0xff }
          else Ring.consume a = Ring.consume b)
        ops
      && Ring.available a = Ring.available b
      && Ring.prod_idx a = Ring.prod_idx b
      && Ring.cons_idx a = Ring.cons_idx b
      && Ring.ops a = Ring.ops b)

(* -- cross-domain SPSC: a producer domain, this consumer -- *)

let ring_spsc_two_domains () =
  let n = 50_000 in
  let r = Ring.create ~atomic:true ~size:64 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Ring.produce r { Ring.addr = i; len = i land 0xff }) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 and in_order = ref true and last_cons = ref 0 in
  while !got < n do
    (match Ring.consume r with
    | Some { Ring.addr; len } ->
        if addr <> !got || len <> addr land 0xff then in_order := false;
        incr got
    | None -> Domain.cpu_relax ());
    let c = Ring.cons_idx r in
    if c < !last_cons then in_order := false;
    last_cons := c
  done;
  Domain.join producer;
  check Alcotest.bool "descriptors in order, cursors monotone" true !in_order;
  check Alcotest.int "all consumed" n (Ring.cons_idx r);
  check Alcotest.int "nothing pending" 0 (Ring.available r)

let ring_spsc_bursts () =
  let n = 50_000 in
  let r = Ring.create ~atomic:true ~size:128 () in
  let producer =
    Domain.spawn (fun () ->
        let sent = ref 0 in
        while !sent < n do
          let batch =
            List.init (Int.min 32 (n - !sent)) (fun k ->
                { Ring.addr = !sent + k; len = 0 })
          in
          let pushed = Ring.push_burst r batch in
          sent := !sent + pushed;
          if pushed = 0 then Domain.cpu_relax ()
        done)
  in
  let got = ref 0 and in_order = ref true in
  while !got < n do
    match Ring.pop_burst r ~max:32 with
    | [] -> Domain.cpu_relax ()
    | descs ->
        List.iter
          (fun (d : Ring.desc) ->
            if d.Ring.addr <> !got then in_order := false;
            incr got)
          descs
  done;
  Domain.join producer;
  check Alcotest.bool "burst stream in order" true !in_order;
  check Alcotest.int "all consumed" n !got

let spscq_two_domains () =
  let n = 50_000 in
  let q : int Spscq.t = Spscq.create ~capacity:37 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spscq.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 and ok = ref true in
  while !got < n do
    match Spscq.try_pop q with
    | Some v ->
        if v <> !got then ok := false;
        if Spscq.length q > Spscq.capacity q then ok := false;
        incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check Alcotest.bool "fifo order and bound held" true !ok;
  check Alcotest.bool "drained" true (Spscq.is_empty q)

(* -- contended umempool: 4 domains allocating under the real mutex -- *)

let umempool_contended () =
  let n_frames = 256 and n_domains = 4 and rounds = 5_000 in
  let pool =
    Umempool.create ~contended:true ~n_frames ~strategy:Umempool.Spinlock_batched
      ()
  in
  (* one flag per frame: set on get, cleared on put — a double allocation
     trips the compare_and_set *)
  let owned = Array.init n_frames (fun _ -> Atomic.make false) in
  let races = Atomic.make 0 in
  let worker () =
    for _ = 1 to rounds do
      let frames = Umempool.get_batch pool 8 in
      List.iter
        (fun f ->
          if not (Atomic.compare_and_set owned.(f) false true) then
            Atomic.incr races)
        frames;
      List.iter
        (fun f ->
          if not (Atomic.compare_and_set owned.(f) true false) then
            Atomic.incr races)
        frames;
      Umempool.put_batch pool frames
    done
  in
  let ds = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check Alcotest.int "no frame handed to two domains" 0 (Atomic.get races);
  check Alcotest.int "every frame back in the pool" n_frames
    (List.length (Umempool.free_frames pool))

(* -- coverage counters: per-domain accumulation, no lost increments -- *)

let coverage_domain_safe () =
  let c = Coverage.counter "test_engine_domain_safe" in
  let per_domain = 100_000 and n_domains = 4 in
  let ds =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Coverage.incr c
            done;
            Coverage.flush_domain ()))
  in
  List.iter Domain.join ds;
  check Alcotest.int "4-domain increments all counted"
    (per_domain * n_domains)
    (Coverage.read "test_engine_domain_safe")

(* -- the parallel engine end to end, oracles armed -- *)

let domains_smoke ~n_domains () =
  let cfg = Scenario.config ~n_flows:8 ~measure:20_000 () in
  let stats, viols = Scenario.run_multicore ~oracles:true cfg ~n_domains () in
  check Alcotest.(list string) "no oracle violations" [] viols;
  check Alcotest.string "engine name" "domains" stats.Engine.s_engine;
  check Alcotest.int "offered the full target" 20_000 stats.Engine.s_offered;
  check Alcotest.int "conservation: offered = delivered + dropped"
    stats.Engine.s_offered
    (stats.Engine.s_delivered + stats.Engine.s_dropped);
  check Alcotest.bool "made progress" true (stats.Engine.s_delivered > 0);
  check Alcotest.bool "saw upcalls (cold EMC)" true (stats.Engine.s_upcalls > 0);
  check Alcotest.bool "wall clock advanced" true (stats.Engine.s_wall_ns > 0.);
  check Alcotest.int "unit detail: pmds + revalidator + injector"
    (n_domains + 2)
    (List.length stats.Engine.s_units_detail)

let domains_via_run () =
  let r =
    Scenario.run (Scenario.config ~n_flows:8 ~measure:10_000 ~engine:(`Domains 2) ())
  in
  check Alcotest.bool "run dispatches to the domains engine" true
    (r.Scenario.packets > 0 && r.Scenario.rate_mpps > 0.)

let () =
  Alcotest.run "ovs_engine"
    [
      ( "vt-determinism",
        [
          Alcotest.test_case "golden pmd2" `Quick golden_pmd2;
          Alcotest.test_case "golden legacy" `Quick golden_legacy;
          Alcotest.test_case "golden pvp" `Quick golden_pvp;
          Alcotest.test_case "repeatable" `Quick vt_repeatable;
        ] );
      ( "handle",
        [ Alcotest.test_case "dispatch" `Quick handle_dispatch ] );
      ( "spsc",
        [
          QCheck_alcotest.to_alcotest ring_flavor_equiv;
          Alcotest.test_case "ring 2 domains" `Quick ring_spsc_two_domains;
          Alcotest.test_case "ring bursts 2 domains" `Quick ring_spsc_bursts;
          Alcotest.test_case "spscq 2 domains" `Quick spscq_two_domains;
        ] );
      ( "shared-state",
        [
          Alcotest.test_case "umempool 4 domains" `Quick umempool_contended;
          Alcotest.test_case "coverage 4 domains" `Quick coverage_domain_safe;
        ] );
      ( "domains-engine",
        [
          Alcotest.test_case "2 domains, oracles" `Quick (domains_smoke ~n_domains:2);
          Alcotest.test_case "4 domains, oracles" `Quick (domains_smoke ~n_domains:4);
          Alcotest.test_case "8 domains, oracles" `Quick (domains_smoke ~n_domains:8);
          Alcotest.test_case "via Scenario.run" `Quick domains_via_run;
        ] );
    ]
