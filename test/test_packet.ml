(* Unit and property tests for the packet library: wire formats,
   checksums, tunnels, flow-key extraction. *)

open Ovs_packet
module FK = Flow_key

let check = Alcotest.check

(* -- Mac -- *)

let test_mac_roundtrip () =
  let s = "02:00:00:00:00:2a" in
  check Alcotest.string "string roundtrip" s (Mac.to_string (Mac.of_string s))

let test_mac_bytes_roundtrip () =
  let m = Mac.of_string "de:ad:be:ef:01:02" in
  let b = Bytes.make 8 '\000' in
  Mac.to_bytes m b ~off:1;
  check Alcotest.int "bytes roundtrip" m (Mac.of_bytes b ~off:1)

let test_mac_multicast () =
  Alcotest.(check bool) "broadcast is multicast" true (Mac.is_multicast Mac.broadcast);
  Alcotest.(check bool) "of_index is unicast" false
    (Mac.is_multicast (Mac.of_index 7))

let test_mac_of_index_distinct () =
  Alcotest.(check bool) "distinct" true (Mac.of_index 1 <> Mac.of_index 2)

(* -- Checksum -- *)

let test_checksum_verify_computed () =
  let b = Bytes.of_string "\x45\x00\x00\x54\x00\x00\x40\x00\x40\x01\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let c = Checksum.compute b ~off:0 ~len:20 in
  Bytes.set_uint16_be b 10 c;
  Alcotest.(check bool) "verifies" true (Checksum.verify b ~off:0 ~len:20)

let test_checksum_detects_corruption () =
  let b = Bytes.make 20 'x' in
  let c = Checksum.compute b ~off:0 ~len:20 in
  Bytes.set_uint16_be b 10 c;
  Bytes.set_uint8 b 3 (Bytes.get_uint8 b 3 lxor 0xFF);
  Alcotest.(check bool) "corruption detected" false (Checksum.verify b ~off:0 ~len:20)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  let c = Checksum.compute b ~off:0 ~len:3 in
  Alcotest.(check bool) "checksum in range" true (c >= 0 && c <= 0xFFFF)

let prop_checksum_roundtrip =
  QCheck.Test.make ~count:300 ~name:"checksum of random data verifies"
    QCheck.(string_of_size Gen.(int_range 2 256))
    (fun s ->
      let len = String.length s in
      let b = Bytes.make (len + 2) '\000' in
      Bytes.blit_string s 0 b 2 len;
      let c = Checksum.compute b ~off:0 ~len:(len + 2) in
      Bytes.set_uint16_be b 0 c;
      Checksum.verify b ~off:0 ~len:(len + 2))

(* -- Buffer -- *)

let test_buffer_push_pull () =
  let buf = Build.udp ~frame_len:64 () in
  let before = Buffer.contents buf in
  Buffer.push buf 8;
  check Alcotest.int "grew" 72 (Buffer.length buf);
  Buffer.pull buf 8;
  check Alcotest.bytes "restored" before (Buffer.contents buf)

let test_buffer_put_grows () =
  let buf = Buffer.create ~size:8 () in
  Buffer.put buf 10_000;
  check Alcotest.int "len" 10_000 (Buffer.length buf)

let test_buffer_offsets_track_push () =
  let buf = Build.udp ~frame_len:64 () in
  let l3 = buf.Buffer.l3_ofs in
  Buffer.push buf 20;
  check Alcotest.int "l3 shifted" (l3 + 20) buf.Buffer.l3_ofs;
  Buffer.pull buf 20;
  check Alcotest.int "l3 restored" l3 buf.Buffer.l3_ofs

let test_buffer_headroom_exhaustion () =
  let buf = Buffer.create ~headroom:4 ~size:8 () in
  Alcotest.check_raises "push beyond headroom"
    (Failure "Buffer.push: headroom exhausted") (fun () -> Buffer.push buf 5)

let test_buffer_reset_metadata () =
  let buf = Build.udp () in
  buf.Buffer.recirc_id <- 7;
  buf.Buffer.ct_state <- 3;
  Buffer.reset_metadata buf;
  check Alcotest.int "recirc cleared" 0 buf.Buffer.recirc_id;
  check Alcotest.int "ct cleared" 0 buf.Buffer.ct_state

let test_buffer_clone_independent () =
  let a = Build.udp () in
  let original = Buffer.get_u8 a 0 in
  let b = Buffer.clone a in
  Buffer.set_u8 b 0 (original lxor 0xFF);
  check Alcotest.int "clone does not alias" original (Buffer.get_u8 a 0)

(* -- Ethernet -- *)

let test_ethernet_parse_build () =
  let buf = Build.udp ~src_mac:(Mac.of_index 5) ~dst_mac:(Mac.of_index 6) () in
  match Ethernet.parse buf with
  | None -> Alcotest.fail "parse failed"
  | Some e ->
      check Alcotest.int "src" (Mac.of_index 5) e.Ethernet.src;
      check Alcotest.int "dst" (Mac.of_index 6) e.Ethernet.dst;
      check Alcotest.int "type" Ethernet.Ethertype.ipv4 e.Ethernet.eth_type

let test_ethernet_vlan_push_pop () =
  let buf = Build.udp () in
  let original = Buffer.contents buf in
  Ethernet.push_vlan buf ~tci:((3 lsl 13) lor 100);
  (match Ethernet.parse buf with
  | Some e ->
      check Alcotest.int "vid" 100 (Ethernet.vlan_vid e.Ethernet.vlan_tci);
      check Alcotest.int "pcp" 3 (Ethernet.vlan_pcp e.Ethernet.vlan_tci)
  | None -> Alcotest.fail "tagged parse failed");
  Ethernet.pop_vlan buf;
  check Alcotest.bytes "pop undoes push" original (Buffer.contents buf)

let test_ethernet_set_addresses () =
  let buf = Build.udp () in
  Ethernet.set_dst buf (Mac.of_index 77);
  Ethernet.set_src buf (Mac.of_index 78);
  check Alcotest.int "dst" (Mac.of_index 77) (Ethernet.get_dst buf);
  check Alcotest.int "src" (Mac.of_index 78) (Ethernet.get_src buf)

let test_ethernet_short_frame () =
  let buf = Buffer.create ~size:8 () in
  Buffer.put buf 8;
  Alcotest.(check bool) "short frame rejected" true (Ethernet.parse buf = None)

(* -- IPv4 -- *)

let test_ipv4_parse_fields () =
  let src = Ipv4.addr_of_string "192.168.1.10" in
  let dst = Ipv4.addr_of_string "10.20.30.40" in
  let buf = Build.udp ~src_ip:src ~dst_ip:dst ~ttl:17 () in
  ignore (Ethernet.parse buf);
  match Ipv4.parse buf with
  | None -> Alcotest.fail "parse failed"
  | Some ip ->
      check Alcotest.int "src" src ip.Ipv4.src;
      check Alcotest.int "dst" dst ip.Ipv4.dst;
      check Alcotest.int "ttl" 17 ip.Ipv4.ttl;
      check Alcotest.int "proto" Ipv4.Proto.udp ip.Ipv4.proto;
      Alcotest.(check bool) "header checksum valid" true
        (Checksum.verify buf.Buffer.data
           ~off:(Buffer.abs buf buf.Buffer.l3_ofs)
           ~len:Ipv4.header_len)

let test_ipv4_addr_roundtrip () =
  let s = "172.16.254.3" in
  check Alcotest.string "roundtrip" s (Ipv4.addr_to_string (Ipv4.addr_of_string s))

let test_ipv4_update_csum_after_rewrite () =
  let buf = Build.udp () in
  ignore (Ethernet.parse buf);
  ignore (Ipv4.parse buf);
  Ipv4.set_ttl buf 5;
  Ipv4.update_csum buf;
  Alcotest.(check bool) "csum valid after rewrite" true
    (Checksum.verify buf.Buffer.data
       ~off:(Buffer.abs buf buf.Buffer.l3_ofs)
       ~len:Ipv4.header_len)

let test_ipv4_rejects_v6 () =
  let buf = Build.udp () in
  ignore (Ethernet.parse buf);
  Buffer.set_u8 buf buf.Buffer.l3_ofs 0x65;
  Alcotest.(check bool) "wrong version rejected" true (Ipv4.parse buf = None)

let test_ipv4_fragments () =
  let buf = Build.udp () in
  ignore (Ethernet.parse buf);
  (* set MF flag *)
  Buffer.set_u16 buf (buf.Buffer.l3_ofs + 6) (0x1 lsl 13);
  (match Ipv4.parse buf with
  | Some ip ->
      Alcotest.(check bool) "MF makes fragment" true (Ipv4.is_fragment ip);
      Alcotest.(check bool) "first fragment has L4" false (Ipv4.is_later_fragment ip)
  | None -> Alcotest.fail "parse");
  Buffer.set_u16 buf (buf.Buffer.l3_ofs + 6) 100;
  match Ipv4.parse buf with
  | Some ip -> Alcotest.(check bool) "offset makes later fragment" true (Ipv4.is_later_fragment ip)
  | None -> Alcotest.fail "parse"

(* -- UDP / TCP / ICMP / ARP -- *)

let test_udp_parse_ports () =
  let buf = Build.udp ~src_port:1111 ~dst_port:2222 () in
  ignore (Ethernet.parse buf);
  ignore (Ipv4.parse buf);
  match Udp.parse buf with
  | Some u ->
      check Alcotest.int "sport" 1111 u.Udp.src_port;
      check Alcotest.int "dport" 2222 u.Udp.dst_port
  | None -> Alcotest.fail "udp parse"

let test_udp_checksum_valid () =
  let src_ip = Ipv4.addr_of_string "10.0.0.1" in
  let dst_ip = Ipv4.addr_of_string "10.0.0.2" in
  let buf = Build.udp ~frame_len:128 ~src_ip ~dst_ip () in
  ignore (Ethernet.parse buf);
  ignore (Ipv4.parse buf);
  match Udp.parse buf with
  | Some u ->
      Alcotest.(check bool) "pseudo-header checksum verifies" true
        (Checksum.verify_pseudo buf.Buffer.data
           ~off:(Buffer.abs buf buf.Buffer.l4_ofs)
           ~len:u.Udp.len ~src:src_ip ~dst:dst_ip ~proto:Ipv4.Proto.udp)
  | None -> Alcotest.fail "udp parse"

let test_tcp_parse_flags () =
  let buf = Build.tcp ~flags:(Tcp.Flags.syn lor Tcp.Flags.ack) ~seq:1000 ~ack:2000 () in
  ignore (Ethernet.parse buf);
  ignore (Ipv4.parse buf);
  match Tcp.parse buf with
  | Some t ->
      check Alcotest.int "flags" (Tcp.Flags.syn lor Tcp.Flags.ack) t.Tcp.flags;
      check Alcotest.int "seq" 1000 t.Tcp.seq;
      check Alcotest.int "ack" 2000 t.Tcp.ack;
      check Alcotest.int "data offset" 20 t.Tcp.data_ofs
  | None -> Alcotest.fail "tcp parse"

let test_tcp_checksum_valid () =
  let src_ip = Ipv4.addr_of_string "1.2.3.4" and dst_ip = Ipv4.addr_of_string "5.6.7.8" in
  let buf = Build.tcp ~payload_len:37 ~src_ip ~dst_ip () in
  ignore (Ethernet.parse buf);
  ignore (Ipv4.parse buf);
  Alcotest.(check bool) "tcp checksum verifies" true
    (Checksum.verify_pseudo buf.Buffer.data
       ~off:(Buffer.abs buf buf.Buffer.l4_ofs)
       ~len:(Tcp.header_len + 37) ~src:src_ip ~dst:dst_ip ~proto:Ipv4.Proto.tcp)

let test_icmp_echo () =
  let buf = Build.icmp ~ident:9 ~seq:3 () in
  ignore (Ethernet.parse buf);
  ignore (Ipv4.parse buf);
  match Icmp.parse buf with
  | Some i ->
      check Alcotest.int "type" Icmp.Kind.echo_request i.Icmp.icmp_type;
      check Alcotest.int "ident" 9 i.Icmp.ident;
      check Alcotest.int "seq" 3 i.Icmp.seq
  | None -> Alcotest.fail "icmp parse"

let test_arp_roundtrip () =
  let spa = Ipv4.addr_of_string "10.0.0.1" and tpa = Ipv4.addr_of_string "10.0.0.2" in
  let buf = Build.arp ~src_mac:(Mac.of_index 3) ~op:Arp.Op.request ~spa ~tpa () in
  ignore (Ethernet.parse buf);
  match Arp.parse buf with
  | Some a ->
      check Alcotest.int "op" Arp.Op.request a.Arp.op;
      check Alcotest.int "sha" (Mac.of_index 3) a.Arp.sha;
      check Alcotest.int "spa" spa a.Arp.spa;
      check Alcotest.int "tpa" tpa a.Arp.tpa
  | None -> Alcotest.fail "arp parse"

(* -- Tunnels -- *)

let tunnel_roundtrip kind () =
  let inner = Build.udp ~frame_len:96 ~src_port:777 () in
  let original = Buffer.contents inner in
  let src_ip = Ipv4.addr_of_string "192.168.0.1" in
  let dst_ip = Ipv4.addr_of_string "192.168.0.2" in
  Tunnel.encap inner kind ~vni:42 ~src_mac:(Mac.of_index 1)
    ~dst_mac:(Mac.of_index 2) ~src_ip ~dst_ip ();
  check Alcotest.int "overhead added"
    (Bytes.length original + Tunnel.overhead kind)
    (Buffer.length inner);
  match Tunnel.decap inner with
  | None -> Alcotest.fail "decap failed"
  | Some r ->
      Alcotest.(check bool) "kind" true (r.Tunnel.kind = kind);
      check Alcotest.int "vni" 42 r.Tunnel.md.Buffer.tun_id;
      check Alcotest.int "outer src" src_ip r.Tunnel.md.Buffer.tun_src;
      check Alcotest.int "outer dst" dst_ip r.Tunnel.md.Buffer.tun_dst;
      check Alcotest.bytes "inner intact" original (Buffer.contents inner);
      (match inner.Buffer.tunnel with
      | Some md -> check Alcotest.int "metadata recorded" 42 md.Buffer.tun_id
      | None -> Alcotest.fail "no tunnel metadata")

let test_decap_non_tunnel () =
  let buf = Build.udp ~dst_port:80 () in
  Alcotest.(check bool) "plain udp is not a tunnel" true (Tunnel.decap buf = None)

let test_geneve_udp_port_on_wire () =
  let inner = Build.udp () in
  Tunnel.encap inner Tunnel.Geneve ~vni:7 ~src_mac:1 ~dst_mac:2
    ~src_ip:(Ipv4.addr_of_string "1.1.1.1") ~dst_ip:(Ipv4.addr_of_string "2.2.2.2") ();
  ignore (Ethernet.parse inner);
  ignore (Ipv4.parse inner);
  match Udp.parse inner with
  | Some u -> check Alcotest.int "dst port 6081" 6081 u.Udp.dst_port
  | None -> Alcotest.fail "outer udp"

let prop_tunnel_roundtrip =
  QCheck.Test.make ~count:200 ~name:"tunnel encap/decap preserves inner packet"
    QCheck.(pair (int_range 0 3) (int_range 64 1400))
    (fun (k, len) ->
      let kind =
        match k with 0 -> Tunnel.Geneve | 1 -> Tunnel.Vxlan | 2 -> Tunnel.Gre | _ -> Tunnel.Erspan
      in
      let inner = Build.udp ~frame_len:len () in
      let original = Buffer.contents inner in
      Tunnel.encap inner kind ~vni:(len land 0xFFFF) ~src_mac:1 ~dst_mac:2
        ~src_ip:(Ipv4.addr_of_string "1.0.0.1")
        ~dst_ip:(Ipv4.addr_of_string "1.0.0.2") ();
      match Tunnel.decap inner with
      | Some r -> r.Tunnel.md.Buffer.tun_id = len land 0xFFFF
                  && Buffer.contents inner = original
      | None -> false)

(* -- Flow key -- *)

let test_flow_key_extract_udp () =
  let buf =
    Build.udp ~src_mac:(Mac.of_index 1) ~dst_mac:(Mac.of_index 2)
      ~src_ip:(Ipv4.addr_of_string "10.1.1.1") ~dst_ip:(Ipv4.addr_of_string "10.2.2.2")
      ~src_port:100 ~dst_port:200 ()
  in
  buf.Buffer.in_port <- 4;
  let k = FK.extract buf in
  check Alcotest.int "in_port" 4 (FK.get k FK.Field.In_port);
  check Alcotest.int "dl_type" Ethernet.Ethertype.ipv4 (FK.get k FK.Field.Dl_type);
  check Alcotest.int "nw_src" (Ipv4.addr_of_string "10.1.1.1") (FK.get k FK.Field.Nw_src);
  check Alcotest.int "nw_proto" Ipv4.Proto.udp (FK.get k FK.Field.Nw_proto);
  check Alcotest.int "tp_src" 100 (FK.get k FK.Field.Tp_src);
  check Alcotest.int "tp_dst" 200 (FK.get k FK.Field.Tp_dst)

let test_flow_key_extract_tcp_flags () =
  let buf = Build.tcp ~flags:Tcp.Flags.syn () in
  let k = FK.extract buf in
  check Alcotest.int "tcp flags" Tcp.Flags.syn (FK.get k FK.Field.Tcp_flags)

let test_flow_key_extract_arp () =
  let spa = Ipv4.addr_of_string "10.0.0.1" and tpa = Ipv4.addr_of_string "10.0.0.9" in
  let buf = Build.arp ~op:Arp.Op.request ~spa ~tpa () in
  let k = FK.extract buf in
  check Alcotest.int "arp op in nw_proto" Arp.Op.request (FK.get k FK.Field.Nw_proto);
  check Alcotest.int "spa in nw_src" spa (FK.get k FK.Field.Nw_src);
  check Alcotest.int "tpa in nw_dst" tpa (FK.get k FK.Field.Nw_dst)

let test_flow_key_tunnel_metadata () =
  let buf = Build.udp () in
  buf.Buffer.tunnel <- Some { Buffer.tun_id = 9; tun_src = 1; tun_dst = 2 };
  let k = FK.extract buf in
  check Alcotest.int "tun_id" 9 (FK.get k FK.Field.Tun_id)

let test_flow_key_hash_equal_consistent () =
  let a = FK.extract (Build.udp ()) in
  let b = FK.extract (Build.udp ()) in
  Alcotest.(check bool) "equal keys" true (FK.equal a b);
  check Alcotest.int "equal hashes" (FK.hash a) (FK.hash b)

let test_flow_key_masked_ops () =
  let a = FK.extract (Build.udp ~src_port:1 ()) in
  let b = FK.extract (Build.udp ~src_port:2 ()) in
  let mask = FK.create () in
  FK.set mask FK.Field.Nw_src (FK.Field.full_mask FK.Field.Nw_src);
  Alcotest.(check bool) "equal under mask ignoring ports" true (FK.equal_masked a b mask);
  check Alcotest.int "masked hashes equal" (FK.hash_masked a mask) (FK.hash_masked b mask);
  let full = FK.create () in
  Array.iter (fun f -> FK.set full f (FK.Field.full_mask f)) FK.Field.all;
  Alcotest.(check bool) "differ under full mask" false (FK.equal_masked a b full)

let test_flow_key_rss_depends_on_tuple () =
  let a = FK.extract (Build.udp ~src_port:1 ()) in
  let b = FK.extract (Build.udp ~src_port:9 ()) in
  Alcotest.(check bool) "different ports, different hash" true
    (FK.rss_hash a <> FK.rss_hash b)

let prop_mask_application_idempotent =
  QCheck.Test.make ~count:200 ~name:"apply_mask is idempotent"
    QCheck.(small_int)
    (fun seed ->
      let prng = Ovs_sim.Prng.of_int seed in
      let k = FK.create () and m = FK.create () in
      Array.iter
        (fun f ->
          FK.set k f (Ovs_sim.Prng.int prng 1_000_000);
          if Ovs_sim.Prng.bool prng then FK.set m f (FK.Field.full_mask f))
        FK.Field.all;
      let once = FK.apply_mask k m in
      let twice = FK.apply_mask once m in
      FK.equal once twice)

(* -- randomized round-trip properties: build -> parse -> rebuild -- *)

module Prng = Ovs_sim.Prng

let rand_ip prng = 1 + Prng.int prng 0x0FFF_FFFE
let rand_port prng = 1 + Prng.int prng 65534
let rand_mac prng = Mac.of_index (1 + Prng.int prng 200)

(* Rebuilding a frame from nothing but its parsed headers and comparing
   bytes proves the parsers capture every field the builders write (the
   payloads are zero-filled by construction). *)
let prop_udp_reserialize =
  QCheck.Test.make ~count:300 ~name:"udp: build -> parse -> rebuild byte-identical"
    QCheck.small_int
    (fun seed ->
      let prng = Prng.of_int (seed + 1) in
      let src_ip = rand_ip prng and dst_ip = rand_ip prng in
      let buf =
        Build.udp
          ~frame_len:(64 + Prng.int prng 600)
          ~src_mac:(rand_mac prng) ~dst_mac:(rand_mac prng) ~src_ip ~dst_ip
          ~src_port:(rand_port prng) ~dst_port:(rand_port prng)
          ~ttl:(1 + Prng.int prng 254) ()
      in
      let e = Option.get (Ethernet.parse buf) in
      let ip = Option.get (Ipv4.parse buf) in
      let u = Option.get (Udp.parse buf) in
      let rebuilt =
        Build.udp ~frame_len:(Buffer.length buf) ~src_mac:e.Ethernet.src
          ~dst_mac:e.Ethernet.dst ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
          ~src_port:u.Udp.src_port ~dst_port:u.Udp.dst_port ~ttl:ip.Ipv4.ttl ()
      in
      Buffer.contents rebuilt = Buffer.contents buf
      (* and both header checksums must verify on the wire *)
      && Checksum.verify buf.Buffer.data
           ~off:(Buffer.abs buf buf.Buffer.l3_ofs)
           ~len:Ipv4.header_len
      && Checksum.verify_pseudo buf.Buffer.data
           ~off:(Buffer.abs buf buf.Buffer.l4_ofs)
           ~len:u.Udp.len ~src:src_ip ~dst:dst_ip ~proto:Ipv4.Proto.udp)

let prop_tcp_reserialize =
  QCheck.Test.make ~count:300 ~name:"tcp: build -> parse -> rebuild byte-identical"
    QCheck.small_int
    (fun seed ->
      let prng = Prng.of_int (seed + 2) in
      let src_ip = rand_ip prng and dst_ip = rand_ip prng in
      let payload_len = Prng.int prng 512 in
      let buf =
        Build.tcp ~payload_len ~src_mac:(rand_mac prng) ~dst_mac:(rand_mac prng)
          ~src_ip ~dst_ip ~src_port:(rand_port prng) ~dst_port:(rand_port prng)
          ~flags:(1 + Prng.int prng 0x3E)
          ~seq:(Prng.int prng 0x3FFF_FFFF)
          ~ack:(Prng.int prng 0x3FFF_FFFF)
          ()
      in
      let e = Option.get (Ethernet.parse buf) in
      let ip = Option.get (Ipv4.parse buf) in
      let t = Option.get (Tcp.parse buf) in
      let rebuilt =
        Build.tcp ~payload_len ~src_mac:e.Ethernet.src ~dst_mac:e.Ethernet.dst
          ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ~src_port:t.Tcp.src_port
          ~dst_port:t.Tcp.dst_port ~flags:t.Tcp.flags ~seq:t.Tcp.seq ~ack:t.Tcp.ack ()
      in
      Buffer.contents rebuilt = Buffer.contents buf
      && Checksum.verify_pseudo buf.Buffer.data
           ~off:(Buffer.abs buf buf.Buffer.l4_ofs)
           ~len:(Tcp.header_len + payload_len)
           ~src:src_ip ~dst:dst_ip ~proto:Ipv4.Proto.tcp)

let prop_arp_reserialize =
  QCheck.Test.make ~count:300 ~name:"arp: build -> parse -> rebuild byte-identical"
    QCheck.small_int
    (fun seed ->
      let prng = Prng.of_int (seed + 3) in
      let buf =
        Build.arp ~src_mac:(rand_mac prng) ~dst_mac:(rand_mac prng)
          ~op:(if Prng.bool prng then Arp.Op.request else Arp.Op.reply)
          ~spa:(rand_ip prng) ~tpa:(rand_ip prng) ()
      in
      let e = Option.get (Ethernet.parse buf) in
      let a = Option.get (Arp.parse buf) in
      let rebuilt =
        Build.arp ~src_mac:a.Arp.sha ~dst_mac:e.Ethernet.dst ~op:a.Arp.op
          ~spa:a.Arp.spa ~tpa:a.Arp.tpa ()
      in
      Buffer.contents rebuilt = Buffer.contents buf)

(* Flow-key extraction is a pure function of the frame: building the same
   randomized spec twice (across every protocol, including Geneve
   encapsulation) must yield equal keys, hashes and RSS hashes. *)
let prop_extract_deterministic =
  QCheck.Test.make ~count:300 ~name:"flow-key extraction is deterministic"
    QCheck.small_int
    (fun seed ->
      let build salt =
        let prng = Prng.of_int (seed + 4) in
        ignore salt;
        let src_ip = rand_ip prng and dst_ip = rand_ip prng in
        let sport = rand_port prng and dport = rand_port prng in
        let pkt =
          match Prng.int prng 5 with
          | 0 -> Build.udp ~src_ip ~dst_ip ~src_port:sport ~dst_port:dport ()
          | 1 ->
              Build.tcp ~src_ip ~dst_ip ~src_port:sport ~dst_port:dport
                ~flags:(1 + Prng.int prng 0x3E) ()
          | 2 -> Build.icmp ~src_ip ~dst_ip ~ident:sport ~seq:3 ()
          | 3 -> Build.arp ~spa:src_ip ~tpa:dst_ip ()
          | _ ->
              let inner =
                Build.udp ~src_ip ~dst_ip ~src_port:sport ~dst_port:dport ()
              in
              Tunnel.encap inner Tunnel.Geneve
                ~vni:(Prng.int prng 0xFFFF)
                ~src_mac:(rand_mac prng) ~dst_mac:(rand_mac prng)
                ~src_ip:(rand_ip prng) ~dst_ip:(rand_ip prng) ();
              ignore (Tunnel.decap inner);
              inner
        in
        pkt.Buffer.in_port <- 1 + Prng.int prng 8;
        pkt
      in
      let a = FK.extract (build 0) and b = FK.extract (build 1) in
      FK.equal a b && FK.hash a = FK.hash b && FK.rss_hash a = FK.rss_hash b)

let prop_geneve_extract_tunnel_fields =
  QCheck.Test.make ~count:200 ~name:"geneve: outer and decapsulated keys"
    QCheck.(int_range 1 0xFFFFFF)
    (fun vni ->
      let sport = 1 + (vni mod 60_000) in
      let inner = Build.udp ~src_port:sport () in
      Tunnel.encap inner Tunnel.Geneve ~vni ~src_mac:1 ~dst_mac:2
        ~src_ip:(Ipv4.addr_of_string "192.168.0.1")
        ~dst_ip:(Ipv4.addr_of_string "192.168.0.2") ();
      (* the outer flow is a UDP flow to the Geneve port *)
      let outer = FK.extract inner in
      FK.get outer FK.Field.Tp_dst = 6081
      && FK.get outer FK.Field.Nw_proto = Ipv4.Proto.udp
      &&
      (* after decap, the key is the inner flow plus tunnel metadata *)
      match Tunnel.decap inner with
      | None -> false
      | Some _ ->
          let k = FK.extract inner in
          FK.get k FK.Field.Tun_id = vni && FK.get k FK.Field.Tp_src = sport)

(* -- IPv6 -- *)

let build_ipv6_udp ~src ~dst () =
  let payload = Udp.header_len + 16 in
  let flen = Ethernet.header_len + Ipv6.header_len + payload in
  let buf = Buffer.create ~size:flen () in
  Buffer.put buf flen;
  Ethernet.write buf ~dst:(Mac.of_index 2) ~src:(Mac.of_index 1)
    ~eth_type:Ethernet.Ethertype.ipv6;
  Ipv6.write buf ~next_header:Ipv4.Proto.udp ~src ~dst ~payload_len:payload ();
  buf

let test_ipv6_parse_roundtrip () =
  let src = Ipv6.addr_of_int 0x1111 and dst = Ipv6.addr_of_int 0x2222 in
  let buf = build_ipv6_udp ~src ~dst () in
  ignore (Ethernet.parse buf);
  match Ipv6.parse buf with
  | None -> Alcotest.fail "ipv6 parse failed"
  | Some ip ->
      Alcotest.(check bool) "src" true (ip.Ipv6.src = src);
      Alcotest.(check bool) "dst" true (ip.Ipv6.dst = dst);
      check Alcotest.int "next header" Ipv4.Proto.udp ip.Ipv6.next_header

let prop_ipv6_extract_deterministic =
  QCheck.Test.make ~count:200 ~name:"ipv6: extraction deterministic, addresses folded"
    QCheck.(int_range 1 0xFFFF)
    (fun host ->
      let build () =
        build_ipv6_udp ~src:(Ipv6.addr_of_int host) ~dst:(Ipv6.addr_of_int (host + 1)) ()
      in
      let a = FK.extract (build ()) and b = FK.extract (build ()) in
      FK.equal a b
      && FK.get a FK.Field.Dl_type = Ethernet.Ethertype.ipv6
      && FK.get a FK.Field.Ip6_src_lo <> 0)

(* -- GSO -- *)

let big_tcp ?(payload = 5000) ?(flags = Tcp.Flags.ack lor Tcp.Flags.psh) () =
  Build.tcp ~payload_len:payload ~flags ~seq:1_000_000 ()

let test_gso_segment_counts_and_sizes () =
  let buf = big_tcp () in
  let segs = Gso.segment buf ~mtu:1500 in
  (* mss = 1500 - 20 - 20 = 1460; 5000 -> 4 segments *)
  check Alcotest.int "segment count" 4 (List.length segs);
  List.iter
    (fun s ->
      Alcotest.(check bool) "within MTU + ethernet" true (Buffer.length s <= 1514))
    segs

let test_gso_payload_reassembles () =
  let payload = 4321 in
  let buf = big_tcp ~payload () in
  (* stamp a recognizable payload *)
  let base = Ethernet.header_len + Ipv4.header_len + Tcp.header_len in
  for i = 0 to payload - 1 do
    Buffer.set_u8 buf (base + i) (i land 0xFF)
  done;
  (* refresh the checksum after stamping *)
  ignore (Ethernet.parse buf);
  (match Ipv4.parse buf with
  | Some ip ->
      Tcp.write buf ~seq:1_000_000 ~src_port:40000 ~dst_port:80
        ~flags:Tcp.Flags.ack ~ip_src:ip.Ipv4.src ~ip_dst:ip.Ipv4.dst
        ~payload_len:payload ()
  | None -> Alcotest.fail "reparse");
  let segs = Gso.segment buf ~mtu:1500 in
  let reassembled = Stdlib.Buffer.create payload in
  List.iter
    (fun s ->
      ignore (Ethernet.parse s);
      ignore (Ipv4.parse s);
      match Tcp.parse s with
      | Some t ->
          let data_start = s.Buffer.l4_ofs + t.Tcp.data_ofs in
          for i = data_start to Buffer.length s - 1 do
            Stdlib.Buffer.add_char reassembled (Char.chr (Buffer.get_u8 s i))
          done
      | None -> Alcotest.fail "segment tcp parse")
    segs;
  check Alcotest.int "no bytes lost" payload (Stdlib.Buffer.length reassembled);
  let ok = ref true in
  String.iteri
    (fun i c -> if Char.code c <> i land 0xFF then ok := false)
    (Stdlib.Buffer.contents reassembled);
  Alcotest.(check bool) "payload byte-exact in order" true !ok

let test_gso_headers_correct () =
  let buf = big_tcp ~flags:(Tcp.Flags.ack lor Tcp.Flags.fin) () in
  let segs = Gso.segment buf ~mtu:1500 in
  let n = List.length segs in
  List.iteri
    (fun i s ->
      ignore (Ethernet.parse s);
      match (Ipv4.parse s, ()) with
      | Some ip, () -> begin
          (* IP length matches the frame, checksum valid, idents advance *)
          check Alcotest.int "ip total_len"
            (Buffer.length s - Ethernet.header_len)
            ip.Ipv4.total_len;
          Alcotest.(check bool) "ip csum" true
            (Checksum.verify s.Buffer.data
               ~off:(Buffer.abs s s.Buffer.l3_ofs) ~len:Ipv4.header_len);
          match Tcp.parse s with
          | Some t ->
              check Alcotest.int "seq advances by mss" (1_000_000 + (i * 1460)) t.Tcp.seq;
              let has_fin = t.Tcp.flags land Tcp.Flags.fin <> 0 in
              Alcotest.(check bool) "FIN only on the last segment"
                (i = n - 1) has_fin;
              Alcotest.(check bool) "tcp csum" true
                (Checksum.verify_pseudo s.Buffer.data
                   ~off:(Buffer.abs s s.Buffer.l4_ofs)
                   ~len:(Buffer.length s - s.Buffer.l4_ofs)
                   ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~proto:Ipv4.Proto.tcp)
          | None -> Alcotest.fail "tcp"
        end
      | None, () -> Alcotest.fail "ip")
    segs

let test_gso_passthrough () =
  let small = Build.tcp ~payload_len:100 () in
  check Alcotest.int "small tcp untouched" 1 (List.length (Gso.segment small ~mtu:1500));
  let udp = Build.udp ~frame_len:3000 () in
  check Alcotest.int "udp untouched" 1 (List.length (Gso.segment udp ~mtu:1500))

let prop_gso_conservation =
  QCheck.Test.make ~count:100 ~name:"gso conserves payload length"
    QCheck.(int_range 1 20_000)
    (fun payload ->
      let buf = big_tcp ~payload () in
      let segs = Gso.segment buf ~mtu:1500 in
      let total =
        List.fold_left
          (fun acc s ->
            ignore (Ethernet.parse s);
            ignore (Ipv4.parse s);
            match Tcp.parse s with
            | Some t -> acc + (Buffer.length s - s.Buffer.l4_ofs - t.Tcp.data_ofs)
            | None -> acc)
          0 segs
      in
      total = payload)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_packet"
    [
      ( "mac",
        [
          Alcotest.test_case "string roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_mac_bytes_roundtrip;
          Alcotest.test_case "multicast bit" `Quick test_mac_multicast;
          Alcotest.test_case "of_index distinct" `Quick test_mac_of_index_distinct;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "verify computed" `Quick test_checksum_verify_computed;
          Alcotest.test_case "detects corruption" `Quick test_checksum_detects_corruption;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
        ]
        @ qcheck [ prop_checksum_roundtrip ] );
      ( "buffer",
        [
          Alcotest.test_case "push/pull" `Quick test_buffer_push_pull;
          Alcotest.test_case "put grows" `Quick test_buffer_put_grows;
          Alcotest.test_case "offsets track push" `Quick test_buffer_offsets_track_push;
          Alcotest.test_case "headroom exhaustion" `Quick test_buffer_headroom_exhaustion;
          Alcotest.test_case "reset metadata" `Quick test_buffer_reset_metadata;
          Alcotest.test_case "clone independent" `Quick test_buffer_clone_independent;
        ] );
      ( "ethernet",
        [
          Alcotest.test_case "parse/build" `Quick test_ethernet_parse_build;
          Alcotest.test_case "vlan push/pop" `Quick test_ethernet_vlan_push_pop;
          Alcotest.test_case "set addresses" `Quick test_ethernet_set_addresses;
          Alcotest.test_case "short frame" `Quick test_ethernet_short_frame;
        ] );
      ( "ipv4",
        [
          Alcotest.test_case "parse fields" `Quick test_ipv4_parse_fields;
          Alcotest.test_case "addr roundtrip" `Quick test_ipv4_addr_roundtrip;
          Alcotest.test_case "update csum" `Quick test_ipv4_update_csum_after_rewrite;
          Alcotest.test_case "rejects v6" `Quick test_ipv4_rejects_v6;
          Alcotest.test_case "fragments" `Quick test_ipv4_fragments;
        ] );
      ( "l4",
        [
          Alcotest.test_case "udp ports" `Quick test_udp_parse_ports;
          Alcotest.test_case "udp checksum" `Quick test_udp_checksum_valid;
          Alcotest.test_case "tcp flags/seq" `Quick test_tcp_parse_flags;
          Alcotest.test_case "tcp checksum" `Quick test_tcp_checksum_valid;
          Alcotest.test_case "icmp echo" `Quick test_icmp_echo;
          Alcotest.test_case "arp roundtrip" `Quick test_arp_roundtrip;
        ] );
      ( "tunnel",
        [
          Alcotest.test_case "geneve roundtrip" `Quick (tunnel_roundtrip Tunnel.Geneve);
          Alcotest.test_case "vxlan roundtrip" `Quick (tunnel_roundtrip Tunnel.Vxlan);
          Alcotest.test_case "gre roundtrip" `Quick (tunnel_roundtrip Tunnel.Gre);
          Alcotest.test_case "erspan roundtrip" `Quick (tunnel_roundtrip Tunnel.Erspan);
          Alcotest.test_case "non-tunnel" `Quick test_decap_non_tunnel;
          Alcotest.test_case "geneve port" `Quick test_geneve_udp_port_on_wire;
        ]
        @ qcheck [ prop_tunnel_roundtrip ] );
      ( "flow_key",
        [
          Alcotest.test_case "extract udp" `Quick test_flow_key_extract_udp;
          Alcotest.test_case "extract tcp flags" `Quick test_flow_key_extract_tcp_flags;
          Alcotest.test_case "extract arp" `Quick test_flow_key_extract_arp;
          Alcotest.test_case "tunnel metadata" `Quick test_flow_key_tunnel_metadata;
          Alcotest.test_case "hash/equal consistent" `Quick test_flow_key_hash_equal_consistent;
          Alcotest.test_case "masked ops" `Quick test_flow_key_masked_ops;
          Alcotest.test_case "rss hash tuple" `Quick test_flow_key_rss_depends_on_tuple;
        ]
        @ qcheck [ prop_mask_application_idempotent ] );
      ( "roundtrip",
        [ Alcotest.test_case "ipv6 parse" `Quick test_ipv6_parse_roundtrip ]
        @ qcheck
            [
              prop_udp_reserialize;
              prop_tcp_reserialize;
              prop_arp_reserialize;
              prop_extract_deterministic;
              prop_geneve_extract_tunnel_fields;
              prop_ipv6_extract_deterministic;
            ] );
      ( "gso",
        [
          Alcotest.test_case "segment counts/sizes" `Quick test_gso_segment_counts_and_sizes;
          Alcotest.test_case "payload reassembles" `Quick test_gso_payload_reassembles;
          Alcotest.test_case "headers correct" `Quick test_gso_headers_correct;
          Alcotest.test_case "passthrough" `Quick test_gso_passthrough;
        ]
        @ qcheck [ prop_gso_conservation ] );
    ]
