(* Tests for the AF_XDP socket mechanics: rings, umem, umempool, XSK. *)

open Ovs_xsk

let check = Alcotest.check

(* -- Ring -- *)

let test_ring_fifo () =
  let r = Ring.create ~size:8 () in
  for i = 1 to 5 do
    Alcotest.(check bool) "push" true (Ring.push r { Ring.addr = i; len = i })
  done;
  for i = 1 to 5 do
    match Ring.pop r with
    | Some d -> check Alcotest.int "fifo order" i d.Ring.addr
    | None -> Alcotest.fail "unexpected empty"
  done

let test_ring_full_empty () =
  let r = Ring.create ~size:4 () in
  Alcotest.(check bool) "empty" true (Ring.is_empty r);
  for i = 1 to 4 do
    Alcotest.(check bool) "fills" true (Ring.push r { Ring.addr = i; len = 0 })
  done;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check bool) "push on full fails" false
    (Ring.push r { Ring.addr = 9; len = 0 });
  check Alcotest.int "available" 4 (Ring.available r)

let test_ring_wraparound () =
  let r = Ring.create ~size:4 () in
  for round = 1 to 10 do
    Alcotest.(check bool) "push" true (Ring.push r { Ring.addr = round; len = 0 });
    match Ring.pop r with
    | Some d -> check Alcotest.int "wrap value" round d.Ring.addr
    | None -> Alcotest.fail "empty"
  done

let test_ring_pop_burst () =
  let r = Ring.create ~size:16 () in
  for i = 1 to 10 do
    ignore (Ring.push r { Ring.addr = i; len = 0 })
  done;
  let burst = Ring.pop_burst r ~max:4 in
  check Alcotest.int "burst size" 4 (List.length burst);
  check
    (Alcotest.list Alcotest.int)
    "burst order" [ 1; 2; 3; 4 ]
    (List.map (fun d -> d.Ring.addr) burst);
  check Alcotest.int "remaining" 6 (Ring.available r)

let test_ring_push_burst_partial () =
  let r = Ring.create ~size:4 () in
  let n = Ring.push_burst r (List.init 6 (fun i -> { Ring.addr = i; len = 0 })) in
  check Alcotest.int "only capacity accepted" 4 n

let test_ring_rejects_bad_size () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Ring.create: size must be a positive power of two")
    (fun () -> ignore (Ring.create ~size:6 ()))

let test_ring_op_counting () =
  let r = Ring.create ~size:8 () in
  ignore (Ring.push r { Ring.addr = 0; len = 0 });
  ignore (Ring.pop r);
  ignore (Ring.pop_burst r ~max:4);
  check Alcotest.int "ops counted" 3 (Ring.ops r)

(* -- Umem -- *)

let test_umem_frame_layout () =
  let u = Umem.create ~n_frames:4 ~ring_size:8 () in
  let o0 = Umem.frame_offset u 0 and o1 = Umem.frame_offset u 1 in
  check Alcotest.int "frame stride" u.Umem.frame_size (o1 - o0);
  Alcotest.check_raises "bad index" (Invalid_argument "Umem.frame_offset")
    (fun () -> ignore (Umem.frame_offset u 4))

let test_umem_dma_and_alias () =
  let u = Umem.create ~n_frames:2 ~ring_size:8 () in
  let wire = Bytes.of_string "hello world, this is packet data" in
  Umem.dma_into_frame u 1 wire ~src_off:0 ~len:(Bytes.length wire);
  let buf = Umem.buffer_of_frame u 1 ~len:(Bytes.length wire) in
  check Alcotest.bytes "zero-copy view" wire (Ovs_packet.Buffer.contents buf);
  (* mutating the buffer mutates the umem (zero-copy semantics) *)
  Ovs_packet.Buffer.set_u8 buf 0 0x58;
  let again = Umem.buffer_of_frame u 1 ~len:(Bytes.length wire) in
  check Alcotest.int "aliasing" 0x58 (Ovs_packet.Buffer.get_u8 again 0)

let test_umem_frame_overflow () =
  let u = Umem.create ~frame_size:512 ~frame_headroom:128 ~n_frames:1 ~ring_size:8 () in
  let big = Bytes.make 500 'x' in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Umem.dma_into_frame: frame overflow") (fun () ->
      Umem.dma_into_frame u 0 big ~src_off:0 ~len:500)

(* -- Umempool -- *)

let test_umempool_get_put () =
  let p = Umempool.create ~n_frames:4 ~strategy:Umempool.Spinlock () in
  check Alcotest.int "initially full" 4 (Umempool.available p);
  let f1 = Umempool.get p in
  Alcotest.(check bool) "got a frame" true (f1 <> None);
  check Alcotest.int "one out" 3 (Umempool.available p);
  (match f1 with Some f -> Umempool.put p f | None -> ());
  check Alcotest.int "returned" 4 (Umempool.available p)

let test_umempool_exhaustion () =
  let p = Umempool.create ~n_frames:2 ~strategy:Umempool.Spinlock () in
  ignore (Umempool.get p);
  ignore (Umempool.get p);
  Alcotest.(check bool) "exhausted" true (Umempool.get p = None);
  check Alcotest.int "failure counted" 1 p.Umempool.stats.Umempool.exhausted

let test_umempool_batch_locking () =
  (* O3's point: batched strategy takes one lock per batch, not per frame *)
  let batched = Umempool.create ~n_frames:64 ~strategy:Umempool.Spinlock_batched () in
  let unbatched = Umempool.create ~n_frames:64 ~strategy:Umempool.Spinlock () in
  ignore (Umempool.get_batch batched 32);
  ignore (Umempool.get_batch unbatched 32);
  check Alcotest.int "batched: one acquisition" 1
    batched.Umempool.stats.Umempool.lock_acquisitions;
  check Alcotest.int "unbatched: one per frame" 32
    unbatched.Umempool.stats.Umempool.lock_acquisitions

let test_umempool_distinct_frames () =
  let p = Umempool.create ~n_frames:16 ~strategy:Umempool.Mutex () in
  let frames = Umempool.get_batch p 16 in
  check Alcotest.int "all frames" 16 (List.length frames);
  let unique = List.sort_uniq compare frames in
  check Alcotest.int "all distinct" 16 (List.length unique);
  Umempool.put_batch p frames;
  check Alcotest.int "all back" 16 (Umempool.available p)

let test_umempool_lock_costs () =
  let c = Ovs_sim.Costs.default in
  let mutex = Umempool.create ~n_frames:4 ~strategy:Umempool.Mutex () in
  let spin = Umempool.create ~n_frames:4 ~strategy:Umempool.Spinlock () in
  Alcotest.(check bool) "mutex dearer (the O2 story)" true
    (Umempool.lock_cost mutex c > Umempool.lock_cost spin c)

(* -- Xsk -- *)

let make_xsk () =
  let umem = Umem.create ~n_frames:64 ~ring_size:64 () in
  let pool = Umempool.create ~n_frames:64 ~strategy:Umempool.Spinlock_batched () in
  Xsk.create ~ring_size:64 ~umem ~pool ~queue_id:0 ()

let test_xsk_rx_path () =
  let xsk = make_xsk () in
  ignore (Xsk.refill xsk 16);
  let wire = Ovs_packet.Buffer.contents (Ovs_packet.Build.udp ~frame_len:64 ()) in
  Alcotest.(check bool) "delivered" true (Xsk.kernel_rx xsk wire ~len:64);
  match Xsk.rx_burst xsk ~max:32 with
  | [ (frame, buf) ] ->
      check Alcotest.int "length" 64 (Ovs_packet.Buffer.length buf);
      check Alcotest.bytes "bytes" wire (Ovs_packet.Buffer.contents buf);
      Xsk.release xsk ~frame
  | l -> Alcotest.failf "expected 1 packet, got %d" (List.length l)

let test_xsk_drop_without_fill () =
  let xsk = make_xsk () in
  (* no refill: the fill ring is empty, the kernel must drop *)
  let wire = Bytes.make 64 'x' in
  Alcotest.(check bool) "dropped" false (Xsk.kernel_rx xsk wire ~len:64);
  check Alcotest.int "drop counted" 1 xsk.Xsk.rx_dropped_no_frame

let test_xsk_tx_kick_and_recycle () =
  let xsk = make_xsk () in
  ignore (Xsk.refill xsk 4);
  let before = Umempool.available xsk.Xsk.pool in
  let wire = Bytes.make 64 'y' in
  Alcotest.(check bool) "rx" true (Xsk.kernel_rx xsk wire ~len:64);
  (match Xsk.rx_burst xsk ~max:1 with
  | [ (frame, _) ] ->
      Alcotest.(check bool) "queued" true (Xsk.tx xsk ~frame ~len:64);
      check Alcotest.int "one kick, one sent" 1 (Xsk.flush_tx xsk);
      check Alcotest.int "kick counted" 1 xsk.Xsk.kicks;
      (* frame returned to the pool through the completion ring *)
      check Alcotest.int "frame recycled" (before + 1) (Umempool.available xsk.Xsk.pool)
  | _ -> Alcotest.fail "rx_burst");
  check Alcotest.int "flush on empty is free" 0 (Xsk.flush_tx xsk)

let test_xsk_burst_order () =
  let xsk = make_xsk () in
  ignore (Xsk.refill xsk 8);
  for i = 0 to 4 do
    let pkt = Ovs_packet.Build.udp ~frame_len:64 ~src_port:(1000 + i) () in
    ignore (Xsk.kernel_rx xsk (Ovs_packet.Buffer.contents pkt) ~len:64)
  done;
  let batch = Xsk.rx_burst xsk ~max:16 in
  check Alcotest.int "batch" 5 (List.length batch);
  List.iteri
    (fun i (_, buf) ->
      ignore (Ovs_packet.Ethernet.parse buf);
      ignore (Ovs_packet.Ipv4.parse buf);
      match Ovs_packet.Udp.parse buf with
      | Some u -> check Alcotest.int "arrival order" (1000 + i) u.Ovs_packet.Udp.src_port
      | None -> Alcotest.fail "udp parse")
    batch

(* -- Dp_packet_pool -- *)

let test_metadata_costs () =
  let c = Ovs_sim.Costs.default in
  let pre = Dp_packet_pool.create ~mode:Dp_packet_pool.Preallocated ~size:16 in
  let dyn = Dp_packet_pool.create ~mode:Dp_packet_pool.Per_packet_alloc ~size:16 in
  Alcotest.(check bool) "O4 saves time" true
    (Dp_packet_pool.metadata_cost pre c < Dp_packet_pool.metadata_cost dyn c);
  Dp_packet_pool.acquire pre;
  Dp_packet_pool.acquire dyn;
  check Alcotest.int "counted" 1 pre.Dp_packet_pool.allocations

let prop_ring_sequence =
  QCheck.Test.make ~count:100 ~name:"ring preserves any push/pop interleaving"
    QCheck.(list_of_size Gen.(int_range 1 200) bool)
    (fun ops ->
      let r = Ring.create ~size:16 () in
      let next = ref 0 and expect = ref 0 and ok = ref true in
      List.iter
        (fun push ->
          if push then begin
            if Ring.push r { Ring.addr = !next; len = 0 } then incr next
          end
          else
            match Ring.pop r with
            | Some d ->
                if d.Ring.addr <> !expect then ok := false;
                incr expect
            | None -> if Ring.available r <> 0 then ok := false)
        ops;
      !ok)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ovs_xsk"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "full/empty" `Quick test_ring_full_empty;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "pop burst" `Quick test_ring_pop_burst;
          Alcotest.test_case "push burst partial" `Quick test_ring_push_burst_partial;
          Alcotest.test_case "bad size" `Quick test_ring_rejects_bad_size;
          Alcotest.test_case "op counting" `Quick test_ring_op_counting;
        ]
        @ qcheck [ prop_ring_sequence ] );
      ( "umem",
        [
          Alcotest.test_case "frame layout" `Quick test_umem_frame_layout;
          Alcotest.test_case "dma and aliasing" `Quick test_umem_dma_and_alias;
          Alcotest.test_case "frame overflow" `Quick test_umem_frame_overflow;
        ] );
      ( "umempool",
        [
          Alcotest.test_case "get/put" `Quick test_umempool_get_put;
          Alcotest.test_case "exhaustion" `Quick test_umempool_exhaustion;
          Alcotest.test_case "batch locking (O3)" `Quick test_umempool_batch_locking;
          Alcotest.test_case "distinct frames" `Quick test_umempool_distinct_frames;
          Alcotest.test_case "lock costs (O2)" `Quick test_umempool_lock_costs;
        ] );
      ( "xsk",
        [
          Alcotest.test_case "rx path" `Quick test_xsk_rx_path;
          Alcotest.test_case "drop without fill" `Quick test_xsk_drop_without_fill;
          Alcotest.test_case "tx kick and recycle" `Quick test_xsk_tx_kick_and_recycle;
          Alcotest.test_case "burst order" `Quick test_xsk_burst_order;
        ] );
      ( "dp_packet_pool",
        [ Alcotest.test_case "metadata costs (O4)" `Quick test_metadata_costs ] );
    ]
