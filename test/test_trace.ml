(* Tests for the packet-walk tracer and per-stage cycle attribution:
   the walk matches the appctl rendering, per-stage cycles sum to the
   charged total, and a disabled tracer costs the hot path nothing. *)

module Trace = Ovs_sim.Trace
module Dpif = Ovs_datapath.Dpif
module Tools = Ovs_tools.Tools
module Netdev = Ovs_netdev.Netdev
module Buffer = Ovs_packet.Buffer
module Build = Ovs_packet.Build

let check = Alcotest.check

(* The bin/ demo pipeline: decap Geneve into table 1, conntrack, output. *)
let demo_rules =
  [
    "table=0,priority=100,udp,tp_dst=6081 actions=tnl_pop:1";
    "table=0,priority=10 actions=output:1";
    "table=1,priority=10 actions=ct(commit,zone=7,table=2)";
    "table=2,priority=10 actions=output:1";
  ]

let make_dp ?(kind = Dpif.Dpdk) ?(rules = demo_rules) () =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:4 () in
  ignore (Ovs_ofproto.Parser.install_flows pipeline rules);
  let dp = Dpif.create ~kind ~pipeline () in
  ignore (Dpif.add_port dp (Netdev.create ~name:"p0" ()));
  ignore (Dpif.add_port dp (Netdev.create ~name:"p1" ()));
  dp

let appctl_ok dp cmd =
  match Tools.appctl ~dp cmd with
  | Tools.Ok_output s -> s
  | Tools.Not_supported msg -> Alcotest.fail (cmd ^ ": " ^ msg)

let contains haystack needle = Astring.String.is_infix ~affix:needle haystack

let require out needle =
  if not (contains out needle) then
    Alcotest.failf "expected %S in output:\n%s" needle out

(* -- acceptance: ofproto/trace on a Geneve + conntrack flow -- *)

let test_trace_geneve_conntrack () =
  let dp = make_dp () in
  let out = appctl_ok dp "ofproto/trace udp,geneve=7" in
  require out "Flow: ";
  (* the full table walk: rule ids, priorities and actions per table *)
  require out "table 0: rule ";
  require out "priority 100";
  require out "tnl_pop";
  require out "table 1: rule ";
  require out "ct(";
  require out "table 2: rule ";
  require out "output:1";
  (* stage events for decap, conntrack verdict and tx *)
  require out "[decap";
  require out "[conntrack]";
  require out "ct_state=+new+trk";
  require out "[tx";
  (* megaflow installs are reported with their wildcard sets *)
  require out "install megaflow on ";
  (* per-stage cycle attribution is appended *)
  require out "per-stage cycles:";
  require out "upcall";
  require out "total"

let test_trace_cache_level_on_warm_flow () =
  let dp = make_dp () in
  (* first pass misses and installs; the second identical flow spec must
     report which cache served it *)
  ignore (appctl_ok dp "ofproto/trace udp,tp_src=4242");
  let out = appctl_ok dp "ofproto/trace udp,tp_src=4242" in
  require out "hit: exact-match cache";
  (* a warm hit never re-enters the slow path *)
  if contains out "table 0:" then Alcotest.fail ("unexpected table walk:\n" ^ out)

let test_trace_usage_and_unknown () =
  let dp = make_dp () in
  (match Tools.appctl ~dp "ofproto/trace" with
  | Tools.Not_supported msg -> require msg "usage"
  | Tools.Ok_output _ -> Alcotest.fail "bare ofproto/trace accepted");
  match Tools.appctl ~dp "ofproto/trace frob=1" with
  | Tools.Not_supported _ -> ()
  | Tools.Ok_output _ -> Alcotest.fail "bad flow spec accepted"

(* -- the walk events match what the appctl rendering prints -- *)

let test_walk_matches_rendering () =
  let spec = "udp,geneve=9,tp_src=31337" in
  let rendered = appctl_ok (make_dp ()) ("ofproto/trace " ^ spec) in
  let rendered_stages =
    String.split_on_char '\n' rendered
    |> List.filter_map (fun line ->
           if String.length line > 4 && String.sub line 0 3 = "  [" then
             Some (String.trim (String.sub line 3 9))
           else None)
  in
  (* replay the identical packet through an identical datapath by hand *)
  let dp = make_dp () in
  let tr = Trace.create ~kind:"test" () in
  Dpif.set_tracer dp (Some tr);
  Trace.start_walk tr;
  Dpif.process dp (fun _ _ -> ()) (Tools.packet_of_flow_spec spec);
  let events = Trace.stop_walk tr in
  let walked_stages = List.map (fun e -> Trace.stage_name e.Trace.ev_stage) events in
  check
    Alcotest.(list string)
    "same stages in the same order" walked_stages rendered_stages

(* -- per-stage cycles sum to the charged total -- *)

let close ~msg a b =
  let denom = Float.max 1. (Float.max (abs_float a) (abs_float b)) in
  if abs_float (a -. b) /. denom > 1e-6 then
    Alcotest.failf "%s: %f vs %f" msg a b

let test_per_packet_cycles_sum () =
  let dp = make_dp () in
  let tr = Trace.create ~kind:"test" () in
  Dpif.set_tracer dp (Some tr);
  let charged = ref 0. in
  let charge _cat ns = charged := !charged +. ns in
  (* cold pass: upcall + install + tunnel + conntrack stages *)
  Dpif.process dp charge (Tools.packet_of_flow_spec "udp,geneve=3");
  let sum stages = List.fold_left (fun acc (_, ns) -> acc +. ns) 0. stages in
  close ~msg:"cold packet: stage sum = charged" (sum (Trace.last_packet tr)) !charged;
  close ~msg:"tracer total tracks charges" (Trace.total tr) !charged;
  (* warm pass: pure cache-hit fast path *)
  let before = !charged in
  Dpif.process dp charge (Tools.packet_of_flow_spec "udp,geneve=3");
  close ~msg:"warm packet: stage sum = charged"
    (sum (Trace.last_packet tr))
    (!charged -. before);
  check Alcotest.int "two packet brackets" 2 (Trace.packets tr)

let scenario_stage_sum kind () =
  let cfg =
    Ovs_trafficgen.Scenario.config ~kind ~n_flows:200 ~gbps:25. ~warmup:1_000
      ~measure:8_000 ~trace:true ()
  in
  let r = Ovs_trafficgen.Scenario.run cfg in
  match r.Ovs_trafficgen.Scenario.stage_trace with
  | None -> Alcotest.fail "no stage trace on a traced run"
  | Some tr ->
      Alcotest.(check bool) "traced packets" true (Trace.packets tr > 0);
      close ~msg:"stage totals sum to the charged busy time" (Trace.total tr)
        r.Ovs_trafficgen.Scenario.busy_ns

(* -- disabled tracing is free -- *)

let run_packets dp n =
  let charged = ref 0. in
  for i = 1 to n do
    let pkt = Build.udp ~src_port:(1000 + (i mod 16)) () in
    pkt.Buffer.in_port <- 0;
    Dpif.process dp (fun _cat ns -> charged := !charged +. ns) pkt
  done;
  !charged

let test_disabled_tracer_zero_cost () =
  let plain = make_dp () in
  let traced = make_dp () in
  Dpif.set_tracer traced (Some (Trace.create ~kind:"test" ()));
  let a = run_packets plain 500 and b = run_packets traced 500 in
  check (Alcotest.float 0.) "identical charged cycles" a b

let test_disabled_tracer_zero_allocations () =
  let dp = make_dp () in
  (* warm the caches so both measured batches run the same EMC-hit path *)
  ignore (run_packets dp 64);
  (* on OCaml 5 [Gc.allocated_bytes] only advances at collection points,
     so force a minor collection to synchronize the counter first *)
  let allocated () =
    Gc.minor ();
    Gc.allocated_bytes ()
  in
  let batch () =
    let before = allocated () in
    ignore (run_packets dp 512);
    allocated () -. before
  in
  let first = batch () in
  let second = batch () in
  check (Alcotest.float 0.) "steady-state allocations are flat (no hidden tracer state)"
    first second

let test_tracer_without_walk_records_no_events () =
  let dp = make_dp () in
  let tr = Trace.create ~kind:"test" () in
  Dpif.set_tracer dp (Some tr);
  ignore (run_packets dp 32);
  check Alcotest.int "no walk, no events" 0 (List.length (Trace.stop_walk tr));
  Alcotest.(check bool) "but histograms accumulated" true (Trace.total tr > 0.)

(* -- aggregates: show-stage-cycles and dump-flows stats -- *)

let test_show_stage_cycles () =
  let dp = make_dp () in
  (match Tools.appctl ~dp "dpif/show-stage-cycles" with
  | Tools.Not_supported msg -> require msg "no stage tracer"
  | Tools.Ok_output _ -> Alcotest.fail "rendered without a tracer");
  Dpif.set_tracer dp (Some (Trace.create ~kind:"dpdk" ()));
  ignore (run_packets dp 100);
  let out = appctl_ok dp "dpif/show-stage-cycles" in
  require out "per-stage cycle attribution";
  require out "100 packets";
  require out "emc";
  require out "tx";
  require out "total"

let test_dump_flows_stats () =
  let dp = make_dp () in
  ignore (run_packets dp 10);
  let out = appctl_ok dp "dpctl/dump-flows" in
  require out "packets:";
  require out "cycles:";
  require out "actions:"

let test_reset_measurement_clears_trace () =
  let dp = make_dp () in
  let tr = Trace.create ~kind:"test" () in
  Dpif.set_tracer dp (Some tr);
  ignore (run_packets dp 50);
  Dpif.reset_measurement dp;
  check Alcotest.int "packets zeroed" 0 (Trace.packets tr);
  check (Alcotest.float 0.) "totals zeroed" 0. (Trace.total tr);
  ignore (run_packets dp 7);
  check Alcotest.int "counts resume" 7 (Trace.packets tr)

let () =
  Alcotest.run "ovs_trace"
    [
      ( "ofproto/trace",
        [
          Alcotest.test_case "geneve+conntrack walk" `Quick test_trace_geneve_conntrack;
          Alcotest.test_case "cache level on warm flow" `Quick
            test_trace_cache_level_on_warm_flow;
          Alcotest.test_case "usage and unknown specs" `Quick test_trace_usage_and_unknown;
          Alcotest.test_case "walk matches rendering" `Quick test_walk_matches_rendering;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "per-packet sums" `Quick test_per_packet_cycles_sum;
          Alcotest.test_case "scenario sum: kernel" `Quick (scenario_stage_sum Dpif.Kernel);
          Alcotest.test_case "scenario sum: dpdk" `Quick (scenario_stage_sum Dpif.Dpdk);
          Alcotest.test_case "scenario sum: afxdp" `Quick
            (scenario_stage_sum (Dpif.Afxdp Dpif.afxdp_default));
        ] );
      ( "overhead",
        [
          Alcotest.test_case "zero cost when disabled" `Quick test_disabled_tracer_zero_cost;
          Alcotest.test_case "flat allocations" `Quick test_disabled_tracer_zero_allocations;
          Alcotest.test_case "no events without walk" `Quick
            test_tracer_without_walk_records_no_events;
        ] );
      ( "appctl",
        [
          Alcotest.test_case "show-stage-cycles" `Quick test_show_stage_cycles;
          Alcotest.test_case "dump-flows stats" `Quick test_dump_flows_stats;
          Alcotest.test_case "reset clears trace" `Quick test_reset_measurement_clears_trace;
        ] );
    ]
