(* Tests for the poll-mode runtime: rxq sharding, per-PMD counter
   attribution, bounded upcall queues, and single-context parity. *)

module Dpif = Ovs_datapath.Dpif
module Dp_core = Ovs_datapath.Dp_core
module Pmd = Ovs_datapath.Pmd
module Netdev = Ovs_netdev.Netdev
module Scenario = Ovs_trafficgen.Scenario
module Cpu = Ovs_sim.Cpu
module B = Ovs_packet.Build

let check = Alcotest.check

type rig = {
  dp : Dpif.t;
  phy0 : Netdev.t;
  phy1 : Netdev.t;
  p0 : int;
  machine : Cpu.t;
  softirq : Cpu.ctx array;
}

let make_rig ?(queues = 4) () =
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:8 () in
  let dp = Dpif.create ~kind:(Dpif.Afxdp Dpif.afxdp_default) ~pipeline () in
  let phy0 = Netdev.create ~name:"eth0" ~queues () in
  let phy1 = Netdev.create ~name:"eth1" ~queues () in
  let p0 = Dpif.add_port dp phy0 in
  let p1 = Dpif.add_port dp phy1 in
  ignore
    (Ovs_ofproto.Parser.install_flows pipeline
       [ Printf.sprintf "table=0,priority=10,in_port=%d actions=output:%d" p0 p1 ]);
  let machine = Cpu.create () in
  let softirq =
    Array.init queues (fun i -> Cpu.ctx machine (Printf.sprintf "softirq%d" i))
  in
  { dp; phy0; phy1; p0; machine; softirq }

let make_rt ?upcall_capacity ?(queues = 4) ~n_pmds (r : rig) =
  Pmd.create ?upcall_capacity ~dp:r.dp ~machine:r.machine ~softirq:r.softirq
    ~port_no:r.p0 ~n_rxqs:queues ~n_pmds ()

(* every (port, queue) appears exactly once, on a valid pmd id *)
let check_partition ~queues ~n_pmds rt =
  let rows = Pmd.assignment rt in
  check Alcotest.int "every rxq assigned" queues (List.length rows);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (_port, queue, pmd) ->
      Alcotest.(check bool) "no rxq on two PMDs" false (Hashtbl.mem seen queue);
      Hashtbl.add seen queue ();
      Alcotest.(check bool) "queue id in range" true (queue >= 0 && queue < queues);
      Alcotest.(check bool) "pmd id in range" true (pmd >= 0 && pmd < n_pmds))
    rows

let test_assignment_is_partition () =
  List.iter
    (fun (queues, n_pmds) ->
      let r = make_rig ~queues () in
      let rt = make_rt ~queues ~n_pmds r in
      check_partition ~queues ~n_pmds rt;
      (* the partition property survives a cycles-based rebalance *)
      Pmd.rebalance rt;
      check_partition ~queues ~n_pmds rt)
    [ (1, 1); (4, 1); (4, 2); (4, 4); (6, 4); (8, 3) ]

let drive ?(flows = 64) rt (r : rig) ~n =
  let injected = ref 0 in
  while !injected < n do
    for _ = 1 to 32 do
      ignore (Netdev.rss_enqueue r.phy0 (B.udp ~src_port:(1000 + (!injected mod flows)) ()) : bool);
      incr injected
    done;
    ignore (Pmd.poll_all rt)
  done;
  (* drain any residue so counters settle *)
  while Pmd.poll_all rt > 0 do
    ()
  done

let test_per_pmd_totals_match_aggregate () =
  let r = make_rig () in
  let rt = make_rt ~n_pmds:3 r in
  drive rt r ~n:2_000;
  let agg = Dpif.counters r.dp in
  let sum f = List.fold_left (fun acc p -> acc + f (Pmd.stats_of p)) 0 (Pmd.pmds rt) in
  check Alcotest.int "rx sums to aggregate" agg.Dp_core.packets
    (sum (fun s -> s.Pmd.rx_packets));
  check Alcotest.int "emc hits sum" agg.Dp_core.emc_hits
    (sum (fun s -> s.Pmd.emc_hits));
  check Alcotest.int "megaflow hits sum" agg.Dp_core.dpcls_hits
    (sum (fun s -> s.Pmd.megaflow_hits));
  check Alcotest.int "misses sum" agg.Dp_core.upcalls (sum (fun s -> s.Pmd.miss));
  (* nothing was lost: every rx packet is a hit or a successful miss *)
  check Alcotest.int "hits + miss = rx"
    (sum (fun s -> s.Pmd.rx_packets))
    (sum (fun s -> s.Pmd.emc_hits + s.Pmd.smc_hits + s.Pmd.megaflow_hits + s.Pmd.miss));
  Alcotest.(check bool) "multiple PMDs saw traffic" true
    (List.length
       (List.filter (fun p -> (Pmd.stats_of p).Pmd.rx_packets > 0) (Pmd.pmds rt))
    > 1)

let test_upcall_overflow_counts_lost () =
  let r = make_rig () in
  (* capacity 2 with a 32-packet burst of distinct megaflow-missing flows:
     the EMC/dpcls are empty on first contact, so one burst overflows *)
  let rt = make_rt ~upcall_capacity:2 ~n_pmds:1 r in
  Dpif.flush_caches r.dp;
  for i = 0 to 31 do
    ignore (Netdev.enqueue_on r.phy0 ~queue:0 (B.udp ~src_port:(2000 + i) ()) : bool)
  done;
  ignore (Pmd.poll_all rt);
  let lost = List.fold_left (fun acc p -> acc + (Pmd.stats_of p).Pmd.lost) 0 (Pmd.pmds rt) in
  Alcotest.(check bool) "overflow increments lost" true (lost > 0);
  let agg = Dpif.counters r.dp in
  Alcotest.(check bool) "lost packets are dropped" true (agg.Dp_core.dropped >= lost);
  (* the runtime keeps working afterwards: the surviving upcalls installed
     the megaflow, so the next burst forwards without loss *)
  let tx0 = r.phy1.Netdev.stats.Netdev.tx_packets in
  for i = 0 to 31 do
    ignore (Netdev.enqueue_on r.phy0 ~queue:0 (B.udp ~src_port:(2000 + i) ()) : bool)
  done;
  ignore (Pmd.poll_all rt);
  check Alcotest.int "no deadlock, burst forwarded" 32
    (r.phy1.Netdev.stats.Netdev.tx_packets - tx0)

let test_n_pmds_1_matches_legacy_rate () =
  let legacy = Scenario.run (Scenario.config ~gbps:25. ()) in
  let rt = Scenario.run (Scenario.config ~gbps:25. ~n_pmds:1 ~n_rxqs:1 ()) in
  Alcotest.(check (float 0.01))
    "PMD runtime reproduces the single-context rate" legacy.Scenario.rate_mpps
    rt.Scenario.rate_mpps;
  check Alcotest.int "one PMD report" 1 (List.length rt.Scenario.pmds)

let test_scaling_and_reports () =
  let run n_pmds =
    Scenario.run
      (Scenario.config ~gbps:100. ~n_flows:512 ~n_pmds ~n_rxqs:4 ~warmup:2000
         ~measure:10_000 ())
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "4 PMDs beat 1 PMD" true
    (r4.Scenario.rate_mpps > r1.Scenario.rate_mpps);
  check Alcotest.int "four PMD reports" 4 (List.length r4.Scenario.pmds);
  List.iter
    (fun (rep : Pmd.report) ->
      Alcotest.(check bool) "every PMD processed packets" true
        (rep.Pmd.r_stats.Pmd.rx_packets > 0);
      Alcotest.(check bool) "cycles per packet positive" true
        (rep.Pmd.r_cycles_per_pkt > 0.))
    r4.Scenario.pmds;
  (* the appctl renderings hold the right figures *)
  let stats_text = Ovs_tools.Tools.pmd_stats_show r4.Scenario.pmds in
  let rxq_text = Ovs_tools.Tools.pmd_rxq_show r4.Scenario.pmds in
  Alcotest.(check bool) "pmd-stats-show lists all cores" true
    (List.for_all
       (fun i ->
         Astring.String.is_infix ~affix:(Printf.sprintf "core_id %d" i) stats_text)
       [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "pmd-rxq-show lists queues" true
    (Astring.String.is_infix ~affix:"queue-id:" rxq_text)

let test_coverage_counters_fire () =
  Ovs_sim.Coverage.reset ();
  let r = make_rig () in
  let rt = make_rt ~n_pmds:2 r in
  drive rt r ~n:500;
  Alcotest.(check bool) "pmd_poll counted" true (Ovs_sim.Coverage.read "pmd_poll" > 0);
  Alcotest.(check bool) "emc hits counted" true
    (Ovs_sim.Coverage.read "dpif_emc_hit" > 0);
  Alcotest.(check bool) "upcalls counted" true
    (Ovs_sim.Coverage.read "dpif_upcall" > 0);
  match Ovs_tools.Tools.appctl "coverage/show" with
  | Ovs_tools.Tools.Ok_output text ->
      Alcotest.(check bool) "coverage/show renders" true
        (Astring.String.is_infix ~affix:"dpif_emc_hit" text)
  | Ovs_tools.Tools.Not_supported m -> Alcotest.fail m

let () =
  Alcotest.run "ovs_pmd"
    [
      ( "pmd",
        [
          Alcotest.test_case "rxq assignment is a partition" `Quick
            test_assignment_is_partition;
          Alcotest.test_case "per-PMD totals equal aggregate" `Quick
            test_per_pmd_totals_match_aggregate;
          Alcotest.test_case "upcall overflow -> lost, no deadlock" `Quick
            test_upcall_overflow_counts_lost;
          Alcotest.test_case "n_pmds=1 reproduces legacy rates" `Quick
            test_n_pmds_1_matches_legacy_rate;
          Alcotest.test_case "scaling + appctl reports" `Quick
            test_scaling_and_reports;
          Alcotest.test_case "coverage counters fire" `Quick
            test_coverage_counters_fire;
        ] );
    ]
