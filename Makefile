# Tier-1 verification in one command.
.PHONY: all check build test smoke bench chaos ccache mc multicore latency ndr policy scale reconfig clean

all: build

build:
	dune build

test:
	dune runtest

# A fast end-to-end sanity pass: the PMD runtime and the per-stage cycle
# attribution experiments both exit nonzero on failure.
smoke:
	dune exec bench/main.exe -- pmd stages

# The chaos bench: every fault plan against every leg, exact packet
# conservation and post-recovery throughput enforced (exit nonzero on any
# LEAK/DEGRADED row). Writes BENCH_chaos.json.
chaos:
	dune exec bench/main.exe -- chaos --json

# The computational-cache bench: learned classifier tier vs dpcls-only
# over the NSX ruleset sweep; exits nonzero on any ccache/dpcls decision
# mismatch or if the 103k-rule point falls under 2x. Writes
# BENCH_ccache.json.
ccache:
	dune exec bench/main.exe -- ccache --json

# The schedule explorer: exhaustive exploration of the concurrency
# model's interleavings at the small bound plus 500 sampled schedules at
# the large (crash/restart) bound; any invariant violation exits nonzero
# and writes its shrunk replay artifact to MC_failure.txt.
mc:
	dune exec bench/main.exe -- mc

# True multicore: the Engine_domains rig at 1/2/4/8 PMD domains,
# wall-clock Mpps next to the virtual-time curve, exact packet
# conservation enforced. The 1->2 domain monotone-scaling gate arms only
# on multi-core hosts (single-core runs are time-sliced and
# informational). Writes BENCH_multicore.json.
multicore:
	dune exec bench/main.exe -- multicore --json

# Per-packet sojourn-time distributions: the offered-load ladder, bursty
# on-off rung and 1-4 hop service chains per leg, gated on timestamp
# conservation (samples == delivered), zero loss below capacity and
# p99/p50 tail shape. Writes BENCH_latency.json.
latency:
	dune exec bench/main.exe -- latency --json

# RFC 2544 non-drop-rate binary search per leg; the reported rate must
# re-probe loss-free and sit below every losing probe. Writes
# BENCH_ndr.json.
ndr:
	dune exec bench/main.exe -- ndr --json

# The policy bench: compile the whole catalog ladder, prove
# translate(compile(p)) = eval(p) with the symbolic checker (any
# divergence exits nonzero and writes POLICY_counterexample.txt), verify
# every seeded compiler mutation is caught with a concretely diverging
# packet, and replay compiled policies through the kernel / AF_XDP /
# PMD-deferred legs against the eval oracle with exact transmission
# conservation. Writes BENCH_policy.json.
policy:
	dune exec bench/main.exe -- policy --json

# The sustained-scale bench: 1M+ concurrent connections from a churning
# Zipf mix at 10k conns/s over a sharded conntrack, with rule churn
# driving the incremental revalidator against the flush-all oracle every
# round (any divergence exits nonzero), exact packet conservation, a
# bounded-heap gate in steady state and p50/p99 upcall latency. Writes
# BENCH_scale.json.
scale:
	dune exec bench/main.exe -- scale --json

# Live reconfiguration under load: OVSDB-driven churn plans applied
# through the FLOW_MOD wire path against running traffic on every engine
# leg, gating the two-phase shadow-table upgrade hitless (offered ==
# delivered exactly, zero vanished packets), the naive in-place swap
# measurably lossy, and the incremental revalidator 0-divergent at every
# churn event; plus the atomic classifier-pointer cutover on real OCaml
# domains. Writes BENCH_reconfig.json.
reconfig:
	dune exec bench/main.exe -- reconfig --json

check: build test smoke chaos ccache mc multicore latency ndr policy scale reconfig

bench:
	dune exec bench/main.exe

clean:
	dune clean
