# Tier-1 verification in one command.
.PHONY: all check build test smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# A fast end-to-end sanity pass: the PMD runtime and the per-stage cycle
# attribution experiments both exit nonzero on failure.
smoke:
	dune exec bench/main.exe -- pmd stages

check: build test smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
