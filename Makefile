# Tier-1 verification in one command.
.PHONY: all check build test smoke bench chaos ccache clean

all: build

build:
	dune build

test:
	dune runtest

# A fast end-to-end sanity pass: the PMD runtime and the per-stage cycle
# attribution experiments both exit nonzero on failure.
smoke:
	dune exec bench/main.exe -- pmd stages

# The chaos bench: every fault plan against every leg, exact packet
# conservation and post-recovery throughput enforced (exit nonzero on any
# LEAK/DEGRADED row). Writes BENCH_chaos.json.
chaos:
	dune exec bench/main.exe -- chaos --json

# The computational-cache bench: learned classifier tier vs dpcls-only
# over the NSX ruleset sweep; exits nonzero on any ccache/dpcls decision
# mismatch or if the 103k-rule point falls under 2x. Writes
# BENCH_ccache.json.
ccache:
	dune exec bench/main.exe -- ccache --json

check: build test smoke chaos ccache

bench:
	dune exec bench/main.exe

clean:
	dune clean
