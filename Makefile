# Tier-1 verification in one command.
.PHONY: all check build test smoke bench chaos clean

all: build

build:
	dune build

test:
	dune runtest

# A fast end-to-end sanity pass: the PMD runtime and the per-stage cycle
# attribution experiments both exit nonzero on failure.
smoke:
	dune exec bench/main.exe -- pmd stages

# The chaos bench: every fault plan against every leg, exact packet
# conservation and post-recovery throughput enforced (exit nonzero on any
# LEAK/DEGRADED row). Writes BENCH_chaos.json.
chaos:
	dune exec bench/main.exe -- chaos --json

check: build test smoke chaos

bench:
	dune exec bench/main.exe

clean:
	dune clean
