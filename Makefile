# Tier-1 verification in one command.
.PHONY: all check build test smoke bench chaos ccache mc clean

all: build

build:
	dune build

test:
	dune runtest

# A fast end-to-end sanity pass: the PMD runtime and the per-stage cycle
# attribution experiments both exit nonzero on failure.
smoke:
	dune exec bench/main.exe -- pmd stages

# The chaos bench: every fault plan against every leg, exact packet
# conservation and post-recovery throughput enforced (exit nonzero on any
# LEAK/DEGRADED row). Writes BENCH_chaos.json.
chaos:
	dune exec bench/main.exe -- chaos --json

# The computational-cache bench: learned classifier tier vs dpcls-only
# over the NSX ruleset sweep; exits nonzero on any ccache/dpcls decision
# mismatch or if the 103k-rule point falls under 2x. Writes
# BENCH_ccache.json.
ccache:
	dune exec bench/main.exe -- ccache --json

# The schedule explorer: exhaustive exploration of the concurrency
# model's interleavings at the small bound plus 500 sampled schedules at
# the large (crash/restart) bound; any invariant violation exits nonzero
# and writes its shrunk replay artifact to MC_failure.txt.
mc:
	dune exec bench/main.exe -- mc

check: build test smoke chaos ccache mc

bench:
	dune exec bench/main.exe

clean:
	dune clean
