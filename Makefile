# Tier-1 verification in one command.
.PHONY: all check build test bench clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

bench:
	dune exec bench/main.exe

clean:
	dune clean
