(** Discrete-event queue (binary min-heap on virtual time).

    Used by the latency experiments (netperf TCP_RR request/response chains)
    where event ordering across concurrent endpoints matters. Throughput
    experiments use the cheaper pipelined-accounting model in {!Cpu}. *)

type 'a t = {
  mutable heap : (Time.ns * int * 'a) array;
  mutable size : int;
  mutable seq : int;  (** tie-break to keep same-time events FIFO *)
}

let create () = { heap = Array.make 64 (0., 0, Obj.magic 0); size = 0; seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let lt (ta, sa, _) (tb, sb, _) = ta < tb || (ta = tb && sa < sb)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~at v =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- (at, t.seq, v);
  t.seq <- t.seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** Pop the earliest event as [(time, value)]. Raises [Not_found] if empty. *)
let pop t =
  if t.size = 0 then raise Not_found;
  let at, _, v = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  (at, v)

let peek_time t = if t.size = 0 then None else (fun (at, _, _) -> Some at) t.heap.(0)

(** Pop and handle every event due at or before [now], in time order
    (FIFO within a tie). Unlike {!run} this leaves future events queued —
    the shape a polled clock wants: callers advance virtual time in
    quanta and drain whatever fell due. Returns how many events ran. *)
let run_due t ~now ~handler =
  let ran = ref 0 in
  let continue = ref true in
  while !continue && not (is_empty t) do
    match peek_time t with
    | Some at when at <= now ->
        let at, v = pop t in
        incr ran;
        handler ~at v
    | _ -> continue := false
  done;
  !ran

(** Run a handler loop until the queue drains or [until] is reached.
    The handler may push further events. Returns the final virtual time. *)
let run ?(until = infinity) t ~handler =
  let now = ref 0. in
  let continue = ref true in
  while !continue && not (is_empty t) do
    match peek_time t with
    | Some at when at <= until ->
        let at, v = pop t in
        now := at;
        handler ~now:at v
    | _ -> continue := false
  done;
  !now
