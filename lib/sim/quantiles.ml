(** Mergeable streaming-quantile sketch for per-packet sojourn times.

    A fixed-log-bucket HDR-style histogram: bucket [i] covers the
    geometric interval [[lo·r^i, lo·r^(i+1))] with ratio
    [r = (1 + eps)^2], and a quantile query reports the bucket's
    geometric midpoint [lo·r^i·(1 + eps)]. Any true value [v] in
    [[lo, hi]] therefore lands in a bucket whose reported midpoint [m]
    satisfies [|m - v| / v <= eps] — the documented error bound, checked
    by the oracle property suite in [test/test_quantiles.ml] against
    exact sorted-sample quantiles. Values outside [[lo, hi]] clamp (and
    exact [min_seen]/[max_seen] are kept, so the 0th/100th percentiles
    are always exact).

    Unlike {!Histogram} (fixed 2048 buckets, per-bucket error that
    depends on the range), the bucket count here is derived from the
    requested [eps], so the bound holds for any range. Merging is
    bucket-wise and exact for identical geometry, mirroring
    [Histogram.merge]/[Trace.merge] so per-domain sketches fold into one
    readout on engine stop. All state is plain ints/floats updated in a
    fixed order: byte-identical across runs under [Engine_vt]. *)

type t = {
  lo : float;  (** smallest representable value (values below clamp) *)
  hi : float;  (** largest representable value (values above clamp) *)
  eps : float;  (** documented relative error bound for quantile queries *)
  log_ratio : float;  (** log ((1 + eps)^2), cached for [bucket_of] *)
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let create ?(lo = 1.) ?(hi = 1e10) ?(eps = 0.01) () =
  if lo <= 0. || hi <= lo then invalid_arg "Quantiles.create: bad range";
  if eps <= 0. || eps >= 1. then invalid_arg "Quantiles.create: bad eps";
  let log_ratio = 2. *. log (1. +. eps) in
  let n = int_of_float (ceil (log (hi /. lo) /. log_ratio)) + 1 in
  {
    lo;
    hi;
    eps;
    log_ratio;
    buckets = Array.make n 0;
    count = 0;
    sum = 0.;
    min_seen = infinity;
    max_seen = neg_infinity;
  }

let error_bound t = t.eps
let n_buckets t = Array.length t.buckets

let bucket_of t v =
  let v = Float.max t.lo (Float.min t.hi v) in
  let i = int_of_float (log (v /. t.lo) /. t.log_ratio) in
  Int.max 0 (Int.min (n_buckets t - 1) i)

(** Geometric midpoint of bucket [i] — the value quantile queries
    report. *)
let value_of t i =
  t.lo *. exp (float_of_int i *. t.log_ratio) *. (1. +. t.eps)

let add t v =
  let i = bucket_of t v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_seen then t.min_seen <- v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(** [quantile t p] with [p] in [0, 100]: the value at rank
    [ceil (p/100 · count)] (nearest-rank), within [eps] relative error.
    Returns 0. on an empty sketch; exact min/max at the extremes. *)
let quantile t p =
  if t.count = 0 then 0.
  else if p <= 0. then t.min_seen
  else if p >= 100. then t.max_seen
  else begin
    let target = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
    let n = n_buckets t in
    let rec scan i acc =
      if i >= n then t.max_seen
      else
        let acc = acc + t.buckets.(i) in
        if acc >= target then value_of t i else scan (i + 1) acc
    in
    scan 0 0
  end

let p50 t = quantile t 50.
let p95 t = quantile t 95.
let p99 t = quantile t 99.
let p999 t = quantile t 99.9

(** Fold [src]'s samples into [into] (bucket-wise — exact, since both
    use the same geometry). Requires identical [lo]/[hi]/[eps]; merged
    queries carry the same [eps] bound as single-stream ingestion, which
    is what lets per-domain sketches fold into one on engine stop. *)
let merge ~into src =
  if into.lo <> src.lo || into.hi <> src.hi || into.eps <> src.eps then
    invalid_arg "Quantiles.merge: mismatched geometry";
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_seen < into.min_seen then into.min_seen <- src.min_seen;
  if src.max_seen > into.max_seen then into.max_seen <- src.max_seen

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min_seen <- infinity;
  t.max_seen <- neg_infinity

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f p999=%.1f" t.count
    (mean t) (p50 t) (p95 t) (p99 t) (p999 t)
