(** A global coverage-counter registry, modelled on OVS's COVERAGE_INC
    macros and the [ovs-appctl coverage/show] command.

    Any subsystem registers a named counter once (typically at module
    initialisation) and bumps it from its hot path; the registry renders
    the counters sorted by name for the appctl-style tooling. Counters
    are process-global — like real OVS coverage counters they aggregate
    over every datapath instance in the process — and resettable between
    measurement phases. *)

type counter = { name : string; mutable count : int }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64

(** Register (or fetch) the counter called [name]. The returned handle is
    stable: hot paths should call this once and keep the handle. *)
let counter name : counter =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; count = 0 } in
      Hashtbl.add registry name c;
      c

let incr ?(n = 1) (c : counter) = c.count <- c.count + n

(** One-shot bump by name (slower: one hashtable probe per call). *)
let hit ?(n = 1) name = incr ~n (counter name)

let read name = match Hashtbl.find_opt registry name with Some c -> c.count | None -> 0

(** All counters, sorted by name. [nonzero] drops the ones that never
    fired (coverage/show's default view). *)
let dump ?(nonzero = true) () =
  Hashtbl.fold (fun _ c acc -> c :: acc) registry []
  |> List.filter (fun c -> (not nonzero) || c.count > 0)
  |> List.sort (fun a b -> compare a.name b.name)
  |> List.map (fun c -> (c.name, c.count))

(** Render in coverage/show style. *)
let show ?(nonzero = true) () =
  let lines =
    dump ~nonzero ()
    |> List.map (fun (name, count) -> Printf.sprintf "%-32s %12d" name count)
  in
  String.concat "\n" (("counter" ^ String.make 25 ' ' ^ "total") :: lines)

(** Zero every counter (handles stay valid). *)
let reset () = Hashtbl.iter (fun _ c -> c.count <- 0) registry
