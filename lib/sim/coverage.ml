(** A global coverage-counter registry, modelled on OVS's COVERAGE_INC
    macros and the [ovs-appctl coverage/show] command.

    Any subsystem registers a named counter once (typically at module
    initialisation) and bumps it from its hot path; the registry renders
    the counters sorted by name for the appctl-style tooling. Counters
    are process-global — like real OVS coverage counters they aggregate
    over every datapath instance in the process — and resettable between
    measurement phases.

    {b Domain safety.} Real OVS coverage counters are per-thread and
    aggregated on read; this registry does the same per {e domain}. Each
    counter keeps a domain-local cell ([Domain.DLS]) that its hot-path
    {!incr} bumps without synchronization, plus a [merged] total protected
    by the registry mutex. A domain that is about to exit (or a
    measurement phase that wants a consistent global view) calls
    {!flush_domain} to fold its local cells into the merged totals — the
    domains engine does this on worker shutdown, so no increment is ever
    lost. Reads ({!read}, {!dump}, {!show}) return merged totals plus the
    {e calling} domain's unflushed local counts, which makes the
    single-domain (virtual-time) behaviour identical to the pre-redesign
    registry. Counts accumulated by another still-running domain are
    invisible until that domain flushes. *)

type counter = {
  name : string;
  mutable merged : int;  (** flushed totals; written under [mu] only *)
  local : int ref Domain.DLS.key;
      (** this domain's unflushed increments — no lock on the hot path *)
}

(* Guards the registry table and every [merged] field. *)
let mu = Mutex.create ()

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64

let with_mu f =
  Mutex.lock mu;
  let r = try f () with e -> Mutex.unlock mu; raise e in
  Mutex.unlock mu;
  r

(** Register (or fetch) the counter called [name]. The returned handle is
    stable: hot paths should call this once and keep the handle. *)
let counter name : counter =
  with_mu @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; merged = 0; local = Domain.DLS.new_key (fun () -> ref 0) } in
      Hashtbl.add registry name c;
      c

(* Lock-free on the hot path: each domain bumps its own cell. *)
let incr ?(n = 1) (c : counter) =
  let r = Domain.DLS.get c.local in
  r := !r + n

(** One-shot bump by name (slower: a mutex-guarded hashtable probe). *)
let hit ?(n = 1) name = incr ~n (counter name)

(* The calling domain's view of a counter: flushed history plus its own
   pending increments. *)
let value c = c.merged + !(Domain.DLS.get c.local)

(** Fold the {e calling} domain's local counts into the merged totals.
    Worker domains must call this before exiting (the domains engine
    does); the main domain may call it any time for a consistent global
    view. *)
let flush_domain () =
  with_mu @@ fun () ->
  Hashtbl.iter
    (fun _ c ->
      let r = Domain.DLS.get c.local in
      if !r <> 0 then begin
        c.merged <- c.merged + !r;
        r := 0
      end)
    registry

let read name =
  match with_mu (fun () -> Hashtbl.find_opt registry name) with
  | Some c -> value c
  | None -> 0

(** All counters, sorted by name. [nonzero] drops the ones that never
    fired (coverage/show's default view). *)
let dump ?(nonzero = true) () =
  with_mu (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
  |> List.map (fun c -> (c.name, value c))
  |> List.filter (fun (_, v) -> (not nonzero) || v > 0)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Render in coverage/show style. *)
let show ?(nonzero = true) () =
  let lines =
    dump ~nonzero ()
    |> List.map (fun (name, count) -> Printf.sprintf "%-32s %12d" name count)
  in
  String.concat "\n" (("counter" ^ String.make 25 ' ' ^ "total") :: lines)

(** Zero every counter (handles stay valid). Clears the merged totals and
    the calling domain's local cells — call it only at quiescent points
    (no other domain incrementing), as between measurement phases. *)
let reset () =
  with_mu @@ fun () ->
  Hashtbl.iter
    (fun _ c ->
      c.merged <- 0;
      Domain.DLS.get c.local := 0)
    registry
