(** Latency/size histograms with percentile queries.

    Log-bucketed over a fixed range: cheap to update on the per-packet fast
    path of the simulator, and accurate enough (<2% relative error per
    bucket) for the P50/P90/P99 numbers the paper reports. *)

type t = {
  lo : float;  (** smallest representable value (values below clamp) *)
  hi : float;  (** largest representable value (values above clamp) *)
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let n_buckets = 2048

let create ?(lo = 1.) ?(hi = 1e9) () =
  if lo <= 0. || hi <= lo then invalid_arg "Histogram.create";
  {
    lo;
    hi;
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0.;
    min_seen = infinity;
    max_seen = neg_infinity;
  }

let bucket_of t v =
  let v = Float.max t.lo (Float.min t.hi v) in
  let frac = log (v /. t.lo) /. log (t.hi /. t.lo) in
  let i = int_of_float (frac *. float_of_int (n_buckets - 1)) in
  Int.max 0 (Int.min (n_buckets - 1) i)

let value_of t i =
  let frac = float_of_int i /. float_of_int (n_buckets - 1) in
  t.lo *. exp (frac *. log (t.hi /. t.lo))

let add t v =
  let i = bucket_of t v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_seen then t.min_seen <- v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.count
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(** [percentile t p] with [p] in [0, 100]. Returns 0. on an empty
    histogram. Exact min/max are used for the 0th/100th percentiles. *)
let percentile t p =
  if t.count = 0 then 0.
  else if p <= 0. then t.min_seen
  else if p >= 100. then t.max_seen
  else begin
    let target = p /. 100. *. float_of_int t.count in
    let rec scan i acc =
      if i >= n_buckets then t.max_seen
      else
        let acc = acc + t.buckets.(i) in
        if float_of_int acc >= target then value_of t i else scan (i + 1) acc
    in
    scan 0 0
  end

(** Fold [src]'s samples into [into] (bucket-wise — exact, since both use
    the same log bucketing). Requires identical [lo]/[hi] ranges. Used to
    merge per-domain histograms into one readout on engine stop. *)
let merge ~into src =
  if into.lo <> src.lo || into.hi <> src.hi then
    invalid_arg "Histogram.merge: mismatched ranges";
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_seen < into.min_seen then into.min_seen <- src.min_seen;
  if src.max_seen > into.max_seen then into.max_seen <- src.max_seen

let p50 t = percentile t 50.
let p90 t = percentile t 90.
let p99 t = percentile t 99.

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f" t.count (mean t)
    (p50 t) (p90 t) (p99 t)
