(** Packet-walk tracing and per-stage virtual-cycle attribution.

    A recorder splits every virtual nanosecond the datapath charges into
    the pipeline stage that spent it — the paper's Figs 9–14 and Table 4
    are all statements about *where* per-packet CPU time goes, and this is
    the instrument that answers them for the reproduction. The stages
    mirror the per-packet walk: driver receive, flow-key extraction, the
    three cache tiers, the slow-path upcall (ofproto translation),
    megaflow installation, action execution, conntrack, tunnel
    encap/decap and transmit.

    The recorder is designed to be *optional and zero-cost when absent*:
    consumers keep a [t option] and branch on it explicitly, so the hot
    path allocates nothing and runs no extra code when tracing is off.
    When tracing is on, the datapath routes every [charge_fn] call through
    {!on_charge}, which attributes the nanoseconds to the current stage —
    per-stage sums therefore equal the end-to-end charged totals by
    construction, not by double bookkeeping.

    Two granularities are recorded:
    - aggregate: per-stage cumulative totals plus a {!Histogram} of
      per-packet per-stage cycles ([packet_begin]/[packet_end] bracket one
      packet's fast-path pass);
    - per-packet walk: when {!start_walk} is active, the datapath also
      appends human-readable events (which cache hit, which rule matched,
      the conntrack verdict, …) — the raw material of the
      [ofproto/trace] rendering. *)

type stage =
  | St_rx  (** driver rx, NAPI/XDP/XSK delivery, rx metadata prep *)
  | St_extract  (** flow-key extraction (miniflow / kmod / eBPF parse) *)
  | St_emc  (** exact-match cache probe *)
  | St_smc  (** signature-match cache probe *)
  | St_ccache  (** computational cache (learned classifier) probe *)
  | St_dpcls  (** megaflow classifier (tuple-space search) *)
  | St_upcall  (** slow-path upcall + ofproto table-by-table translation *)
  | St_install  (** megaflow (and microflow) installation *)
  | St_action  (** odp-execute action loop (sets, vlan, meter, …) *)
  | St_conntrack  (** connection tracking verdict + NAT *)
  | St_encap  (** tunnel push (Geneve/VXLAN/GRE/ERSPAN) *)
  | St_decap  (** tunnel pop + recirculation *)
  | St_tx  (** transmit: tx-queue locks, rings, kicks, GSO *)

let all_stages =
  [|
    St_rx; St_extract; St_emc; St_smc; St_ccache; St_dpcls; St_upcall;
    St_install; St_action; St_conntrack; St_encap; St_decap; St_tx;
  |]

let n_stages = Array.length all_stages

let stage_index = function
  | St_rx -> 0
  | St_extract -> 1
  | St_emc -> 2
  | St_smc -> 3
  | St_ccache -> 4
  | St_dpcls -> 5
  | St_upcall -> 6
  | St_install -> 7
  | St_action -> 8
  | St_conntrack -> 9
  | St_encap -> 10
  | St_decap -> 11
  | St_tx -> 12

let stage_name = function
  | St_rx -> "rx"
  | St_extract -> "extract"
  | St_emc -> "emc"
  | St_smc -> "smc"
  | St_ccache -> "ccache"
  | St_dpcls -> "dpcls"
  | St_upcall -> "upcall"
  | St_install -> "install"
  | St_action -> "action"
  | St_conntrack -> "conntrack"
  | St_encap -> "encap"
  | St_decap -> "decap"
  | St_tx -> "tx"

(** One walk event: the stage it happened in and a rendered detail line
    (which cache hit, which rule fired, the conntrack verdict, …). *)
type event = { ev_stage : stage; ev_detail : string }

type t = {
  kind : string;  (** datapath kind label, e.g. "kernel" / "AF_XDP" *)
  hists : Histogram.t array;  (** per-stage per-packet cycle distribution *)
  totals : float array;  (** per-stage cumulative virtual ns *)
  scratch : float array;  (** the in-flight packet's per-stage ns *)
  mutable cur : int;  (** index of the stage now being charged *)
  mutable in_packet : bool;
  mutable packets : int;
  mutable walking : bool;
  mutable events : event list;  (** reversed while recording *)
}

let mk_hists () = Array.init n_stages (fun _ -> Histogram.create ~lo:1. ~hi:1e7 ())

let create ~kind () =
  {
    kind;
    hists = mk_hists ();
    totals = Array.make n_stages 0.;
    scratch = Array.make n_stages 0.;
    cur = 0;
    in_packet = false;
    packets = 0;
    walking = false;
    events = [];
  }

let kind t = t.kind
let packets t = t.packets

(** Zero every aggregate (between a warmup and a measurement phase). The
    walk state is cleared too. *)
let reset t =
  Array.iteri (fun i _ -> t.hists.(i) <- Histogram.create ~lo:1. ~hi:1e7 ()) t.hists;
  Array.fill t.totals 0 n_stages 0.;
  Array.fill t.scratch 0 n_stages 0.;
  t.cur <- 0;
  t.in_packet <- false;
  t.packets <- 0;
  t.events <- []

(** Declare which stage subsequent charges belong to. *)
let set_stage t s = t.cur <- stage_index s

(** Attribute [ns] charged virtual time to the current stage. The
    datapath wraps its [charge_fn] with this exactly once, so per-stage
    sums equal end-to-end charged totals by construction. *)
let on_charge t (ns : Time.ns) =
  t.totals.(t.cur) <- t.totals.(t.cur) +. ns;
  if t.in_packet then t.scratch.(t.cur) <- t.scratch.(t.cur) +. ns

(** Bracket one packet's datapath pass: [packet_begin] clears the
    per-packet scratch, [packet_end] flushes it into the per-stage
    histograms. A deferred upcall (the PMD bounded-queue path) runs as its
    own bracket, so its stages histogram separately from the fast-path
    probe that queued it. *)
let packet_begin t =
  Array.fill t.scratch 0 n_stages 0.;
  t.in_packet <- true

let packet_end t =
  for i = 0 to n_stages - 1 do
    if t.scratch.(i) > 0. then Histogram.add t.hists.(i) t.scratch.(i)
  done;
  t.packets <- t.packets + 1;
  t.in_packet <- false

(** {1 Per-packet walk} *)

let walking t = t.walking

let start_walk t =
  t.walking <- true;
  t.events <- []

(** Stop recording and return the walk's events in order. *)
let stop_walk t =
  t.walking <- false;
  let evs = List.rev t.events in
  t.events <- [];
  evs

(** Record a walk event (and make [s] the current stage). *)
let note t s detail =
  set_stage t s;
  if t.walking then t.events <- { ev_stage = s; ev_detail = detail } :: t.events

(** Fold [src]'s aggregates (per-stage totals, histograms, packet count)
    into [into]. The domains engine gives each worker domain its own
    recorder — no shared mutable state on the hot path — and merges them
    into one readout on stop. Walk state (events, in-flight scratch) is
    per-recorder and deliberately not merged. *)
let merge ~into src =
  for i = 0 to n_stages - 1 do
    into.totals.(i) <- into.totals.(i) +. src.totals.(i);
    Histogram.merge ~into:into.hists.(i) src.hists.(i)
  done;
  into.packets <- into.packets + src.packets

(** {1 Readouts} *)

let stage_total t s = t.totals.(stage_index s)
let stage_hist t s = t.hists.(stage_index s)

(** Cumulative charged ns across all stages. *)
let total t = Array.fold_left ( +. ) 0. t.totals

(** The last completed packet's per-stage cycles (nonzero stages only),
    in stage order. Valid until the next [packet_begin]. *)
let last_packet t =
  Array.to_list all_stages
  |> List.filter_map (fun s ->
         let v = t.scratch.(stage_index s) in
         if v > 0. then Some (s, v) else None)

(** Render the aggregate per-stage table ([dpif/show-stage-cycles]). *)
let render t =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "per-stage cycle attribution (%s datapath): %d packets" t.kind t.packets;
  add "  %-10s %10s %14s %12s %10s %10s" "stage" "packets" "cycles" "cycles/pkt"
    "mean/hit" "p99/hit";
  Array.iter
    (fun s ->
      let i = stage_index s in
      let h = t.hists.(i) in
      if t.totals.(i) > 0. || Histogram.count h > 0 then
        add "  %-10s %10d %14.0f %12.1f %10.1f %10.1f" (stage_name s)
          (Histogram.count h) t.totals.(i)
          (if t.packets > 0 then t.totals.(i) /. float_of_int t.packets else 0.)
          (Histogram.mean h) (Histogram.p99 h))
    all_stages;
  add "  %-10s %10s %14.0f %12.1f" "total" "" (total t)
    (if t.packets > 0 then total t /. float_of_int t.packets else 0.);
  String.concat "\n" (List.rev !lines)
