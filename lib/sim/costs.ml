(** Calibrated per-operation virtual-time costs.

    Every constant the simulation charges lives here, in one place, so the
    whole calibration is auditable. Units are nanoseconds on the paper's
    2.4 GHz Xeon testbeds.

    Calibration anchors (paper numbers the constants were tuned against):
    - Table 2: AF_XDP single-flow 64B ladder 0.8 / 4.8 / 6.0 / 6.3 / 6.6 /
      7.1 Mpps as optimizations O1..O5 are enabled.
    - Fig 2: single-core 64B forwarding, kernel ~4.6 Mpps, eBPF 10-20%
      slower, DPDK ~9.3 Mpps.
    - Sec 3.3: sendto on a tap device costs ~2 us; AF_XDP+tap drops to
      1.3 Mpps while vhostuser restores ~6 Mpps.
    - Table 5: XDP task rates 14 / 8.1 / 7.1 / 4.7 Mpps.
    - Table 4: CPU breakdowns (kernel ~9.9 hyperthreads at P2P, DPDK 1.0,
      AF_XDP 2.1).

    Everything else in the evaluation (crossovers, scaling curves, latency
    distributions) is emergent from these constants plus the real mechanics
    (rings, caches, eBPF execution) implemented by the other libraries. *)

type t = {
  (* -- generic kernel substrate -- *)
  syscall : float;  (** entry/exit of a cheap syscall *)
  sendto_tap : float;  (** sendto(2) on a tap fd, measured as ~2us (Sec 3.3) *)
  context_switch : float;  (** involuntary context switch (mutex sleep path) *)
  interrupt : float;  (** taking a hardware interrupt + NAPI schedule *)
  softirq_dispatch : float;  (** entering softirq context, per batch *)
  skb_alloc : float;  (** allocating and initializing an sk_buff *)
  skb_alloc_cold : float;  (** same, cache-cold (many flows / many cores) *)
  kernel_func_call : float;  (** intra-kernel virtual-device hop (tap from kernel) *)
  (* -- memory -- *)
  copy_per_byte : float;  (** memcpy, warm cache (~16B/cycle) *)
  copy_per_byte_cross_core : float;  (** copy that bounces cache lines *)
  cache_miss : float;  (** one LLC miss *)
  page_alloc : float;  (** mmap/page-fault path for packet metadata (O4 off) *)
  prealloc_init : float;  (** re-initializing a preallocated dp_packet (O4 on) *)
  (* -- locking (Sec 3.2, O2/O3) -- *)
  mutex_lock : float;  (** pthread_mutex lock/unlock pair, uncontended *)
  spinlock : float;  (** spinlock lock/unlock pair, uncontended *)
  lock_contended_penalty : float;  (** added when another thread holds it *)
  (* -- checksums / offloads (O5) -- *)
  csum_per_byte : float;  (** software Internet checksum *)
  csum_fixed : float;  (** fixed part of software checksum of one packet *)
  (* -- classifier / flow processing (ovs userspace datapath) -- *)
  miniflow_extract : float;  (** flow key extraction from packet bytes *)
  emc_hit : float;  (** exact-match-cache hit *)
  emc_miss_probe : float;  (** probing the EMC and missing *)
  dpcls_subtable : float;  (** one tuple-space subtable hash+compare *)
  megaflow_insert : float;  (** installing a new megaflow after upcall *)
  (* -- computational cache (NuevoMatchUp-style learned tier, lib/nmu) --
     Anchored against the NSDI'22 numbers: an RQ-RMI submodel evaluation is
     two fused multiply-adds plus a rounding clamp on data that fits in L1
     (a few ns), each bounded-secondary-search step is one comparison over
     an in-cache index array, and validating the single candidate is one
     masked-key compare — cheaper than a dpcls subtable probe because the
     range array is contiguous where the subtable walk hops hash buckets. *)
  ccache_model_eval : float;  (** one RQ-RMI (sub)model evaluation *)
  ccache_search_step : float;  (** one bounded secondary-search step *)
  ccache_validate : float;  (** masked-key validation of one candidate *)
  ccache_train_per_rule : float;
      (** amortized training cost per indexed megaflow (charged at
          install/churn time, not per packet) *)
  upcall : float;  (** full slow-path translation through ofproto tables *)
  ofproto_table_lookup : float;  (** one OpenFlow table lookup during upcall *)
  action_exec : float;  (** executing one simple datapath action *)
  rxhash_sw : float;  (** computing 5-tuple RSS hash in software (Sec 5.5) *)
  (* -- kernel OVS datapath -- *)
  kmod_flow_extract : float;  (** kernel flow key extraction *)
  kmod_flow_lookup : float;  (** kernel megaflow table lookup, one mask *)
  kmod_flow_lookup_cold : float;  (** same with a cache-cold table *)
  kmod_action : float;  (** kernel action execution + tx handoff *)
  netlink_upcall : float;  (** upcall through netlink to ovs-vswitchd *)
  txq_lock_serialized : float;  (** serialized tx-queue critical section *)
  txq_serialized_contended : float;
      (** same section when several cores bounce the lock's cache line *)
  kmod_rss_penalty : float;
      (** per-packet penalty of RSS fan-out: cold skbs, cold flow table,
          per-small-batch interrupts — why the kernel burns ~10
          hyperthreads for ~6 Mpps in Table 4 *)
  (* -- eBPF / XDP -- *)
  ebpf_insn : float;  (** interpreting/executing one eBPF instruction *)
  ebpf_helper : float;  (** eBPF helper call overhead (beyond the work) *)
  ebpf_map_lookup : float;  (** hash-map lookup from eBPF *)
  xdp_prog_overhead : float;  (** fixed driver-hook cost of running XDP *)
  xdp_redirect : float;  (** xdp_redirect to another device *)
  xdp_tx : float;  (** XDP_TX bounce out the same port (tail ring, flush) *)
  (* -- AF_XDP (Sec 3.1/3.2) -- *)
  driver_rx_dma : float;  (** NIC driver per-packet rx work (descriptor, DMA) *)
  driver_tx : float;  (** NIC driver per-packet tx work *)
  xsk_ring_op : float;  (** one producer/consumer ring operation *)
  xsk_kick_syscall : float;  (** sendto() kick to flush the XSK tx ring *)
  umem_frame_op : float;  (** umempool get/put of one frame *)
  afxdp_copy_mode_per_byte : float;  (** extra copy in XDP_SKB fallback mode *)
  afxdp_rx_per_byte : float;
      (** driver-side per-byte rx cost (descriptor DMA + umem cache traffic);
          what keeps AF_XDP below 25G line rate on few queues (Fig 12) *)
  afxdp_mq_penalty_per_queue : float;
      (** per-packet cost added per additional busy queue: shared umempool
          and fill-ring cache-line bouncing plus per-queue tx kicks *)
  (* -- DPDK -- *)
  dpdk_rx : float;  (** vectorized PMD rx, per packet *)
  dpdk_tx : float;  (** vectorized PMD tx, per packet *)
  dpdk_mq_penalty_per_queue : float;  (** memory-bandwidth sharing term *)
  (* -- virtual devices -- *)
  virtio_ring_op : float;  (** vhostuser/virtio descriptor handling per pkt *)
  vhost_copy_fixed : float;  (** fixed part of the vhost data copy *)
  tap_rx_kernel : float;  (** tap delivering into the kernel stack *)
  veth_cross : float;  (** veth namespace crossing (no copy) *)
  (* -- TCP/IP stack (guests and containers; Fig 8, 10, 11) -- *)
  tcp_stack_per_byte : float;  (** segmentation/copy/socket per byte *)
  tcp_stack_per_packet : float;  (** per-MTU-packet stack traversal *)
  tcp_stack_per_segment : float;  (** per-syscall/segment fixed cost *)
  (* -- latency-path constants (Fig 10/11) -- *)
  wire_latency : float;  (** one-way 10/25G link + PHY + serialization *)
  irq_wakeup_latency : float;  (** interrupt + scheduler wakeup of a blocked task *)
  poll_pickup_latency : float;  (** polling loop pickup (busy PMD) *)
  vm_exit_entry : float;  (** VM exit/entry for notifications *)
  app_rr_process : float;  (** netperf request/response application turnaround *)
}

(** The calibrated default cost table. See the module comment for anchors. *)
let default =
  {
    syscall = 250.;
    sendto_tap = 2000.;
    context_switch = 1500.;
    interrupt = 900.;
    softirq_dispatch = 350.;
    skb_alloc = 45.;
    skb_alloc_cold = 320.;
    kernel_func_call = 40.;
    copy_per_byte = 0.026;
    copy_per_byte_cross_core = 0.08;
    cache_miss = 32.;
    page_alloc = 12.5;
    prealloc_init = 5.3;
    mutex_lock = 24.5;
    spinlock = 3.5;
    lock_contended_penalty = 60.;
    csum_per_byte = 0.167;
    csum_fixed = 4.;
    miniflow_extract = 40.;
    emc_hit = 27.;
    emc_miss_probe = 14.;
    dpcls_subtable = 30.;
    megaflow_insert = 450.;
    ccache_model_eval = 12.;
    ccache_search_step = 6.;
    ccache_validate = 14.;
    ccache_train_per_rule = 150.;
    upcall = 25_000.;
    ofproto_table_lookup = 500.;
    action_exec = 10.;
    rxhash_sw = 10.;
    kmod_flow_extract = 40.;
    kmod_flow_lookup = 50.;
    kmod_flow_lookup_cold = 380.;
    kmod_action = 25.;
    netlink_upcall = 40_000.;
    txq_lock_serialized = 60.;
    txq_serialized_contended = 175.;
    kmod_rss_penalty = 915.;
    ebpf_insn = 1.4;
    ebpf_helper = 4.;
    ebpf_map_lookup = 6.;
    xdp_prog_overhead = 18.;
    xdp_redirect = 35.;
    xdp_tx = 78.;
    driver_rx_dma = 32.;
    driver_tx = 24.;
    xsk_ring_op = 7.5;
    xsk_kick_syscall = 250.;
    umem_frame_op = 6.;
    afxdp_copy_mode_per_byte = 0.04;
    afxdp_rx_per_byte = 0.75;
    afxdp_mq_penalty_per_queue = 60.;
    dpdk_rx = 18.;
    dpdk_tx = 8.;
    dpdk_mq_penalty_per_queue = 15.;
    virtio_ring_op = 22.;
    vhost_copy_fixed = 14.;
    tap_rx_kernel = 95.;
    veth_cross = 70.;
    tcp_stack_per_byte = 0.30;
    tcp_stack_per_packet = 240.;
    tcp_stack_per_segment = 1100.;
    wire_latency = 2000.;
    irq_wakeup_latency = 3700.;
    poll_pickup_latency = 300.;
    vm_exit_entry = 1800.;
    app_rr_process = 4200.;
  }

(** Software checksum cost over [n] payload bytes. *)
let csum t ~bytes = t.csum_fixed +. (t.csum_per_byte *. float_of_int bytes)

(** Warm-cache copy of [n] bytes. *)
let copy t ~bytes = t.copy_per_byte *. float_of_int bytes
