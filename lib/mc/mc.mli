(** A bounded deterministic schedule explorer (mini model checker) for the
    PMD / umempool / upcall concurrency model.

    The simulator is single-threaded, but the system it models is not:
    PMD threads, the fault injector's windows, the health monitor and the
    umempool's reclaim path all interleave in the real OVS process, and
    the interesting bugs (double frame grants, lost upcalls, rings
    claimed by two threads) live in those interleavings. This module
    drives the per-step actions of that concurrency model — rxq poll,
    retry-backoff pass, upcall drain, fault-window tick, health sweep,
    umem reclaim, crash sweep — through an explicit scheduler and checks
    a set of invariant oracles after {e every} step:

    - frame conservation: every umem frame has exactly one owner among
      pool free stack, leak quarantine, fill/completion/rx/tx rings;
    - ring sanity: SPSC index monotonicity plus single-claimant XSK
      ownership against the PMD runtime's assignment;
    - bounded-queue capacity on the per-PMD upcall and retry queues;
    - packet conservation, reusing the chaos rig's accounting:
      offered = delivered + accounted drops + in flight;
    - trace accounting: the per-stage cycle sums equal the charged busy
      total.

    State is destructively mutated, so exploration is stateless-style:
    every schedule re-executes from a fresh model instance, which is what
    makes a violating schedule a {e replayable artifact} — a mode, a seed
    and a byte string of thread ids reproduce the identical violation. *)

(** {1 Bounds} *)

(** Exploration bound. [Tiny] (7 steps) is sized for unit tests, [Small]
    (10 steps, 2 PMDs x 2 rxqs) for exhaustive exploration, [Large]
    (24 steps, adds crash/restart) for seeded random sampling only. *)
type mode = Tiny | Small | Large

val mode_name : mode -> string
val mode_of_name : string -> mode option

val threads : mode -> (string * int) list
(** Thread names and script lengths at this bound. *)

(** {1 Mutations}

    Each mutation flips one guarded invariant in a scratch copy of the
    model — a seeded bug the explorer must find. Used by the mutation
    tests to establish that every oracle can actually fire. *)

type mutation =
  | M_double_grant  (** a fill-ring frame is also pushed back to the pool *)
  | M_second_claim  (** an XSK ring is claimed by a second PMD *)
  | M_leak_frame  (** a frame silently vanishes from the pool *)
  | M_lose_packet  (** an offered packet is discarded uncounted *)
  | M_overflow_queue  (** the upcall queue admits past its declared bound *)
  | M_ring_rewind  (** an rx ring's consumer index moves backwards *)
  | M_untraced_charge  (** PMD work charged outside the stage tracer *)

val mutations : (string * mutation) list
val mutation_name : mutation -> string

(** {1 Oracles} *)

type oracle =
  | O_ring  (** SPSC monotonicity / single-claimant ownership *)
  | O_frames  (** umem frame conservation *)
  | O_queues  (** bounded-queue capacity *)
  | O_packets  (** packet conservation *)
  | O_trace  (** stage-cycle sums vs charged totals *)

val oracle_name : oracle -> string

type violation = {
  v_step : int;  (** 0-based index into the schedule *)
  v_thread : int;  (** thread id scheduled at that index *)
  v_oracle : oracle;
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** {1 Execution} *)

type schedule = int array
(** Thread ids in scheduling order. An id whose script is exhausted (or
    out of range) is a no-op step — kept so shrunken/hand-edited
    artifacts still replay with stable step indices. *)

val run_schedule : ?mutation:mutation -> mode -> schedule -> violation option
(** Build a fresh model, execute the schedule, check every oracle after
    every step; the first violation stops the run. Deterministic: the
    same (mode, mutation, schedule) always yields the same result. *)

val shrink :
  ?mutation:mutation -> mode -> schedule -> violation -> schedule * violation
(** Greedily shrink a violating schedule: truncate to the violating step,
    then repeatedly drop single steps while the same oracle still fires.
    Returns a locally-minimal schedule and its violation. *)

(** {1 Exploration} *)

type outcome = {
  o_mode : mode;
  o_mutation : mutation option;
  o_seed : int;  (** sampling seed; 0 for exhaustive runs *)
  o_explored : int;  (** schedules fully executed *)
  o_pruned : int;  (** DFS subtrees cut by the partial-order reduction *)
  o_violation : (violation * schedule) option;  (** shrunk, if any *)
}

val explore :
  ?mutation:mutation -> ?por:bool -> ?max_schedules:int -> mode -> outcome
(** Exhaustive DFS over interleavings of the per-thread step scripts,
    stopping at the first violation (shrunk before reporting). [por]
    (default: on for the unmutated model, off under mutation) prunes
    schedule prefixes that commute with an already-explored neighbor —
    canonical-order partial-order reduction over a static independence
    relation. Under a mutation the relation no longer describes the step
    semantics, so reduction is disabled. *)

val sample : ?mutation:mutation -> seed:int -> n:int -> mode -> outcome
(** [n] schedules drawn uniformly (splitmix64, deterministic in [seed])
    from the interleavings of the scripts; stops at the first violation
    (shrunk before reporting). The only exploration available at the
    [Large] bound. *)

val render : outcome -> string

(** {1 Replay artifacts} *)

val artifact_string :
  mode:mode -> seed:int -> mutation:mutation option -> schedule -> string
(** [mc1 mode=<m> seed=<n> mut=<name|none> sched=<hex>] — one hex digit
    per scheduled thread id. *)

val artifact_of_outcome : outcome -> string option

val parse_artifact :
  string -> (mode * int * mutation option * schedule, string) result

val replay : string -> (string, string) result
(** Parse an artifact, re-execute its schedule deterministically and
    render what happened — the [appctl mc/replay] implementation. *)
