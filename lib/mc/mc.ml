(** Bounded deterministic schedule explorer — see mc.mli for the model.

    Implementation notes. The explored object is a {!Scenario} rig (the
    same one the chaos bench drives): an AF_XDP datapath with 2 rxqs
    sharded over 2 PMDs, a tracer attached, tiny upcall/retry queues and
    a shrunken umem so a fresh model costs ~1ms to build. Exploration is
    stateless-model-checking style: schedules are byte strings of thread
    ids, and every schedule re-executes against a fresh model, which is
    also exactly what makes violations replayable. Oracles run after
    every step in a fixed order so a violating (mode, schedule) pair
    always names the same oracle at the same step index. *)

module Cpu = Ovs_sim.Cpu
module Time = Ovs_sim.Time
module Prng = Ovs_sim.Prng
module Trace = Ovs_sim.Trace
module Netdev = Ovs_netdev.Netdev
module Ring = Ovs_xsk.Ring
module Umem = Ovs_xsk.Umem
module Umempool = Ovs_xsk.Umempool
module Xsk = Ovs_xsk.Xsk
module Dpif = Ovs_datapath.Dpif
module Dp_core = Ovs_datapath.Dp_core
module Pmd = Ovs_datapath.Pmd
module Health = Ovs_datapath.Health
module Faults = Ovs_faults.Faults
module Scenario = Ovs_trafficgen.Scenario
module Pktgen = Ovs_trafficgen.Pktgen

(* -- bounds, threads, scripts -- *)

type mode = Tiny | Small | Large

let mode_name = function Tiny -> "tiny" | Small -> "small" | Large -> "large"

let mode_of_name = function
  | "tiny" -> Some Tiny
  | "small" -> Some Small
  | "large" -> Some Large
  | _ -> None

(** One schedulable action of the concurrency model. PMD ids double as
    queue owners: round-robin sharding assigns queue [q] to PMD [q]. *)
type step =
  | S_poll of int * int  (** (pmd, queue): one rx burst, no drain *)
  | S_retry of int  (** one retry-backoff pass *)
  | S_drain of int  (** drain the upcall queue into the slow path *)
  | S_fault_tick  (** advance the fault clock one quantum *)
  | S_health  (** one health-monitor sweep *)
  | S_reclaim  (** umempool leak reclaim *)
  | S_crash_sweep  (** apply pending crash faults *)

let step_name = function
  | S_poll (p, q) -> Printf.sprintf "poll(pmd%d,q%d)" p q
  | S_retry p -> Printf.sprintf "retry(pmd%d)" p
  | S_drain p -> Printf.sprintf "drain(pmd%d)" p
  | S_fault_tick -> "fault-tick"
  | S_health -> "health-check"
  | S_reclaim -> "umem-reclaim"
  | S_crash_sweep -> "crash-sweep"

let scripts_of mode : (string * step array) array =
  match mode with
  | Tiny ->
      [|
        ("pmd0", [| S_poll (0, 0); S_retry 0; S_drain 0 |]);
        ("pmd1", [| S_poll (1, 1) |]);
        ("fault", [| S_fault_tick; S_fault_tick |]);
        ("health", [| S_health |]);
      |]
  | Small ->
      [|
        ("pmd0", [| S_poll (0, 0); S_retry 0; S_drain 0 |]);
        ("pmd1", [| S_poll (1, 1); S_retry 1; S_drain 1 |]);
        ("fault", [| S_fault_tick; S_fault_tick |]);
        ("health", [| S_health |]);
        ("reclaim", [| S_reclaim |]);
      |]
  | Large ->
      [|
        ( "pmd0",
          [|
            S_poll (0, 0); S_retry 0; S_drain 0;
            S_poll (0, 0); S_retry 0; S_drain 0;
          |] );
        ( "pmd1",
          [|
            S_poll (1, 1); S_retry 1; S_drain 1;
            S_poll (1, 1); S_retry 1; S_drain 1;
          |] );
        ( "fault",
          [| S_fault_tick; S_fault_tick; S_fault_tick; S_fault_tick;
             S_fault_tick |] );
        ("health", [| S_health; S_health; S_health |]);
        ("reclaim", [| S_reclaim; S_reclaim |]);
        ("crash", [| S_crash_sweep; S_crash_sweep |]);
      |]

let threads mode =
  Array.to_list
    (Array.map (fun (n, s) -> (n, Array.length s)) (scripts_of mode))

let total_steps mode =
  Array.fold_left (fun a (_, s) -> a + Array.length s) 0 (scripts_of mode)

(* -- mutations -- *)

type mutation =
  | M_double_grant
  | M_second_claim
  | M_leak_frame
  | M_lose_packet
  | M_overflow_queue
  | M_ring_rewind
  | M_untraced_charge

let mutations =
  [
    ("double_grant", M_double_grant);
    ("second_claim", M_second_claim);
    ("leak_frame", M_leak_frame);
    ("lose_packet", M_lose_packet);
    ("overflow_queue", M_overflow_queue);
    ("ring_rewind", M_ring_rewind);
    ("untraced_charge", M_untraced_charge);
  ]

let mutation_name m = fst (List.find (fun (_, m') -> m' = m) mutations)

(* -- oracles -- *)

type oracle = O_ring | O_frames | O_queues | O_packets | O_trace

let oracle_name = function
  | O_ring -> "ring-sanity"
  | O_frames -> "frame-conservation"
  | O_queues -> "queue-bounds"
  | O_packets -> "packet-conservation"
  | O_trace -> "trace-accounting"

type violation = {
  v_step : int;
  v_thread : int;
  v_oracle : oracle;
  v_detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "step %d (thread %d): %s: %s" v.v_step v.v_thread
    (oracle_name v.v_oracle) v.v_detail

type schedule = int array

(* -- the model -- *)

(* Shrunken scale so a fresh model per schedule stays ~1ms: 128 umem
   frames per queue (fill target 64), queue capacities of 4 so the
   bounded-queue oracle bites at a 16-packet preload. *)
let frames_per_queue = 128
let declared_capacity = 4

type port_view = {
  pv_pool : Umempool.t;
  pv_umem : Umem.t;
  pv_xsks : Xsk.t array;
  pv_stamp : int array;  (** per-frame epoch stamps, frame oracle *)
}

type tracked_ring = {
  tr_label : string;
  tr_ring : Ring.t;
  mutable tr_prod : int;
  mutable tr_cons : int;
}

type model = {
  rig : Scenario.rig;
  rt : Pmd.t;  (** runtime introspection (pmds, rxqs, assignment) *)
  eng : Ovs_datapath.Engine_vt.t;
      (** the rig's engine — the explorer's step access goes through it *)
  health : Health.t;
  by_id : (int * Pmd.pmd) list;  (** pmd id -> runtime pmd *)
  ports : port_view array;  (** p0 first *)
  rings : tracked_ring array;
  scripts : step array array;
  pcs : int array;
  mutable now : Time.ns;  (** the fault/health virtual clock *)
  quantum : Time.ns;
  offered : int;
  mut : mutation option;
  mutable epoch : int;
}

let fault_plan mode =
  let f name action start stop =
    {
      Faults.f_name = name;
      f_action = action;
      f_start = start;
      f_stop = stop;
    }
  in
  let base =
    [
      f "leak" (Faults.Umem_leak { frames = 32 }) (Time.us 50.) (Time.us 150.);
      f "storm" Faults.Upcall_storm (Time.us 150.) (Time.us 1000.);
    ]
  in
  let faults =
    match mode with
    | Tiny | Small -> base
    | Large ->
        base
        @ [ f "crash" (Faults.Pmd_crash { pmd = 0 }) (Time.us 250.) (Time.us 600.) ]
  in
  Faults.plan ~name:("mc-" ^ mode_name mode) ~seed:7 faults

(** Build a fresh model and arm its fault plan. The caller must
    [Faults.disarm] when done (the plan is process-global). *)
let build ?mutation mode =
  (* the overflow mutation weakens the implementation's guard (real
     capacity 2x the declared bound) while the oracle keeps the spec *)
  let real_capacity =
    match mutation with
    | Some M_overflow_queue -> 2 * declared_capacity
    | _ -> declared_capacity
  in
  let opts = { Dpif.afxdp_default with Dpif.frames_per_queue } in
  let cfg =
    Scenario.config ~kind:(Dpif.Afxdp opts) ~n_flows:8 ~queues:2 ~n_pmds:2
      ~n_rxqs:2 ~trace:true ~upcall_capacity:real_capacity
      ~retry_capacity:real_capacity ()
  in
  let rig = Scenario.setup cfg in
  let rt =
    match rig.Scenario.r_rt with
    | Some rt -> rt
    | None -> failwith "Mc.build: no PMD runtime"
  in
  let health = Health.create ~dp:rig.Scenario.r_dp ~rt () in
  Faults.arm (fault_plan mode);
  (* preload the traffic the schedule will churn through, with the chaos
     rig's offered-packet accounting (NIC-counted drops are offered) *)
  let phy0 = rig.Scenario.r_phy0 in
  let offered = ref 0 in
  let n_preload = match mode with Large -> 32 | Tiny | Small -> 16 in
  for _ = 1 to n_preload do
    let pkt = Pktgen.next rig.Scenario.r_gen in
    let dropped0 = phy0.Netdev.stats.Netdev.rx_dropped in
    if Netdev.rss_enqueue phy0 pkt then incr offered
    else if phy0.Netdev.stats.Netdev.rx_dropped > dropped0 then incr offered
  done;
  let view port_no =
    match
      ( Dpif.umem_pool rig.Scenario.r_dp ~port_no,
        Dpif.xsks rig.Scenario.r_dp ~port_no )
    with
    | Some pool, Some xsks ->
        let umem = xsks.(0).Xsk.umem in
        {
          pv_pool = pool;
          pv_umem = umem;
          pv_xsks = xsks;
          pv_stamp = Array.make umem.Umem.n_frames 0;
        }
    | _ -> failwith "Mc.build: port has no XSK attach"
  in
  let ports = [| view rig.Scenario.r_p0; view rig.Scenario.r_p1 |] in
  let rings =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i pv ->
              let p l = Printf.sprintf "p%d.%s" i l in
              let track label r =
                {
                  tr_label = p label;
                  tr_ring = r;
                  tr_prod = Ring.prod_idx r;
                  tr_cons = Ring.cons_idx r;
                }
              in
              track "fill" pv.pv_umem.Umem.fill
              :: track "comp" pv.pv_umem.Umem.completion
              :: List.concat
                   (List.mapi
                      (fun q (x : Xsk.t) ->
                        [
                          track (Printf.sprintf "q%d.rx" q) x.Xsk.rx;
                          track (Printf.sprintf "q%d.tx" q) x.Xsk.tx;
                        ])
                      (Array.to_list pv.pv_xsks)))
            (Array.to_list ports)))
  in
  let scripts = Array.map snd (scripts_of mode) in
  {
    rig;
    rt;
    eng = rig.Scenario.r_eng;
    health;
    by_id = List.map (fun p -> (Pmd.pmd_id p, p)) (Pmd.pmds rt);
    ports;
    rings;
    scripts;
    pcs = Array.make (Array.length scripts) 0;
    now = 0.;
    quantum = Time.us 100.;
    offered = !offered;
    mut = mutation;
    epoch = 0;
  }

let pmd_of m id = List.assoc id m.by_id

let rxq_of pmd q =
  List.find (fun r -> r.Pmd.rxq_queue = q) (Pmd.rxqs_of pmd)

(* Replicates the chaos runner's tick: advance the injector clock and run
   the window-open side effects the subsystems don't trigger themselves. *)
let fault_tick m =
  m.now <- m.now +. m.quantum;
  let opened = Faults.tick m.now in
  List.iter
    (fun (f : Faults.fault) ->
      match f.Faults.f_action with
      | Faults.Upcall_storm -> Dpif.flush_caches m.rig.Scenario.r_dp
      | Faults.Ct_pressure { zone; limit } ->
          ignore
            (Ovs_conntrack.Conntrack.evict_to_limit
               (Dpif.conntrack m.rig.Scenario.r_dp)
               ~zone ~limit
              : int)
      | _ -> ())
    opened

(* -- mutations: flip one guarded invariant, conditioned on schedule
   state so the explorer has to find the interleaving that exposes it -- *)

let apply_mutation m step =
  match m.mut with
  | None -> ()
  | Some mu -> (
      let pv0 = m.ports.(0) in
      match (mu, step) with
      | M_double_grant, S_poll _ when Faults.upcall_storm () ->
          (* grant a frame that is still posted on the fill ring *)
          let fill = pv0.pv_umem.Umem.fill in
          if Ring.available fill > 0 then
            let d = Ring.peek fill 0 in
            Umempool.put pv0.pv_pool d.Ring.addr
      | M_second_claim, S_health ->
          (* a second thread claims queue 0's SPSC rings *)
          let assigned =
            List.fold_left
              (fun acc (_, q, p) -> if q = 0 then p else acc)
              0 (Pmd.assignment m.rt)
          in
          Xsk.set_owner pv0.pv_xsks.(0) ~pmd:(assigned + 1)
      | M_leak_frame, S_retry _ when Faults.upcall_storm () ->
          (* a frame vanishes outside the accounted leak quarantine *)
          ignore (Umempool.get pv0.pv_pool : int option)
      | M_lose_packet, S_drain _ ->
          (* an offered packet is discarded with no drop counter *)
          let phy0 = m.rig.Scenario.r_phy0 in
          let rec steal q =
            if q < m.rig.Scenario.r_queues then
              match Netdev.dequeue phy0 ~queue:q ~max:1 with
              | [] -> steal (q + 1)
              | _ :: _ -> ()
          in
          steal 0
      | M_ring_rewind, S_health ->
          (* the rx consumer index moves backwards while the ring is
             otherwise quiet *)
          let rx = pv0.pv_xsks.(0).Xsk.rx in
          if Ring.cons_idx rx > 0 then Ring.corrupt_rewind_cons rx
      | M_untraced_charge, S_retry p ->
          (* PMD-side work the stage tracer never sees *)
          Cpu.charge (Pmd.pmd_ctx (pmd_of m p)) Cpu.User 500.
      | _ -> ())

(** Execute thread [tid]'s next step (no-op when its script is exhausted
    or [tid] is out of range — schedules stay replayable verbatim). *)
let exec_step m tid =
  if tid >= 0 && tid < Array.length m.scripts then begin
    let script = m.scripts.(tid) in
    let pc = m.pcs.(tid) in
    if pc < Array.length script then begin
      m.pcs.(tid) <- pc + 1;
      let step = script.(pc) in
      (match step with
      | S_poll (p, q) ->
          let pmd = pmd_of m p in
          ignore (Ovs_datapath.Engine_vt.step_poll m.eng pmd (rxq_of pmd q) : int)
      | S_retry p -> Ovs_datapath.Engine_vt.step_retry m.eng (pmd_of m p)
      | S_drain p -> Ovs_datapath.Engine_vt.step_drain m.eng (pmd_of m p)
      | S_fault_tick -> fault_tick m
      | S_health -> ignore (Health.check m.health ~now:m.now : int)
      | S_reclaim ->
          Array.iter
            (fun pv -> ignore (Umempool.reclaim_leaked pv.pv_pool : int))
            m.ports
      | S_crash_sweep -> Ovs_datapath.Engine_vt.handle_crashes m.eng);
      apply_mutation m step
    end
  end

(* -- oracles, checked in a fixed order after every step -- *)

exception Violated of oracle * string

let fail o fmt = Printf.ksprintf (fun s -> raise (Violated (o, s))) fmt

(* SPSC index monotonicity plus single-claimant XSK ownership. *)
let check_rings m =
  Array.iter
    (fun tr ->
      let r = tr.tr_ring in
      let prod = Ring.prod_idx r and cons = Ring.cons_idx r in
      if prod < tr.tr_prod then
        fail O_ring "%s producer rewound (%d -> %d)" tr.tr_label tr.tr_prod
          prod;
      if cons < tr.tr_cons then
        fail O_ring "%s consumer rewound (%d -> %d)" tr.tr_label tr.tr_cons
          cons;
      if cons > prod then
        fail O_ring "%s consumer ahead of producer (%d > %d)" tr.tr_label cons
          prod;
      if prod - cons > Ring.size r then
        fail O_ring "%s holds %d descriptors in a %d-slot ring" tr.tr_label
          (prod - cons) (Ring.size r);
      tr.tr_prod <- prod;
      tr.tr_cons <- cons)
    m.rings;
  List.iter
    (fun (_, q, pmd) ->
      let owner = Xsk.owner m.ports.(0).pv_xsks.(q) in
      if owner <> -1 && owner <> pmd then
        fail O_ring "xsk q%d claimed by pmd %d but assigned to pmd %d" q owner
          pmd)
    (Pmd.assignment m.rt)

(* Every umem frame has exactly one owner: pool free stack, leak
   quarantine, or one of the fill/completion/rx/tx rings. Epoch-stamped
   so the check allocates nothing and never clears the stamp array. *)
let check_frames m =
  Array.iteri
    (fun pi pv ->
      m.epoch <- m.epoch + 1;
      let epoch = m.epoch in
      let n_frames = pv.pv_umem.Umem.n_frames in
      let count = ref 0 in
      let visit where f =
        if f < 0 || f >= n_frames then
          fail O_frames "p%d: frame %d out of range (%s)" pi f where
        else if pv.pv_stamp.(f) = epoch then
          fail O_frames "p%d: frame %d owned twice (second owner: %s)" pi f
            where
        else begin
          pv.pv_stamp.(f) <- epoch;
          incr count
        end
      in
      let visit_ring where (r : Ring.t) =
        for i = 0 to Ring.available r - 1 do
          visit where (Ring.peek r i).Ring.addr
        done
      in
      let pool = pv.pv_pool in
      for i = 0 to pool.Umempool.top - 1 do
        visit "pool free stack" pool.Umempool.free.(i)
      done;
      List.iter (visit "leak quarantine") pool.Umempool.leaked;
      visit_ring "fill ring" pv.pv_umem.Umem.fill;
      visit_ring "completion ring" pv.pv_umem.Umem.completion;
      Array.iter
        (fun (x : Xsk.t) ->
          visit_ring
            (Printf.sprintf "q%d rx ring" x.Xsk.queue_id)
            x.Xsk.rx;
          visit_ring
            (Printf.sprintf "q%d tx ring" x.Xsk.queue_id)
            x.Xsk.tx)
        pv.pv_xsks;
      if !count <> n_frames then begin
        (* name a missing frame for the report *)
        let missing = ref (-1) in
        Array.iteri
          (fun f st -> if !missing < 0 && st <> epoch then missing := f)
          pv.pv_stamp;
        fail O_frames "p%d: %d of %d frames accounted (frame %d unowned)" pi
          !count n_frames !missing
      end)
    m.ports

(* The per-PMD upcall and retry queues respect the declared bound. *)
let check_queues m =
  List.iter
    (fun pmd ->
      let u = Pmd.upcall_queue_len pmd and r = Pmd.retry_queue_len pmd in
      if u > declared_capacity then
        fail O_queues "pmd %d upcall queue holds %d > bound %d"
          (Pmd.pmd_id pmd) u declared_capacity;
      if r > declared_capacity then
        fail O_queues "pmd %d retry queue holds %d > bound %d" (Pmd.pmd_id pmd)
          r declared_capacity)
    (Pmd.pmds m.rt)

(* Chaos-rig packet conservation: offered = delivered + drops + in flight
   after every step (the model is fresh, so counters start at zero). *)
let check_packets m =
  let rig = m.rig in
  let delivered = rig.Scenario.r_phy1.Netdev.stats.Netdev.tx_packets in
  let xsk_drops =
    Array.fold_left
      (fun acc pv ->
        Array.fold_left
          (fun a (x : Xsk.t) ->
            a + x.Xsk.rx_dropped_no_frame + x.Xsk.rx_dropped_ring_full)
          acc pv.pv_xsks)
      0 m.ports
  in
  let drops =
    rig.Scenario.r_phy0.Netdev.stats.Netdev.rx_dropped
    + (Dpif.counters rig.Scenario.r_dp).Dp_core.dropped
    + xsk_drops
  in
  let in_flight = Scenario.in_flight rig in
  if m.offered <> delivered + drops + in_flight then
    fail O_packets "offered %d <> delivered %d + drops %d + in-flight %d"
      m.offered delivered drops in_flight

(* Per-stage cycle sums reproduce the charged busy total. *)
let check_trace m =
  match Dpif.tracer m.rig.Scenario.r_dp with
  | None -> ()
  | Some tr ->
      let busy =
        List.fold_left
          (fun a c -> a +. Cpu.busy c)
          0. m.rig.Scenario.r_machine.Cpu.ctxs
      in
      let traced = Trace.total tr in
      if Float.abs (traced -. busy) > 1.0 then
        fail O_trace "stage sum %.1f ns <> charged busy %.1f ns" traced busy

let check_oracles m =
  try
    check_rings m;
    check_frames m;
    check_queues m;
    check_packets m;
    check_trace m;
    None
  with Violated (o, detail) -> Some (o, detail)

(* -- executing one schedule -- *)

let run_schedule ?mutation mode (sched : schedule) =
  let m = build ?mutation mode in
  Fun.protect ~finally:Faults.disarm (fun () ->
      let viol = ref None in
      (try
         Array.iteri
           (fun i tid ->
             exec_step m tid;
             match check_oracles m with
             | Some (o, detail) ->
                 viol :=
                   Some
                     { v_step = i; v_thread = tid; v_oracle = o;
                       v_detail = detail };
                 raise Exit
             | None -> ())
           sched
       with Exit -> ());
      !viol)

(* -- shrinking: truncate to the violation, then greedily drop single
   steps while the same oracle still fires -- *)

let shrink ?mutation mode (sched : schedule) (v : violation) =
  let remove arr i =
    Array.append (Array.sub arr 0 i)
      (Array.sub arr (i + 1) (Array.length arr - i - 1))
  in
  let cur = ref (Array.sub sched 0 (v.v_step + 1)) in
  let curv = ref { v with v_step = Array.length !cur - 1 } in
  let progress = ref true in
  while !progress do
    progress := false;
    let n = Array.length !cur in
    let i = ref 0 in
    while (not !progress) && !i < n do
      let cand = remove !cur !i in
      (match run_schedule ?mutation mode cand with
      | Some v' when v'.v_oracle = !curv.v_oracle ->
          cur := Array.sub cand 0 (v'.v_step + 1);
          curv := v';
          progress := true
      | _ -> ());
      incr i
    done
  done;
  (!cur, !curv)

(* -- exploration -- *)

type outcome = {
  o_mode : mode;
  o_mutation : mutation option;
  o_seed : int;
  o_explored : int;
  o_pruned : int;
  o_violation : (violation * schedule) option;
}

(* Static independence relation for the canonical-order reduction. Two
   steps are independent when executing them in either order reaches the
   same oracle-observable state (commutes up to frame identity — see
   DESIGN.md for the argument and the EMC caveat). Everything touching
   the shared slow path, the fault clock, or the monitor is dependent. *)
let independent a b =
  let one a b =
    match (a, b) with
    | S_poll (p1, q1), S_poll (p2, q2) -> p1 <> p2 && q1 <> q2
    | S_retry p1, (S_retry p2 | S_poll (p2, _) | S_drain p2) -> p1 <> p2
    | S_reclaim, S_retry _ -> true
    | _ -> false
  in
  one a b || one b a

let explore ?mutation ?por ?(max_schedules = 500_000) mode =
  let por = match por with Some p -> p | None -> mutation = None in
  let scripts = Array.map snd (scripts_of mode) in
  let n_threads = Array.length scripts in
  let total = total_steps mode in
  let pcs = Array.make n_threads 0 in
  let sched = Array.make total 0 in
  let explored = ref 0 and pruned = ref 0 in
  let found = ref None in
  let rec go depth prev =
    if !found = None && !explored < max_schedules then
      if depth = total then begin
        incr explored;
        match run_schedule ?mutation mode (Array.copy sched) with
        | Some v -> found := Some (v, Array.copy sched)
        | None -> ()
      end
      else
        for tid = 0 to n_threads - 1 do
          if
            !found = None
            && !explored < max_schedules
            && pcs.(tid) < Array.length scripts.(tid)
          then
            (* canonical order: a schedule running [tid] right after a
               higher-numbered [prev] is kept only if the two adjacent
               steps do not commute — its commuted twin (tid first) is
               explored instead *)
            if
              por && prev >= 0 && tid < prev
              && independent scripts.(tid).(pcs.(tid))
                   scripts.(prev).(pcs.(prev) - 1)
            then incr pruned
            else begin
              sched.(depth) <- tid;
              pcs.(tid) <- pcs.(tid) + 1;
              go (depth + 1) tid;
              pcs.(tid) <- pcs.(tid) - 1
            end
        done
  in
  go 0 (-1);
  let violation =
    match !found with
    | None -> None
    | Some (v, s) -> Some (shrink ?mutation mode s v)
  in
  {
    o_mode = mode;
    o_mutation = mutation;
    o_seed = 0;
    o_explored = !explored;
    o_pruned = !pruned;
    o_violation =
      (match violation with Some (s, v) -> Some (v, s) | None -> None);
  }

let sample ?mutation ~seed ~n mode =
  let scripts = Array.map snd (scripts_of mode) in
  let n_threads = Array.length scripts in
  let total = total_steps mode in
  let prng = Prng.of_int seed in
  let explored = ref 0 and found = ref None in
  while !found = None && !explored < n do
    let pcs = Array.make n_threads 0 in
    let sched =
      Array.init total (fun _ ->
          let ready = ref [] in
          for tid = n_threads - 1 downto 0 do
            if pcs.(tid) < Array.length scripts.(tid) then ready := tid :: !ready
          done;
          let arr = Array.of_list !ready in
          let tid = arr.(Prng.int prng (Array.length arr)) in
          pcs.(tid) <- pcs.(tid) + 1;
          tid)
    in
    incr explored;
    match run_schedule ?mutation mode sched with
    | Some v -> found := Some (v, sched)
    | None -> ()
  done;
  let violation =
    match !found with
    | None -> None
    | Some (v, s) -> Some (shrink ?mutation mode s v)
  in
  {
    o_mode = mode;
    o_mutation = mutation;
    o_seed = seed;
    o_explored = !explored;
    o_pruned = 0;
    o_violation =
      (match violation with Some (s, v) -> Some (v, s) | None -> None);
  }

(* -- replay artifacts -- *)

let hex = "0123456789abcdef"

let sched_to_hex (s : schedule) =
  String.init (Array.length s) (fun i ->
      let t = s.(i) in
      if t < 0 || t > 15 then invalid_arg "Mc.sched_to_hex: thread id > 15";
      hex.[t])

let sched_of_hex str =
  Array.init (String.length str) (fun i ->
      match String.index_opt hex str.[i] with
      | Some v -> v
      | None -> invalid_arg "Mc.sched_of_hex: not a hex digit")

let artifact_string ~mode ~seed ~mutation sched =
  Printf.sprintf "mc1 mode=%s seed=%d mut=%s sched=%s" (mode_name mode) seed
    (match mutation with Some m -> mutation_name m | None -> "none")
    (sched_to_hex sched)

let artifact_of_outcome o =
  match o.o_violation with
  | None -> None
  | Some (_, sched) ->
      Some
        (artifact_string ~mode:o.o_mode ~seed:o.o_seed ~mutation:o.o_mutation
           sched)

let parse_artifact str =
  let tokens = String.split_on_char ' ' (String.trim str) in
  match tokens with
  | "mc1" :: rest ->
      let field key =
        List.find_map
          (fun tok ->
            match String.index_opt tok '=' with
            | Some i when String.sub tok 0 i = key ->
                Some (String.sub tok (i + 1) (String.length tok - i - 1))
            | _ -> None)
          rest
      in
      let ( let* ) r f = Result.bind r f in
      let require key =
        match field key with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing %s= field" key)
      in
      let* mode_s = require "mode" in
      let* mode =
        match mode_of_name mode_s with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown mode %S" mode_s)
      in
      let* seed_s = require "seed" in
      let* seed =
        match int_of_string_opt seed_s with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "bad seed %S" seed_s)
      in
      let* mut_s = require "mut" in
      let* mutation =
        if mut_s = "none" then Ok None
        else
          match List.assoc_opt mut_s mutations with
          | Some m -> Ok (Some m)
          | None -> Error (Printf.sprintf "unknown mutation %S" mut_s)
      in
      let* sched_s = require "sched" in
      let* sched =
        match sched_of_hex sched_s with
        | s -> Ok s
        | exception Invalid_argument _ ->
            Error (Printf.sprintf "bad schedule %S" sched_s)
      in
      Ok (mode, seed, mutation, sched)
  | _ -> Error "not an mc1 artifact (expected leading \"mc1\")"

let describe_schedule mode sched =
  let scripts = Array.map snd (scripts_of mode) in
  let names = Array.map fst (scripts_of mode) in
  let pcs = Array.make (Array.length scripts) 0 in
  let buf = Buffer.create 128 in
  Array.iteri
    (fun i tid ->
      let what =
        if tid >= 0 && tid < Array.length scripts then begin
          let pc = pcs.(tid) in
          if pc < Array.length scripts.(tid) then begin
            pcs.(tid) <- pc + 1;
            Printf.sprintf "%s:%s" names.(tid) (step_name scripts.(tid).(pc))
          end
          else Printf.sprintf "%s:(exhausted)" names.(tid)
        end
        else "(no-op)"
      in
      Buffer.add_string buf (Printf.sprintf "  %2d  %s\n" i what))
    sched;
  Buffer.contents buf

let render o =
  let hdr =
    Printf.sprintf "mc %s%s: %d schedule%s explored, %d prefix%s pruned"
      (mode_name o.o_mode)
      (match o.o_mutation with
      | Some m -> Printf.sprintf " (mutation %s)" (mutation_name m)
      | None -> "")
      o.o_explored
      (if o.o_explored = 1 then "" else "s")
      o.o_pruned
      (if o.o_pruned = 1 then "" else "es")
  in
  match o.o_violation with
  | None -> hdr ^ ", no violations"
  | Some (v, sched) ->
      Printf.sprintf "%s\nVIOLATION %s\nschedule (shrunk):\n%sartifact: %s"
        hdr
        (Fmt.str "%a" pp_violation v)
        (describe_schedule o.o_mode sched)
        (match
           artifact_of_outcome o
         with
        | Some a -> a
        | None -> assert false)

let replay str =
  match parse_artifact str with
  | Error e -> Error e
  | Ok (mode, _seed, mutation, sched) ->
      let result =
        match run_schedule ?mutation mode sched with
        | None ->
            Printf.sprintf "replayed %d steps (mode %s, mutation %s): no violation"
              (Array.length sched) (mode_name mode)
              (match mutation with
              | Some m -> mutation_name m
              | None -> "none")
        | Some v ->
            Printf.sprintf
              "replayed %d steps (mode %s, mutation %s)\nVIOLATION %s\n%s"
              (Array.length sched) (mode_name mode)
              (match mutation with
              | Some m -> mutation_name m
              | None -> "none")
              (Fmt.str "%a" pp_violation v)
              (describe_schedule mode sched)
      in
      Ok result
