(** Deterministic fault injection on virtual time.

    A {!plan} schedules named faults with activity windows on
    {!Ovs_sim.Time}; {!arm} installs a process-global injector that the
    hooked subsystems (netdev, umempool, conntrack, the PMD runtime)
    consult through the hook functions below. Every hook starts with one
    dereference of an option ref and takes the [None] branch when no plan
    is armed — the tracer's zero-cost-when-disabled pattern — and no hook
    ever charges virtual time, so unarmed runs keep byte-identical cycle
    totals. Mutation draws come from a {!Ovs_sim.Prng} seeded by the
    plan: runs are fully reproducible. *)

(** What a fault does while its [f_start, f_stop) window is open. *)
type action =
  | Link_down of { port : int }  (** the port's carrier drops; rx is lost *)
  | Rxq_stall of { port : int; queue : int }
      (** one rx queue ([-1]: every queue) stops being served *)
  | Umem_leak of { frames : int }
      (** a buggy path leaks up to [frames] umem frames from the pool *)
  | Umem_exhaust  (** the umempool denies every allocation *)
  | Pmd_stall of { pmd : int }  (** the PMD thread stops making progress *)
  | Pmd_crash of { pmd : int }
      (** the PMD dies at window start (stays dead until restarted) *)
  | Upcall_storm  (** the upcall queue behaves as permanently full *)
  | Pkt_truncate of { prob : float }
  | Pkt_corrupt of { prob : float }
  | Ct_pressure of { zone : int; limit : int }
      (** force an effective conntrack zone limit of [limit] *)

type fault = {
  f_name : string;
  f_action : action;
  f_start : Ovs_sim.Time.ns;
  f_stop : Ovs_sim.Time.ns;
}

type plan = { p_name : string; p_seed : int; p_faults : fault list }

val plan : ?name:string -> ?seed:int -> fault list -> plan

(** {1 Arming} *)

val arm : plan -> unit
val disarm : unit -> unit
val armed_plan : unit -> plan option

val inject : ?seed:int -> fault -> unit
(** Append one fault to the armed injector, arming an empty plan first
    when nothing is armed (the appctl fault/inject path). *)

val tick : Ovs_sim.Time.ns -> fault list
(** Advance the injector clock to the simulation's wall time. Returns the
    faults whose windows opened with this tick (for window-start side
    effects, e.g. flushing caches when an upcall storm begins); [[]] when
    disarmed. *)

val now : unit -> Ovs_sim.Time.ns

val pending_windows : unit -> bool
(** Any windows still pending/open (or crashed PMDs not yet restarted)?
    Drain loops keep ticking while this holds so every window closes. *)

(** {1 Hook points}

    Each is called from exactly one subsystem; all are a single
    dereference + [None] branch when disarmed. *)

val link_down : port:int -> bool
(** Netdev enqueue: is this port's carrier down right now? *)

val rxq_stalled : port:int -> queue:int -> bool
(** Netdev dequeue: is this (port, queue) stalled right now? *)

val umem_exhausted : unit -> bool
(** Umempool allocation: deny every request while open. *)

val umem_leak : avail:int -> int
(** Umempool: frames to leak out of [avail] right now (0 when quiet). *)

val pmd_stalled : pmd:int -> bool

val pmd_crash_pending : pmd:int -> bool
(** Returns [true] exactly once per crash fault, when its window opens;
    the caller performs the crash transition. *)

val pmd_crashed : pmd:int -> bool
(** Crashed and not yet restarted. *)

val pmd_crashed_at : pmd:int -> Ovs_sim.Time.ns option
(** When the PMD crashed (for the health monitor's restart delay), or
    [None] when it is not currently crashed. *)

val mark_pmd_restarted : pmd:int -> unit

val upcall_storm : unit -> bool
(** PMD upcall enqueue: does the bounded queue behave as full? *)

val ct_limit : zone:int -> int option
(** Conntrack commit: forced effective zone limit, when open for [zone]. *)

val mutate : unit -> [ `Truncate of float | `Corrupt ] option
(** Traffic generation: mangle the next offered packet? [`Truncate frac]
    keeps roughly that fraction of the frame; [`Corrupt] flips a header
    byte. Draws from the plan PRNG only while a window is open. *)

(** {1 Rendering} *)

val pp_action : Format.formatter -> action -> unit
val pp_fault : Format.formatter -> fault -> unit

val render : unit -> string
(** One line per fault of the armed plan with live fire counts
    (appctl fault/list). *)

val fire_counts : unit -> (string * int) list

val of_spec : string -> (fault, string) result
(** Parse an appctl fault spec: a kind ([link_flap], [rxq_stall],
    [umem_leak], [umem_exhaust], [pmd_stall], [pmd_crash],
    [upcall_storm], [pkt_truncate], [pkt_corrupt], [ct_pressure])
    followed by [key=value] tokens. [at]/[for] are milliseconds of
    virtual time (defaults: 0 and 1). *)
