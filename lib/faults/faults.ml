(** Deterministic fault injection on virtual time.

    A {!plan} schedules named {!fault}s — each an {!action} with a
    [f_start, f_stop) activity window on {!Ovs_sim.Time} — and arming it
    installs a process-global injector the hooked subsystems consult.
    Everything is reproducible: the only randomness (packet mutation
    draws) comes from a {!Ovs_sim.Prng} seeded by the plan, and windows
    open as the simulation's own virtual clock crosses them (the driver
    calls {!tick} with the current wall time).

    The hook points follow the tracer's zero-cost-when-disabled pattern:
    every hook starts with one dereference of the global [armed] ref and
    takes the [None] branch immediately when no plan is armed. Hooks
    never charge virtual time themselves, so an unarmed run's cycle
    totals are byte-identical to a build without the hooks. *)

module Time = Ovs_sim.Time
module Prng = Ovs_sim.Prng
module Coverage = Ovs_sim.Coverage

let cov_fired = Coverage.counter "fault_fired"

(** What a fault does while its window is open. *)
type action =
  | Link_down of { port : int }  (** the port's carrier drops; rx is lost *)
  | Rxq_stall of { port : int; queue : int }
      (** one rx queue ([-1]: every queue) stops being served *)
  | Umem_leak of { frames : int }
      (** a buggy path leaks up to [frames] umem frames from the pool *)
  | Umem_exhaust  (** the umempool denies every allocation *)
  | Pmd_stall of { pmd : int }  (** the PMD thread stops making progress *)
  | Pmd_crash of { pmd : int }
      (** the PMD dies at window start (stays dead until restarted) *)
  | Upcall_storm  (** the upcall queue behaves as permanently full *)
  | Pkt_truncate of { prob : float }
      (** each offered packet is truncated with probability [prob] *)
  | Pkt_corrupt of { prob : float }
      (** each offered packet gets a flipped header byte with [prob] *)
  | Ct_pressure of { zone : int; limit : int }
      (** force an effective conntrack zone limit of [limit] *)

type fault = {
  f_name : string;
  f_action : action;
  f_start : Time.ns;
  f_stop : Time.ns;
}

type plan = { p_name : string; p_seed : int; p_faults : fault list }

let plan ?(name = "plan") ?(seed = 1) faults =
  { p_name = name; p_seed = seed; p_faults = faults }

(* per-fault runtime state *)
type fstate = {
  fault : fault;
  mutable fired : int;  (** times the fault actually bit *)
  mutable opened : bool;  (** window-start transition already reported *)
  mutable leak_left : int;  (** Umem_leak: frames still to leak *)
  mutable crashed : bool;  (** Pmd_crash: crash transition executed *)
  mutable crashed_at : Time.ns;
  mutable restarted : bool;  (** Pmd_crash: restart completed *)
  mutable restarted_at : Time.ns;
}

type t = {
  p : plan;
  prng : Prng.t;
  mutable now : Time.ns;
  mutable states : fstate list;
}

let state_of fault =
  {
    fault;
    fired = 0;
    opened = false;
    leak_left = (match fault.f_action with Umem_leak { frames } -> frames | _ -> 0);
    crashed = false;
    crashed_at = 0.;
    restarted = false;
    restarted_at = 0.;
  }

let create (p : plan) : t =
  {
    p;
    prng = Prng.of_int p.p_seed;
    now = 0.;
    states = List.map state_of p.p_faults;
  }

(* -- the global arming point (the zero-cost [None] branch) -- *)

let armed : t option ref = ref None

let arm p = armed := Some (create p)
let disarm () = armed := None
let armed_plan () = match !armed with Some i -> Some i.p | None -> None

(** Append one fault to the armed injector, arming an empty plan first if
    nothing is armed (the appctl fault/inject path). *)
let inject ?(seed = 1) fault =
  let i =
    match !armed with
    | Some i -> i
    | None ->
        let i = create { p_name = "appctl"; p_seed = seed; p_faults = [] } in
        armed := Some i;
        i
  in
  i.states <- i.states @ [ state_of fault ]

let in_window i s = s.fault.f_start <= i.now && i.now < s.fault.f_stop

let fired s =
  s.fired <- s.fired + 1;
  Coverage.incr cov_fired

(** Advance the injector clock. Returns the faults whose windows opened
    with this tick (so drivers can run window-start side effects, e.g.
    flushing caches when an upcall storm begins); [[]] when disarmed. *)
let tick (now : Time.ns) : fault list =
  match !armed with
  | None -> []
  | Some i ->
      i.now <- Float.max i.now now;
      List.filter_map
        (fun s ->
          if (not s.opened) && in_window i s then begin
            s.opened <- true;
            Some s.fault
          end
          else None)
        i.states

let now () = match !armed with Some i -> i.now | None -> 0.

(** Are any fault windows still pending or open? (The drain loop keeps
    ticking virtual time while this holds, so every window closes.) *)
let pending_windows () =
  match !armed with
  | None -> false
  | Some i ->
      List.exists
        (fun s ->
          match s.fault.f_action with
          | Pmd_crash _ -> s.crashed && not s.restarted
          | _ -> i.now < s.fault.f_stop)
        i.states

(* -- hook points (one per hooked subsystem) -- *)

let scan f =
  match !armed with
  | None -> false
  | Some i ->
      List.exists
        (fun s -> if in_window i s && f s.fault.f_action then (fired s; true) else false)
        i.states

(** Netdev enqueue: is this port's link administratively dead right now? *)
let link_down ~port =
  match !armed with
  | None -> false
  | Some _ -> scan (function Link_down l -> l.port = port | _ -> false)

(** Netdev dequeue: is this (port, queue) rx queue stalled right now? *)
let rxq_stalled ~port ~queue =
  match !armed with
  | None -> false
  | Some _ ->
      scan (function
        | Rxq_stall r -> r.port = port && (r.queue = -1 || r.queue = queue)
        | _ -> false)

(** Umempool get: deny every allocation while an exhaustion window is
    open. *)
let umem_exhausted () =
  match !armed with
  | None -> false
  | Some _ -> scan (function Umem_exhaust -> true | _ -> false)

(** Umempool: how many frames to leak out of [avail] right now (0 when no
    leak window is open or the budget ran dry). *)
let umem_leak ~avail =
  match !armed with
  | None -> 0
  | Some i ->
      List.fold_left
        (fun taken s ->
          match s.fault.f_action with
          | Umem_leak _ when in_window i s && s.leak_left > 0 && avail - taken > 0 ->
              let take = Int.min s.leak_left (avail - taken) in
              s.leak_left <- s.leak_left - take;
              s.fired <- s.fired + take;
              Coverage.incr ~n:take cov_fired;
              taken + take
          | _ -> taken)
        0 i.states

(** PMD poll: is this PMD stalled (spinning without serving its rxqs)? *)
let pmd_stalled ~pmd =
  match !armed with
  | None -> false
  | Some _ -> scan (function Pmd_stall p -> p.pmd = pmd | _ -> false)

(** PMD poll: perform the crash transition for this PMD. Returns [true]
    exactly once, when a crash window opens; the PMD stays crashed (see
    {!pmd_crashed}) until {!mark_pmd_restarted}. *)
let pmd_crash_pending ~pmd =
  match !armed with
  | None -> false
  | Some i ->
      List.exists
        (fun s ->
          match s.fault.f_action with
          | Pmd_crash p
            when p.pmd = pmd && (not s.crashed) && i.now >= s.fault.f_start ->
              s.crashed <- true;
              s.crashed_at <- i.now;
              fired s;
              true
          | _ -> false)
        i.states

let pmd_crashed ~pmd =
  match !armed with
  | None -> false
  | Some i ->
      List.exists
        (fun s ->
          match s.fault.f_action with
          | Pmd_crash p -> p.pmd = pmd && s.crashed && not s.restarted
          | _ -> false)
        i.states

(** When did this PMD crash (for the health monitor's restart-delay
    policy)? [None] if it is not currently crashed. *)
let pmd_crashed_at ~pmd =
  match !armed with
  | None -> None
  | Some i ->
      List.find_map
        (fun s ->
          match s.fault.f_action with
          | Pmd_crash p when p.pmd = pmd && s.crashed && not s.restarted ->
              Some s.crashed_at
          | _ -> None)
        i.states

let mark_pmd_restarted ~pmd =
  match !armed with
  | None -> ()
  | Some i ->
      List.iter
        (fun s ->
          match s.fault.f_action with
          | Pmd_crash p when p.pmd = pmd && s.crashed && not s.restarted ->
              s.restarted <- true;
              s.restarted_at <- i.now
          | _ -> ())
        i.states

(** PMD upcall enqueue: does the bounded queue behave as full right now? *)
let upcall_storm () =
  match !armed with
  | None -> false
  | Some _ -> scan (function Upcall_storm -> true | _ -> false)

(** Conntrack commit: the forced effective zone limit, if a pressure
    window is open for [zone]. *)
let ct_limit ~zone =
  match !armed with
  | None -> None
  | Some i ->
      List.find_map
        (fun s ->
          match s.fault.f_action with
          | Ct_pressure c when c.zone = zone && in_window i s ->
              fired s;
              Some c.limit
          | _ -> None)
        i.states

(** Traffic generation: should the next offered packet be mangled?
    [`Truncate frac] keeps roughly that fraction of the frame;
    [`Corrupt] flips a header byte. Draws from the plan's PRNG only while
    a packet-stream window is open, so runs stay reproducible. *)
let mutate () : [ `Truncate of float | `Corrupt ] option =
  match !armed with
  | None -> None
  | Some i ->
      List.find_map
        (fun s ->
          match s.fault.f_action with
          | Pkt_truncate { prob } when in_window i s ->
              if Prng.float i.prng < prob then begin
                fired s;
                Some (`Truncate (Prng.float i.prng))
              end
              else None
          | Pkt_corrupt { prob } when in_window i s ->
              if Prng.float i.prng < prob then begin
                fired s;
                Some `Corrupt
              end
              else None
          | _ -> None)
        i.states

(* -- rendering and the appctl spec language -- *)

let pp_action ppf = function
  | Link_down { port } -> Fmt.pf ppf "link_down port=%d" port
  | Rxq_stall { port; queue } ->
      Fmt.pf ppf "rxq_stall port=%d queue=%d" port queue
  | Umem_leak { frames } -> Fmt.pf ppf "umem_leak frames=%d" frames
  | Umem_exhaust -> Fmt.pf ppf "umem_exhaust"
  | Pmd_stall { pmd } -> Fmt.pf ppf "pmd_stall pmd=%d" pmd
  | Pmd_crash { pmd } -> Fmt.pf ppf "pmd_crash pmd=%d" pmd
  | Upcall_storm -> Fmt.pf ppf "upcall_storm"
  | Pkt_truncate { prob } -> Fmt.pf ppf "pkt_truncate prob=%.2f" prob
  | Pkt_corrupt { prob } -> Fmt.pf ppf "pkt_corrupt prob=%.2f" prob
  | Ct_pressure { zone; limit } ->
      Fmt.pf ppf "ct_pressure zone=%d limit=%d" zone limit

let pp_fault ppf f =
  Fmt.pf ppf "%s: %a window [%a, %a]" f.f_name pp_action f.f_action Time.pp_ns
    f.f_start Time.pp_ns f.f_stop

(** One line per fault of the armed plan, with live fire counts —
    appctl fault/list's content. *)
let render () =
  match !armed with
  | None -> "no fault plan armed"
  | Some i ->
      Fmt.str "plan %S (seed %d) at %a:\n%s" i.p.p_name i.p.p_seed Time.pp_ns
        i.now
        (String.concat "\n"
           (List.map
              (fun s ->
                Fmt.str "  %a  fired %d%s" pp_fault s.fault s.fired
                  (match s.fault.f_action with
                  | Pmd_crash _ when s.restarted ->
                      Fmt.str " (restarted at %a)" Time.pp_ns s.restarted_at
                  | Pmd_crash _ when s.crashed -> " (down)"
                  | _ -> ""))
              i.states))

let fire_counts () =
  match !armed with
  | None -> []
  | Some i -> List.map (fun s -> (s.fault.f_name, s.fired)) i.states

(** Parse an appctl fault spec: a fault kind followed by [key=value]
    tokens, whitespace-separated. Times are milliseconds of virtual time:
    [at] (window start, default 0) and [for] (duration, default 1ms).

    Examples: ["link_flap port=0 at=0.2 for=1"],
    ["pmd_crash pmd=1 at=0.5"], ["pkt_corrupt prob=0.3 for=2"]. *)
let of_spec spec : (fault, string) result =
  match
    String.split_on_char ' ' (String.trim spec)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "usage: fault/inject KIND [key=value ...]"
  | kind :: kvs -> (
      let tbl = Hashtbl.create 8 in
      let bad = ref None in
      List.iter
        (fun tok ->
          match String.index_opt tok '=' with
          | Some idx ->
              Hashtbl.replace tbl
                (String.sub tok 0 idx)
                (String.sub tok (idx + 1) (String.length tok - idx - 1))
          | None -> bad := Some tok)
        kvs;
      match !bad with
      | Some tok -> Error (Printf.sprintf "bad token %S (want key=value)" tok)
      | None -> (
          let geti k d =
            match Hashtbl.find_opt tbl k with
            | None -> Ok d
            | Some v -> (
                match int_of_string_opt v with
                | Some n -> Ok n
                | None -> Error (Printf.sprintf "bad integer %s=%s" k v))
          in
          let getf k d =
            match Hashtbl.find_opt tbl k with
            | None -> Ok d
            | Some v -> (
                match float_of_string_opt v with
                | Some f -> Ok f
                | None -> Error (Printf.sprintf "bad number %s=%s" k v))
          in
          let ( let* ) = Result.bind in
          let* action =
            match kind with
            | "link_down" | "link_flap" ->
                let* port = geti "port" 0 in
                Ok (Link_down { port })
            | "rxq_stall" ->
                let* port = geti "port" 0 in
                let* queue = geti "queue" (-1) in
                Ok (Rxq_stall { port; queue })
            | "umem_leak" ->
                let* frames = geti "frames" 1024 in
                Ok (Umem_leak { frames })
            | "umem_exhaust" -> Ok Umem_exhaust
            | "pmd_stall" ->
                let* pmd = geti "pmd" 0 in
                Ok (Pmd_stall { pmd })
            | "pmd_crash" ->
                let* pmd = geti "pmd" 0 in
                Ok (Pmd_crash { pmd })
            | "upcall_storm" -> Ok Upcall_storm
            | "pkt_truncate" ->
                let* prob = getf "prob" 0.25 in
                Ok (Pkt_truncate { prob })
            | "pkt_corrupt" ->
                let* prob = getf "prob" 0.25 in
                Ok (Pkt_corrupt { prob })
            | "ct_pressure" ->
                let* zone = geti "zone" 0 in
                let* limit = geti "limit" 64 in
                Ok (Ct_pressure { zone; limit })
            | other -> Error (Printf.sprintf "unknown fault kind %S" other)
          in
          let* at = getf "at" 0. in
          let* dur = getf "for" 1. in
          Ok
            {
              f_name = kind;
              f_action = action;
              f_start = Time.ms at;
              f_stop = Time.ms (at +. dur);
            }))
