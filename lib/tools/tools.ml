(** The Table 1 tooling model: the standard Linux commands operators use to
    configure and troubleshoot networks, run against the simulated stack.

    The paper's compatibility argument is that these tools work on any NIC
    a standard kernel driver manages — which includes NICs serving AF_XDP
    sockets — and fail on NICs a DPDK userspace driver has taken over.
    Each command here operates on real device state when the device is
    kernel-visible and reports the same failure an operator would see
    otherwise. *)

module Netdev = Ovs_netdev.Netdev

type outcome = Ok_output of string | Not_supported of string

let is_ok = function Ok_output _ -> true | Not_supported _ -> false

let unsupported (dev : Netdev.t) =
  Not_supported
    (Printf.sprintf
       "Device \"%s\" does not exist (owned by a userspace driver)"
       dev.Netdev.name)

let guard dev f = if Netdev.kernel_visible dev then Ok_output (f ()) else unsupported dev

(** [ip link show DEV] — device state and driver. *)
let ip_link (dev : Netdev.t) =
  guard dev (fun () ->
      Printf.sprintf "%d: %s: <BROADCAST,MULTICAST%s> mtu 1500 state %s\n    link/ether %s"
        (1 + dev.Netdev.port_no) dev.Netdev.name
        (if dev.Netdev.up then ",UP,LOWER_UP" else "")
        (if dev.Netdev.up then "UP" else "DOWN")
        (Ovs_packet.Mac.to_string dev.Netdev.mac))

(** [ip link set DEV up/down]. *)
let ip_link_set (dev : Netdev.t) ~up =
  guard dev (fun () ->
      dev.Netdev.up <- up;
      "")

(** [ip address add ADDR dev DEV]. *)
let ip_address_add (dev : Netdev.t) ~addr =
  guard dev (fun () ->
      dev.Netdev.ip_addr <- addr;
      "")

let ip_address_show (dev : Netdev.t) =
  guard dev (fun () ->
      if dev.Netdev.ip_addr = 0 then "(no address)"
      else
        Printf.sprintf "inet %s/24 scope global %s"
          (Ovs_packet.Ipv4.addr_to_string dev.Netdev.ip_addr)
          dev.Netdev.name)

(** A host routing table, the kernel structure OVS mirrors over Netlink
    for its userspace L3 features (Sec 4). *)
module Route = struct
  type entry = { prefix : int; prefix_len : int; via : int; dev : string }

  type t = { mutable entries : entry list }

  let create () = { entries = [] }

  let add t ~prefix ~prefix_len ~via ~dev =
    t.entries <- { prefix; prefix_len; via; dev } :: t.entries

  let mask len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

  (** Longest-prefix match. *)
  let lookup t addr =
    List.fold_left
      (fun best e ->
        if addr land mask e.prefix_len = e.prefix land mask e.prefix_len then
          match best with
          | Some b when b.prefix_len >= e.prefix_len -> best
          | _ -> Some e
        else best)
      None t.entries

  let dump t =
    String.concat "\n"
      (List.map
         (fun e ->
           Printf.sprintf "%s/%d via %s dev %s"
             (Ovs_packet.Ipv4.addr_to_string e.prefix)
             e.prefix_len
             (Ovs_packet.Ipv4.addr_to_string e.via)
             e.dev)
         t.entries)
end

(** The kernel neighbour (ARP) table, likewise mirrored by OVS. *)
module Neigh = struct
  type t = { tbl : (int, Ovs_packet.Mac.t) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }
  let learn t ~ip ~mac = Hashtbl.replace t.tbl ip mac
  let lookup t ip = Hashtbl.find_opt t.tbl ip

  let dump t =
    Hashtbl.fold
      (fun ip mac acc ->
        Printf.sprintf "%s lladdr %s REACHABLE"
          (Ovs_packet.Ipv4.addr_to_string ip)
          (Ovs_packet.Mac.to_string mac)
        :: acc)
      t.tbl []
    |> String.concat "\n"
end

(** [ip route] / [ip neigh] against the shared tables. *)
let ip_route (dev : Netdev.t) routes =
  guard dev (fun () -> Route.dump routes)

let ip_neigh (dev : Netdev.t) neigh =
  guard dev (fun () -> Neigh.dump neigh)

(** [ping]: inject an echo request on the device's kernel path and expect
    the supplied responder to produce a reply. *)
let ping (dev : Netdev.t) ~src_ip ~dst_ip ~(responder : Ovs_packet.Buffer.t -> Ovs_packet.Buffer.t option) =
  if not (Netdev.kernel_visible dev) then unsupported dev
  else begin
    let req = Ovs_packet.Build.icmp ~src_ip ~dst_ip () in
    match responder req with
    | Some reply -> begin
        ignore (Ovs_packet.Ethernet.parse reply);
        match (Ovs_packet.Ipv4.parse reply, ()) with
        | Some ip, () when ip.Ovs_packet.Ipv4.src = dst_ip -> begin
            match Ovs_packet.Icmp.parse reply with
            | Some ic when ic.Ovs_packet.Icmp.icmp_type = Ovs_packet.Icmp.Kind.echo_reply ->
                Ok_output
                  (Printf.sprintf "64 bytes from %s: icmp_seq=1"
                     (Ovs_packet.Ipv4.addr_to_string dst_ip))
            | _ -> Not_supported "malformed echo reply"
          end
        | _ -> Not_supported "no reply"
      end
    | None -> Not_supported "Destination Host Unreachable"
  end

(** [arping]: L2 reachability via a real ARP exchange. *)
let arping (dev : Netdev.t) ~src_ip ~dst_ip ~(responder : Ovs_packet.Buffer.t -> Ovs_packet.Buffer.t option) =
  if not (Netdev.kernel_visible dev) then unsupported dev
  else begin
    let req =
      Ovs_packet.Build.arp ~src_mac:dev.Netdev.mac ~spa:src_ip ~tpa:dst_ip ()
    in
    match responder req with
    | Some reply -> begin
        ignore (Ovs_packet.Ethernet.parse reply);
        match Ovs_packet.Arp.parse reply with
        | Some a when a.Ovs_packet.Arp.op = Ovs_packet.Arp.Op.reply ->
            Ok_output
              (Printf.sprintf "Unicast reply from %s [%s]"
                 (Ovs_packet.Ipv4.addr_to_string dst_ip)
                 (Ovs_packet.Mac.to_string a.Ovs_packet.Arp.sha))
        | _ -> Not_supported "no ARP reply"
      end
    | None -> Not_supported "no ARP reply"
  end

(** [nstat] — interface counters. *)
let nstat (dev : Netdev.t) =
  guard dev (fun () ->
      let s = dev.Netdev.stats in
      Printf.sprintf "%s: rx_packets %d rx_bytes %d rx_dropped %d tx_packets %d tx_bytes %d"
        dev.Netdev.name s.Netdev.rx_packets s.Netdev.rx_bytes s.Netdev.rx_dropped
        s.Netdev.tx_packets s.Netdev.tx_bytes)

(** [tcpdump]: capture up to [count] packets off the device's rx queues
    and render one line each. Consumes the packets, like a dedicated
    capture tap would clone them. *)
let tcpdump (dev : Netdev.t) ~count =
  guard dev (fun () ->
      let lines = ref [] in
      let captured = ref 0 in
      Array.iter
        (fun q ->
          Queue.iter
            (fun pkt ->
              if !captured < count then begin
                incr captured;
                let key = Ovs_packet.Flow_key.extract pkt in
                lines := Fmt.str "%a" Ovs_packet.Flow_key.pp key :: !lines
              end)
            q)
        dev.Netdev.rx_queues;
      String.concat "\n" (List.rev !lines))

(** [tcpdump -w]: capture the device's queued packets into pcap bytes
    (timestamps from the supplied virtual clock). *)
let tcpdump_pcap (dev : Netdev.t) ~(now : Ovs_sim.Time.ns) ~count =
  if not (Netdev.kernel_visible dev) then unsupported dev
  else begin
    let captured = ref [] in
    let n = ref 0 in
    Array.iter
      (fun q ->
        Queue.iter
          (fun pkt ->
            if !n < count then begin
              incr n;
              captured := (now +. (float_of_int !n *. 1000.), pkt) :: !captured
            end)
          q)
      dev.Netdev.rx_queues;
    Ok_output (Bytes.to_string (Pcap.write (List.rev !captured)))
  end

(** The Table 1 compatibility matrix: every command against a device under
    each datapath's driver. *)
let table1_commands = [ "ip link"; "ip address"; "ip route"; "ip neigh"; "ping"; "arping"; "nstat"; "tcpdump" ]

let compatibility_matrix () =
  let kernel_dev = Netdev.create ~name:"eth-kernel" () in
  let afxdp_dev = Netdev.create ~name:"eth-afxdp" () in
  let dpdk_dev = Netdev.create ~name:"eth-dpdk" ~driver:Netdev.Dpdk_driver () in
  let routes = Route.create () in
  let neigh = Neigh.create () in
  let echo_responder (req : Ovs_packet.Buffer.t) =
    (* a neighbour that answers pings and ARPs *)
    match Ovs_packet.Ethernet.parse req with
    | Some e when e.Ovs_packet.Ethernet.eth_type = Ovs_packet.Ethernet.Ethertype.arp
      -> begin
        match Ovs_packet.Arp.parse req with
        | Some a ->
            Some
              (Ovs_packet.Build.arp ~src_mac:(Ovs_packet.Mac.of_index 99)
                 ~dst_mac:a.Ovs_packet.Arp.sha ~op:Ovs_packet.Arp.Op.reply
                 ~spa:a.Ovs_packet.Arp.tpa ~tpa:a.Ovs_packet.Arp.spa ())
        | None -> None
      end
    | Some _ -> begin
        match Ovs_packet.Ipv4.parse req with
        | Some ip ->
            Some
              (Ovs_packet.Build.icmp ~src_ip:ip.Ovs_packet.Ipv4.dst
                 ~dst_ip:ip.Ovs_packet.Ipv4.src
                 ~icmp_type:Ovs_packet.Icmp.Kind.echo_reply ())
        | None -> None
      end
    | None -> None
  in
  let run dev cmd =
    match cmd with
    | "ip link" -> ip_link dev
    | "ip address" -> ip_address_show dev
    | "ip route" -> ip_route dev routes
    | "ip neigh" -> ip_neigh dev neigh
    | "ping" ->
        ping dev
          ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.1")
          ~dst_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.2")
          ~responder:echo_responder
    | "arping" ->
        arping dev
          ~src_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.1")
          ~dst_ip:(Ovs_packet.Ipv4.addr_of_string "10.0.0.2")
          ~responder:echo_responder
    | "nstat" -> nstat dev
    | "tcpdump" -> tcpdump dev ~count:8
    | other -> Not_supported ("unknown command " ^ other)
  in
  List.map
    (fun cmd ->
      ( cmd,
        is_ok (run kernel_dev cmd),
        is_ok (run afxdp_dev cmd),
        is_ok (run dpdk_dev cmd) ))
    table1_commands

(* -- ovs-appctl: the runtime introspection commands -- *)

module Pmd = Ovs_datapath.Pmd

(** [ovs-appctl dpif-netdev/pmd-stats-show] over a runtime's reports:
    per-PMD cache-tier hits, misses/lost, busy vs idle cycles and average
    cycles (virtual ns) per packet. *)
let pmd_stats_show (reports : Pmd.report list) =
  reports
  |> List.map (fun (r : Pmd.report) ->
         let s = r.Pmd.r_stats in
         let total_cycles = r.Pmd.r_busy_ns +. r.Pmd.r_idle_ns in
         let pct x =
           if total_cycles > 0. then 100. *. x /. total_cycles else 0.
         in
         String.concat "\n"
           [
             Printf.sprintf "pmd thread numa_id 0 core_id %d:" r.Pmd.r_pmd;
             Printf.sprintf "  packets received: %d" s.Pmd.rx_packets;
             Printf.sprintf "  emc hits: %d" s.Pmd.emc_hits;
             Printf.sprintf "  smc hits: %d" s.Pmd.smc_hits;
             Printf.sprintf "  megaflow hits: %d" s.Pmd.megaflow_hits;
             Printf.sprintf "  miss with success upcall: %d" s.Pmd.miss;
             Printf.sprintf "  miss with failed upcall: %d" s.Pmd.lost;
             Printf.sprintf "  avg cycles per packet: %.0f (%.0f/%d)"
               r.Pmd.r_cycles_per_pkt r.Pmd.r_busy_ns s.Pmd.rx_packets;
             Printf.sprintf "  idle cycles: %.0f (%.2f%%)" r.Pmd.r_idle_ns
               (pct r.Pmd.r_idle_ns);
             Printf.sprintf "  processing cycles: %.0f (%.2f%%)" r.Pmd.r_busy_ns
               (pct r.Pmd.r_busy_ns);
           ])
  |> String.concat "\n"

(** [ovs-appctl dpif-netdev/pmd-rxq-show]: the rxq→PMD placement with each
    queue's share of its PMD's processing cycles. *)
let pmd_rxq_show (reports : Pmd.report list) =
  reports
  |> List.map (fun (r : Pmd.report) ->
         Printf.sprintf "pmd thread numa_id 0 core_id %d:" r.Pmd.r_pmd
         :: List.map
              (fun (port, queue, cycles, _pkts) ->
                let usage =
                  if r.Pmd.r_busy_ns > 0. then 100. *. cycles /. r.Pmd.r_busy_ns
                  else 0.
                in
                Printf.sprintf
                  "  port: %d  queue-id: %d (enabled)  pmd usage: %2.0f %%"
                  port queue usage)
              r.Pmd.r_rxqs
         |> String.concat "\n")
  |> String.concat "\n"

(** [ovs-appctl coverage/show]: the process-global event counters. *)
let coverage_show ?nonzero () = Ovs_sim.Coverage.show ?nonzero ()

(* -- ofproto/trace: inject a synthetic packet and render its walk -- *)

module Dpif = Ovs_datapath.Dpif
module Trace = Ovs_sim.Trace
module Build = Ovs_packet.Build

(** Build a packet from an ovs-ofctl-style flow spec: comma-separated
    [in_port=N], a protocol word ([udp]/[tcp]/[icmp]/[arp], default udp),
    [nw_src=]/[nw_dst=] (dotted quad or integer), [tp_src=]/[tp_dst=],
    and [geneve=VNI] (or [tun_id=VNI]) to wrap the result in a Geneve
    outer header. Raises [Failure] on an unknown token. *)
let packet_of_flow_spec spec : Ovs_packet.Buffer.t =
  let addr v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> Ovs_packet.Ipv4.addr_of_string v
  in
  let int_ k v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> failwith (Printf.sprintf "ofproto/trace: bad value %s=%s" k v)
  in
  let in_port = ref 0 in
  let proto = ref `Udp in
  let src_ip = ref (Ovs_packet.Ipv4.addr_of_string "10.0.0.1") in
  let dst_ip = ref (Ovs_packet.Ipv4.addr_of_string "10.0.0.2") in
  let src_port = ref 1234 in
  let dst_port = ref 5678 in
  let tun_vni = ref None in
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.iter (fun tok ->
         match String.index_opt tok '=' with
         | None -> begin
             match tok with
             | "udp" -> proto := `Udp
             | "tcp" -> proto := `Tcp
             | "icmp" -> proto := `Icmp
             | "arp" -> proto := `Arp
             | other ->
                 failwith
                   (Printf.sprintf "ofproto/trace: unknown protocol \"%s\"" other)
           end
         | Some i ->
             let k = String.sub tok 0 i in
             let v = String.sub tok (i + 1) (String.length tok - i - 1) in
             (match k with
             | "in_port" -> in_port := int_ k v
             | "nw_src" -> src_ip := addr v
             | "nw_dst" -> dst_ip := addr v
             | "tp_src" -> src_port := int_ k v
             | "tp_dst" -> dst_port := int_ k v
             | "geneve" | "tun_id" -> tun_vni := Some (int_ k v)
             | other ->
                 failwith
                   (Printf.sprintf "ofproto/trace: unknown field \"%s\"" other)));
  let pkt =
    match !proto with
    | `Udp ->
        Build.udp ~src_ip:!src_ip ~dst_ip:!dst_ip ~src_port:!src_port
          ~dst_port:!dst_port ()
    | `Tcp ->
        Build.tcp ~src_ip:!src_ip ~dst_ip:!dst_ip ~src_port:!src_port
          ~dst_port:!dst_port ()
    | `Icmp -> Build.icmp ~src_ip:!src_ip ~dst_ip:!dst_ip ()
    | `Arp -> Build.arp ~spa:!src_ip ~tpa:!dst_ip ()
  in
  (match !tun_vni with
  | Some vni ->
      Ovs_packet.Tunnel.encap pkt Ovs_packet.Tunnel.Geneve ~vni
        ~src_mac:(Ovs_packet.Mac.of_index 10)
        ~dst_mac:(Ovs_packet.Mac.of_index 11)
        ~src_ip:(Ovs_packet.Ipv4.addr_of_string "192.168.0.1")
        ~dst_ip:(Ovs_packet.Ipv4.addr_of_string "192.168.0.2")
        ()
  | None -> ());
  pkt.Ovs_packet.Buffer.in_port <- !in_port;
  pkt

(** [ovs-appctl ofproto/trace FLOW]: build a packet from the flow spec,
    run it live through the datapath with a walk recorder attached, and
    render the classic indented trace — the flow, every stage crossed
    (cache level, table-by-table rule matching, conntrack verdict,
    encap/decap, tx) and the per-stage cycles charged.

    Unlike real OVS's translate-only trace this executes the packet
    against live datapath state (caches are populated, conntrack commits),
    which is what lets it report cache level and cycles. *)
let ofproto_trace (dp : Dpif.t) spec =
  match packet_of_flow_spec spec with
  | exception Failure msg -> Not_supported msg
  | pkt ->
      let saved = Dpif.tracer dp in
      let r = Trace.create ~kind:(Dpif.kind_name (Dpif.kind dp)) () in
      Dpif.set_tracer dp (Some r);
      Trace.start_walk r;
      let total = ref 0. in
      Dpif.process dp (fun _cat ns -> total := !total +. ns) pkt;
      let events = Trace.stop_walk r in
      let stages = Trace.last_packet r in
      Dpif.set_tracer dp saved;
      let lines = ref [] in
      let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
      (match events with
      | { Trace.ev_stage = Trace.St_extract; ev_detail } :: _ ->
          add "Flow: %s" ev_detail
      | _ -> ());
      List.iter
        (fun { Trace.ev_stage; ev_detail } ->
          add "  [%-9s] %s" (Trace.stage_name ev_stage) ev_detail)
        events;
      add "";
      add "per-stage cycles:";
      List.iter
        (fun (s, ns) -> add "  %-9s %10.0f" (Trace.stage_name s) ns)
        stages;
      add "  %-9s %10.0f" "total" !total;
      Ok_output (String.concat "\n" (List.rev !lines))

(** [ovs-appctl dpif/show-stage-cycles]: the aggregate per-stage cycle
    attribution table of the datapath's installed tracer. *)
let show_stage_cycles (dp : Dpif.t) =
  match Dpif.tracer dp with
  | Some r -> Ok_output (Trace.render r)
  | None ->
      Not_supported
        "no stage tracer installed (Dpif.set_tracer first, or run with trace)"

(** [ovs-appctl dpctl/dump-flows]: the installed megaflows with
    per-megaflow hit and cycle statistics. *)
let dpctl_dump_flows (dp : Dpif.t) =
  Ok_output (String.concat "\n" (Dpif.dump_megaflows dp))

module Dp_core = Ovs_datapath.Dp_core

(** [ovs-appctl dpif/cache-hierarchy-show]: one table over the whole
    lookup hierarchy — EMC, SMC, the computational cache and dpcls —
    with each tier's hits, its share of datapath passes, and the mean
    virtual cycles one of its hits cost. *)
let cache_hierarchy_show (dp : Dpif.t) =
  let c : Dp_core.counters = Dpif.counters dp in
  let passes = Float.max 1. (float_of_int c.Dp_core.passes) in
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "cache hierarchy: %d packets, %d datapath passes" c.Dp_core.packets
    c.Dp_core.passes;
  add "  %-8s %12s %8s %14s" "tier" "hits" "hit%" "cycles/hit";
  let row name hits cycles =
    add "  %-8s %12d %7.1f%% %14.1f" name hits
      (100. *. float_of_int hits /. passes)
      (if hits > 0 then cycles /. float_of_int hits else 0.)
  in
  row "emc" c.Dp_core.emc_hits c.Dp_core.emc_cycles;
  row "smc" c.Dp_core.smc_hits c.Dp_core.smc_cycles;
  row "ccache" c.Dp_core.ccache_hits c.Dp_core.ccache_cycles;
  row "dpcls" c.Dp_core.dpcls_hits c.Dp_core.dpcls_cycles;
  add "  %-8s %12d %7.1f%%" "upcall" c.Dp_core.upcalls
    (100. *. float_of_int c.Dp_core.upcalls /. passes);
  let subtables, megaflows, mean_probes = Dpif.dpcls_stats dp in
  add "  dpcls: %d subtables, %d megaflows, %.2f mean probes/lookup"
    subtables megaflows mean_probes;
  (match Dpif.ccache_render dp with
  | Some s -> add "  %s" s
  | None -> add "  ccache: absent (never enabled)");
  Ok_output (String.concat "\n" (List.rev !lines))

(** [ovs-appctl dpif/latency-show]: the per-packet sojourn-time
    distribution of the datapath's latency sketch — count, mean and the
    tail percentiles the NFV-benchmarking methodology reports, plus the
    sketch's documented relative error bound. *)
let latency_show (dp : Dpif.t) =
  let q = Dpif.latency dp in
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let n = Ovs_sim.Quantiles.count q in
  add "per-packet sojourn (ns): %d samples, +/-%.0f%% per quantile" n
    (100. *. Ovs_sim.Quantiles.error_bound q);
  if n = 0 then add "  (empty: run traffic with latency measurement armed)"
  else begin
    add "  %-6s %14s" "stat" "ns";
    add "  %-6s %14.1f" "mean" (Ovs_sim.Quantiles.mean q);
    List.iter
      (fun (name, p) ->
        add "  %-6s %14.1f" name (Ovs_sim.Quantiles.quantile q p))
      [ ("min", 0.); ("p50", 50.); ("p95", 95.); ("p99", 99.);
        ("p999", 99.9); ("max", 100.) ]
  end;
  Ok_output (String.concat "\n" (List.rev !lines))

(** [ovs-appctl dpif/revalidator-show]: the incremental revalidator's
    lifetime counters — megaflows tracked, sweeps run, the rule churn
    diffed so far and the dirty / re-translate / evict work it caused.
    A disarmed datapath says so instead of printing zeros. *)
let revalidator_show (dp : Dpif.t) =
  if not (Dpif.revalidator_enabled dp) then
    Ok_output "revalidator: disabled (arm with set_revalidator_enabled)"
  else begin
    let lines = ref [ "revalidator: enabled" ] in
    Dpif.revalidator_render dp (fun s -> lines := s :: !lines);
    Ok_output (String.concat "\n" (List.rev !lines))
  end

module Health = Ovs_datapath.Health
module Faults = Ovs_faults.Faults

(** [ovs-appctl fault/inject SPEC]: parse and arm one fault on the
    process-global injector (arming an empty plan first if none). *)
let fault_inject spec =
  match Faults.of_spec spec with
  | Ok f ->
      Faults.inject f;
      Ok_output (Fmt.str "armed: %a" Faults.pp_fault f)
  | Error e -> Not_supported e

(** [ovs-appctl mc/replay ARTIFACT]: re-execute a schedule-explorer
    replay artifact ([mc1 mode=... seed=... mut=... sched=...]) against a
    fresh model and render the outcome — the deterministic reproduction
    path for any violation the explorer ever reports. *)
let mc_replay artifact =
  match Ovs_mc.Mc.replay artifact with
  | Ok s -> Ok_output s
  | Error e -> Not_supported ("mc/replay: " ^ e)

module Reconfig = Ovs_ofproto.Reconfig
module Ofconn = Ovs_ofproto.Ofconn

(** [ovs-appctl dpif/upgrade-show]: the last live-upgrade episode's bill —
    style, shadow-table size, the invalidation storm it caused and its
    traffic window. A process that has never cut over says so. *)
let upgrade_show (report : Reconfig.upgrade_report option) =
  match report with
  | None ->
      Ok_output
        "upgrade: none performed (run a swap through the reconfig rig first)"
  | Some r ->
      let lines = ref [] in
      Reconfig.render_upgrade r (fun s -> lines := s :: !lines);
      Ok_output (String.concat "\n" (List.rev !lines))

(** [ovs-appctl ovsdb/churn-apply PLAN]: parse a churn plan, store it as
    OVSDB rows, and let the database monitor drive every operation onto
    the datapath's classifier through the FLOW_MOD wire path — the
    control loop in one command. Swap ops are rejected here (they need
    the traffic rig); megaflows are revalidated after the churn. *)
let churn_apply (dp : Dpif.t) plan_text =
  match Reconfig.plan_of_string ~name:"appctl" plan_text with
  | exception Reconfig.Reconfig_error e -> Not_supported ("ovsdb/churn-apply: " ^ e)
  | plan ->
      let has_swap =
        List.exists
          (fun (ev : Reconfig.event) ->
            List.exists
              (function Reconfig.Swap _ -> true | _ -> false)
              ev.Reconfig.ops)
          plan.Reconfig.events
      in
      if has_swap then
        Not_supported
          "ovsdb/churn-apply: swap ops need the reconfig rig (bench -- reconfig)"
      else begin
        let db = Ovs_ovsdb.Db.create ~schema:Reconfig.schema () in
        let conn = Ofconn.create ~pipeline:(Dpif.pipeline dp) () in
        let unregister, applied = Reconfig.attach db ~conn () in
        Reconfig.store_plan db plan;
        unregister ();
        let evicted = Dpif.revalidate dp in
        Ok_output
          (Printf.sprintf
             "applied %d ops from %d OVSDB rows (%d flow_mods, %d errors); \
              %d rules now installed, %d megaflows revalidated away"
             !applied
             (Ovs_ovsdb.Db.row_count db ~table:"Churn_op")
             conn.Ofconn.flow_mods conn.Ofconn.errors
             (Ovs_ofproto.Pipeline.flow_count (Dpif.pipeline dp))
             evicted)
      end

module Policy = Ovs_policy.Policy
module Pol_compile = Ovs_policy.Compile
module Pol_check = Ovs_policy.Check
module Pol_catalog = Ovs_policy.Catalog

(** [ovs-appctl policy/show NAME]: the catalog policy's source text and
    its compiled multi-table layout. *)
let policy_show name =
  match Pol_catalog.find name with
  | None ->
      Not_supported
        (Fmt.str "no policy %S (have: %s)" name
           (String.concat ", " (List.map (fun (n, _, _) -> n) Pol_catalog.entries)))
  | Some p ->
      let c = Pol_compile.compile p in
      let desc =
        List.find_map
          (fun (n, d, _) -> if n = name then Some d else None)
          Pol_catalog.entries
      in
      Ok_output
        (Fmt.str "policy %s: %s\n  %a\ncompiled: %d tables, %d paths, %d rules"
           name
           (Option.value ~default:"" desc)
           Policy.pp p c.Pol_compile.n_tables c.Pol_compile.n_paths
           (List.length c.Pol_compile.rules))

(** [ovs-appctl policy/check NAME]: compile the catalog policy, install
    it through the controller path, and run the symbolic equivalence
    checker over the whole key space. *)
let policy_check name =
  match Pol_catalog.find name with
  | None -> Not_supported (Fmt.str "no policy %S" name)
  | Some p -> (
      let c, pipeline = Pol_compile.pipeline_of p in
      match Pol_check.check ~ports:Pol_catalog.ports p pipeline with
      | Pol_check.Proved cubes ->
          Ok_output
            (Fmt.str
               "policy %s: PROVED translate(compile(p)) = eval(p) over %d cubes (%d rules)"
               name cubes (List.length c.Pol_compile.rules))
      | Pol_check.Divergent d ->
          Ok_output
            (Fmt.str "policy %s: DIVERGENT\n%s" name
               (Pol_check.render_divergence d)))

(** Dispatch an appctl command string. PMD commands render the supplied
    runtime reports (pass the current {!Pmd.reports}); datapath commands
    ([ofproto/trace], [dpif/show-stage-cycles], [dpctl/dump-flows],
    [dpif/revalidator-show]) need the [dp] argument; [dpif/health-show] needs [health]. The [fault/*]
    commands drive the global injector directly, and [mc/replay] runs a
    schedule-explorer artifact through a fresh model. *)
let appctl ?(pmds : Pmd.report list = []) ?(dp : Dpif.t option)
    ?(health : Health.t option) ?(upgrade : Reconfig.upgrade_report option)
    cmd =
  let with_dp f =
    match dp with
    | Some dp -> f dp
    | None -> Not_supported (cmd ^ ": no datapath supplied")
  in
  let prefixed prefix =
    String.length cmd > String.length prefix
    && String.sub cmd 0 (String.length prefix) = prefix
  in
  let arg prefix = String.sub cmd (String.length prefix)
      (String.length cmd - String.length prefix)
  in
  let trace_prefix = "ofproto/trace " in
  let fault_prefix = "fault/inject " in
  let mc_prefix = "mc/replay " in
  let policy_show_prefix = "policy/show " in
  let policy_check_prefix = "policy/check " in
  let churn_prefix = "ovsdb/churn-apply " in
  match cmd with
  | "dpif/upgrade-show" -> upgrade_show upgrade
  | "ovsdb/churn-apply" ->
      Not_supported "usage: ovsdb/churn-apply PLAN (@T op spec; one per line)"
  | "dpif-netdev/pmd-stats-show" -> Ok_output (pmd_stats_show pmds)
  | "dpif-netdev/pmd-rxq-show" -> Ok_output (pmd_rxq_show pmds)
  | "coverage/show" -> Ok_output (coverage_show ())
  | "dpif/show-stage-cycles" -> with_dp show_stage_cycles
  | "dpif/cache-hierarchy-show" -> with_dp cache_hierarchy_show
  | "dpif/latency-show" -> with_dp latency_show
  | "dpif/revalidator-show" -> with_dp revalidator_show
  | "dpctl/dump-flows" -> with_dp dpctl_dump_flows
  | "fault/list" -> Ok_output (Faults.render ())
  | "fault/clear" ->
      Faults.disarm ();
      Ok_output "all faults cleared"
  | "fault/inject" ->
      Not_supported "usage: fault/inject KIND [key=value]... (at/for in ms)"
  | "dpif/health-show" -> (
      match health with
      | Some h -> Ok_output (Health.render h ~now:(Faults.now ()))
      | None -> Not_supported (cmd ^ ": no health monitor supplied"))
  | "ofproto/trace" -> Not_supported "usage: ofproto/trace FLOW"
  | "mc/replay" ->
      Not_supported "usage: mc/replay mc1 mode=MODE seed=N mut=NAME sched=HEX"
  | "policy/show" | "policy/check" ->
      Not_supported
        (Printf.sprintf "usage: %s NAME (see policy/show for names)" cmd)
  | _ when prefixed churn_prefix ->
      with_dp (fun dp -> churn_apply dp (arg churn_prefix))
  | _ when prefixed policy_show_prefix -> policy_show (arg policy_show_prefix)
  | _ when prefixed policy_check_prefix -> policy_check (arg policy_check_prefix)
  | _ when prefixed mc_prefix -> mc_replay (arg mc_prefix)
  | _ when prefixed fault_prefix -> fault_inject (arg fault_prefix)
  | _ when prefixed trace_prefix ->
      with_dp (fun dp -> ofproto_trace dp (arg trace_prefix))
  | other -> Not_supported (Printf.sprintf "\"%s\" is not a valid command" other)
