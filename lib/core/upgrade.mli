(** The operability model of paper Secs 2 and 6: what a dataplane fix
    costs under each architecture. *)

type architecture = Arch_kernel_module | Arch_ebpf | Arch_userspace

val arch_name : architecture -> string

type upgrade_cost = {
  dataplane_downtime_s : float;  (** traffic interruption per host *)
  workloads_disrupted : bool;  (** VMs/containers must migrate or restart *)
  needs_reboot : bool;
  needs_vendor_revalidation : bool;
      (** enterprise distros must re-certify third-party kernel modules *)
}

val upgrade : architecture -> upgrade_cost

val annual_fleet_disruption_hours :
  architecture -> hosts:int -> fixes_per_year:int -> float
(** Host-hours of disruption to keep a fleet patched for a year. *)

val pp_cost : Format.formatter -> upgrade_cost -> unit

(** Measured-vs-modeled downtime: the chaos bench's recovery time against
    the modeled userspace process-restart cost. *)
type downtime_comparison = {
  measured_recovery_s : float;
  modeled_downtime_s : float;
  downtime_ratio : float;  (** measured / modeled *)
}

val compare_downtime : measured_recovery_ns:float -> downtime_comparison
(** [measured_recovery_ns] is virtual time from {!Ovs_datapath.Health}. *)

val pp_downtime : Format.formatter -> downtime_comparison -> unit
