(** The operability model of paper Secs 2 and 6: what a dataplane fix
    costs under each architecture. *)

type architecture = Arch_kernel_module | Arch_ebpf | Arch_userspace

val arch_name : architecture -> string

type upgrade_cost = {
  dataplane_downtime_s : float;  (** traffic interruption per host *)
  workloads_disrupted : bool;  (** VMs/containers must migrate or restart *)
  needs_reboot : bool;
  needs_vendor_revalidation : bool;
      (** enterprise distros must re-certify third-party kernel modules *)
}

val upgrade : architecture -> upgrade_cost

val annual_fleet_disruption_hours :
  architecture -> hosts:int -> fixes_per_year:int -> float
(** Host-hours of disruption to keep a fleet patched for a year. *)

val pp_cost : Format.formatter -> upgrade_cost -> unit

(** Measured-vs-modeled downtime: the chaos bench's recovery time against
    the modeled userspace process-restart cost. *)
type downtime_comparison = {
  measured_recovery_s : float;
  modeled_downtime_s : float;
  downtime_ratio : float;  (** measured / modeled *)
}

val compare_downtime :
  ?dynamic_baseline_ns:float -> measured_recovery_ns:float -> unit -> downtime_comparison
(** [measured_recovery_ns] is virtual time from {!Ovs_datapath.Health}
    (or the reconfig rig's two-phase cutover recovery). The baseline is
    the static modeled userspace restart (2 s) unless
    [dynamic_baseline_ns] supplies a measured one — the reconfig rig's
    naive-swap recovery, the restart-and-rebuild-caches path actually
    run, which makes the Sec 6 comparison fully dynamic. *)

val pp_downtime : Format.formatter -> downtime_comparison -> unit
