(** ovs-vswitchd: the top-level switch object a user configures.

    Owns the OpenFlow pipeline and the datapath, manages ports and their
    XDP programs, accepts textual flow rules, and models the operational
    properties Sec 6 is about: restarting without rebooting, surviving
    datapath bugs as a process crash plus automatic restart, and meters
    as the stand-in for the kernel QoS features OVS had to leave behind. *)

module Dpif = Ovs_datapath.Dpif

type config = {
  datapath : Dpif.kind;
  kernel : Kernel_compat.version;
  n_tables : int;
}

let default_config =
  {
    datapath = Dpif.Afxdp Dpif.afxdp_default;
    kernel = Kernel_compat.v 5 3;
    n_tables = 64;
  }

type meter = { rate_pps : float; mutable hits : int; mutable drops : int }

type t = {
  config : config;
  pipeline : Ovs_ofproto.Pipeline.t;
  mutable dp : Dpif.t;
  mutable port_names : (string * int) list;
  meters : (int, meter) Hashtbl.t;
  mutable restarts : int;
  mutable crashes : int;
  log : string list ref;
}

let log t fmt = Fmt.kstr (fun m -> t.log := m :: !(t.log)) fmt

let create ?(config = default_config) () =
  (* refuse AF_XDP on kernels that lack it, as the real port setup does *)
  (match config.datapath with
  | Dpif.Afxdp _
    when Kernel_compat.select_mode ~kernel:config.kernel ~driver_native:true
           ~driver_zerocopy:true
         = Kernel_compat.Xdp_unavailable ->
      invalid_arg "Vswitch.create: AF_XDP requires kernel >= 4.18"
  | _ -> ());
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:config.n_tables () in
  let t =
    {
      config;
      pipeline;
      dp = Dpif.create ~kind:config.datapath ~pipeline ();
      port_names = [];
      meters = Hashtbl.create 8;
      restarts = 0;
      crashes = 0;
      log = ref [];
    }
  in
  log t "ovs-vswitchd started with the %s datapath" (Dpif.kind_name config.datapath);
  t

(** Add a device; returns its OpenFlow port number. For AF_XDP physical
    ports this loads the XDP program and binds the XSKs (Sec 4). *)
let add_port t (dev : Ovs_netdev.Netdev.t) : int =
  let no = Dpif.add_port t.dp dev in
  t.port_names <- (dev.Ovs_netdev.Netdev.name, no) :: t.port_names;
  Ovs_ofproto.Pipeline.set_ports t.pipeline (List.map snd t.port_names);
  log t "port %d: %s" no dev.Ovs_netdev.Netdev.name;
  no

let port_number t name = List.assoc_opt name t.port_names

(** Install flow rules in ovs-ofctl syntax. *)
let add_flows t lines =
  let n = Ovs_ofproto.Parser.install_flows t.pipeline lines in
  (* rule changes invalidate the installed megaflows *)
  Dpif.flush_caches t.dp;
  n

let add_flow t line = ignore (add_flows t [ line ])

(** Remove flows matching an ovs-ofctl del-flows spec ("in_port=1,tcp" —
    non-strict semantics) and drop the now-stale megaflows via
    revalidation. Returns how many OpenFlow rules were removed. *)
let del_flows t spec =
  let table, m = Ovs_ofproto.Parser.parse_match_spec spec in
  let removed = Ovs_ofproto.Pipeline.del_flows ?table t.pipeline m in
  if removed > 0 then
    ignore (Dpif.revalidate t.dp);
  removed

(** ovs-ofctl dump-flows / ovs-appctl dpctl/dump-flows. *)
let dump_flows ?table t = Ovs_ofproto.Pipeline.dump_flows ?table t.pipeline
let dump_megaflows t = Dpif.dump_megaflows t.dp

(** Connect a reactive controller: [controller]-action packets become
    PACKET_INs on the wire; the controller's FLOW_MODs are applied through
    a switch-side session (with revalidation so stale megaflows die) and
    its PACKET_OUTs are transmitted. The complete Fig 7 control loop. *)
let connect_controller t (ctrl : Ovs_ofproto.Controller.t) =
  let conn = Ovs_ofproto.Ofconn.create ~pipeline:t.pipeline () in
  Dpif.set_controller t.dp
      (fun pkt ->
        let data = Ovs_packet.Buffer.contents pkt in
        let packet_in =
          Ovs_ofproto.Ofp_codec.encode
            (Ovs_ofproto.Ofp_codec.Packet_in
               {
                 total_len = Bytes.length data;
                 reason = 1 (* OFPR_ACTION *);
                 table_id = 0;
                 in_port = pkt.Ovs_packet.Buffer.in_port;
                 data;
               })
        in
        let replies = Ovs_ofproto.Controller.feed ctrl packet_in in
        (* apply the controller's decisions *)
        let pos = ref 0 in
        let flow_mods = ref 0 in
        (try
           while Bytes.length replies - !pos >= 8 do
             let chunk = Bytes.sub replies !pos (Bytes.length replies - !pos) in
             let msg, xid, consumed = Ovs_ofproto.Ofp_codec.decode chunk in
             pos := !pos + consumed;
             match msg with
             | Ovs_ofproto.Ofp_codec.Flow_mod _ ->
                 incr flow_mods;
                 ignore (Ovs_ofproto.Ofconn.handle_msg conn ~xid msg)
             | Ovs_ofproto.Ofp_codec.Packet_out { actions; data; _ } ->
                 let out = Ovs_packet.Buffer.of_bytes data in
                 List.iter
                   (function
                     | Ovs_ofproto.Action.Output p -> begin
                         match Dpif.port t.dp p with
                         | Some port -> Ovs_netdev.Netdev.transmit port.Dpif.dev out
                         | None -> ()
                       end
                     | _ -> ())
                   actions
             | _ -> ()
           done
         with Ovs_ofproto.Ofp_codec.Decode_error _ -> ());
        if !flow_mods > 0 then
          ignore (Dpif.revalidate t.dp));
  log t "controller connected"

(** Configure a meter (the OpenFlow rate-limiting stand-in for kernel QoS,
    Sec 6 "Some features must be reimplemented"). The token bucket is
    enforced by the datapath's [meter:N] action. *)
let set_meter t ?(burst = 64.) ~id ~rate_pps () =
  Hashtbl.replace t.meters id { rate_pps; hits = 0; drops = 0 };
  Dpif.set_meter t.dp ~id ~rate_pps ~burst

let meter_stats t ~id = Dpif.meter_stats t.dp ~id

(** Advance the switch's virtual clock (meters refill in virtual time). *)
let set_time t now = Dpif.set_time t.dp now

(** Drive one poll iteration over a port's queue (see {!Dpif.poll}). *)
let poll t ~softirq ~pmd ~port_no ~queue () =
  Dpif.poll t.dp ~softirq ~pmd ~port_no ~queue ()

(** Convenience single-threaded processing for examples and tests: push a
    packet into a port and run it through the datapath, collecting any
    transmitted packets via each device's tx sink. *)
let inject t ~machine_ctx (pkt : Ovs_packet.Buffer.t) ~port_no =
  match Dpif.port t.dp port_no with
  | None -> invalid_arg "Vswitch.inject: unknown port"
  | Some p ->
      ignore (Ovs_netdev.Netdev.enqueue_on p.Dpif.dev ~queue:0 pkt : bool);
      ignore
        (Dpif.poll t.dp ~softirq:machine_ctx ~pmd:machine_ctx ~port_no ~queue:0 ())

(** Restart the process in place: caches and conntrack state are lost,
    configuration (rules, ports) survives — the whole upgrade story of the
    AF_XDP design (Sec 6: "upgrading ... only needs to restart OVS"). *)
let restart t =
  t.restarts <- t.restarts + 1;
  t.dp <- Dpif.create ~kind:t.config.datapath ~pipeline:t.pipeline ();
  List.iter
    (fun (name, _) ->
      ignore name
      (* ports re-added by the caller that owns the devices *))
    t.port_names;
  log t "ovs-vswitchd restarted (%d restarts so far)" t.restarts

(** What happens when a datapath bug fires (e.g. the Geneve parser bug of
    Sec 6): with the kernel datapath the host panics, taking every
    workload with it; with the userspace datapath the process dumps core
    and the health monitor restarts it. *)
type crash_outcome = Host_panic | Process_restart of { core_dump : bool }

let inject_datapath_bug t =
  t.crashes <- t.crashes + 1;
  match t.config.datapath with
  | Dpif.Kernel ->
      log t "kernel oops: null-pointer dereference in datapath; host down";
      Host_panic
  | Dpif.Kernel_ebpf ->
      (* the verifier's whole point: the bug cannot crash the kernel *)
      log t "eBPF program aborted safely; packet dropped";
      Process_restart { core_dump = false }
  | Dpif.Dpdk | Dpif.Afxdp _ ->
      log t "ovs-vswitchd crashed; monitor restarting it with a core dump";
      restart t;
      Process_restart { core_dump = true }

let counters t = Dpif.counters t.dp
let conntrack t = Dpif.conntrack t.dp
