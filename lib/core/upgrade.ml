(** The operability model of Sec 2 ("Operability") and Sec 6 ("Easier
    upgrading and patching"): what a dataplane upgrade or security fix
    costs operators under each architecture.

    A kernel-module fix means draining or migrating every workload, a
    kernel update, and a reboot; an eBPF or userspace fix means reloading
    a program or restarting a process. The numbers are deliberately
    round, deployment-scale estimates; the orders of magnitude are the
    point. *)

type architecture = Arch_kernel_module | Arch_ebpf | Arch_userspace

let arch_name = function
  | Arch_kernel_module -> "kernel module"
  | Arch_ebpf -> "eBPF program"
  | Arch_userspace -> "userspace (AF_XDP/DPDK)"

type upgrade_cost = {
  dataplane_downtime_s : float;  (** traffic interruption per host *)
  workloads_disrupted : bool;  (** VMs/containers must migrate or restart *)
  needs_reboot : bool;
  needs_vendor_revalidation : bool;
      (** enterprise distros must re-certify third-party kernel modules *)
}

let upgrade = function
  | Arch_kernel_module ->
      {
        dataplane_downtime_s = 300.;  (* drain + reboot + rejoin *)
        workloads_disrupted = true;
        needs_reboot = true;
        needs_vendor_revalidation = true;
      }
  | Arch_ebpf ->
      {
        dataplane_downtime_s = 0.05;  (* atomic program replace *)
        workloads_disrupted = false;
        needs_reboot = false;
        needs_vendor_revalidation = false;
      }
  | Arch_userspace ->
      {
        dataplane_downtime_s = 2.0;  (* process restart, caches rebuilt *)
        workloads_disrupted = false;
        needs_reboot = false;
        needs_vendor_revalidation = false;
      }

(** Fleet-level annual cost of staying patched: [fixes_per_year] dataplane
    fixes rolled to [hosts] hosts, in host-hours of disruption. *)
let annual_fleet_disruption_hours arch ~hosts ~fixes_per_year =
  let c = upgrade arch in
  float_of_int hosts *. float_of_int fixes_per_year
  *. (c.dataplane_downtime_s
     +. if c.workloads_disrupted then 600. (* migration traffic and risk *) else 0.)
  /. 3600.

(** Anchor a measured recovery episode (the chaos bench's PMD
    crash-to-healthy time, in virtual nanoseconds) to the modeled
    userspace process-restart downtime above. The measured number is an
    in-process respawn with warm caches revalidated; the model charges a
    full restart with caches rebuilt — the ratio is how much of the
    modeled downtime is cache warm-up rather than respawn latency. *)
type downtime_comparison = {
  measured_recovery_s : float;
  modeled_downtime_s : float;
  downtime_ratio : float;  (** measured / modeled *)
}

let compare_downtime ?dynamic_baseline_ns ~measured_recovery_ns () =
  let measured_recovery_s = measured_recovery_ns /. 1e9 in
  (* With a dynamic baseline (the reconfig rig's measured naive-swap
     recovery — the restart-and-rebuild-caches path, actually run), the
     Sec 6 comparison stops leaning on the round static estimate. *)
  let modeled_downtime_s =
    match dynamic_baseline_ns with
    | Some ns -> ns /. 1e9
    | None -> (upgrade Arch_userspace).dataplane_downtime_s
  in
  {
    measured_recovery_s;
    modeled_downtime_s;
    downtime_ratio = measured_recovery_s /. modeled_downtime_s;
  }

let pp_downtime ppf c =
  Fmt.pf ppf
    "measured recovery %.6f s vs modeled restart %.1f s (ratio %.2e)"
    c.measured_recovery_s c.modeled_downtime_s c.downtime_ratio

let pp_cost ppf c =
  Fmt.pf ppf "downtime %.2fs reboot=%b workloads-disrupted=%b revalidation=%b"
    c.dataplane_downtime_s c.needs_reboot c.workloads_disrupted
    c.needs_vendor_revalidation
