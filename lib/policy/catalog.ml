(** The built-in policy ladder: named shapes — filter/mod chains, fat
    unions, bounded stars, overlapping mod arms — sized to the traffic
    universe the differential suite generates (10.0.0.0/16 sources,
    10.0.1.0/24 destinations, well-known destination ports). The bench
    ladder, the appctl [policy/show]/[policy/check] commands and the
    mutation leg all speak these names. *)

module FK = Ovs_packet.Flow_key
open Policy

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

(** The [in_port] universe the checker quantifies over. *)
let ports = [ 0; 1; 2; 3 ]

let chain3 =
  seq
    [
      Filter (test_prefix FK.Field.Nw_dst (ip 10 0 1 0) 24);
      Filter (test FK.Field.Tp_dst 53);
      fwd 1;
    ]

let chain8 =
  seq
    [
      Filter (test_prefix FK.Field.Nw_src (ip 10 0 0 0) 16);
      Filter (test_prefix FK.Field.Nw_dst (ip 10 0 1 0) 24);
      Filter (test FK.Field.Nw_proto 17);
      Filter (test FK.Field.Tp_dst 80);
      Filter (Not (test FK.Field.Tp_src 53));
      Mod (FK.Field.Nw_tos, 46);
      Mod (FK.Field.Tp_src, 4096);
      fwd 2;
    ]

let arm port dport = seq [ Filter (test FK.Field.Tp_dst dport); fwd port ]

let fat_union4 = union [ arm 0 53; arm 1 80; arm 2 443; arm 3 8080 ]

let fat_union8 =
  union
    [
      arm 0 53;
      arm 1 80;
      arm 2 443;
      arm 3 8080;
      seq
        [
          Filter
            (And (test_masked FK.Field.Tp_src 0 1, test FK.Field.Tp_dst 53));
          Mod (FK.Field.Tp_dst, 5353);
          fwd 1;
        ];
      seq
        [
          Filter
            (And (test_masked FK.Field.Tp_src 1 1, test FK.Field.Tp_dst 53));
          fwd 2;
        ];
      seq
        [
          Filter (test_prefix FK.Field.Nw_src (ip 10 7 0 0) 16);
          Mod (FK.Field.Nw_tos, 7);
          fwd 3;
        ];
      seq
        [
          Filter
            (And
               ( test_prefix FK.Field.Nw_dst (ip 10 0 9 0) 24,
                 test FK.Field.Nw_proto 6 ));
          fwd 0;
        ];
    ]

let star2 =
  seq
    [
      Star
        ( 2,
          union
            [
              seq [ Filter (test FK.Field.Tp_dst 80); Mod (FK.Field.Tp_dst, 443) ];
              seq
                [ Filter (test FK.Field.Tp_dst 443); Mod (FK.Field.Tp_dst, 8080) ];
            ] );
      fwd 1;
    ]

let overlap2 =
  union
    [
      seq [ Filter (test FK.Field.Tp_dst 80); Mod (FK.Field.Tp_dst, 53); fwd 1 ];
      seq [ Filter (test FK.Field.Tp_dst 80); fwd 2 ];
    ]

let mixed =
  seq
    [
      union
        [
          seq [ Filter (test_masked FK.Field.Tp_src 0 1); fwd 2 ];
          seq
            [
              Filter (test_masked FK.Field.Tp_src 1 1);
              Mod (FK.Field.Tp_src, 1024);
              fwd 3;
            ];
        ];
      Star (1, seq [ Filter (test FK.Field.Nw_tos 0); Mod (FK.Field.Nw_tos, 46) ]);
    ]

let entries =
  [
    ("chain3", "3-step filter chain", chain3);
    ("chain8", "8-step chain with negation and mods", chain8);
    ("fat-union4", "4-arm union, one port per service", fat_union4);
    ("fat-union8", "8 overlapping arms with masked tests and mods", fat_union8);
    ("star2", "bounded star escalating ports 80 -> 443 -> 8080", star2);
    ("overlap2", "overlapping arms where restore order matters", overlap2);
    ("mixed", "union of masked arms followed by a bounded star", mixed);
  ]

let find name =
  List.find_map (fun (n, _, p) -> if n = name then Some p else None) entries

(** One policy per seeded compiler mutation, chosen so the bug is
    semantically visible (e.g. [Drop_restore] needs a later arm that
    re-tests a field an earlier arm modifies). *)
let mutation_cases =
  [
    (Compile.Drop_goto, "fat-union4");
    (Compile.Wrong_priority, "fat-union4");
    (Compile.Drop_restore, "overlap2");
    (Compile.Drop_union_arm, "fat-union4");
    (Compile.Wrong_mod_value, "chain8");
    (Compile.Drop_filter, "fat-union4");
    (Compile.Star_off_by_one, "star2");
  ]
