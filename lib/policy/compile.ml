(** Lowering policies onto the multi-table ofproto pipeline.

    The compilation scheme (DESIGN §8):

    1. {b Normalize} the policy into a union of deterministic {e paths}:
       [Seq] distributes over [Union], and [Star (k, p)] unrolls into
       [id + p + ... + p^k]. A path is a sequence of filters and mods.

    2. {b Weakest-precondition} each path into [(cond, mods)]: walking
       the path left to right with a substitution environment turns
       every test behind a mod into a test on the {e original} packet,
       leaving one input predicate and one final field assignment.
       Statically-false paths are dropped, duplicates merged.

    3. {b Lay out tables}: table 0 saves every field the policy can
       modify into a register ([Move f -> regI]) and resubmits to table
       1; table [i] implements path [i] as a priority-ordered decision
       list over masked matches (Shannon expansion of [cond] on its
       atoms — the mask-aware analogue of interval carving). An accept
       rule applies the path's mods, emits via [in_port] output,
       restores the saved fields from the registers ([Move regI -> f])
       so the next path matches the original packet again, and resubmits
       to table [i+1]; a deny rule just resubmits. The last path table
       ends the walk instead of resubmitting.

    Rules are installed through the real controller path: encoded as
    OpenFlow FLOW_MOD wire messages and fed to an {!Ovs_ofproto.Ofconn}.

    [?mutation] seeds a deliberate compiler bug (dropped resubmit, wrong
    priority order, ...) so the equivalence checker's mutation leg can
    prove it catches real miscompilations. *)

module FK = Ovs_packet.Flow_key
module Masked = Ovs_nmu.Iset.Masked
module Match_ = Ovs_ofproto.Match_
module Action = Ovs_ofproto.Action
module Pipeline = Ovs_ofproto.Pipeline
module Ofconn = Ovs_ofproto.Ofconn
module Ofp_codec = Ovs_ofproto.Ofp_codec

exception Compile_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Compile_error m)) fmt

type mutation =
  | Drop_goto  (** deny rules in table 1 drop instead of resubmitting *)
  | Wrong_priority  (** table 1's decision-list priorities reversed *)
  | Drop_restore  (** the register-restore moves are omitted *)
  | Drop_union_arm  (** the last path is silently dropped *)
  | Wrong_mod_value  (** the first set_field writes value+1 *)
  | Drop_filter  (** table 1's first deny rule accepts instead *)
  | Star_off_by_one  (** stars unroll to k-1 instead of k *)

let mutation_name = function
  | Drop_goto -> "drop_goto"
  | Wrong_priority -> "wrong_priority"
  | Drop_restore -> "drop_restore"
  | Drop_union_arm -> "drop_union_arm"
  | Wrong_mod_value -> "wrong_mod_value"
  | Drop_filter -> "drop_filter"
  | Star_off_by_one -> "star_off_by_one"

let all_mutations =
  [ Drop_goto; Wrong_priority; Drop_restore; Drop_union_arm; Wrong_mod_value;
    Drop_filter; Star_off_by_one ]

type rule = {
  c_table : int;
  c_priority : int;
  c_match : Match_.t;
  c_actions : Action.t list;
}

type compiled = {
  rules : rule list;
  n_tables : int;  (** save table + one per path *)
  n_paths : int;
  saved : FK.Field.t list;  (** [saved]'s i-th field lives in reg i *)
}

(* -- validation -- *)

let reserved f =
  match f with
  | FK.Field.Recirc_id | FK.Field.Reg0 | FK.Field.Reg1 | FK.Field.Reg2
  | FK.Field.Reg3 | FK.Field.Reg4 | FK.Field.Reg5 | FK.Field.Reg6
  | FK.Field.Reg7 -> true
  | _ -> false

let validate p =
  List.iter
    (fun (f, _, _) ->
      if reserved f then fail "policy tests reserved field %s" (FK.Field.name f))
    (Policy.atoms p);
  List.iter
    (fun (f, _) ->
      if reserved f then fail "policy modifies reserved field %s" (FK.Field.name f))
    (Policy.mods p)

(* -- 1: normalization into paths -- *)

type patom = Pfilter of Policy.pred | Pmod of FK.Field.t * int

let paths ~star_shrink (p : Policy.t) : patom list list =
  let rec go (p : Policy.t) =
    match p with
    | Policy.Filter pr -> [ [ Pfilter pr ] ]
    | Policy.Mod (f, v) -> [ [ Pmod (f, v) ] ]
    | Policy.Union (a, b) -> go a @ go b
    | Policy.Seq (a, b) ->
        let pa = go a and pb = go b in
        List.concat_map (fun l -> List.map (fun r -> l @ r) pb) pa
    | Policy.Star (k, a) ->
        let k = if star_shrink then max 0 (k - 1) else k in
        let pa = go a in
        let acc = ref [ [] ] and pow = ref [ [] ] in
        for _ = 1 to k do
          pow :=
            List.concat_map (fun l -> List.map (fun r -> l @ r) pa) !pow;
          acc := !acc @ !pow
        done;
        !acc
  in
  go p

(* -- 2: weakest precondition -- *)

(* substitute already-assigned fields into a predicate and
   constant-fold; the result only tests the original packet *)
let rec subst (env : (FK.Field.t * int) list) (pr : Policy.pred) : Policy.pred =
  match pr with
  | Policy.True -> Policy.True
  | Policy.False -> Policy.False
  | Policy.Test (f, v, m) -> (
      match List.assoc_opt f env with
      | Some c -> if c land m = v then Policy.True else Policy.False
      | None -> pr)
  | Policy.And (a, b) -> (
      match (subst env a, subst env b) with
      | Policy.False, _ | _, Policy.False -> Policy.False
      | Policy.True, x | x, Policy.True -> x
      | a, b -> Policy.And (a, b))
  | Policy.Or (a, b) -> (
      match (subst env a, subst env b) with
      | Policy.True, _ | _, Policy.True -> Policy.True
      | Policy.False, x | x, Policy.False -> x
      | a, b -> Policy.Or (a, b))
  | Policy.Not a -> (
      match subst env a with
      | Policy.True -> Policy.False
      | Policy.False -> Policy.True
      | a -> Policy.Not a)

(* a path as (precondition over the input, final assignment) *)
let wp (path : patom list) : Policy.pred * (FK.Field.t * int) list =
  let cond = ref Policy.True and env = ref [] in
  List.iter
    (function
      | Pmod (f, v) -> env := (f, v) :: List.remove_assoc f !env
      | Pfilter pr ->
          let pr = subst !env pr in
          cond :=
            (match (!cond, pr) with
            | Policy.False, _ | _, Policy.False -> Policy.False
            | Policy.True, x | x, Policy.True -> x
            | a, b -> Policy.And (a, b)))
    path;
  (!cond, List.sort compare !env)

(* -- 3: predicate -> priority-ordered decision list -- *)

(* three-valued status of a predicate under a partial per-field
   assignment (positive test + negated tests per field) *)
type fstate = { fs_pos : Masked.t; fs_negs : Masked.t list }

let fs_empty = { fs_pos = Masked.always; fs_negs = [] }

let fstate asg f =
  match List.assoc_opt f asg with Some s -> s | None -> fs_empty

let atom_status asg f (a : Masked.t) : bool option =
  let s = fstate asg f in
  if Masked.implies s.fs_pos a then Some true
  else
    match Masked.inter s.fs_pos a with
    | None -> Some false
    | Some pa ->
        if List.exists (fun n -> Masked.implies pa n) s.fs_negs then Some false
        else None

let rec pred_status asg (pr : Policy.pred) : bool option =
  match pr with
  | Policy.True -> Some true
  | Policy.False -> Some false
  | Policy.Test (f, v, m) -> atom_status asg f (Masked.make ~value:v ~mask:m)
  | Policy.And (a, b) -> (
      match (pred_status asg a, pred_status asg b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, x | x, Some true -> x
      | None, _ -> None)
  | Policy.Or (a, b) -> (
      match (pred_status asg a, pred_status asg b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, x | x, Some false -> x
      | None, _ -> None)
  | Policy.Not a -> Option.map not (pred_status asg a)

(* leftmost atom still undetermined under the assignment *)
let rec pick_atom asg (pr : Policy.pred) : (FK.Field.t * Masked.t) option =
  match pr with
  | Policy.True | Policy.False -> None
  | Policy.Test (f, v, m) ->
      let a = Masked.make ~value:v ~mask:m in
      if atom_status asg f a = None then Some (f, a) else None
  | Policy.And (a, b) | Policy.Or (a, b) -> (
      match pick_atom asg a with Some r -> Some r | None -> pick_atom asg b)
  | Policy.Not a -> pick_atom asg a

let asg_satisfiable asg =
  List.for_all
    (fun (f, s) ->
      Masked.sample ~full:(FK.Field.full_mask f) s.fs_pos s.fs_negs <> None)
    asg

(** Shannon-expand [pr] into a total decision list: conjunctions of
    positive masked atoms paired with accept/deny, highest priority
    first. A packet takes the first conjunction it matches; totality of
    every suffix is what makes the priority encoding faithful. *)
let decision_list (pr : Policy.pred) : ((FK.Field.t * Masked.t) list * bool) list
    =
  let rec go conj asg pr depth =
    if depth > 24 then fail "predicate too wide for decision-list expansion";
    if not (asg_satisfiable asg) then []
    else
      match pred_status asg pr with
      | Some b -> [ (List.rev conj, b) ]
      | None -> (
          match pick_atom asg pr with
          | None -> fail "undetermined predicate with no free atom"
          | Some (f, a) ->
              let s = fstate asg f in
              let hi =
                match Masked.inter s.fs_pos a with
                | None -> []
                | Some pos ->
                    go
                      ((f, a) :: conj)
                      ((f, { s with fs_pos = pos })
                      :: List.remove_assoc f asg)
                      pr (depth + 1)
              in
              let lo =
                go conj
                  ((f, { s with fs_negs = a :: s.fs_negs })
                  :: List.remove_assoc f asg)
                  pr (depth + 1)
              in
              hi @ lo)
  in
  go [] [] pr 0

let match_of_conj conj =
  let m = Match_.catchall () in
  (* atoms on the same field are compatible along one branch; intersect
     them into a single masked match *)
  let per_field = Hashtbl.create 4 in
  List.iter
    (fun (f, a) ->
      let cur =
        match Hashtbl.find_opt per_field f with
        | Some c -> c
        | None -> Masked.always
      in
      match Masked.inter cur a with
      | Some c -> Hashtbl.replace per_field f c
      | None -> fail "contradictory conjunction")
    conj;
  Hashtbl.iter
    (fun f (a : Masked.t) ->
      ignore (Match_.with_masked m f a.Masked.m_value a.Masked.m_mask))
    per_field;
  m

(* -- putting it together -- *)

let regs =
  [| FK.Field.Reg0; FK.Field.Reg1; FK.Field.Reg2; FK.Field.Reg3;
     FK.Field.Reg4; FK.Field.Reg5; FK.Field.Reg6; FK.Field.Reg7 |]

let compile ?mutation (p : Policy.t) : compiled =
  validate p;
  let mut m = mutation = Some m in
  let all_paths = paths ~star_shrink:(mut Star_off_by_one) p in
  let wps = List.map wp all_paths in
  let wps = List.filter (fun (c, _) -> c <> Policy.False) wps in
  (* merge duplicate (cond, mods) paths: star unrolling converges *)
  let wps =
    List.fold_left
      (fun acc cm -> if List.mem cm acc then acc else acc @ [ cm ])
      [] wps
  in
  let wps =
    if mut Drop_union_arm && wps <> [] then
      List.filteri (fun i _ -> i < List.length wps - 1) wps
    else wps
  in
  let saved = Policy.modified_fields p in
  if List.length saved > Array.length regs then
    fail "policy modifies %d fields; only %d registers" (List.length saved)
      (Array.length regs);
  let n_paths = List.length wps in
  let saves = List.mapi (fun i f -> Action.Move (f, regs.(i))) saved in
  let restores = List.mapi (fun i f -> Action.Move (regs.(i), f)) saved in
  let restores = if mut Drop_restore then [] else restores in
  let rules = ref [] in
  let add r = rules := r :: !rules in
  add
    {
      c_table = 0;
      c_priority = 100;
      c_match = Match_.catchall ();
      c_actions =
        (if n_paths = 0 then [ Action.Drop ]
         else saves @ [ Action.Goto_table 1 ]);
    };
  List.iteri
    (fun i (cond, mods) ->
      let table = i + 1 in
      let last = i = n_paths - 1 in
      let dl = decision_list cond in
      let n = List.length dl in
      let goto = if last then [] else [ Action.Goto_table (table + 1) ] in
      let accept_actions =
        List.map (fun (f, v) -> Action.Set_field (f, v)) mods
        @ [ Action.In_port_output ]
        @ (if last then [] else restores)
        @ goto
      in
      let accept_actions =
        if mut Wrong_mod_value && table = 1 then
          match accept_actions with
          | Action.Set_field (f, v) :: rest ->
              Action.Set_field (f, (v + 1) land FK.Field.full_mask f) :: rest
          | rest -> rest
        else accept_actions
      in
      let deny_actions =
        if last then [ Action.Drop ]
        else if mut Drop_goto && table = 1 then [ Action.Drop ]
        else [ Action.Goto_table (table + 1) ]
      in
      let first_deny = ref true in
      List.iteri
        (fun j (conj, accept) ->
          let priority =
            if mut Wrong_priority && table = 1 then 100 + j else 100 + (n - j)
          in
          let accept =
            if (not accept) && mut Drop_filter && table = 1 && !first_deny
            then begin
              first_deny := false;
              true
            end
            else accept
          in
          add
            {
              c_table = table;
              c_priority = priority;
              c_match = match_of_conj conj;
              c_actions = (if accept then accept_actions else deny_actions);
            })
        dl)
    wps;
  {
    rules = List.rev !rules;
    n_tables = n_paths + 1;
    n_paths;
    saved;
  }

(* -- installation through the controller path -- *)

(** Install the compiled rules by encoding each as an OpenFlow FLOW_MOD
    and feeding the wire bytes to the switch connection — the same path
    an NSX controller uses. *)
let install (c : compiled) (conn : Ofconn.t) : unit =
  let hello = Ofp_codec.encode ~xid:1 Ofp_codec.Hello in
  ignore (Ofconn.feed conn hello);
  List.iteri
    (fun i r ->
      let msg =
        Ofp_codec.Flow_mod
          {
            command = `Add;
            table_id = r.c_table;
            priority = r.c_priority;
            cookie = 0;
            match_ = r.c_match;
            actions = r.c_actions;
          }
      in
      ignore (Ofconn.feed conn (Ofp_codec.encode ~xid:(i + 2) msg)))
    c.rules

(** Compile and install into a fresh pipeline (sized to the compiled
    table count) via the controller path; returns both. *)
let pipeline_of ?mutation (p : Policy.t) : compiled * Pipeline.t =
  let c = compile ?mutation p in
  let pipeline = Pipeline.create ~n_tables:(max 2 c.n_tables) () in
  let conn = Ofconn.create ~pipeline () in
  install c conn;
  (c, pipeline)
