(** Mask-aware symbolic equivalence: prove that translating the
    compiled tables agrees with the policy's denotational semantics over
    the whole flow-key space, or produce a concrete counterexample
    packet.

    The engine generalizes the single-field interval carving of
    {!Ovs_nmu.Iset} to cross-field predicate partitions. Every masked
    atom either side can branch on — policy tests, compiled rule
    matches, and the exact values written by mods — is collected per
    field; {!Ovs_nmu.Iset.Masked.refine} carves each field's domain into
    disjoint regions on which every atom is constant, and the cross
    product of those regions (times the finite [in_port] universe) is a
    partition of the key space into {e cubes}. Within one cube both
    sides take the same branches everywhere, so checking the cube's
    representative key checks the whole cube:

    - the {b policy side} evaluates symbolically: an environment maps
      each field to a constant (written by a mod) or to "original";
      predicates resolve against the cube representative.
    - the {b compiled side} runs the real {!Ovs_ofproto.Pipeline.translate}
      on the representative and interprets the returned datapath actions
      symbolically. A [set] whose value equals the representative's
      original field value is a register {e restore} (or a mod the cube
      pins to its own value — equivalent on the cube) and maps back to
      "original"; any other [set] is a cube-constant write. Register and
      recirculation metadata is invisible on the wire and excluded.

    Both sides normalize emissions to [(port, field := const, ...)]
    descriptor sets; a cube where the sets differ yields its
    representative as the counterexample packet. *)

module FK = Ovs_packet.Flow_key
module Masked = Ovs_nmu.Iset.Masked
module Pipeline = Ovs_ofproto.Pipeline
module Table = Ovs_ofproto.Table
module Match_ = Ovs_ofproto.Match_
module Action = Ovs_ofproto.Action

exception Check_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Check_error m)) fmt

type emission = {
  e_port : int;
  e_sets : (FK.Field.t * int) list;
      (** cube-constant rewrites, sorted by field index; fields absent
          keep their input value *)
}

type divergence = {
  d_key : FK.t;  (** the counterexample packet *)
  d_policy : emission list;
  d_compiled : emission list;
}

type result = Proved of int  (** cubes checked *) | Divergent of divergence

let reserved f =
  match f with
  | FK.Field.Recirc_id | FK.Field.Reg0 | FK.Field.Reg1 | FK.Field.Reg2
  | FK.Field.Reg3 | FK.Field.Reg4 | FK.Field.Reg5 | FK.Field.Reg6
  | FK.Field.Reg7 -> true
  | _ -> false

(* -- symbolic environments: field -> written constant; absent = original -- *)

let env_set rep env f v =
  (* writing the representative's own value is "original" on this cube
     (register restores; mods the cube pins to their written value) *)
  let env = List.remove_assoc f env in
  if v = FK.get rep f then env else (f, v) :: env

let env_get rep env f =
  match List.assoc_opt f env with Some v -> v | None -> FK.get rep f

let env_canon env =
  List.sort (fun (a, _) (b, _) -> compare (FK.Field.to_index a) (FK.Field.to_index b)) env

(* -- policy side -- *)

let rec eval_pred_env rep env (pr : Policy.pred) =
  match pr with
  | Policy.True -> true
  | Policy.False -> false
  | Policy.Test (f, v, m) -> env_get rep env f land m = v
  | Policy.And (a, b) -> eval_pred_env rep env a && eval_pred_env rep env b
  | Policy.Or (a, b) -> eval_pred_env rep env a || eval_pred_env rep env b
  | Policy.Not a -> not (eval_pred_env rep env a)

let union_envs a b =
  List.fold_left (fun acc e -> if List.mem e acc then acc else acc @ [ e ]) a b

let rec eval_sym rep (p : Policy.t) (envs : (FK.Field.t * int) list list) =
  match p with
  | Policy.Filter pr -> List.filter (fun e -> eval_pred_env rep e pr) envs
  | Policy.Mod (f, v) ->
      union_envs [] (List.map (fun e -> env_canon (env_set rep e f v)) envs)
  | Policy.Union (a, b) ->
      union_envs (eval_sym rep a envs) (eval_sym rep b envs)
  | Policy.Seq (a, b) -> eval_sym rep b (eval_sym rep a envs)
  | Policy.Star (bound, a) ->
      let acc = ref envs and frontier = ref envs in
      for _ = 1 to bound do
        frontier := eval_sym rep a !frontier;
        acc := union_envs !acc !frontier
      done;
      !acc

let emissions_canon es =
  let es =
    List.fold_left (fun acc e -> if List.mem e acc then acc else e :: acc) [] es
  in
  List.sort compare es

let policy_emissions rep (p : Policy.t) : emission list =
  eval_sym rep p [ [] ]
  |> List.map (fun env ->
         { e_port = env_get rep env FK.Field.In_port; e_sets = env_canon env })
  |> emissions_canon

(* -- compiled side -- *)

(** Interpret a translated datapath action list symbolically against the
    cube representative. Only [set]/[output]/[drop] can appear in a
    compiled policy's translation. *)
let interp_odp rep (odp : Action.odp list) : emission list =
  let env = ref [] in
  let out = ref [] in
  List.iter
    (function
      | Action.Odp_set (f, v) ->
          if not (reserved f) then env := env_set rep !env f v
      | Action.Odp_output p ->
          out := { e_port = p; e_sets = env_canon !env } :: !out
      | Action.Odp_drop -> ()
      | a -> fail "non-policy datapath action %a" Action.pp_odp a)
    odp;
  emissions_canon !out

let compiled_emissions pipeline rep : emission list =
  let r = Pipeline.translate pipeline rep in
  interp_odp rep r.Pipeline.odp_actions

(** Concrete per-key oracle used by the differential tests and the bench
    conservation gates: the [(port, output key)] transmissions a single
    translation produces for [key], with register/recirc metadata zeroed
    so wire-identical packets compare equal. *)
let concrete_emissions pipeline (key : FK.t) : (int * FK.t) list =
  let r = Pipeline.translate pipeline key in
  let cur = FK.copy key in
  let out = ref [] in
  List.iter
    (function
      | Action.Odp_set (f, v) -> FK.set cur f v
      | Action.Odp_output p ->
          let k = FK.copy cur in
          Array.iter (fun f -> if reserved f then FK.set k f 0) FK.Field.all;
          out := (p, k) :: !out
      | Action.Odp_drop -> ()
      | a -> fail "non-policy datapath action %a" Action.pp_odp a)
    r.Pipeline.odp_actions;
  List.rev !out

(* -- atom collection and cube enumeration -- *)

let collect_atoms (p : Policy.t) (pipeline : Pipeline.t) :
    (FK.Field.t * Masked.t list) list =
  let by_field : (FK.Field.t, Masked.t list) Hashtbl.t = Hashtbl.create 8 in
  let add f (a : Masked.t) =
    if not (reserved f || f = FK.Field.In_port || Masked.is_always a) then begin
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_field f) in
      if not (List.exists (Masked.equal a) cur) then
        Hashtbl.replace by_field f (a :: cur)
    end
  in
  let exact f v = add f (Masked.make ~value:v ~mask:(FK.Field.full_mask f)) in
  List.iter (fun (f, v, m) -> add f (Masked.make ~value:v ~mask:m)) (Policy.atoms p);
  List.iter (fun (f, v) -> exact f v) (Policy.mods p);
  Array.iter
    (fun tbl ->
      Table.iter tbl (fun r ->
          let m = r.Table.match_ in
          Array.iter
            (fun f ->
              let mask = FK.get m.Match_.mask f in
              if mask <> 0 then
                add f (Masked.make ~value:(FK.get m.Match_.key f) ~mask))
            FK.Field.all;
          List.iter
            (function
              | Action.Set_field (f, v) -> if not (reserved f) then exact f v
              | _ -> ())
            r.Table.value))
    pipeline.Pipeline.tables;
  Hashtbl.fold (fun f atoms acc -> (f, List.rev atoms) :: acc) by_field []
  |> List.sort (fun (a, _) (b, _) ->
         compare (FK.Field.to_index a) (FK.Field.to_index b))

let max_cubes = 500_000

(** Prove [translate (compile p) = eval p] over the key space (with
    [in_port] ranging over [ports]), or return a counterexample. *)
let check ?(ports = [ 0; 1; 2; 3 ]) (p : Policy.t) (pipeline : Pipeline.t) :
    result =
  if ports = [] then fail "empty port universe";
  let dims =
    List.map
      (fun (f, atoms) ->
        let full = FK.Field.full_mask f in
        let regions = Masked.refine ~full atoms in
        if regions = [] then fail "empty refinement on %s" (FK.Field.name f);
        (f, Array.of_list (List.map (fun r -> r.Masked.r_rep) regions)))
      (collect_atoms p pipeline)
  in
  let n_cubes =
    List.fold_left (fun n (_, reps) -> n * Array.length reps) (List.length ports) dims
  in
  if n_cubes > max_cubes then
    fail "cube explosion: %d cubes (max %d)" n_cubes max_cubes;
  let divergence = ref None in
  let cubes = ref 0 in
  let rec enumerate rep = function
    | [] ->
        incr cubes;
        let pol = policy_emissions rep p in
        let comp = compiled_emissions pipeline rep in
        if pol <> comp && !divergence = None then
          divergence :=
            Some { d_key = FK.copy rep; d_policy = pol; d_compiled = comp }
    | (f, reps) :: rest ->
        Array.iter
          (fun v ->
            if !divergence = None then begin
              FK.set rep f v;
              enumerate rep rest
            end)
          reps
  in
  List.iter
    (fun port ->
      if !divergence = None then begin
        let rep = FK.create () in
        FK.set rep FK.Field.In_port port;
        enumerate rep dims
      end)
    ports;
  match !divergence with Some d -> Divergent d | None -> Proved !cubes

(* -- rendering -- *)

let pp_emission ppf e =
  if e.e_sets = [] then Fmt.pf ppf "port %d" e.e_port
  else
    Fmt.pf ppf "port %d (%s)" e.e_port
      (String.concat ", "
         (List.map
            (fun (f, v) ->
              Printf.sprintf "%s:=%s" (FK.Field.name f) (Policy.pp_value f v))
            e.e_sets))

let pp_emissions ppf = function
  | [] -> Fmt.string ppf "no packets"
  | es -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any "; ") pp_emission) es

let render_key (key : FK.t) : string =
  let parts =
    Array.to_list FK.Field.all
    |> List.filter_map (fun f ->
           let v = FK.get key f in
           if v <> 0 && not (reserved f) then
             Some (Printf.sprintf "%s=%s" (FK.Field.name f) (Policy.pp_value f v))
           else None)
  in
  if parts = [] then "all-zero packet on port 0" else String.concat "," parts

let render_divergence (d : divergence) : string =
  Fmt.str "counterexample packet: %s\n  policy emits:   %a\n  compiled emits: %a"
    (render_key d.d_key) pp_emissions d.d_policy pp_emissions d.d_compiled
