(** A NetKAT-style policy language with denotational packet-set
    semantics over {!Ovs_packet.Flow_key}.

    A policy maps one packet (flow key) to a *set* of packets: [Filter]
    keeps or drops the packet, [Mod] rewrites one field, [Union] runs
    both branches on the same input and unions the results, [Seq]
    pipes every output of the first policy into the second, and
    [Star (k, p)] is the bounded iteration [id + p + p^2 + ... + p^k].

    Locations follow the NetKAT convention: a packet's position is its
    [In_port] field, so "output to port 2" is [Mod (In_port, 2)] (see
    {!fwd}) and every element of [eval p key] is a packet emitted on its
    own final [In_port]. The compiler in {!Compile} lowers exactly this
    semantics onto the multi-table ofproto pipeline, and {!Check} proves
    the two agree. *)

module FK = Ovs_packet.Flow_key

type pred =
  | True
  | False
  | Test of FK.Field.t * int * int
      (** [Test (f, v, m)]: the packet satisfies [key.f land m = v] *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Filter of pred
  | Mod of FK.Field.t * int
  | Union of t * t
  | Seq of t * t
  | Star of int * t  (** bounded: [id + p + ... + p^k] *)

(* -- constructors -- *)

let test f v =
  let full = FK.Field.full_mask f in
  Test (f, v land full, full)

let test_masked f v m = Test (f, v land m, m)

let test_prefix f addr plen =
  if plen < 0 || plen > 32 then invalid_arg "Policy.test_prefix";
  let m = if plen = 0 then 0 else 0xFFFFFFFF lsl (32 - plen) land 0xFFFFFFFF in
  Test (f, addr land m, m)

let id = Filter True
let drop = Filter False
let fwd p = Mod (FK.Field.In_port, p)
let seq = function [] -> id | p :: ps -> List.fold_left (fun a b -> Seq (a, b)) p ps
let union = function [] -> drop | p :: ps -> List.fold_left (fun a b -> Union (a, b)) p ps

(* -- semantics -- *)

let rec eval_pred (pr : pred) (key : FK.t) : bool =
  match pr with
  | True -> true
  | False -> false
  | Test (f, v, m) -> FK.get key f land m = v
  | And (a, b) -> eval_pred a key && eval_pred b key
  | Or (a, b) -> eval_pred a key || eval_pred b key
  | Not a -> not (eval_pred a key)

let add_unique k ks = if List.exists (FK.equal k) ks then ks else ks @ [ k ]
let union_keys a b = List.fold_left (fun acc k -> add_unique k acc) a b

(** The denotation: the set of output packets (fresh copies; the input
    key is never modified). *)
let rec eval (p : t) (key : FK.t) : FK.t list =
  match p with
  | Filter pr -> if eval_pred pr key then [ FK.copy key ] else []
  | Mod (f, v) ->
      let k = FK.copy key in
      FK.set k f v;
      [ k ]
  | Union (a, b) -> union_keys (eval a key) (eval b key)
  | Seq (a, b) ->
      List.fold_left (fun acc k -> union_keys acc (eval b k)) [] (eval a key)
  | Star (bound, p) ->
      let acc = ref [ FK.copy key ] in
      let frontier = ref [ FK.copy key ] in
      for _ = 1 to bound do
        let next =
          List.fold_left (fun ns k -> union_keys ns (eval p k)) [] !frontier
        in
        frontier := next;
        acc := union_keys !acc next
      done;
      !acc

(* -- structure queries -- *)

let rec pred_atoms (pr : pred) : (FK.Field.t * int * int) list =
  match pr with
  | True | False -> []
  | Test (f, v, m) -> [ (f, v, m) ]
  | And (a, b) | Or (a, b) -> pred_atoms a @ pred_atoms b
  | Not a -> pred_atoms a

(** Every [Test] atom in the policy, in syntactic order. *)
let rec atoms (p : t) : (FK.Field.t * int * int) list =
  match p with
  | Filter pr -> pred_atoms pr
  | Mod _ -> []
  | Union (a, b) | Seq (a, b) -> atoms a @ atoms b
  | Star (_, a) -> atoms a

(** Every [(field, value)] a [Mod] can write, in syntactic order. *)
let rec mods (p : t) : (FK.Field.t * int) list =
  match p with
  | Filter _ -> []
  | Mod (f, v) -> [ (f, v) ]
  | Union (a, b) | Seq (a, b) -> mods a @ mods b
  | Star (_, a) -> mods a

let modified_fields p =
  List.fold_left
    (fun acc (f, _) -> if List.mem f acc then acc else acc @ [ f ])
    [] (mods p)

(* -- rendering -- *)

let pp_value f v =
  match f with
  | FK.Field.Nw_src | FK.Field.Nw_dst | FK.Field.Tun_src | FK.Field.Tun_dst ->
      Ovs_packet.Ipv4.addr_to_string v
  | _ -> string_of_int v

let pp_atom ppf (f, v, m) =
  let full = FK.Field.full_mask f in
  if m = full then Fmt.pf ppf "%s=%s" (FK.Field.name f) (pp_value f v)
  else
    (* render IPv4 prefixes as CIDR, everything else as value/mask *)
    let plen_of m =
      let rec go i = if i > 32 then None
        else if m = (if i = 0 then 0 else 0xFFFFFFFF lsl (32 - i) land 0xFFFFFFFF)
        then Some i else go (i + 1)
      in
      go 0
    in
    match f with
    | (FK.Field.Nw_src | FK.Field.Nw_dst) when plen_of m <> None ->
        Fmt.pf ppf "%s=%s/%d" (FK.Field.name f)
          (Ovs_packet.Ipv4.addr_to_string v)
          (match plen_of m with Some p -> p | None -> 32)
    | _ -> Fmt.pf ppf "%s&0x%x=0x%x" (FK.Field.name f) m v

let rec pp_pred ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Test (f, v, m) -> pp_atom ppf (f, v, m)
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Fmt.pf ppf "not %a" pp_pred a

let rec pp ppf = function
  | Filter True -> Fmt.string ppf "id"
  | Filter False -> Fmt.string ppf "drop"
  | Filter pr -> Fmt.pf ppf "filter %a" pp_pred pr
  | Mod (FK.Field.In_port, p) -> Fmt.pf ppf "fwd(%d)" p
  | Mod (f, v) -> Fmt.pf ppf "%s := %s" (FK.Field.name f) (pp_value f v)
  | Union (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | Seq (a, b) -> Fmt.pf ppf "%a; %a" pp a pp b
  | Star (k, a) -> Fmt.pf ppf "(%a)*%d" pp a k
