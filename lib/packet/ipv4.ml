(** IPv4 header parsing and construction. Addresses are 32-bit ints. *)

let header_len = 20  (** without options; options are parsed but never emitted *)

module Proto = struct
  let icmp = 1
  let tcp = 6
  let udp = 17
  let gre = 47

  let to_string = function
    | 1 -> "icmp"
    | 6 -> "tcp"
    | 17 -> "udp"
    | 47 -> "gre"
    | x -> string_of_int x
end

type t = {
  ihl : int;  (** header length in bytes *)
  tos : int;
  total_len : int;
  ident : int;
  flags : int;  (** 3-bit flags field: bit 1 = DF, bit 0 (lsb here) = MF *)
  frag_off : int;
  ttl : int;
  proto : int;
  csum : int;
  src : int;
  dst : int;
}

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      (int_of_string a lsl 24) lor (int_of_string b lsl 16)
      lor (int_of_string c lsl 8) lor int_of_string d
  | _ -> invalid_arg ("Ipv4.addr_of_string: " ^ s)

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

(** Is this packet a fragment (either MF set or nonzero offset)? *)
let is_fragment t = t.frag_off > 0 || t.flags land 0x1 = 1

(** Is this a later fragment (nonzero offset), whose L4 header is absent? *)
let is_later_fragment t = t.frag_off > 0

(** Parse at [buf.l3_ofs]. Sets [buf.l4_ofs] on success. *)
let parse (buf : Buffer.t) : t option =
  let ofs = buf.Buffer.l3_ofs in
  if ofs < 0 || Buffer.length buf < ofs + header_len then None
  else begin
    let vihl = Buffer.get_u8 buf ofs in
    if vihl lsr 4 <> 4 then None
    else begin
      let ihl = (vihl land 0xF) * 4 in
      if ihl < header_len || Buffer.length buf < ofs + ihl then None
      else begin
        let frag_word = Buffer.get_u16 buf (ofs + 6) in
        buf.Buffer.l4_ofs <- ofs + ihl;
        Some
          {
            ihl;
            tos = Buffer.get_u8 buf (ofs + 1);
            total_len = Buffer.get_u16 buf (ofs + 2);
            ident = Buffer.get_u16 buf (ofs + 4);
            flags = (frag_word lsr 13) land 0x7;
            frag_off = frag_word land 0x1FFF;
            ttl = Buffer.get_u8 buf (ofs + 8);
            proto = Buffer.get_u8 buf (ofs + 9);
            csum = Buffer.get_u16 buf (ofs + 10);
            src = Buffer.get_u32 buf (ofs + 12);
            dst = Buffer.get_u32 buf (ofs + 16);
          }
      end
    end
  end

(** Write a 20-byte header at [buf.l3_ofs]. [total_len] covers header plus
    payload. Computes the header checksum unless [csum] is given (0 leaves
    it for hardware offload). *)
let write (buf : Buffer.t) ?(tos = 0) ?(ident = 0) ?(flags = 2) ?(ttl = 64)
    ?csum ~proto ~src ~dst ~total_len () =
  let ofs = buf.Buffer.l3_ofs in
  Buffer.set_u8 buf ofs 0x45;
  Buffer.set_u8 buf (ofs + 1) tos;
  Buffer.set_u16 buf (ofs + 2) total_len;
  Buffer.set_u16 buf (ofs + 4) ident;
  Buffer.set_u16 buf (ofs + 6) (flags lsl 13);
  Buffer.set_u8 buf (ofs + 8) ttl;
  Buffer.set_u8 buf (ofs + 9) proto;
  Buffer.set_u16 buf (ofs + 10) 0;
  Buffer.set_u32 buf (ofs + 12) src;
  Buffer.set_u32 buf (ofs + 16) dst;
  let c =
    match csum with
    | Some c -> c
    | None ->
        Checksum.compute buf.Buffer.data ~off:(Buffer.abs buf ofs) ~len:header_len
  in
  Buffer.set_u16 buf (ofs + 10) c;
  buf.Buffer.l4_ofs <- ofs + header_len

(** Recompute the header checksum in place (after TTL decrement, NAT...). *)
let update_csum (buf : Buffer.t) =
  let ofs = buf.Buffer.l3_ofs in
  let ihl = (Buffer.get_u8 buf ofs land 0xF) * 4 in
  Buffer.set_u16 buf (ofs + 10) 0;
  let c = Checksum.compute buf.Buffer.data ~off:(Buffer.abs buf ofs) ~len:ihl in
  Buffer.set_u16 buf (ofs + 10) c

let set_tos (buf : Buffer.t) tos = Buffer.set_u8 buf (buf.Buffer.l3_ofs + 1) tos
let set_ttl (buf : Buffer.t) ttl = Buffer.set_u8 buf (buf.Buffer.l3_ofs + 8) ttl
let set_src (buf : Buffer.t) a = Buffer.set_u32 buf (buf.Buffer.l3_ofs + 12) a
let set_dst (buf : Buffer.t) a = Buffer.set_u32 buf (buf.Buffer.l3_ofs + 16) a

let pp ppf t =
  Fmt.pf ppf "%s > %s %s ttl=%d len=%d" (addr_to_string t.src)
    (addr_to_string t.dst) (Proto.to_string t.proto) t.ttl t.total_len
