(** The flow key: every packet header and metadata field the OVS pipeline
    can match on, extracted once per packet ("miniflow extraction").

    Represented as a fixed-size [int array] indexed by {!Field.t}. This keeps
    masking, hashing and comparison generic and fast, which is exactly what
    the exact-match cache and the tuple-space classifier need. IPv6 addresses
    are folded into two 62-bit halves per address (documented lossy fold;
    prefix masks remain meaningful within each half). *)

module Field = struct
  type t =
    | In_port
    | Recirc_id
    | Dl_src
    | Dl_dst
    | Dl_type
    | Vlan_tci
    | Nw_src
    | Nw_dst
    | Nw_proto
    | Nw_tos
    | Nw_ttl
    | Nw_frag
    | Tp_src
    | Tp_dst
    | Tcp_flags
    | Tun_id
    | Tun_src
    | Tun_dst
    | Ct_state
    | Ct_zone
    | Ct_mark
    | Ip6_src_hi
    | Ip6_src_lo
    | Ip6_dst_hi
    | Ip6_dst_lo
    | Reg0  (** pipeline metadata registers (NSX uses them heavily) *)
    | Reg1
    | Reg2
    | Reg3
    | Reg4
    | Reg5
    | Reg6
    | Reg7

  let all =
    [|
      In_port; Recirc_id; Dl_src; Dl_dst; Dl_type; Vlan_tci; Nw_src; Nw_dst;
      Nw_proto; Nw_tos; Nw_ttl; Nw_frag; Tp_src; Tp_dst; Tcp_flags; Tun_id;
      Tun_src; Tun_dst; Ct_state; Ct_zone; Ct_mark; Ip6_src_hi; Ip6_src_lo;
      Ip6_dst_hi; Ip6_dst_lo; Reg0; Reg1; Reg2; Reg3; Reg4; Reg5; Reg6; Reg7;
    |]

  let count = Array.length all

  let to_index : t -> int = function
    | In_port -> 0
    | Recirc_id -> 1
    | Dl_src -> 2
    | Dl_dst -> 3
    | Dl_type -> 4
    | Vlan_tci -> 5
    | Nw_src -> 6
    | Nw_dst -> 7
    | Nw_proto -> 8
    | Nw_tos -> 9
    | Nw_ttl -> 10
    | Nw_frag -> 11
    | Tp_src -> 12
    | Tp_dst -> 13
    | Tcp_flags -> 14
    | Tun_id -> 15
    | Tun_src -> 16
    | Tun_dst -> 17
    | Ct_state -> 18
    | Ct_zone -> 19
    | Ct_mark -> 20
    | Ip6_src_hi -> 21
    | Ip6_src_lo -> 22
    | Ip6_dst_hi -> 23
    | Ip6_dst_lo -> 24
    | Reg0 -> 25
    | Reg1 -> 26
    | Reg2 -> 27
    | Reg3 -> 28
    | Reg4 -> 29
    | Reg5 -> 30
    | Reg6 -> 31
    | Reg7 -> 32

  let name = function
    | In_port -> "in_port"
    | Recirc_id -> "recirc_id"
    | Dl_src -> "dl_src"
    | Dl_dst -> "dl_dst"
    | Dl_type -> "dl_type"
    | Vlan_tci -> "vlan_tci"
    | Nw_src -> "nw_src"
    | Nw_dst -> "nw_dst"
    | Nw_proto -> "nw_proto"
    | Nw_tos -> "nw_tos"
    | Nw_ttl -> "nw_ttl"
    | Nw_frag -> "nw_frag"
    | Tp_src -> "tp_src"
    | Tp_dst -> "tp_dst"
    | Tcp_flags -> "tcp_flags"
    | Tun_id -> "tun_id"
    | Tun_src -> "tun_src"
    | Tun_dst -> "tun_dst"
    | Ct_state -> "ct_state"
    | Ct_zone -> "ct_zone"
    | Ct_mark -> "ct_mark"
    | Ip6_src_hi -> "ipv6_src_hi"
    | Ip6_src_lo -> "ipv6_src_lo"
    | Ip6_dst_hi -> "ipv6_dst_hi"
    | Ip6_dst_lo -> "ipv6_dst_lo"
    | Reg0 -> "reg0"
    | Reg1 -> "reg1"
    | Reg2 -> "reg2"
    | Reg3 -> "reg3"
    | Reg4 -> "reg4"
    | Reg5 -> "reg5"
    | Reg6 -> "reg6"
    | Reg7 -> "reg7"

  let of_name s =
    let rec find i =
      if i >= count then None
      else if name all.(i) = s then Some all.(i)
      else find (i + 1)
    in
    find 0

  (** Width of the field in bits, for exact-match mask construction. *)
  let width = function
    | In_port -> 32
    | Recirc_id -> 32
    | Dl_src | Dl_dst -> 48
    | Dl_type -> 16
    | Vlan_tci -> 16
    | Nw_src | Nw_dst -> 32
    | Nw_proto -> 8
    | Nw_tos -> 8
    | Nw_ttl -> 8
    | Nw_frag -> 8
    | Tp_src | Tp_dst -> 16
    | Tcp_flags -> 16
    | Tun_id -> 32
    | Tun_src | Tun_dst -> 32
    | Ct_state -> 16
    | Ct_zone -> 16
    | Ct_mark -> 32
    | Ip6_src_hi | Ip6_src_lo | Ip6_dst_hi | Ip6_dst_lo -> 62
    | Reg0 | Reg1 | Reg2 | Reg3 | Reg4 | Reg5 | Reg6 | Reg7 -> 32

  let full_mask f =
    let w = width f in
    if w >= 62 then max_int else (1 lsl w) - 1
end

type t = int array

(* ct_state bits, mirroring OVS's +new+est+rel+rpl+inv+trk *)
module Ct_state_bits = struct
  let new_ = 0x01
  let est = 0x02
  let rel = 0x04
  let rpl = 0x08
  let inv = 0x10
  let trk = 0x20
end

let create () : t = Array.make Field.count 0
let get (k : t) f = k.(Field.to_index f)
let set (k : t) f v = k.(Field.to_index f) <- v
let copy (k : t) : t = Array.copy k
let equal (a : t) (b : t) = a = b

(** FNV-1a over all fields; the EMC and dpcls hash keys this way. *)
let hash (k : t) =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Field.count - 1 do
    h := (!h lxor k.(i)) * 0x100000001b3
  done;
  !h land max_int

(** Hash restricted to fields selected by a mask (dpcls subtable hashing). *)
let hash_masked (k : t) (mask : t) =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Field.count - 1 do
    if mask.(i) <> 0 then h := (!h lxor (k.(i) land mask.(i))) * 0x100000001b3
  done;
  !h land max_int

let equal_masked (a : t) (b : t) (mask : t) =
  let rec go i =
    i >= Field.count
    || (a.(i) land mask.(i) = b.(i) land mask.(i) && go (i + 1))
  in
  go 0

(** Apply [mask] to [k], returning a fresh key with wildcarded bits zeroed. *)
let apply_mask (k : t) (mask : t) : t =
  Array.init Field.count (fun i -> k.(i) land mask.(i))

(** 5-tuple RSS hash, the value AF_XDP must compute in software (Sec 5.5). *)
let rss_hash (k : t) =
  let open Field in
  let h = ref 0x9e3779b9 in
  let mix v = h := (!h lxor v) * 0x01000193 land 0x7FFFFFFF in
  mix (get k Nw_src);
  mix (get k Nw_dst);
  mix (get k Nw_proto);
  mix (get k Tp_src);
  mix (get k Tp_dst);
  !h

(** Extract the flow key from a packet, the analogue of OVS's
    [miniflow_extract]. Parses Ethernet, VLAN, ARP, IPv4/IPv6 and L4 headers
    and copies packet metadata (port, recirculation, conntrack, tunnel). *)
let extract (buf : Buffer.t) : t =
  let open Field in
  let k = create () in
  set k In_port buf.Buffer.in_port;
  set k Recirc_id buf.Buffer.recirc_id;
  set k Ct_state buf.Buffer.ct_state;
  set k Ct_zone buf.Buffer.ct_zone;
  set k Ct_mark buf.Buffer.ct_mark;
  set k Reg0 buf.Buffer.regs.(0);
  set k Reg1 buf.Buffer.regs.(1);
  set k Reg2 buf.Buffer.regs.(2);
  set k Reg3 buf.Buffer.regs.(3);
  set k Reg4 buf.Buffer.regs.(4);
  set k Reg5 buf.Buffer.regs.(5);
  set k Reg6 buf.Buffer.regs.(6);
  set k Reg7 buf.Buffer.regs.(7);
  (match buf.Buffer.tunnel with
  | Some tmd ->
      set k Tun_id tmd.Buffer.tun_id;
      set k Tun_src tmd.Buffer.tun_src;
      set k Tun_dst tmd.Buffer.tun_dst
  | None -> ());
  (match Ethernet.parse buf with
  | None -> ()
  | Some eth -> begin
      set k Dl_src eth.Ethernet.src;
      set k Dl_dst eth.Ethernet.dst;
      set k Dl_type eth.Ethernet.eth_type;
      set k Vlan_tci eth.Ethernet.vlan_tci;
      if eth.Ethernet.eth_type = Ethernet.Ethertype.ipv4 then begin
        match Ipv4.parse buf with
        | None -> ()
        | Some ip -> begin
            set k Nw_src ip.Ipv4.src;
            set k Nw_dst ip.Ipv4.dst;
            set k Nw_proto ip.Ipv4.proto;
            set k Nw_tos ip.Ipv4.tos;
            set k Nw_ttl ip.Ipv4.ttl;
            set k Nw_frag (if Ipv4.is_fragment ip then 1 else 0);
            if not (Ipv4.is_later_fragment ip) then begin
              if ip.Ipv4.proto = Ipv4.Proto.udp then begin
                match Udp.parse buf with
                | Some u ->
                    set k Tp_src u.Udp.src_port;
                    set k Tp_dst u.Udp.dst_port
                | None -> ()
              end
              else if ip.Ipv4.proto = Ipv4.Proto.tcp then begin
                match Tcp.parse buf with
                | Some tc ->
                    set k Tp_src tc.Tcp.src_port;
                    set k Tp_dst tc.Tcp.dst_port;
                    set k Tcp_flags tc.Tcp.flags
                | None -> ()
              end
              else if ip.Ipv4.proto = Ipv4.Proto.icmp then begin
                match Icmp.parse buf with
                | Some ic ->
                    set k Tp_src ic.Icmp.icmp_type;
                    set k Tp_dst ic.Icmp.code
                | None -> ()
              end
            end
          end
      end
      else if eth.Ethernet.eth_type = Ethernet.Ethertype.ipv6 then begin
        match Ipv6.parse buf with
        | None -> ()
        | Some ip6 ->
            let fold (h : int64) = Int64.to_int (Int64.shift_right_logical h 2) in
            set k Ip6_src_hi (fold ip6.Ipv6.src.Ipv6.hi);
            set k Ip6_src_lo (fold ip6.Ipv6.src.Ipv6.lo);
            set k Ip6_dst_hi (fold ip6.Ipv6.dst.Ipv6.hi);
            set k Ip6_dst_lo (fold ip6.Ipv6.dst.Ipv6.lo);
            set k Nw_proto ip6.Ipv6.next_header;
            set k Nw_tos ip6.Ipv6.tclass;
            set k Nw_ttl ip6.Ipv6.hop_limit
      end
      else if eth.Ethernet.eth_type = Ethernet.Ethertype.arp then begin
        match Arp.parse buf with
        | None -> ()
        | Some a ->
            (* OVS convention: ARP op in nw_proto, spa/tpa in nw_src/dst *)
            set k Nw_proto a.Arp.op;
            set k Nw_src a.Arp.spa;
            set k Nw_dst a.Arp.tpa
      end
    end);
  k

let pp ppf (k : t) =
  let open Field in
  Fmt.pf ppf "in_port=%d" (get k In_port);
  if get k Recirc_id <> 0 then Fmt.pf ppf ",recirc=%d" (get k Recirc_id);
  if get k Tun_id <> 0 then Fmt.pf ppf ",tun_id=%d" (get k Tun_id);
  Fmt.pf ppf ",%s>%s,dl_type=%s"
    (Mac.to_string (get k Dl_src))
    (Mac.to_string (get k Dl_dst))
    (Ethernet.Ethertype.to_string (get k Dl_type));
  if get k Dl_type = Ethernet.Ethertype.ipv4 then
    Fmt.pf ppf ",%s>%s,proto=%s,tp=%d>%d"
      (Ipv4.addr_to_string (get k Nw_src))
      (Ipv4.addr_to_string (get k Nw_dst))
      (Ipv4.Proto.to_string (get k Nw_proto))
      (get k Tp_src) (get k Tp_dst);
  if get k Ct_state <> 0 then Fmt.pf ppf ",ct_state=0x%x" (get k Ct_state)
