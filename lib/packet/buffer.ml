(** Packet buffer with metadata — the analogue of OVS's [dp_packet].

    Data lives in a [Bytes.t] with headroom in front so tunnel encapsulation
    can prepend outer headers without copying the payload (as the real
    datapath does). The metadata fields mirror the ones the paper's O4
    optimization preallocates: input port, L3/L4 offsets, RSS hash, plus the
    pipeline state OVS tracks (recirculation id, conntrack state, tunnel
    info after decap). *)

type tunnel_md = {
  tun_id : int;  (** VNI / GRE key *)
  tun_src : int;  (** outer IPv4 source *)
  tun_dst : int;  (** outer IPv4 destination *)
}

type offload_flags = {
  mutable csum_good : bool;  (** receive: checksum validated by NIC *)
  mutable csum_tx_offload : bool;  (** transmit: leave checksum to the NIC *)
  mutable tso_segsz : int;  (** transmit: segment size for TSO; 0 = off *)
}

type t = {
  mutable data : Bytes.t;
  mutable start : int;  (** offset of the first live byte *)
  mutable len : int;  (** live bytes from [start] *)
  mutable in_port : int;
  mutable rss_hash : int;  (** 0 means "not computed" *)
  mutable l3_ofs : int;  (** offset of the L3 header relative to [start]; -1 unknown *)
  mutable l4_ofs : int;
  mutable recirc_id : int;
  mutable ct_state : int;
  mutable ct_zone : int;
  mutable ct_mark : int;
  mutable tunnel : tunnel_md option;
  mutable birth_ns : float;
      (** ingress timestamp for sojourn-time measurement: virtual ns
          under [Engine_vt], monotonic wall ns under [Engine_domains];
          negative = unstamped (latency measurement off) *)
  regs : int array;
      (** pipeline metadata registers reg0..reg7 — like OVS's frozen
          translation state, they survive recirculation, which register-
          driven pipelines (NSX) depend on *)
  offload : offload_flags;
}

let default_headroom = 128

let fresh_offload () = { csum_good = false; csum_tx_offload = false; tso_segsz = 0 }

let create ?(headroom = default_headroom) ~size () =
  {
    data = Bytes.make (headroom + size) '\000';
    start = headroom;
    len = 0;
    in_port = -1;
    rss_hash = 0;
    l3_ofs = -1;
    l4_ofs = -1;
    recirc_id = 0;
    ct_state = 0;
    ct_zone = 0;
    ct_mark = 0;
    tunnel = None;
    birth_ns = -1.;
    regs = Array.make 8 0;
    offload = fresh_offload ();
  }

let of_bytes ?(headroom = default_headroom) (b : Bytes.t) =
  let t = create ~headroom ~size:(Bytes.length b) () in
  Bytes.blit b 0 t.data t.start (Bytes.length b);
  t.len <- Bytes.length b;
  t

let length t = t.len
let headroom t = t.start

(** Reset all metadata so the buffer can be reused for a new packet, as the
    preallocated dp_packet array does (optimization O4). *)
let reset_metadata t =
  t.start <- default_headroom;
  t.len <- 0;
  t.in_port <- -1;
  t.rss_hash <- 0;
  t.l3_ofs <- -1;
  t.l4_ofs <- -1;
  t.recirc_id <- 0;
  t.ct_state <- 0;
  t.ct_zone <- 0;
  t.ct_mark <- 0;
  t.tunnel <- None;
  t.birth_ns <- -1.;
  Array.fill t.regs 0 8 0;
  t.offload.csum_good <- false;
  t.offload.csum_tx_offload <- false;
  t.offload.tso_segsz <- 0

(** Absolute offset in [data] of a packet-relative offset. *)
let abs t ofs = t.start + ofs

let get_u8 t ofs = Bytes.get_uint8 t.data (abs t ofs)
let set_u8 t ofs v = Bytes.set_uint8 t.data (abs t ofs) v
let get_u16 t ofs = Bytes.get_uint16_be t.data (abs t ofs)
let set_u16 t ofs v = Bytes.set_uint16_be t.data (abs t ofs) v

let get_u32 t ofs =
  Int32.to_int (Bytes.get_int32_be t.data (abs t ofs)) land 0xFFFF_FFFF

let set_u32 t ofs v = Bytes.set_int32_be t.data (abs t ofs) (Int32.of_int v)

(** Prepend [n] bytes of header space; returns unit, new bytes are zeroed.
    Raises [Failure] if the headroom is exhausted. *)
let push t n =
  if n > t.start then failwith "Buffer.push: headroom exhausted";
  t.start <- t.start - n;
  t.len <- t.len + n;
  Bytes.fill t.data t.start n '\000';
  if t.l3_ofs >= 0 then t.l3_ofs <- t.l3_ofs + n;
  if t.l4_ofs >= 0 then t.l4_ofs <- t.l4_ofs + n

(** Drop [n] bytes from the front (tunnel decap). *)
let pull t n =
  if n > t.len then failwith "Buffer.pull: packet too short";
  t.start <- t.start + n;
  t.len <- t.len - n;
  if t.l3_ofs >= 0 then t.l3_ofs <- t.l3_ofs - n;
  if t.l4_ofs >= 0 then t.l4_ofs <- t.l4_ofs - n

(** Append [n] zero bytes at the tail, growing the backing store if needed. *)
let put t n =
  let needed = t.start + t.len + n in
  if needed > Bytes.length t.data then begin
    let bigger = Bytes.make (Int.max needed (2 * Bytes.length t.data)) '\000' in
    Bytes.blit t.data 0 bigger 0 (t.start + t.len);
    t.data <- bigger
  end;
  Bytes.fill t.data (t.start + t.len) n '\000';
  t.len <- t.len + n

(** An independent copy (data and metadata). *)
let clone t =
  {
    t with
    data = Bytes.copy t.data;
    regs = Array.copy t.regs;
    offload =
      {
        csum_good = t.offload.csum_good;
        csum_tx_offload = t.offload.csum_tx_offload;
        tso_segsz = t.offload.tso_segsz;
      };
  }

(** The live bytes as a fresh [Bytes.t] (for tests and tcpdump). *)
let contents t = Bytes.sub t.data t.start t.len

let pp ppf t =
  Fmt.pf ppf "pkt[len=%d in_port=%d l3=%d l4=%d recirc=%d]" t.len t.in_port
    t.l3_ofs t.l4_ofs t.recirc_id
