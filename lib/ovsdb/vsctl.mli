(** The ovs-vsctl convenience layer: the commands operators (and the NSX
    agent's scripts) use, each expanded into one atomic OVSDB transaction
    against the Open_vSwitch schema — add-br, add-port, set-interface-type
    and friends. *)

exception Error of string

(** ovs-vsctl add-br BRIDGE [-- set bridge datapath_type=...]; returns
    the new Bridge row's uuid. *)
val add_br : Db.t -> ?datapath_type:string -> string -> Value.uuid

(** ovs-vsctl add-port BRIDGE PORT [-- set interface PORT type=TYPE];
    returns the (Port, Interface) row uuids. *)
val add_port :
  Db.t -> bridge:string -> ?iface_type:string -> string ->
  Value.uuid * Value.uuid

(** ovs-vsctl del-port BRIDGE PORT. *)
val del_port : Db.t -> bridge:string -> string -> unit

(** ovs-vsctl set interface NAME ofport_request / record datapath port. *)
val set_interface_ofport : Db.t -> string -> int -> unit

(** ovs-vsctl list-br / list-ports (sorted). *)
val list_br : Db.t -> string list

val list_ports : Db.t -> bridge:string -> string list

val interface_type : Db.t -> string -> string option
