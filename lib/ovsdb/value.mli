(** OVSDB values, after RFC 7047: atoms, sets and maps. The NSX agent
    configures bridges, ports and interfaces through these (Fig 7's OVSDB
    channel). *)

type uuid = string

(** Deterministic uuid generation: OVSDB semantics need uniqueness, not
    unpredictability. *)
val fresh_uuid : unit -> uuid

type atom =
  | String of string
  | Int of int
  | Real of float
  | Bool of bool
  | Uuid of uuid

type t =
  | Atom of atom
  | Set of atom list  (** unordered, duplicate-free *)
  | Map of (atom * atom) list

val string : string -> t
val int : int -> t
val bool : bool -> t
val uuid : uuid -> t
val empty_set : t

val atom_equal : atom -> atom -> bool

(** Structural equality; sets and maps compare unordered. *)
val equal : t -> t -> bool

(** Set insertion/removal (the [mutate] operation's building blocks).
    @raise Invalid_argument on non-set values. *)
val set_add : t -> atom -> t

val set_remove : t -> atom -> t

(** RFC 7047: a single atom is a one-element set.
    @raise Invalid_argument on maps. *)
val set_members : t -> atom list

val map_get : t -> atom -> atom option
val map_put : t -> atom -> atom -> t

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit

(** Reset uuid generation (test isolation). *)
val reset_uuids : unit -> unit
