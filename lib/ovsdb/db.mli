(** The OVSDB database engine: schema, rows, atomic transactions, and
    monitors — the management channel of Fig 7 (the NSX agent "uses OVSDB,
    a protocol for managing OpenFlow switches, to create two bridges").

    Transactions are lists of operations executed atomically: any failed
    operation rolls the whole transaction back, exactly like the wire
    protocol's semantics. Monitors receive row-level change notifications
    after a successful commit, which is how ovs-vswitchd reconfigures
    itself when the agent writes. *)

type column = { col_name : string; default : Value.t }
type table_schema = { tbl_name : string; columns : column list }
type schema = { db_name : string; tables : table_schema list }

(** The subset of the Open_vSwitch schema the system needs. *)
val open_vswitch_schema : schema

type t

val create : ?schema:schema -> unit -> t

exception Txn_error of string

(** [where] clauses. *)
type condition =
  | Eq of string * Value.t
  | Includes of string * Value.atom  (** set membership *)
  | True

type operation =
  | Insert of {
      op_table : string;
      values : (string * Value.t) list;
      uuid_name : string option;
    }
  | Update of {
      op_table : string;
      where : condition list;
      values : (string * Value.t) list;
    }
  | Mutate of {
      op_table : string;
      where : condition list;
      col : string;
      mutator : [ `Insert of Value.atom | `Delete of Value.atom ];
    }
  | Delete of { op_table : string; where : condition list }
  | Select of { op_table : string; where : condition list }

type op_result =
  | Inserted of Value.uuid
  | Count of int
  | Rows of (Value.uuid * (string * Value.t) list) list

(** Execute one transaction atomically. Returns per-operation results, or
    raises {!Txn_error} after rolling every effect back. The [uuid_name]
    mechanism lets later operations in the same transaction reference rows
    inserted by earlier ones, as the wire protocol's named-uuids do. *)
val transact : t -> operation list -> op_result list

type change =
  | Row_insert of Value.uuid
  | Row_update of Value.uuid
  | Row_delete of Value.uuid

(** Register a monitor on a table; returns an unregister function. *)
val monitor : t -> table:string -> callback:(change -> unit) -> unit -> unit

(* -- convenience reads -- *)

val get_column :
  t -> table:string -> uuid:Value.uuid -> column:string -> Value.t option

val find_rows :
  t ->
  table:string ->
  where:condition list ->
  (Value.uuid * (string * Value.t) list) list

val row_count : t -> table:string -> int
