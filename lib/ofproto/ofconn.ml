(** An OpenFlow switch-side connection: the state machine ovs-vswitchd
    runs for each controller (or NSX agent) session. Feed it wire bytes;
    it applies FLOW_MODs to the pipeline and produces the reply bytes
    (HELLO, ECHO, FEATURES, flow stats). *)

type t = {
  pipeline : Pipeline.t;
  datapath_id : int64;
  mutable hello_received : bool;
  mutable flow_mods : int;
  mutable errors : int;
}

let create ?(datapath_id = 0x00002320L) ~pipeline () =
  { pipeline; datapath_id; hello_received = false; flow_mods = 0; errors = 0 }

(** Process one decoded message; returns reply messages. *)
let handle_msg t ~xid (m : Ofp_codec.msg) : (int * Ofp_codec.msg) list =
  match m with
  | Ofp_codec.Hello ->
      t.hello_received <- true;
      [ (xid, Ofp_codec.Hello) ]
  | Ofp_codec.Echo_request payload -> [ (xid, Ofp_codec.Echo_reply payload) ]
  | Ofp_codec.Features_request ->
      [ (xid,
         Ofp_codec.Features_reply
           { datapath_id = t.datapath_id; n_tables = Pipeline.n_tables t.pipeline }) ]
  | Ofp_codec.Flow_mod { command = `Add; table_id; priority; cookie; match_; actions } ->
      Pipeline.add_flow t.pipeline ~table:table_id ~cookie ~priority match_ actions;
      t.flow_mods <- t.flow_mods + 1;
      []
  | Ofp_codec.Flow_mod { command = `Modify; table_id; priority; cookie; match_; actions } ->
      (* OFPFC_MODIFY with our non-strict matcher: replace the rules the
         spec covers by one rule with the new actions. Delete-then-add
         keeps classifier invariants (max_priority, subtable GC) exact. *)
      ignore (Pipeline.del_flows ~table:table_id t.pipeline match_);
      Pipeline.add_flow t.pipeline ~table:table_id ~cookie ~priority match_ actions;
      t.flow_mods <- t.flow_mods + 1;
      []
  | Ofp_codec.Flow_mod { command = `Delete; table_id; match_; _ } ->
      (* table 0xFF is OFPTT_ALL: delete from every table *)
      let table = if table_id = 0xFF then None else Some table_id in
      ignore (Pipeline.del_flows ?table t.pipeline match_);
      t.flow_mods <- t.flow_mods + 1;
      []
  | Ofp_codec.Flow_stats_request { table_id } ->
      let rows = ref [] in
      Table.iter t.pipeline.Pipeline.tables.(table_id) (fun r ->
          rows := (table_id, r.Table.priority, r.Table.hits) :: !rows);
      [ (xid, Ofp_codec.Flow_stats_reply (List.rev !rows)) ]
  | Ofp_codec.Echo_reply _ | Ofp_codec.Features_reply _ | Ofp_codec.Packet_in _
  | Ofp_codec.Flow_stats_reply _ | Ofp_codec.Error _ ->
      []  (* controller-to-switch only handles requests *)
  | Ofp_codec.Packet_out _ -> []  (* packet injection handled by the caller *)

(** Feed raw bytes (possibly several concatenated messages); returns the
    encoded replies. Malformed input produces an OFPT_ERROR instead of
    tearing the session down. *)
let feed t (input : Bytes.t) : Bytes.t =
  let out = Stdlib.Buffer.create 64 in
  let pos = ref 0 in
  (try
     while Bytes.length input - !pos >= 8 do
       let chunk = Bytes.sub input !pos (Bytes.length input - !pos) in
       let m, xid, consumed = Ofp_codec.decode chunk in
       pos := !pos + consumed;
       List.iter
         (fun (rx, reply) ->
           Stdlib.Buffer.add_bytes out (Ofp_codec.encode ~xid:rx reply))
         (handle_msg t ~xid m)
     done
   with Ofp_codec.Decode_error _ ->
     t.errors <- t.errors + 1;
     Stdlib.Buffer.add_bytes out
       (Ofp_codec.encode ~xid:0 (Ofp_codec.Error { err_type = 1; code = 0 })));
  Stdlib.Buffer.to_bytes out
