(** Live reconfiguration: OVSDB-driven plans of control-plane churn
    applied through the OpenFlow wire path while traffic flows.

    A {!plan} is a timed sequence of rule inserts/modifies/deletes and
    whole-table-set swaps — what an NSX-style manager writes during a
    policy rollout or an upgrade. Plans live as rows in an OVSDB table
    ({!schema}); {!attach} registers a monitor so committing rows drives
    the switch exactly like ovs-vswitchd reconfiguring on a database
    write (Fig 7's management channel). Every rule change travels as an
    encoded FLOW_MOD through {!Ofconn.feed} — nothing short-circuits the
    wire.

    Swaps come in two styles (Sec 6's upgrade argument, made dynamic):
    - [Naive]: delete everything in place, then install the replacement.
      Between the delete barrage and the last add the classifier is
      incomplete; with the megaflow cache revalidated, misses translate
      against half-built tables and packets vanish — the loss window.
    - [Two_phase]: populate a complete shadow pipeline off to the side,
      then cut the classifier pointer over atomically
      ({!Dpif.swap_pipeline}). Lookups see a consistent table set at
      every instant, so the swap is hitless: the only cost is the
      megaflow-invalidation storm (evictions + upcall burst), which this
      module's {!upgrade_report} quantifies. *)

module Db = Ovs_ovsdb.Db
module Value = Ovs_ovsdb.Value

exception Reconfig_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Reconfig_error m)) fmt

type swap_style = Naive | Two_phase

let pp_style = function Naive -> "naive" | Two_phase -> "two-phase"

(** One churn operation. Rule specs use the [ovs-ofctl] textual syntax
    ({!Parser}); a delete spec is match-only and may name a table
    (omitted = all tables, OFPTT_ALL on the wire). *)
type op =
  | Insert of string
  | Modify of string
  | Delete of string
  | Swap of { swap_style : swap_style; swap_flows : string list }

type event = { at_s : float;  (** virtual seconds into the run *) ops : op list }

type plan = { plan_name : string; events : event list }

(* ------------------------------------------------------ textual plans *)

(* One op per line: "@AT insert FLOW", "@AT modify FLOW",
   "@AT delete MATCH", "@AT swap FLOW; FLOW; ...", "@AT swap-naive ...".
   Blank lines and #-comments are skipped. Ops sharing a timestamp fold
   into one event; events sort by time (ties keep line order). *)
let parse_op_line line =
  match String.index_opt line ' ' with
  | None -> fail "bad plan line %S (want \"@AT OP SPEC\")" line
  | Some i ->
      let at = String.sub line 0 i in
      if String.length at < 2 || at.[0] <> '@' then
        fail "bad timestamp %S (want @SECONDS)" at;
      let at_s =
        try float_of_string (String.sub at 1 (String.length at - 1))
        with Failure _ -> fail "bad timestamp %S" at
      in
      let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      let op, spec =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some j ->
            ( String.sub rest 0 j,
              String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      let flows_of spec =
        String.split_on_char ';' spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let op =
        match op with
        | "insert" -> Insert spec
        | "modify" -> Modify spec
        | "delete" -> Delete spec
        | "swap" -> Swap { swap_style = Two_phase; swap_flows = flows_of spec }
        | "swap-naive" -> Swap { swap_style = Naive; swap_flows = flows_of spec }
        | other -> fail "unknown plan op %S" other
      in
      (at_s, op)

let group_events (timed : (float * op) list) : event list =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) timed
  in
  List.fold_left
    (fun acc (at_s, op) ->
      match acc with
      | { at_s = t; ops } :: tl when t = at_s -> { at_s = t; ops = ops @ [ op ] } :: tl
      | _ -> { at_s; ops = [ op ] } :: acc)
    [] sorted
  |> List.rev

let plan_of_string ~name text =
  let timed =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.map parse_op_line
  in
  { plan_name = name; events = group_events timed }

let op_count plan =
  List.fold_left (fun n e -> n + List.length e.ops) 0 plan.events

(* ------------------------------------------------------- OVSDB plans *)

(** The churn database: one row per operation. [seq] preserves plan
    order; [op] is the verb; [spec] the flow/match text (swap flows
    joined by ';'). *)
let schema =
  let col ?(default = Value.string "") col_name = { Db.col_name; default } in
  {
    Db.db_name = "Reconfig";
    tables =
      [
        {
          Db.tbl_name = "Churn_op";
          columns =
            [
              col "plan";
              col ~default:(Value.int 0) "seq";
              col ~default:(Value.Atom (Value.Real 0.)) "at_s";
              col "op";
              col "spec";
            ];
        };
      ];
  }

let verb_and_spec = function
  | Insert s -> ("insert", s)
  | Modify s -> ("modify", s)
  | Delete s -> ("delete", s)
  | Swap { swap_style = Two_phase; swap_flows } ->
      ("swap", String.concat "; " swap_flows)
  | Swap { swap_style = Naive; swap_flows } ->
      ("swap-naive", String.concat "; " swap_flows)

let op_of_verb verb spec =
  match parse_op_line (Printf.sprintf "@0 %s %s" verb spec) with
  | _, op -> op

(** Write a plan as one atomic transaction (all rows commit or none —
    a half-written plan never reaches the monitor). *)
let store_plan db plan =
  let seq = ref 0 in
  let ops =
    List.concat_map
      (fun e ->
        List.map
          (fun op ->
            let verb, spec = verb_and_spec op in
            incr seq;
            Db.Insert
              {
                op_table = "Churn_op";
                values =
                  [
                    ("plan", Value.string plan.plan_name);
                    ("seq", Value.int !seq);
                    ("at_s", Value.Atom (Value.Real e.at_s));
                    ("op", Value.string verb);
                    ("spec", Value.string spec);
                  ];
                uuid_name = None;
              })
          e.ops)
      plan.events
  in
  ignore (Db.transact db ops)

let row_op row =
  let str col =
    match List.assoc_opt col row with
    | Some (Value.Atom (Value.String s)) -> s
    | _ -> fail "Churn_op row: bad column %S" col
  in
  let seq =
    match List.assoc_opt "seq" row with
    | Some (Value.Atom (Value.Int n)) -> n
    | _ -> fail "Churn_op row: bad seq"
  in
  let at_s =
    match List.assoc_opt "at_s" row with
    | Some (Value.Atom (Value.Real r)) -> r
    | Some (Value.Atom (Value.Int n)) -> float_of_int n
    | _ -> fail "Churn_op row: bad at_s"
  in
  (seq, at_s, op_of_verb (str "op") (str "spec"))

(** Read a plan back out of the database (ops in [seq] order, regrouped
    into timed events). *)
let load_plan db ~name =
  let rows =
    Db.find_rows db ~table:"Churn_op"
      ~where:[ Db.Eq ("plan", Value.string name) ]
  in
  let timed =
    List.map (fun (_u, row) -> row_op row) rows
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    |> List.map (fun (_, at_s, op) -> (at_s, op))
  in
  { plan_name = name; events = group_events timed }

(* ---------------------------------------------------- wire application *)

let flow_mod_of_line command line =
  let f = Parser.parse_flow line in
  Ofp_codec.Flow_mod
    {
      command;
      table_id = f.Parser.table;
      priority = f.Parser.priority;
      cookie = f.Parser.cookie;
      match_ = f.Parser.match_;
      actions = f.Parser.actions;
    }

(** Encode one op as its OpenFlow message. Swaps are programs, not
    messages — {!wire_of_swap} below. *)
let msg_of_op = function
  | Insert line -> flow_mod_of_line `Add line
  | Modify line -> flow_mod_of_line `Modify line
  | Delete spec ->
      let table, match_ = Parser.parse_match_spec spec in
      let table_id = match table with Some tbl -> tbl | None -> 0xFF in
      Ofp_codec.Flow_mod
        { command = `Delete; table_id; priority = 0; cookie = 0; match_; actions = [] }
  | Swap _ -> fail "a swap is not a single wire message"

let wire_of_ops ops =
  let out = Stdlib.Buffer.create 256 in
  List.iter
    (fun op -> Stdlib.Buffer.add_bytes out (Ofp_codec.encode (msg_of_op op)))
    ops;
  Stdlib.Buffer.to_bytes out

(** The naive swap's wire program: the delete barrage (OFPTT_ALL
    catchall), then the replacement adds. The caller interleaves traffic
    between the two halves — that interval is the loss window. *)
let wire_delete_all () =
  Ofp_codec.encode
    (Ofp_codec.Flow_mod
       {
         command = `Delete;
         table_id = 0xFF;
         priority = 0;
         cookie = 0;
         match_ = Match_.catchall ();
         actions = [];
       })

let wire_adds flows = wire_of_ops (List.map (fun l -> Insert l) flows)

(** Feed ops through the switch connection; returns how many FLOW_MODs
    the switch applied. Any OFPT_ERROR reply aborts the plan. *)
let apply_ops conn ops =
  let mods0 = conn.Ofconn.flow_mods and errs0 = conn.Ofconn.errors in
  ignore (Ofconn.feed conn (wire_of_ops ops));
  if conn.Ofconn.errors > errs0 then
    fail "switch rejected %d of %d ops" (conn.Ofconn.errors - errs0)
      (List.length ops);
  conn.Ofconn.flow_mods - mods0

(** Build the two-phase upgrade's shadow: a complete replacement
    pipeline populated through its own wire connection, sharing the live
    pipeline's shape and port set, ready for the atomic cutover.
    Returns the shadow and the number of FLOW_MODs it took. *)
let build_shadow ~(like : Pipeline.t) flows =
  let shadow = Pipeline.create ~n_tables:(Pipeline.n_tables like) () in
  Pipeline.set_ports shadow like.Pipeline.ports;
  let conn = Ofconn.create ~pipeline:shadow () in
  let mods = apply_ops conn (List.map (fun l -> Insert l) flows) in
  (shadow, mods)

(* ------------------------------------------- the OVSDB-driven loop *)

(** Reconfigure-on-commit, like ovs-vswitchd: register a monitor on the
    churn table so every committed row is decoded and applied through
    [conn] immediately (swaps go to [on_swap] — they need the datapath's
    cutover point, which lives above this library). Returns the
    unregister function and a counter of applied ops. *)
let attach db ~conn ?(on_swap = fun _ _ -> ()) () =
  let applied = ref 0 in
  let unregister =
    Db.monitor db ~table:"Churn_op" ~callback:(fun change ->
        match change with
        | Db.Row_insert u -> (
            match Db.find_rows db ~table:"Churn_op" ~where:[ Db.True ] with
            | rows -> (
                match List.assoc_opt u rows with
                | None -> ()
                | Some row -> (
                    let _, _, op = row_op row in
                    incr applied;
                    match op with
                    | Swap { swap_style; swap_flows } -> on_swap swap_style swap_flows
                    | op -> ignore (apply_ops conn [ op ]))))
        | Db.Row_update _ | Db.Row_delete _ -> ())
  in
  (unregister, applied)

(* -------------------------------------------------- upgrade reporting *)

(** What one swap cost, measured by the rig that ran it: the shadow
    build, the invalidation storm at cutover, and the loss window (zero
    for two-phase — that is the gate). *)
type upgrade_report = {
  up_style : swap_style;
  up_leg : string;  (** which datapath leg ran it *)
  up_shadow_rules : int;  (** rules populated before cutover (0 for naive) *)
  up_flow_mods : int;  (** wire messages the swap took *)
  up_evicted : int;  (** megaflows evicted by the invalidation storm *)
  up_upcall_burst : int;  (** upcalls in the post-swap window *)
  up_offered : int;  (** packets offered during the swap window *)
  up_delivered : int;  (** packets delivered during the swap window *)
  up_lost : int;  (** offered - delivered - counted drops *)
  up_recovery_ns : float;  (** virtual time to restored delivery *)
}

(** The [dpif/upgrade-show] body. *)
let render_upgrade r add =
  add (Printf.sprintf "upgrade: %s cutover on %s" (pp_style r.up_style) r.up_leg);
  add
    (Printf.sprintf "  shadow rules: %d (%d flow_mods on the wire)"
       r.up_shadow_rules r.up_flow_mods);
  add
    (Printf.sprintf "  invalidation storm: %d megaflows evicted, %d upcalls"
       r.up_evicted r.up_upcall_burst);
  add
    (Printf.sprintf "  window: offered %d delivered %d lost %d" r.up_offered
       r.up_delivered r.up_lost);
  add (Printf.sprintf "  time to recovery: %.0f ns" r.up_recovery_ns)
