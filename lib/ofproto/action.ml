(** OpenFlow-level actions (what the controller installs) and datapath
    actions (what translation emits into megaflows). The split mirrors
    ofproto vs odp-execute in OVS. *)

module FK = Ovs_packet.Flow_key

type nat_spec = {
  snat : (int * int) option;  (** translate source to (ip, port) *)
  dnat : (int * int) option;
}

type tunnel_spec = {
  tnl_kind : Ovs_packet.Tunnel.kind;
  vni : int;
  remote_ip : int;
  local_ip : int;
  remote_mac : Ovs_packet.Mac.t;
  local_mac : Ovs_packet.Mac.t;
  out_port : int;  (** underlay port to emit the encapsulated frame on *)
}

(** Controller-visible actions. *)
type t =
  | Output of int
  | In_port_output  (** output:in_port *)
  | Normal  (** L2 learning-switch behaviour *)
  | Flood
  | Drop
  | Set_field of FK.Field.t * int
  | Move of FK.Field.t * FK.Field.t
      (** copy src field into dst field (NXAST_REG_MOVE); translation
          resolves the copied value concretely, exact-matching the
          source field in the megaflow — the policy compiler's
          save/restore machinery *)
  | Push_vlan of int  (** the TCI to push *)
  | Pop_vlan
  | Tunnel_push of tunnel_spec
  | Tunnel_pop of int
      (** decapsulate, then recirculate into the given table to match on
          the inner packet (OVS recirculates after tnl_pop) *)
  | Ct of { zone : int; commit : bool; nat : nat_spec option; table : int option }
  | Goto_table of int
  | Meter of int  (** rate-limit through meter id (Sec 6: QoS stand-in) *)
  | Controller  (** punt to the controller (slow) *)

(** Datapath actions: the fully resolved form cached in megaflows. *)
type odp =
  | Odp_output of int
  | Odp_drop
  | Odp_set of FK.Field.t * int
  | Odp_push_vlan of int
  | Odp_pop_vlan
  | Odp_tnl_push of tunnel_spec
  | Odp_tnl_pop of int  (** decap + recirculate into the given table *)
  | Odp_ct of { zone : int; commit : bool; nat : nat_spec option; resume_table : int }
  | Odp_meter of int
  | Odp_userspace  (** punt to ovs-vswitchd (controller action) *)

let pp ppf = function
  | Output p -> Fmt.pf ppf "output:%d" p
  | In_port_output -> Fmt.string ppf "in_port"
  | Normal -> Fmt.string ppf "NORMAL"
  | Flood -> Fmt.string ppf "FLOOD"
  | Drop -> Fmt.string ppf "drop"
  | Set_field (f, v) -> Fmt.pf ppf "set_field:%s=0x%x" (FK.Field.name f) v
  | Move (src, dst) ->
      Fmt.pf ppf "move:%s->%s" (FK.Field.name src) (FK.Field.name dst)
  | Push_vlan tci -> Fmt.pf ppf "push_vlan:%d" (tci land 0xFFF)
  | Pop_vlan -> Fmt.string ppf "pop_vlan"
  | Tunnel_push ts ->
      Fmt.pf ppf "%s(vni=%d,remote=%s)"
        (Ovs_packet.Tunnel.kind_to_string ts.tnl_kind)
        ts.vni
        (Ovs_packet.Ipv4.addr_to_string ts.remote_ip)
  | Tunnel_pop t -> Fmt.pf ppf "tnl_pop,goto_table:%d" t
  | Ct { zone; commit; table; _ } ->
      Fmt.pf ppf "ct(%szone=%d%s)"
        (if commit then "commit," else "")
        zone
        (match table with Some t -> Printf.sprintf ",table=%d" t | None -> "")
  | Goto_table n -> Fmt.pf ppf "goto_table:%d" n
  | Meter m -> Fmt.pf ppf "meter:%d" m
  | Controller -> Fmt.string ppf "CONTROLLER"

let pp_odp ppf = function
  | Odp_output p -> Fmt.pf ppf "output(%d)" p
  | Odp_drop -> Fmt.string ppf "drop"
  | Odp_set (f, v) -> Fmt.pf ppf "set(%s=0x%x)" (FK.Field.name f) v
  | Odp_push_vlan tci -> Fmt.pf ppf "push_vlan(%d)" (tci land 0xFFF)
  | Odp_pop_vlan -> Fmt.string ppf "pop_vlan"
  | Odp_tnl_push ts -> Fmt.pf ppf "tnl_push(vni=%d)" ts.vni
  | Odp_tnl_pop t -> Fmt.pf ppf "tnl_pop,recirc(%d)" t
  | Odp_ct { zone; resume_table; _ } ->
      Fmt.pf ppf "ct(zone=%d),recirc(%d)" zone resume_table
  | Odp_meter m -> Fmt.pf ppf "meter(%d)" m
  | Odp_userspace -> Fmt.string ppf "userspace"
