(** OpenFlow 1.3 wire codec: the binary protocol the NSX agent speaks to
    ovs-vswitchd (Fig 7). Implements the subset the system needs — HELLO,
    ECHO, FEATURES, FLOW_MOD with OXM matches and apply-actions/goto-table
    instructions, PACKET_IN/OUT, and multipart flow stats.

    Standard fields use the ONF OPENFLOW_BASIC OXM class with their real
    field numbers; the OVS-specific fields (conntrack state, registers,
    tunnel endpoints) ride an experimenter OXM class, as Open vSwitch's
    NXM extensions do in reality. *)

module FK = Ovs_packet.Flow_key

let version = 0x04 (* OpenFlow 1.3 *)

type msg =
  | Hello
  | Error of { err_type : int; code : int }
  | Echo_request of Bytes.t
  | Echo_reply of Bytes.t
  | Features_request
  | Features_reply of { datapath_id : int64; n_tables : int }
  | Packet_in of {
      total_len : int;
      reason : int;
      table_id : int;
      in_port : int;
      data : Bytes.t;
    }
  | Packet_out of { in_port : int; actions : Action.t list; data : Bytes.t }
  | Flow_mod of {
      command : [ `Add | `Modify | `Delete ];
      table_id : int;
      priority : int;
      cookie : int;
      match_ : Match_.t;
      actions : Action.t list;  (** apply-actions + trailing goto, flattened *)
    }
  | Flow_stats_request of { table_id : int }
  | Flow_stats_reply of (int * int * int) list  (** (table, priority, n_packets) *)

exception Decode_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Decode_error m)) fmt

(* -- a growable big-endian writer -- *)

module W = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 256; len = 0 }

  let ensure t n =
    if t.len + n > Bytes.length t.buf then begin
      let bigger = Bytes.create (Int.max (t.len + n) (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.len v;
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len (Int32.of_int v);
    t.len <- t.len + 4

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let bytes t b =
    ensure t (Bytes.length b);
    Bytes.blit b 0 t.buf t.len (Bytes.length b);
    t.len <- t.len + Bytes.length b

  let zeros t n =
    ensure t n;
    Bytes.fill t.buf t.len n '\000';
    t.len <- t.len + n

  (* reserve space for a 16-bit length and patch it later *)
  let patch_u16 t ~at v = Bytes.set_uint16_be t.buf at v

  let contents t = Bytes.sub t.buf 0 t.len
end

(* -- a bounds-checked reader -- *)

module R = struct
  type t = { buf : Bytes.t; mutable pos : int; stop : int }

  let of_bytes ?(pos = 0) ?stop buf =
    { buf; pos; stop = Option.value stop ~default:(Bytes.length buf) }

  let remaining t = t.stop - t.pos

  let need t n = if remaining t < n then fail "truncated message (need %d bytes)" n

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_be t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8;
    let v = Bytes.get_int64_be t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let bytes t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let skip t n =
    need t n;
    t.pos <- t.pos + n

  let sub t n =
    need t n;
    let r = { buf = t.buf; pos = t.pos; stop = t.pos + n } in
    t.pos <- t.pos + n;
    r
end

(* -- OXM encoding -- *)

let oxm_basic = 0x8000
let oxm_experimenter = 0xFFFF
let nx_experimenter_id = 0x00002320 (* Nicira, as OVS extensions use *)

(* ONF basic field numbers for the fields that have one; the experimenter
   class carries the rest keyed by our own Field index *)
let basic_number ~nw_proto = function
  | FK.Field.In_port -> Some (0, 4)
  | FK.Field.Dl_dst -> Some (3, 6)
  | FK.Field.Dl_src -> Some (4, 6)
  | FK.Field.Dl_type -> Some (5, 2)
  | FK.Field.Vlan_tci -> Some (6, 2)
  | FK.Field.Nw_tos -> Some (8, 1)
  | FK.Field.Nw_proto -> Some (10, 1)
  | FK.Field.Nw_src -> Some (11, 4)
  | FK.Field.Nw_dst -> Some (12, 4)
  | FK.Field.Tp_src ->
      if nw_proto = Ovs_packet.Ipv4.Proto.udp then Some (15, 2) else Some (13, 2)
  | FK.Field.Tp_dst ->
      if nw_proto = Ovs_packet.Ipv4.Proto.udp then Some (16, 2) else Some (14, 2)
  | FK.Field.Tun_id -> Some (38, 8)
  | _ -> None

let field_of_basic = function
  | 0 -> (FK.Field.In_port, 4)
  | 3 -> (FK.Field.Dl_dst, 6)
  | 4 -> (FK.Field.Dl_src, 6)
  | 5 -> (FK.Field.Dl_type, 2)
  | 6 -> (FK.Field.Vlan_tci, 2)
  | 8 -> (FK.Field.Nw_tos, 1)
  | 10 -> (FK.Field.Nw_proto, 1)
  | 11 -> (FK.Field.Nw_src, 4)
  | 12 -> (FK.Field.Nw_dst, 4)
  | 13 | 15 -> (FK.Field.Tp_src, 2)
  | 14 | 16 -> (FK.Field.Tp_dst, 2)
  | 38 -> (FK.Field.Tun_id, 8)
  | n -> fail "unknown OXM basic field %d" n

let write_value w ~size v =
  match size with
  | 1 -> W.u8 w (v land 0xFF)
  | 2 -> W.u16 w (v land 0xFFFF)
  | 4 -> W.u32 w v
  | 6 ->
      W.u16 w ((v lsr 32) land 0xFFFF);
      W.u32 w (v land 0xFFFFFFFF)
  | 8 -> W.u64 w (Int64.of_int v)
  | n -> invalid_arg (Printf.sprintf "write_value: size %d" n)

let read_value r ~size =
  match size with
  | 1 -> R.u8 r
  | 2 -> R.u16 r
  | 4 -> R.u32 r
  | 6 ->
      let hi = R.u16 r in
      let lo = R.u32 r in
      (hi lsl 32) lor lo
  | 8 -> Int64.to_int (R.u64 r)
  | n -> fail "read_value: size %d" n

(* encode a match as an OXM list (with the ofp_match wrapper) *)
let encode_match w (m : Match_.t) =
  let start = w.W.len in
  W.u16 w 1 (* OFPMT_OXM *);
  let len_at = w.W.len in
  W.u16 w 0 (* patched below *);
  let nw_proto = FK.get m.Match_.key FK.Field.Nw_proto in
  Array.iter
    (fun f ->
      let mask = FK.get m.Match_.mask f in
      if mask <> 0 then begin
        let value = FK.get m.Match_.key f in
        let full = FK.Field.full_mask f in
        let has_mask = mask <> full in
        match basic_number ~nw_proto f with
        | Some (number, size) ->
            W.u16 w oxm_basic;
            W.u8 w ((number lsl 1) lor if has_mask then 1 else 0);
            W.u8 w (if has_mask then 2 * size else size);
            write_value w ~size value;
            if has_mask then write_value w ~size mask
        | None ->
            (* experimenter OXM: class, field = our index, 4-byte exp id *)
            W.u16 w oxm_experimenter;
            W.u8 w ((FK.Field.to_index f lsl 1) lor if has_mask then 1 else 0);
            let size = 8 in
            W.u8 w ((if has_mask then 2 * size else size) + 4);
            W.u32 w nx_experimenter_id;
            write_value w ~size value;
            if has_mask then write_value w ~size mask
      end)
    FK.Field.all;
  let match_len = w.W.len - start in
  W.patch_u16 w ~at:len_at match_len;
  (* pad to 8 bytes *)
  let pad = (8 - (match_len mod 8)) mod 8 in
  W.zeros w pad

let decode_match r : Match_.t =
  let m = Match_.catchall () in
  let typ = R.u16 r in
  if typ <> 1 then fail "unsupported match type %d" typ;
  let match_len = R.u16 r in
  if match_len < 4 then fail "bad match length %d" match_len;
  let body = R.sub r (match_len - 4) in
  let pad = (8 - (match_len mod 8)) mod 8 in
  R.skip r pad;
  while R.remaining body > 0 do
    let cls = R.u16 body in
    let fm = R.u8 body in
    let has_mask = fm land 1 = 1 in
    let number = fm lsr 1 in
    let _payload = R.u8 body in
    if cls = oxm_basic then begin
      let field, size = field_of_basic number in
      let value = read_value body ~size in
      let mask = if has_mask then read_value body ~size else FK.Field.full_mask field in
      ignore (Match_.with_masked m field value mask)
    end
    else if cls = oxm_experimenter then begin
      let exp = R.u32 body in
      if exp <> nx_experimenter_id then fail "unknown experimenter 0x%x" exp;
      if number < 0 || number >= FK.Field.count then fail "bad experimenter field %d" number;
      let field = FK.Field.all.(number) in
      let size = 8 in
      let value = read_value body ~size in
      let mask = if has_mask then read_value body ~size else FK.Field.full_mask field in
      ignore (Match_.with_masked m field value mask)
    end
    else fail "unknown OXM class 0x%x" cls
  done;
  m

(* -- actions -- *)

(* experimenter action subtypes for the OVS-only actions *)
let nxast_ct = 35
let nxast_tnl_push = 120
let nxast_tnl_pop = 121
let nxast_normal = 122
let nxast_flood = 123
let nxast_controller = 124
let nxast_in_port = 125
let nxast_reg_move = 126

let encode_action w (a : Action.t) =
  let experimenter subtype body =
    let start = w.W.len in
    W.u16 w 0xFFFF;
    let len_at = w.W.len in
    W.u16 w 0;
    W.u32 w nx_experimenter_id;
    W.u16 w subtype;
    body ();
    let pad = (8 - ((w.W.len - start) mod 8)) mod 8 in
    W.zeros w pad;
    W.patch_u16 w ~at:len_at (w.W.len - start)
  in
  match a with
  | Action.Output port ->
      W.u16 w 0 (* OFPAT_OUTPUT *);
      W.u16 w 16;
      W.u32 w port;
      W.u16 w 0xFFFF (* max_len *);
      W.zeros w 6
  | Action.Push_vlan _tci ->
      W.u16 w 17;
      W.u16 w 8;
      W.u16 w 0x8100;
      W.zeros w 2
  | Action.Pop_vlan ->
      W.u16 w 18;
      W.u16 w 8;
      W.zeros w 4
  | Action.Set_field (f, v) ->
      (* OFPAT_SET_FIELD with a single OXM TLV *)
      let start = w.W.len in
      W.u16 w 25;
      let len_at = w.W.len in
      W.u16 w 0;
      (match basic_number ~nw_proto:6 f with
      | Some (number, size) ->
          W.u16 w oxm_basic;
          W.u8 w (number lsl 1);
          W.u8 w size;
          write_value w ~size v
      | None ->
          W.u16 w oxm_experimenter;
          W.u8 w (FK.Field.to_index f lsl 1);
          W.u8 w (8 + 4);
          W.u32 w nx_experimenter_id;
          write_value w ~size:8 v);
      let pad = (8 - ((w.W.len - start) mod 8)) mod 8 in
      W.zeros w pad;
      W.patch_u16 w ~at:len_at (w.W.len - start)
  | Action.Ct { zone; commit; nat; table } ->
      experimenter nxast_ct (fun () ->
          W.u8 w (if commit then 1 else 0);
          W.u16 w zone;
          W.u8 w (match table with Some t -> t | None -> 0xFF);
          (match nat with
          | None -> W.u8 w 0
          | Some { Action.snat; dnat } ->
              W.u8 w 1;
              let enc = function
                | None -> W.u8 w 0
                | Some (ip, port) ->
                    W.u8 w 1;
                    W.u32 w ip;
                    W.u16 w port
              in
              enc snat;
              enc dnat))
  | Action.Tunnel_push ts ->
      experimenter nxast_tnl_push (fun () ->
          W.u8 w
            (match ts.Action.tnl_kind with
            | Ovs_packet.Tunnel.Geneve -> 0
            | Ovs_packet.Tunnel.Vxlan -> 1
            | Ovs_packet.Tunnel.Gre -> 2
            | Ovs_packet.Tunnel.Erspan -> 3);
          W.u32 w ts.Action.vni;
          W.u32 w ts.Action.remote_ip;
          W.u32 w ts.Action.local_ip;
          W.u64 w (Int64.of_int ts.Action.remote_mac);
          W.u64 w (Int64.of_int ts.Action.local_mac);
          W.u32 w ts.Action.out_port)
  | Action.Tunnel_pop resume -> experimenter nxast_tnl_pop (fun () -> W.u8 w resume)
  | Action.Normal -> experimenter nxast_normal (fun () -> ())
  | Action.Flood -> experimenter nxast_flood (fun () -> ())
  | Action.Controller -> experimenter nxast_controller (fun () -> ())
  | Action.In_port_output -> experimenter nxast_in_port (fun () -> ())
  | Action.Move (src, dst) ->
      experimenter nxast_reg_move (fun () ->
          W.u8 w (FK.Field.to_index src);
          W.u8 w (FK.Field.to_index dst))
  | Action.Drop -> ()  (* drop is the absence of actions *)
  | Action.Goto_table _ | Action.Meter _ ->
      invalid_arg "encode_action: instruction-level action"

let decode_action r : Action.t option =
  let typ = R.u16 r in
  let len = R.u16 r in
  if len < 4 then fail "bad action length %d" len;
  let body = R.sub r (len - 4) in
  match typ with
  | 0 ->
      let port = R.u32 body in
      Some (Action.Output port)
  | 17 -> Some (Action.Push_vlan 0)
  | 18 -> Some Action.Pop_vlan
  | 25 -> begin
      let cls = R.u16 body in
      let fm = R.u8 body in
      let number = fm lsr 1 in
      let _sz = R.u8 body in
      if cls = oxm_basic then begin
        let field, size = field_of_basic number in
        Some (Action.Set_field (field, read_value body ~size))
      end
      else begin
        let exp = R.u32 body in
        if exp <> nx_experimenter_id then fail "set_field experimenter 0x%x" exp;
        let field = FK.Field.all.(number) in
        Some (Action.Set_field (field, read_value body ~size:8))
      end
    end
  | 0xFFFF -> begin
      let exp = R.u32 body in
      if exp <> nx_experimenter_id then fail "unknown action experimenter 0x%x" exp;
      let subtype = R.u16 body in
      if subtype = nxast_ct then begin
        let commit = R.u8 body = 1 in
        let zone = R.u16 body in
        let tbl = R.u8 body in
        let table = if tbl = 0xFF then None else Some tbl in
        let nat =
          if R.u8 body = 0 then None
          else begin
            let dec () = if R.u8 body = 1 then begin
                let ip = R.u32 body in
                let port = R.u16 body in
                Some (ip, port)
              end
              else None
            in
            let snat = dec () in
            let dnat = dec () in
            Some { Action.snat; dnat }
          end
        in
        Some (Action.Ct { zone; commit; nat; table })
      end
      else if subtype = nxast_tnl_push then begin
        let kind =
          match R.u8 body with
          | 0 -> Ovs_packet.Tunnel.Geneve
          | 1 -> Ovs_packet.Tunnel.Vxlan
          | 2 -> Ovs_packet.Tunnel.Gre
          | _ -> Ovs_packet.Tunnel.Erspan
        in
        let vni = R.u32 body in
        let remote_ip = R.u32 body in
        let local_ip = R.u32 body in
        let remote_mac = Int64.to_int (R.u64 body) in
        let local_mac = Int64.to_int (R.u64 body) in
        let out_port = R.u32 body in
        Some
          (Action.Tunnel_push
             { Action.tnl_kind = kind; vni; remote_ip; local_ip; remote_mac;
               local_mac; out_port })
      end
      else if subtype = nxast_tnl_pop then Some (Action.Tunnel_pop (R.u8 body))
      else if subtype = nxast_normal then Some Action.Normal
      else if subtype = nxast_flood then Some Action.Flood
      else if subtype = nxast_controller then Some Action.Controller
      else if subtype = nxast_in_port then Some Action.In_port_output
      else if subtype = nxast_reg_move then begin
        let src = FK.Field.all.(R.u8 body) in
        let dst = FK.Field.all.(R.u8 body) in
        Some (Action.Move (src, dst))
      end
      else fail "unknown experimenter action subtype %d" subtype
    end
  | t -> fail "unknown action type %d" t

(* instructions: apply-actions (4), goto-table (1), meter (6) *)
let encode_instructions w (actions : Action.t list) =
  let gotos, meters, plain =
    List.fold_left
      (fun (g, m, p) a ->
        match a with
        | Action.Goto_table t -> (Some t, m, p)
        | Action.Meter id -> (g, Some id, p)
        | other -> (g, m, other :: p))
      (None, None, []) actions
  in
  let plain = List.rev plain in
  (match meters with
  | Some id ->
      W.u16 w 6;
      W.u16 w 8;
      W.u32 w id
  | None -> ());
  (* apply-actions, even when empty (an explicit drop) *)
  let start = w.W.len in
  W.u16 w 4;
  let len_at = w.W.len in
  W.u16 w 0;
  W.zeros w 4;
  List.iter (encode_action w) plain;
  W.patch_u16 w ~at:len_at (w.W.len - start);
  match gotos with
  | Some t ->
      W.u16 w 1;
      W.u16 w 8;
      W.u8 w t;
      W.zeros w 3
  | None -> ()

let decode_instructions r : Action.t list =
  let actions = ref [] and goto = ref None and meter = ref None in
  let saw_apply = ref false in
  while R.remaining r > 0 do
    let typ = R.u16 r in
    let len = R.u16 r in
    if len < 4 then fail "bad instruction length";
    let body = R.sub r (len - 4) in
    match typ with
    | 1 -> goto := Some (R.u8 body)
    | 6 -> meter := Some (R.u32 body)
    | 4 ->
        saw_apply := true;
        R.skip body 4;
        while R.remaining body > 0 do
          match decode_action body with
          | Some a -> actions := a :: !actions
          | None -> ()
        done
    | _ -> ()  (* ignore unknown instructions, as real switches do *)
  done;
  let base = List.rev !actions in
  (* an empty apply-actions instruction is the wire form of an explicit
     drop (that is how {!encode_action} emits [Action.Drop]); restore it
     so a matched rule drops visibly instead of emitting nothing *)
  let base =
    if base = [] && !saw_apply && !goto = None then [ Action.Drop ] else base
  in
  let base = match !meter with Some id -> Action.Meter id :: base | None -> base in
  match !goto with Some t -> base @ [ Action.Goto_table t ] | None -> base

(* -- messages -- *)

let msg_type = function
  | Hello -> 0
  | Error _ -> 1
  | Echo_request _ -> 2
  | Echo_reply _ -> 3
  | Features_request -> 5
  | Features_reply _ -> 6
  | Packet_in _ -> 10
  | Packet_out _ -> 13
  | Flow_mod _ -> 14
  | Flow_stats_request _ -> 18
  | Flow_stats_reply _ -> 19

(** Encode one message with its header. *)
let encode ?(xid = 0) (m : msg) : Bytes.t =
  let w = W.create () in
  W.u8 w version;
  W.u8 w (msg_type m);
  let len_at = w.W.len in
  W.u16 w 0;
  W.u32 w xid;
  (match m with
  | Hello | Features_request -> ()
  | Error { err_type; code } ->
      W.u16 w err_type;
      W.u16 w code
  | Echo_request b | Echo_reply b -> W.bytes w b
  | Features_reply { datapath_id; n_tables } ->
      W.u64 w datapath_id;
      W.u32 w 0 (* n_buffers *);
      W.u8 w n_tables;
      W.zeros w 3;
      W.u32 w 0 (* capabilities *);
      W.u32 w 0
  | Packet_in { total_len; reason; table_id; in_port; data } ->
      W.u32 w 0xFFFFFFFF (* buffer id: none *);
      W.u16 w total_len;
      W.u8 w reason;
      W.u8 w table_id;
      W.u64 w 0L (* cookie *);
      let m = Match_.with_field (Match_.catchall ()) FK.Field.In_port in_port in
      encode_match w m;
      W.zeros w 2;
      W.bytes w data
  | Packet_out { in_port; actions; data } ->
      W.u32 w 0xFFFFFFFF;
      W.u32 w in_port;
      let actions_len_at = w.W.len in
      W.u16 w 0;
      W.zeros w 6;
      let a0 = w.W.len in
      List.iter (encode_action w) actions;
      W.patch_u16 w ~at:actions_len_at (w.W.len - a0);
      W.bytes w data
  | Flow_mod { command; table_id; priority; cookie; match_; actions } ->
      W.u64 w (Int64.of_int cookie);
      W.u64 w 0L (* cookie mask *);
      W.u8 w table_id;
      W.u8 w (match command with `Add -> 0 | `Modify -> 1 | `Delete -> 3);
      W.u16 w 0 (* idle timeout *);
      W.u16 w 0 (* hard timeout *);
      W.u16 w priority;
      W.u32 w 0xFFFFFFFF (* buffer *);
      W.u32 w 0xFFFFFFFF (* out port *);
      W.u32 w 0xFFFFFFFF (* out group *);
      W.u16 w 0 (* flags *);
      W.zeros w 2;
      encode_match w match_;
      encode_instructions w actions
  | Flow_stats_request { table_id } ->
      W.u16 w 1 (* OFPMP_FLOW *);
      W.u16 w 0;
      W.zeros w 4;
      W.u8 w table_id;
      W.zeros w 7
  | Flow_stats_reply rows ->
      W.u16 w 1;
      W.u16 w 0;
      W.zeros w 4;
      List.iter
        (fun (table, priority, n_packets) ->
          W.u16 w 16;
          W.u8 w table;
          W.u8 w 0;
          W.u16 w priority;
          W.zeros w 2;
          W.u64 w (Int64.of_int n_packets))
        rows);
  let b = W.contents w in
  Bytes.set_uint16_be b len_at (Bytes.length b);
  b

(** Decode one message. Returns the message, its xid, and the number of
    bytes consumed (messages can be concatenated on a stream). *)
let decode (b : Bytes.t) : msg * int * int =
  let r = R.of_bytes b in
  let v = R.u8 r in
  if v <> version then fail "unsupported OpenFlow version 0x%x" v;
  let typ = R.u8 r in
  let total_len = R.u16 r in
  if total_len < 8 then fail "bad message length %d" total_len;
  if Bytes.length b < total_len then fail "truncated message";
  let xid = R.u32 r in
  let body = R.sub r (total_len - 8) in
  let m =
    match typ with
    | 0 -> Hello
    | 1 ->
        let err_type = R.u16 body in
        let code = R.u16 body in
        Error { err_type; code }
    | 2 -> Echo_request (R.bytes body (R.remaining body))
    | 3 -> Echo_reply (R.bytes body (R.remaining body))
    | 5 -> Features_request
    | 6 ->
        let datapath_id = R.u64 body in
        let _ = R.u32 body in
        let n_tables = R.u8 body in
        Features_reply { datapath_id; n_tables }
    | 10 ->
        let _buffer = R.u32 body in
        let total_len = R.u16 body in
        let reason = R.u8 body in
        let table_id = R.u8 body in
        let _cookie = R.u64 body in
        let m = decode_match body in
        R.skip body 2;
        let data = R.bytes body (R.remaining body) in
        let in_port = FK.get m.Match_.key FK.Field.In_port in
        Packet_in { total_len; reason; table_id; in_port; data }
    | 13 ->
        let _buffer = R.u32 body in
        let in_port = R.u32 body in
        let actions_len = R.u16 body in
        R.skip body 6;
        let acts = R.sub body actions_len in
        let actions = ref [] in
        while R.remaining acts > 0 do
          match decode_action acts with
          | Some a -> actions := a :: !actions
          | None -> ()
        done;
        let data = R.bytes body (R.remaining body) in
        Packet_out { in_port; actions = List.rev !actions; data }
    | 14 ->
        let cookie = Int64.to_int (R.u64 body) in
        let _mask = R.u64 body in
        let table_id = R.u8 body in
        let command =
          match R.u8 body with 3 -> `Delete | 1 -> `Modify | _ -> `Add
        in
        let _idle = R.u16 body in
        let _hard = R.u16 body in
        let priority = R.u16 body in
        R.skip body 16 (* buffer, out port, out group, flags, pad *);
        let match_ = decode_match body in
        let actions = decode_instructions body in
        Flow_mod { command; table_id; priority; cookie; match_; actions }
    | 18 ->
        R.skip body 8;
        let table_id = R.u8 body in
        Flow_stats_request { table_id }
    | 19 ->
        R.skip body 8;
        let rows = ref [] in
        while R.remaining body >= 16 do
          let _len = R.u16 body in
          let table = R.u8 body in
          let _ = R.u8 body in
          let priority = R.u16 body in
          R.skip body 2;
          let n_packets = Int64.to_int (R.u64 body) in
          rows := (table, priority, n_packets) :: !rows
        done;
        Flow_stats_reply (List.rev !rows)
    | t -> fail "unknown message type %d" t
  in
  (m, xid, total_len)
