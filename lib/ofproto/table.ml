(** One OpenFlow table: a priority-aware tuple-space classifier.

    Rules are grouped into subtables by wildcard mask; a lookup probes every
    subtable (priorities interleave across masks, so none can be skipped
    once a lower-priority hit exists — we probe all and keep the best) and
    returns the highest-priority match. The set of subtable masks probed is
    reported so translation can accumulate the megaflow wildcards: every
    mask examined narrows the megaflow, which is exactly how OVS builds
    megaflow entries from the OpenFlow rule set. *)

module FK = Ovs_packet.Flow_key

type 'a rule = {
  id : int;  (** unique per process; what ofproto/trace names rules by *)
  priority : int;
  match_ : Match_.t;
  value : 'a;
  cookie : int;
  mutable hits : int;
}

(* process-global so rule ids stay unique across tables and bridges *)
let next_rule_id = ref 0

type 'a subtable = {
  mask : FK.t;
  tbl : (int, 'a rule list ref) Hashtbl.t;
  mutable max_priority : int;
  mutable rule_count : int;
}

type 'a t = {
  mutable subtables : 'a subtable list;
  mutable rule_count : int;
}

let create () = { subtables = []; rule_count = 0 }

let rule_count t = t.rule_count
let subtable_count t = List.length t.subtables

let add t ?(cookie = 0) ~priority (match_ : Match_.t) value =
  let mask = match_.Match_.mask in
  let st =
    match List.find_opt (fun st -> FK.equal st.mask mask) t.subtables with
    | Some st -> st
    | None ->
        let st =
          {
            mask = FK.copy mask;
            tbl = Hashtbl.create 64;
            max_priority = min_int;
            rule_count = 0;
          }
        in
        t.subtables <- st :: t.subtables;
        st
  in
  let h = FK.hash_masked match_.Match_.key mask in
  let bucket =
    match Hashtbl.find_opt st.tbl h with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.replace st.tbl h b;
        b
  in
  incr next_rule_id;
  bucket := { id = !next_rule_id; priority; match_; value; cookie; hits = 0 } :: !bucket;
  st.max_priority <- Int.max st.max_priority priority;
  st.rule_count <- st.rule_count + 1;
  t.rule_count <- t.rule_count + 1

(** Find the highest-priority matching rule. Also returns the list of
    subtable masks probed (for megaflow wildcard accumulation) — a
    subtable whose max priority cannot beat the current best is still
    "probed" for wildcarding purposes only if it was examined; we follow
    OVS in skipping it entirely when the priority proves it irrelevant. *)
let lookup t (key : FK.t) : ('a rule option * FK.t list) =
  let best = ref None in
  let best_priority () =
    match !best with Some r -> r.priority | None -> min_int
  in
  let probed = ref [] in
  let ordered =
    List.sort (fun a b -> compare b.max_priority a.max_priority) t.subtables
  in
  List.iter
    (fun st ->
      if st.max_priority > best_priority () then begin
        probed := st.mask :: !probed;
        let h = FK.hash_masked key st.mask in
        match Hashtbl.find_opt st.tbl h with
        | None -> ()
        | Some bucket ->
            List.iter
              (fun r ->
                if r.priority > best_priority () && Match_.matches r.match_ key
                then best := Some r)
              !bucket
      end)
    ordered;
  (match !best with Some r -> r.hits <- r.hits + 1 | None -> ());
  (!best, !probed)

(** Remove rules matching a predicate; returns how many went away. *)
let remove_where t pred =
  let removed = ref 0 in
  List.iter
    (fun (st : 'a subtable) ->
      let before_st = st.rule_count in
      Hashtbl.iter
        (fun _ bucket ->
          let before = List.length !bucket in
          bucket := List.filter (fun r -> not (pred r)) !bucket;
          let gone = before - List.length !bucket in
          removed := !removed + gone;
          st.rule_count <- st.rule_count - gone)
        st.tbl;
      (* keep max_priority exact: a stale upper bound would make probe
         pruning — and thus megaflow masks — depend on deleted rules *)
      if st.rule_count < before_st && st.rule_count > 0 then begin
        let m = ref min_int in
        Hashtbl.iter
          (fun _ bucket ->
            List.iter (fun r -> if r.priority > !m then m := r.priority) !bucket)
          st.tbl;
        st.max_priority <- !m
      end)
    t.subtables;
  t.subtables <-
    List.filter (fun (st : 'a subtable) -> st.rule_count > 0) t.subtables;
  t.rule_count <- t.rule_count - !removed;
  !removed

(** Iterate every rule (statistics, dumps). *)
let iter t f =
  List.iter
    (fun (st : 'a subtable) ->
      Hashtbl.iter (fun _ bucket -> List.iter f !bucket) st.tbl)
    t.subtables
