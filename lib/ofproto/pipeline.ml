(** The multi-table OpenFlow pipeline and slow-path translation.

    [translate] is the analogue of ofproto-dpif-xlate: it walks the tables
    from the packet's start point (table 0, or the recirculation resume
    table), resolves OpenFlow actions into datapath actions, and accumulates
    the megaflow wildcard mask from every subtable examined — the mechanism
    that lets one slow-path translation serve millions of fast-path packets.

    Translation stops at actions that need the packet's state to change
    before matching can continue (conntrack, tunnel decap): those emit a
    recirculation, and the datapath comes back with a fresh key. *)

module FK = Ovs_packet.Flow_key

type t = {
  tables : Action.t list Table.t array;
  mac_table : (int * int, int) Hashtbl.t;  (** (vlan, mac) -> port (NORMAL) *)
  mutable ports : int list;  (** for FLOOD / NORMAL miss *)
  mutable translations : int;
  mutable table_misses : int;
}

let create ?(n_tables = 64) () =
  {
    tables = Array.init n_tables (fun _ -> Table.create ());
    mac_table = Hashtbl.create 1024;
    ports = [];
    translations = 0;
    table_misses = 0;
  }

let n_tables t = Array.length t.tables

let set_ports t ports = t.ports <- ports

let add_flow t ?(table = 0) ?(cookie = 0) ~priority match_ actions =
  if table < 0 || table >= Array.length t.tables then
    invalid_arg "Pipeline.add_flow: bad table";
  Table.add t.tables.(table) ~cookie ~priority match_ actions

let flow_count t =
  Array.fold_left (fun n tbl -> n + Table.rule_count tbl) 0 t.tables

(** Tables that contain at least one rule. *)
let tables_used t =
  Array.fold_left (fun n tbl -> if Table.rule_count tbl > 0 then n + 1 else n) 0 t.tables

type result = {
  odp_actions : Action.odp list;
  megaflow_mask : FK.t;
  tables_visited : int;
  subtables_probed : int;
}

(* fields every translation depends on, so every megaflow matches them *)
let base_unwildcard mask =
  FK.set mask FK.Field.In_port (FK.Field.full_mask FK.Field.In_port);
  FK.set mask FK.Field.Recirc_id (FK.Field.full_mask FK.Field.Recirc_id);
  FK.set mask FK.Field.Dl_type (FK.Field.full_mask FK.Field.Dl_type)

let or_mask acc m =
  Array.iteri (fun i _ -> acc.(i) <- acc.(i) lor m.(i)) acc

(** Translate [key]. [start_table] defaults to the table encoded in the
    key's recirculation id (0 on first pass). The key is not modified.
    [log], when given, is called for every table visited with the matched
    rule (or [None] on a table miss) — the ofproto/trace walk hook. *)
let translate t ?start_table
    ?(log : (int -> Action.t list Table.rule option -> unit) option)
    (key : FK.t) : result =
  t.translations <- t.translations + 1;
  let start =
    match start_table with
    | Some s -> s
    | None -> FK.get key FK.Field.Recirc_id
  in
  let key = FK.copy key in
  let mask = FK.create () in
  base_unwildcard mask;
  let odp = ref [] in
  let visited = ref 0 in
  let probed = ref 0 in
  let emit a = odp := a :: !odp in
  let max_hops = 2 * Array.length t.tables in
  let rec walk table_id hops =
    if hops > max_hops then emit Action.Odp_drop
    else if table_id < 0 || table_id >= Array.length t.tables then
      emit Action.Odp_drop
    else begin
      incr visited;
      let rule, masks = Table.lookup t.tables.(table_id) key in
      probed := !probed + List.length masks;
      List.iter (fun m -> or_mask mask m) masks;
      (match log with Some f -> f table_id rule | None -> ());
      match rule with
      | None ->
          (* OpenFlow 1.3 default: table miss drops *)
          t.table_misses <- t.table_misses + 1
      | Some r -> apply table_id hops r.Table.value
    end
  and apply table_id hops actions =
    match actions with
    | [] -> ()
    | act :: rest -> begin
        match act with
        | Action.Output p ->
            emit (Action.Odp_output p);
            apply table_id hops rest
        | Action.In_port_output ->
            emit (Action.Odp_output (FK.get key FK.Field.In_port));
            apply table_id hops rest
        | Action.Drop ->
            (* an explicit policy drop (visible in datapath drop counters,
               unlike a table miss) *)
            emit Action.Odp_drop;
            apply table_id hops rest
        | Action.Normal -> begin
            (* L2 learning: learn src, forward to the learned dst port or
               flood. NORMAL depends on both MACs and the VLAN. *)
            let vlan = FK.get key FK.Field.Vlan_tci land 0xFFF in
            let src = FK.get key FK.Field.Dl_src in
            let dst = FK.get key FK.Field.Dl_dst in
            let in_port = FK.get key FK.Field.In_port in
            FK.set mask FK.Field.Dl_src (FK.Field.full_mask FK.Field.Dl_src);
            FK.set mask FK.Field.Dl_dst (FK.Field.full_mask FK.Field.Dl_dst);
            FK.set mask FK.Field.Vlan_tci (FK.Field.full_mask FK.Field.Vlan_tci);
            Hashtbl.replace t.mac_table (vlan, src) in_port;
            (match Hashtbl.find_opt t.mac_table (vlan, dst) with
            | Some p when p <> in_port -> emit (Action.Odp_output p)
            | Some _ -> ()
            | None ->
                List.iter
                  (fun p -> if p <> in_port then emit (Action.Odp_output p))
                  t.ports);
            apply table_id hops rest
          end
        | Action.Flood ->
            let in_port = FK.get key FK.Field.In_port in
            List.iter
              (fun p -> if p <> in_port then emit (Action.Odp_output p))
              t.ports;
            apply table_id hops rest
        | Action.Set_field (f, v) ->
            emit (Action.Odp_set (f, v));
            FK.set key f v;
            apply table_id hops rest
        | Action.Move (src, dst) ->
            (* resolved concretely, like In_port_output: the emitted
               value depends on the source field, so the megaflow must
               exact-match it *)
            FK.set mask src (FK.Field.full_mask src);
            let v = FK.get key src in
            emit (Action.Odp_set (dst, v));
            FK.set key dst v;
            apply table_id hops rest
        | Action.Push_vlan tci ->
            emit (Action.Odp_push_vlan tci);
            FK.set key FK.Field.Vlan_tci (tci lor 0x1000);
            apply table_id hops rest
        | Action.Pop_vlan ->
            emit Action.Odp_pop_vlan;
            FK.set key FK.Field.Vlan_tci 0;
            apply table_id hops rest
        | Action.Tunnel_push ts ->
            emit (Action.Odp_tnl_push ts);
            apply table_id hops rest
        | Action.Tunnel_pop resume ->
            (* the packet changes shape: recirculate after decap *)
            FK.set mask FK.Field.Tun_id (FK.Field.full_mask FK.Field.Tun_id);
            emit (Action.Odp_tnl_pop resume)
        | Action.Ct { zone; commit; nat; table } -> begin
            match table with
            | Some resume -> emit (Action.Odp_ct { zone; commit; nat; resume_table = resume })
            | None -> begin
                emit (Action.Odp_ct { zone; commit; nat; resume_table = -1 });
                apply table_id hops rest
              end
          end
        | Action.Goto_table next ->
            if next > table_id then walk next (hops + 1) else emit Action.Odp_drop
        | Action.Meter m ->
            emit (Action.Odp_meter m);
            apply table_id hops rest
        | Action.Controller ->
            emit Action.Odp_userspace;
            apply table_id hops rest
      end
  in
  walk start 0;
  {
    odp_actions = List.rev !odp;
    megaflow_mask = mask;
    tables_visited = !visited;
    subtables_probed = !probed;
  }

(** Forget learned MACs (port removal, aging). *)
let flush_mac_table t = Hashtbl.reset t.mac_table

(* non-strict del-flows semantics: a rule is covered when, on every field
   the spec constrains, the rule constrains at least as much and agrees *)
let rule_covered_by (spec : Match_.t) (rule : Match_.t) =
  Array.for_all
    (fun f ->
      let sm = FK.get spec.Match_.mask f in
      sm = 0
      || (FK.get rule.Match_.mask f land sm = sm
         && FK.get rule.Match_.key f land sm = FK.get spec.Match_.key f land sm))
    FK.Field.all

(** [ovs-ofctl del-flows]: remove every rule covered by [spec] from
    [table] (or all tables). Returns how many were removed. *)
let del_flows ?table t (spec : Match_.t) =
  let removed = ref 0 in
  let del idx =
    removed :=
      !removed
      + Table.remove_where t.tables.(idx) (fun r ->
            rule_covered_by spec r.Table.match_)
  in
  (match table with
  | Some idx -> if idx >= 0 && idx < Array.length t.tables then del idx
  | None ->
      for idx = 0 to Array.length t.tables - 1 do
        del idx
      done);
  !removed

(** Render the installed rules in ovs-ofctl dump-flows style, with hit
    counters — the troubleshooting view operators live in (Sec 6: "the
    userspace datapath makes troubleshooting easier"). *)
let dump_flows ?table t : string list =
  let out = ref [] in
  let dump_table idx tbl =
    Table.iter tbl (fun r ->
        out :=
          Fmt.str "table=%d, priority=%d, n_packets=%d, %a actions=%a" idx
            r.Table.priority r.Table.hits Match_.pp r.Table.match_
            Fmt.(list ~sep:(any ",") Action.pp)
            r.Table.value
          :: !out)
  in
  (match table with
  | Some idx ->
      if idx >= 0 && idx < Array.length t.tables then dump_table idx t.tables.(idx)
  | None -> Array.iteri dump_table t.tables);
  List.rev !out
