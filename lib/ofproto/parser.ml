(** Parser for the textual flow syntax of [ovs-ofctl add-flow]:

    {v table=2,priority=100,ip,nw_src=10.0.0.0/8,ct_state=+trk+est,
       actions=ct(commit,zone=5,table=3),output:4 v}

    The NSX rule generator and the examples speak this syntax, and the
    tests round-trip through it. *)

module FK = Ovs_packet.Flow_key

type flow = {
  table : int;
  priority : int;
  cookie : int;
  match_ : Match_.t;
  actions : Action.t list;
}

exception Parse_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

let int_of_value s =
  let s = String.trim s in
  try if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
      then int_of_string s
      else int_of_string s
  with Failure _ -> fail "bad integer %S" s

(* split on commas that are not inside parentheses *)
let split_top_level s =
  let parts = ref [] in
  let buf = Stdlib.Buffer.create 32 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Stdlib.Buffer.add_char buf c
      | ')' ->
          decr depth;
          Stdlib.Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Stdlib.Buffer.contents buf :: !parts;
          Stdlib.Buffer.clear buf
      | c -> Stdlib.Buffer.add_char buf c)
    s;
  if Stdlib.Buffer.length buf > 0 then parts := Stdlib.Buffer.contents buf :: !parts;
  List.rev !parts |> List.map String.trim |> List.filter (fun p -> p <> "")

let parse_ct_state spec =
  let open FK.Ct_state_bits in
  let bit_of = function
    | "new" -> new_
    | "est" -> est
    | "rel" -> rel
    | "rpl" -> rpl
    | "inv" -> inv
    | "trk" -> trk
    | other -> fail "unknown ct_state flag %S" other
  in
  let value = ref 0 and mask = ref 0 in
  let n = String.length spec in
  let rec go i =
    if i < n then begin
      let sign = spec.[i] in
      if sign <> '+' && sign <> '-' then fail "ct_state must use +flag/-flag";
      let j = ref (i + 1) in
      while !j < n && spec.[!j] <> '+' && spec.[!j] <> '-' do
        incr j
      done;
      let b = bit_of (String.sub spec (i + 1) (!j - i - 1)) in
      mask := !mask lor b;
      if sign = '+' then value := !value lor b;
      go !j
    end
  in
  go 0;
  (!value, !mask)

let parse_ip_maybe_cidr m field v =
  match String.index_opt v '/' with
  | None -> Match_.with_field m field (Ovs_packet.Ipv4.addr_of_string v)
  | Some i ->
      let addr = Ovs_packet.Ipv4.addr_of_string (String.sub v 0 i) in
      let plen = int_of_string (String.sub v (i + 1) (String.length v - i - 1)) in
      Match_.with_prefix m field addr plen

let apply_match_token (m : Match_.t) ~table ~priority ~cookie tok =
  match String.index_opt tok '=' with
  | None -> begin
      (* protocol shorthands *)
      let ip () = Match_.with_field m FK.Field.Dl_type Ovs_packet.Ethernet.Ethertype.ipv4 in
      match tok with
      | "ip" -> ignore (ip ())
      | "tcp" ->
          ignore (ip ());
          ignore (Match_.with_field m FK.Field.Nw_proto Ovs_packet.Ipv4.Proto.tcp)
      | "udp" ->
          ignore (ip ());
          ignore (Match_.with_field m FK.Field.Nw_proto Ovs_packet.Ipv4.Proto.udp)
      | "icmp" ->
          ignore (ip ());
          ignore (Match_.with_field m FK.Field.Nw_proto Ovs_packet.Ipv4.Proto.icmp)
      | "arp" ->
          ignore (Match_.with_field m FK.Field.Dl_type Ovs_packet.Ethernet.Ethertype.arp)
      | "ipv6" ->
          ignore (Match_.with_field m FK.Field.Dl_type Ovs_packet.Ethernet.Ethertype.ipv6)
      | other -> fail "unknown match token %S" other
    end
  | Some i -> begin
      let name = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match name with
      | "table" -> table := int_of_value v
      | "priority" -> priority := int_of_value v
      | "cookie" -> cookie := int_of_value v
      | "in_port" -> ignore (Match_.with_field m FK.Field.In_port (int_of_value v))
      | "dl_src" -> ignore (Match_.with_field m FK.Field.Dl_src (Ovs_packet.Mac.of_string v))
      | "dl_dst" -> ignore (Match_.with_field m FK.Field.Dl_dst (Ovs_packet.Mac.of_string v))
      | "dl_type" -> ignore (Match_.with_field m FK.Field.Dl_type (int_of_value v))
      | "dl_vlan" ->
          ignore (Match_.with_masked m FK.Field.Vlan_tci (int_of_value v lor 0x1000) 0x1FFF)
      | "nw_src" -> ignore (parse_ip_maybe_cidr m FK.Field.Nw_src v)
      | "nw_dst" -> ignore (parse_ip_maybe_cidr m FK.Field.Nw_dst v)
      | "nw_proto" -> ignore (Match_.with_field m FK.Field.Nw_proto (int_of_value v))
      | "nw_tos" -> ignore (Match_.with_field m FK.Field.Nw_tos (int_of_value v))
      | "nw_ttl" -> ignore (Match_.with_field m FK.Field.Nw_ttl (int_of_value v))
      | "tp_src" -> ignore (Match_.with_field m FK.Field.Tp_src (int_of_value v))
      | "tp_dst" -> ignore (Match_.with_field m FK.Field.Tp_dst (int_of_value v))
      | "tcp_flags" -> ignore (Match_.with_field m FK.Field.Tcp_flags (int_of_value v))
      | "tun_id" -> ignore (Match_.with_field m FK.Field.Tun_id (int_of_value v))
      | "tun_src" -> ignore (Match_.with_field m FK.Field.Tun_src (Ovs_packet.Ipv4.addr_of_string v))
      | "tun_dst" -> ignore (Match_.with_field m FK.Field.Tun_dst (Ovs_packet.Ipv4.addr_of_string v))
      | "ct_zone" -> ignore (Match_.with_field m FK.Field.Ct_zone (int_of_value v))
      | "ct_mark" -> ignore (Match_.with_field m FK.Field.Ct_mark (int_of_value v))
      | "recirc_id" -> ignore (Match_.with_field m FK.Field.Recirc_id (int_of_value v))
      | "ct_state" ->
          let value, mask = parse_ct_state v in
          ignore (Match_.with_masked m FK.Field.Ct_state value mask)
      | other -> begin
          match FK.Field.of_name other with
          | Some f -> ignore (Match_.with_field m f (int_of_value v))
          | None -> fail "unknown match field %S" other
        end
    end

let parse_ct_action spec =
  (* spec looks like "commit,zone=5,table=3,nat(src=1.2.3.4:100)" *)
  let commit = ref false and zone = ref 0 and table = ref None and nat = ref None in
  let parse_nat inner ~dst =
    match String.index_opt inner ':' with
    | Some i ->
        let ip = Ovs_packet.Ipv4.addr_of_string (String.sub inner 0 i) in
        let port = int_of_string (String.sub inner (i + 1) (String.length inner - i - 1)) in
        if dst then nat := Some { Action.snat = None; dnat = Some (ip, port) }
        else nat := Some { Action.snat = Some (ip, port); dnat = None }
    | None ->
        let ip = Ovs_packet.Ipv4.addr_of_string inner in
        if dst then nat := Some { Action.snat = None; dnat = Some (ip, 0) }
        else nat := Some { Action.snat = Some (ip, 0); dnat = None }
  in
  List.iter
    (fun part ->
      if part = "commit" then commit := true
      else if String.length part > 5 && String.sub part 0 5 = "zone=" then
        zone := int_of_value (String.sub part 5 (String.length part - 5))
      else if String.length part > 6 && String.sub part 0 6 = "table=" then
        table := Some (int_of_value (String.sub part 6 (String.length part - 6)))
      else if String.length part > 4 && String.sub part 0 4 = "nat(" then begin
        let inner = String.sub part 4 (String.length part - 5) in
        match String.index_opt inner '=' with
        | Some i ->
            let kind = String.sub inner 0 i in
            let rest = String.sub inner (i + 1) (String.length inner - i - 1) in
            parse_nat rest ~dst:(kind = "dst")
        | None -> fail "bad nat spec %S" part
      end
      else fail "unknown ct() argument %S" part)
    (split_top_level spec);
  Action.Ct { zone = !zone; commit = !commit; nat = !nat; table = !table }

(* split "VALUE->FIELD" at the arrow *)
let split_arrow spec =
  let n = String.length spec in
  let rec find i =
    if i + 1 >= n then raise Not_found
    else if spec.[i] = '-' && spec.[i + 1] = '>' then i
    else find (i + 1)
  in
  let i = find 0 in
  (String.sub spec 0 i, String.sub spec (i + 2) (n - i - 2))

(* "geneve_push(vni=5,remote=10.0.0.2,local=10.0.0.1,remote_mac=..,local_mac=..,out=3)" *)
let parse_tunnel_push kind spec =
  let vni = ref 0 and remote = ref 0 and local = ref 0 and out = ref 0 in
  let remote_mac = ref 0 and local_mac = ref 0 in
  List.iter
    (fun part ->
      match String.index_opt part '=' with
      | None -> fail "bad tunnel_push argument %S" part
      | Some i -> begin
          let k = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          match k with
          | "vni" -> vni := int_of_value v
          | "remote" -> remote := Ovs_packet.Ipv4.addr_of_string v
          | "local" -> local := Ovs_packet.Ipv4.addr_of_string v
          | "remote_mac" -> remote_mac := Ovs_packet.Mac.of_string v
          | "local_mac" -> local_mac := Ovs_packet.Mac.of_string v
          | "out" -> out := int_of_value v
          | other -> fail "unknown tunnel_push argument %S" other
        end)
    (split_top_level spec);
  Action.Tunnel_push
    {
      Action.tnl_kind = kind;
      vni = !vni;
      remote_ip = !remote;
      local_ip = !local;
      remote_mac = !remote_mac;
      local_mac = !local_mac;
      out_port = !out;
    }

let parse_set_field spec =
  match split_arrow spec with
  | exception Not_found -> fail "bad set_field %S" spec
  | value, fieldname -> begin
      match FK.Field.of_name fieldname with
      | None -> fail "unknown field %S in set_field" fieldname
      | Some f ->
          let v =
            match f with
            | FK.Field.Dl_src | FK.Field.Dl_dst -> Ovs_packet.Mac.of_string value
            | FK.Field.Nw_src | FK.Field.Nw_dst | FK.Field.Tun_src | FK.Field.Tun_dst
              -> (try Ovs_packet.Ipv4.addr_of_string value with _ -> int_of_value value)
            | _ -> int_of_value value
          in
          Action.Set_field (f, v)
    end

let parse_action tok =
  let prefixed p =
    if String.length tok > String.length p && String.sub tok 0 (String.length p) = p
    then Some (String.sub tok (String.length p) (String.length tok - String.length p))
    else None
  in
  match tok with
  | "drop" -> Action.Drop
  | "normal" | "NORMAL" -> Action.Normal
  | "flood" | "FLOOD" -> Action.Flood
  | "controller" | "CONTROLLER" -> Action.Controller
  | "in_port" -> Action.In_port_output
  | "pop_vlan" | "strip_vlan" -> Action.Pop_vlan
  | _ -> begin
      match prefixed "output:" with
      | Some v -> Action.Output (int_of_value v)
      | None -> begin
          match prefixed "goto_table:" with
          | Some v -> Action.Goto_table (int_of_value v)
          | None -> begin
              match prefixed "meter:" with
              | Some v -> Action.Meter (int_of_value v)
              | None -> begin
                  match prefixed "push_vlan:" with
                  | Some v -> Action.Push_vlan (int_of_value v)
                  | None -> begin
                      match prefixed "tnl_pop:" with
                      | Some v -> Action.Tunnel_pop (int_of_value v)
                      | None -> begin
                          match prefixed "geneve_push(" with
                          | Some v when String.length v > 0
                                        && v.[String.length v - 1] = ')' ->
                              parse_tunnel_push Ovs_packet.Tunnel.Geneve
                                (String.sub v 0 (String.length v - 1))
                          | _ -> begin
                          match prefixed "vxlan_push(" with
                          | Some v when String.length v > 0
                                        && v.[String.length v - 1] = ')' ->
                              parse_tunnel_push Ovs_packet.Tunnel.Vxlan
                                (String.sub v 0 (String.length v - 1))
                          | _ -> begin
                          match prefixed "set_field:" with
                          | Some v -> parse_set_field v
                          | None -> begin
                          match prefixed "move:" with
                          | Some v -> begin
                              match split_arrow v with
                              | exception Not_found -> fail "bad move %S" v
                              | src, dst -> begin
                                  match (FK.Field.of_name src, FK.Field.of_name dst) with
                                  | Some s, Some d -> Action.Move (s, d)
                                  | _ -> fail "unknown field in move %S" v
                                end
                            end
                          | None -> begin
                              match prefixed "ct(" with
                              | Some v when String.length v > 0
                                            && v.[String.length v - 1] = ')' ->
                                  parse_ct_action (String.sub v 0 (String.length v - 1))
                              | _ ->
                                  if tok = "ct" then
                                    Action.Ct { zone = 0; commit = false; nat = None; table = None }
                                  else fail "unknown action %S" tok
                            end
                        end
                    end
                end
            end
        end
    end
        end
        end
        end

(** Parse one [add-flow] line into table, priority, match and actions. *)
let parse_flow (line : string) : flow =
  let line = String.trim line in
  match
    let marker = "actions=" in
    let rec find i =
      if i + String.length marker > String.length line then raise Not_found
      else if String.sub line i (String.length marker) = marker then i
      else find (i + 1)
    in
    find 0
  with
  | exception Not_found -> fail "missing actions= in %S" line
  | i ->
      let match_part = String.sub line 0 i in
      let match_part =
        (* strip a trailing comma/space before actions= *)
        String.trim
          (if String.length match_part > 0
              && match_part.[String.length match_part - 1] = ','
           then String.sub match_part 0 (String.length match_part - 1)
           else match_part)
      in
      let actions_part = String.sub line (i + 8) (String.length line - i - 8) in
      let m = Match_.catchall () in
      let table = ref 0 and priority = ref 32768 and cookie = ref 0 in
      List.iter
        (apply_match_token m ~table ~priority ~cookie)
        (split_top_level match_part);
      let actions =
        if String.trim actions_part = "drop" then [ Action.Drop ]
        else List.map parse_action (split_top_level actions_part)
      in
      { table = !table; priority = !priority; cookie = !cookie; match_ = m; actions }

(** Parse a match-only specification (no [actions=]), as used by
    [ovs-ofctl del-flows] and flow-stats requests. Returns the table (or
    [None] when unspecified, meaning all tables) and the match. *)
let parse_match_spec (spec : string) : int option * Match_.t =
  let m = Match_.catchall () in
  let table = ref (-1) and priority = ref 0 and cookie = ref 0 in
  List.iter
    (apply_match_token m ~table ~priority ~cookie)
    (split_top_level (String.trim spec));
  ((if !table >= 0 then Some !table else None), m)

(** Parse many lines (comments with # and blank lines skipped) and install
    them into a pipeline. Returns the number of flows added. *)
let install_flows (pipeline : Pipeline.t) (lines : string list) =
  let n = ref 0 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let f = parse_flow line in
        Pipeline.add_flow pipeline ~table:f.table ~cookie:f.cookie
          ~priority:f.priority f.match_ f.actions;
        incr n
      end)
    lines;
  !n
