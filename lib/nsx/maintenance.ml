(** The Figure 1 maintenance-burden data and a model of where it comes
    from (Sec 2.1.1).

    Figure 1 is historical repository data — lines changed per year in the
    out-of-tree kernel module, split into new features and backports — so
    it cannot be re-measured; the series below digitizes the figure
    (approximate values; the qualitative content is that backports grow
    year over year until they dwarf feature work). The [burden_model]
    reproduces that growth from first principles: every supported kernel
    version multiplies the compatibility surface, so the backport cost of
    a feature scales with the number and age-span of kernels supported. *)

type year_entry = { year : int; new_features_loc : int; backports_loc : int }

(** Digitized Figure 1 (lines of code changed in the OVS repository's
    kernel datapath). *)
let figure1 =
  [
    { year = 2015; new_features_loc = 6_000; backports_loc = 3_200 };
    { year = 2016; new_features_loc = 9_200; backports_loc = 5_100 };
    { year = 2017; new_features_loc = 7_400; backports_loc = 8_300 };
    { year = 2018; new_features_loc = 5_100; backports_loc = 14_600 };
    { year = 2019; new_features_loc = 3_400; backports_loc = 20_800 };
  ]

(** Case studies the paper quantifies: upstream feature size vs what the
    out-of-tree module needed. *)
type case_study = {
  feature : string;
  upstream_loc : int;
  backport_loc : int;
  upstream_commits_needed : int;
  followup_commits : int;
}

let erspan =
  {
    feature = "ERSPAN support";
    upstream_loc = 50;
    backport_loc = 5_000;
    upstream_commits_needed = 25;
    followup_commits = 6;
  }

let conncount =
  {
    feature = "per-zone connection limiting";
    upstream_loc = 600;
    backport_loc = 700;
    upstream_commits_needed = 14;
    followup_commits = 14;
  }

(** Model: supported kernels accumulate (distributions pin old kernels for
    years), and each new feature must be adapted to each; the adaptation
    cost grows with the age gap because missing infrastructure must be
    backported too (the ERSPAN case: 50 upstream lines -> 5,000 compat
    lines). Returns per-year (features_loc, predicted_backports_loc). *)
let burden_model ~years ~feature_loc_per_year =
  let base_year = 2015 in
  List.init years (fun i ->
      let year = base_year + i in
      let kernels_supported = 6 + (2 * i) in
      (* mean age gap of the supported kernels grows by ~a kernel a year;
         the adaptation cost grows with the *square* of the gap, because
         missing infrastructure compounds (the ERSPAN case: the feature
         needed IPv6 GRE, which needed its own dependencies, ...) *)
      let mean_age_gap = 2.0 +. (0.8 *. float_of_int i) in
      let amplification =
        0.014 *. float_of_int kernels_supported *. (mean_age_gap *. mean_age_gap)
      in
      let features = feature_loc_per_year.(Int.min i (Array.length feature_loc_per_year - 1)) in
      (year, features, int_of_float (float_of_int features *. amplification)))

(** The predicted series using the recorded feature sizes as input — the
    shape to compare against [figure1]'s backport bars. *)
let predicted () =
  let features = Array.of_list (List.map (fun e -> e.new_features_loc) figure1) in
  burden_model ~years:(List.length figure1) ~feature_loc_per_year:features

(** {1 Rule churn}

    The operational counterpart of the maintenance burden: an NSX manager
    continuously revises the distributed firewall, and every revision
    ripples into the datapath — stale megaflows must be revalidated away
    and any learned structures over them retrained. [churn] drives that
    loop deterministically: each round installs a batch of DFW-shaped
    rules, retires the previous round's batch, runs the caller's
    revalidation and then its retrain hook (where a computational cache
    rebuilds its models). *)

module Match_ = Ovs_ofproto.Match_
module Pipeline = Ovs_ofproto.Pipeline
module OFK = Ovs_packet.Flow_key

type churn_stats = {
  ch_rounds : int;
  ch_added : int;  (** rules installed across all rounds *)
  ch_deleted : int;  (** rules retired *)
  ch_evicted : int;  (** stale megaflows revalidation removed *)
  ch_retrains : int;  (** retrain-hook invocations *)
}

(* each round's rules share a distinct per-round /24 on nw_src, so the
   round can be retired with one non-strict del-flows spec *)
let round_subnet r = (172 lsl 24) lor (31 lsl 16) lor (r mod 250) lsl 8

(* defaults for the rule shape, overridable so a scenario can aim the
   churn at its own traffic (subnet_of targets the subnets its flows
   actually live in; mk_actions keeps packets forwarded-and-counted
   where the DFW-drop default would make them vanish) *)
let default_mk_actions ~round:_ ~k =
  if k mod 5 = 0 then []  (* a DFW drop rule *)
  else [ Ovs_ofproto.Action.Output 1 ]

let churn ?(table = 20) ?(seed = 7) ?(subnet_of = round_subnet)
    ?(mk_actions = default_mk_actions) ~(pipeline : Pipeline.t) ~rounds
    ~rules_per_round ~(revalidate : unit -> int) ~(retrain : unit -> unit) () :
    churn_stats =
  let prng = Ovs_sim.Prng.of_int seed in
  let round_spec r =
    Match_.with_prefix (Match_.catchall ()) OFK.Field.Nw_src (subnet_of r) 24
  in
  let added = ref 0 and deleted = ref 0 and evicted = ref 0 in
  let retrains = ref 0 in
  for r = 0 to rounds - 1 do
    for k = 0 to rules_per_round - 1 do
      let m =
        Match_.with_field
          (Match_.with_prefix (Match_.catchall ()) OFK.Field.Nw_src
             (subnet_of r) 24)
          OFK.Field.Tp_dst
          (1 + Ovs_sim.Prng.int prng 16000)
      in
      let actions = mk_actions ~round:r ~k in
      Pipeline.add_flow pipeline ~table ~priority:(1000 + k) m actions;
      incr added
    done;
    if r > 0 then
      deleted :=
        !deleted + Pipeline.del_flows ~table pipeline (round_spec (r - 1));
    evicted := !evicted + revalidate ();
    retrain ();
    incr retrains
  done;
  {
    ch_rounds = rounds;
    ch_added = !added;
    ch_deleted = !deleted;
    ch_evicted = !evicted;
    ch_retrains = !retrains;
  }
