(** Synthetic production-grade OpenFlow rule set with the shape of Table 3:
    a hypervisor's NSX pipeline with Geneve tunnels, logical switches, a
    distributed firewall over conntrack, and L2/L3 forwarding, emitted in
    ovs-ofctl syntax and installed through the textual parser.

    Layout (40 tables):
    - t0   classification: tunnel vs local VIF traffic
    - t2   VIF ingress + spoof guard (reg0 = VIF id, reg1 = logical switch)
    - t4   tunnel ingress (one rule per Geneve VNI)
    - t6   conntrack dispatch per logical switch (ct + recirculate)
    - t8   ct_state triage (+est fast path, +new to the firewall, +inv drop)
    - t10..t33  distributed firewall sections (the bulk of the rules)
    - t34  L2 lookup: local VIFs output, remote MACs Geneve-encapsulated
    - t36  ARP punting, t38 catch-all metrics/drop
*)

module P = Ovs_packet
module FK = P.Flow_key

type spec = {
  n_vms : int;  (** VMs on this hypervisor *)
  vifs_per_vm : int;
  n_tunnels : int;  (** Geneve VNIs / logical switches spanning hosts *)
  target_rules : int;  (** total OpenFlow rules to emit *)
  uplink_port : int;
  first_vif_port : int;
  local_vtep : string;
  remote_vteps : string list;
  seed : int;
}

(** The Table 3 configuration. *)
let table3_spec =
  {
    n_vms = 15;
    vifs_per_vm = 2;
    n_tunnels = 291;
    target_rules = 103_302;
    uplink_port = 0;
    first_vif_port = 1;
    local_vtep = "192.168.0.1";
    remote_vteps = [ "192.168.0.2"; "192.168.0.3"; "192.168.0.4" ];
    seed = 1234;
  }

let n_vifs spec = spec.n_vms * spec.vifs_per_vm

let vif_port spec i = spec.first_vif_port + i
let vif_mac i = P.Mac.of_index (100 + i)
let vif_ip i = Printf.sprintf "172.16.%d.%d" (i / 200) (10 + (i mod 200))
let vif_zone spec i = 1 + (i mod spec.n_tunnels mod 64)

(** Generate the flow lines. Deterministic for a given spec. *)
let generate (spec : spec) : string list =
  let prng = Ovs_sim.Prng.of_int spec.seed in
  let buf = ref [] in
  let count = ref 0 in
  let add fmt =
    Fmt.kstr
      (fun line ->
        buf := line :: !buf;
        incr count)
      fmt
  in
  let vifs = n_vifs spec in
  (* t0: classification *)
  add "table=0,priority=100,in_port=%d,udp,tp_dst=6081 actions=tnl_pop:4" spec.uplink_port;
  add "table=0,priority=90,in_port=%d actions=drop" spec.uplink_port;
  for i = 0 to vifs - 1 do
    add "table=0,priority=80,in_port=%d actions=set_field:%d->reg0,goto_table:2"
      (vif_port spec i) (i + 1)
  done;
  add "table=0,priority=0 actions=drop";
  (* t2: spoof guard: only the VIF's own MAC+IP may enter *)
  for i = 0 to vifs - 1 do
    add
      "table=2,priority=100,reg0=%d,dl_src=%s,ip,nw_src=%s \
       actions=set_field:%d->reg1,goto_table:6"
      (i + 1)
      (P.Mac.to_string (vif_mac i))
      (vif_ip i)
      (1 + (i mod spec.n_tunnels));
    add "table=2,priority=90,reg0=%d,arp actions=set_field:%d->reg1,goto_table:34"
      (i + 1)
      (1 + (i mod spec.n_tunnels));
    add "table=2,priority=10,reg0=%d actions=drop" (i + 1)
  done;
  (* t4: tunnel ingress, one per VNI *)
  for vni = 1 to spec.n_tunnels do
    add "table=4,priority=100,tun_id=%d actions=set_field:%d->reg1,set_field:1->reg2,goto_table:6"
      vni vni
  done;
  add "table=4,priority=0 actions=drop";
  (* t6: conntrack dispatch per logical switch (zone = LS id mod 64) *)
  for ls = 1 to spec.n_tunnels do
    add "table=6,priority=100,reg1=%d,ip actions=ct(zone=%d,table=8)" ls (ls mod 64)
  done;
  add "table=6,priority=50 actions=goto_table:34";
  (* t8: ct_state triage *)
  add "table=8,priority=100,ct_state=+trk+est,ip actions=goto_table:34";
  add "table=8,priority=100,ct_state=+trk+rel,ip actions=goto_table:34";
  add "table=8,priority=90,ct_state=+trk+inv,ip actions=drop";
  add "table=8,priority=80,ct_state=+trk+new,ip actions=goto_table:10";
  add "table=8,priority=0 actions=drop";
  (* t34: L2 lookup *)
  for i = 0 to vifs - 1 do
    add "table=34,priority=100,dl_dst=%s actions=output:%d"
      (P.Mac.to_string (vif_mac i))
      (vif_port spec i)
  done;
  let n_remote = List.length spec.remote_vteps in
  for r = 0 to (4 * vifs) - 1 do
    (* remote workloads: MAC behind a VTEP, encapsulated per-LS VNI *)
    let vtep = List.nth spec.remote_vteps (r mod n_remote) in
    add "table=34,priority=90,dl_dst=%s,reg1=%d \
         actions=geneve_push(vni=%d,remote=%s,local=%s,remote_mac=%s,local_mac=%s,out=%d)"
      (P.Mac.to_string (P.Mac.of_index (10_000 + r)))
      (1 + (r mod spec.n_tunnels))
      (1 + (r mod spec.n_tunnels))
      vtep spec.local_vtep
      (P.Mac.to_string (P.Mac.of_index (20_000 + (r mod n_remote))))
      (P.Mac.to_string (P.Mac.of_index 9_999))
      spec.uplink_port
  done;
  add "table=34,priority=10,dl_type=0x0800 actions=drop";
  (* service tables: DHCP/ND punting, QoS, LB VIPs, egress accounting *)
  add "table=1,priority=100,udp,tp_dst=67 actions=controller";
  add "table=3,priority=100,ipv6 actions=goto_table:6";
  add "table=5,priority=100,ip,nw_tos=184 actions=meter:1,goto_table:6";
  add "table=7,priority=100,tcp,nw_dst=172.30.0.10,tp_dst=443 actions=goto_table:10";
  add "table=9,priority=100,ct_state=+trk+rpl,ip actions=goto_table:34";
  add "table=35,priority=100,ip,nw_ttl=1 actions=controller";
  add "table=37,priority=100,dl_dst=ff:ff:ff:ff:ff:ff actions=flood";
  add "table=39,priority=0 actions=drop";
  (* t36: ARP handling; t38: metrics *)
  add "table=36,priority=100,arp actions=controller";
  add "table=38,priority=0 actions=drop";
  (* distributed firewall: fill the remaining budget across tables 10..33.
     Each table is one firewall section, and a section's rules share one
     match shape (real NSX sections are homogeneous — a section is written
     against one template); the shapes rotate across sections so the whole
     set still spans the field diversity Table 3 reports.  Homogeneous
     sections matter downstream: the megaflow masks a walk produces depend
     on which sections it crossed, so terminating in different sections
     yields distinct dpcls subtables instead of one saturated union. *)
  let sections = 24 in
  let dfw_budget = spec.target_rules - !count - sections in
  let protos = [| "tcp"; "udp" |] in
  for k = 0 to dfw_budget - 1 do
    let table = 10 + (k mod sections) in
    let vif = 1 + Ovs_sim.Prng.int prng vifs in
    let ls = 1 + Ovs_sim.Prng.int prng spec.n_tunnels in
    let proto = protos.(k mod 2) in
    let src_prefix = Printf.sprintf "10.%d.%d.0/24" (k mod 250) (k / 250 mod 250) in
    let dst_port = 1 + (k mod 16_000) in
    let extra =
      (* one rarely-used field per section so the set exercises them all *)
      match k mod sections with
      | 0 -> ",nw_tos=32"
      | 1 -> ",nw_ttl=64"
      | 2 -> ",tcp_flags=2" (* SYN *)
      | 3 -> ",tp_src=1024"
      | 4 -> ",dl_type=0x0800"
      | 5 -> ",ct_mark=3"
      | 6 -> ",reg2=1"
      | 7 -> ",reg3=0"
      | 8 -> ",reg4=0"
      | 9 -> ",reg5=0"
      | 10 -> ",reg6=0"
      | 11 -> ",reg7=0"
      | 12 -> ",ct_zone=1"
      | 13 -> ",nw_frag=0"
      | 14 -> ",vlan_tci=0"
      | 15 -> ",ipv6_src_hi=0"
      | 16 -> ",ipv6_dst_hi=0"
      | 17 -> ",tun_src=192.168.0.2"
      | 18 -> ",tun_dst=192.168.0.1"
      | 19 -> ",ipv6_src_lo=0"
      | _ -> ""
    in
    let action =
      if k mod 7 = 0 then "drop"
      else Printf.sprintf "ct(commit,zone=%d),goto_table:34" (vif_zone spec vif)
    in
    (* the extra token may duplicate the protocol implied fields; that is
       fine, the parser treats repeated exact matches idempotently *)
    if k mod 11 = 0 then
      add "table=%d,priority=%d,reg0=%d,%s,nw_src=%s,tp_dst=%d%s actions=%s" table
        (2000 - (k mod 1000))
        vif proto src_prefix dst_port extra action
    else
      add "table=%d,priority=%d,reg1=%d,%s,nw_dst=%s,tp_dst=%d%s actions=%s" table
        (2000 - (k mod 1000))
        ls proto src_prefix dst_port extra action
  done;
  (* chain the firewall sections: miss in one section falls to the next *)
  for s = 0 to sections - 1 do
    let t = 10 + s in
    let next = if s = sections - 1 then 34 else t + 1 in
    add "table=%d,priority=1 actions=goto_table:%d" t next
  done;
  List.rev !buf

type stats = {
  rules : int;
  tables_used : int;
  fields_used : int;
  tunnels : int;
  vms : int;
}

(** Compute the Table 3 statistics from an installed pipeline. *)
let stats_of_pipeline (spec : spec) (pipeline : Ovs_ofproto.Pipeline.t) : stats =
  let fields = Hashtbl.create 40 in
  let tables = ref 0 in
  for t = 0 to Ovs_ofproto.Pipeline.n_tables pipeline - 1 do
    let tbl = pipeline.Ovs_ofproto.Pipeline.tables.(t) in
    if Ovs_ofproto.Table.rule_count tbl > 0 then incr tables;
    Ovs_ofproto.Table.iter tbl (fun r ->
        List.iter
          (fun f -> Hashtbl.replace fields f ())
          (Ovs_ofproto.Match_.used_fields r.Ovs_ofproto.Table.match_))
  done;
  {
    rules = Ovs_ofproto.Pipeline.flow_count pipeline;
    tables_used = !tables;
    fields_used = Hashtbl.length fields;
    tunnels = spec.n_tunnels;
    vms = spec.n_vms;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "Geneve tunnels %d | VMs (2 interfaces per VM) %d | OpenFlow rules %d | \
     OpenFlow tables %d | matching fields %d"
    s.tunnels s.vms s.rules s.tables_used s.fields_used
