(** Connection tracking: the userspace reimplementation of the kernel's
    netfilter conntrack that OVS needed once the datapath left the kernel
    (Sec 4). Supports zones (NSX uses one zone per virtual network for
    firewall separation), a TCP state machine, UDP/ICMP pseudo-state,
    source/destination NAT, expiry, and per-zone connection limits (the
    feature whose kernel backport cost the paper quantifies in Sec 2.1.1).

    Storage is sharded by a direction-symmetric 5-tuple hash so a
    per-PMD engine can size [shards] to its PMD count and keep the hit
    path lock-free (each shard is only ever touched by its owning
    domain when the caller partitions traffic by RSS hash, which uses
    the same src/dst-symmetric construction). Expiry is a resumable
    bucket-cursor sweep with a per-call work budget, so a poll loop
    can amortize reclamation instead of stalling on a full-table scan. *)

module FK = Ovs_packet.Flow_key

let cov_zone_limit_drop = Ovs_sim.Coverage.counter "ct_zone_limit_drop"

(** Canonical 5-tuple plus zone; directionality is derived by comparing
    against the stored original direction. *)
type tuple = {
  src : int;
  dst : int;
  proto : int;
  sport : int;
  dport : int;
  zone : int;
}

let tuple_reverse t = { t with src = t.dst; dst = t.src; sport = t.dport; dport = t.sport }

let tuple_of_key ~zone (k : FK.t) =
  {
    src = FK.get k FK.Field.Nw_src;
    dst = FK.get k FK.Field.Nw_dst;
    proto = FK.get k FK.Field.Nw_proto;
    sport = FK.get k FK.Field.Tp_src;
    dport = FK.get k FK.Field.Tp_dst;
    zone;
  }

type tcp_state =
  | Syn_sent
  | Syn_recv
  | Established
  | Fin_wait
  | Close_wait
  | Time_wait
  | Closed

let tcp_state_name = function
  | Syn_sent -> "SYN_SENT"
  | Syn_recv -> "SYN_RECV"
  | Established -> "ESTABLISHED"
  | Fin_wait -> "FIN_WAIT"
  | Close_wait -> "CLOSE_WAIT"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

type proto_state = Tcp of tcp_state | Udp_single | Udp_multiple | Icmp_active

type nat_action = {
  nat_src : (int * int) option;  (** translated (ip, port) for SNAT *)
  nat_dst : (int * int) option;  (** translated (ip, port) for DNAT *)
}

type conn = {
  orig : tuple;
  mutable state : proto_state;
  mutable mark : int;
  mutable created_at : Ovs_sim.Time.ns;
  mutable last_seen : Ovs_sim.Time.ns;
  mutable packets : int;
  nat : nat_action option;
}

(** Timeouts, in virtual ns, following netfilter's defaults (scaled). *)
let timeout_of = function
  | Tcp Established -> Ovs_sim.Time.s 7440.
  | Tcp Time_wait | Tcp Close_wait | Tcp Fin_wait -> Ovs_sim.Time.s 120.
  | Tcp _ -> Ovs_sim.Time.s 60.
  | Udp_single -> Ovs_sim.Time.s 30.
  | Udp_multiple -> Ovs_sim.Time.s 120.
  | Icmp_active -> Ovs_sim.Time.s 30.

(* One direction of a connection: both a conn's orig and reply tuples
   get a slot, possibly in different shards. *)
type slot = { s_tup : tuple; s_conn : conn }

type shard = {
  mutable buckets : slot list array;
  mutable entries : int;  (** directional slots, i.e. 2x connections *)
  mutable cursor : int;  (** next bucket the bounded sweep examines *)
}

type t = {
  shards : shard array;
  mutable shard_cursor : int;  (** which shard the bounded sweep is in *)
  zone_counts : (int, int ref) Hashtbl.t;
  zone_limits : (int, int) Hashtbl.t;
  mutable lookups : int;
  mutable committed : int;
  mutable limit_drops : int;
}

let initial_buckets = 64

let new_shard () = { buckets = Array.make initial_buckets []; entries = 0; cursor = 0 }

let create ?(shards = 1) () =
  let shards = Int.max 1 shards in
  {
    shards = Array.init shards (fun _ -> new_shard ());
    shard_cursor = 0;
    zone_counts = Hashtbl.create 64;
    zone_limits = Hashtbl.create 64;
    lookups = 0;
    committed = 0;
    limit_drops = 0;
  }

let n_shards t = Array.length t.shards

(* Direction-symmetric shard choice: XOR of the two endpoint hashes is
   commutative, so a tuple and its reverse always land in the same
   shard (a PMD owns whole connections, and the ICMP related-conn
   lookup dispatches correctly for free). *)
let shard_of t tup =
  let n = Array.length t.shards in
  if n = 1 then t.shards.(0)
  else
    let a = Hashtbl.hash (tup.src, tup.sport)
    and b = Hashtbl.hash (tup.dst, tup.dport) in
    let h = (a lxor b) + (31 * tup.proto) + (131 * tup.zone) in
    t.shards.(h land max_int mod n)

let bucket_index sh tup = Hashtbl.hash tup land max_int mod Array.length sh.buckets

let find_tuple t tup : conn option =
  let sh = shard_of t tup in
  let rec scan = function
    | [] -> None
    | s :: rest -> if s.s_tup = tup then Some s.s_conn else scan rest
  in
  scan sh.buckets.(bucket_index sh tup)

(* Grow a shard at 4 slots/bucket mean occupancy. The cursor resets:
   rehashing reshuffles which buckets the un-swept slots live in, and
   restarting the pass only makes the sweep conservative (it may visit
   some slots twice, never skip live expiry work forever). *)
let maybe_grow sh =
  if sh.entries > 4 * Array.length sh.buckets then begin
    let old = sh.buckets in
    sh.buckets <- Array.make (2 * Array.length old) [];
    sh.cursor <- 0;
    Array.iter
      (List.iter (fun s ->
           let i = bucket_index sh s.s_tup in
           sh.buckets.(i) <- s :: sh.buckets.(i)))
      old
  end

(* Hashtbl.replace semantics: at most one slot per tuple. *)
let insert_dir t tup conn =
  let sh = shard_of t tup in
  let i = bucket_index sh tup in
  let had = List.exists (fun s -> s.s_tup = tup) sh.buckets.(i) in
  let bucket =
    if had then List.filter (fun s -> s.s_tup <> tup) sh.buckets.(i)
    else sh.buckets.(i)
  in
  sh.buckets.(i) <- { s_tup = tup; s_conn = conn } :: bucket;
  if not had then begin
    sh.entries <- sh.entries + 1;
    maybe_grow sh
  end

let remove_dir t tup =
  let sh = shard_of t tup in
  let i = bucket_index sh tup in
  if List.exists (fun s -> s.s_tup = tup) sh.buckets.(i) then begin
    sh.buckets.(i) <- List.filter (fun s -> s.s_tup <> tup) sh.buckets.(i);
    sh.entries <- sh.entries - 1
  end

let decr_zone t zone =
  match Hashtbl.find_opt t.zone_counts zone with Some r -> decr r | None -> ()

(* Drop a connection: both directional slots plus the zone count. *)
let remove_conn t conn =
  remove_dir t conn.orig;
  remove_dir t (tuple_reverse conn.orig);
  decr_zone t conn.orig.zone

(* Iterate original-direction slots only (one visit per connection). *)
let iter_conns t f =
  Array.iter
    (fun sh ->
      Array.iter
        (List.iter (fun s -> if s.s_tup = s.s_conn.orig then f s.s_conn))
        sh.buckets)
    t.shards

let total_entries t = Array.fold_left (fun acc sh -> acc + sh.entries) 0 t.shards

(** Per-zone connection limit (Sec 2.1.1's nf_conncount feature). *)
let set_zone_limit t ~zone ~limit = Hashtbl.replace t.zone_limits zone limit

let zone_count t ~zone =
  match Hashtbl.find_opt t.zone_counts zone with Some r -> !r | None -> 0

let active_conns t = total_entries t / 2
let lookups t = t.lookups
let committed t = t.committed
let limit_drops t = t.limit_drops

(** Result of passing a packet through conntrack: the ct_state bits OVS
    sets on the packet for the recirculated lookup. *)
type verdict = { ct_state : int; conn : conn option }

let state_bits ~is_new ~established ~reply ~invalid =
  let open FK.Ct_state_bits in
  trk
  lor (if is_new then new_ else 0)
  lor (if established then est else 0)
  lor (if reply then rpl else 0)
  lor if invalid then inv else 0

let tcp_flags_of_key k = FK.get k FK.Field.Tcp_flags

(* advance the TCP state machine for a packet in the given direction *)
let tcp_advance st ~flags ~is_reply =
  let open Ovs_packet.Tcp.Flags in
  let has f = flags land f <> 0 in
  if has rst then Closed
  else
    match st with
    | Syn_sent when is_reply && has syn && has ack -> Syn_recv
    | Syn_sent -> Syn_sent
    | Syn_recv when (not is_reply) && has ack -> Established
    | Syn_recv -> Syn_recv
    | Established when has fin -> Fin_wait
    | Established -> Established
    | Fin_wait when has fin -> Close_wait
    | Fin_wait -> Fin_wait
    | Close_wait when has ack -> Time_wait
    | Close_wait -> Close_wait
    | Time_wait -> Time_wait
    | Closed -> Closed

(* ICMP errors (destination unreachable, time exceeded) embed the header
   of the offending packet; if that packet belongs to a tracked
   connection, the error is "related" (+rel), which firewalls must admit
   for PMTU discovery and friends to work. The inner tuple dispatches to
   its own shard, so relation works even when the error arrives on a
   different shard than the offending flow. *)
let related_conn t ~zone (buf : Ovs_packet.Buffer.t) : conn option =
  let open Ovs_packet in
  match Icmp.parse buf with
  | Some ic
    when ic.Icmp.icmp_type = Icmp.Kind.dest_unreachable
         || ic.Icmp.icmp_type = Icmp.Kind.time_exceeded -> begin
      (* the embedded original IP header starts after the 8-byte ICMP
         header; it is followed by at least 8 bytes of its L4 header *)
      let inner_l3 = buf.Buffer.l4_ofs + Icmp.header_len in
      if Buffer.length buf < inner_l3 + Ipv4.header_len + 8 then None
      else begin
        let saved_l3 = buf.Buffer.l3_ofs and saved_l4 = buf.Buffer.l4_ofs in
        buf.Buffer.l3_ofs <- inner_l3;
        let result =
          match Ipv4.parse buf with
          | Some ip when not (Ipv4.is_later_fragment ip) ->
              let sport = Buffer.get_u16 buf buf.Buffer.l4_ofs in
              let dport = Buffer.get_u16 buf (buf.Buffer.l4_ofs + 2) in
              let tup =
                { src = ip.Ipv4.src; dst = ip.Ipv4.dst; proto = ip.Ipv4.proto;
                  sport; dport; zone }
              in
              find_tuple t tup
          | Some _ | None -> None
        in
        buf.Buffer.l3_ofs <- saved_l3;
        buf.Buffer.l4_ofs <- saved_l4;
        result
      end
    end
  | Some _ | None -> None

(** Track a packet without committing: reports what the connection state
    would be ([+trk] and friends), as the [ct] action does before the
    pipeline decides to commit. Pass [buf] to let ICMP errors be matched
    to the connection they relate to ([+rel]). *)
let track ?buf t ~now ~zone (k : FK.t) : verdict =
  t.lookups <- t.lookups + 1;
  let tup = tuple_of_key ~zone k in
  match find_tuple t tup with
  | None -> begin
      let related =
        if FK.get k FK.Field.Nw_proto = Ovs_packet.Ipv4.Proto.icmp then
          match buf with Some b -> related_conn t ~zone b | None -> None
        else None
      in
      match related with
      | Some conn ->
          { ct_state = FK.Ct_state_bits.(trk lor rel); conn = Some conn }
      | None ->
          { ct_state = state_bits ~is_new:true ~established:false ~reply:false ~invalid:false;
            conn = None }
    end
  | Some conn ->
      let is_reply = tup = tuple_reverse conn.orig && tup <> conn.orig in
      let expired = now -. conn.last_seen > timeout_of conn.state in
      if expired then begin
        remove_conn t conn;
        { ct_state = state_bits ~is_new:true ~established:false ~reply:false ~invalid:false; conn = None }
      end
      else begin
        conn.last_seen <- now;
        conn.packets <- conn.packets + 1;
        (match conn.state with
        | Tcp st ->
            let flags = tcp_flags_of_key k in
            conn.state <- Tcp (tcp_advance st ~flags ~is_reply)
        | Udp_single when is_reply -> conn.state <- Udp_multiple
        | Udp_single | Udp_multiple | Icmp_active -> ());
        let invalid = conn.state = Tcp Closed in
        let established =
          match conn.state with
          | Tcp Established | Tcp Fin_wait | Tcp Close_wait -> true
          | Udp_multiple -> true
          | Tcp _ | Udp_single | Icmp_active -> false
        in
        {
          ct_state =
            state_bits ~is_new:false ~established:(established && not invalid)
              ~reply:is_reply ~invalid;
          conn = Some conn;
        }
      end

(** Commit a new connection (the [ct(commit)] action). Applies the zone
    limit; returns [None] when the zone is full (packet should drop). *)
let commit t ~now ~zone ?nat (k : FK.t) : conn option =
  let tup = tuple_of_key ~zone k in
  match find_tuple t tup with
  | Some conn -> Some conn  (* already committed *)
  | None -> begin
      let count =
        match Hashtbl.find_opt t.zone_counts zone with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.replace t.zone_counts zone r;
            r
      in
      (* the effective limit is the configured one, tightened by any open
         Ct_pressure fault window on this zone *)
      let limit =
        match (Hashtbl.find_opt t.zone_limits zone, Ovs_faults.Faults.ct_limit ~zone) with
        | Some l, Some forced -> Some (Int.min l forced)
        | None, forced -> forced
        | (Some _ as l), None -> l
      in
      match limit with
      | Some l when !count >= l ->
          t.limit_drops <- t.limit_drops + 1;
          Ovs_sim.Coverage.incr cov_zone_limit_drop;
          None
      | _ ->
          let state =
            if tup.proto = Ovs_packet.Ipv4.Proto.tcp then Tcp Syn_sent
            else if tup.proto = Ovs_packet.Ipv4.Proto.udp then Udp_single
            else Icmp_active
          in
          let conn =
            {
              orig = tup;
              state;
              mark = 0;
              created_at = now;
              last_seen = now;
              packets = 1;
              nat;
            }
          in
          insert_dir t tup conn;
          insert_dir t (tuple_reverse tup) conn;
          incr count;
          t.committed <- t.committed + 1;
          Some conn
    end

(** Apply a connection's NAT rewrite to a packet (and its extracted key),
    translating forward on original-direction packets and reversing on
    replies. Returns [true] if the packet was rewritten. *)
let apply_nat (conn : conn) ~is_reply (buf : Ovs_packet.Buffer.t) (k : FK.t) =
  match conn.nat with
  | None -> false
  | Some { nat_src; nat_dst } ->
      let set_ip_src v =
        Ovs_packet.Ipv4.set_src buf v;
        FK.set k FK.Field.Nw_src v
      and set_ip_dst v =
        Ovs_packet.Ipv4.set_dst buf v;
        FK.set k FK.Field.Nw_dst v
      in
      let set_port_src p =
        (if FK.get k FK.Field.Nw_proto = Ovs_packet.Ipv4.Proto.tcp then
           Ovs_packet.Tcp.set_src_port buf p
         else Ovs_packet.Udp.set_src_port buf p);
        FK.set k FK.Field.Tp_src p
      and set_port_dst p =
        (if FK.get k FK.Field.Nw_proto = Ovs_packet.Ipv4.Proto.tcp then
           Ovs_packet.Tcp.set_dst_port buf p
         else Ovs_packet.Udp.set_dst_port buf p);
        FK.set k FK.Field.Tp_dst p
      in
      let changed = ref false in
      (match nat_src with
      | Some (ip, port) ->
          changed := true;
          if is_reply then begin
            set_ip_dst conn.orig.src;
            set_port_dst conn.orig.sport
          end
          else begin
            set_ip_src ip;
            set_port_src port
          end
      | None -> ());
      (match nat_dst with
      | Some (ip, port) ->
          changed := true;
          if is_reply then begin
            set_ip_src conn.orig.dst;
            set_port_src conn.orig.dport
          end
          else begin
            set_ip_dst ip;
            set_port_dst port
          end
      | None -> ());
      if !changed then Ovs_packet.Ipv4.update_csum buf;
      !changed

(** Shrink [zone] to at most [limit] tracked connections by evicting the
    oldest entries first — conntrack's early_drop policy under table
    pressure (the longest-lived connection is the cheapest to lose), and
    the window-open side effect of a [Ct_pressure] fault: evicted
    connections must re-commit, and while the forced limit holds, those
    commits fail into the invalid state. Returns the number evicted. *)
let evict_to_limit t ~zone ~limit =
  let excess = zone_count t ~zone - limit in
  if excess <= 0 then 0
  else begin
    let candidates = ref [] in
    iter_conns t (fun conn ->
        if conn.orig.zone = zone then candidates := conn :: !candidates);
    (* oldest first; the tuple tie-break keeps same-instant commits (one
       virtual-time batch) deterministic regardless of hash order *)
    let victims =
      List.sort
        (fun a b ->
          match compare a.created_at b.created_at with
          | 0 -> compare a.orig b.orig
          | c -> c)
        !candidates
      |> List.filteri (fun i _ -> i < excess)
    in
    List.iter (remove_conn t) victims;
    List.length victims
  end

(** Enforce one zone limit across several conntrack instances — the
    per-PMD sharding story, where each PMD domain owns a private table
    but nf_conncount semantics are per zone, not per PMD. Victims are
    the globally oldest connections regardless of which instance holds
    them. Returns the total evicted. *)
let evict_to_limit_multi ts ~zone ~limit =
  let total = List.fold_left (fun acc t -> acc + zone_count t ~zone) 0 ts in
  let excess = total - limit in
  if excess <= 0 then 0
  else begin
    let candidates = ref [] in
    List.iter
      (fun t ->
        iter_conns t (fun conn ->
            if conn.orig.zone = zone then candidates := (t, conn) :: !candidates))
      ts;
    let victims =
      List.sort
        (fun (_, a) (_, b) ->
          match compare a.created_at b.created_at with
          | 0 -> compare a.orig b.orig
          | c -> c)
        !candidates
      |> List.filteri (fun i _ -> i < excess)
    in
    List.iter (fun (t, conn) -> remove_conn t conn) victims;
    List.length victims
  end

(** Resumable bounded expiry: examine at least [budget] directional
    entries' worth of buckets (an empty bucket costs 1, so progress is
    guaranteed), starting from where the previous call stopped, and
    reclaim every expired connection found. One full rotation of the
    cursor — however many calls it is amortized over — examines every
    bucket exactly once, so no connection lingers more than one
    rotation past its timeout. Returns how many were reclaimed. *)
let sweep_bounded t ~now ~budget =
  let n_sh = Array.length t.shards in
  let total_buckets =
    Array.fold_left (fun acc sh -> acc + Array.length sh.buckets) 0 t.shards
  in
  let reclaimed = ref 0 in
  let examined = ref 0 in
  let visited = ref 0 in
  while !visited < total_buckets && !examined < budget do
    let sh = t.shards.(t.shard_cursor) in
    if sh.cursor >= Array.length sh.buckets then begin
      sh.cursor <- 0;
      t.shard_cursor <- (t.shard_cursor + 1) mod n_sh
    end
    else begin
      let bucket = sh.buckets.(sh.cursor) in
      examined := !examined + Int.max 1 (List.length bucket);
      List.iter
        (fun s ->
          if
            s.s_tup = s.s_conn.orig
            && now -. s.s_conn.last_seen > timeout_of s.s_conn.state
          then begin
            remove_conn t s.s_conn;
            incr reclaimed
          end)
        bucket;
      sh.cursor <- sh.cursor + 1;
      incr visited;
      if sh.cursor >= Array.length sh.buckets then begin
        sh.cursor <- 0;
        t.shard_cursor <- (t.shard_cursor + 1) mod n_sh
      end
    end
  done;
  !reclaimed

(** Expire connections idle past their protocol timeout. Returns how many
    were reclaimed. The unbounded wrapper: one whole cursor rotation. *)
let sweep t ~now = sweep_bounded t ~now ~budget:max_int
