(** Connection tracking: the userspace reimplementation of the kernel's
    netfilter conntrack that OVS needed once the datapath left the kernel
    (Sec 4). Supports zones (NSX uses one zone per virtual network for
    firewall separation), a TCP state machine, UDP/ICMP pseudo-state,
    source/destination NAT, expiry, and per-zone connection limits (the
    feature whose kernel backport cost the paper quantifies in Sec 2.1.1). *)

module FK = Ovs_packet.Flow_key

let cov_zone_limit_drop = Ovs_sim.Coverage.counter "ct_zone_limit_drop"

(** Canonical 5-tuple plus zone; directionality is derived by comparing
    against the stored original direction. *)
type tuple = {
  src : int;
  dst : int;
  proto : int;
  sport : int;
  dport : int;
  zone : int;
}

let tuple_reverse t = { t with src = t.dst; dst = t.src; sport = t.dport; dport = t.sport }

let tuple_of_key ~zone (k : FK.t) =
  {
    src = FK.get k FK.Field.Nw_src;
    dst = FK.get k FK.Field.Nw_dst;
    proto = FK.get k FK.Field.Nw_proto;
    sport = FK.get k FK.Field.Tp_src;
    dport = FK.get k FK.Field.Tp_dst;
    zone;
  }

type tcp_state =
  | Syn_sent
  | Syn_recv
  | Established
  | Fin_wait
  | Close_wait
  | Time_wait
  | Closed

let tcp_state_name = function
  | Syn_sent -> "SYN_SENT"
  | Syn_recv -> "SYN_RECV"
  | Established -> "ESTABLISHED"
  | Fin_wait -> "FIN_WAIT"
  | Close_wait -> "CLOSE_WAIT"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

type proto_state = Tcp of tcp_state | Udp_single | Udp_multiple | Icmp_active

type nat_action = {
  nat_src : (int * int) option;  (** translated (ip, port) for SNAT *)
  nat_dst : (int * int) option;  (** translated (ip, port) for DNAT *)
}

type conn = {
  orig : tuple;
  mutable state : proto_state;
  mutable mark : int;
  mutable created_at : Ovs_sim.Time.ns;
  mutable last_seen : Ovs_sim.Time.ns;
  mutable packets : int;
  nat : nat_action option;
}

(** Timeouts, in virtual ns, following netfilter's defaults (scaled). *)
let timeout_of = function
  | Tcp Established -> Ovs_sim.Time.s 7440.
  | Tcp Time_wait | Tcp Close_wait | Tcp Fin_wait -> Ovs_sim.Time.s 120.
  | Tcp _ -> Ovs_sim.Time.s 60.
  | Udp_single -> Ovs_sim.Time.s 30.
  | Udp_multiple -> Ovs_sim.Time.s 120.
  | Icmp_active -> Ovs_sim.Time.s 30.

type t = {
  conns : (tuple, conn) Hashtbl.t;  (** both directions map to the conn *)
  zone_counts : (int, int ref) Hashtbl.t;
  zone_limits : (int, int) Hashtbl.t;
  mutable lookups : int;
  mutable committed : int;
  mutable limit_drops : int;
}

let create () =
  {
    conns = Hashtbl.create 4096;
    zone_counts = Hashtbl.create 64;
    zone_limits = Hashtbl.create 64;
    lookups = 0;
    committed = 0;
    limit_drops = 0;
  }

(** Per-zone connection limit (Sec 2.1.1's nf_conncount feature). *)
let set_zone_limit t ~zone ~limit = Hashtbl.replace t.zone_limits zone limit

let zone_count t ~zone =
  match Hashtbl.find_opt t.zone_counts zone with Some r -> !r | None -> 0

let active_conns t = Hashtbl.length t.conns / 2

(** Result of passing a packet through conntrack: the ct_state bits OVS
    sets on the packet for the recirculated lookup. *)
type verdict = { ct_state : int; conn : conn option }

let state_bits ~is_new ~established ~reply ~invalid =
  let open FK.Ct_state_bits in
  trk
  lor (if is_new then new_ else 0)
  lor (if established then est else 0)
  lor (if reply then rpl else 0)
  lor if invalid then inv else 0

let tcp_flags_of_key k = FK.get k FK.Field.Tcp_flags

(* advance the TCP state machine for a packet in the given direction *)
let tcp_advance st ~flags ~is_reply =
  let open Ovs_packet.Tcp.Flags in
  let has f = flags land f <> 0 in
  if has rst then Closed
  else
    match st with
    | Syn_sent when is_reply && has syn && has ack -> Syn_recv
    | Syn_sent -> Syn_sent
    | Syn_recv when (not is_reply) && has ack -> Established
    | Syn_recv -> Syn_recv
    | Established when has fin -> Fin_wait
    | Established -> Established
    | Fin_wait when has fin -> Close_wait
    | Fin_wait -> Fin_wait
    | Close_wait when has ack -> Time_wait
    | Close_wait -> Close_wait
    | Time_wait -> Time_wait
    | Closed -> Closed

(* ICMP errors (destination unreachable, time exceeded) embed the header
   of the offending packet; if that packet belongs to a tracked
   connection, the error is "related" (+rel), which firewalls must admit
   for PMTU discovery and friends to work. *)
let related_conn t ~zone (buf : Ovs_packet.Buffer.t) : conn option =
  let open Ovs_packet in
  match Icmp.parse buf with
  | Some ic
    when ic.Icmp.icmp_type = Icmp.Kind.dest_unreachable
         || ic.Icmp.icmp_type = Icmp.Kind.time_exceeded -> begin
      (* the embedded original IP header starts after the 8-byte ICMP
         header; it is followed by at least 8 bytes of its L4 header *)
      let inner_l3 = buf.Buffer.l4_ofs + Icmp.header_len in
      if Buffer.length buf < inner_l3 + Ipv4.header_len + 8 then None
      else begin
        let saved_l3 = buf.Buffer.l3_ofs and saved_l4 = buf.Buffer.l4_ofs in
        buf.Buffer.l3_ofs <- inner_l3;
        let result =
          match Ipv4.parse buf with
          | Some ip when not (Ipv4.is_later_fragment ip) ->
              let sport = Buffer.get_u16 buf buf.Buffer.l4_ofs in
              let dport = Buffer.get_u16 buf (buf.Buffer.l4_ofs + 2) in
              let tup =
                { src = ip.Ipv4.src; dst = ip.Ipv4.dst; proto = ip.Ipv4.proto;
                  sport; dport; zone }
              in
              Hashtbl.find_opt t.conns tup
          | Some _ | None -> None
        in
        buf.Buffer.l3_ofs <- saved_l3;
        buf.Buffer.l4_ofs <- saved_l4;
        result
      end
    end
  | Some _ | None -> None

(** Track a packet without committing: reports what the connection state
    would be ([+trk] and friends), as the [ct] action does before the
    pipeline decides to commit. Pass [buf] to let ICMP errors be matched
    to the connection they relate to ([+rel]). *)
let track ?buf t ~now ~zone (k : FK.t) : verdict =
  t.lookups <- t.lookups + 1;
  let tup = tuple_of_key ~zone k in
  match Hashtbl.find_opt t.conns tup with
  | None -> begin
      let related =
        if FK.get k FK.Field.Nw_proto = Ovs_packet.Ipv4.Proto.icmp then
          match buf with Some b -> related_conn t ~zone b | None -> None
        else None
      in
      match related with
      | Some conn ->
          { ct_state = FK.Ct_state_bits.(trk lor rel); conn = Some conn }
      | None ->
          { ct_state = state_bits ~is_new:true ~established:false ~reply:false ~invalid:false;
            conn = None }
    end
  | Some conn ->
      let is_reply = tup = tuple_reverse conn.orig && tup <> conn.orig in
      let expired = now -. conn.last_seen > timeout_of conn.state in
      if expired then begin
        Hashtbl.remove t.conns conn.orig;
        Hashtbl.remove t.conns (tuple_reverse conn.orig);
        (match Hashtbl.find_opt t.zone_counts zone with
        | Some r -> decr r
        | None -> ());
        { ct_state = state_bits ~is_new:true ~established:false ~reply:false ~invalid:false; conn = None }
      end
      else begin
        conn.last_seen <- now;
        conn.packets <- conn.packets + 1;
        (match conn.state with
        | Tcp st ->
            let flags = tcp_flags_of_key k in
            conn.state <- Tcp (tcp_advance st ~flags ~is_reply)
        | Udp_single when is_reply -> conn.state <- Udp_multiple
        | Udp_single | Udp_multiple | Icmp_active -> ());
        let invalid = conn.state = Tcp Closed in
        let established =
          match conn.state with
          | Tcp Established | Tcp Fin_wait | Tcp Close_wait -> true
          | Udp_multiple -> true
          | Tcp _ | Udp_single | Icmp_active -> false
        in
        {
          ct_state =
            state_bits ~is_new:false ~established:(established && not invalid)
              ~reply:is_reply ~invalid;
          conn = Some conn;
        }
      end

(** Commit a new connection (the [ct(commit)] action). Applies the zone
    limit; returns [None] when the zone is full (packet should drop). *)
let commit t ~now ~zone ?nat (k : FK.t) : conn option =
  let tup = tuple_of_key ~zone k in
  match Hashtbl.find_opt t.conns tup with
  | Some conn -> Some conn  (* already committed *)
  | None -> begin
      let count =
        match Hashtbl.find_opt t.zone_counts zone with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.replace t.zone_counts zone r;
            r
      in
      (* the effective limit is the configured one, tightened by any open
         Ct_pressure fault window on this zone *)
      let limit =
        match (Hashtbl.find_opt t.zone_limits zone, Ovs_faults.Faults.ct_limit ~zone) with
        | Some l, Some forced -> Some (Int.min l forced)
        | None, forced -> forced
        | (Some _ as l), None -> l
      in
      match limit with
      | Some l when !count >= l ->
          t.limit_drops <- t.limit_drops + 1;
          Ovs_sim.Coverage.incr cov_zone_limit_drop;
          None
      | _ ->
          let state =
            if tup.proto = Ovs_packet.Ipv4.Proto.tcp then Tcp Syn_sent
            else if tup.proto = Ovs_packet.Ipv4.Proto.udp then Udp_single
            else Icmp_active
          in
          let conn =
            {
              orig = tup;
              state;
              mark = 0;
              created_at = now;
              last_seen = now;
              packets = 1;
              nat;
            }
          in
          Hashtbl.replace t.conns tup conn;
          Hashtbl.replace t.conns (tuple_reverse tup) conn;
          incr count;
          t.committed <- t.committed + 1;
          Some conn
    end

(** Apply a connection's NAT rewrite to a packet (and its extracted key),
    translating forward on original-direction packets and reversing on
    replies. Returns [true] if the packet was rewritten. *)
let apply_nat (conn : conn) ~is_reply (buf : Ovs_packet.Buffer.t) (k : FK.t) =
  match conn.nat with
  | None -> false
  | Some { nat_src; nat_dst } ->
      let set_ip_src v =
        Ovs_packet.Ipv4.set_src buf v;
        FK.set k FK.Field.Nw_src v
      and set_ip_dst v =
        Ovs_packet.Ipv4.set_dst buf v;
        FK.set k FK.Field.Nw_dst v
      in
      let set_port_src p =
        (if FK.get k FK.Field.Nw_proto = Ovs_packet.Ipv4.Proto.tcp then
           Ovs_packet.Tcp.set_src_port buf p
         else Ovs_packet.Udp.set_src_port buf p);
        FK.set k FK.Field.Tp_src p
      and set_port_dst p =
        (if FK.get k FK.Field.Nw_proto = Ovs_packet.Ipv4.Proto.tcp then
           Ovs_packet.Tcp.set_dst_port buf p
         else Ovs_packet.Udp.set_dst_port buf p);
        FK.set k FK.Field.Tp_dst p
      in
      let changed = ref false in
      (match nat_src with
      | Some (ip, port) ->
          changed := true;
          if is_reply then begin
            set_ip_dst conn.orig.src;
            set_port_dst conn.orig.sport
          end
          else begin
            set_ip_src ip;
            set_port_src port
          end
      | None -> ());
      (match nat_dst with
      | Some (ip, port) ->
          changed := true;
          if is_reply then begin
            set_ip_src conn.orig.dst;
            set_port_src conn.orig.dport
          end
          else begin
            set_ip_dst ip;
            set_port_dst port
          end
      | None -> ());
      if !changed then Ovs_packet.Ipv4.update_csum buf;
      !changed

(** Shrink [zone] to at most [limit] tracked connections by evicting the
    oldest entries first — conntrack's early_drop policy under table
    pressure (the longest-lived connection is the cheapest to lose), and
    the window-open side effect of a [Ct_pressure] fault: evicted
    connections must re-commit, and while the forced limit holds, those
    commits fail into the invalid state. Returns the number evicted. *)
let evict_to_limit t ~zone ~limit =
  let excess = zone_count t ~zone - limit in
  if excess <= 0 then 0
  else begin
    let candidates = ref [] in
    Hashtbl.iter
      (fun tup conn ->
        if tup = conn.orig && tup.zone = zone then
          candidates := conn :: !candidates)
      t.conns;
    (* oldest first; the tuple tie-break keeps same-instant commits (one
       virtual-time batch) deterministic regardless of hash order *)
    let victims =
      List.sort
        (fun a b ->
          match compare a.created_at b.created_at with
          | 0 -> compare a.orig b.orig
          | c -> c)
        !candidates
      |> List.filteri (fun i _ -> i < excess)
    in
    List.iter
      (fun conn ->
        Hashtbl.remove t.conns conn.orig;
        Hashtbl.remove t.conns (tuple_reverse conn.orig);
        match Hashtbl.find_opt t.zone_counts conn.orig.zone with
        | Some r -> decr r
        | None -> ())
      victims;
    List.length victims
  end

(** Expire connections idle past their protocol timeout. Returns how many
    were reclaimed. *)
let sweep t ~now =
  let dead = ref [] in
  Hashtbl.iter
    (fun tup conn ->
      if tup = conn.orig && now -. conn.last_seen > timeout_of conn.state then
        dead := conn :: !dead)
    t.conns;
  List.iter
    (fun conn ->
      Hashtbl.remove t.conns conn.orig;
      Hashtbl.remove t.conns (tuple_reverse conn.orig);
      match Hashtbl.find_opt t.zone_counts conn.orig.zone with
      | Some r -> decr r
      | None -> ())
    !dead;
  List.length !dead
