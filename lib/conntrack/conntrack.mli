(** Connection tracking: the userspace reimplementation of the kernel's
    netfilter conntrack that OVS needed once the datapath left the kernel
    (paper Sec 4). Zones isolate virtual networks; TCP connections follow
    a real state machine over real flags; ICMP errors are matched to the
    connection they quote ([+rel]); NAT rewrites both packet bytes and
    flow keys; per-zone limits model the nf_conncount feature whose
    backport cost Sec 2.1.1 quantifies. *)

module FK = Ovs_packet.Flow_key

type tuple = {
  src : int;
  dst : int;
  proto : int;
  sport : int;
  dport : int;
  zone : int;
}

val tuple_reverse : tuple -> tuple
val tuple_of_key : zone:int -> FK.t -> tuple

type tcp_state =
  | Syn_sent
  | Syn_recv
  | Established
  | Fin_wait
  | Close_wait
  | Time_wait
  | Closed

val tcp_state_name : tcp_state -> string

type proto_state = Tcp of tcp_state | Udp_single | Udp_multiple | Icmp_active

type nat_action = {
  nat_src : (int * int) option;  (** SNAT target (ip, port) *)
  nat_dst : (int * int) option;  (** DNAT target (ip, port) *)
}

type conn = {
  orig : tuple;  (** the original (initiating) direction *)
  mutable state : proto_state;
  mutable mark : int;
  mutable created_at : Ovs_sim.Time.ns;
  mutable last_seen : Ovs_sim.Time.ns;
  mutable packets : int;
  nat : nat_action option;
}

type t

val create : ?shards:int -> unit -> t
(** [shards] (default 1) splits storage by a direction-symmetric
    5-tuple hash: a tuple and its reverse always land in the same
    shard, so per-PMD engines can treat each shard as domain-private
    and keep the hit path lock-free. *)

val n_shards : t -> int

val set_zone_limit : t -> zone:int -> limit:int -> unit
(** Cap committed connections in a zone (nf_conncount). *)

val zone_count : t -> zone:int -> int
val active_conns : t -> int
val lookups : t -> int
val committed : t -> int
val limit_drops : t -> int

type verdict = { ct_state : int; conn : conn option }
(** The ct_state bits ({!FK.Ct_state_bits}) the [ct] action sets for the
    recirculated lookup, plus the connection if one matched. *)

val track : ?buf:Ovs_packet.Buffer.t -> t -> now:Ovs_sim.Time.ns -> zone:int -> FK.t -> verdict
(** Classify a packet against the connection table without committing.
    Expired connections are reclaimed lazily. Pass [buf] so ICMP errors
    can be matched to the connection they quote ([+rel]). *)

val commit : t -> now:Ovs_sim.Time.ns -> zone:int -> ?nat:nat_action -> FK.t -> conn option
(** Create the connection (the [ct(commit)] action); idempotent for an
    existing one. [None] when the zone's limit is reached — the packet
    should drop. *)

val apply_nat : conn -> is_reply:bool -> Ovs_packet.Buffer.t -> FK.t -> bool
(** Rewrite the packet (and its extracted key) per the connection's NAT:
    forward translation on original-direction packets, reverse on
    replies. Refreshes the IPv4 header checksum. Returns whether anything
    changed. *)

val sweep : t -> now:Ovs_sim.Time.ns -> int
(** Reclaim connections idle past their protocol timeout; returns how
    many. Equivalent to {!sweep_bounded} with an infinite budget: one
    full rotation of the bucket cursor. *)

val sweep_bounded : t -> now:Ovs_sim.Time.ns -> budget:int -> int
(** Resumable bounded expiry: examine roughly [budget] directional
    entries (an empty bucket costs 1, so progress is guaranteed)
    starting where the previous call stopped, reclaiming expired
    connections found along the way. A full cursor rotation — however
    many calls it is amortized over — visits every bucket exactly
    once, so per-poll budgets bound reclamation latency by one
    rotation. Returns how many connections were reclaimed. *)

val evict_to_limit : t -> zone:int -> limit:int -> int
(** Evict the oldest connections (by [created_at], original direction)
    until [zone] holds at most [limit] — early_drop under table
    pressure; the [Ct_pressure] fault's window-open side effect.
    Returns the number evicted. *)

val evict_to_limit_multi : t list -> zone:int -> limit:int -> int
(** {!evict_to_limit} across several conntrack instances at once (the
    per-PMD private-table layout): victims are the globally oldest
    connections in [zone] regardless of owning instance. Returns the
    total evicted. *)

val timeout_of : proto_state -> Ovs_sim.Time.ns
