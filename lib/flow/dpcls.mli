(** The megaflow cache: a tuple-space-search classifier (dpcls), the
    second level of the datapath lookup hierarchy. One subtable per
    distinct wildcard mask; megaflows are disjoint so there are no
    priorities; subtables are probed in descending hit-count order and
    re-sorted periodically. Lookup cost is proportional to the number of
    subtables probed, which the API reports. *)

module FK = Ovs_packet.Flow_key

type 'a entry = {
  key : FK.t;  (** pre-masked key *)
  mutable value : 'a;
      (** mutable so a reinstall updates the record in place — outside
          references (the computational cache's iSet members) must never
          observe a stale value *)
  mutable hits : int;
  mutable cycles : float;
      (** virtual ns spent on lookups that hit this entry (credited by the
          datapath, which knows the per-probe cost) — dpctl/dump-flows'
          per-megaflow cycle stats *)
}

type 'a t

val create : unit -> 'a t

val subtable_count : 'a t -> int
(** Distinct wildcard masks currently installed. *)

val flow_count : 'a t -> int
(** Total megaflow entries. *)

val insert : 'a t -> mask:FK.t -> key:FK.t -> 'a -> unit
(** Install (or replace) the megaflow matching [key] under [mask]. [key]
    need not be pre-masked. *)

val lookup_entry : 'a t -> FK.t -> ('a entry * int * FK.t) option
(** [lookup_entry t key] is [Some (entry, subtables_probed, mask)] for the
    first subtable containing a match, or [None] after probing them all.
    The returned mask identifies the matching megaflow's subtable so upper
    cache layers can be populated; the entry is exposed so the caller can
    credit lookup cycles to it. *)

val lookup_full : 'a t -> FK.t -> ('a * int * FK.t) option
(** {!lookup_entry} with the entry resolved to its value. *)

val lookup : 'a t -> FK.t -> ('a * int) option
(** {!lookup_full} without the mask. *)

val peek : 'a t -> FK.t -> ('a * FK.t) option
(** Lookup without mutating any statistic, hit count or the subtable
    order — for cross-checking other tiers on live state. *)

val remove : 'a t -> mask:FK.t -> key:FK.t -> bool
(** Remove one megaflow; empty subtables are garbage-collected. Returns
    whether an entry was removed. *)

val flush : 'a t -> unit

val iter :
  'a t -> (mask:FK.t -> key:FK.t -> 'a -> int -> unit) -> unit
(** Visit every megaflow as [(mask, masked key, value, hit count)] — the
    dpctl/dump-flows view. *)

val iter_entries : 'a t -> (mask:FK.t -> 'a entry -> unit) -> unit
(** {!iter} with the full entry exposed (hit and cycle stats). *)

val mean_probes : 'a t -> float
(** Mean subtables probed per lookup since creation. *)
