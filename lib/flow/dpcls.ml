(** The megaflow cache: a tuple-space-search classifier (dpcls), the second
    level of the datapath lookup hierarchy — and the structure whose
    absence cripples the eBPF datapath (footnote 1 of the paper).

    Megaflows installed by the slow path are disjoint, so the classifier
    carries no priorities: one subtable per distinct wildcard mask, probed
    in descending hit-count order, first match wins. The number of
    subtables probed per lookup is reported to the caller because lookup
    cost is proportional to it. *)

module FK = Ovs_packet.Flow_key

type 'a entry = {
  key : FK.t;  (** pre-masked key *)
  mutable value : 'a;
      (** mutable so a reinstall updates the record in place — outside
          references (the computational cache's iSet members) must never
          observe a stale value *)
  mutable hits : int;
  mutable cycles : float;
      (** virtual ns spent on lookups that hit this entry (credited by the
          datapath, which knows the per-probe cost) — dpctl/dump-flows'
          per-megaflow cycle stats *)
}

type 'a subtable = {
  mask : FK.t;
  tbl : (int, 'a entry list ref) Hashtbl.t;
  mutable st_hits : int;
  mutable st_count : int;
}

type 'a t = {
  mutable subtables : 'a subtable list;
  mutable lookups : int;
  mutable total_probes : int;
  mutable resort_counter : int;
}

let create () =
  { subtables = []; lookups = 0; total_probes = 0; resort_counter = 0 }

let subtable_count t = List.length t.subtables

let flow_count t =
  List.fold_left (fun n st -> n + st.st_count) 0 t.subtables

let find_subtable t mask =
  List.find_opt (fun st -> FK.equal st.mask mask) t.subtables

(** Install a megaflow. [key] needs not be pre-masked. *)
let insert t ~mask ~key value =
  let masked = FK.apply_mask key mask in
  let st =
    match find_subtable t mask with
    | Some st -> st
    | None ->
        let st =
          { mask = FK.copy mask; tbl = Hashtbl.create 256; st_hits = 0; st_count = 0 }
        in
        t.subtables <- st :: t.subtables;
        st
  in
  (* hash exactly as lookup will: over the masked-in fields only *)
  let h = FK.hash_masked masked st.mask in
  let bucket =
    match Hashtbl.find_opt st.tbl h with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.replace st.tbl h b;
        b
  in
  (* replace an existing entry with the same masked key, in place *)
  let existing = List.exists (fun e -> FK.equal e.key masked) !bucket in
  if existing then
    List.iter (fun e -> if FK.equal e.key masked then e.value <- value) !bucket
  else begin
    bucket := { key = masked; value; hits = 0; cycles = 0. } :: !bucket;
    st.st_count <- st.st_count + 1
  end

(** Look a packet's flow key up. Returns the value, the number of
    subtables probed (the lookup's cost driver) and the matching
    subtable's mask (for installing into upper cache layers), or [None]
    after probing them all. Subtables are re-sorted by hit count
    periodically, as the real dpcls does. *)
let lookup_entry t (key : FK.t) : ('a entry * int * FK.t) option =
  t.lookups <- t.lookups + 1;
  t.resort_counter <- t.resort_counter + 1;
  if t.resort_counter >= 1024 then begin
    t.resort_counter <- 0;
    t.subtables <-
      List.sort (fun a b -> compare b.st_hits a.st_hits) t.subtables;
    (* decay the counts after ranking: each resort period then weighs
       recent traffic against a halved history, so a workload shift
       reorders within a few periods. Sorting by all-time hits never
       reorders once an old hot subtable has banked a large lead. *)
    List.iter (fun st -> st.st_hits <- st.st_hits / 2) t.subtables
  end;
  let rec probe n = function
    | [] ->
        t.total_probes <- t.total_probes + n;
        None
    | st :: rest -> begin
        let h = FK.hash_masked key st.mask in
        let hit =
          match Hashtbl.find_opt st.tbl h with
          | None -> None
          | Some bucket ->
              List.find_opt
                (fun e -> FK.equal e.key (FK.apply_mask key st.mask))
                !bucket
        in
        match hit with
        | Some e ->
            e.hits <- e.hits + 1;
            st.st_hits <- st.st_hits + 1;
            t.total_probes <- t.total_probes + n + 1;
            Some (e, n + 1, st.mask)
        | None -> probe (n + 1) rest
      end
  in
  probe 0 t.subtables

(** {!lookup_entry} with the entry resolved to its value. *)
let lookup_full t (key : FK.t) : ('a * int * FK.t) option =
  match lookup_entry t key with
  | Some (e, probes, mask) -> Some (e.value, probes, mask)
  | None -> None

(** {!lookup_full} without the mask. *)
let lookup t (key : FK.t) : ('a * int) option =
  match lookup_full t key with
  | Some (v, probes, _) -> Some (v, probes)
  | None -> None

(** Look [key] up without mutating any statistic, hit count or the
    subtable order — for cross-checking other tiers against the
    classifier on live state. *)
let peek t (key : FK.t) : ('a * FK.t) option =
  let rec probe = function
    | [] -> None
    | st :: rest -> begin
        let h = FK.hash_masked key st.mask in
        let hit =
          match Hashtbl.find_opt st.tbl h with
          | None -> None
          | Some bucket ->
              List.find_opt
                (fun e -> FK.equal e.key (FK.apply_mask key st.mask))
                !bucket
        in
        match hit with
        | Some e -> Some (e.value, st.mask)
        | None -> probe rest
      end
  in
  probe t.subtables

(** Remove the megaflow matching [key] under [mask]; empty subtables are
    garbage collected. Returns whether an entry was removed. *)
let remove t ~mask ~key =
  match find_subtable t mask with
  | None -> false
  | Some st ->
      let masked = FK.apply_mask key mask in
      let h = FK.hash_masked masked st.mask in
      let removed = ref false in
      (match Hashtbl.find_opt st.tbl h with
      | None -> ()
      | Some bucket ->
          let before = List.length !bucket in
          bucket := List.filter (fun e -> not (FK.equal e.key masked)) !bucket;
          if List.length !bucket < before then begin
            removed := true;
            st.st_count <- st.st_count - 1;
            if !bucket = [] then Hashtbl.remove st.tbl h
          end);
      if st.st_count = 0 then
        t.subtables <- List.filter (fun s -> s != st) t.subtables;
      !removed

let flush t =
  t.subtables <- [];
  t.lookups <- 0;
  t.total_probes <- 0

(** Iterate every installed megaflow as (mask, masked key, value, hits). *)
let iter t f =
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun _ bucket -> List.iter (fun e -> f ~mask:st.mask ~key:e.key e.value e.hits) !bucket)
        st.tbl)
    t.subtables

(** {!iter} with the full entry exposed (hit and cycle stats). *)
let iter_entries t f =
  List.iter
    (fun st ->
      Hashtbl.iter (fun _ bucket -> List.iter (fun e -> f ~mask:st.mask e) !bucket) st.tbl)
    t.subtables

(** Mean subtables probed per lookup so far. *)
let mean_probes t =
  if t.lookups = 0 then 0.
  else float_of_int t.total_probes /. float_of_int t.lookups
