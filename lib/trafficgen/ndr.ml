(** RFC 2544-style non-drop-rate search: binary search over offered rate
    for the highest rate the device under test forwards with zero loss.

    The search itself is pure — the caller supplies [probe], which offers
    packets at a rate (pps) and reports how many came back. A probe is
    loss-free iff [delivered = offered]. Determinism and monotonicity are
    the caller-visible contract (pinned by [test/test_latency.ml]):

    - the search runs a fixed number of halvings, so it always terminates
      within [iters] probes (plus the two bracket probes);
    - the reported NDR is a rate that was {e probed} and observed
      loss-free (never an interpolation), so it can be re-probed;
    - the NDR never exceeds any rate observed to lose packets: the upper
      bracket only ever moves down onto losing rates.

    With a deterministic probe (the virtual-time rig), the same bracket
    and budget always find the same rate. *)

type probe_result = {
  offered : int;  (** packets presented to the device under test *)
  delivered : int;  (** packets that egressed *)
}

let lossless (p : probe_result) = p.delivered >= p.offered

type outcome = {
  ndr_pps : float;
      (** highest probed zero-loss rate; 0. when even the lower bracket
          loses packets *)
  iterations : int;  (** probes actually run *)
  probes : (float * bool) list;
      (** every (rate, loss-free?) observation, in probe order *)
}

(** [search ~lo ~hi ~probe ()] binary-searches rates in [[lo, hi]] (pps).
    [iters] bounds the halvings (default 12: the bracket narrows to
    [(hi - lo) / 4096]). @raise Invalid_argument on a bad bracket. *)
let search ?(iters = 12) ~lo ~hi ~(probe : float -> probe_result) () : outcome
    =
  if not (lo > 0. && hi > lo) then invalid_arg "Ndr.search: bad bracket";
  let trail = ref [] in
  let runs = ref 0 in
  let try_rate rate =
    incr runs;
    let ok = lossless (probe rate) in
    trail := (rate, ok) :: !trail;
    ok
  in
  let finish best =
    { ndr_pps = best; iterations = !runs; probes = List.rev !trail }
  in
  (* bracket: if the top rate is loss-free the device is not the
     bottleneck at [hi]; if the bottom rate loses, there is no NDR in the
     bracket at all *)
  if try_rate hi then finish hi
  else if not (try_rate lo) then finish 0.
  else begin
    (* invariant: [best] was probed loss-free, [bad] was probed losing *)
    let best = ref lo and bad = ref hi in
    for _ = 1 to iters do
      let mid = (!best +. !bad) /. 2. in
      if try_rate mid then best := mid else bad := mid
    done;
    finish !best
  end
