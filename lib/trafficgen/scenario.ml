(** The Sec 5.2 forwarding-rate scenarios: P2P, PVP and PCP loopbacks.

    A TRex-like generator offers minimum-size UDP packets on one physical
    port; the datapath forwards them across the scenario-specific path and
    back out the other port. The measured rate is packets over the busiest
    execution context's virtual time (the pipeline bottleneck), capped at
    line rate; CPU usage is the Table 4 breakdown. *)

module Cpu = Ovs_sim.Cpu
module Costs = Ovs_sim.Costs
module Time = Ovs_sim.Time
module Netdev = Ovs_netdev.Netdev
module Dpif = Ovs_datapath.Dpif
module Pmd = Ovs_datapath.Pmd
module Health = Ovs_datapath.Health
module Faults = Ovs_faults.Faults
module Engine = Ovs_datapath.Engine
module Engine_vt = Ovs_datapath.Engine_vt
module Engine_domains = Ovs_datapath.Engine_domains

type virt = Vm_tap | Vm_vhost | Ct_veth | Ct_xdp | Ct_afpacket

let virt_name = function
  | Vm_tap -> "tap"
  | Vm_vhost -> "vhostuser"
  | Ct_veth -> "veth"
  | Ct_xdp -> "XDP program"
  | Ct_afpacket -> "af_packet"

type topology =
  | P2P
  | PVP of virt
  | PCP of virt
  | Chain of virt * int
      (** a service chain: [hops] virtual network functions in sequence
          (phy0 -> v1 -> ... -> vn -> phy1), each a guest/container
          bounce like the PVP/PCP endpoints. 2–4 hops is the
          NFV-benchmarking sweet spot; [Ct_xdp] is not supported (its
          redirect path bypasses the datapath). *)

type result = {
  rate_mpps : float;
  wall_ns : Ovs_sim.Time.ns;
  cpu : Cpu.breakdown;
  packets : int;
  line_limited : bool;
  pmds : Ovs_datapath.Pmd.report list;
      (** per-PMD breakdowns when the poll-mode runtime drove the run
          ([n_pmds >= 1] on a userspace datapath); empty otherwise *)
  busy_ns : Ovs_sim.Time.ns;
      (** summed busy time across every execution context — the charged
          total a stage trace's per-stage sums must reproduce *)
  stage_trace : Ovs_sim.Trace.t option;
      (** the measurement phase's per-stage cycle attribution, when the
          run was configured with [trace] *)
}

let pp_result ppf r =
  Fmt.pf ppf "%6.2f Mpps%s  cpu[%a]" r.rate_mpps
    (if r.line_limited then " (line rate)" else "")
    Cpu.pp_breakdown r.cpu

(* per-packet cost of a guest vCPU forwarding between two virtio queues *)
let guest_fwd_cost (c : Costs.t) =
  (2. *. c.Costs.virtio_ring_op) +. 45.

(* a container application echoing through its kernel stack: two socket
   syscalls plus an abbreviated stack traversal each way *)
let container_echo_cost (c : Costs.t) = (2. *. c.Costs.syscall) +. 120.

(** Which fast-path cache layers serve lookups (an ablation knob for the
    design choice Sec 2.1 describes: the kernel community rejected the
    exact-match cache, userspace kept it and later added the SMC). *)
type cache_mode = Cache_default | Cache_none | Cache_smc_only | Cache_emc_smc

type config = {
  kind : Dpif.kind;
  topology : topology;
  n_flows : int;
  frame_len : int;
  queues : int;
  gbps : float;
  warmup : int;
  measure : int;
  cache : cache_mode;
  ccache : bool;
      (** enable (and train after warmup) the computational cache — the
          learned classifier tier between SMC and dpcls *)
  mix : Pktgen.mix;  (** flow-choice distribution over the template set *)
  n_pmds : int;
      (** >= 1 drives the run through the {!Ovs_datapath.Pmd} runtime with
          that many PMD cores; 0 (the default) keeps the legacy
          one-context-per-queue loop *)
  n_rxqs : int;  (** rxqs for the PMD runtime; 0 means [queues] *)
  trace : bool;  (** attach a per-stage cycle tracer to the datapath *)
  faults : Faults.plan option;
      (** arm this fault plan over the measurement ({!run_chaos}) *)
  rx_policy : Netdev.rx_policy;  (** ingress NIC's full-ring behavior *)
  strict_match : bool;
      (** P2P: match udp explicitly with a default-drop rule, so mangled
          packets become accounted drops instead of riding a wildcard *)
  ct_zone : int option;
      (** P2P: send traffic through ct(commit) in this zone with an
          invalid-state drop rule (the conntrack-pressure target) *)
  upcall_capacity : int;  (** per-PMD upcall queue bound *)
  retry_capacity : int;
      (** per-PMD retry queue bound — the schedule explorer shrinks both
          so its bounded-queue oracle bites at tiny packet counts *)
  engine : Engine.mode;
      (** which execution engine drives the PMD leg: [`Vt] (default) is
          the deterministic virtual-time scheduler; [`Domains n] runs the
          P2P rig on [n] real OCaml domains and measures wall-clock Mpps *)
  latency : bool;
      (** arm per-packet sojourn-time measurement: the generator becomes
          a paced line-rate core ([offered_mpps]), stamps each packet's
          birth on its arrival clock, and the egress sink records
          sojourns into the datapath's {!Ovs_sim.Quantiles} sketch.
          Off (the default) creates no context and stamps nothing, so
          existing runs stay byte-identical. *)
  offered_mpps : float;
      (** offered rate for the paced latency driver, Mpps; 0. (default)
          offers at line rate *)
  burst : Pktgen.onoff option;
      (** bursty on-off generator mode for the paced driver *)
  ct_sweep_budget : int option;
      (** amortized conntrack expiry: each engine step also runs one
          bounded cursor sweep with this budget. [None] (default)
          keeps runs byte-identical to the pre-subsystem engine. *)
}

let default_config =
  {
    kind = Dpif.Afxdp Dpif.afxdp_default;
    topology = P2P;
    n_flows = 1;
    frame_len = 64;
    queues = 1;
    gbps = 25.;
    warmup = 4_000;
    measure = 40_000;
    cache = Cache_default;
    ccache = false;
    mix = Pktgen.Uniform;
    n_pmds = 0;
    n_rxqs = 0;
    trace = false;
    faults = None;
    rx_policy = Netdev.Rx_drop;
    strict_match = false;
    ct_zone = None;
    upcall_capacity = 512;
    retry_capacity = 256;
    engine = `Vt;
    latency = false;
    offered_mpps = 0.;
    burst = None;
    ct_sweep_budget = None;
  }

(** Builder over {!default_config}, so call sites survive new fields. *)
let config ?(kind = default_config.kind) ?(topology = default_config.topology)
    ?(n_flows = default_config.n_flows) ?(frame_len = default_config.frame_len)
    ?(queues = default_config.queues) ?(gbps = default_config.gbps)
    ?(warmup = default_config.warmup) ?(measure = default_config.measure)
    ?(cache = default_config.cache) ?(ccache = default_config.ccache)
    ?(mix = default_config.mix) ?(n_pmds = default_config.n_pmds)
    ?(n_rxqs = default_config.n_rxqs) ?(trace = default_config.trace)
    ?(faults = default_config.faults) ?(rx_policy = default_config.rx_policy)
    ?(strict_match = default_config.strict_match)
    ?(ct_zone = default_config.ct_zone)
    ?(upcall_capacity = default_config.upcall_capacity)
    ?(retry_capacity = default_config.retry_capacity)
    ?(engine = default_config.engine) ?(latency = default_config.latency)
    ?(offered_mpps = default_config.offered_mpps)
    ?(burst = default_config.burst)
    ?(ct_sweep_budget = default_config.ct_sweep_budget) () =
  { kind; topology; n_flows; frame_len; queues; gbps; warmup; measure; cache;
    ccache; mix; n_pmds; n_rxqs; trace; faults; rx_policy; strict_match;
    ct_zone; upcall_capacity; retry_capacity; engine; latency; offered_mpps;
    burst; ct_sweep_budget }

let is_userspace = function
  | Dpif.Dpdk | Dpif.Afxdp _ -> true
  | Dpif.Kernel | Dpif.Kernel_ebpf -> false

(** Everything [run] builds before driving traffic: machine, datapath,
    NICs, execution contexts, the optional PMD runtime and virtual
    endpoint, and the generator — extracted so {!run_chaos} can drive
    one rig through several measurement phases. *)
type rig = {
  r_cfg : config;
  r_machine : Cpu.t;
  r_dp : Dpif.t;
  r_phy0 : Netdev.t;
  r_phy1 : Netdev.t;
  r_p0 : int;
  r_p1 : int;
  r_queues : int;
  r_opts : Dpif.afxdp_opts;
  r_sirq : Cpu.ctx array;
  r_pmds : Cpu.ctx array;  (** legacy one-ctx-per-queue loop *)
  r_rt : Pmd.t option;
  r_guest : Cpu.ctx;
  r_vdevs : (Netdev.t * int) list;
      (** virtual endpoints in hop order (one for PVP/PCP, 2–4 for
          [Chain]), each with its datapath port *)
  r_pmd_v : Cpu.ctx option;  (** the context polling every virtual port *)
  r_loadgen : Cpu.ctx option;
      (** the paced generator's arrival clock, created only when
          [cfg.latency] — unarmed runs stay byte-identical *)
  r_gen : Pktgen.t;
  r_eng : Engine_vt.t;
      (** the virtual-time engine wrapping the pmd leg; the schedule
          explorer reaches its fine-grained steps through this *)
}

let setup (cfg : config) : rig =
  let costs = Costs.default in
  let machine = Cpu.create () in
  (* the kernel datapath gets every hyperthread's worth of RSS queues *)
  let use_pmd_rt = cfg.n_pmds >= 1 && is_userspace cfg.kind in
  let queues =
    match cfg.kind with
    | Dpif.Kernel | Dpif.Kernel_ebpf -> Int.max cfg.queues (if cfg.n_flows > 1 then 16 else 1)
    | Dpif.Dpdk | Dpif.Afxdp _ ->
        if use_pmd_rt && cfg.n_rxqs > 0 then cfg.n_rxqs else cfg.queues
  in
  let phy0 = Netdev.create ~name:"eth0" ~queues ~gbps:cfg.gbps () in
  let phy1 = Netdev.create ~name:"eth1" ~queues ~gbps:cfg.gbps () in
  phy0.Netdev.rx_policy <- cfg.rx_policy;
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:4 () in
  let dp = Dpif.create ~costs ~kind:cfg.kind ~pipeline () in
  (match cfg.cache with
  | Cache_default -> ()
  | Cache_none -> Dpif.set_emc_enabled dp false
  | Cache_smc_only ->
      Dpif.set_emc_enabled dp false;
      Dpif.set_smc_enabled dp true
  | Cache_emc_smc -> Dpif.set_smc_enabled dp true);
  if cfg.ccache then Dpif.set_ccache_enabled dp true;
  let p0 = Dpif.add_port dp phy0 in
  let p1 = Dpif.add_port dp phy1 in
  if cfg.trace then
    Dpif.set_tracer dp
      (Some (Ovs_sim.Trace.create ~kind:(Dpif.kind_name cfg.kind) ()));

  (* execution contexts *)
  let sirq = Array.init queues (fun i -> Cpu.ctx machine (Printf.sprintf "softirq%d" i)) in
  let opts = match cfg.kind with Dpif.Afxdp o -> o | _ -> Dpif.afxdp_default in
  (* legacy loop: one PMD context per queue; the poll-mode runtime
     shards the same queues over cfg.n_pmds cores instead *)
  let pmds =
    if use_pmd_rt then [||]
    else Array.init queues (fun i -> Cpu.ctx machine (Printf.sprintf "pmd%d" i))
  in
  let rt =
    if use_pmd_rt then
      Some
        (Pmd.create ~upcall_capacity:cfg.upcall_capacity
           ~retry_capacity:cfg.retry_capacity ~dp ~machine ~softirq:sirq
           ~port_no:p0 ~n_rxqs:queues ~n_pmds:cfg.n_pmds ())
    else None
  in
  let guest = Cpu.ctx machine "guest" in
  let vhost_kthread = Cpu.ctx machine "vhost" in
  let container = Cpu.ctx machine "container" in

  (* virtual endpoint and flow rules *)
  let fk = Ovs_packet.Flow_key.Field.In_port in
  let rule in_port out =
    let m = Ovs_ofproto.Match_.with_field (Ovs_ofproto.Match_.catchall ()) fk in_port in
    Ovs_ofproto.Pipeline.add_flow pipeline ~priority:100 m
      [ Ovs_ofproto.Action.Output out ]
  in
  (* a PVP-style guest bounce: the virtual endpoint forwards everything
     straight back onto its own rx queue *)
  let guest_bounce virt dev =
    Netdev.set_tx_sink dev (fun d pkt ->
        (match virt with
        | Vm_tap ->
            Cpu.charge vhost_kthread Cpu.System
              (costs.Costs.vhost_copy_fixed
              +. Costs.copy costs ~bytes:(Ovs_packet.Buffer.length pkt)
              +. 110.)
        | _ -> ());
        Cpu.charge guest Cpu.Guest (guest_fwd_cost costs);
        ignore (Netdev.enqueue_on d ~queue:0 pkt : bool))
  in
  let vdevs, pmd_v =
    match cfg.topology with
    | P2P ->
        (match (cfg.ct_zone, cfg.strict_match) with
        | Some z, _ ->
            (* traffic commits into a conntrack zone; invalid state (the
               zone-limit verdict) is an accounted drop *)
            ignore
              (Ovs_ofproto.Parser.install_flows pipeline
                 [
                   Printf.sprintf
                     "table=0,priority=100,in_port=%d,ip \
                      actions=ct(commit,zone=%d,table=1)"
                     p0 z;
                   "table=0,priority=1 actions=drop";
                   "table=1,priority=200,ct_state=+trk+inv actions=drop";
                   Printf.sprintf
                     "table=1,priority=100,ct_state=+trk actions=output:%d" p1;
                 ])
        | None, true ->
            (* match the offered traffic exactly, with a default drop —
               mangled packets become accounted drops instead of riding
               an in_port wildcard *)
            ignore
              (Ovs_ofproto.Parser.install_flows pipeline
                 [
                   Printf.sprintf
                     "table=0,priority=100,in_port=%d,udp actions=output:%d"
                     p0 p1;
                   "table=0,priority=1 actions=drop";
                 ])
        | None, false -> rule p0 p1);
        ([], None)
    | PVP virt -> begin
        let kind = match virt with Vm_tap -> Netdev.Tap | _ -> Netdev.Vhostuser in
        let dev = Netdev.create ~kind ~name:"vm0" () in
        let vp = Dpif.add_port dp dev in
        rule p0 vp;
        rule vp p1;
        (* the guest forwards everything straight back *)
        guest_bounce virt dev;
        ([ (dev, vp) ], Some (Cpu.ctx machine "pmd-vm"))
      end
    | Chain (virt, hops) -> begin
        (* a service chain of [hops] PVP-style VNFs: phy0 -> v1 -> ...
           -> vn -> phy1, each hop a guest bounce back into the datapath *)
        if hops < 1 then invalid_arg "Scenario: Chain needs >= 1 hop";
        (match virt with
        | Ct_xdp -> invalid_arg "Scenario: Chain does not support Ct_xdp"
        | _ -> ());
        let kind =
          match virt with
          | Vm_tap -> Netdev.Tap
          | Vm_vhost -> Netdev.Vhostuser
          | Ct_afpacket -> Netdev.Tap
          | Ct_veth | Ct_xdp -> Netdev.Veth
        in
        let devs =
          List.init hops (fun i ->
              let dev =
                Netdev.create ~kind ~name:(Printf.sprintf "vnf%d" i) ()
              in
              let vp = Dpif.add_port dp dev in
              guest_bounce virt dev;
              (dev, vp))
        in
        let rec link prev = function
          | [] -> rule prev p1
          | (_, vp) :: rest ->
              rule prev vp;
              link vp rest
        in
        link p0 devs;
        (devs, Some (Cpu.ctx machine "pmd-vm"))
      end
    | PCP virt -> begin
        let kind =
          match virt with
          | Ct_afpacket -> Netdev.Tap  (* DPDK reaches containers via af_packet *)
          | _ -> Netdev.Veth
        in
        let dev = Netdev.create ~kind ~name:"veth0" () in
        let vp = Dpif.add_port dp dev in
        rule p0 vp;
        rule vp p1;
        (match virt with
        | Ct_xdp -> begin
            (* Fig 5 path C: redirect at the driver; the container bounces
               packets with its own XDP program straight to the egress NIC *)
            let mac_to_dev =
              Ovs_ebpf.Maps.create ~name:"mac2dev" ~kind:Ovs_ebpf.Maps.Devmap
                ~max_entries:64
            in
            ignore
              (Ovs_ebpf.Maps.update mac_to_dev
                 (Int64.of_int (Ovs_packet.Mac.of_index 2))
                 (Int64.of_int vp));
            let prog =
              Ovs_ebpf.Xdp.load_exn ~name:"veth_redirect"
                (Ovs_ebpf.Progs.veth_redirect ~mac_to_dev)
            in
            Dpif.set_xdp_program dp ~port_no:p0 prog;
            Netdev.set_tx_sink dev (fun _ pkt ->
                (* container-side XDP: parse, rewrite, redirect to eth1 *)
                Cpu.charge container Cpu.Softirq
                  (costs.Costs.driver_rx_dma +. costs.Costs.xdp_prog_overhead
                  +. (30. *. costs.Costs.ebpf_insn)
                  +. costs.Costs.xdp_redirect +. costs.Costs.veth_cross
                  +. costs.Costs.driver_tx);
                Netdev.transmit phy1 pkt)
          end
        | _ ->
            Netdev.set_tx_sink dev (fun d pkt ->
                Cpu.charge container Cpu.Softirq (container_echo_cost costs);
                ignore (Netdev.enqueue_on d ~queue:0 pkt : bool)));
        ([ (dev, vp) ], Some (Cpu.ctx machine "pmd-vm"))
      end
  in

  (* sink for measured egress: phy1 counts transmissions via its stats;
     with latency armed it also records each delivered packet's sojourn
     (virtual now minus the birth stamp) — drops never reach it *)
  if cfg.latency then
    Netdev.set_tx_sink phy1 (fun _ pkt ->
        Dpif.record_latency dp ~now:(Cpu.wall machine) pkt)
  else Netdev.set_tx_sink phy1 (fun _ _ -> ());
  let loadgen =
    if cfg.latency then Some (Cpu.ctx machine "loadgen") else None
  in

  let gen =
    Pktgen.create ~mix:cfg.mix ~n_flows:cfg.n_flows ~frame_len:cfg.frame_len ()
  in
  let active = Pktgen.queues_hit gen ~n_queues:queues in
  Dpif.set_active_queues dp active;
  ignore vhost_kthread;
  ignore container;
  {
    r_cfg = cfg;
    r_machine = machine;
    r_dp = dp;
    r_phy0 = phy0;
    r_phy1 = phy1;
    r_p0 = p0;
    r_p1 = p1;
    r_queues = queues;
    r_opts = opts;
    r_sirq = sirq;
    r_pmds = pmds;
    r_rt = rt;
    r_guest = guest;
    r_vdevs = vdevs;
    r_pmd_v = pmd_v;
    r_loadgen = loadgen;
    r_gen = gen;
    r_eng =
      Engine_vt.create ~dp ~machine ~softirq:sirq ~legacy:pmds ~rt ~port_no:p0
        ~queues ?ct_sweep_budget:cfg.ct_sweep_budget ();
  }

let batch = 32

(* One poll sweep over the rig: the engine advances the phy leg (every
   PMD — or legacy per-queue context — polls once; byte-identical to the
   pre-engine loop), plus every virtual endpoint's return port, in hop
   order. *)
let poll_sweep (r : rig) =
  ignore (Engine_vt.step r.r_eng : int);
  match r.r_pmd_v with
  | Some pmd_vm ->
      List.iter
        (fun (_, vp) ->
          ignore
            (Dpif.poll r.r_dp ~softirq:r.r_sirq.(0) ~pmd:pmd_vm ~port_no:vp
               ~queue:0 ()))
        r.r_vdevs
  | None -> ()

(* The paced driver behind every latency-armed run. The generator is its
   own line-rate core: each packet charges its inter-arrival gap to
   [loadgen] (the arrival clock — birth stamps come from it) and a
   credit counter converts elapsed server time back into injection
   budget, [credit += rate * dwall]. When the dataplane keeps up, wall
   advances exactly one gap per packet and the loop stays in lockstep;
   when it falls behind, wall outruns the arrival clock, the credit (=
   packets that arrived meanwhile) grows, and the backlog overflows the
   NIC ring into counted rx drops — which is what gives an NDR probe a
   real loss cliff and a latency rung its queueing tail. *)
let drive_paced (r : rig) (loadgen : Cpu.ctx) ?(rate_pps = 0.) n =
  let cfg = r.r_cfg in
  let rate =
    if rate_pps > 0. then rate_pps
    else if cfg.offered_mpps > 0. then cfg.offered_mpps *. 1e6
    else Netdev.line_rate_pps r.r_phy0 ~frame_len:cfg.frame_len
  in
  let gap = 1e9 /. rate in
  let in_burst = ref 0 in
  let injected = ref 0 in
  let credit = ref (float_of_int batch) in
  while !injected < n do
    let want =
      Int.min (Int.min (int_of_float !credit) (n - !injected)) 4096
    in
    let w0 = Cpu.wall r.r_machine in
    if want > 0 then begin
      for _ = 1 to want do
        Cpu.charge loadgen Cpu.User gap;
        (match cfg.burst with
        | Some b ->
            incr in_burst;
            if !in_burst >= b.Pktgen.on_packets then begin
              in_burst := 0;
              (* generator silence: the arrival clock idles, and the
                 credit the silent period will accrue (wall keeps
                 moving) is cancelled here — packets do not arrive
                 during the off phase, which is what drops the mean
                 offered rate to on / (on + off) *)
              Cpu.charge loadgen Cpu.User b.Pktgen.off_ns;
              credit := !credit -. (rate *. b.Pktgen.off_ns /. 1e9)
            end
        | None -> ());
        let pkt = Pktgen.next ~birth_ns:(Cpu.busy loadgen) r.r_gen in
        ignore (Netdev.rss_enqueue r.r_phy0 pkt : bool);
        incr injected
      done;
      Engine_vt.note_offered r.r_eng want;
      credit := !credit -. float_of_int want
    end;
    poll_sweep r;
    let dwall = Cpu.wall r.r_machine -. w0 in
    (* an idle iteration (no credit, nothing to poll) must still move the
       clock or the loop deadlocks *)
    if dwall <= 0. && want = 0 then Cpu.charge loadgen Cpu.User (Time.us 1.);
    let dwall = Float.max dwall (Cpu.wall r.r_machine -. w0) in
    credit := !credit +. (rate *. dwall /. 1e9)
  done

let drive (r : rig) n =
  match r.r_loadgen with
  | Some loadgen -> drive_paced r loadgen n
  | None ->
      let injected = ref 0 in
      while !injected < n do
        for _ = 1 to batch do
          ignore (Netdev.rss_enqueue r.r_phy0 (Pktgen.next r.r_gen) : bool);
          incr injected
        done;
        Engine_vt.note_offered r.r_eng batch;
        poll_sweep r
      done

module Dp_core = Ovs_datapath.Dp_core
module Xsk = Ovs_xsk.Xsk

(* packets inside the rig: NIC rx queues, XSK rx rings, PMD upcall and
   retry queues — everything offered but not yet delivered or dropped *)
let in_flight (r : rig) =
  Netdev.pending r.r_phy0
  + List.fold_left (fun a (d, _) -> a + Netdev.pending d) 0 r.r_vdevs
  + (match Dpif.xsks r.r_dp ~port_no:r.r_p0 with
    | Some xs ->
        Array.fold_left (fun a x -> a + Ovs_xsk.Ring.available x.Xsk.rx) 0 xs
    | None -> 0)
  + (match r.r_rt with
    | Some rt -> List.fold_left (fun a p -> a + Pmd.queued p) 0 (Pmd.pmds rt)
    | None -> 0)

(* run the rig dry without injecting, so a measurement phase starts (and
   its predecessor's packets end) on empty queues *)
let quiesce (r : rig) =
  let budget = ref 10_000 in
  while in_flight r > 0 && !budget > 0 do
    decr budget;
    poll_sweep r
  done

(* Quiesce, reset clocks, counters and the generator's flow-choice
   stream, drive [n] packets, return (delivered, rate in pps over the
   phase's wall time). Phases replay identical traffic, so their rates
   are comparable at exact-determinism tightness. *)
let measure_phase (r : rig) n =
  quiesce r;
  Pktgen.reset r.r_gen;
  List.iter Cpu.reset r.r_machine.Cpu.ctxs;
  Dpif.reset_measurement r.r_dp;
  (match r.r_rt with Some rt -> Pmd.reset_stats rt | None -> ());
  let tx0 = r.r_phy1.Netdev.stats.Netdev.tx_packets in
  drive r n;
  let delivered = r.r_phy1.Netdev.stats.Netdev.tx_packets - tx0 in
  let wall =
    Float.max (Float.max (Cpu.wall r.r_machine) (Dpif.serialized_tx r.r_dp)) 1.
  in
  (delivered, float_of_int delivered /. wall *. 1e9)

(* -- latency and NDR probes (require a latency-armed rig) -- *)

let loadgen_exn (r : rig) =
  match r.r_loadgen with
  | Some lg -> lg
  | None -> invalid_arg "Scenario: rig not latency-armed (config ~latency:true)"

(** One clean-slate measurement of the sojourn-time distribution:
    quiesce, reset, offer [n] packets at [rate_pps] (0. = the config's
    offered rate) through the paced driver, then drain so every
    still-queued packet egresses or is dropped before the sketch is
    read. Returns (delivered, the datapath's sketch) — the sketch's
    count equals delivered exactly (drops record nothing), the
    conservation the latency gates enforce. *)
let measure_latency (r : rig) ?(rate_pps = 0.) n =
  let loadgen = loadgen_exn r in
  quiesce r;
  Pktgen.reset r.r_gen;
  List.iter Cpu.reset r.r_machine.Cpu.ctxs;
  Dpif.reset_measurement r.r_dp;
  (match r.r_rt with Some rt -> Pmd.reset_stats rt | None -> ());
  let tx0 = r.r_phy1.Netdev.stats.Netdev.tx_packets in
  drive_paced r loadgen ~rate_pps n;
  quiesce r;
  let delivered = r.r_phy1.Netdev.stats.Netdev.tx_packets - tx0 in
  (delivered, Dpif.latency r.r_dp)

(** One RFC 2544 probe: offer [n] packets at [rate_pps], drain, report
    offered vs delivered for {!Ndr.search}'s loss-free test. *)
let ndr_probe (r : rig) ~rate_pps n : Ndr.probe_result =
  let delivered, _ = measure_latency r ~rate_pps n in
  { Ndr.offered = n; delivered }

(* -- the real-parallelism leg: [`Domains n] -- *)

(** Drive the P2P scenario through {!Ovs_datapath.Engine_domains}: the
    generator's pre-built templates become the injector's wire frames,
    [cfg.measure] packets are offered, and the readout is wall-clock
    Mpps. Returns the engine stats and any oracle violations (empty with
    [oracles:false], the default). Only P2P is meaningful here — the
    virtual endpoints are virtual-time constructs. *)
let run_multicore ?(oracles = false) ?lock ?frames_per_queue ?ring_size
    (cfg : config) ~n_domains () : Engine.stats * string list =
  (match cfg.topology with
  | P2P -> ()
  | PVP _ | PCP _ | Chain _ ->
      invalid_arg "Scenario.run_multicore: only P2P runs on real domains");
  let gen =
    Pktgen.create ~mix:cfg.mix ~n_flows:cfg.n_flows ~frame_len:cfg.frame_len ()
  in
  let templates =
    Array.map
      (fun (b : Ovs_packet.Buffer.t) ->
        Bytes.sub b.Ovs_packet.Buffer.data b.Ovs_packet.Buffer.start
          b.Ovs_packet.Buffer.len)
      gen.Pktgen.templates
  in
  let ecfg =
    Engine_domains.config ~n_domains ~frame_len:cfg.frame_len
      ~target:cfg.measure ~upcall_capacity:cfg.upcall_capacity ~oracles
      ~latency:cfg.latency ?lock ?frames_per_queue ?ring_size
      ~translate:(fun _ -> true) (* P2P: one wildcard rule, port0 -> port1 *)
      ~templates ()
  in
  let eng = Engine_domains.create ecfg in
  Engine_domains.start eng;
  let stats = Engine_domains.stop eng in
  (stats, Engine_domains.violations eng)

(* Adapt engine stats to the scenario result shape: wall-clock rate, no
   virtual-time CPU breakdown (domains burn real cores; the Table 4
   accounting belongs to the [`Vt] engine). *)
let result_of_engine_stats (s : Engine.stats) : result =
  let machine = Cpu.create () in
  {
    rate_mpps = s.Engine.s_mpps;
    wall_ns = s.Engine.s_wall_ns;
    cpu = Cpu.breakdown ~poll_floor:[] machine ~wall:1.;
    packets = s.Engine.s_delivered;
    line_limited = false;
    pmds = [];
    busy_ns =
      List.fold_left
        (fun a (u : Engine.unit_load) -> a +. u.Engine.ul_busy_ns)
        0. s.Engine.s_units_detail;
    stage_trace = None;
  }

let run (cfg : config) : result =
  match cfg.engine with
  | `Domains n ->
      let stats, viols = run_multicore cfg ~n_domains:n () in
      List.iter
        (fun v -> Fmt.epr "[multicore] oracle violation: %s@." v)
        viols;
      result_of_engine_stats stats
  | `Vt ->
  let r = setup cfg in
  let machine = r.r_machine and dp = r.r_dp and rt = r.r_rt in
  (* warm up caches and megaflows, then measure from a clean slate *)
  drive r cfg.warmup;
  (* train the computational cache over the warmed-up megaflows; the
     training charge lands in warmup time, which the resets below zero *)
  if cfg.ccache then
    ignore
      (Dpif.ccache_train dp (fun cat ns -> Cpu.charge r.r_sirq.(0) cat ns)
        : Ovs_nmu.Ccache.train_stats option);
  List.iter Cpu.reset machine.Cpu.ctxs;
  Dpif.reset_measurement dp;
  (match rt with Some rt -> Pmd.reset_stats rt | None -> ());
  let tx_before = r.r_phy1.Netdev.stats.Netdev.tx_packets in
  drive r cfg.measure;
  let delivered = r.r_phy1.Netdev.stats.Netdev.tx_packets - tx_before in

  let wall = Float.max (Cpu.wall machine) (Dpif.serialized_tx dp) in
  let wall = Float.max wall 1. in
  let raw_rate = float_of_int delivered /. wall *. 1e9 in
  let line = Netdev.line_rate_pps r.r_phy0 ~frame_len:cfg.frame_len in
  let line_limited = raw_rate > line in
  let rate = Float.min raw_rate line in
  (* polling threads burn their core regardless of load *)
  let poll_floor =
    (* in the XDP-redirect container path the PMD threads see no traffic
       at all, so OVS need not dedicate cores to it (Table 4: 1.0) *)
    (if
       is_userspace cfg.kind && r.r_opts.Dpif.pmd_threads
       && cfg.topology <> PCP Ct_xdp
     then
       (match rt with
       | Some rt -> Pmd.ctxs rt
       | None -> Array.to_list (Array.sub r.r_pmds 0 r.r_queues))
       @ (match r.r_pmd_v with Some p -> [ p ] | None -> [])
     else [])
    @
    match cfg.topology with
    (* the guests run poll-mode forwarders *)
    | PVP _ | Chain _ -> [ r.r_guest ]
    | P2P | PCP _ -> []
  in
  let cpu = Cpu.breakdown ~poll_floor machine ~wall in
  let busy_ns =
    List.fold_left (fun acc ctx -> acc +. Cpu.busy ctx) 0. machine.Cpu.ctxs
  in
  {
    rate_mpps = rate /. 1e6;
    wall_ns = wall;
    cpu;
    packets = delivered;
    line_limited;
    pmds = (match rt with Some rt -> Pmd.reports ~wall rt | None -> []);
    busy_ns;
    stage_trace = Dpif.tracer dp;
  }

(* -- chaos: three measurement phases on one rig -- *)

(** What {!run_chaos} measures: an unfaulted baseline phase, a faulted
    phase (plan armed, health monitor sweeping, drained to empty), and a
    post-recovery phase on the same warm rig. Conservation is exact
    bookkeeping over the faulted phase: every offered packet is either
    delivered or in a drop counter, with nothing left in flight. *)
type chaos_result = {
  c_plan : string;
  c_baseline_mpps : float;
  c_faulted_mpps : float;  (** includes the drain: degraded throughput *)
  c_post_mpps : float;
  c_offered : int;  (** packets charged to the faulted phase *)
  c_delivered : int;
  c_drops : int;  (** accounted drops, summed over every drop counter *)
  c_pressure_rejects : int;
      (** refused uncounted under [Rx_backpressure]; never offered *)
  c_in_flight : int;  (** packets still queued after the drain (want 0) *)
  c_conserved : bool;  (** offered = delivered + drops, in flight = 0 *)
  c_recovery_ns : Time.ns option;
      (** duration of the last completed unhealthy episode *)
  c_restarts : int;  (** PMD restarts performed by the health monitor *)
  c_repairs : int;
  c_fired : (string * int) list;  (** per-fault fire counts *)
  c_health : string;  (** dpif/health-show at end of the faulted phase *)
  c_latency_count : int;
      (** sojourn samples the sketch recorded over the faulted phase, or
          -1 with latency off. Conservation demands exactly one sample
          per delivered packet: a mangled or crash-killed packet that
          leaked its timestamp would make this exceed [c_delivered]. *)
}

let run_chaos (cfg : config) (plan : Faults.plan) : chaos_result =
  let cfg = { cfg with faults = Some plan } in
  let r = setup cfg in
  let machine = r.r_machine and dp = r.r_dp in
  let phy0 = r.r_phy0 and phy1 = r.r_phy1 in
  (* Virtual wall time only advances through charges; a fault window that
     stops all forwarding would otherwise never close. The chaos runner
     models the generator as its own line-rate core: each offered packet
     charges its wire time, and drain iterations that move nothing charge
     an idle tick. Plain [run] never creates this context, so unfaulted
     runs stay byte-identical. (A latency-armed rig already carries the
     same context — its arrival clock doubles as the birth stamp.) *)
  let loadgen =
    match r.r_loadgen with Some lg -> lg | None -> Cpu.ctx machine "loadgen"
  in
  let pkt_ns = 1e9 /. Netdev.line_rate_pps phy0 ~frame_len:cfg.frame_len in
  drive r cfg.warmup;
  if cfg.ccache then
    ignore
      (Dpif.ccache_train dp (fun cat ns -> Cpu.charge r.r_sirq.(0) cat ns)
        : Ovs_nmu.Ccache.train_stats option);

  (* phase A: unfaulted baseline on the warm rig *)
  let _, baseline_pps = measure_phase r cfg.measure in

  (* phase B: the same traffic with the plan armed *)
  quiesce r;
  Pktgen.reset r.r_gen;
  List.iter Cpu.reset machine.Cpu.ctxs;
  Dpif.reset_measurement dp;
  (match r.r_rt with Some rt -> Pmd.reset_stats rt | None -> ());
  let health = Health.create ~dp ?rt:r.r_rt () in
  Faults.arm plan;
  let tx0 = phy1.Netdev.stats.Netdev.tx_packets in
  let rxd0 = phy0.Netdev.stats.Netdev.rx_dropped in
  let vdev_rxd =
    fun () ->
      List.fold_left
        (fun a (d, _) -> a + d.Netdev.stats.Netdev.rx_dropped)
        0 r.r_vdevs
  in
  let vdev_rxd0 = vdev_rxd () in
  let xsk_drops () =
    match Dpif.xsks dp ~port_no:r.r_p0 with
    | Some xs ->
        Array.fold_left
          (fun a x -> a + x.Xsk.rx_dropped_no_frame + x.Xsk.rx_dropped_ring_full)
          0 xs
    | None -> 0
  in
  let xsk0 = xsk_drops () in
  let dp0 = (Dpif.counters dp).Dp_core.dropped in
  let offered = ref 0 and pressure = ref 0 in
  let tick () =
    let now = Cpu.wall machine in
    let opened = Faults.tick now in
    List.iter
      (fun (f : Faults.fault) ->
        match f.Faults.f_action with
        | Faults.Upcall_storm ->
            (* the storm begins with a cache flush: every packet misses
               into the (refusing) upcall queue *)
            Dpif.flush_caches dp
        | Faults.Ct_pressure { zone; limit } ->
            (* table pressure early-drops existing connections; they must
               re-commit against the forced limit and fail into +inv *)
            ignore
              (Ovs_conntrack.Conntrack.evict_to_limit (Dpif.conntrack dp)
                 ~zone ~limit
                : int)
        | _ -> ())
      opened;
    ignore (Health.check health ~now : int)
  in
  let injected = ref 0 in
  while !injected < cfg.measure do
    for _ = 1 to batch do
      let pkt = Pktgen.next r.r_gen in
      (match Faults.mutate () with
      | Some (`Truncate frac) ->
          pkt.Ovs_packet.Buffer.len <-
            Int.max 4
              (int_of_float (frac *. float_of_int pkt.Ovs_packet.Buffer.len))
      | Some `Corrupt ->
          (* clobber the ethertype: the frame stops being IP *)
          Ovs_packet.Buffer.set_u8 pkt 12 0xff
      | None -> ());
      Cpu.charge loadgen Cpu.User pkt_ns;
      (* birth on the arrival clock, stamped after mangling: a dropped
         mangled packet must not leak its timestamp into the sketch *)
      if cfg.latency then pkt.Ovs_packet.Buffer.birth_ns <- Cpu.busy loadgen;
      let rxd_before = phy0.Netdev.stats.Netdev.rx_dropped in
      if Netdev.rss_enqueue phy0 pkt then incr offered
      else if phy0.Netdev.stats.Netdev.rx_dropped > rxd_before then
        (* dropped-and-counted at the NIC: still offered *)
        incr offered
      else incr pressure;
      incr injected
    done;
    tick ();
    poll_sweep r
  done;
  (* drain: keep the clock moving until every window has closed, every
     queue is empty and the monitor reports healthy *)
  let iters = ref 0 in
  while
    (in_flight r > 0 || Faults.pending_windows ()
   || not (Health.healthy health))
    && !iters < 200_000
  do
    incr iters;
    Cpu.charge loadgen Cpu.User (Time.us 1.);
    tick ();
    poll_sweep r
  done;
  let delivered = phy1.Netdev.stats.Netdev.tx_packets - tx0 in
  let drops =
    phy0.Netdev.stats.Netdev.rx_dropped - rxd0
    + ((Dpif.counters dp).Dp_core.dropped - dp0)
    + (xsk_drops () - xsk0)
    + (vdev_rxd () - vdev_rxd0)
  in
  let infl = in_flight r in
  let wall_b = Float.max (Cpu.wall machine) 1. in
  let faulted_pps = float_of_int delivered /. wall_b *. 1e9 in
  let restarts =
    match r.r_rt with
    | Some rt -> List.fold_left (fun a p -> a + Pmd.restarts p) 0 (Pmd.pmds rt)
    | None -> 0
  in
  let health_text = Health.render health ~now:(Cpu.wall machine) in
  let fired = Faults.fire_counts () in
  let lat_count =
    if cfg.latency then Ovs_sim.Quantiles.count (Dpif.latency dp) else -1
  in
  Faults.disarm ();

  (* phase C: post-recovery, unfaulted again *)
  let _, post_pps = measure_phase r cfg.measure in
  {
    c_plan = plan.Faults.p_name;
    c_baseline_mpps = baseline_pps /. 1e6;
    c_faulted_mpps = faulted_pps /. 1e6;
    c_post_mpps = post_pps /. 1e6;
    c_offered = !offered;
    c_delivered = delivered;
    c_drops = drops;
    c_pressure_rejects = !pressure;
    c_in_flight = infl;
    c_conserved = !offered = delivered + drops && infl = 0;
    c_recovery_ns = Health.last_recovery health;
    c_restarts = restarts;
    c_repairs = Health.repairs health;
    c_fired = fired;
    c_health = health_text;
    c_latency_count = lat_count;
  }

(* -- live reconfiguration: OVSDB-driven control churn on a running rig -- *)

module Reconfig = Ovs_ofproto.Reconfig
module Ofconn = Ovs_ofproto.Ofconn
module Reval = Ovs_revalidator.Revalidator

(** What one churn event cost, measured between its application and the
    next event (or the end of the run): the revalidator's dirty set, the
    re-translations, the megaflows evicted, the oracle divergences (must
    be 0) and the upcall burst the invalidation storm provoked. *)
type churn_event = {
  e_at_s : float;
  e_label : string;  (** ["flow_mods"], ["swap two-phase"] or ["swap naive"] *)
  e_flow_mods : int;
  e_dirty : int;
  e_retx : int;
  e_evicted : int;
  e_divergences : int;
  e_upcalls : int;
}

(** One reconfiguration run: [cfg.measure] packets offered while the
    plan's events fire on the virtual clock. Conservation is the same
    exact bookkeeping as {!run_chaos}, with one addition: [rc_vanished]
    counts packets that are neither delivered nor in any drop counter —
    table-miss packets translated against an incomplete classifier emit
    no actions and vanish uncounted, which is precisely the naive swap's
    loss window. A hitless run has [rc_vanished = 0] and conserves. *)
type reconfig_result = {
  rc_plan : string;
  rc_leg : string;
  rc_offered : int;
  rc_delivered : int;
  rc_drops : int;
  rc_vanished : int;  (** offered - delivered - drops: the loss window *)
  rc_in_flight : int;
  rc_conserved : bool;  (** delivered + drops = offered, nothing in flight *)
  rc_events : churn_event list;
  rc_flow_mods : int;  (** FLOW_MODs that travelled the wire *)
  rc_ovsdb_rows : int;  (** churn rows round-tripped through the database *)
  rc_divergences : int;  (** incremental vs flush-all, summed (want 0) *)
  rc_upcalls : int;
  rc_upgrade : Reconfig.upgrade_report option;  (** the last swap's bill *)
  rc_lat_count : int;  (** sojourn samples, -1 with latency off *)
  rc_p50_ns : float;
  rc_p99_ns : float;
}

(* Everything recorded when a swap begins, so its report can be settled
   exactly once the run has drained (in-flight = 0). *)
type swap_mark = {
  m_style : Reconfig.swap_style;
  m_w0 : Time.ns;
  m_off0 : int;
  m_del0 : int;
  m_drops0 : int;
  m_ups0 : int;
  m_shadow_rules : int;
  m_mods : int;
  m_evicted : int;
}

(** Apply [plan] against a running rig while traffic flows. Every rule
    change rides the wire (OVSDB rows -> FLOW_MOD bytes -> {!Ofconn});
    the incremental revalidator is armed and checked against the
    flush-all oracle at every event. [naive_window] is how many packets
    the naive swap leaves in flight between its delete barrage and its
    replacement adds — the loss window the two-phase path closes. *)
let run_reconfig ?(naive_window = 512) (cfg : config) (plan : Reconfig.plan) :
    reconfig_result =
  let r = setup cfg in
  let machine = r.r_machine and dp = r.r_dp in
  let phy0 = r.r_phy0 and phy1 = r.r_phy1 in
  (* the generator is its own line-rate core, exactly as in run_chaos:
     virtual wall time must advance even when forwarding stalls *)
  let loadgen =
    match r.r_loadgen with Some lg -> lg | None -> Cpu.ctx machine "loadgen"
  in
  let pkt_ns = 1e9 /. Netdev.line_rate_pps phy0 ~frame_len:cfg.frame_len in
  drive r cfg.warmup;
  Dpif.set_revalidator_enabled dp true;

  (* the churn phase starts from a clean slate *)
  quiesce r;
  Pktgen.reset r.r_gen;
  List.iter Cpu.reset machine.Cpu.ctxs;
  Dpif.reset_measurement dp;
  (match r.r_rt with Some rt -> Pmd.reset_stats rt | None -> ());

  (* the plan rides the management channel: stored as one OVSDB
     transaction, then read back row by row — the switch never sees the
     in-memory plan object *)
  let db = Ovs_ovsdb.Db.create ~schema:Reconfig.schema () in
  Reconfig.store_plan db plan;
  let ovsdb_rows = Ovs_ovsdb.Db.row_count db ~table:"Churn_op" in
  let plan = Reconfig.load_plan db ~name:plan.Reconfig.plan_name in

  let tx () = phy1.Netdev.stats.Netdev.tx_packets in
  let ups () = (Dpif.counters dp).Dp_core.upcalls in
  let xsk_drops () =
    match Dpif.xsks dp ~port_no:r.r_p0 with
    | Some xs ->
        Array.fold_left
          (fun a x -> a + x.Xsk.rx_dropped_no_frame + x.Xsk.rx_dropped_ring_full)
          0 xs
    | None -> 0
  in
  let vdev_rxd () =
    List.fold_left
      (fun a (d, _) -> a + d.Netdev.stats.Netdev.rx_dropped)
      0 r.r_vdevs
  in
  let tx0 = tx () in
  let rxd0 = phy0.Netdev.stats.Netdev.rx_dropped in
  let xsk0 = xsk_drops () in
  let dp0 = (Dpif.counters dp).Dp_core.dropped in
  let vdev0 = vdev_rxd () in
  let drops () =
    phy0.Netdev.stats.Netdev.rx_dropped - rxd0
    + ((Dpif.counters dp).Dp_core.dropped - dp0)
    + (xsk_drops () - xsk0)
    + (vdev_rxd () - vdev0)
  in

  let offered = ref 0 and injected = ref 0 in
  let flow_mods = ref 0 and divergences = ref 0 in
  let events = ref [] and burst_mark = ref None in
  let marks = ref None and rec_pending = ref None and recovery = ref 0. in

  (* recovery probe: the first delivery after a swap's new table set is
     in place closes the measured outage *)
  let probe_recovery () =
    match !rec_pending with
    | Some (w0, txm) when tx () > txm ->
        recovery := Cpu.wall machine -. w0;
        rec_pending := None
    | _ -> ()
  in
  let inject n =
    let stop = !injected + n in
    while !injected < stop do
      let m = Int.min batch (stop - !injected) in
      for _ = 1 to m do
        let pkt = Pktgen.next r.r_gen in
        Cpu.charge loadgen Cpu.User pkt_ns;
        if cfg.latency then pkt.Ovs_packet.Buffer.birth_ns <- Cpu.busy loadgen;
        ignore (Netdev.rss_enqueue phy0 pkt : bool);
        (* under Rx_drop a refused packet is a counted rx drop: offered
           either way, and the drop term balances the books *)
        incr offered;
        incr injected
      done;
      Engine_vt.note_offered r.r_eng m;
      poll_sweep r;
      probe_recovery ()
    done
  in

  (* close the previous event's upcall-burst window *)
  let close_burst () =
    match (!burst_mark, !events) with
    | Some u0, e :: rest ->
        events := { e with e_upcalls = ups () - u0 } :: rest;
        burst_mark := None
    | _ -> ()
  in
  let reval_cum () =
    match Dpif.revalidator_stats dp with
    | Some s -> (s.Reval.st_dirty, s.Reval.st_retranslated, s.Reval.st_evicted)
    | None -> (0, 0, 0)
  in
  let apply_event (ev : Reconfig.event) =
    close_burst ();
    let u_start = ups () in
    let d0, rt0, _ = reval_cum () in
    let n_mods = ref 0 and evicted = ref 0 and divs = ref 0 in
    let label = ref "flow_mods" in
    let plain, swaps =
      List.partition
        (function Reconfig.Swap _ -> false | _ -> true)
        ev.Reconfig.ops
    in
    if plain <> [] then begin
      let conn = Ofconn.create ~pipeline:(Dpif.pipeline dp) () in
      n_mods := !n_mods + Reconfig.apply_ops conn plain;
      (* the rule diff hits the megaflow cache: incremental sweep,
         proved against the flush-all oracle *)
      let _full, incr_ev, div = Dpif.revalidate_check dp in
      evicted := !evicted + incr_ev;
      divs := !divs + div
    end;
    List.iter
      (function
        | Reconfig.Swap { swap_style = Reconfig.Two_phase; swap_flows } ->
            label := "swap two-phase";
            let w0 = Cpu.wall machine in
            let m0 =
              {
                m_style = Reconfig.Two_phase;
                m_w0 = w0;
                m_off0 = !offered;
                m_del0 = tx () - tx0;
                m_drops0 = drops ();
                m_ups0 = ups ();
                m_shadow_rules = 0;
                m_mods = 0;
                m_evicted = 0;
              }
            in
            (* phase 1: populate the complete shadow off to the side —
               the live classifier serves traffic untouched meanwhile *)
            let shadow, smods =
              Reconfig.build_shadow ~like:(Dpif.pipeline dp) swap_flows
            in
            (* phase 2: one pointer store + megaflow revalidation *)
            let ev_evicted = Dpif.swap_pipeline dp shadow in
            n_mods := !n_mods + smods;
            evicted := !evicted + ev_evicted;
            marks :=
              Some
                {
                  m0 with
                  m_shadow_rules = Ovs_ofproto.Pipeline.flow_count shadow;
                  m_mods = smods;
                  m_evicted = ev_evicted;
                };
            rec_pending := Some (w0, tx ())
        | Reconfig.Swap { swap_style = Reconfig.Naive; swap_flows } ->
            label := "swap naive";
            let w0 = Cpu.wall machine in
            let m0 =
              {
                m_style = Reconfig.Naive;
                m_w0 = w0;
                m_off0 = !offered;
                m_del0 = tx () - tx0;
                m_drops0 = drops ();
                m_ups0 = ups ();
                m_shadow_rules = 0;
                m_mods = 0;
                m_evicted = 0;
              }
            in
            (* in-place: delete everything, revalidate (storm #1 — the
               cache follows the now-empty tables), let traffic run into
               the hole, then install the replacement and revalidate
               again (storm #2 evicts the drop-cached misses) *)
            let conn = Ofconn.create ~pipeline:(Dpif.pipeline dp) () in
            let dm = Reconfig.apply_ops conn [ Reconfig.Delete "" ] in
            let _, ev1, div1 = Dpif.revalidate_check dp in
            inject (Int.min naive_window (Int.max 0 (cfg.measure - !injected)));
            let am =
              Reconfig.apply_ops conn
                (List.map (fun l -> Reconfig.Insert l) swap_flows)
            in
            let _, ev2, div2 = Dpif.revalidate_check dp in
            n_mods := !n_mods + dm + am;
            evicted := !evicted + ev1 + ev2;
            divs := !divs + div1 + div2;
            marks := Some { m0 with m_mods = dm + am; m_evicted = ev1 + ev2 };
            rec_pending := Some (w0, tx ())
        | _ -> ())
      swaps;
    let d1, rt1, _ = reval_cum () in
    flow_mods := !flow_mods + !n_mods;
    divergences := !divergences + !divs;
    events :=
      {
        e_at_s = ev.Reconfig.at_s;
        e_label = !label;
        e_flow_mods = !n_mods;
        (* a swap rebuilds the revalidator (fresh counters): clamp *)
        e_dirty = Int.max 0 (d1 - d0);
        e_retx = Int.max 0 (rt1 - rt0);
        e_evicted = !evicted;
        e_divergences = !divs;
        e_upcalls = 0;  (* settled by close_burst at the next event *)
      }
      :: !events;
    burst_mark := Some u_start
  in

  let pending = ref plan.Reconfig.events in
  let fire_due () =
    match !pending with
    | ev :: rest when Cpu.wall machine >= ev.Reconfig.at_s *. 1e9 ->
        pending := rest;
        apply_event ev;
        true
    | _ -> false
  in
  while !injected < cfg.measure do
    inject (Int.min batch (cfg.measure - !injected));
    while fire_due () do () done
  done;
  (* drain: events past the traffic tail still fire on the idle clock *)
  let iters = ref 0 in
  while (!pending <> [] || in_flight r > 0) && !iters < 200_000 do
    incr iters;
    Cpu.charge loadgen Cpu.User (Time.us 1.);
    ignore (fire_due () : bool);
    poll_sweep r;
    probe_recovery ()
  done;
  close_burst ();
  (* a swap that never saw a post-cutover delivery charges the whole
     remaining run as its outage *)
  (match !rec_pending with
  | Some (w0, _) ->
      recovery := Cpu.wall machine -. w0;
      rec_pending := None
  | None -> ());

  let delivered = tx () - tx0 in
  let total_drops = drops () in
  let infl = in_flight r in
  let vanished = !offered - delivered - total_drops - infl in
  let upgrade =
    match !marks with
    | None -> None
    | Some m ->
        let w_off = !offered - m.m_off0 in
        let w_del = delivered - m.m_del0 in
        let w_drops = total_drops - m.m_drops0 in
        Some
          {
            Reconfig.up_style = m.m_style;
            up_leg = Dpif.kind_name cfg.kind;
            up_shadow_rules = m.m_shadow_rules;
            up_flow_mods = m.m_mods;
            up_evicted = m.m_evicted;
            up_upcall_burst = ups () - m.m_ups0;
            up_offered = w_off;
            up_delivered = w_del;
            up_lost = w_off - w_del - w_drops;
            up_recovery_ns = !recovery;
          }
  in
  let lat = Dpif.latency dp in
  {
    rc_plan = plan.Reconfig.plan_name;
    rc_leg = Dpif.kind_name cfg.kind;
    rc_offered = !offered;
    rc_delivered = delivered;
    rc_drops = total_drops;
    rc_vanished = vanished;
    rc_in_flight = infl;
    rc_conserved = (!offered = delivered + total_drops) && infl = 0;
    rc_events = List.rev !events;
    rc_flow_mods = !flow_mods;
    rc_ovsdb_rows = ovsdb_rows;
    rc_divergences = !divergences;
    rc_upcalls = ups ();
    rc_upgrade = upgrade;
    rc_lat_count =
      (if cfg.latency then Ovs_sim.Quantiles.count lat else -1);
    rc_p50_ns = (if cfg.latency then Ovs_sim.Quantiles.p50 lat else 0.);
    rc_p99_ns = (if cfg.latency then Ovs_sim.Quantiles.p99 lat else 0.);
  }

(** The real-parallelism cutover: drive the P2P rig on OCaml domains
    while the slow path consults a live classifier pointer held in an
    [Atomic.t]; halfway through the offered target the shadow pipeline
    (built through the wire, as always) replaces it in one atomic store.
    PMD domains keep polling throughout — there is no barrier. Returns
    the engine stats, the oracle violations (armed), and how many
    packets had been delivered when the cutover landed (proof it
    happened mid-run). Both rule sets must forward the template flows:
    the hitless property under domains is that the atomic pointer swap
    never presents a half-built classifier to a racing translation. *)
let run_reconfig_multicore ?(n_domains = 2) (cfg : config)
    ~(flows_before : string list) ~(flows_after : string list) () :
    Engine.stats * string list * int =
  (match cfg.topology with
  | P2P -> ()
  | _ -> invalid_arg "Scenario.run_reconfig_multicore: only P2P");
  let wire_pipeline flows =
    let like = Ovs_ofproto.Pipeline.create ~n_tables:4 () in
    Ovs_ofproto.Pipeline.set_ports like [ 0; 1 ];
    let p, _mods = Reconfig.build_shadow ~like flows in
    p
  in
  let live = Atomic.make (wire_pipeline flows_before) in
  let gen =
    Pktgen.create ~mix:cfg.mix ~n_flows:cfg.n_flows ~frame_len:cfg.frame_len ()
  in
  let templates =
    Array.map
      (fun (b : Ovs_packet.Buffer.t) ->
        Bytes.sub b.Ovs_packet.Buffer.data b.Ovs_packet.Buffer.start
          b.Ovs_packet.Buffer.len)
      gen.Pktgen.templates
  in
  let translate key =
    (Ovs_ofproto.Pipeline.translate (Atomic.get live) key)
      .Ovs_ofproto.Pipeline.odp_actions
    <> []
  in
  let ecfg =
    Engine_domains.config ~n_domains ~frame_len:cfg.frame_len
      ~target:cfg.measure ~upcall_capacity:cfg.upcall_capacity ~oracles:true
      ~translate ~templates ()
  in
  let eng = Engine_domains.create ecfg in
  let cut_at = cfg.measure / 2 in
  Engine_domains.start eng;
  let seen = ref 0 and spins = ref 0 in
  while !seen < cut_at && !spins < 1_000_000_000 do
    incr spins;
    seen := !seen + Engine_domains.step eng
  done;
  (* the cutover: one atomic store while every PMD domain races on *)
  Atomic.set live (wire_pipeline flows_after);
  let at_cutover = !seen in
  let stats = Engine_domains.stop eng in
  (stats, Engine_domains.violations eng, at_cutover)
