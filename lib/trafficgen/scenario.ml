(** The Sec 5.2 forwarding-rate scenarios: P2P, PVP and PCP loopbacks.

    A TRex-like generator offers minimum-size UDP packets on one physical
    port; the datapath forwards them across the scenario-specific path and
    back out the other port. The measured rate is packets over the busiest
    execution context's virtual time (the pipeline bottleneck), capped at
    line rate; CPU usage is the Table 4 breakdown. *)

module Cpu = Ovs_sim.Cpu
module Costs = Ovs_sim.Costs
module Netdev = Ovs_netdev.Netdev
module Dpif = Ovs_datapath.Dpif
module Pmd = Ovs_datapath.Pmd

type virt = Vm_tap | Vm_vhost | Ct_veth | Ct_xdp | Ct_afpacket

let virt_name = function
  | Vm_tap -> "tap"
  | Vm_vhost -> "vhostuser"
  | Ct_veth -> "veth"
  | Ct_xdp -> "XDP program"
  | Ct_afpacket -> "af_packet"

type topology = P2P | PVP of virt | PCP of virt

type result = {
  rate_mpps : float;
  wall_ns : Ovs_sim.Time.ns;
  cpu : Cpu.breakdown;
  packets : int;
  line_limited : bool;
  pmds : Ovs_datapath.Pmd.report list;
      (** per-PMD breakdowns when the poll-mode runtime drove the run
          ([n_pmds >= 1] on a userspace datapath); empty otherwise *)
  busy_ns : Ovs_sim.Time.ns;
      (** summed busy time across every execution context — the charged
          total a stage trace's per-stage sums must reproduce *)
  stage_trace : Ovs_sim.Trace.t option;
      (** the measurement phase's per-stage cycle attribution, when the
          run was configured with [trace] *)
}

let pp_result ppf r =
  Fmt.pf ppf "%6.2f Mpps%s  cpu[%a]" r.rate_mpps
    (if r.line_limited then " (line rate)" else "")
    Cpu.pp_breakdown r.cpu

(* per-packet cost of a guest vCPU forwarding between two virtio queues *)
let guest_fwd_cost (c : Costs.t) =
  (2. *. c.Costs.virtio_ring_op) +. 45.

(* a container application echoing through its kernel stack: two socket
   syscalls plus an abbreviated stack traversal each way *)
let container_echo_cost (c : Costs.t) = (2. *. c.Costs.syscall) +. 120.

(** Which fast-path cache layers serve lookups (an ablation knob for the
    design choice Sec 2.1 describes: the kernel community rejected the
    exact-match cache, userspace kept it and later added the SMC). *)
type cache_mode = Cache_default | Cache_none | Cache_smc_only | Cache_emc_smc

type config = {
  kind : Dpif.kind;
  topology : topology;
  n_flows : int;
  frame_len : int;
  queues : int;
  gbps : float;
  warmup : int;
  measure : int;
  cache : cache_mode;
  n_pmds : int;
      (** >= 1 drives the run through the {!Ovs_datapath.Pmd} runtime with
          that many PMD cores; 0 (the default) keeps the legacy
          one-context-per-queue loop *)
  n_rxqs : int;  (** rxqs for the PMD runtime; 0 means [queues] *)
  trace : bool;  (** attach a per-stage cycle tracer to the datapath *)
}

let default_config =
  {
    kind = Dpif.Afxdp Dpif.afxdp_default;
    topology = P2P;
    n_flows = 1;
    frame_len = 64;
    queues = 1;
    gbps = 25.;
    warmup = 4_000;
    measure = 40_000;
    cache = Cache_default;
    n_pmds = 0;
    n_rxqs = 0;
    trace = false;
  }

(** Builder over {!default_config}, so call sites survive new fields. *)
let config ?(kind = default_config.kind) ?(topology = default_config.topology)
    ?(n_flows = default_config.n_flows) ?(frame_len = default_config.frame_len)
    ?(queues = default_config.queues) ?(gbps = default_config.gbps)
    ?(warmup = default_config.warmup) ?(measure = default_config.measure)
    ?(cache = default_config.cache) ?(n_pmds = default_config.n_pmds)
    ?(n_rxqs = default_config.n_rxqs) ?(trace = default_config.trace) () =
  { kind; topology; n_flows; frame_len; queues; gbps; warmup; measure; cache;
    n_pmds; n_rxqs; trace }

let is_userspace = function
  | Dpif.Dpdk | Dpif.Afxdp _ -> true
  | Dpif.Kernel | Dpif.Kernel_ebpf -> false

let run (cfg : config) : result =
  let costs = Costs.default in
  let machine = Cpu.create () in
  (* the kernel datapath gets every hyperthread's worth of RSS queues *)
  let use_pmd_rt = cfg.n_pmds >= 1 && is_userspace cfg.kind in
  let queues =
    match cfg.kind with
    | Dpif.Kernel | Dpif.Kernel_ebpf -> Int.max cfg.queues (if cfg.n_flows > 1 then 16 else 1)
    | Dpif.Dpdk | Dpif.Afxdp _ ->
        if use_pmd_rt && cfg.n_rxqs > 0 then cfg.n_rxqs else cfg.queues
  in
  let phy0 = Netdev.create ~name:"eth0" ~queues ~gbps:cfg.gbps () in
  let phy1 = Netdev.create ~name:"eth1" ~queues ~gbps:cfg.gbps () in
  let pipeline = Ovs_ofproto.Pipeline.create ~n_tables:4 () in
  let dp = Dpif.create ~costs ~kind:cfg.kind ~pipeline () in
  (match cfg.cache with
  | Cache_default -> ()
  | Cache_none -> Dpif.set_emc_enabled dp false
  | Cache_smc_only ->
      Dpif.set_emc_enabled dp false;
      Dpif.set_smc_enabled dp true
  | Cache_emc_smc -> Dpif.set_smc_enabled dp true);
  let p0 = Dpif.add_port dp phy0 in
  let p1 = Dpif.add_port dp phy1 in
  if cfg.trace then
    Dpif.set_tracer dp
      (Some (Ovs_sim.Trace.create ~kind:(Dpif.kind_name cfg.kind) ()));

  (* execution contexts *)
  let sirq = Array.init queues (fun i -> Cpu.ctx machine (Printf.sprintf "softirq%d" i)) in
  let opts = match cfg.kind with Dpif.Afxdp o -> o | _ -> Dpif.afxdp_default in
  (* legacy loop: one PMD context per queue; the poll-mode runtime
     shards the same queues over cfg.n_pmds cores instead *)
  let pmds =
    if use_pmd_rt then [||]
    else Array.init queues (fun i -> Cpu.ctx machine (Printf.sprintf "pmd%d" i))
  in
  let rt =
    if use_pmd_rt then
      Some
        (Pmd.create ~dp ~machine ~softirq:sirq ~port_no:p0 ~n_rxqs:queues
           ~n_pmds:cfg.n_pmds ())
    else None
  in
  let guest = Cpu.ctx machine "guest" in
  let vhost_kthread = Cpu.ctx machine "vhost" in
  let container = Cpu.ctx machine "container" in

  (* virtual endpoint and flow rules *)
  let fk = Ovs_packet.Flow_key.Field.In_port in
  let rule in_port out =
    let m = Ovs_ofproto.Match_.with_field (Ovs_ofproto.Match_.catchall ()) fk in_port in
    Ovs_ofproto.Pipeline.add_flow pipeline ~priority:100 m
      [ Ovs_ofproto.Action.Output out ]
  in
  let vdev, vport, pmd_v =
    match cfg.topology with
    | P2P ->
        rule p0 p1;
        (None, -1, None)
    | PVP virt -> begin
        let kind = match virt with Vm_tap -> Netdev.Tap | _ -> Netdev.Vhostuser in
        let dev = Netdev.create ~kind ~name:"vm0" () in
        let vp = Dpif.add_port dp dev in
        rule p0 vp;
        rule vp p1;
        (* the guest forwards everything straight back *)
        Netdev.set_tx_sink dev (fun d pkt ->
            (match virt with
            | Vm_tap ->
                Cpu.charge vhost_kthread Cpu.System
                  (costs.Costs.vhost_copy_fixed
                  +. Costs.copy costs ~bytes:(Ovs_packet.Buffer.length pkt)
                  +. 110.)
            | _ -> ());
            Cpu.charge guest Cpu.Guest (guest_fwd_cost costs);
            Netdev.enqueue_on d ~queue:0 pkt);
        (Some dev, vp, Some (Cpu.ctx machine "pmd-vm"))
      end
    | PCP virt -> begin
        let kind =
          match virt with
          | Ct_afpacket -> Netdev.Tap  (* DPDK reaches containers via af_packet *)
          | _ -> Netdev.Veth
        in
        let dev = Netdev.create ~kind ~name:"veth0" () in
        let vp = Dpif.add_port dp dev in
        rule p0 vp;
        rule vp p1;
        (match virt with
        | Ct_xdp -> begin
            (* Fig 5 path C: redirect at the driver; the container bounces
               packets with its own XDP program straight to the egress NIC *)
            let mac_to_dev =
              Ovs_ebpf.Maps.create ~name:"mac2dev" ~kind:Ovs_ebpf.Maps.Devmap
                ~max_entries:64
            in
            ignore
              (Ovs_ebpf.Maps.update mac_to_dev
                 (Int64.of_int (Ovs_packet.Mac.of_index 2))
                 (Int64.of_int vp));
            let prog =
              Ovs_ebpf.Xdp.load_exn ~name:"veth_redirect"
                (Ovs_ebpf.Progs.veth_redirect ~mac_to_dev)
            in
            Dpif.set_xdp_program dp ~port_no:p0 prog;
            Netdev.set_tx_sink dev (fun _ pkt ->
                (* container-side XDP: parse, rewrite, redirect to eth1 *)
                Cpu.charge container Cpu.Softirq
                  (costs.Costs.driver_rx_dma +. costs.Costs.xdp_prog_overhead
                  +. (30. *. costs.Costs.ebpf_insn)
                  +. costs.Costs.xdp_redirect +. costs.Costs.veth_cross
                  +. costs.Costs.driver_tx);
                Netdev.transmit phy1 pkt)
          end
        | _ ->
            Netdev.set_tx_sink dev (fun d pkt ->
                Cpu.charge container Cpu.Softirq (container_echo_cost costs);
                Netdev.enqueue_on d ~queue:0 pkt));
        (Some dev, vp, Some (Cpu.ctx machine "pmd-vm"))
      end
  in

  (* sink for measured egress: phy1 counts transmissions via its stats *)
  Netdev.set_tx_sink phy1 (fun _ _ -> ());

  let gen = Pktgen.create ~n_flows:cfg.n_flows ~frame_len:cfg.frame_len () in
  let active = Pktgen.queues_hit gen ~n_queues:queues in
  Dpif.set_active_queues dp active;

  let batch = 32 in
  let drive n =
    let injected = ref 0 in
    while !injected < n do
      for _ = 1 to batch do
        Netdev.rss_enqueue phy0 (Pktgen.next gen);
        incr injected
      done;
      (match rt with
      | Some rt -> ignore (Pmd.poll_all rt)
      | None ->
          for q = 0 to queues - 1 do
            ignore
              (Dpif.poll dp ~softirq:sirq.(q) ~pmd:pmds.(q) ~port_no:p0 ~queue:q ())
          done);
      match (vdev, pmd_v) with
      | Some _, Some pmd_vm ->
          ignore
            (Dpif.poll dp ~softirq:sirq.(0) ~pmd:pmd_vm ~port_no:vport ~queue:0 ())
      | _ -> ()
    done
  in

  (* warm up caches and megaflows, then measure from a clean slate *)
  drive cfg.warmup;
  List.iter Cpu.reset machine.Cpu.ctxs;
  Dpif.reset_measurement dp;
  (match rt with Some rt -> Pmd.reset_stats rt | None -> ());
  let tx_before = phy1.Netdev.stats.Netdev.tx_packets in
  drive cfg.measure;
  let delivered = phy1.Netdev.stats.Netdev.tx_packets - tx_before in

  let wall = Float.max (Cpu.wall machine) (Dpif.serialized_tx dp) in
  let wall = Float.max wall 1. in
  let raw_rate = float_of_int delivered /. wall *. 1e9 in
  let line = Netdev.line_rate_pps phy0 ~frame_len:cfg.frame_len in
  let line_limited = raw_rate > line in
  let rate = Float.min raw_rate line in
  (* polling threads burn their core regardless of load *)
  let poll_floor =
    (* in the XDP-redirect container path the PMD threads see no traffic
       at all, so OVS need not dedicate cores to it (Table 4: 1.0) *)
    (if
       is_userspace cfg.kind && opts.Dpif.pmd_threads
       && cfg.topology <> PCP Ct_xdp
     then
       (match rt with
       | Some rt -> Pmd.ctxs rt
       | None -> Array.to_list (Array.sub pmds 0 queues))
       @ (match pmd_v with Some p -> [ p ] | None -> [])
     else [])
    @
    match cfg.topology with
    | PVP _ -> [ guest ]  (* the guest runs a poll-mode forwarder *)
    | P2P | PCP _ -> []
  in
  let cpu = Cpu.breakdown ~poll_floor machine ~wall in
  ignore vhost_kthread;
  ignore container;
  let busy_ns =
    List.fold_left (fun acc ctx -> acc +. Cpu.busy ctx) 0. machine.Cpu.ctxs
  in
  {
    rate_mpps = rate /. 1e6;
    wall_ns = wall;
    cpu;
    packets = delivered;
    line_limited;
    pmds = (match rt with Some rt -> Pmd.reports ~wall rt | None -> []);
    busy_ns;
    stage_trace = Dpif.tracer dp;
  }
