(** The chaos bench: every fault plan from the catalog, run against the
    datapath legs it applies to ([bench -- chaos]).

    Each run is three measurement phases on one warm rig
    ({!Scenario.run_chaos}): an unfaulted baseline, the same traffic with
    the plan armed (drained until every fault window has closed and the
    health monitor reports healthy), and an unfaulted post-recovery
    phase. A run passes when packet conservation is exact — offered =
    delivered + accounted drops with nothing left in flight — and the
    post-recovery rate is within 1% of the in-run baseline (same
    scenario, same seed). *)

module Time = Ovs_sim.Time
module Faults = Ovs_faults.Faults
module Dpif = Ovs_datapath.Dpif
module Netdev = Ovs_netdev.Netdev

(** The datapath legs a plan can run against. [Pmd_leg] is AF_XDP under
    the poll-mode runtime (two PMD cores) — the only leg with PMD
    threads to stall, crash and restart. *)
type leg = Kernel_leg | Afxdp_leg | Pmd_leg

let leg_name = function
  | Kernel_leg -> "kernel"
  | Afxdp_leg -> "afxdp"
  | Pmd_leg -> "pmd"

let all_legs = [ Kernel_leg; Afxdp_leg; Pmd_leg ]
let userspace_legs = [ Afxdp_leg; Pmd_leg ]

(** One catalog entry: a fault plan plus the scenario knobs it needs
    (ingress policy, strict matching for mangled traffic, a conntrack
    zone for pressure faults) and the legs it applies to. *)
type spec = {
  s_name : string;
  s_legs : leg list;
  s_plan : Faults.plan;
  s_rx_policy : Netdev.rx_policy;
  s_strict : bool;
  s_ct_zone : int option;
}

(* windows are milliseconds of virtual time after the faulted phase
   starts (phase B resets every core's clock) *)
let window name action ~at ~dur =
  {
    Faults.f_name = name;
    f_action = action;
    f_start = Time.ms at;
    f_stop = Time.ms (at +. dur);
  }

let entry ?(legs = all_legs) ?(rx_policy = Netdev.Rx_drop) ?(strict = false)
    ?ct_zone name faults =
  {
    s_name = name;
    s_legs = legs;
    s_plan = Faults.plan ~name faults;
    s_rx_policy = rx_policy;
    s_strict = strict;
    s_ct_zone = ct_zone;
  }

(* the ingress NIC is always the datapath's port 0, the egress port 1;
   PMD ids start at 0 *)
let catalog =
  [
    entry "link_flap"
      [
        window "flap1" (Faults.Link_down { port = 0 }) ~at:0.2 ~dur:0.3;
        window "flap2" (Faults.Link_down { port = 0 }) ~at:0.9 ~dur:0.3;
      ];
    entry "rxq_stall"
      [ window "stall" (Faults.Rxq_stall { port = 0; queue = -1 }) ~at:0.2 ~dur:0.4 ];
    entry "backpressure" ~legs:[ Afxdp_leg ] ~rx_policy:Netdev.Rx_backpressure
      [ window "stall" (Faults.Rxq_stall { port = 0; queue = -1 }) ~at:0.2 ~dur:0.4 ];
    entry "umem_leak" ~legs:userspace_legs
      [ window "leak" (Faults.Umem_leak { frames = 512 }) ~at:0.2 ~dur:0.4 ];
    entry "umem_exhaust" ~legs:userspace_legs
      [ window "exhaust" Faults.Umem_exhaust ~at:0.2 ~dur:0.3 ];
    entry "pmd_stall" ~legs:[ Pmd_leg ]
      [ window "stall" (Faults.Pmd_stall { pmd = 0 }) ~at:0.2 ~dur:0.4 ];
    entry "pmd_crash" ~legs:[ Pmd_leg ]
      [ window "crash" (Faults.Pmd_crash { pmd = 0 }) ~at:0.2 ~dur:0.05 ];
    entry "upcall_storm" ~legs:[ Pmd_leg ]
      [ window "storm" Faults.Upcall_storm ~at:0.2 ~dur:0.3 ];
    entry "pkt_mangle" ~legs:[ Kernel_leg; Afxdp_leg ] ~strict:true
      [
        window "truncate" (Faults.Pkt_truncate { prob = 0.2 }) ~at:0.2 ~dur:0.8;
        window "corrupt" (Faults.Pkt_corrupt { prob = 0.2 }) ~at:0.2 ~dur:0.8;
      ];
    entry "ct_pressure" ~legs:[ Kernel_leg; Afxdp_leg ] ~ct_zone:7
      [
        window "pressure" (Faults.Ct_pressure { zone = 7; limit = 16 }) ~at:0.2
          ~dur:0.8;
      ];
  ]

let leg_config (s : spec) leg =
  (* latency is armed on every leg so each run also proves timestamp
     conservation under faults: samples recorded == packets delivered *)
  let base ~kind ~n_pmds ~n_rxqs ~queues =
    Scenario.config ~kind ~n_pmds ~n_rxqs ~queues ~n_flows:64 ~measure:20_000
      ~rx_policy:s.s_rx_policy ~strict_match:s.s_strict
      ~ct_zone:s.s_ct_zone ~latency:true ()
  in
  match leg with
  | Kernel_leg -> base ~kind:Dpif.Kernel ~n_pmds:0 ~n_rxqs:0 ~queues:1
  | Afxdp_leg ->
      base ~kind:(Dpif.Afxdp Dpif.afxdp_default) ~n_pmds:0 ~n_rxqs:0 ~queues:1
  | Pmd_leg ->
      base ~kind:(Dpif.Afxdp Dpif.afxdp_default) ~n_pmds:2 ~n_rxqs:2 ~queues:2

(** One chaos run, judged. *)
type row = {
  row_plan : string;
  row_leg : leg;
  row_res : Scenario.chaos_result;
  row_recovered : bool;  (** post-recovery rate within 1% of baseline *)
  row_latency_ok : bool;
      (** timestamp conservation: sojourn samples == delivered packets
          (dropped/mangled/crash-killed packets leaked nothing) *)
  row_pass : bool;  (** conservation exact, recovered, no leaked stamps *)
}

let judge plan leg (res : Scenario.chaos_result) =
  let recovered =
    res.Scenario.c_post_mpps >= 0.99 *. res.Scenario.c_baseline_mpps
  in
  let latency_ok =
    res.Scenario.c_latency_count < 0
    || res.Scenario.c_latency_count = res.Scenario.c_delivered
  in
  {
    row_plan = plan;
    row_leg = leg;
    row_res = res;
    row_recovered = recovered;
    row_latency_ok = latency_ok;
    row_pass = res.Scenario.c_conserved && recovered && latency_ok;
  }

let run_one (s : spec) leg =
  let res = Scenario.run_chaos (leg_config s leg) s.s_plan in
  judge s.s_name leg res

let run_all () =
  List.concat_map (fun s -> List.map (run_one s) s.s_legs) catalog

let all_pass rows = List.for_all (fun r -> r.row_pass) rows

(** {1 Rendering} *)

let render rows =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%-13s %-7s %9s %9s %9s  %9s %7s %6s %10s  %s\n" "plan" "leg"
    "base Mpps" "fault" "post" "offered" "drops" "lost" "recovery" "verdict";
  List.iter
    (fun r ->
      let c = r.row_res in
      add "%-13s %-7s %9.3f %9.3f %9.3f  %9d %7d %6d %10s  %s\n" r.row_plan
        (leg_name r.row_leg) c.Scenario.c_baseline_mpps
        c.Scenario.c_faulted_mpps c.Scenario.c_post_mpps c.Scenario.c_offered
        c.Scenario.c_drops
        (c.Scenario.c_offered - c.Scenario.c_delivered)
        (match c.Scenario.c_recovery_ns with
        | Some ns -> Fmt.str "%a" Time.pp_ns ns
        | None -> "-")
        (if r.row_pass then "PASS"
         else if not c.Scenario.c_conserved then
           Printf.sprintf "LEAK (in flight %d, unaccounted %d)"
             c.Scenario.c_in_flight
             (c.Scenario.c_offered - c.Scenario.c_delivered
            - c.Scenario.c_drops)
         else if not r.row_latency_ok then
           Printf.sprintf "STAMP-LEAK (%d samples, %d delivered)"
             c.Scenario.c_latency_count c.Scenario.c_delivered
         else "DEGRADED"))
    rows;
  Buffer.contents b

(* hand-rolled JSON: the repo has no json dependency *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json rows =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"bench\": \"chaos\",\n  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let c = r.row_res in
      add "    {\"plan\": \"%s\", \"leg\": \"%s\",\n" (json_escape r.row_plan)
        (leg_name r.row_leg);
      add "     \"baseline_mpps\": %.4f, \"faulted_mpps\": %.4f, \"post_mpps\": %.4f,\n"
        c.Scenario.c_baseline_mpps c.Scenario.c_faulted_mpps
        c.Scenario.c_post_mpps;
      add "     \"offered\": %d, \"delivered\": %d, \"drops\": %d,\n"
        c.Scenario.c_offered c.Scenario.c_delivered c.Scenario.c_drops;
      add "     \"pressure_rejects\": %d, \"in_flight\": %d, \"conserved\": %b,\n"
        c.Scenario.c_pressure_rejects c.Scenario.c_in_flight
        c.Scenario.c_conserved;
      add "     \"recovery_ns\": %s, \"restarts\": %d, \"repairs\": %d,\n"
        (match c.Scenario.c_recovery_ns with
        | Some ns -> Printf.sprintf "%.0f" ns
        | None -> "null")
        c.Scenario.c_restarts c.Scenario.c_repairs;
      add "     \"fired\": {%s},\n"
        (String.concat ", "
           (List.map
              (fun (n, k) -> Printf.sprintf "\"%s\": %d" (json_escape n) k)
              c.Scenario.c_fired));
      add "     \"latency_count\": %d, \"latency_conserved\": %b,\n"
        c.Scenario.c_latency_count r.row_latency_ok;
      add "     \"recovered\": %b, \"pass\": %b}%s\n" r.row_recovered
        r.row_pass
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n  \"all_pass\": %b\n}\n" (all_pass rows);
  Buffer.contents b
