(** TRex-style workload generation: pre-built packet templates for 1-flow
    and N-flow UDP streams (Sec 5.2: with 1,000 flows each packet gets a
    random source and destination IP out of 1,000 possibilities). *)

open Ovs_packet

type t = {
  templates : Buffer.t array;
  seed : int;
  mutable prng : Ovs_sim.Prng.t;
  mutable sent : int;
}

let base_src = Ipv4.addr_of_string "10.1.0.0"
let base_dst = Ipv4.addr_of_string "10.2.0.0"

(** Build [n_flows] distinct UDP flow templates of [frame_len] bytes.
    Checksums are valid; the RSS hash is precomputed (as NIC hardware
    does on receive). *)
let create ?(seed = 42) ?(dst_mac = Mac.of_index 2) ~n_flows ~frame_len () =
  let prng = Ovs_sim.Prng.of_int seed in
  let templates =
    Array.init n_flows (fun i ->
        let src_ip = base_src + Ovs_sim.Prng.int prng 1000 in
        let dst_ip = base_dst + Ovs_sim.Prng.int prng 1000 in
        let pkt =
          Build.udp ~frame_len ~src_mac:(Mac.of_index 1) ~dst_mac
            ~src_ip ~dst_ip
            ~src_port:(1024 + (i land 0xFFF))
            ~dst_port:(2048 + (i lsr 12)) ()
        in
        let key = Flow_key.extract pkt in
        pkt.Buffer.rss_hash <- Flow_key.rss_hash key;
        pkt)
  in
  { templates; seed; prng; sent = 0 }

(** Rewind the flow-choice stream to the template set's seed state, so a
    measurement phase can replay the exact packet sequence of an earlier
    one (the chaos bench compares phases of identical traffic). The
    template build consumed PRNG draws; replay them to land on the same
    state [create] left behind. *)
let reset t =
  let prng = Ovs_sim.Prng.of_int t.seed in
  Array.iter
    (fun _ ->
      ignore (Ovs_sim.Prng.int prng 1000);
      ignore (Ovs_sim.Prng.int prng 1000))
    t.templates;
  t.prng <- prng;
  t.sent <- 0

(** Next packet: an independent clone of a uniformly chosen template. *)
let next t =
  let i =
    if Array.length t.templates = 1 then 0
    else Ovs_sim.Prng.int t.prng (Array.length t.templates)
  in
  t.sent <- t.sent + 1;
  Ovs_packet.Buffer.clone t.templates.(i)

(** How many distinct NIC queues this flow set occupies under RSS. *)
let queues_hit t ~n_queues =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (pkt : Buffer.t) ->
      Hashtbl.replace seen (pkt.Buffer.rss_hash mod n_queues) ())
    t.templates;
  Hashtbl.length seen
