(** TRex-style workload generation: pre-built packet templates for 1-flow
    and N-flow UDP streams (Sec 5.2: with 1,000 flows each packet gets a
    random source and destination IP out of 1,000 possibilities).

    Flow choice is either uniform or Zipf-skewed ([Zipf s] with exponent
    [s] over a seeded random rank permutation of the templates) — real
    traffic concentrates on a few elephant flows, and cache-tier
    experiments need that skew to be reproducible. Everything is
    deterministic under a fixed seed: the same seed yields the same
    templates, the same rank permutation and the same per-packet
    choices. *)

open Ovs_packet

type mix = Uniform | Zipf of float  (** Zipf exponent s > 0 *)

(** Bursty on-off offered load (the NFV-benchmarking methodology of
    Zhang et al. 2020): [on_packets] back-to-back packets at the offered
    rate, then [off_ns] of generator silence, repeating. The paced driver
    in {!Scenario} interprets this; the mean offered rate drops to
    [on / (on + off)] of the configured rate while the on-phase hits the
    dataplane at full speed — which is what separates tail behaviour
    from the constant-rate average. *)
type onoff = { on_packets : int; off_ns : float }

(** Connection churn: every flow slot is periodically reborn as a fresh
    connection (new source IP, same slot) at an aggregate rate of
    [flows_per_s] across the whole template set. Each slot lives
    [n_flows / flows_per_s] seconds, and slot lifetimes are
    phase-staggered so rebirths spread evenly over time instead of
    arriving in one thundering herd. Rebirth is a pure function of
    (seed, slot, generation) — no extra PRNG draws — so the flow
    schedule is deterministic and {!reset} replays it exactly. *)
type churn = { flows_per_s : float }

type t = {
  templates : Buffer.t array;
  seed : int;
  mix : mix;
  rank_of : int array;
      (** Zipf only: rank [r] (0 = most popular) -> template index, a
          seeded random permutation so popularity is not correlated with
          template build order *)
  cdf : float array;  (** Zipf only: cumulative probability over ranks *)
  init_draws : int;
      (** PRNG draws consumed building the state, for {!reset} replay
          ([Ovs_sim.Prng] primitives consume exactly one step each) *)
  mutable prng : Ovs_sim.Prng.t;
  mutable sent : int;
  churn : churn option;
  slot_src : int array;  (** generation-0 source IP per slot *)
  slot_dst : int array;
  gens : int array;  (** current generation per slot (0 = original) *)
  frame_len : int;
  dst_mac : Mac.t;
}

let base_src = Ipv4.addr_of_string "10.1.0.0"
let base_dst = Ipv4.addr_of_string "10.2.0.0"

(** Build [n_flows] distinct UDP flow templates of [frame_len] bytes.
    Checksums are valid; the RSS hash is precomputed (as NIC hardware
    does on receive). *)
let build_slot ~frame_len ~dst_mac ~src_ip ~dst_ip i =
  let pkt =
    Build.udp ~frame_len ~src_mac:(Mac.of_index 1) ~dst_mac ~src_ip ~dst_ip
      ~src_port:(1024 + (i land 0xFFF))
      ~dst_port:(2048 + (i lsr 12)) ()
  in
  let key = Flow_key.extract pkt in
  pkt.Buffer.rss_hash <- Flow_key.rss_hash key;
  pkt

let create ?(seed = 42) ?(dst_mac = Mac.of_index 2) ?(mix = Uniform) ?churn
    ~n_flows ~frame_len () =
  let prng = Ovs_sim.Prng.of_int seed in
  let slot_src = Array.make n_flows 0 in
  let slot_dst = Array.make n_flows 0 in
  let templates =
    Array.init n_flows (fun i ->
        let src_ip = base_src + Ovs_sim.Prng.int prng 1000 in
        let dst_ip = base_dst + Ovs_sim.Prng.int prng 1000 in
        slot_src.(i) <- src_ip;
        slot_dst.(i) <- dst_ip;
        build_slot ~frame_len ~dst_mac ~src_ip ~dst_ip i)
  in
  let init_draws = ref (2 * n_flows) in
  let rank_of, cdf =
    match mix with
    | Uniform -> ([||], [||])
    | Zipf s ->
        (* seeded Fisher–Yates permutation: which template is popular *)
        let perm = Array.init n_flows (fun i -> i) in
        for r = n_flows - 1 downto 1 do
          let j = Ovs_sim.Prng.int prng (r + 1) in
          incr init_draws;
          let tmp = perm.(r) in
          perm.(r) <- perm.(j);
          perm.(j) <- tmp
        done;
        (* cdf over ranks: weight of rank r is 1/(r+1)^s *)
        let cdf = Array.make n_flows 0. in
        let acc = ref 0. in
        for r = 0 to n_flows - 1 do
          acc := !acc +. (1. /. Float.pow (float_of_int (r + 1)) s);
          cdf.(r) <- !acc
        done;
        let total = !acc in
        for r = 0 to n_flows - 1 do
          cdf.(r) <- cdf.(r) /. total
        done;
        (perm, cdf)
  in
  (match churn with
  | Some { flows_per_s } when flows_per_s <= 0. ->
      invalid_arg "Pktgen.create: churn flows_per_s must be > 0"
  | _ -> ());
  {
    templates;
    seed;
    mix;
    rank_of;
    cdf;
    init_draws = !init_draws;
    prng;
    sent = 0;
    churn;
    slot_src;
    slot_dst;
    gens = Array.make n_flows 0;
    frame_len;
    dst_mac;
  }

(** Rebuild slot [i] at generation [g]: generation [g] shifts the source
    IP into its own /16-sized block above the slot's base, so every
    rebirth is a distinct 5-tuple (a brand-new connection to the
    conntrack and megaflow layers) while ports and destination stay
    stable. Pure in (seed, i, g) — deterministic, no PRNG draws. *)
let rebirth t i g =
  t.gens.(i) <- g;
  t.templates.(i) <-
    build_slot ~frame_len:t.frame_len ~dst_mac:t.dst_mac
      ~src_ip:(t.slot_src.(i) + (g * 0x10000))
      ~dst_ip:t.slot_dst.(i) i

(** Per-slot connection lifetime under the churn knob: with the whole
    set reborn at [flows_per_s] aggregate, each of the [n] slots lives
    [n / flows_per_s] seconds. *)
let slot_lifetime_ns t =
  match t.churn with
  | None -> infinity
  | Some { flows_per_s } ->
      float_of_int (Array.length t.templates) /. flows_per_s *. 1e9

(* Slot i's generation at virtual time [now]: lifetimes are
   phase-staggered by i/n of a lifetime so rebirths arrive spread
   evenly (10k flows/s means one rebirth every 100us, not 10k at
   every lifetime boundary). *)
let gen_at t i ~now =
  let life = slot_lifetime_ns t in
  let phase = float_of_int i /. float_of_int (Array.length t.templates) in
  int_of_float ((now +. (phase *. life)) /. life)

(** Advance the churn clock to virtual time [now]: every slot whose
    staggered lifetime expired is reborn as a fresh connection. Returns
    the reborn slot indices (oldest phase first) so the driver can
    account births/deaths. No-op (and [[]]) without a churn config. *)
let churn_tick t ~now =
  match t.churn with
  | None -> []
  | Some _ ->
      let reborn = ref [] in
      for i = Array.length t.templates - 1 downto 0 do
        let g = gen_at t i ~now in
        if g > t.gens.(i) then begin
          rebirth t i g;
          reborn := i :: !reborn
        end
      done;
      !reborn

(** Rewind the flow-choice stream to the template set's seed state, so a
    measurement phase can replay the exact packet sequence of an earlier
    one (the chaos bench compares phases of identical traffic). Building
    the state consumed [init_draws] PRNG steps — each primitive consumes
    exactly one — so replaying that many lands on the state [create]
    left behind. *)
let reset t =
  let prng = Ovs_sim.Prng.of_int t.seed in
  for _ = 1 to t.init_draws do
    ignore (Ovs_sim.Prng.int prng 2)
  done;
  t.prng <- prng;
  t.sent <- 0;
  (* churn rewind: every slot back to its generation-0 template (rebirth
     is pure in (seed, slot, gen), so this reproduces the original) *)
  Array.iteri (fun i g -> if g <> 0 then rebirth t i 0) t.gens

(* binary search: smallest rank with cdf.(rank) >= u *)
let zipf_rank t u =
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(** Next packet: an independent clone of a template chosen by the flow
    mix (uniform, or Zipf-skewed over the rank permutation).
    [?birth_ns] stamps the clone's ingress timestamp for sojourn-time
    measurement (default: unstamped, so latency-off runs stay
    byte-identical). *)
let next ?(birth_ns = -1.) t =
  let i =
    if Array.length t.templates = 1 then 0
    else
      match t.mix with
      | Uniform -> Ovs_sim.Prng.int t.prng (Array.length t.templates)
      | Zipf _ -> t.rank_of.(zipf_rank t (Ovs_sim.Prng.float t.prng))
  in
  t.sent <- t.sent + 1;
  let pkt = Ovs_packet.Buffer.clone t.templates.(i) in
  pkt.Ovs_packet.Buffer.birth_ns <- birth_ns;
  pkt

(** How many distinct NIC queues this flow set occupies under RSS. *)
let queues_hit t ~n_queues =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (pkt : Buffer.t) ->
      Hashtbl.replace seen (pkt.Buffer.rss_hash mod n_queues) ())
    t.templates;
  Hashtbl.length seen
