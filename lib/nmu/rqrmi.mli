(** RQ-RMI: a two-stage learned index over disjoint integer ranges with a
    guaranteed secondary-search error bound (NuevoMatchUp, NSDI 2022).
    See [rqrmi.ml] for the exactness argument. *)

type t

(** Per-lookup work counters for cost accounting. *)
type stats = { mutable models : int; mutable steps : int }

val mk_stats : unit -> stats

(** Train over ranges sorted by start and pairwise disjoint (raises
    [Invalid_argument] otherwise). By default the stage-1 width starts at
    ~one submodel per 8 ranges and doubles until the guaranteed error
    bound is at most [error_target] (default 2) or the width cap is hit;
    passing [submodels] forces an exact width instead. *)
val train :
  ?submodels:int -> ?error_target:int -> ranges:(int * int) array -> unit -> t

(** Index of the range containing the key, if any; exact. Accumulates
    model evaluations and search steps into [stats]. *)
val lookup : t -> int -> stats -> int option

val n_ranges : t -> int

(** The worst per-submodel guaranteed error bound (window half-width). *)
val max_err : t -> int
