(** iSet partitioning: split megaflows into groups with pairwise-disjoint
    ranges on one field, plus a remainder. See [iset.ml]. *)

module FK = Ovs_packet.Flow_key

(** Mask-aware predicate algebra over one integer field: masked tests
    ([x land mask = value]) with intersection, complement into regions
    (positive test + negated tests, with a concrete representative), and
    refinement of a test set into a disjoint, covering partition of the
    field domain. [prefix_range] is a thin wrapper over [to_range]; the
    policy equivalence checker builds cross-field cubes on [refine]. *)
module Masked : sig
  type t = private { m_value : int; m_mask : int }

  val make : value:int -> mask:int -> t
  val always : t
  val is_always : t -> bool
  val mem : int -> t -> bool
  val equal : t -> t -> bool
  val compatible : t -> t -> bool

  (** Conjunction of two tests; [None] when they contradict. *)
  val inter : t -> t -> t option

  (** [implies a b]: every value passing [a] passes [b]. *)
  val implies : t -> t -> bool

  (** The contiguous interval the test covers on a [full]-masked domain
      ([always] covers all of it); [None] for non-prefix masks. *)
  val to_range : full:int -> t -> (int * int) option

  type region = { r_pos : t; r_negs : t list; r_rep : int }

  val region_mem : int -> region -> bool

  (** A value in [pos] violating every neg, or [None] if the region is
      empty (conservatively [None] past [2^16] fallback candidates). *)
  val sample : full:int -> t -> t list -> int option

  val region_make : full:int -> t -> t list -> region option
  val complement : full:int -> t -> region option
  val region_inter : full:int -> region -> region -> region option

  (** Disjoint regions covering the domain, on each of which every atom
      is constant. *)
  val refine : full:int -> t list -> region list
end

type iset = {
  is_field : FK.Field.t;
  is_members : int array;  (** caller-side entry indices, sorted by [is_lo] *)
  is_lo : int array;
  is_hi : int array;
}

type t = {
  isets : iset list;  (** largest first *)
  remainder : int list;  (** entry indices left to the classifier *)
  considered : int;
}

(** The range the megaflow covers on a field, when its mask there is a
    non-empty contiguous prefix. *)
val prefix_range : mask:FK.t -> key:FK.t -> FK.Field.t -> (int * int) option

val default_fields : FK.Field.t array

val partition :
  ?fields:FK.Field.t array ->
  ?max_isets:int ->
  ?min_size:int ->
  masks:FK.t array ->
  keys:FK.t array ->
  unit ->
  t
