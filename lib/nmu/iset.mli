(** iSet partitioning: split megaflows into groups with pairwise-disjoint
    ranges on one field, plus a remainder. See [iset.ml]. *)

module FK = Ovs_packet.Flow_key

type iset = {
  is_field : FK.Field.t;
  is_members : int array;  (** caller-side entry indices, sorted by [is_lo] *)
  is_lo : int array;
  is_hi : int array;
}

type t = {
  isets : iset list;  (** largest first *)
  remainder : int list;  (** entry indices left to the classifier *)
  considered : int;
}

(** The range the megaflow covers on a field, when its mask there is a
    non-empty contiguous prefix. *)
val prefix_range : mask:FK.t -> key:FK.t -> FK.Field.t -> (int * int) option

val default_fields : FK.Field.t array

val partition :
  ?fields:FK.Field.t array ->
  ?max_isets:int ->
  ?min_size:int ->
  masks:FK.t array ->
  keys:FK.t array ->
  unit ->
  t
