(** The computational cache: a learned-classifier tier sitting between the
    microflow caches and the tuple-space search (NuevoMatchUp, NSDI 2022).

    Training snapshots the installed megaflows, partitions the
    range-encodable ones into iSets ({!Iset}), and fits one RQ-RMI model
    per iSet ({!Rqrmi}). Lookup probes the iSets in descending hit order
    (resorted with decay every 1024 lookups, the same discipline as the
    dpcls subtable ranking): evaluate the model on the packet's field
    value, bounded-binary-search the candidate window, and validate the
    candidate with a full masked-key comparison. A validated candidate is
    *the* match — installed megaflows are disjoint, so at most one can
    match any packet — which is the exactness argument: the model can
    only point at a candidate, never decide a match, and every decision
    this tier returns would also have been dpcls's.

    The cache indexes a snapshot: megaflows installed after training are
    simply not indexed (they miss here and hit dpcls — correct, just
    uncovered), while any removal (revalidation, flush) must
    {!invalidate} the cache, because returning a deleted megaflow would
    be a wrong decision. The datapath core enforces that rule. *)

module FK = Ovs_packet.Flow_key
module Dpcls = Ovs_flow.Dpcls

type 'a member = { m_mask : FK.t; m_entry : 'a Dpcls.entry }

type 'a iset_rt = {
  ir_field : FK.Field.t;
  ir_model : Rqrmi.t;
  ir_members : 'a member array;  (** aligned with the model's range indices *)
  mutable ir_hits : int;
}

type train_stats = {
  ts_megaflows : int;  (** megaflows snapshotted from the classifier *)
  ts_indexed : int;  (** covered by some iSet *)
  ts_remainder : int;  (** left to dpcls *)
  ts_isets : int;
  ts_max_err : int;  (** worst per-submodel secondary-search bound *)
}

type 'a t = {
  mutable isets : 'a iset_rt list;  (** probed in this order *)
  mutable trained : bool;
  mutable generation : int;  (** bumped by every (re)train *)
  scratch : Rqrmi.stats;  (** last lookup's model/search work *)
  mutable last_validations : int;  (** last lookup's masked comparisons *)
  mutable resort_counter : int;
  mutable lookups : int;
  mutable hits : int;
  mutable invalidations : int;
      (** times a megaflow removal forced the index to be dropped — the
          retrain pressure rule churn puts on this tier *)
  mutable last_train : train_stats option;
}

let create () =
  {
    isets = [];
    trained = false;
    generation = 0;
    scratch = Rqrmi.mk_stats ();
    last_validations = 0;
    resort_counter = 0;
    lookups = 0;
    hits = 0;
    invalidations = 0;
    last_train = None;
  }

let trained t = t.trained
let generation t = t.generation
let lookups t = t.lookups
let hits t = t.hits
let invalidations t = t.invalidations
let last_train t = t.last_train

(** The model-evaluation / search-step / validation work of the most
    recent {!lookup}, for per-lookup cost charging. *)
let last_work t = (t.scratch.Rqrmi.models, t.scratch.Rqrmi.steps, t.last_validations)

(** Forget the trained models. Required before any megaflow is removed
    from the backing classifier; a stale index could otherwise return a
    deleted flow. *)
let invalidate t =
  if t.trained then t.invalidations <- t.invalidations + 1;
  t.isets <- [];
  t.trained <- false

(** (Re)train from the current contents of [dpcls]. Returns the training
    stats; the caller charges virtual time for them. *)
let train ?max_isets ?min_size t (dpcls : 'a Dpcls.t) : train_stats =
  let masks = ref [] and keys = ref [] and ents = ref [] in
  let n = ref 0 in
  Dpcls.iter_entries dpcls (fun ~mask e ->
      masks := mask :: !masks;
      keys := e.Dpcls.key :: !keys;
      ents := e :: !ents;
      incr n);
  let masks = Array.of_list !masks in
  let keys = Array.of_list !keys in
  let ents = Array.of_list !ents in
  let part = Iset.partition ?max_isets ?min_size ~masks ~keys () in
  let isets =
    List.map
      (fun (is : Iset.iset) ->
        let ranges =
          Array.init (Array.length is.Iset.is_lo) (fun i ->
              (is.Iset.is_lo.(i), is.Iset.is_hi.(i)))
        in
        let model = Rqrmi.train ~ranges () in
        let members =
          Array.map
            (fun i -> { m_mask = masks.(i); m_entry = ents.(i) })
            is.Iset.is_members
        in
        { ir_field = is.Iset.is_field; ir_model = model; ir_members = members; ir_hits = 0 })
      part.Iset.isets
  in
  let indexed =
    List.fold_left (fun acc is -> acc + Array.length is.ir_members) 0 isets
  in
  let stats =
    {
      ts_megaflows = !n;
      ts_indexed = indexed;
      ts_remainder = !n - indexed;
      ts_isets = List.length isets;
      ts_max_err =
        List.fold_left (fun acc is -> Int.max acc (Rqrmi.max_err is.ir_model)) 0 isets;
    }
  in
  t.isets <- isets;
  t.trained <- true;
  t.generation <- t.generation + 1;
  t.resort_counter <- 0;
  t.last_train <- Some stats;
  stats

(* one iSet probe: model, bounded search, masked validation *)
let probe_iset (is : 'a iset_rt) (key : FK.t) (s : Rqrmi.stats)
    (validations : int ref) : 'a member option =
  let x = FK.get key is.ir_field in
  match Rqrmi.lookup is.ir_model x s with
  | None -> None
  | Some i ->
      let m = is.ir_members.(i) in
      incr validations;
      (* the entry's key is pre-masked, so this compares key&mask both sides *)
      if FK.equal_masked key m.m_entry.Dpcls.key m.m_mask then Some m else None

(** Look [key] up. A [Some (entry, mask)] is exact — the same megaflow
    dpcls would have returned — and credits entry and iSet hit counts.
    Work performed (hit or miss) is readable via {!last_work}. *)
let lookup t (key : FK.t) : ('a Dpcls.entry * FK.t) option =
  t.lookups <- t.lookups + 1;
  t.scratch.Rqrmi.models <- 0;
  t.scratch.Rqrmi.steps <- 0;
  let validations = ref 0 in
  t.resort_counter <- t.resort_counter + 1;
  if t.resort_counter >= 1024 then begin
    t.resort_counter <- 0;
    t.isets <- List.sort (fun a b -> compare b.ir_hits a.ir_hits) t.isets;
    (* decay, so a workload shift can reorder (same fix as dpcls) *)
    List.iter (fun is -> is.ir_hits <- is.ir_hits / 2) t.isets
  end;
  let rec go = function
    | [] ->
        t.last_validations <- !validations;
        None
    | is :: rest -> begin
        match probe_iset is key t.scratch validations with
        | Some m ->
            is.ir_hits <- is.ir_hits + 1;
            t.hits <- t.hits + 1;
            m.m_entry.Dpcls.hits <- m.m_entry.Dpcls.hits + 1;
            t.last_validations <- !validations;
            Some (m.m_entry, m.m_mask)
        | None -> go rest
      end
  in
  go t.isets

(** {!lookup} without mutating any statistic or hit count — for
    cross-checking the tier against dpcls on live state. *)
let peek t (key : FK.t) : ('a Dpcls.entry * FK.t) option =
  let s = Rqrmi.mk_stats () in
  let validations = ref 0 in
  let rec go = function
    | [] -> None
    | is :: rest -> begin
        match probe_iset is key s validations with
        | Some m -> Some (m.m_entry, m.m_mask)
        | None -> go rest
      end
  in
  go t.isets

let pp_train_stats ppf s =
  Fmt.pf ppf
    "%d megaflows: %d indexed in %d iSet%s (max search bound %d), %d to dpcls"
    s.ts_megaflows s.ts_indexed s.ts_isets
    (if s.ts_isets = 1 then "" else "s")
    s.ts_max_err s.ts_remainder

(** One-line stats for dpif/cache-hierarchy-show and the bench. *)
let render t =
  match t.last_train with
  | None -> "ccache: untrained"
  | Some s ->
      Fmt.str "ccache: gen %d, %a; %d lookups, %d hits, %d invalidations"
        t.generation pp_train_stats s t.lookups t.hits t.invalidations
