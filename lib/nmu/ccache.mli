(** The computational cache: a learned-classifier tier over the installed
    megaflows, exact by construction. See [ccache.ml] for the model and
    the staleness rules. *)

module FK = Ovs_packet.Flow_key
module Dpcls = Ovs_flow.Dpcls

type 'a t

type train_stats = {
  ts_megaflows : int;
  ts_indexed : int;
  ts_remainder : int;
  ts_isets : int;
  ts_max_err : int;
}

val create : unit -> 'a t
val trained : 'a t -> bool
val generation : 'a t -> int
val lookups : 'a t -> int
val hits : 'a t -> int

val invalidations : 'a t -> int
(** Times {!invalidate} dropped a trained index — the retrain pressure
    megaflow removals (revalidation, flushes) put on this tier. *)

val last_train : 'a t -> train_stats option

(** [(model evaluations, search steps, validations)] of the most recent
    {!lookup}, for per-lookup cost charging. *)
val last_work : 'a t -> int * int * int

(** Forget the trained models. Must be called before any megaflow is
    removed from the backing classifier. *)
val invalidate : 'a t -> unit

(** (Re)train from the classifier's current megaflows. *)
val train : ?max_isets:int -> ?min_size:int -> 'a t -> 'a Dpcls.t -> train_stats

(** Exact lookup: [Some (entry, mask)] is the megaflow dpcls would have
    returned. Credits entry/iSet hit counts; work goes to {!last_work}. *)
val lookup : 'a t -> FK.t -> ('a Dpcls.entry * FK.t) option

(** {!lookup} without mutating any statistic or hit count. *)
val peek : 'a t -> FK.t -> ('a Dpcls.entry * FK.t) option

val pp_train_stats : Format.formatter -> train_stats -> unit
val render : 'a t -> string
